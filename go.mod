module github.com/pml-mpi/pmlmpi

go 1.21
