// Command pmlmpi-loadgen replays a deterministic, seeded workload against
// a running pmlmpi-server and writes the canonical BENCH_loadgen.json
// artifact: client-observed throughput and latency quantiles next to the
// server-side counter deltas scraped over the run window. The same seed
// and spec always produce byte-identical request sequences, so two
// reports with matching sequence hashes benchmarked identical workloads.
//
// Typical use:
//
//	pmlmpi-server -bundle pkg/bundle/testdata/trained_small.json &
//	pmlmpi-loadgen -target http://127.0.0.1:8080 -qps 500 -duration 10s -out BENCH_loadgen.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/buildinfo"
	"github.com/pml-mpi/pmlmpi/pkg/loadgen"
)

func main() {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "base URL of the pmlmpi-server (or pmlmpi-gateway) to load")
		mode     = flag.String("target-mode", loadgen.ModeServer, "what -target points at: \"server\" or \"gateway\" (gateway mode adds a per-replica routing section; the request sequence is identical either way)")
		qps      = flag.Float64("qps", 200, "target open-loop arrival rate (requests/second)")
		duration = flag.Duration("duration", 5*time.Second, "measured window")
		warmup   = flag.Duration("warmup", time.Second, "warmup period excluded from client statistics")
		workers  = flag.Int("workers", 8, "HTTP worker-pool size")
		seed     = flag.Int64("seed", 1, "workload seed; same seed + same spec = identical request bytes")
		specPath = flag.String("spec", "", "workload spec JSON file (empty = built-in dlcomm-mix/v1)")
		out      = flag.String("out", "BENCH_loadgen.json", "report destination (written atomically; \"-\" = stdout only)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
		dumpSpec = flag.Bool("print-spec", false, "print the effective workload spec as JSON and exit")
		fbFrac   = flag.Float64("feedback-fraction", 0, "fraction of requests that also POST an oracle-labeled record to /v1/feedback (0 disables; never perturbs the request sequence)")
	)
	flag.Parse()

	if err := run(*target, *mode, *qps, *duration, *warmup, *workers, *seed, *specPath, *out, *timeout, *dumpSpec, *fbFrac); err != nil {
		fmt.Fprintln(os.Stderr, "pmlmpi-loadgen:", err)
		os.Exit(1)
	}
}

func run(target, mode string, qps float64, duration, warmup time.Duration, workers int, seed int64, specPath, out string, timeout time.Duration, dumpSpec bool, fbFrac float64) error {
	spec := loadgen.DefaultSpec()
	if specPath != "" {
		var err error
		if spec, err = loadgen.LoadSpec(specPath); err != nil {
			return err
		}
	}
	if dumpSpec {
		return writeJSON(os.Stdout, spec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "pmlmpi-loadgen %s: %s @ %.0f qps for %s (warmup %s), spec %s, seed %d\n",
		buildinfo.Resolve(), target, qps, duration, warmup, spec.Name, seed)
	rep, err := loadgen.Run(ctx, loadgen.Options{
		BaseURL:          target,
		TargetMode:       mode,
		Spec:             &spec,
		Seed:             seed,
		QPS:              qps,
		Duration:         duration,
		Warmup:           warmup,
		Workers:          workers,
		Timeout:          timeout,
		FeedbackFraction: fbFrac,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(os.Stderr,
		"done: %d/%d completed, %d errors, %.1f rps | client p50/p99 %.0f/%.0fus | server p50/p99 %.1f/%.1fus | cache hit rate %.2f\n",
		rep.Client.Completed, rep.Client.Measured, rep.Client.Errors, rep.Client.ThroughputRPS,
		rep.Client.Latency.P50US, rep.Client.Latency.P99US,
		rep.Delta.SelectLatency.P50US, rep.Delta.SelectLatency.P99US,
		rep.Delta.CacheHitRate)
	if gw := rep.Gateway; gw != nil {
		for _, r := range gw.Replicas {
			fmt.Fprintf(os.Stderr, "gateway: replica %s healthy=%v share=%.2f (%d requests, %d errors)\n",
				r.ID, r.Healthy, r.Share, r.Requests, r.Errors)
		}
	}
	if fb := rep.Feedback; fb != nil {
		fmt.Fprintf(os.Stderr,
			"feedback: %d flagged, %d posted (%d accepted, %d duplicate, %d quarantined, %d invalid), %d errors\n",
			fb.Flagged, fb.Posted, fb.Accepted, fb.Duplicates, fb.Quarantined, fb.Invalid, fb.Errors)
	}

	if out == "-" {
		return writeJSON(os.Stdout, rep)
	}
	if err := rep.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "report written to %s (sequence %s)\n", out, rep.Config.SequenceHash[:12])
	return nil
}

func writeJSON(f *os.File, v any) error {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
