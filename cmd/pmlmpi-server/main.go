// Command pmlmpi-server runs the PML-MPI algorithm-selection service: it
// loads the pre-trained model bundle into a versioned registry and serves
// selections plus the full observability surface (/metrics, /healthz,
// /debug/decisions, /debug/traces, /debug/analytics, /debug/shadow,
// optional /debug/pprof, /v1/select, /v1/registry). Bundles can be
// hot-swapped at runtime via the registry endpoints or the -bundle-watch
// poller, with optional shadow evaluation of staged candidates. With
// -feedback-dir set, /v1/feedback ingests observed latencies and the
// retrain controller (/debug/retrain) closes the self-tuning loop.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/admin"
	"github.com/pml-mpi/pmlmpi/pkg/buildinfo"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/feedback"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/replica"
	"github.com/pml-mpi/pmlmpi/pkg/retrain"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/slo"
)

// options collects the flag-derived server configuration.
type options struct {
	bundlePath    string
	addr          string
	ringSize      int
	cacheEntries  int
	cacheShards   int
	cacheTTL      time.Duration
	batchWorkers  int
	parallelTrees int
	forestEval    string

	registryKeep   int
	bundleWatch    bool
	watchInterval  time.Duration
	shadowFraction float64
	shadowWorkers  int
	shadowQueue    int

	sloSelectP99    time.Duration
	sloAvailability float64

	driftWindow   int
	driftAlertPSI float64
	marginWarn    float64
	flightrecSize int

	feedbackDir         string
	retrainInterval     time.Duration
	retrainMinRecords   int
	retrainDriftWindows int
	promotePolicy       string

	controlPlane     string
	replicaID        string
	advertise        string
	manifestPoll     time.Duration
	stageSoak        time.Duration
	minAgreement     float64
	minShadowSamples uint64

	traceSampleRate float64
	traceCapacity   int
	pprof           bool
	runtimeInterval time.Duration
	shutdownTimeout time.Duration
}

func main() {
	var (
		bundlePath = flag.String("bundle", ".pmlbench/bundle_all_full.json", "path to the model bundle JSON")
		addr       = flag.String("addr", ":8080", "listen address for the HTTP surface")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		ringSize   = flag.Int("decision-ring", 256, "capacity of the /debug/decisions ring buffer")

		cacheEntries = flag.Int("cache-entries", 65536, "decision-cache capacity in entries (0 disables the cache)")
		cacheShards  = flag.Int("cache-shards", 16, "decision-cache shard count (rounded up to a power of two)")
		cacheTTL     = flag.Duration("cache-ttl", 10*time.Minute, "decision-cache entry lifetime (0 = never expire)")

		batchWorkers  = flag.Int("batch-workers", 0, "worker-pool size for /v1/select/batch (0 = GOMAXPROCS)")
		parallelTrees = flag.Int("parallel-trees", 0, "evaluate forests with at least this many trees concurrently (0 disables; pointer evaluator only)")
		forestEval    = flag.String("forest-eval", selector.EvalCompiled, "forest evaluator: compiled (SoA fast path) or pointer (reference walk)")

		registryKeep   = flag.Int("registry-keep", 4, "model generations kept resident for promote/rollback")
		bundleWatch    = flag.Bool("bundle-watch", false, "poll the bundle file and hot-swap changed content automatically")
		watchInterval  = flag.Duration("bundle-watch-interval", 5*time.Second, "bundle watcher poll interval")
		shadowFraction = flag.Float64("shadow-fraction", 0.1, "fraction of live traffic mirrored to a staged candidate generation (0 disables shadow evaluation)")
		shadowWorkers  = flag.Int("shadow-workers", 2, "worker goroutines evaluating shadow samples")
		shadowQueue    = flag.Int("shadow-queue", 256, "shadow sample queue capacity (overflow is dropped, never blocks)")

		sloSelectP99    = flag.Duration("slo-select-p99", time.Millisecond, "latency SLO: 99% of selects must complete within this (0 disables latency burn tracking)")
		sloAvailability = flag.Float64("slo-availability", 0.999, "availability SLO: required select success fraction in (0,1) (0 disables availability burn tracking)")

		driftWindow   = flag.Int("drift-window", modelhealth.DefaultWindow, "decisions per feature-drift PSI window")
		driftAlertPSI = flag.Float64("drift-alert-psi", modelhealth.DefaultAlertPSI, "PSI at or above which a feature's drift status is ALERT (warn at 40% of this)")
		marginWarn    = flag.Float64("margin-warn", modelhealth.DefaultMarginWarn, "vote margin below which a decision counts as low-confidence")
		flightrecSize = flag.Int("flightrec-size", modelhealth.DefaultFlightRecSize, "anomaly flight-recorder capacity in records")

		feedbackDir         = flag.String("feedback-dir", "", "directory for the /v1/feedback JSONL store (empty disables the feedback and retraining surfaces)")
		retrainInterval     = flag.Duration("retrain-interval", 0, "period of timer-driven retrain cycles (0 disables the timer)")
		retrainMinRecords   = flag.Int("retrain-min-records", retrain.DefaultMinRecords, "fewest resident feedback records worth retraining on")
		retrainDriftWindows = flag.Int("retrain-drift-windows", 0, "completed drift windows at ALERT that trigger a retrain cycle (0 disables the drift trigger)")
		promotePolicy       = flag.String("promote-policy", retrain.PolicyAuto, "what happens to a winning candidate: auto (promote) or manual (stage only)")

		controlPlane     = flag.String("controlplane", "", "control-plane base URL; set to run as a fleet replica that pulls bundles by manifest hash (empty = standalone server)")
		replicaID        = flag.String("replica-id", "", "unique replica id reported to the control plane (default: hostname)")
		advertise        = flag.String("advertise", "", "this replica's own base URL, reported in heartbeats for discovery")
		manifestPoll     = flag.Duration("manifest-poll", 2*time.Second, "control-plane manifest poll (and heartbeat) interval")
		stageSoak        = flag.Duration("stage-soak", 10*time.Second, "shadow-evaluation soak before a pulled candidate is promoted (negative = promote immediately)")
		minAgreement     = flag.Float64("min-agreement", 0.9, "shadow-agreement rate below which a soaking candidate is rejected")
		minShadowSamples = flag.Uint64("min-shadow-samples", 20, "shadow samples required before the agreement gate judges a candidate")

		traceSampleRate = flag.Float64("trace-sample-rate", 0.01, "head-based trace sampling fraction in [0,1] (0 disables tracing)")
		traceCapacity   = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "sampled traces retained for /debug/traces")
		pprofFlag       = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		runtimeInterval = flag.Duration("runtime-metrics-interval", 10*time.Second, "period of the Go runtime stats collector (0 disables)")
		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "deadline for draining in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	o := obs.New(os.Stderr, obs.ParseLevel(*logLevel))
	err := run(o, options{
		bundlePath:    *bundlePath,
		addr:          *addr,
		ringSize:      *ringSize,
		cacheEntries:  *cacheEntries,
		cacheShards:   *cacheShards,
		cacheTTL:      *cacheTTL,
		batchWorkers:  *batchWorkers,
		parallelTrees: *parallelTrees,
		forestEval:    *forestEval,

		registryKeep:   *registryKeep,
		bundleWatch:    *bundleWatch,
		watchInterval:  *watchInterval,
		shadowFraction: *shadowFraction,
		shadowWorkers:  *shadowWorkers,
		shadowQueue:    *shadowQueue,

		sloSelectP99:    *sloSelectP99,
		sloAvailability: *sloAvailability,

		driftWindow:   *driftWindow,
		driftAlertPSI: *driftAlertPSI,
		marginWarn:    *marginWarn,
		flightrecSize: *flightrecSize,

		feedbackDir:         *feedbackDir,
		retrainInterval:     *retrainInterval,
		retrainMinRecords:   *retrainMinRecords,
		retrainDriftWindows: *retrainDriftWindows,
		promotePolicy:       *promotePolicy,

		controlPlane:     *controlPlane,
		replicaID:        *replicaID,
		advertise:        *advertise,
		manifestPoll:     *manifestPoll,
		stageSoak:        *stageSoak,
		minAgreement:     *minAgreement,
		minShadowSamples: *minShadowSamples,

		traceSampleRate: *traceSampleRate,
		traceCapacity:   *traceCapacity,
		pprof:           *pprofFlag,
		runtimeInterval: *runtimeInterval,
		shutdownTimeout: *shutdownTimeout,
	})
	if err != nil {
		o.Logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func run(o *obs.Obs, opts options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if !selector.ValidEvalMode(opts.forestEval) {
		return fmt.Errorf("unknown -forest-eval mode %q (want %q or %q)",
			opts.forestEval, selector.EvalCompiled, selector.EvalPointer)
	}

	o.Traces.SetCapacity(opts.traceCapacity)
	o.Traces.SetSampleRate(opts.traceSampleRate)
	if opts.traceSampleRate > 0 {
		o.Logger.Info("trace sampling enabled",
			"rate", opts.traceSampleRate, "capacity", opts.traceCapacity)
	}
	if opts.runtimeInterval > 0 {
		go obs.NewRuntimeCollector(o.Registry).Run(ctx, opts.runtimeInterval)
	}

	// Registry + shadow evaluation. The shadow is built first (the registry
	// feeds it staged candidates); its algorithm namer is wired after the
	// selector exists.
	shadow := registry.NewShadow(o, registry.ShadowConfig{
		Fraction:  opts.shadowFraction,
		Workers:   opts.shadowWorkers,
		QueueSize: opts.shadowQueue,
	})
	reg := registry.New(o, registry.Config{Keep: opts.registryKeep, Shadow: shadow})
	gen, err := reg.Load(opts.bundlePath)
	switch {
	case err == nil:
		if _, err := reg.Promote(gen.ID()); err != nil {
			return fmt.Errorf("promote initial bundle: %w", err)
		}
	case opts.controlPlane != "":
		// A fleet replica can boot without a local bundle: the agent pulls
		// the desired generation from the control plane and promotes it.
		o.Logger.Warn("no local bundle; waiting for the control plane",
			"path", opts.bundlePath, "error", err.Error())
	default:
		return fmt.Errorf("load bundle: %w", err)
	}

	var decisionCache *cache.Cache
	if opts.cacheEntries > 0 {
		decisionCache = cache.New(cache.Config{
			Shards:     opts.cacheShards,
			MaxEntries: opts.cacheEntries,
			TTL:        opts.cacheTTL,
		}, o.Registry)
		o.Logger.Info("decision cache enabled",
			"entries", opts.cacheEntries, "shards", opts.cacheShards, "ttl", opts.cacheTTL.String())
	} else {
		o.Logger.Info("decision cache disabled")
	}

	// SLO tracking: every Select feeds rolling 1m/5m/1h windows; burn rates
	// surface on /debug/slo and pmlmpi_slo_*.
	tracker := slo.New(o.Registry, slo.Objectives{
		SelectP99:    opts.sloSelectP99,
		Availability: opts.sloAvailability,
	})

	// Model-health observatory: every Select feeds drift sketches, margin
	// telemetry, per-generation scorecards, and the anomaly flight
	// recorder; surfaces on /debug/{drift,scorecards,flightrecorder} and
	// pmlmpi_drift_* / pmlmpi_margin_* / pmlmpi_flightrec_*.
	health := modelhealth.New(o.Registry, modelhealth.Config{
		Window:        opts.driftWindow,
		AlertPSI:      opts.driftAlertPSI,
		MarginWarn:    opts.marginWarn,
		FlightRecSize: opts.flightrecSize,
	})

	sel := selector.NewFromSource(reg, o, selector.Config{
		RingSize:              opts.ringSize,
		Cache:                 decisionCache,
		BatchWorkers:          opts.batchWorkers,
		ParallelTreeThreshold: opts.parallelTrees,
		ForestEval:            opts.forestEval,
		Shadow:                shadow,
		SLO:                   tracker,
		Health:                health,
	})
	shadow.SetNamer(sel.AlgorithmName)
	shadow.SetHealthSink(health.RecordShadow)
	shadow.Start()

	if opts.bundleWatch {
		go replica.NewFileWatcher(reg, o, opts.bundlePath, opts.watchInterval).Run(ctx)
	}

	// Fleet membership: poll the control-plane manifest, pull-verify-stage
	// desired bundles, soak them against shadow evaluation, and heartbeat.
	role := "server"
	var agent *replica.Agent
	if opts.controlPlane != "" {
		role = "replica"
		id := opts.replicaID
		if id == "" {
			if host, err := os.Hostname(); err == nil {
				id = host
			} else {
				id = fmt.Sprintf("replica-%d", os.Getpid())
			}
		}
		agent, err = replica.NewAgent(o, replica.AgentConfig{
			ControlPlane:     opts.controlPlane,
			ReplicaID:        id,
			Advertise:        opts.advertise,
			Registry:         reg,
			Shadow:           shadow,
			Health:           health,
			SLO:              tracker,
			PollInterval:     opts.manifestPoll,
			StageSoak:        opts.stageSoak,
			MinAgreement:     opts.minAgreement,
			MinShadowSamples: opts.minShadowSamples,
		})
		if err != nil {
			return fmt.Errorf("replica agent: %w", err)
		}
		go agent.Run(ctx)
	}

	// Self-tuning loop: the feedback store ingests /v1/feedback into an
	// append-only JSONL log behind the oracle plausibility guard, and the
	// retrain controller turns accumulated records into judged candidate
	// generations on interval ticks or sustained drift ALERT.
	var (
		store *feedback.Store
		ctrl  *retrain.Controller
	)
	if opts.feedbackDir != "" {
		if !retrain.ValidPolicy(opts.promotePolicy) {
			return fmt.Errorf("unknown -promote-policy %q (want %s or %s)",
				opts.promotePolicy, retrain.PolicyAuto, retrain.PolicyManual)
		}
		store, err = feedback.NewStore(o.Registry, feedback.Config{Dir: opts.feedbackDir})
		if err != nil {
			return fmt.Errorf("open feedback store: %w", err)
		}
		defer store.Close()
		ctrl, err = retrain.New(o, retrain.Config{
			Interval:      opts.retrainInterval,
			MinRecords:    opts.retrainMinRecords,
			DriftWindows:  opts.retrainDriftWindows,
			PromotePolicy: opts.promotePolicy,
		}, retrain.Deps{Store: store, Registry: reg, Shadow: shadow, Health: health})
		if err != nil {
			return fmt.Errorf("retrain controller: %w", err)
		}
		ctrl.Start()
		o.Logger.Info("feedback loop enabled",
			"dir", opts.feedbackDir,
			"resident", store.Resident(),
			"retrain_interval", opts.retrainInterval.String(),
			"min_records", opts.retrainMinRecords,
			"drift_windows", opts.retrainDriftWindows,
			"promote_policy", opts.promotePolicy)
	}

	srv := &http.Server{
		Addr: opts.addr,
		Handler: admin.New(sel, o, admin.Config{
			Pprof:    opts.pprof,
			Registry: reg,
			Shadow:   shadow,
			SLO:      tracker,
			Health:   health,
			Feedback: store,
			Retrain:  ctrl,
			Role:     role,
			Desired: func() any {
				if agent == nil {
					return nil
				}
				return agent.Status()
			},
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		var genID uint64
		var collectives []string
		if g := reg.ActiveGeneration(); g != nil {
			genID = g.ID()
			collectives = g.Bundle().CollectiveNames()
		}
		o.Logger.Info("serving",
			"addr", opts.addr,
			"role", role,
			"version", buildinfo.Resolve(),
			"generation", genID,
			"forest_eval", opts.forestEval,
			"collectives", collectives)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: restore default signal handling first (a second
	// SIGINT kills the process immediately), drain in-flight HTTP with a
	// deadline, then stop the shadow workers — the watcher and runtime
	// collector already exit with ctx.
	stop()
	o.Logger.Info("shutting down", "timeout", opts.shutdownTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), opts.shutdownTimeout)
	defer cancel()
	shutdownErr := srv.Shutdown(shutdownCtx)
	if ctrl != nil {
		ctrl.Stop() // before the shadow: a judging cycle may be waiting on it
	}
	shadow.Stop()
	// Last chance to see what the anomaly flight recorder caught: once the
	// process exits the in-memory ring is gone, so dump it to the log.
	if records := health.Flight().Dump(); len(records) > 0 {
		if buf, err := json.Marshal(records); err == nil {
			o.Logger.Info("flight recorder dump",
				"records", len(records), "capacity", health.Flight().Capacity(), "dump", string(buf))
		}
	}
	o.Logger.Info("shutdown complete")
	return shutdownErr
}
