// Command pmlmpi-server runs the PML-MPI algorithm-selection service: it
// loads the pre-trained model bundle and serves selections plus the full
// observability surface (/metrics, /healthz, /debug/decisions,
// /debug/traces, /debug/analytics, optional /debug/pprof, /v1/select).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/admin"
	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

// options collects the flag-derived server configuration.
type options struct {
	bundlePath    string
	addr          string
	ringSize      int
	cacheEntries  int
	cacheShards   int
	cacheTTL      time.Duration
	batchWorkers  int
	parallelTrees int

	traceSampleRate float64
	traceCapacity   int
	pprof           bool
	runtimeInterval time.Duration
}

func main() {
	var (
		bundlePath = flag.String("bundle", ".pmlbench/bundle_all_full.json", "path to the model bundle JSON")
		addr       = flag.String("addr", ":8080", "listen address for the HTTP surface")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		ringSize   = flag.Int("decision-ring", 256, "capacity of the /debug/decisions ring buffer")

		cacheEntries = flag.Int("cache-entries", 65536, "decision-cache capacity in entries (0 disables the cache)")
		cacheShards  = flag.Int("cache-shards", 16, "decision-cache shard count (rounded up to a power of two)")
		cacheTTL     = flag.Duration("cache-ttl", 10*time.Minute, "decision-cache entry lifetime (0 = never expire)")

		batchWorkers  = flag.Int("batch-workers", 0, "worker-pool size for /v1/select/batch (0 = GOMAXPROCS)")
		parallelTrees = flag.Int("parallel-trees", 0, "evaluate forests with at least this many trees concurrently (0 disables)")

		traceSampleRate = flag.Float64("trace-sample-rate", 0.01, "head-based trace sampling fraction in [0,1] (0 disables tracing)")
		traceCapacity   = flag.Int("trace-capacity", obs.DefaultTraceCapacity, "sampled traces retained for /debug/traces")
		pprofFlag       = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		runtimeInterval = flag.Duration("runtime-metrics-interval", 10*time.Second, "period of the Go runtime stats collector (0 disables)")
	)
	flag.Parse()

	o := obs.New(os.Stderr, obs.ParseLevel(*logLevel))
	err := run(o, options{
		bundlePath:    *bundlePath,
		addr:          *addr,
		ringSize:      *ringSize,
		cacheEntries:  *cacheEntries,
		cacheShards:   *cacheShards,
		cacheTTL:      *cacheTTL,
		batchWorkers:  *batchWorkers,
		parallelTrees: *parallelTrees,

		traceSampleRate: *traceSampleRate,
		traceCapacity:   *traceCapacity,
		pprof:           *pprofFlag,
		runtimeInterval: *runtimeInterval,
	})
	if err != nil {
		o.Logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func run(o *obs.Obs, opts options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	b, err := bundle.LoadObserved(ctx, o, opts.bundlePath)
	if err != nil {
		return fmt.Errorf("load bundle: %w", err)
	}

	o.Traces.SetCapacity(opts.traceCapacity)
	o.Traces.SetSampleRate(opts.traceSampleRate)
	if opts.traceSampleRate > 0 {
		o.Logger.Info("trace sampling enabled",
			"rate", opts.traceSampleRate, "capacity", opts.traceCapacity)
	}
	if opts.runtimeInterval > 0 {
		go obs.NewRuntimeCollector(o.Registry).Run(ctx, opts.runtimeInterval)
	}

	var decisionCache *cache.Cache
	if opts.cacheEntries > 0 {
		decisionCache = cache.New(cache.Config{
			Shards:     opts.cacheShards,
			MaxEntries: opts.cacheEntries,
			TTL:        opts.cacheTTL,
		}, o.Registry)
		o.Logger.Info("decision cache enabled",
			"entries", opts.cacheEntries, "shards", opts.cacheShards, "ttl", opts.cacheTTL.String())
	} else {
		o.Logger.Info("decision cache disabled")
	}

	sel := selector.New(b, o, selector.Config{
		RingSize:              opts.ringSize,
		Cache:                 decisionCache,
		BatchWorkers:          opts.batchWorkers,
		ParallelTreeThreshold: opts.parallelTrees,
	})
	srv := &http.Server{
		Addr:              opts.addr,
		Handler:           admin.New(sel, o, admin.Config{Pprof: opts.pprof}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		o.Logger.Info("serving", "addr", opts.addr, "collectives", b.CollectiveNames())
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	o.Logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}
