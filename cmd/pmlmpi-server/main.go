// Command pmlmpi-server runs the PML-MPI algorithm-selection service: it
// loads the pre-trained model bundle and serves selections plus the full
// observability surface (/metrics, /healthz, /debug/decisions, /v1/select).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/admin"
	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

func main() {
	var (
		bundlePath = flag.String("bundle", ".pmlbench/bundle_all_full.json", "path to the model bundle JSON")
		addr       = flag.String("addr", ":8080", "listen address for the HTTP surface")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn, error")
		ringSize   = flag.Int("decision-ring", 256, "capacity of the /debug/decisions ring buffer")
	)
	flag.Parse()

	o := obs.New(os.Stderr, obs.ParseLevel(*logLevel))
	if err := run(o, *bundlePath, *addr, *ringSize); err != nil {
		o.Logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func run(o *obs.Obs, bundlePath, addr string, ringSize int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	b, err := bundle.LoadObserved(ctx, o, bundlePath)
	if err != nil {
		return fmt.Errorf("load bundle: %w", err)
	}

	sel := selector.New(b, o, selector.Config{RingSize: ringSize})
	srv := &http.Server{
		Addr:              addr,
		Handler:           admin.New(sel, o),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		o.Logger.Info("serving", "addr", addr, "collectives", b.CollectiveNames())
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	o.Logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return srv.Shutdown(shutdownCtx)
}
