// Command pmlmpi-ctl runs the fleet control plane: a content-addressed
// bundle store plus the staged-rollout controller. Replicas poll
// /v1/manifest for the generation they should serve, pull bytes from
// /v1/bundles/{hash}, and report /v1/heartbeat; operators upload bundles
// with POST /v1/bundles (?stable=true seeds the fleet, ?rollout=true
// starts a canary) and drive or watch rollouts via /v1/rollout/* and
// /debug/rollout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/buildinfo"
	"github.com/pml-mpi/pmlmpi/pkg/controlplane"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address for the control-plane HTTP surface")
		storeDir = flag.String("store-dir", "", "directory persisting the content-addressed bundle store (empty = in-memory only)")
		bundle   = flag.String("bundle", "", "bundle file to ingest and seed as the fleet-wide stable hash on boot")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")

		pollInterval = flag.Duration("poll-interval", 2*time.Second, "advisory replica poll interval surfaced in every manifest")

		canaryPercent    = flag.Float64("canary-percent", 25, "share of replicas (rounded up, at least one) assigned to the canary ring")
		minAgreement     = flag.Float64("min-agreement", 0.9, "shadow-agreement rate below which a rollout auto-rolls back")
		minShadowSamples = flag.Uint64("min-shadow-samples", 20, "shadow samples a heartbeat needs before its agreement is trusted")
		maxP99Ratio      = flag.Float64("max-p99-ratio", 0, "roll back when a canary's select p99 exceeds this multiple of its pre-rollout baseline (0 disables)")
		replicaTTL       = flag.Duration("replica-ttl", time.Minute, "heartbeat age after which a replica stops counting toward rollout gates")

		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "deadline for draining in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	o := obs.New(os.Stderr, obs.ParseLevel(*logLevel))
	if err := run(o, *addr, *storeDir, *bundle, controlplane.RolloutConfig{
		CanaryPercent:    *canaryPercent,
		MinAgreement:     *minAgreement,
		MinShadowSamples: *minShadowSamples,
		MaxP99Ratio:      *maxP99Ratio,
		ReplicaTTL:       *replicaTTL,
	}, *pollInterval, *shutdownTimeout); err != nil {
		o.Logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

func run(o *obs.Obs, addr, storeDir, bundlePath string, roCfg controlplane.RolloutConfig, poll, shutdownTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	store, err := controlplane.NewStore(storeDir)
	if err != nil {
		return err
	}
	rollout := controlplane.NewRollout(store, roCfg)
	if bundlePath != "" {
		data, err := os.ReadFile(bundlePath)
		if err != nil {
			return fmt.Errorf("read seed bundle: %w", err)
		}
		hash, existed, err := store.Put(data)
		if err != nil {
			return fmt.Errorf("ingest seed bundle: %w", err)
		}
		if err := rollout.SetStable(hash); err != nil {
			return fmt.Errorf("seed stable hash: %w", err)
		}
		o.Logger.Info("seeded stable bundle",
			"path", bundlePath, "hash", hash, "existed", existed, "bytes", len(data))
	}

	srv := &http.Server{
		Addr: addr,
		Handler: controlplane.NewServer(store, rollout, o, controlplane.ServerConfig{
			PollInterval: poll,
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		o.Logger.Info("control plane serving",
			"addr", addr,
			"version", buildinfo.Resolve(),
			"store_dir", storeDir,
			"bundles", store.Len(),
			"canary_percent", roCfg.CanaryPercent)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	o.Logger.Info("shutting down", "timeout", shutdownTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	o.Logger.Info("shutdown complete")
	return err
}
