// Command pmlmpi-train is the offline half of the PML-MPI loop: it builds
// a labeled dataset (benchmark records from CSV/JSONL files, an analytical
// perfmodel sweep, or both), trains one random forest per collective, and
// writes a serving-ready bundle atomically — ready for pmlmpi-server's
// registry watcher to discover and hot-swap with zero downtime.
//
// Examples:
//
//	pmlmpi-train -synthetic-sweep -out model.json
//	pmlmpi-train -dataset bench.csv -dataset extra.jsonl -trees 64 -out model.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/dataset"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/train"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// options is the flag-derived trainer configuration.
type options struct {
	datasets    multiFlag
	sweep       bool
	collectives string

	trees       int
	depth       int
	minLeaf     int
	featureFrac float64
	testFrac    float64
	seed        int64

	out       string
	format    string
	trainedOn string
	quiet     bool
}

// report is the JSON training summary printed to stdout.
type report struct {
	Examples    int                `json:"examples"`
	Deduped     int                `json:"deduped"`
	TrainSize   int                `json:"train_size"`
	TestSize    int                `json:"test_size"`
	Seed        int64              `json:"seed"`
	Collectives []train.Report     `json:"collectives"`
	HeldOut     map[string]float64 `json:"held_out_accuracy,omitempty"`
	Out         string             `json:"out"`
	SizeBytes   int                `json:"size_bytes"`
	Hash        string             `json:"hash"`
}

func main() {
	var opts options
	flag.Var(&opts.datasets, "dataset", "benchmark records to ingest (.csv/.jsonl; repeatable)")
	flag.BoolVar(&opts.sweep, "synthetic-sweep", false, "add an analytical perfmodel sweep to the training set")
	flag.StringVar(&opts.collectives, "collectives", "", "comma-separated collectives for -synthetic-sweep (default: all supported)")
	flag.IntVar(&opts.trees, "trees", 48, "trees per collective forest")
	flag.IntVar(&opts.depth, "depth", 14, "maximum tree depth")
	flag.IntVar(&opts.minLeaf, "min-samples-leaf", 1, "minimum samples per leaf")
	flag.Float64Var(&opts.featureFrac, "feature-frac", 0.8, "per-tree feature subsample fraction in (0,1]")
	flag.Float64Var(&opts.testFrac, "test-frac", 0.2, "held-out fraction for the accuracy report (0 trains on everything)")
	flag.Int64Var(&opts.seed, "seed", 1, "random seed (equal seeds and inputs reproduce the bundle byte-for-byte)")
	flag.StringVar(&opts.out, "out", "bundle_trained.json", "output bundle path (written atomically)")
	flag.StringVar(&opts.format, "format", "json", "bundle encoding: json (canonical) or binary (compact PMLB)")
	flag.StringVar(&opts.trainedOn, "trained-on", "", "comma-separated provenance labels (default: dataset file names and sweep system names)")
	flag.BoolVar(&opts.quiet, "quiet", false, "suppress the JSON training report on stdout")
	flag.Parse()

	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "pmlmpi-train: %v\n", err)
		os.Exit(1)
	}
}

func run(opts options) error {
	if !opts.sweep && len(opts.datasets) == 0 {
		return fmt.Errorf("nothing to train on: pass -dataset files and/or -synthetic-sweep")
	}
	if opts.format != "json" && opts.format != "binary" {
		return fmt.Errorf("unknown -format %q (want \"json\" or \"binary\")", opts.format)
	}

	table := perfmodel.Table()
	ds := dataset.New(table)
	var provenance []string

	for _, path := range opts.datasets {
		part, err := dataset.ReadFile(path, table)
		if err != nil {
			return err
		}
		if err := ds.Merge(part); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		provenance = append(provenance, path)
	}
	if opts.sweep {
		cfg := perfmodel.SweepConfig{}
		if opts.collectives != "" {
			cfg.Collectives = strings.Split(opts.collectives, ",")
		}
		swept, err := perfmodel.Sweep(cfg)
		if err != nil {
			return err
		}
		if err := ds.Merge(swept); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		for _, sys := range perfmodel.DefaultSystems {
			provenance = append(provenance, "perfmodel/"+sys.Name)
		}
	}

	deduped := ds.Dedup()
	if ds.Len() == 0 {
		return fmt.Errorf("dataset is empty after ingestion")
	}
	trainSet, testSet := ds.Split(opts.testFrac, opts.seed)

	trainedOn := provenance
	if opts.trainedOn != "" {
		trainedOn = strings.Split(opts.trainedOn, ",")
	}
	sort.Strings(trainedOn)

	b, reports, err := train.TrainBundle(trainSet, train.BundleConfig{
		Config: train.Config{
			Trees:          opts.trees,
			MaxDepth:       opts.depth,
			MinSamplesLeaf: opts.minLeaf,
			FeatureFrac:    opts.featureFrac,
			Seed:           opts.seed,
		},
		TrainedOn: trainedOn,
	})
	if err != nil {
		return err
	}

	var heldOut map[string]float64
	if testSet.Len() > 0 {
		heldOut, err = train.Evaluate(b, testSet)
		if err != nil {
			return err
		}
	}

	var data []byte
	switch opts.format {
	case "json":
		data, err = b.WriteFile(opts.out)
	case "binary":
		data, err = b.WriteFileBinary(opts.out)
	default:
		return fmt.Errorf("unknown -format %q (want \"json\" or \"binary\")", opts.format)
	}
	if err != nil {
		return err
	}
	parsed, err := bundle.ParseAny(data)
	if err != nil {
		return fmt.Errorf("self-check: written bundle failed to parse: %w", err)
	}

	if !opts.quiet {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Examples:    ds.Len(),
			Deduped:     deduped,
			TrainSize:   trainSet.Len(),
			TestSize:    testSet.Len(),
			Seed:        opts.seed,
			Collectives: reports,
			HeldOut:     heldOut,
			Out:         opts.out,
			SizeBytes:   len(data),
			Hash:        parsed.Hash,
		}); err != nil {
			return err
		}
	}
	return nil
}
