// Command pmlmpi-gateway runs the fleet front door: it partitions
// /v1/select traffic across a replica set by the quantized feature key
// (the same identity the replicas' decision caches use), health-checks
// the backends, retries failed attempts on the next-best replica, and
// exposes per-replica routing state on /debug/replicas.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/buildinfo"
	"github.com/pml-mpi/pmlmpi/pkg/gateway"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

func main() {
	var (
		addr     = flag.String("addr", ":8081", "listen address for the gateway HTTP surface")
		replicas = flag.String("replicas", "", "comma-separated replica set as id=url pairs, e.g. \"r0=http://10.0.0.7:8080,r1=http://10.0.0.8:8080\"")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")

		quantum        = flag.Float64("quantum", selector.DefaultCacheQuantum, "feature-quantization step for partition keys (must match the replicas' cache quantum)")
		maxAttempts    = flag.Int("max-attempts", 3, "replicas one request may try before the gateway answers 502")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "active /healthz probe period for the replica set")
		controlPlane   = flag.String("controlplane", "", "control-plane base URL; /healthz then embeds the fleet's desired manifest")
		timeout        = flag.Duration("proxy-timeout", 10*time.Second, "per-attempt proxy timeout")

		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "deadline for draining in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	o := obs.New(os.Stderr, obs.ParseLevel(*logLevel))
	specs, err := parseReplicas(*replicas)
	if err != nil {
		o.Logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
	if err := run(o, *addr, gateway.Config{
		Replicas:       specs,
		Quantum:        *quantum,
		MaxAttempts:    *maxAttempts,
		HealthInterval: *healthInterval,
		ControlPlane:   *controlPlane,
		Client:         &http.Client{Timeout: *timeout},
	}, *shutdownTimeout); err != nil {
		o.Logger.Error("fatal", "error", err.Error())
		os.Exit(1)
	}
}

// parseReplicas parses the -replicas flag: comma-separated id=url pairs.
func parseReplicas(s string) ([]gateway.ReplicaSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-replicas is required, e.g. -replicas \"r0=http://host0:8080,r1=http://host1:8080\"")
	}
	var specs []gateway.ReplicaSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad replica %q: want id=url", part)
		}
		specs = append(specs, gateway.ReplicaSpec{ID: id, URL: url})
	}
	return specs, nil
}

func run(o *obs.Obs, addr string, cfg gateway.Config, shutdownTimeout time.Duration) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	gw, err := gateway.New(o, cfg)
	if err != nil {
		return err
	}
	go gw.Run(ctx)

	srv := &http.Server{
		Addr:              addr,
		Handler:           gw,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		ids := make([]string, len(cfg.Replicas))
		for i, r := range cfg.Replicas {
			ids[i] = r.ID
		}
		o.Logger.Info("gateway serving",
			"addr", addr,
			"version", buildinfo.Resolve(),
			"replicas", ids,
			"max_attempts", cfg.MaxAttempts)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	o.Logger.Info("shutting down", "timeout", shutdownTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	err = srv.Shutdown(shutdownCtx)
	o.Logger.Info("shutdown complete")
	return err
}
