package buildinfo

import (
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

func TestResolveDefault(t *testing.T) {
	v := Resolve()
	if v == "" {
		t.Fatal("Resolve returned empty version")
	}
	if !strings.HasPrefix(v, "dev") && Version == "dev" {
		t.Errorf("Resolve() = %q, want dev or dev+<rev> for an unstamped build", v)
	}
}

func TestRegisterExposesBuildInfo(t *testing.T) {
	reg := obs.NewRegistry()
	Register(reg)
	var b strings.Builder
	reg.WritePrometheus(&b)
	body := b.String()
	if !strings.Contains(body, "# TYPE pmlmpi_build_info gauge") {
		t.Errorf("metrics missing pmlmpi_build_info family:\n%s", body)
	}
	if !strings.Contains(body, `version="`+Resolve()+`"`) {
		t.Errorf("metrics missing version label %q:\n%s", Resolve(), body)
	}
	if !strings.Contains(body, `go_version="`+GoVersion()+`"`) {
		t.Errorf("metrics missing go_version label:\n%s", body)
	}
	// Idempotent: a second Register must not panic or duplicate.
	Register(reg)
}
