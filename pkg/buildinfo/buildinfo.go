// Package buildinfo stamps the running binary: a version string (overridden
// at link time), the Go toolchain version, and a Prometheus-conventional
// pmlmpi_build_info metric. Load reports and dashboards join on these labels
// to say exactly what they measured.
package buildinfo

import (
	"runtime"
	"runtime/debug"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// Version identifies the build. Override at link time with
//
//	go build -ldflags "-X github.com/pml-mpi/pmlmpi/pkg/buildinfo.Version=v1.2.3"
//
// When left at "dev", Resolve falls back to the VCS revision embedded by the
// Go toolchain, if any.
var Version = "dev"

// Resolve returns the effective version string: the linker-set Version, or
// "dev+<short-rev>" when build metadata carries a VCS revision.
func Resolve() string {
	if Version != "dev" {
		return Version
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return "dev+" + s.Value[:12]
			}
		}
	}
	return Version
}

// GoVersion returns the Go runtime version the binary was built with.
func GoVersion() string { return runtime.Version() }

// Register exposes pmlmpi_build_info{version,go_version} = 1 in reg — the
// standard join key for annotating every other series with what binary
// produced it. Idempotent: re-registering refreshes the same series.
func Register(reg *obs.Registry) {
	reg.Gauge("pmlmpi_build_info",
		"Build metadata of the running binary; the value is always 1.",
		"version", "go_version").Set(1, Resolve(), GoVersion())
}
