package forest_test

import (
	"fmt"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// benchShapes spans the forest sizes the selector sees in practice: the
// shipped bundle's scale (tens of trees), and the larger ensembles the
// parallel path targets.
var benchShapes = []struct {
	trees, depth int
}{
	{16, 5},
	{64, 8},
	{256, 10},
}

func BenchmarkForestPredict(b *testing.B) {
	for _, shape := range benchShapes {
		bd := synth.MustNew(synth.Config{Seed: 99, Collectives: []string{"bench"}, Trees: shape.trees, Depth: shape.depth, Features: 6, Classes: 5})
		c := bd.Collectives["bench"]
		x, err := c.Vector(synth.Points(99, 1)[0])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("trees=%d/depth=%d", shape.trees, shape.depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Forest.Predict(x); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("trees=%d/depth=%d/parallel", shape.trees, shape.depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := c.Forest.PredictWith(x, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
