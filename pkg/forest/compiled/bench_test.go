package compiled_test

import (
	"fmt"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// benchShapes mirrors pkg/forest's BenchmarkForestPredict shapes so the two
// benchmarks compare like for like.
var benchShapes = []struct {
	trees, depth int
}{
	{16, 5},
	{64, 8},
	{256, 10},
}

func BenchmarkCompiledPredict(b *testing.B) {
	for _, shape := range benchShapes {
		bd := synth.MustNew(synth.Config{Seed: 99, Collectives: []string{"bench"}, Trees: shape.trees, Depth: shape.depth, Features: 6, Classes: 5})
		c := bd.Collectives["bench"]
		cf := c.Compiled()
		x, err := c.Vector(synth.Points(99, 1)[0])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("trees=%d/depth=%d", shape.trees, shape.depth), func(b *testing.B) {
			var p forest.Prediction
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := cf.PredictInto(x, &p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCompiledPredictBatch(b *testing.B) {
	bd := synth.MustNew(synth.Config{Seed: 99, Collectives: []string{"bench"}, Trees: 64, Depth: 8, Features: 6, Classes: 5})
	c := bd.Collectives["bench"]
	cf := c.Compiled()
	points := synth.Points(99, 512)
	xs := make([][]float64, len(points))
	for i, pt := range points {
		x, err := c.Vector(pt)
		if err != nil {
			b.Fatal(err)
		}
		xs[i] = x
	}
	for _, size := range []int{16, 64, 256, 512} {
		out := make([]forest.Prediction, size)
		b.Run(fmt.Sprintf("vectors=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := cf.PredictBatch(xs[:size], out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestCompiledSpeedup is the CI performance guard: on the committed
// trainer-emitted fixture, the compiled evaluator must be at least 2x
// faster than the pointer walk. Measured with testing.Benchmark so both
// sides get the same calibration machinery; skipped under -race and in
// -short runs (timing ratios need an unloaded, uninstrumented process).
func TestCompiledSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("timing ratios are meaningless under -race")
	}
	if testing.Short() {
		t.Skip("speedup guard skipped in -short mode")
	}
	b, err := bundle.Load(trainedFixture)
	if err != nil {
		t.Fatalf("Load(%s): %v", trainedFixture, err)
	}
	for name, c := range b.Collectives {
		c := c
		cf := c.Compiled()
		x, err := c.Vector(synth.Points(7, 1)[0])
		if err != nil {
			t.Fatal(err)
		}
		// Interleave three measurements per side and take each side's
		// fastest: the minimum estimates true cost, while a mean would
		// fold scheduler and noisy-neighbor stalls into whichever side
		// they happened to hit.
		pointerNs, compiledNs := int64(1<<62), int64(1<<62)
		for round := 0; round < 3; round++ {
			pointer := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := c.Forest.Predict(x); err != nil {
						b.Fatal(err)
					}
				}
			})
			compiledRes := testing.Benchmark(func(b *testing.B) {
				var p forest.Prediction
				for i := 0; i < b.N; i++ {
					if err := cf.PredictInto(x, &p); err != nil {
						b.Fatal(err)
					}
				}
			})
			if ns := pointer.NsPerOp(); ns < pointerNs {
				pointerNs = ns
			}
			if ns := compiledRes.NsPerOp(); ns < compiledNs {
				compiledNs = ns
			}
		}
		ratio := float64(pointerNs) / float64(compiledNs)
		t.Logf("%s: pointer %v ns/op, compiled %v ns/op, speedup %.2fx",
			name, pointerNs, compiledNs, ratio)
		if ratio < 2.0 {
			t.Errorf("%s: compiled evaluator is only %.2fx faster than pointer (pointer %dns, compiled %dns), want >= 2x",
				name, ratio, pointerNs, compiledNs)
		}
	}
}
