//go:build race

package compiled_test

// raceEnabled mirrors the -race build flag; see race_off_test.go.
const raceEnabled = true
