//go:build !race

package compiled_test

// raceEnabled mirrors the -race build flag so allocation and speedup guards
// can skip themselves: the race runtime adds per-access bookkeeping that
// breaks both AllocsPerRun counts and timing ratios.
const raceEnabled = false
