package compiled

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
)

// DefaultBatchThreshold is the vector count at which PredictBatch starts
// fanning out across goroutines. Below it, per-goroutine overhead outweighs
// the parallel descent; the value was measured with
// BenchmarkCompiledPredictBatch on the trained fixture (sequential wins
// comfortably through ~64 vectors, parity lands in the low hundreds).
const DefaultBatchThreshold = 256

// batchWorkers caps PredictBatch fan-out; more workers than cores only adds
// scheduling overhead.
func batchWorkers(vectors int) int {
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	if max := vectors / 32; w > max {
		w = max // keep at least ~32 vectors per worker
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PredictBatch evaluates every vector in xs across all trees in one pass,
// writing results into out (which must be exactly len(xs) long). The walk
// is tree-major — each tree's arena segment stays hot in cache while every
// vector descends it — and each vector's accumulation still happens in tree
// order, so every result is bit-identical to a standalone Predict on the
// same vector.
//
// Batches of BatchThreshold vectors or more are chunked across goroutines;
// chunking is by vector, so parallelism never changes any result. Below the
// threshold the batch runs on the calling goroutine and, with out's Probs
// and Votes slices pre-sized from an earlier call, performs zero
// allocations.
func (cf *Forest) PredictBatch(xs [][]float64, out []forest.Prediction) error {
	if len(out) != len(xs) {
		return fmt.Errorf("compiled: batch output has %d slots for %d vectors", len(out), len(xs))
	}
	for v, x := range xs {
		if len(x) < cf.nFeatures {
			return fmt.Errorf("compiled: batch vector %d has %d entries, forest needs %d", v, len(x), cf.nFeatures)
		}
	}
	if cf.BatchThreshold > 0 && len(xs) >= cf.BatchThreshold {
		workers := batchWorkers(len(xs))
		if workers > 1 {
			chunk := (len(xs) + workers - 1) / workers
			var wg sync.WaitGroup
			for lo := 0; lo < len(xs); lo += chunk {
				hi := lo + chunk
				if hi > len(xs) {
					hi = len(xs)
				}
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					cf.predictChunk(xs[lo:hi], out[lo:hi])
				}(lo, hi)
			}
			wg.Wait()
			return nil
		}
	}
	cf.predictChunk(xs, out)
	return nil
}

// predictChunk runs the tree-major batch walk over one contiguous vector
// chunk. Inputs are pre-validated by PredictBatch.
func (cf *Forest) predictChunk(xs [][]float64, out []forest.Prediction) {
	nodes := cf.nodes
	nc := int32(cf.nClasses)
	for v := range out {
		out[v].Probs = resizeFloats(out[v].Probs, cf.nClasses)
		out[v].Votes = resizeInts(out[v].Votes, cf.nClasses)
	}
	for _, root := range cf.roots {
		for v, x := range xs {
			i := root
			nd := nodes[i]
			for !nd.isLeaf() {
				next := i + 1
				if !(x[nd.feat()] <= nd.t) {
					next = nd.off()
				}
				i = next
				nd = nodes[i]
			}
			r := cf.leafRef[i]
			off := int32(uint32(r))
			acc := out[v].Probs
			for c, p := range cf.leafProbs[off : off+nc] {
				acc[c] += p
			}
			out[v].Votes[r>>32]++
		}
	}
	for v := range out {
		out[v].Class = cf.finalize(out[v].Probs)
	}
}
