package compiled

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout (all little-endian):
//
//	magic   [4]byte "PMLC"
//	version uint32  (binaryVersion)
//	nClasses, nFeatures, nTrees, nNodes, nLeaves  uint32
//	roots     nTrees  × int32
//	feat      nNodes  × uint16
//	thresh    nNodes  × float64
//	offs      nNodes  × int32
//	leafVotes nLeaves × int32
//	leafProbs nLeaves*nClasses × float64
//
// The arrays are the arena itself — decoding is a bounds-checked copy, no
// tree reconstruction — which is what makes binary loads cheap enough for
// fleet distribution. UnmarshalBinary re-validates structure so a corrupt
// or hostile buffer can never produce a forest whose descent loops or
// indexes out of range.

// binaryMagic identifies a compiled-forest binary blob.
var binaryMagic = [4]byte{'P', 'M', 'L', 'C'}

// binaryVersion is the compiled-forest binary layout version.
const binaryVersion = 1

// binarySize returns the exact encoded size of the forest.
func (cf *Forest) binarySize() int {
	return 4 + 4 + 5*4 + // magic, version, five counts
		4*len(cf.roots) +
		(2+8+4)*len(cf.nodes) + // feat, thresh, offs arrays
		4*len(cf.leafVotes) +
		8*len(cf.leafProbs)
}

// AppendBinary appends the forest's binary encoding to dst and returns the
// extended slice.
func (cf *Forest) AppendBinary(dst []byte) []byte {
	dst = append(dst, binaryMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, binaryVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cf.nClasses))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(cf.nFeatures))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cf.roots)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cf.nodes)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(cf.leafVotes)))
	for _, r := range cf.roots {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(r))
	}
	for _, nd := range cf.nodes {
		// The wire marks leaves with the all-ones sentinel, not the
		// in-memory parked flag.
		if nd.isLeaf() {
			dst = binary.LittleEndian.AppendUint16(dst, leafSentinel)
		} else {
			dst = binary.LittleEndian.AppendUint16(dst, nd.feat())
		}
	}
	for _, nd := range cf.nodes {
		// Leaves carry a canonical zero threshold on the wire; the parked
		// NaN is an in-memory descent artifact.
		if nd.isLeaf() {
			dst = binary.LittleEndian.AppendUint64(dst, 0)
		} else {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(nd.t))
		}
	}
	for i, nd := range cf.nodes {
		// The wire carries a leaf's ordinal, not its self-pointing parked
		// offset; the premultiplied leafRef offset divides back exactly.
		o := nd.off()
		if nd.isLeaf() {
			o = int32(uint32(cf.leafRef[i])) / int32(cf.nClasses)
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(o))
	}
	for _, v := range cf.leafVotes {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, p := range cf.leafProbs {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p))
	}
	return dst
}

// MarshalBinary encodes the forest into a fresh buffer.
func (cf *Forest) MarshalBinary() ([]byte, error) {
	return cf.AppendBinary(make([]byte, 0, cf.binarySize())), nil
}

// UnmarshalBinary decodes data into cf, replacing its contents. Existing
// arena slices are reused when their capacity suffices, so re-decoding a
// same-shaped forest into a warm receiver allocates nothing. The decoded
// structure is fully re-validated (root ordering, preorder child offsets
// within each tree, feature and leaf ranges), so untrusted bytes cannot
// yield a forest that loops or reads out of bounds.
func (cf *Forest) UnmarshalBinary(data []byte) error {
	const header = 4 + 4 + 5*4
	if len(data) < header {
		return fmt.Errorf("compiled: binary forest truncated at %d bytes (header needs %d)", len(data), header)
	}
	if [4]byte(data[:4]) != binaryMagic {
		return fmt.Errorf("compiled: bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != binaryVersion {
		return fmt.Errorf("compiled: unsupported binary version %d (this build reads %d)", v, binaryVersion)
	}
	nClasses := int(binary.LittleEndian.Uint32(data[8:]))
	nFeatures := int(binary.LittleEndian.Uint32(data[12:]))
	nTrees := int(binary.LittleEndian.Uint32(data[16:]))
	nNodes := int(binary.LittleEndian.Uint32(data[20:]))
	nLeaves := int(binary.LittleEndian.Uint32(data[24:]))

	if nClasses <= 0 || nClasses > 1<<16 {
		return fmt.Errorf("compiled: implausible class count %d", nClasses)
	}
	if nFeatures < 0 || nFeatures >= leafFlag {
		return fmt.Errorf("compiled: implausible feature count %d", nFeatures)
	}
	if nTrees <= 0 || nNodes < nTrees || nNodes > maxNodes || nLeaves < nTrees || nLeaves > nNodes {
		return fmt.Errorf("compiled: implausible shape (trees=%d nodes=%d leaves=%d)", nTrees, nNodes, nLeaves)
	}
	nProbs := nLeaves * nClasses
	if nProbs > maxNodes {
		return fmt.Errorf("compiled: %d leaf probabilities exceed the arena bound %d", nProbs, maxNodes)
	}
	want := header + 4*nTrees + 2*nNodes + 8*nNodes + 4*nNodes + 4*nLeaves + 8*nProbs
	if len(data) != want {
		return fmt.Errorf("compiled: binary forest is %d bytes, layout requires %d", len(data), want)
	}

	roots := resizeInt32s(cf.roots, nTrees)
	nodes := resizeNodes(cf.nodes, nNodes)
	lref := resizeUint64s(cf.leafRef, nNodes)
	votes := resizeInt32s(cf.leafVotes, nLeaves)
	probs := resizeFloats(cf.leafProbs, nProbs)

	off := header
	for i := range roots {
		roots[i] = int32(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	// The wire arrays (feat, thresh, offs) interleave into the packed node
	// arena: three passes, each filling one field of every node.
	for i := range nodes {
		nodes[i].meta = uint64(binary.LittleEndian.Uint16(data[off:]))
		off += 2
	}
	for i := range nodes {
		nodes[i].t = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	for i := range nodes {
		nodes[i].meta |= uint64(binary.LittleEndian.Uint32(data[off:])) << 16
		off += 4
	}
	for i := range votes {
		votes[i] = int32(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	for i := range probs {
		probs[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}

	if err := validateArena(nClasses, nFeatures, nLeaves, roots, nodes, votes); err != nil {
		return err
	}
	// The decoded nodes still carry wire semantics (sentinel feature,
	// ordinal offset); repack them into the parked in-memory form now that
	// validation proved every ordinal and vote is in range.
	for i := range nodes {
		lref[i] = 0
		if nodes[i].feat() == leafSentinel {
			k := nodes[i].off()
			lref[i] = packLeafRef(k*int32(nClasses), votes[k])
			nodes[i] = packLeaf(int32(i))
		}
	}
	cf.nClasses = nClasses
	cf.nFeatures = nFeatures
	cf.roots = roots
	cf.nodes = nodes
	cf.leafRef = lref
	cf.leafVotes = votes
	cf.leafProbs = probs
	if cf.BatchThreshold == 0 {
		cf.BatchThreshold = DefaultBatchThreshold
	}
	return nil
}

// DecodeBinary decodes a compiled forest from data into a fresh Forest.
func DecodeBinary(data []byte) (*Forest, error) {
	cf := &Forest{}
	if err := cf.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return cf, nil
}

// validateArena proves the decoded arrays describe a well-formed preorder
// forest: roots partition the arena in ascending order, every internal
// node's right-child offset points strictly past its left child and stays
// inside its tree (so descent strictly advances and must terminate at a
// leaf), feature indices fit the declared vector length, and every leaf's
// ordinal and vote are in range.
func validateArena(nClasses, nFeatures, nLeaves int, roots []int32, nodes []node, votes []int32) error {
	nNodes := len(nodes)
	for ti, r := range roots {
		if int(r) >= nNodes || r < 0 {
			return fmt.Errorf("compiled: tree %d root %d outside arena [0,%d)", ti, r, nNodes)
		}
		if ti == 0 {
			if r != 0 {
				return fmt.Errorf("compiled: first root at %d, want 0", r)
			}
		} else if r <= roots[ti-1] {
			return fmt.Errorf("compiled: roots not strictly ascending at tree %d", ti)
		}
	}
	for ti := range roots {
		lo := roots[ti]
		hi := int32(nNodes)
		if ti+1 < len(roots) {
			hi = roots[ti+1]
		}
		for i := lo; i < hi; i++ {
			nd := nodes[i]
			if nd.feat() == leafSentinel {
				k := nd.off()
				if k < 0 || int(k) >= nLeaves {
					return fmt.Errorf("compiled: tree %d node %d leaf ordinal %d out of range [0,%d)", ti, i-lo, k, nLeaves)
				}
				if v := votes[k]; v < 0 || int(v) >= nClasses {
					return fmt.Errorf("compiled: tree %d node %d vote class %d out of range [0,%d)", ti, i-lo, v, nClasses)
				}
				if b := math.Float64bits(nd.t); b != 0 {
					return fmt.Errorf("compiled: tree %d node %d leaf threshold %#x not canonical zero", ti, i-lo, b)
				}
				continue
			}
			if int(nd.feat()) >= nFeatures {
				return fmt.Errorf("compiled: tree %d node %d feature %d out of range [0,%d)", ti, i-lo, nd.feat(), nFeatures)
			}
			// Preorder invariant: left child at i+1, left subtree fills
			// (i, off), right child at off before the tree's end. This
			// bounds i+1 < hi too, so descent can never escape.
			if r := nd.off(); r <= i+1 || r >= hi {
				return fmt.Errorf("compiled: tree %d node %d right child %d outside (%d,%d)", ti, i-lo, r, i+1-lo, hi-lo)
			}
		}
	}
	return nil
}

// resizeInt32s returns a length-n slice reusing s's backing array when
// possible; contents are overwritten by the caller.
func resizeInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// resizeNodes is resizeInt32s for the packed node arena.
func resizeNodes(s []node, n int) []node {
	if cap(s) < n {
		return make([]node, n)
	}
	return s[:n]
}

// resizeUint64s is resizeInt32s for uint64 slices.
func resizeUint64s(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
