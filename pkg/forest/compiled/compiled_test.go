package compiled_test

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/forest/compiled"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// trainedFixture is the committed trainer-emitted bundle shared with
// pkg/bundle's round-trip tests.
const trainedFixture = "../../bundle/testdata/trained_small.json"

// synthShapes spans small, deep, wide, and degenerate forest geometries for
// the differential tests.
var synthShapes = []synth.Config{
	{Seed: 1},
	{Seed: 2, Trees: 1, Depth: 1, Features: 1, Classes: 2},
	{Seed: 3, Trees: 64, Depth: 10, Features: 14, Classes: 7},
	{Seed: 4, Trees: 7, Depth: 3, Features: 2, Classes: 3},
	{Seed: 5, Labeled: true, Trees: 12, Depth: 6, Collectives: []string{"allgather", "broadcast"}},
}

// samePrediction fails the test unless a and b carry the exact same bits —
// class, every probability, every vote.
func samePrediction(t *testing.T, label string, a, b forest.Prediction) {
	t.Helper()
	if a.Class != b.Class {
		t.Fatalf("%s: class %d != %d", label, a.Class, b.Class)
	}
	if len(a.Probs) != len(b.Probs) || len(a.Votes) != len(b.Votes) {
		t.Fatalf("%s: shape mismatch (probs %d/%d, votes %d/%d)",
			label, len(a.Probs), len(b.Probs), len(a.Votes), len(b.Votes))
	}
	for c := range a.Probs {
		if math.Float64bits(a.Probs[c]) != math.Float64bits(b.Probs[c]) {
			t.Fatalf("%s: probs[%d] = %x != %x (%v vs %v)", label, c,
				math.Float64bits(a.Probs[c]), math.Float64bits(b.Probs[c]), a.Probs[c], b.Probs[c])
		}
		if a.Votes[c] != b.Votes[c] {
			t.Fatalf("%s: votes[%d] = %d != %d", label, c, a.Votes[c], b.Votes[c])
		}
	}
}

// TestCompiledMatchesPointer sweeps synthetic forests of varied shape and
// checks every prediction is bit-identical between the compiled and pointer
// evaluators, including on NaN and ±Inf feature values.
func TestCompiledMatchesPointer(t *testing.T) {
	for _, cfg := range synthShapes {
		b := synth.MustNew(cfg)
		for name, c := range b.Collectives {
			cf := c.Compiled()
			if cf == nil {
				t.Fatalf("seed %d %s: Compiled() == nil", cfg.Seed, name)
			}
			points := synth.Points(cfg.Seed, 200)
			for i, pt := range points {
				x, err := c.Vector(pt)
				if err != nil {
					t.Fatal(err)
				}
				if i%5 == 0 && len(x) > 0 {
					x[i%len(x)] = math.NaN()
				}
				if i%7 == 0 && len(x) > 1 {
					x[(i+1)%len(x)] = math.Inf(1 - 2*(i%2))
				}
				want, err := c.Forest.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cf.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				samePrediction(t, name, got, want)
			}
		}
	}
}

// TestCompiledMatchesPointerOnTrainedFixture pins equivalence on the real
// trainer-emitted artifact, not just synthetic forests.
func TestCompiledMatchesPointerOnTrainedFixture(t *testing.T) {
	b, err := bundle.Load(trainedFixture)
	if err != nil {
		t.Fatalf("Load(%s): %v", trainedFixture, err)
	}
	for name, c := range b.Collectives {
		cf := c.Compiled()
		if cf == nil {
			t.Fatalf("%s: Compiled() == nil", name)
		}
		for _, pt := range synth.Points(42, 300) {
			x, err := c.Vector(pt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.Forest.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cf.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			samePrediction(t, name, got, want)
		}
	}
}

// TestDecompileRoundTrip proves Compile preserves full structure: the
// decompiled forest validates, predicts bit-identically to the original,
// and recompiling it reproduces the exact arena bytes (Compile∘Decompile
// is a fixed point, even though node order within a tree is re-laid in
// preorder).
func TestDecompileRoundTrip(t *testing.T) {
	b := synth.MustNew(synth.Config{Seed: 11, Trees: 9, Depth: 5, Features: 6, Classes: 4})
	for name, c := range b.Collectives {
		cf := c.Compiled()
		back := cf.Decompile()
		if err := back.Validate(len(c.Features)); err != nil {
			t.Fatalf("%s: decompiled forest invalid: %v", name, err)
		}
		for _, pt := range synth.Points(11, 50) {
			x, err := c.Vector(pt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.Forest.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := back.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			samePrediction(t, name, got, want)
		}
		again, err := compiled.Compile(back, len(c.Features))
		if err != nil {
			t.Fatalf("%s: recompile: %v", name, err)
		}
		b1, _ := cf.MarshalBinary()
		b2, _ := again.MarshalBinary()
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("%s: Compile(Decompile(cf)) encodes differently than cf", name)
		}
	}
}

// TestCompiledAccessors checks the shape accessors against the source
// forest.
func TestCompiledAccessors(t *testing.T) {
	b := synth.MustNew(synth.Config{Seed: 12, Trees: 5, Depth: 4, Features: 3, Classes: 3})
	for _, c := range b.Collectives {
		cf := c.Compiled()
		if cf.NumTrees() != len(c.Forest.Trees) {
			t.Errorf("NumTrees %d, want %d", cf.NumTrees(), len(c.Forest.Trees))
		}
		if cf.NClasses() != c.Forest.NClasses {
			t.Errorf("NClasses %d, want %d", cf.NClasses(), c.Forest.NClasses)
		}
		if cf.NumFeatures() != len(c.Features) {
			t.Errorf("NumFeatures %d, want %d", cf.NumFeatures(), len(c.Features))
		}
		nodes := 0
		for _, tr := range c.Forest.Trees {
			nodes += len(tr.Nodes)
		}
		if cf.NumNodes() != nodes {
			t.Errorf("NumNodes %d, want %d", cf.NumNodes(), nodes)
		}
	}
}

// TestCompileRejectsInvalid checks Compile re-validates instead of trusting
// its input.
func TestCompileRejectsInvalid(t *testing.T) {
	cyclic := &forest.Forest{NClasses: 2, Trees: []forest.Tree{{Nodes: []forest.Node{
		{F: 0, T: 1, L: 0, R: 0}, // self-loop
	}}}}
	if _, err := compiled.Compile(cyclic, 1); err == nil {
		t.Error("Compile accepted a cyclic forest")
	}
	b := synth.MustNew(synth.Config{Seed: 13, Trees: 2, Depth: 2, Features: 2, Classes: 2})
	for _, c := range b.Collectives {
		if _, err := compiled.Compile(c.Forest, 1); err == nil {
			t.Error("Compile accepted a forest whose features exceed the declared vector length")
		}
		break
	}
}

// TestPredictShortVector checks the single entry point still validates
// input length.
func TestPredictShortVector(t *testing.T) {
	b := synth.MustNew(synth.Config{Seed: 14, Trees: 2, Depth: 2, Features: 4, Classes: 2})
	for _, c := range b.Collectives {
		if _, err := c.Compiled().Predict(make([]float64, 1)); err == nil {
			t.Error("Predict accepted a short feature vector")
		}
	}
}

// TestPredictBatchMatchesSingle drives PredictBatch both under and over the
// goroutine fan-out threshold and checks every slot is bit-identical to a
// standalone Predict, proving chunked parallelism never changes a result.
func TestPredictBatchMatchesSingle(t *testing.T) {
	b := synth.MustNew(synth.Config{Seed: 15, Trees: 24, Depth: 7, Features: 8, Classes: 5})
	for name, c := range b.Collectives {
		cf := c.Compiled()
		points := synth.Points(15, 96)
		xs := make([][]float64, len(points))
		for i, pt := range points {
			x, err := c.Vector(pt)
			if err != nil {
				t.Fatal(err)
			}
			xs[i] = x
		}
		for _, threshold := range []int{4 /* forces fan-out */, len(xs) + 1 /* sequential */, 0 /* fan-out disabled */} {
			cf.BatchThreshold = threshold
			out := make([]forest.Prediction, len(xs))
			if err := cf.PredictBatch(xs, out); err != nil {
				t.Fatalf("%s threshold=%d: %v", name, threshold, err)
			}
			for i, x := range xs {
				want, err := cf.Predict(x)
				if err != nil {
					t.Fatal(err)
				}
				samePrediction(t, name, out[i], want)
			}
		}
		cf.BatchThreshold = compiled.DefaultBatchThreshold
	}
}

// TestPredictBatchValidates checks the batch entry point's error paths.
func TestPredictBatchValidates(t *testing.T) {
	b := synth.MustNew(synth.Config{Seed: 16, Trees: 2, Depth: 2, Features: 4, Classes: 2})
	for _, c := range b.Collectives {
		cf := c.Compiled()
		xs := [][]float64{make([]float64, 4), make([]float64, 1)}
		if err := cf.PredictBatch(xs, make([]forest.Prediction, 2)); err == nil {
			t.Error("PredictBatch accepted a short vector")
		}
		if err := cf.PredictBatch(xs[:1], make([]forest.Prediction, 2)); err == nil {
			t.Error("PredictBatch accepted a mismatched output slice")
		}
	}
}

// TestInstrument checks the atomic predict hook fires and can be removed.
func TestInstrument(t *testing.T) {
	b := synth.MustNew(synth.Config{Seed: 17, Trees: 2, Depth: 2, Features: 3, Classes: 2})
	for _, c := range b.Collectives {
		cf := c.Compiled()
		var calls atomic.Int64
		cf.Instrument(func(seconds float64) {
			if seconds < 0 {
				t.Error("negative predict duration")
			}
			calls.Add(1)
		})
		x := make([]float64, cf.NumFeatures())
		if _, err := cf.Predict(x); err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 1 {
			t.Fatalf("hook fired %d times, want 1", calls.Load())
		}
		cf.Instrument(nil)
		if _, err := cf.Predict(x); err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 1 {
			t.Fatal("hook fired after removal")
		}
	}
}
