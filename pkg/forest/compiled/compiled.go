// Package compiled is the hot-path forest evaluator: it flattens a
// validated pointer-linked forest.Forest into contiguous structure-of-arrays
// storage compiled once at bundle load time, then evaluates with
// cache-line-friendly, branch-light descent and no per-call error checking
// (structural validity is proven at compile time, so the descent loop cannot
// go out of bounds or cycle).
//
// Each tree is laid out in preorder: a node's left child is the very next
// arena slot, so only the right child needs an explicit offset and a
// left-leaning descent reads memory sequentially. In memory each node packs
// the split threshold and a meta word (feature index in the low 16 bits,
// right-child index or leaf ordinal above) into 16 bytes, so the walk costs
// one bounds check and one cache line per node — a fraction of the pointer
// representation's 56-byte nodes. The wire format (binary.go) stays plain
// structure-of-arrays: featureIdx []uint16, threshold []float64, childOffset
// []int32, plus leaf payloads.
//
// The compiled evaluator is bit-identical to forest.Forest.Predict: leaf
// distributions accumulate in the same tree and class order, votes use the
// same first-wins argmax, and the final mean uses the same division, so
// every float in the result carries the exact same bits. A differential
// fuzz target and a golden prediction-table test pin that guarantee.
//
// A compiled Forest is immutable after Compile and therefore safe to share
// across goroutines and registry generations without synchronization.
package compiled

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
)

// leafSentinel marks a leaf in the wire format's feature-index array.
const leafSentinel = math.MaxUint16

// leafFlag marks a leaf in the in-memory meta word (bit 15 of the feature
// bits), and featMask extracts the real feature index below it. Compile
// rejects forests with 1<<15 or more features, so the flag can never
// collide with a real feature index.
const (
	leafFlag = 1 << 15
	featMask = leafFlag - 1
)

// maxNodes bounds the node arena so every arena index fits comfortably in
// int32.
const maxNodes = 1 << 30

// node is one compiled tree node: the split threshold plus a meta word
// packing the feature bits (low 16: feature index, or leafFlag for a leaf)
// and the next-node arena index in bits 16..47. One 16-byte load brings in
// everything the descent needs.
//
// A leaf is a *parked* node: its threshold is NaN and its packed offset
// points at itself, so the unguarded descent step — go right unless
// x[feat&featMask] <= t — self-loops forever once a chain reaches its leaf
// (NaN compares false, so it always goes "right" to itself, and its feature
// bits mask to 0 so the x read stays in bounds). That lets two trees
// descend in lockstep with no per-step "am I done?" branches: the loop just
// runs until both chains are parked. Leaf payloads (leafProbs offset and
// hard-vote class) live in the parallel leafRef array, keyed by the leaf's
// own arena index.
type node struct {
	t    float64
	meta uint64
}

// packNode builds an internal node's packed form.
func packNode(feat uint16, off int32, t float64) node {
	return node{t: t, meta: uint64(feat) | uint64(uint32(off))<<16}
}

// packLeaf builds a leaf's parked form: NaN threshold, self-pointing
// offset.
func packLeaf(self int32) node {
	return node{t: math.NaN(), meta: leafFlag | uint64(uint32(self))<<16}
}

// packLeafRef builds a leaf's payload word from its premultiplied leafProbs
// offset and hard-vote class.
func packLeafRef(probOff int32, vote int32) uint64 {
	return uint64(uint32(probOff)) | uint64(uint32(vote))<<32
}

// feat returns the low 16 feature bits: the split feature index for an
// internal node, leafFlag for a leaf.
func (n node) feat() uint16 { return uint16(n.meta) }

// isLeaf reports whether the node is a (parked) leaf.
func (n node) isLeaf() bool { return n.meta&leafFlag != 0 }

// off returns the next-node arena index: the right child for an internal
// node, the node itself for a leaf.
func (n node) off() int32 { return int32(uint32(n.meta >> 16)) }

// Forest is a compiled ensemble. Trees live tree-after-tree in one packed
// node arena, each tree in preorder:
//
//   - an internal node splits on x[feat] <= t (left child at i+1, right
//     child at the packed offset);
//   - a leaf is parked (see node) and leafRef[i] carries its payload: the
//     leafProbs offset of its class distribution plus its precomputed
//     hard-vote class;
//   - leafProbs holds leaf k's class distribution at [k*nClasses,
//     (k+1)*nClasses) and leafVotes[k] is its hard-vote class (the wire
//     format's view of the same data).
//
// roots[t] is tree t's root index (trees are stored contiguously, so the
// roots double as tree boundaries).
type Forest struct {
	nClasses  int
	nFeatures int
	roots     []int32
	nodes     []node
	leafRef   []uint64
	leafVotes []int32
	leafProbs []float64

	// BatchThreshold is the vector count at or above which PredictBatch
	// fans out across goroutines (DefaultBatchThreshold after Compile;
	// <= 0 disables fan-out). Set it before the forest is shared — like
	// every other field it must not change once evaluation starts.
	BatchThreshold int

	// onPredict mirrors forest.Forest's instrumentation hook: it receives
	// the wall time of every Predict/PredictInto call. Atomic so a
	// hot-swapped generation can be instrumented while serving.
	onPredict atomic.Pointer[func(seconds float64)]
}

// NClasses returns the number of algorithm classes the forest votes over.
func (cf *Forest) NClasses() int { return cf.nClasses }

// NumFeatures returns the feature-vector length the forest expects.
func (cf *Forest) NumFeatures() int { return cf.nFeatures }

// NumTrees returns the ensemble size.
func (cf *Forest) NumTrees() int { return len(cf.roots) }

// NumNodes returns the total node count across all trees.
func (cf *Forest) NumNodes() int { return len(cf.nodes) }

// NumLeaves returns the total leaf count across all trees.
func (cf *Forest) NumLeaves() int { return len(cf.leafVotes) }

// Instrument registers fn to receive the wall-clock seconds of every
// subsequent predict call, or removes the hook when fn is nil. Safe to call
// concurrently with evaluation.
func (cf *Forest) Instrument(fn func(seconds float64)) {
	if fn == nil {
		cf.onPredict.Store(nil)
		return
	}
	cf.onPredict.Store(&fn)
}

// Compile flattens f into packed arena form. It re-runs
// forest.Forest.Validate against numFeatures first, so a compiled forest is
// structurally sound by construction: every right-child offset points
// forward within its tree, every feature index is below numFeatures, and
// every leaf distribution has exactly NClasses entries. Each tree is re-laid
// in preorder; node order within the arena changes, but tree order and
// per-leaf class order — the two things float accumulation depends on — are
// preserved exactly, which is what keeps compiled evaluation bit-identical
// to the pointer walk.
func Compile(f *forest.Forest, numFeatures int) (*Forest, error) {
	if err := f.Validate(numFeatures); err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	if numFeatures >= leafFlag {
		return nil, fmt.Errorf("compile: %d features overflow the %d-feature index space", numFeatures, leafFlag-1)
	}
	total, leaves := 0, 0
	for ti := range f.Trees {
		nodes := f.Trees[ti].Nodes
		total += len(nodes)
		for ni := range nodes {
			if nodes[ni].Leaf() {
				leaves++
			}
		}
	}
	if total > maxNodes {
		return nil, fmt.Errorf("compile: %d nodes exceed the arena bound %d", total, maxNodes)
	}
	if leaves*f.NClasses > maxNodes {
		return nil, fmt.Errorf("compile: %d leaf probabilities exceed the arena bound %d", leaves*f.NClasses, maxNodes)
	}

	cf := &Forest{
		nClasses:       f.NClasses,
		nFeatures:      numFeatures,
		roots:          make([]int32, len(f.Trees)),
		nodes:          make([]node, 0, total),
		leafRef:        make([]uint64, 0, total),
		BatchThreshold: DefaultBatchThreshold,
	}
	for ti := range f.Trees {
		nodes := f.Trees[ti].Nodes
		cf.roots[ti] = int32(len(cf.nodes))
		// Preorder emission: parent, left subtree, then right subtree, so
		// the left child always lands at parent+1. Validate proved children
		// point forward, so the recursion terminates.
		var emit func(ni int)
		emit = func(ni int) {
			n := &nodes[ni]
			if n.Leaf() {
				// Precompute the hard vote with the pointer evaluator's
				// exact argmax rule (strict >, lowest index wins ties).
				best := 0
				for c, p := range n.D {
					if p > n.D[best] {
						best = c
					}
				}
				cf.nodes = append(cf.nodes, packLeaf(int32(len(cf.nodes))))
				cf.leafRef = append(cf.leafRef, packLeafRef(int32(len(cf.leafProbs)), int32(best)))
				cf.leafVotes = append(cf.leafVotes, int32(best))
				cf.leafProbs = append(cf.leafProbs, n.D...)
				return
			}
			i := len(cf.nodes)
			cf.nodes = append(cf.nodes, packNode(uint16(n.F), 0, n.T))
			cf.leafRef = append(cf.leafRef, 0)
			emit(n.L)
			cf.nodes[i].meta |= uint64(uint32(len(cf.nodes))) << 16
			emit(n.R)
		}
		emit(0)
	}
	return cf, nil
}

// Decompile reconstructs a pointer-linked forest from the compiled form.
// Node order within each tree is the compiled preorder, not the source
// order, but the tree structure, thresholds, and leaf distributions are
// exact — Compile(Decompile(cf)) re-encodes to the same bytes, and every
// prediction is bit-identical. Used by the differential tests.
func (cf *Forest) Decompile() *forest.Forest {
	f := &forest.Forest{
		NClasses: cf.nClasses,
		Trees:    make([]forest.Tree, len(cf.roots)),
	}
	nc := int32(cf.nClasses)
	for ti := range cf.roots {
		lo, hi := cf.treeBounds(ti)
		nodes := make([]forest.Node, hi-lo)
		for i := lo; i < hi; i++ {
			n := &nodes[i-lo]
			nd := cf.nodes[i]
			if !nd.isLeaf() {
				n.F = int(nd.feat())
				n.T = nd.t
				n.L = int(i + 1 - lo)
				n.R = int(nd.off() - lo)
				continue
			}
			n.F = -1
			off := int32(uint32(cf.leafRef[i]))
			n.D = append([]float64(nil), cf.leafProbs[off:off+nc]...)
		}
		f.Trees[ti] = forest.Tree{Nodes: nodes}
	}
	return f
}

// treeBounds returns tree ti's [lo, hi) node range in the arena.
func (cf *Forest) treeBounds(ti int) (lo, hi int32) {
	lo = cf.roots[ti]
	if ti+1 < len(cf.roots) {
		return lo, cf.roots[ti+1]
	}
	return lo, int32(len(cf.nodes))
}

// treeChunk is the tree-group size of accumulate's two-phase walk: leaf
// arena indices for up to treeChunk trees are buffered on the stack before
// accumulation, so descent order can differ from accumulation order.
const treeChunk = 64

// walkChunk descends every tree rooted in roots on x, writing each tree's
// final leaf arena index into the matching li slot. Trees are walked two at
// a time: the two load chains are independent, so the CPU overlaps their
// node fetches instead of serializing them, roughly halving the
// latency-bound descent time. Parked leaves (see node) make the lockstep
// loop guard-free — a chain that reaches its leaf keeps harmlessly stepping
// in place until the other one finishes — and the predicate matches the
// pointer walk exactly: x[f] <= t goes left, everything else — including
// NaN — goes right, written as a negated <= so NaN routes identically in
// both evaluators.
//
// Callers must guarantee len(x) > 0 (any forest with an internal node
// requires it; see accumulate for the leaf-only case).
// The inner loop reads nodes and x through raw pointers: bounds checks cost
// ~15% of the whole predict here, and every index is already proven in
// range before evaluation ever starts — Compile and UnmarshalBinary
// validate that each node's packed offset stays inside its tree's arena
// segment, each split's feature index is below nFeatures (and PredictInto
// rejects vectors shorter than nFeatures), and a parked leaf's feature bits
// mask to 0 (walkChunk's callers guarantee len(x) > 0).
func walkChunk(nodes []node, x []float64, roots []int32, li []int32) {
	np := unsafe.Pointer(unsafe.SliceData(nodes))
	xp := unsafe.Pointer(unsafe.SliceData(x))
	t := 0
	for ; t+2 <= len(roots); t += 2 {
		i0, i1 := roots[t], roots[t+1]
		n0 := *(*node)(unsafe.Add(np, uintptr(uint32(i0))*16))
		n1 := *(*node)(unsafe.Add(np, uintptr(uint32(i1))*16))
		for n0.meta&n1.meta&leafFlag == 0 {
			next0 := i0 + 1
			if !(*(*float64)(unsafe.Add(xp, uintptr(uint16(n0.meta)&featMask)*8)) <= n0.t) {
				next0 = n0.off()
			}
			i0 = next0
			n0 = *(*node)(unsafe.Add(np, uintptr(uint32(i0))*16))
			next1 := i1 + 1
			if !(*(*float64)(unsafe.Add(xp, uintptr(uint16(n1.meta)&featMask)*8)) <= n1.t) {
				next1 = n1.off()
			}
			i1 = next1
			n1 = *(*node)(unsafe.Add(np, uintptr(uint32(i1))*16))
		}
		li[t], li[t+1] = i0, i1
	}
	if t < len(roots) {
		i := roots[t]
		nd := nodes[i]
		for !nd.isLeaf() {
			next := i + 1
			if !(x[nd.feat()] <= nd.t) {
				next = nd.off()
			}
			i = next
			nd = nodes[i]
		}
		li[t] = i
	}
}

// accumulate descends every tree on x, adding leaf distributions into acc
// and hard votes into votes — the allocation-free core shared by the single
// and batch entry points. x must have at least nFeatures entries and votes
// must be a zeroed nClasses-sized slice (checked by callers); acc must be
// nClasses long but its contents are overwritten, not added to.
//
// The common small class counts get specialized loops that keep the running
// sums in registers instead of bouncing every add through memory; every
// variant performs the same adds in the same tree and class order starting
// from zero, so bit-identity with the pointer evaluator is unaffected.
// accumulate returns the argmax class, computed with the pointer
// evaluator's exact rule (strict >, lowest index wins ties).
func (cf *Forest) accumulate(x []float64, acc []float64, votes []int) int {
	if len(x) == 0 {
		// Only a forest with zero declared features gets here, and such a
		// forest is all leaf-only trees (any split node forces nFeatures
		// >= 1), so no descent step ever reads x.
		cf.accumulateLeafOnly(acc, votes)
		return cf.finalize(acc)
	}
	switch cf.nClasses {
	case 3:
		return cf.accumulate3(x, acc, votes)
	case 4:
		return cf.accumulate4(x, acc, votes)
	default:
		cf.accumulateAny(x, acc, votes)
		return cf.finalize(acc)
	}
}

func (cf *Forest) accumulate3(x []float64, acc []float64, votes []int) int {
	lp, lref := cf.leafProbs, cf.leafRef
	roots := cf.roots
	var li [treeChunk]int32
	var a0, a1, a2 float64
	for g := 0; g < len(roots); g += treeChunk {
		n := len(roots) - g
		if n > treeChunk {
			n = treeChunk
		}
		walkChunk(cf.nodes, x, roots[g:g+n], li[:n])
		for _, i := range li[:n] {
			r := lref[i]
			off := int(uint32(r))
			a0 += lp[off]
			a1 += lp[off+1]
			a2 += lp[off+2]
			votes[r>>32]++
		}
	}
	// Mean and argmax stay in registers: same divides, same strict-> /
	// first-wins comparison sequence as finalize, so results are
	// bit-identical.
	n := float64(len(roots))
	a0 /= n
	a1 /= n
	a2 /= n
	acc[0], acc[1], acc[2] = a0, a1, a2
	cls, best := 0, a0
	if a1 > best {
		cls, best = 1, a1
	}
	if a2 > best {
		cls = 2
	}
	return cls
}

func (cf *Forest) accumulate4(x []float64, acc []float64, votes []int) int {
	lp, lref := cf.leafProbs, cf.leafRef
	roots := cf.roots
	var li [treeChunk]int32
	var a0, a1, a2, a3 float64
	for g := 0; g < len(roots); g += treeChunk {
		n := len(roots) - g
		if n > treeChunk {
			n = treeChunk
		}
		walkChunk(cf.nodes, x, roots[g:g+n], li[:n])
		for _, i := range li[:n] {
			r := lref[i]
			off := int(uint32(r))
			a0 += lp[off]
			a1 += lp[off+1]
			a2 += lp[off+2]
			a3 += lp[off+3]
			votes[r>>32]++
		}
	}
	n := float64(len(roots))
	a0 /= n
	a1 /= n
	a2 /= n
	a3 /= n
	acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
	cls, best := 0, a0
	if a1 > best {
		cls, best = 1, a1
	}
	if a2 > best {
		cls, best = 2, a2
	}
	if a3 > best {
		cls = 3
	}
	return cls
}

func (cf *Forest) accumulateAny(x []float64, acc []float64, votes []int) {
	lp, lref := cf.leafProbs, cf.leafRef
	nc := cf.nClasses
	roots := cf.roots
	var li [treeChunk]int32
	for c := range acc {
		acc[c] = 0
	}
	for g := 0; g < len(roots); g += treeChunk {
		n := len(roots) - g
		if n > treeChunk {
			n = treeChunk
		}
		walkChunk(cf.nodes, x, roots[g:g+n], li[:n])
		for _, i := range li[:n] {
			r := lref[i]
			off := int(uint32(r))
			for c, p := range lp[off : off+nc] {
				acc[c] += p
			}
			votes[r>>32]++
		}
	}
}

// accumulateLeafOnly handles the degenerate zero-feature forest, where
// every tree is a single leaf.
func (cf *Forest) accumulateLeafOnly(acc []float64, votes []int) {
	lp, lref := cf.leafProbs, cf.leafRef
	nc := cf.nClasses
	for c := range acc {
		acc[c] = 0
	}
	for _, i := range cf.roots {
		r := lref[i]
		off := int(uint32(r))
		for c, p := range lp[off : off+nc] {
			acc[c] += p
		}
		votes[r>>32]++
	}
}

// finalize converts accumulated sums into the mean distribution and argmax
// class. The divides run in their own loop so they pipeline instead of each
// gating an argmax comparison; the resulting values and the argmax rule
// (strict >, lowest index wins) are exactly the pointer evaluator's.
func (cf *Forest) finalize(acc []float64) int {
	n := float64(len(cf.roots))
	for c := range acc {
		acc[c] /= n
	}
	cls := 0
	for c := range acc {
		if acc[c] > acc[cls] {
			cls = c
		}
	}
	return cls
}

// PredictInto evaluates the forest on x, writing the result into p. The
// Probs and Votes slices inside p are reused when they have sufficient
// capacity, so a caller that recycles one Prediction value pays zero
// allocations per call in steady state.
func (cf *Forest) PredictInto(x []float64, p *forest.Prediction) error {
	if len(x) < cf.nFeatures {
		return fmt.Errorf("compiled: feature vector has %d entries, forest needs %d", len(x), cf.nFeatures)
	}
	var start time.Time
	fn := cf.onPredict.Load()
	if fn != nil {
		start = time.Now()
	}
	acc := resizeFloatsCap(p.Probs, cf.nClasses)
	votes := resizeInts(p.Votes, cf.nClasses)
	p.Class = cf.accumulate(x, acc, votes)
	p.Probs = acc
	p.Votes = votes
	if fn != nil {
		(*fn)(time.Since(start).Seconds())
	}
	return nil
}

// Predict evaluates the forest on x into a fresh Prediction — the drop-in
// replacement for forest.Forest.Predict with identical results.
func (cf *Forest) Predict(x []float64) (forest.Prediction, error) {
	var p forest.Prediction
	err := cf.PredictInto(x, &p)
	return p, err
}

// resizeFloatsCap returns a length-n slice reusing s's backing array when
// capacity allows; contents are overwritten by the caller, not zeroed.
func resizeFloatsCap(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// resizeFloats returns a zeroed slice of length n, reusing s's backing
// array when capacity allows.
func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resizeInts is resizeFloats for int slices.
func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
