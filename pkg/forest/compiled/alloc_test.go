package compiled_test

import (
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/forest/compiled"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// allocFixture compiles one collective of a mid-sized synthetic bundle and
// extracts a feature vector for it.
func allocFixture(t testing.TB) (cf *compiled.Forest, x []float64) {
	t.Helper()
	b := synth.MustNew(synth.Config{Seed: 21, Collectives: []string{"alloc"}, Trees: 48, Depth: 8, Features: 8, Classes: 5})
	c := b.Collectives["alloc"]
	v, err := c.Vector(synth.Points(21, 1)[0])
	if err != nil {
		t.Fatal(err)
	}
	return c.Compiled(), v
}

// TestPredictIntoZeroAlloc pins the hot path's allocation contract: with a
// reused Prediction, PredictInto allocates nothing per call.
func TestPredictIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	cf, x := allocFixture(t)
	var p forest.Prediction
	if err := cf.PredictInto(x, &p); err != nil { // warm the buffers
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := cf.PredictInto(x, &p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictInto allocates %.1f objects per call, want 0", allocs)
	}
}

// TestPredictBatchZeroAllocSteadyState pins the sequential batch path: once
// the output slots' Probs/Votes buffers are warm, a below-threshold batch
// allocates nothing.
func TestPredictBatchZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	cf, x := allocFixture(t)
	xs := make([][]float64, 32) // well below DefaultBatchThreshold
	for i := range xs {
		xs[i] = x
	}
	out := make([]forest.Prediction, len(xs))
	if err := cf.PredictBatch(xs, out); err != nil { // warm every slot
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := cf.PredictBatch(xs, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sequential PredictBatch allocates %.1f objects per call, want 0", allocs)
	}
}

// TestUnmarshalBinaryZeroAllocWarm pins the decode path: re-decoding a
// same-shaped forest into a warm receiver reuses its arena and allocates
// nothing.
func TestUnmarshalBinaryZeroAllocWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	cf, _ := allocFixture(t)
	data, err := cf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	warm := &compiled.Forest{}
	if err := warm.UnmarshalBinary(data); err != nil { // allocate the arena once
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := warm.UnmarshalBinary(data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm UnmarshalBinary allocates %.1f objects per call, want 0", allocs)
	}
}
