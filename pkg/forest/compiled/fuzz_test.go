package compiled_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/forest/compiled"
)

// fuzzForest derives a small, valid random forest from the fuzz inputs:
// shape bytes pick the geometry, seed drives every structural choice. The
// generator appends parents before children (like pkg/synth), so the forest
// always passes Validate and the fuzzer explores evaluator behavior, not
// input rejection.
func fuzzForest(seed int64, shape []byte) (*forest.Forest, int) {
	at := func(i int, mod, min int) int {
		if i < len(shape) {
			return min + int(shape[i])%mod
		}
		return min
	}
	trees := at(0, 8, 1)
	depth := at(1, 6, 1)
	features := at(2, 12, 1)
	classes := at(3, 6, 2)

	rng := rand.New(rand.NewSource(seed))
	f := &forest.Forest{NClasses: classes, Trees: make([]forest.Tree, trees)}
	for t := range f.Trees {
		var nodes []forest.Node
		var build func(d int) int
		build = func(d int) int {
			idx := len(nodes)
			nodes = append(nodes, forest.Node{})
			if d <= 0 || rng.Float64() < 0.2 {
				dist := make([]float64, classes)
				for i := range dist {
					dist[i] = rng.Float64()
				}
				nodes[idx] = forest.Node{F: -1, D: dist}
				return idx
			}
			feat := rng.Intn(features)
			thresh := rng.NormFloat64() * 16
			l := build(d - 1)
			r := build(d - 1)
			nodes[idx] = forest.Node{F: feat, T: thresh, L: l, R: r}
			return idx
		}
		build(depth)
		f.Trees[t] = forest.Tree{Nodes: nodes}
	}
	return f, features
}

// fuzzVector decodes vecBytes into a feature vector of length n: 8-byte
// chunks become raw float64 bits (so NaN, ±Inf, subnormals, and negative
// zero all occur), and any shortfall is filled deterministically from seed.
func fuzzVector(seed int64, vecBytes []byte, n int) []float64 {
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	for i := range x {
		if (i+1)*8 <= len(vecBytes) {
			x[i] = math.Float64frombits(binary.LittleEndian.Uint64(vecBytes[i*8:]))
		} else {
			x[i] = rng.NormFloat64() * 32
		}
	}
	return x
}

// FuzzCompiledVsPointer is the differential harness pinning the compiled
// evaluator to the pointer walk: for every generated forest and feature
// vector — including NaN/Inf payloads smuggled in through raw float bits —
// the class, every probability, and every vote must be bit-identical across
// the single compiled path, the batch path, and a binary
// marshal/unmarshal round trip. Seed corpus lives in
// testdata/fuzz/FuzzCompiledVsPointer (regenerate with `go test
// -run=FuzzCompiledVsPointer -fuzz=FuzzCompiledVsPointer -fuzztime=30s
// ./pkg/forest/compiled`).
func FuzzCompiledVsPointer(f *testing.F) {
	f.Add(int64(1), []byte{}, []byte{})
	f.Add(int64(2), []byte{7, 5, 11, 5}, []byte{})
	f.Add(int64(3), []byte{1, 1, 1, 1}, make([]byte, 16))
	nan := binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN()))
	inf := binary.LittleEndian.AppendUint64(nan, math.Float64bits(math.Inf(-1)))
	f.Add(int64(4), []byte{4, 3, 2, 3}, inf)
	f.Add(int64(5), []byte{255, 255, 255, 255}, []byte{0x80, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, seed int64, shape, vecBytes []byte) {
		pf, features := fuzzForest(seed, shape)
		cf, err := compiled.Compile(pf, features)
		if err != nil {
			t.Fatalf("Compile rejected a generator-valid forest: %v", err)
		}
		x := fuzzVector(seed, vecBytes, features)

		want, err := pf.Predict(x)
		if err != nil {
			t.Fatalf("pointer Predict: %v", err)
		}
		got, err := cf.Predict(x)
		if err != nil {
			t.Fatalf("compiled Predict: %v", err)
		}
		samePrediction(t, "compiled", got, want)

		// The vote margin feeds confidence telemetry, so it must also be
		// bit-identical across evaluators — a margin computed from compiled
		// probs equals one computed from pointer probs, bit for bit.
		if mg, mw := forest.Margin(got.Probs), forest.Margin(want.Probs); math.Float64bits(mg) != math.Float64bits(mw) {
			t.Fatalf("margin: compiled %x != pointer %x (%v vs %v)",
				math.Float64bits(mg), math.Float64bits(mw), mg, mw)
		}

		out := make([]forest.Prediction, 1)
		if err := cf.PredictBatch([][]float64{x}, out); err != nil {
			t.Fatalf("PredictBatch: %v", err)
		}
		samePrediction(t, "batch", out[0], want)

		blob, err := cf.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}
		cf2, err := compiled.DecodeBinary(blob)
		if err != nil {
			t.Fatalf("DecodeBinary rejected its own encoding: %v", err)
		}
		got2, err := cf2.Predict(x)
		if err != nil {
			t.Fatalf("decoded Predict: %v", err)
		}
		samePrediction(t, "binary-roundtrip", got2, want)
	})
}

// FuzzDecodeBinary throws arbitrary bytes at the compiled-forest binary
// decoder: it must reject or fully validate, never panic, and anything it
// accepts must survive evaluation and re-encode.
func FuzzDecodeBinary(f *testing.F) {
	valid, _ := mustCompiledFixture().MarshalBinary()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PMLC"))
	f.Add(valid[:len(valid)/2])
	corrupted := append([]byte(nil), valid...)
	corrupted[len(corrupted)-1] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		cf, err := compiled.DecodeBinary(data) // must never panic
		if err != nil {
			return
		}
		x := make([]float64, cf.NumFeatures())
		if _, err := cf.Predict(x); err != nil {
			t.Fatalf("accepted forest failed to evaluate: %v", err)
		}
		if _, err := cf.MarshalBinary(); err != nil {
			t.Fatalf("accepted forest failed to re-encode: %v", err)
		}
	})
}

// mustCompiledFixture compiles a small deterministic forest for fuzz seeds.
func mustCompiledFixture() *compiled.Forest {
	pf, features := fuzzForest(1, []byte{3, 3, 3, 3})
	cf, err := compiled.Compile(pf, features)
	if err != nil {
		panic(err)
	}
	return cf
}
