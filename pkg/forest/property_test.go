package forest_test

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// synthForests returns every collective forest of a mid-sized synthetic
// bundle plus vectors ordered for each forest's feature subset.
func synthForests(t testing.TB, seed int64) map[string]struct {
	f  *forest.Forest
	xs [][]float64
} {
	t.Helper()
	cfg := synth.Config{Seed: seed, Trees: 24, Depth: 7, Features: 6, Classes: 5}
	b, err := synth.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]struct {
		f  *forest.Forest
		xs [][]float64
	})
	points := synth.Points(seed, 32)
	for name, c := range b.Collectives {
		xs := make([][]float64, len(points))
		for i, p := range points {
			x, err := c.Vector(p)
			if err != nil {
				t.Fatalf("%s: Vector: %v", name, err)
			}
			xs[i] = x
		}
		out[name] = struct {
			f  *forest.Forest
			xs [][]float64
		}{c.Forest, xs}
	}
	return out
}

func TestPredictionIsDeterministicAcrossRuns(t *testing.T) {
	// Two independently generated bundles from the same seed must agree
	// exactly, and repeated predictions on one forest must be identical.
	first := synthForests(t, 11)
	second := synthForests(t, 11)
	for name, fa := range first {
		fb := second[name]
		for i, x := range fa.xs {
			pa, err := fa.f.Predict(x)
			if err != nil {
				t.Fatalf("%s[%d]: %v", name, i, err)
			}
			pb, err := fb.f.Predict(fb.xs[i])
			if err != nil {
				t.Fatalf("%s[%d] regen: %v", name, i, err)
			}
			if !reflect.DeepEqual(pa, pb) {
				t.Fatalf("%s[%d]: prediction differs across identically seeded runs:\n%+v\n%+v", name, i, pa, pb)
			}
			again, _ := fa.f.Predict(x)
			if !reflect.DeepEqual(pa, again) {
				t.Fatalf("%s[%d]: repeated prediction differs", name, i)
			}
		}
	}
}

func TestProbsSumToOneAndArgmaxMatchesClass(t *testing.T) {
	for name, fx := range synthForests(t, 12) {
		for i, x := range fx.xs {
			p, err := fx.f.Predict(x)
			if err != nil {
				t.Fatalf("%s[%d]: %v", name, i, err)
			}
			sum := 0.0
			argmax := 0
			for c, v := range p.Probs {
				if v < 0 || v > 1 {
					t.Errorf("%s[%d]: prob[%d] = %v out of [0,1]", name, i, c, v)
				}
				sum += v
				if v > p.Probs[argmax] {
					argmax = c
				}
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s[%d]: probs sum to %v, want ~1", name, i, sum)
			}
			if argmax != p.Class {
				t.Errorf("%s[%d]: class %d but argmax(probs) is %d", name, i, p.Class, argmax)
			}
			totalVotes := 0
			for _, v := range p.Votes {
				totalVotes += v
			}
			if totalVotes != len(fx.f.Trees) {
				t.Errorf("%s[%d]: %d votes for %d trees", name, i, totalVotes, len(fx.f.Trees))
			}
		}
	}
}

func TestPredictWithMatchesSequential(t *testing.T) {
	for name, fx := range synthForests(t, 13) {
		for _, workers := range []int{2, 3, 4, 8} {
			for i, x := range fx.xs {
				seq, err := fx.f.Predict(x)
				if err != nil {
					t.Fatalf("%s[%d]: %v", name, i, err)
				}
				par, err := fx.f.PredictWith(x, workers)
				if err != nil {
					t.Fatalf("%s[%d] workers=%d: %v", name, i, workers, err)
				}
				if par.Class != seq.Class {
					t.Errorf("%s[%d] workers=%d: class %d, sequential %d", name, i, workers, par.Class, seq.Class)
				}
				if !reflect.DeepEqual(par.Votes, seq.Votes) {
					t.Errorf("%s[%d] workers=%d: votes %v, sequential %v", name, i, workers, par.Votes, seq.Votes)
				}
				for c := range par.Probs {
					if math.Abs(par.Probs[c]-seq.Probs[c]) > 1e-12 {
						t.Errorf("%s[%d] workers=%d: prob[%d] %v vs %v", name, i, workers, c, par.Probs[c], seq.Probs[c])
					}
				}
			}
		}
	}
}

func TestValidateRejectsOutOfRangeFeatureIndex(t *testing.T) {
	b, err := synth.New(synth.Config{Seed: 14, Trees: 4, Depth: 4, Features: 5})
	if err != nil {
		t.Fatal(err)
	}
	for name, c := range b.Collectives {
		f := c.Forest
		if err := f.Validate(len(c.Features)); err != nil {
			t.Fatalf("%s: pristine synth forest failed Validate: %v", name, err)
		}
		// Corrupt the first internal node to route on a feature index just
		// past the subset; Validate must name it.
		corrupted := false
		for ti := range f.Trees {
			for ni := range f.Trees[ti].Nodes {
				if !f.Trees[ti].Nodes[ni].Leaf() {
					f.Trees[ti].Nodes[ni].F = len(c.Features)
					corrupted = true
					break
				}
			}
			if corrupted {
				break
			}
		}
		if !corrupted {
			t.Fatalf("%s: synth forest has no internal nodes to corrupt", name)
		}
		err := f.Validate(len(c.Features))
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s: corrupted forest passed Validate (err=%v)", name, err)
		}
		break // one collective is enough
	}
}
