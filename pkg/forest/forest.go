// Package forest evaluates the serialized random forests shipped in a
// PML-MPI model bundle. Trees are stored as flat node arrays; leaves carry
// a class-probability distribution. Prediction averages the leaf
// distributions across trees (soft voting, matching scikit-learn's
// RandomForestClassifier.predict_proba) and also reports the per-tree hard
// vote split for debugging.
package forest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Node is one decision-tree node. Internal nodes route on feature F with
// threshold T (x[F] <= T goes left); leaves have F == -1 and carry D, the
// class-probability distribution.
type Node struct {
	F int       `json:"f"`
	T float64   `json:"t"`
	L int       `json:"l"`
	R int       `json:"r"`
	D []float64 `json:"d,omitempty"`
}

// Leaf reports whether the node is a leaf.
func (n *Node) Leaf() bool { return n.F < 0 }

// Tree is a flat array of nodes; node 0 is the root.
type Tree struct {
	Nodes []Node `json:"nodes"`
}

// leafFor walks the tree for feature vector x and returns the leaf reached.
// The walk is bounded by len(Nodes) steps so a malformed (cyclic) tree
// cannot loop forever; Validate rejects such trees up front.
func (t *Tree) leafFor(x []float64) (*Node, error) {
	i := 0
	for steps := 0; steps <= len(t.Nodes); steps++ {
		if i < 0 || i >= len(t.Nodes) {
			return nil, fmt.Errorf("node index %d out of range [0,%d)", i, len(t.Nodes))
		}
		n := &t.Nodes[i]
		if n.Leaf() {
			return n, nil
		}
		if n.F >= len(x) {
			return nil, fmt.Errorf("node %d routes on feature %d but vector has %d features", i, n.F, len(x))
		}
		if x[n.F] <= n.T {
			i = n.L
		} else {
			i = n.R
		}
	}
	return nil, fmt.Errorf("tree walk exceeded %d steps (cycle?)", len(t.Nodes))
}

// Forest is an ensemble of trees over a shared feature space.
type Forest struct {
	Trees      []Tree    `json:"trees"`
	NClasses   int       `json:"nclasses"`
	Importance []float64 `json:"importance,omitempty"`
	OOB        float64   `json:"oob,omitempty"`

	// onPredict, when set via Instrument, receives the wall time of every
	// Predict/PredictWith call. Unexported so JSON round-trips ignore it;
	// atomic so a hot-swapped bundle can be instrumented while earlier
	// generations still serve traffic.
	onPredict atomic.Pointer[func(seconds float64)]
}

// Instrument registers fn to receive the wall-clock seconds of every
// subsequent Predict/PredictWith call — the hook the selector uses to feed
// its per-predict latency histogram without this package depending on the
// metrics layer. Passing nil removes the hook. Safe to call concurrently
// with Predict.
func (f *Forest) Instrument(fn func(seconds float64)) {
	if fn == nil {
		f.onPredict.Store(nil)
		return
	}
	f.onPredict.Store(&fn)
}

// Prediction is the result of evaluating a forest on one feature vector.
type Prediction struct {
	// Class is the argmax of Probs (lowest index wins ties).
	Class int
	// Probs is the mean of the leaf distributions across all trees.
	Probs []float64
	// Votes[c] counts trees whose own leaf argmax was class c.
	Votes []int
}

// Margin is the soft-vote confidence of a prediction: the gap between the
// top two entries of probs, in [0,1] for a probability distribution. A
// margin near zero means the forest nearly tied two algorithms — the
// decisions most worth auditing. With fewer than two classes the single
// probability is returned, and an empty slice yields 0. The computation is
// a pure function of probs, so the pointer and compiled evaluators (whose
// Probs are bit-identical) reconstruct bit-identical margins.
func Margin(probs []float64) float64 {
	top, second := 0.0, 0.0
	switch len(probs) {
	case 0:
		return 0
	case 1:
		return probs[0]
	}
	if probs[0] >= probs[1] {
		top, second = probs[0], probs[1]
	} else {
		top, second = probs[1], probs[0]
	}
	for _, p := range probs[2:] {
		if p > top {
			second, top = top, p
		} else if p > second {
			second = p
		}
	}
	return top - second
}

// accumulate walks trees[lo:hi] on x, adding each leaf's distribution into
// acc and its hard vote into votes. Tree indices in errors are absolute.
func (f *Forest) accumulate(lo, hi int, x []float64, acc []float64, votes []int) error {
	for ti := lo; ti < hi; ti++ {
		leaf, err := f.Trees[ti].leafFor(x)
		if err != nil {
			return fmt.Errorf("tree %d: %w", ti, err)
		}
		if len(leaf.D) != f.NClasses {
			return fmt.Errorf("tree %d: leaf distribution has %d classes, want %d", ti, len(leaf.D), f.NClasses)
		}
		best := 0
		for c, p := range leaf.D {
			acc[c] += p
			if p > leaf.D[best] {
				best = c
			}
		}
		votes[best]++
	}
	return nil
}

// finalize turns raw accumulated sums into a Prediction (mean distribution
// plus argmax class, lowest index winning ties).
func (f *Forest) finalize(acc []float64, votes []int) Prediction {
	n := float64(len(f.Trees))
	cls := 0
	for c := range acc {
		acc[c] /= n
		if acc[c] > acc[cls] {
			cls = c
		}
	}
	return Prediction{Class: cls, Probs: acc, Votes: votes}
}

// Predict evaluates the forest on x. x must be ordered to match the
// feature subset the forest was trained on.
func (f *Forest) Predict(x []float64) (Prediction, error) {
	if len(f.Trees) == 0 {
		return Prediction{}, fmt.Errorf("forest has no trees")
	}
	if fn := f.onPredict.Load(); fn != nil {
		defer func(start time.Time) { (*fn)(time.Since(start).Seconds()) }(time.Now())
	}
	acc := make([]float64, f.NClasses)
	votes := make([]int, f.NClasses)
	if err := f.accumulate(0, len(f.Trees), x, acc, votes); err != nil {
		return Prediction{}, err
	}
	return f.finalize(acc, votes), nil
}

// PredictWith evaluates the forest on x, splitting the trees across at
// most workers goroutines. Each worker accumulates a contiguous tree chunk
// privately; partials merge in chunk order, so the result is deterministic
// for a fixed worker count. Because floating-point summation order differs
// from Predict's, probabilities can differ by last-ulp amounts (never
// enough to flip a non-degenerate argmax). workers <= 1, or a forest
// smaller than two trees per worker, falls back to sequential Predict.
func (f *Forest) PredictWith(x []float64, workers int) (Prediction, error) {
	if workers > len(f.Trees)/2 {
		workers = len(f.Trees) / 2
	}
	if workers <= 1 {
		return f.Predict(x)
	}
	if fn := f.onPredict.Load(); fn != nil {
		defer func(start time.Time) { (*fn)(time.Since(start).Seconds()) }(time.Now())
	}
	type partial struct {
		acc   []float64
		votes []int
		err   error
	}
	parts := make([]partial, workers)
	chunk := (len(f.Trees) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(f.Trees) {
			hi = len(f.Trees)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := partial{acc: make([]float64, f.NClasses), votes: make([]int, f.NClasses)}
			p.err = f.accumulate(lo, hi, x, p.acc, p.votes)
			parts[w] = p
		}(w, lo, hi)
	}
	wg.Wait()

	acc := make([]float64, f.NClasses)
	votes := make([]int, f.NClasses)
	for _, p := range parts {
		if p.err != nil {
			return Prediction{}, p.err
		}
		for c := range acc {
			acc[c] += p.acc[c]
			votes[c] += p.votes[c]
		}
	}
	return f.finalize(acc, votes), nil
}

// Validate checks structural integrity: non-empty ensemble, child indices
// in range, strictly forward-pointing links (no cycles), leaf distributions
// of the right arity, and internal feature indices within numFeatures.
func (f *Forest) Validate(numFeatures int) error {
	if f.NClasses <= 0 {
		return fmt.Errorf("nclasses must be positive, got %d", f.NClasses)
	}
	if len(f.Trees) == 0 {
		return fmt.Errorf("forest has no trees")
	}
	for ti := range f.Trees {
		t := &f.Trees[ti]
		if len(t.Nodes) == 0 {
			return fmt.Errorf("tree %d has no nodes", ti)
		}
		for ni := range t.Nodes {
			n := &t.Nodes[ni]
			if n.Leaf() {
				if len(n.D) != f.NClasses {
					return fmt.Errorf("tree %d node %d: leaf distribution has %d classes, want %d",
						ti, ni, len(n.D), f.NClasses)
				}
				continue
			}
			if n.F >= numFeatures {
				return fmt.Errorf("tree %d node %d: feature index %d out of range [0,%d)",
					ti, ni, n.F, numFeatures)
			}
			if n.L <= ni || n.L >= len(t.Nodes) || n.R <= ni || n.R >= len(t.Nodes) {
				return fmt.Errorf("tree %d node %d: child indices (%d,%d) must point forward within [0,%d)",
					ti, ni, n.L, n.R, len(t.Nodes))
			}
		}
	}
	return nil
}
