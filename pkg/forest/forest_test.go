package forest_test

import (
	"math"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/forest"
)

const realBundle = "../../.pmlbench/bundle_all_full.json"

// Golden predictions computed with an independent reference traversal
// (x[f] <= t goes left; soft vote = mean of leaf distributions; hard vote
// per tree = argmax of leaf distribution, lowest index wins ties).
var goldenCases = []struct {
	collective string
	x          []float64 // ordered by the collective's feature_names
	class      int
	votes      []int
	probs      []float64
}{
	{
		collective: "allgather", // log2_msg_size, ppn, num_nodes, thread_count, l3_cache_mib
		x:          []float64{10, 16, 8, 64, 35},
		class:      0,
		votes:      []int{35, 0, 25, 0},
		probs:      []float64{0.5608486781, 0.0018571429, 0.4351960703, 0.0020981087},
	},
	{
		collective: "allgather",
		x:          []float64{20, 32, 64, 128, 24},
		class:      1,
		votes:      []int{0, 60, 0, 0},
		probs:      []float64{0.0005555556, 0.9986111111, 0.0008333333, 0},
	},
	{
		collective: "allgather",
		x:          []float64{4, 1, 2, 16, 35.75},
		class:      1,
		votes:      []int{18, 19, 7, 16},
		probs:      []float64{0.2947264669, 0.3331024219, 0.0889216703, 0.2832494408},
	},
	{
		collective: "alltoall", // log2_msg_size, ppn, num_nodes, mem_bw_gbs, thread_count
		x:          []float64{10, 16, 8, 100, 64},
		class:      0,
		votes:      []int{96, 4, 0, 0, 0},
		probs:      []float64{0.9398863578, 0.0580415701, 0.0011261261, 0, 0.0009459459},
	},
	{
		collective: "alltoall",
		x:          []float64{22, 48, 32, 204.8, 96},
		class:      1,
		votes:      []int{1, 94, 3, 0, 2},
		probs:      []float64{0.0050906705, 0.9260734661, 0.0361724316, 0, 0.0326634318},
	},
	{
		collective: "alltoall",
		x:          []float64{6, 2, 4, 68, 32},
		class:      1,
		votes:      []int{0, 100, 0, 0, 0},
		probs:      []float64{0, 0.995289916, 0.004710084, 0, 0},
	},
}

func TestGoldenPredictions(t *testing.T) {
	b, err := bundle.Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, tc := range goldenCases {
		c, ok := b.Collective(tc.collective)
		if !ok {
			t.Fatalf("missing collective %q", tc.collective)
		}
		pred, err := c.Forest.Predict(tc.x)
		if err != nil {
			t.Fatalf("%s %v: %v", tc.collective, tc.x, err)
		}
		if pred.Class != tc.class {
			t.Errorf("%s %v: class = %d, want %d", tc.collective, tc.x, pred.Class, tc.class)
		}
		if len(pred.Votes) != len(tc.votes) {
			t.Fatalf("%s %v: votes len %d, want %d", tc.collective, tc.x, len(pred.Votes), len(tc.votes))
		}
		for i := range tc.votes {
			if pred.Votes[i] != tc.votes[i] {
				t.Errorf("%s %v: votes = %v, want %v", tc.collective, tc.x, pred.Votes, tc.votes)
				break
			}
		}
		for i := range tc.probs {
			if math.Abs(pred.Probs[i]-tc.probs[i]) > 1e-9 {
				t.Errorf("%s %v: probs[%d] = %.12f, want %.12f", tc.collective, tc.x, i, pred.Probs[i], tc.probs[i])
			}
		}
	}
}

func TestPredictionDeterministic(t *testing.T) {
	b, err := bundle.Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	c, _ := b.Collective("allgather")
	x := []float64{10, 16, 8, 64, 35}
	first, err := c.Forest.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := c.Forest.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if again.Class != first.Class {
			t.Fatalf("prediction not deterministic: %d vs %d", again.Class, first.Class)
		}
		for j := range first.Probs {
			if again.Probs[j] != first.Probs[j] {
				t.Fatalf("probs drifted on repeat %d", i)
			}
		}
	}
}

func TestPredictHandBuilt(t *testing.T) {
	f := &forest.Forest{
		NClasses: 2,
		Trees: []forest.Tree{
			{Nodes: []forest.Node{
				{F: 0, T: 5, L: 1, R: 2},
				{F: -1, D: []float64{1, 0}},
				{F: -1, D: []float64{0, 1}},
			}},
			{Nodes: []forest.Node{
				{F: -1, D: []float64{0.25, 0.75}},
			}},
		},
	}
	// x[0] = 5 takes the left branch (<= is left-inclusive).
	pred, err := f.Predict([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Class != 0 {
		t.Errorf("class = %d, want 0 (probs %v)", pred.Class, pred.Probs)
	}
	if pred.Probs[0] != 0.625 || pred.Probs[1] != 0.375 {
		t.Errorf("probs = %v, want [0.625 0.375]", pred.Probs)
	}
	if pred.Votes[0] != 1 || pred.Votes[1] != 1 {
		t.Errorf("votes = %v, want [1 1]", pred.Votes)
	}

	pred, err = f.Predict([]float64{6})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Class != 1 {
		t.Errorf("class = %d, want 1 (probs %v)", pred.Class, pred.Probs)
	}
}

func TestPredictErrors(t *testing.T) {
	empty := &forest.Forest{NClasses: 2}
	if _, err := empty.Predict([]float64{1}); err == nil {
		t.Error("expected error for empty forest")
	}

	short := &forest.Forest{
		NClasses: 2,
		Trees: []forest.Tree{{Nodes: []forest.Node{
			{F: 3, T: 1, L: 1, R: 1},
			{F: -1, D: []float64{1, 0}},
		}}},
	}
	if _, err := short.Predict([]float64{1}); err == nil {
		t.Error("expected error for feature index beyond vector length")
	}
}

func TestValidate(t *testing.T) {
	ok := &forest.Forest{
		NClasses: 2,
		Trees: []forest.Tree{{Nodes: []forest.Node{
			{F: 0, T: 1, L: 1, R: 2},
			{F: -1, D: []float64{1, 0}},
			{F: -1, D: []float64{0, 1}},
		}}},
	}
	if err := ok.Validate(1); err != nil {
		t.Errorf("valid forest rejected: %v", err)
	}
	if err := ok.Validate(0); err == nil {
		t.Error("expected error: feature index beyond numFeatures")
	}

	backward := &forest.Forest{
		NClasses: 2,
		Trees: []forest.Tree{{Nodes: []forest.Node{
			{F: 0, T: 1, L: 0, R: 1},
			{F: -1, D: []float64{1, 0}},
		}}},
	}
	if err := backward.Validate(1); err == nil {
		t.Error("expected error: self-referencing child index")
	}
}

func TestInstrumentHookObservesEveryPredict(t *testing.T) {
	f := &forest.Forest{
		NClasses: 2,
		Trees: []forest.Tree{
			{Nodes: []forest.Node{{F: -1, D: []float64{1, 0}}}},
			{Nodes: []forest.Node{{F: -1, D: []float64{0, 1}}}},
			{Nodes: []forest.Node{{F: -1, D: []float64{1, 0}}}},
			{Nodes: []forest.Node{{F: -1, D: []float64{0, 1}}}},
		},
	}
	var calls int
	var total float64
	f.Instrument(func(sec float64) {
		calls++
		total += sec
		if sec < 0 {
			t.Errorf("negative predict duration %v", sec)
		}
	})

	if _, err := f.Predict([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("hook called %d times after Predict, want 1", calls)
	}
	// PredictWith's parallel branch must observe exactly once, and its
	// sequential fallback must not double-observe through Predict.
	if _, err := f.PredictWith([]float64{1}, 2); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("hook called %d times after parallel PredictWith, want 2", calls)
	}
	if _, err := f.PredictWith([]float64{1}, 1); err != nil { // falls back to Predict
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("hook called %d times after fallback PredictWith, want 3", calls)
	}

	f.Instrument(nil)
	if _, err := f.Predict([]float64{1}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("nil hook still observed: %d calls", calls)
	}
}
