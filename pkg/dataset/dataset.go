// Package dataset holds labeled training examples for the PML-MPI trainer
// and ingests them from benchmark records (CSV or JSONL, in the spirit of
// PICO-style collective benchmark logs). A record carries a collective, a
// named feature map, and either an explicit winning algorithm or the
// per-algorithm measured latencies, from which the label is the argmin.
// Ingestion validates aggressively — unknown collectives, unknown
// algorithm names, non-canonical features, NaN/Inf values, and arity
// mismatches are row-numbered errors, never silent corruption.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
)

// Example is one labeled training point.
type Example struct {
	// Collective names the MPI collective this point belongs to.
	Collective string `json:"collective"`
	// Features is the named feature map (canonical names only).
	Features map[string]float64 `json:"features"`
	// Label is the winning algorithm's class index in the collective's
	// class-ordered algorithm list.
	Label int `json:"label"`
	// Algorithm is the winning algorithm's name (redundant with Label,
	// kept for human-readable dumps).
	Algorithm string `json:"algorithm"`
}

// Dataset is a collection of labeled examples plus the algorithm table
// that defines each collective's class ordering.
type Dataset struct {
	// Algorithms maps collective → class-ordered algorithm names.
	Algorithms map[string][]string
	Examples   []Example
}

// New builds an empty dataset over the given algorithm table.
func New(algorithms map[string][]string) *Dataset {
	return &Dataset{Algorithms: algorithms}
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// Collectives returns the sorted collectives that actually appear in the
// examples.
func (d *Dataset) Collectives() []string {
	seen := map[string]bool{}
	for i := range d.Examples {
		seen[d.Examples[i].Collective] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ByCollective partitions the examples by collective, preserving order.
func (d *Dataset) ByCollective() map[string][]Example {
	out := make(map[string][]Example)
	for _, ex := range d.Examples {
		out[ex.Collective] = append(out[ex.Collective], ex)
	}
	return out
}

// classOf resolves an algorithm name to its class index for a collective.
func (d *Dataset) classOf(collective, algorithm string) (int, error) {
	names, ok := d.Algorithms[collective]
	if !ok {
		return 0, fmt.Errorf("unknown collective %q", collective)
	}
	for i, n := range names {
		if n == algorithm {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown algorithm %q for collective %q (have %v)", algorithm, collective, names)
}

// validateFeatures checks that a feature map is non-empty, uses only
// canonical names, and holds finite values.
func validateFeatures(features map[string]float64) error {
	if len(features) == 0 {
		return fmt.Errorf("empty feature map")
	}
	for name, v := range features {
		if !canonicalFeature(name) {
			return fmt.Errorf("feature %q is not a canonical feature (see bundle.CanonicalFeatures)", name)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("feature %q has non-finite value %v", name, v)
		}
	}
	return nil
}

func canonicalFeature(name string) bool {
	for _, c := range bundle.CanonicalFeatures {
		if c == name {
			return true
		}
	}
	return false
}

// labelFromLatencies picks the argmin-latency algorithm. Every latency
// must be finite and positive; ties break toward the lowest class index.
func (d *Dataset) labelFromLatencies(collective string, lat map[string]float64) (int, string, error) {
	if len(lat) == 0 {
		return 0, "", fmt.Errorf("no latencies")
	}
	names, ok := d.Algorithms[collective]
	if !ok {
		return 0, "", fmt.Errorf("unknown collective %q", collective)
	}
	best := -1
	var bestLat float64
	for i, n := range names {
		v, ok := lat[n]
		if !ok {
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return 0, "", fmt.Errorf("algorithm %q has invalid latency %v (must be finite and positive)", n, v)
		}
		if best < 0 || v < bestLat {
			best, bestLat = i, v
		}
	}
	if best < 0 {
		return 0, "", fmt.Errorf("no latency names a known algorithm of %q (have %v)", collective, names)
	}
	// Reject latencies that name algorithms outside the table: a typo in
	// an algorithm column must not silently drop a measurement.
	for n, v := range lat {
		if _, err := d.classOf(collective, n); err != nil {
			return 0, "", err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return 0, "", fmt.Errorf("algorithm %q has invalid latency %v (must be finite and positive)", n, v)
		}
	}
	return best, names[best], nil
}

// add validates and appends one example built from raw record fields.
// algorithm may be empty when latencies determine the label.
func (d *Dataset) add(collective string, features map[string]float64, algorithm string, latencies map[string]float64) error {
	rec := Record{Collective: collective, Features: features, Algorithm: algorithm, LatenciesUS: latencies}
	cls, name, err := ValidateRecord(d.Algorithms, &rec)
	if err != nil {
		return err
	}
	d.Examples = append(d.Examples, Example{
		Collective: collective,
		Features:   features,
		Label:      cls,
		Algorithm:  name,
	})
	return nil
}

// key derives the deduplication identity of an example: the collective
// plus every feature printed at full float precision in sorted name order.
func key(ex *Example) string {
	return Key(ex.Collective, ex.Features)
}

// Dedup removes examples whose (collective, features) identity repeats,
// keeping the first occurrence, and returns how many were dropped.
// Benchmark logs commonly repeat configurations across runs; keeping
// duplicates would leak identical points across a later train/test split.
func (d *Dataset) Dedup() int {
	seen := make(map[string]struct{}, len(d.Examples))
	kept := d.Examples[:0]
	for i := range d.Examples {
		k := key(&d.Examples[i])
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		kept = append(kept, d.Examples[i])
	}
	dropped := len(d.Examples) - len(kept)
	d.Examples = kept
	return dropped
}

// Merge appends every example of other into d. The two datasets must use
// the same algorithm table pointer-for-pointer or value-for-value; class
// indices are only meaningful relative to a table.
func (d *Dataset) Merge(other *Dataset) error {
	for coll, names := range other.Algorithms {
		have, ok := d.Algorithms[coll]
		if !ok {
			return fmt.Errorf("merge: collective %q missing from target algorithm table", coll)
		}
		if len(have) != len(names) {
			return fmt.Errorf("merge: collective %q has %d algorithms in target, %d in source", coll, len(have), len(names))
		}
		for i := range names {
			if have[i] != names[i] {
				return fmt.Errorf("merge: collective %q class %d is %q in target, %q in source", coll, i, have[i], names[i])
			}
		}
	}
	d.Examples = append(d.Examples, other.Examples...)
	return nil
}

// Split partitions the dataset into train and test sets, stratified by
// (collective, label) so every class keeps its share on both sides.
// Deterministic for a fixed seed: strata are visited in sorted order and
// shuffled with a seeded generator. Single-example strata stay in train.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	train = New(d.Algorithms)
	test = New(d.Algorithms)
	if testFrac <= 0 {
		train.Examples = append(train.Examples, d.Examples...)
		return train, test
	}
	if testFrac >= 1 {
		test.Examples = append(test.Examples, d.Examples...)
		return train, test
	}
	strata := make(map[string][]int)
	for i := range d.Examples {
		k := fmt.Sprintf("%s/%03d", d.Examples[i].Collective, d.Examples[i].Label)
		strata[k] = append(strata[k], i)
	}
	keys := make([]string, 0, len(strata))
	for k := range strata {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rng := rand.New(rand.NewSource(seed))
	for _, k := range keys {
		idx := strata[k]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		nTest := int(math.Round(float64(len(idx)) * testFrac))
		if nTest >= len(idx) {
			nTest = len(idx) - 1
		}
		for i, id := range idx {
			if i < nTest {
				test.Examples = append(test.Examples, d.Examples[id])
			} else {
				train.Examples = append(train.Examples, d.Examples[id])
			}
		}
	}
	return train, test
}

// LabelCounts tallies examples per class for one collective.
func (d *Dataset) LabelCounts(collective string) []int {
	names := d.Algorithms[collective]
	counts := make([]int, len(names))
	for i := range d.Examples {
		ex := &d.Examples[i]
		if ex.Collective == collective && ex.Label >= 0 && ex.Label < len(counts) {
			counts[ex.Label]++
		}
	}
	return counts
}
