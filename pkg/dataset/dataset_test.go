package dataset

import (
	"math"
	"strings"
	"testing"
)

// testTable is the algorithm table the ingestion tests run against.
func testTable() map[string][]string {
	return map[string][]string{
		"allgather": {"recursive_doubling", "bruck", "ring"},
		"broadcast": {"binomial_tree", "pipeline"},
	}
}

const goodJSONL = `
# benchmark export, two collectives
{"collective":"allgather","features":{"num_nodes":4,"ppn":8,"log2_msg_size":10},"latency_us":{"recursive_doubling":12.5,"bruck":11.0,"ring":30.1}}
{"collective":"allgather","features":{"num_nodes":8,"ppn":8,"log2_msg_size":20},"latency_us":{"recursive_doubling":400,"bruck":410,"ring":220}}

{"collective":"broadcast","features":{"num_nodes":2,"ppn":4,"log2_msg_size":4},"algorithm":"binomial_tree"}
`

func TestReadJSONL(t *testing.T) {
	d, err := ReadJSONL(strings.NewReader(goodJSONL), testTable())
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if d.Len() != 3 {
		t.Fatalf("got %d examples, want 3", d.Len())
	}
	// Row 1: argmin is bruck (class 1).
	if d.Examples[0].Label != 1 || d.Examples[0].Algorithm != "bruck" {
		t.Errorf("row 1 label = %d/%q, want 1/bruck", d.Examples[0].Label, d.Examples[0].Algorithm)
	}
	// Row 2: argmin is ring (class 2).
	if d.Examples[1].Label != 2 || d.Examples[1].Algorithm != "ring" {
		t.Errorf("row 2 label = %d/%q, want 2/ring", d.Examples[1].Label, d.Examples[1].Algorithm)
	}
	// Row 3: explicit label.
	if d.Examples[2].Label != 0 || d.Examples[2].Collective != "broadcast" {
		t.Errorf("row 3 = %+v, want broadcast class 0", d.Examples[2])
	}
}

func TestReadJSONLErrors(t *testing.T) {
	cases := []struct {
		name, row, wantErr string
	}{
		{"malformed json", `{"collective":`, "line 1"},
		{"unknown collective", `{"collective":"gather","features":{"ppn":2},"algorithm":"x"}`, "unknown collective"},
		{"unknown algorithm", `{"collective":"allgather","features":{"ppn":2},"algorithm":"hypercube"}`, "unknown algorithm"},
		{"no known latency algorithm", `{"collective":"allgather","features":{"ppn":2},"latency_us":{"hypercube":1}}`, "known algorithm"},
		{"unknown latency algorithm", `{"collective":"allgather","features":{"ppn":2},"latency_us":{"ring":2,"hypercube":1}}`, "unknown algorithm"},
		{"non-canonical feature", `{"collective":"allgather","features":{"gpu_count":2},"algorithm":"ring"}`, "not a canonical feature"},
		{"empty features", `{"collective":"allgather","features":{},"algorithm":"ring"}`, "empty feature map"},
		{"no label", `{"collective":"allgather","features":{"ppn":2}}`, "neither an algorithm label nor latencies"},
		{"both labels", `{"collective":"allgather","features":{"ppn":2},"algorithm":"ring","latency_us":{"ring":1}}`, "both"},
		{"negative latency", `{"collective":"allgather","features":{"ppn":2},"latency_us":{"ring":-4}}`, "invalid latency"},
		{"unknown field", `{"collective":"allgather","features":{"ppn":2},"algorithm":"ring","extra":1}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSONL(strings.NewReader(tc.row), testTable())
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

const goodCSV = `collective,num_nodes,ppn,log2_msg_size,lat_recursive_doubling,lat_bruck,lat_ring,lat_binomial_tree,lat_pipeline
allgather,4,8,10,12.5,11.0,30.1,,
allgather,8,8,20,400,410,220,,
broadcast,2,4,4,,,,3.5,9.9
`

func TestReadCSV(t *testing.T) {
	d, err := ReadCSV(strings.NewReader(goodCSV), testTable())
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if d.Len() != 3 {
		t.Fatalf("got %d examples, want 3", d.Len())
	}
	if d.Examples[0].Algorithm != "bruck" || d.Examples[1].Algorithm != "ring" {
		t.Errorf("labels = %q,%q, want bruck,ring", d.Examples[0].Algorithm, d.Examples[1].Algorithm)
	}
	if d.Examples[2].Algorithm != "binomial_tree" {
		t.Errorf("broadcast label = %q, want binomial_tree", d.Examples[2].Algorithm)
	}
	if got := d.Examples[0].Features["log2_msg_size"]; got != 10 {
		t.Errorf("feature log2_msg_size = %v, want 10", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	header := "collective,num_nodes,lat_ring\n"
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "no header"},
		{"bad header column", "collective,num_nodes,wat\nallgather,4,1\n", "neither a canonical feature"},
		{"no collective first", "num_nodes,lat_ring,ppn\n", "first header column"},
		{"no latency columns", "collective,num_nodes,ppn\n", "no lat_"},
		{"wrong arity", header + "allgather,4\n", "wrong number of fields"},
		{"nan latency", header + "allgather,4,NaN\n", "invalid latency"},
		{"inf latency", header + "allgather,4,+Inf\n", "invalid latency"},
		{"bad feature cell", header + "allgather,four,1\n", "feature \"num_nodes\""},
		{"nan feature", header + "allgather,NaN,1\n", "non-finite"},
		{"no measured latency", header + "allgather,4,\n", "neither an algorithm label nor latencies"},
		{"unknown collective", header + "scatter,4,1\n", "unknown collective"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.input), testTable())
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestDedup(t *testing.T) {
	d := New(testTable())
	f := map[string]float64{"num_nodes": 4, "ppn": 8}
	for i := 0; i < 3; i++ {
		d.Examples = append(d.Examples, Example{Collective: "allgather", Features: f, Label: 0, Algorithm: "recursive_doubling"})
	}
	d.Examples = append(d.Examples, Example{Collective: "broadcast", Features: f, Label: 1, Algorithm: "pipeline"})
	// Same values, different map instance: still a duplicate.
	d.Examples = append(d.Examples, Example{Collective: "allgather", Features: map[string]float64{"ppn": 8, "num_nodes": 4}, Label: 0, Algorithm: "recursive_doubling"})
	if dropped := d.Dedup(); dropped != 3 {
		t.Fatalf("Dedup dropped %d, want 3", dropped)
	}
	if d.Len() != 2 {
		t.Fatalf("after dedup len = %d, want 2", d.Len())
	}
	// -0 and 0 have different bit patterns: not duplicates.
	d2 := New(testTable())
	d2.Examples = append(d2.Examples,
		Example{Collective: "allgather", Features: map[string]float64{"ppn": 0}},
		Example{Collective: "allgather", Features: map[string]float64{"ppn": math.Copysign(0, -1)}})
	if dropped := d2.Dedup(); dropped != 0 {
		t.Fatalf("0 vs -0 deduped (%d dropped); keys must be bit-exact", dropped)
	}
}

func TestSplitStratifiedDeterministic(t *testing.T) {
	d := New(testTable())
	for i := 0; i < 100; i++ {
		d.Examples = append(d.Examples, Example{
			Collective: "allgather",
			Features:   map[string]float64{"ppn": float64(i)},
			Label:      i % 3,
		})
	}
	tr1, te1 := d.Split(0.2, 7)
	tr2, te2 := d.Split(0.2, 7)
	if tr1.Len() != tr2.Len() || te1.Len() != te2.Len() {
		t.Fatal("same seed produced different split sizes")
	}
	for i := range te1.Examples {
		if te1.Examples[i].Features["ppn"] != te2.Examples[i].Features["ppn"] {
			t.Fatal("same seed produced different test membership")
		}
	}
	if te1.Len() < 15 || te1.Len() > 25 {
		t.Errorf("test split has %d of 100, want ~20", te1.Len())
	}
	// Stratification: each class keeps roughly its share.
	counts := te1.LabelCounts("allgather")
	for cls, c := range counts {
		if c < 4 || c > 10 {
			t.Errorf("class %d has %d test examples, want ~6-7 (stratified)", cls, c)
		}
	}
	// No example lost or duplicated.
	if tr1.Len()+te1.Len() != d.Len() {
		t.Fatalf("split lost examples: %d + %d != %d", tr1.Len(), te1.Len(), d.Len())
	}
	// Different seed shuffles differently.
	_, te3 := d.Split(0.2, 8)
	same := true
	for i := range te1.Examples {
		if te1.Examples[i].Features["ppn"] != te3.Examples[i].Features["ppn"] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical test membership")
	}
}

func TestSplitEdgeFractions(t *testing.T) {
	d := New(testTable())
	d.Examples = append(d.Examples, Example{Collective: "allgather", Features: map[string]float64{"ppn": 1}})
	tr, te := d.Split(0, 1)
	if tr.Len() != 1 || te.Len() != 0 {
		t.Errorf("frac 0: %d/%d, want 1/0", tr.Len(), te.Len())
	}
	tr, te = d.Split(1, 1)
	if tr.Len() != 0 || te.Len() != 1 {
		t.Errorf("frac 1: %d/%d, want 0/1", tr.Len(), te.Len())
	}
	// A single-example stratum stays in train for interior fractions.
	tr, te = d.Split(0.5, 1)
	if tr.Len() != 1 || te.Len() != 0 {
		t.Errorf("singleton stratum: %d/%d, want 1/0", tr.Len(), te.Len())
	}
}

func TestMergeRejectsMismatchedTables(t *testing.T) {
	a := New(testTable())
	b := New(map[string][]string{"allgather": {"ring", "bruck", "recursive_doubling"}, "broadcast": {"binomial_tree", "pipeline"}})
	if err := a.Merge(b); err == nil {
		t.Fatal("merging datasets with reordered class tables must fail")
	}
	c := New(testTable())
	c.Examples = append(c.Examples, Example{Collective: "allgather", Features: map[string]float64{"ppn": 2}, Label: 1, Algorithm: "bruck"})
	if err := a.Merge(c); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Len() != 1 {
		t.Fatalf("after merge len = %d, want 1", a.Len())
	}
}
