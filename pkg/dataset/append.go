package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ValidateRecord checks one benchmark record against an algorithm table
// without touching any dataset: canonical features only, finite values,
// exactly one of an explicit algorithm or per-algorithm latencies, and the
// winner resolvable to a class index. Returns the resolved class index and
// algorithm name.
func ValidateRecord(algorithms map[string][]string, rec *Record) (class int, algorithm string, err error) {
	if rec == nil {
		return 0, "", fmt.Errorf("nil record")
	}
	if rec.Collective == "" {
		return 0, "", fmt.Errorf("missing collective")
	}
	if err := validateFeatures(rec.Features); err != nil {
		return 0, "", err
	}
	if rec.Algorithm != "" && len(rec.LatenciesUS) > 0 {
		return 0, "", fmt.Errorf("record has both an explicit algorithm and latencies; use one")
	}
	d := &Dataset{Algorithms: algorithms}
	switch {
	case rec.Algorithm != "":
		cls, err := d.classOf(rec.Collective, rec.Algorithm)
		if err != nil {
			return 0, "", err
		}
		return cls, rec.Algorithm, nil
	case len(rec.LatenciesUS) > 0:
		return d.labelFromLatencies(rec.Collective, rec.LatenciesUS)
	default:
		return 0, "", fmt.Errorf("record has neither an algorithm label nor latencies")
	}
}

// Key derives the deduplication identity of a feature point: the collective
// plus every feature's float64 bits in sorted name order. Two records with
// bit-identical features collide regardless of their labels or latencies.
func Key(collective string, features map[string]float64) string {
	names := make([]string, 0, len(features))
	for n := range features {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(collective)
	for _, n := range names {
		fmt.Fprintf(&b, "|%s=%x", n, math.Float64bits(features[n]))
	}
	return b.String()
}

// AppendJSONL is an append-only writer of validated benchmark records in
// the JSONL format ReadJSONL ingests. Every Append writes one complete
// newline-terminated line in a single write followed by fsync, so a crash
// can only ever leave a torn final line — which OpenAppendJSONL repairs by
// truncating back to the last newline. Safe for concurrent use.
type AppendJSONL struct {
	mu         sync.Mutex
	f          *os.File
	path       string
	algorithms map[string][]string
	records    int
	recovered  int64
}

// OpenAppendJSONL opens (creating if needed) a JSONL record file for
// appending. Existing complete lines are re-validated against the
// algorithm table (nil skips semantic validation, keeping only the JSON
// shape check) and counted; a trailing partial line — the signature of a
// crash mid-write — is truncated away and reported via RecoveredBytes. A
// corrupt *complete* line is real corruption, not a torn write, and fails
// the open.
func OpenAppendJSONL(path string, algorithms map[string][]string) (*AppendJSONL, error) {
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("appendjsonl %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("appendjsonl %s: %w", path, err)
	}
	w := &AppendJSONL{f: f, path: path, algorithms: algorithms}
	if err := w.recover(); err != nil {
		f.Close()
		return nil, fmt.Errorf("appendjsonl %s: %w", path, err)
	}
	return w, nil
}

// recover scans the file, validating complete lines and truncating any
// torn tail, and positions the file offset at the end.
func (w *AppendJSONL) recover() error {
	size, err := w.f.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	br := bufio.NewReaderSize(w.f, 64*1024)
	var offset, lastComplete int64
	line := 0
	for {
		text, err := br.ReadString('\n')
		if err == io.EOF {
			// text, if non-empty, is a torn final line with no newline.
			break
		}
		if err != nil {
			return err
		}
		offset += int64(len(text))
		lastComplete = offset
		line++
		if err := w.validateLine(text, line); err != nil {
			return err
		}
	}
	if size > lastComplete {
		w.recovered = size - lastComplete
		if err := w.f.Truncate(lastComplete); err != nil {
			return err
		}
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	_, err = w.f.Seek(lastComplete, io.SeekStart)
	return err
}

// validateLine checks one complete line (blank and #-comment lines pass).
func (w *AppendJSONL) validateLine(text string, line int) error {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" || strings.HasPrefix(trimmed, "#") {
		return nil
	}
	var rec Record
	dec := json.NewDecoder(strings.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return fmt.Errorf("line %d: corrupt record: %w", line, err)
	}
	if w.algorithms != nil {
		if _, _, err := ValidateRecord(w.algorithms, &rec); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	w.records++
	return nil
}

// Append validates and writes one record as a single fsync'd line.
func (w *AppendJSONL) Append(rec *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("appendjsonl %s: closed", w.path)
	}
	if w.algorithms != nil {
		if _, _, err := ValidateRecord(w.algorithms, rec); err != nil {
			return fmt.Errorf("appendjsonl %s: %w", w.path, err)
		}
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("appendjsonl %s: %w", w.path, err)
	}
	buf = append(buf, '\n')
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("appendjsonl %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("appendjsonl %s: %w", w.path, err)
	}
	w.records++
	return nil
}

// Records returns how many records the file holds (counted at open plus
// appended since).
func (w *AppendJSONL) Records() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// RecoveredBytes reports how many torn trailing bytes the open truncated.
func (w *AppendJSONL) RecoveredBytes() int64 { return w.recovered }

// Path returns the file path.
func (w *AppendJSONL) Path() string { return w.path }

// Close syncs and closes the file. Further Appends fail.
func (w *AppendJSONL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
