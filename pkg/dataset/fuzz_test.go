package dataset

import (
	"strings"
	"testing"
)

// fuzzTable is the fixed algorithm table both fuzz targets ingest against.
func fuzzTable() map[string][]string {
	return map[string][]string{
		"allgather": {"recursive_doubling", "bruck", "ring"},
		"alltoall":  {"linear", "pairwise"},
	}
}

// checkDataset asserts the invariant every accepted dataset must satisfy:
// labels within the class table, algorithm names consistent with labels,
// and validated feature maps.
func checkDataset(t *testing.T, d *Dataset) {
	t.Helper()
	for i := range d.Examples {
		ex := &d.Examples[i]
		names, ok := d.Algorithms[ex.Collective]
		if !ok {
			t.Fatalf("accepted example %d references unknown collective %q", i, ex.Collective)
		}
		if ex.Label < 0 || ex.Label >= len(names) {
			t.Fatalf("accepted example %d has label %d outside [0,%d)", i, ex.Label, len(names))
		}
		if ex.Algorithm != names[ex.Label] {
			t.Fatalf("accepted example %d: algorithm %q != class %d name %q", i, ex.Algorithm, ex.Label, names[ex.Label])
		}
		if err := validateFeatures(ex.Features); err != nil {
			t.Fatalf("accepted example %d has invalid features: %v", i, err)
		}
	}
}

// FuzzReadJSONL feeds arbitrary bytes to the JSONL row parser. The
// contract: malformed rows — wrong shapes, NaN/Inf latencies, unknown
// algorithm or collective names, non-canonical features — yield a
// line-numbered error, never a panic; anything accepted is fully labeled
// and validated. Seed corpus lives in testdata/fuzz/FuzzReadJSONL.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"collective":"allgather","features":{"ppn":8},"latency_us":{"ring":2.5,"bruck":1.5}}`)
	f.Add(`{"collective":"allgather","features":{"ppn":8},"algorithm":"ring"}`)
	f.Add("# comment\n\n" + `{"collective":"alltoall","features":{"num_nodes":2},"latency_us":{"linear":9}}`)
	// Malformed shapes:
	f.Add(`{"collective":"allgather"`)                                                              // truncated
	f.Add(`{"collective":"allgather","features":{"ppn":8},"latency_us":{"ring":null}}`)             // null latency
	f.Add(`{"collective":"allgather","features":{"ppn":8},"latency_us":{"hypercube":1}}`)           // unknown algorithm
	f.Add(`{"collective":"reduce","features":{"ppn":8},"algorithm":"ring"}`)                        // unknown collective
	f.Add(`{"collective":"allgather","features":{"warp_size":32},"algorithm":"ring"}`)              // non-canonical feature
	f.Add(`{"collective":"allgather","features":{"ppn":8},"latency_us":{"ring":-1}}`)               // negative latency
	f.Add(`{"collective":"allgather","features":{"ppn":8},"latency_us":{"ring":1e999}}`)            // overflow → +Inf
	f.Add(`{"collective":"allgather","features":{"ppn":8},"algorithm":"ring","latency_us":{}}`)     // empty latencies ok w/ label
	f.Add(`{"collective":"allgather","features":{"ppn":8},"algorithm":"ring","latencies":{"a":1}}`) // unknown field
	f.Add(`[{"collective":"allgather"}]`)                                                           // array, not object

	f.Fuzz(func(t *testing.T, line string) {
		d, err := ReadJSONL(strings.NewReader(line), fuzzTable()) // must never panic
		if err != nil {
			return
		}
		checkDataset(t, d)
	})
}

// FuzzReadCSV feeds arbitrary bytes to the CSV ingester: header
// validation, arity enforcement, and cell parsing must never panic, and
// accepted rows must be fully labeled. Seed corpus lives in
// testdata/fuzz/FuzzReadCSV.
func FuzzReadCSV(f *testing.F) {
	header := "collective,num_nodes,ppn,lat_ring,lat_bruck\n"
	f.Add(header + "allgather,4,8,2.5,1.5\n")
	f.Add(header + "allgather,4,8,,3\n")
	// Malformed shapes:
	f.Add("")                                     // no header
	f.Add("num_nodes,lat_ring\nallgather,1\n")    // collective not first
	f.Add(header + "allgather,4,8,2.5\n")         // wrong arity (short row)
	f.Add(header + "allgather,4,8,2.5,1.5,9.9\n") // wrong arity (long row)
	f.Add(header + "allgather,4,8,NaN,1\n")       // NaN latency
	f.Add(header + "allgather,4,8,-Inf,1\n")      // -Inf latency
	f.Add(header + "allgather,x,8,2.5,1.5\n")     // unparsable feature
	f.Add(header + "reduce,4,8,2.5,1.5\n")        // unknown collective
	f.Add("collective,num_nodes,lat_\nallgather,4,1\n")
	f.Add("collective,num_nodes,lat_warp\nallgather,4,1\n") // unknown algorithm
	f.Add("collective,bogus_feature,lat_ring\n")

	f.Fuzz(func(t *testing.T, input string) {
		d, err := ReadCSV(strings.NewReader(input), fuzzTable()) // must never panic
		if err != nil {
			return
		}
		checkDataset(t, d)
	})
}
