package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

// appendTable mirrors the broadcast entry of the serving algorithm table
// without importing perfmodel (which itself imports dataset).
func appendTable() map[string][]string {
	return map[string][]string{
		"broadcast": {"binomial_tree", "pipeline", "scatter_allgather"},
	}
}

func appendRecord(nodes float64) *Record {
	return &Record{
		Collective: "broadcast",
		Features: map[string]float64{
			"num_nodes": nodes, "ppn": 8, "log2_msg_size": 12,
		},
		LatenciesUS: map[string]float64{"binomial_tree": 10, "pipeline": 20, "scatter_allgather": 30},
	}
}

func TestAppendJSONLRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.jsonl")
	algos := appendTable()
	w, err := OpenAppendJSONL(path, algos)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(appendRecord(float64(i + 1))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := w.Records(); got != 5 {
		t.Fatalf("Records() = %d, want 5", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	ds, err := ReadFile(path, algos)
	if err != nil {
		t.Fatalf("readback: %v", err)
	}
	if ds.Len() != 5 {
		t.Fatalf("readback got %d examples, want 5", ds.Len())
	}
	for i := range ds.Examples {
		if ds.Examples[i].Algorithm != "binomial_tree" {
			t.Fatalf("example %d labeled %q, want argmin binomial_tree", i, ds.Examples[i].Algorithm)
		}
	}

	// Reopen counts the existing records and keeps appending after them.
	w, err = OpenAppendJSONL(path, algos)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	if got := w.Records(); got != 5 {
		t.Fatalf("reopen Records() = %d, want 5", got)
	}
	if w.RecoveredBytes() != 0 {
		t.Fatalf("clean file reported %d recovered bytes", w.RecoveredBytes())
	}
	if err := w.Append(appendRecord(64)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if got := w.Records(); got != 6 {
		t.Fatalf("Records() after reopen append = %d, want 6", got)
	}
}

func TestAppendJSONLRecoversTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.jsonl")
	algos := appendTable()
	w, err := OpenAppendJSONL(path, algos)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(appendRecord(float64(i + 1))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Simulate a crash mid-write: a record prefix with no terminating
	// newline at the tail of the file.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("reopen raw: %v", err)
	}
	torn := `{"collective":"broadcast","features":{"num_nodes":4`
	if _, err := f.WriteString(torn); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	w, err = OpenAppendJSONL(path, algos)
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer w.Close()
	if got := w.Records(); got != 3 {
		t.Fatalf("after recovery Records() = %d, want 3", got)
	}
	if got := w.RecoveredBytes(); got != int64(len(torn)) {
		t.Fatalf("RecoveredBytes() = %d, want %d", got, len(torn))
	}
	// The repaired file must read back cleanly and accept new appends.
	if err := w.Append(appendRecord(16)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	ds, err := ReadFile(path, algos)
	if err != nil {
		t.Fatalf("readback after recovery: %v", err)
	}
	if ds.Len() != 4 {
		t.Fatalf("readback got %d examples, want 4", ds.Len())
	}
}

func TestAppendJSONLRejectsCorruptCompleteLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.jsonl")
	// A complete (newline-terminated) garbage line is corruption, not a
	// torn write; open must refuse rather than silently drop data.
	if err := os.WriteFile(path, []byte("{\"collective\":\"broadcast\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAppendJSONL(path, appendTable()); err == nil {
		t.Fatal("open accepted a file with a corrupt complete line")
	}
}

func TestAppendJSONLValidatesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.jsonl")
	algos := appendTable()
	w, err := OpenAppendJSONL(path, algos)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer w.Close()
	bad := &Record{
		Collective:  "broadcast",
		Features:    map[string]float64{"not_canonical": 1},
		LatenciesUS: map[string]float64{"binomial_tree": 10},
	}
	if err := w.Append(bad); err == nil {
		t.Fatal("Append accepted a non-canonical feature")
	}
	if w.Records() != 0 {
		t.Fatalf("rejected append still counted: Records() = %d", w.Records())
	}
	unknown := appendRecord(2)
	unknown.LatenciesUS = map[string]float64{"no_such_algo": 5}
	if err := w.Append(unknown); err == nil {
		t.Fatal("Append accepted an unknown algorithm latency")
	}
}

func TestValidateRecordResolvesLabels(t *testing.T) {
	algos := appendTable()
	rec := appendRecord(4)
	cls, name, err := ValidateRecord(algos, rec)
	if err != nil {
		t.Fatalf("ValidateRecord: %v", err)
	}
	if name != "binomial_tree" || cls != 0 {
		t.Fatalf("got class %d %q, want 0 binomial_tree", cls, name)
	}
	both := appendRecord(4)
	both.Algorithm = "pipeline"
	if _, _, err := ValidateRecord(algos, both); err == nil {
		t.Fatal("accepted record with both algorithm and latencies")
	}
	explicit := appendRecord(4)
	explicit.LatenciesUS = nil
	explicit.Algorithm = "pipeline"
	cls, name, err = ValidateRecord(algos, explicit)
	if err != nil || name != "pipeline" || cls != 1 {
		t.Fatalf("explicit algorithm: got class %d %q err %v, want 1 pipeline", cls, name, err)
	}
}
