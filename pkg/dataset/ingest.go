package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// latPrefix marks per-algorithm latency columns in CSV headers:
// "lat_<algorithm>", value in microseconds (any consistent unit works —
// only the argmin matters).
const latPrefix = "lat_"

// Record is one JSONL benchmark record. Exactly one of Algorithm or
// LatenciesUS must label the row: an explicit winner, or per-algorithm
// measured latencies whose argmin wins.
type Record struct {
	Collective  string             `json:"collective"`
	Features    map[string]float64 `json:"features"`
	Algorithm   string             `json:"algorithm,omitempty"`
	LatenciesUS map[string]float64 `json:"latency_us,omitempty"`
}

// ReadJSONL ingests newline-delimited JSON benchmark records into a new
// dataset over the given algorithm table. Blank lines and #-comment lines
// are skipped; any malformed record aborts with its line number.
func ReadJSONL(r io.Reader, algorithms map[string][]string) (*Dataset, error) {
	d := New(algorithms)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var rec Record
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", line, err)
		}
		if rec.Algorithm != "" && len(rec.LatenciesUS) > 0 {
			return nil, fmt.Errorf("jsonl line %d: record has both an explicit algorithm and latencies; use one", line)
		}
		if err := d.add(rec.Collective, rec.Features, rec.Algorithm, rec.LatenciesUS); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("jsonl: %w", err)
	}
	return d, nil
}

// csvHeader is the parsed layout of a benchmark CSV: which columns are
// features and which are per-algorithm latencies.
type csvHeader struct {
	features map[int]string // column → canonical feature name
	lats     map[int]string // column → algorithm name
}

// parseCSVHeader validates the header row: "collective" first, then
// canonical feature columns, then at least one lat_<algorithm> column.
func parseCSVHeader(row []string) (*csvHeader, error) {
	if len(row) < 3 {
		return nil, fmt.Errorf("header needs at least collective, one feature, and one %s<algorithm> column", latPrefix)
	}
	if row[0] != "collective" {
		return nil, fmt.Errorf("first header column must be \"collective\", got %q", row[0])
	}
	h := &csvHeader{features: map[int]string{}, lats: map[int]string{}}
	for i := 1; i < len(row); i++ {
		name := strings.TrimSpace(row[i])
		switch {
		case strings.HasPrefix(name, latPrefix):
			algo := name[len(latPrefix):]
			if algo == "" {
				return nil, fmt.Errorf("column %d: latency column %q names no algorithm", i+1, name)
			}
			h.lats[i] = algo
		case canonicalFeature(name):
			h.features[i] = name
		default:
			return nil, fmt.Errorf("column %d: %q is neither a canonical feature nor a %s<algorithm> column", i+1, name, latPrefix)
		}
	}
	if len(h.features) == 0 {
		return nil, fmt.Errorf("header has no feature columns")
	}
	if len(h.lats) == 0 {
		return nil, fmt.Errorf("header has no %s<algorithm> columns", latPrefix)
	}
	return h, nil
}

// ReadCSV ingests a benchmark CSV into a new dataset. Header layout:
//
//	collective,<feature>...,lat_<algorithm>...
//
// Feature cells must all parse; latency cells may be empty (algorithm not
// measured for that row) but at least one per row must be present, and the
// named algorithms must belong to the row's collective. encoding/csv
// enforces arity: a row with the wrong number of cells is an error.
func ReadCSV(r io.Reader, algorithms map[string][]string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.Comment = '#'
	first, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("csv: empty input (no header)")
	}
	if err != nil {
		return nil, fmt.Errorf("csv header: %w", err)
	}
	h, err := parseCSVHeader(first)
	if err != nil {
		return nil, fmt.Errorf("csv header: %w", err)
	}
	d := New(algorithms)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return d, nil
		}
		if err != nil {
			// csv.ParseError already carries the line number.
			return nil, fmt.Errorf("csv: %w", err)
		}
		line, _ := cr.FieldPos(0)
		features := make(map[string]float64, len(h.features))
		for col, name := range h.features {
			v, err := strconv.ParseFloat(strings.TrimSpace(row[col]), 64)
			if err != nil {
				return nil, fmt.Errorf("csv line %d: feature %q: %w", line, name, err)
			}
			features[name] = v
		}
		lats := make(map[string]float64, len(h.lats))
		for col, algo := range h.lats {
			cell := strings.TrimSpace(row[col])
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("csv line %d: latency %q: %w", line, latPrefix+algo, err)
			}
			lats[algo] = v
		}
		if err := d.add(strings.TrimSpace(row[0]), features, "", lats); err != nil {
			return nil, fmt.Errorf("csv line %d: %w", line, err)
		}
	}
}

// ReadFile ingests one benchmark file, dispatching on extension: .csv to
// ReadCSV, .jsonl (or .ndjson) to ReadJSONL.
func ReadFile(path string, algorithms map[string][]string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var d *Dataset
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".csv":
		d, err = ReadCSV(f, algorithms)
	case ".jsonl", ".ndjson":
		d, err = ReadJSONL(f, algorithms)
	default:
		return nil, fmt.Errorf("dataset %s: unsupported extension %q (want .csv, .jsonl, or .ndjson)", path, ext)
	}
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", path, err)
	}
	return d, nil
}
