package bundle_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// binFixture is the trainer-emitted JSON bundle the binary round-trip and
// golden tests anchor on. (External test package; pkg/bundle's internal
// tests declare their own constant for the same file.)
const binFixture = "testdata/trained_small.json"

func loadFixture(t *testing.T) *bundle.Bundle {
	t.Helper()
	b, err := bundle.Load(binFixture)
	if err != nil {
		t.Fatalf("Load(%s): %v", binFixture, err)
	}
	return b
}

// roundTripBinary checks the two fixed-point guarantees of the binary
// codec on one bundle: ParseBinary(EncodeBinary(b)) has the exact same
// canonical JSON Encode as b, and re-encoding it binary reproduces the
// exact same bytes.
func roundTripBinary(t *testing.T, label string, b *bundle.Bundle) {
	t.Helper()
	canonical, err := b.Encode()
	if err != nil {
		t.Fatalf("%s: Encode: %v", label, err)
	}
	bin, err := b.EncodeBinary()
	if err != nil {
		t.Fatalf("%s: EncodeBinary: %v", label, err)
	}
	if !bundle.IsBinary(bin) {
		t.Fatalf("%s: EncodeBinary output does not carry the %q magic", label, bundle.BinaryMagic)
	}
	back, err := bundle.ParseBinary(bin)
	if err != nil {
		t.Fatalf("%s: ParseBinary: %v", label, err)
	}
	enc, err := back.Encode()
	if err != nil {
		t.Fatalf("%s: re-Encode: %v", label, err)
	}
	if !bytes.Equal(enc, canonical) {
		t.Fatalf("%s: ParseBinary(EncodeBinary(b)).Encode() differs from b.Encode()\n got: %s\nwant: %s", label, enc, canonical)
	}
	bin2, err := back.EncodeBinary()
	if err != nil {
		t.Fatalf("%s: re-EncodeBinary: %v", label, err)
	}
	if !bytes.Equal(bin2, bin) {
		t.Fatalf("%s: EncodeBinary is not a fixed point through ParseBinary (%d vs %d bytes)", label, len(bin2), len(bin))
	}
	if want := fmt.Sprintf("%x", sha256.Sum256(bin)); back.Hash != want {
		t.Errorf("%s: binary bundle hash %q, want sha256 of raw bytes %q", label, back.Hash, want)
	}
	if back.SizeBytes != int64(len(bin)) {
		t.Errorf("%s: SizeBytes %d, want %d", label, back.SizeBytes, len(bin))
	}
}

// TestBinaryRoundTripTrainedFixture pins the fixed-point guarantees on the
// committed trainer-emitted artifact.
func TestBinaryRoundTripTrainedFixture(t *testing.T) {
	roundTripBinary(t, "trained_small", loadFixture(t))
}

// TestBinaryRoundTripSynth sweeps synthetic bundles of varied shape through
// the same fixed-point checks.
func TestBinaryRoundTripSynth(t *testing.T) {
	for _, cfg := range []synth.Config{
		{Seed: 21},
		{Seed: 22, Trees: 1, Depth: 1, Features: 1, Classes: 2},
		{Seed: 23, Trees: 32, Depth: 9, Features: 14, Classes: 7, Collectives: []string{"allgather", "allreduce", "broadcast"}},
		{Seed: 24, Labeled: true, Trees: 8, Depth: 5},
	} {
		roundTripBinary(t, fmt.Sprintf("synth seed=%d", cfg.Seed), synth.MustNew(cfg))
	}
}

// TestParseAnyDispatch checks the sniffing entry point routes both
// encodings of the same bundle to the same canonical form.
func TestParseAnyDispatch(t *testing.T) {
	b := loadFixture(t)
	canonical, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bin, err := b.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	for label, data := range map[string][]byte{"json": canonical, "binary": bin} {
		got, err := bundle.ParseAny(data)
		if err != nil {
			t.Fatalf("ParseAny(%s): %v", label, err)
		}
		enc, err := got.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, canonical) {
			t.Errorf("ParseAny(%s) decodes to a different canonical form", label)
		}
	}
}

// TestWriteFileBinaryLoads checks the atomic binary writer produces a file
// Load sniffs and decodes back to the same bundle.
func TestWriteFileBinaryLoads(t *testing.T) {
	b := loadFixture(t)
	canonical, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.pmlb")
	written, err := b.WriteFileBinary(path)
	if err != nil {
		t.Fatalf("WriteFileBinary: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, written) {
		t.Fatal("WriteFileBinary returned bytes that differ from the file it wrote")
	}
	back, err := bundle.Load(path)
	if err != nil {
		t.Fatalf("Load(binary file): %v", err)
	}
	enc, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, canonical) {
		t.Error("binary file loads to a different canonical form")
	}
}

// goldenPredictionDigest is the SHA-256 of the fixture's compiled-evaluator
// prediction table over the fixed synth.Points(1234, 64) grid — class,
// vote counts, and the raw bits of every probability, per collective in
// sorted order. Any change to descent order, accumulation order, or leaf
// payload layout shows up here as a digest mismatch. Regenerate (only
// after proving bit-identity against the pointer walk some other way) by
// running this test with -run TestGoldenCompiledPredictions -v and copying
// the digest from the failure message.
const goldenPredictionDigest = "099a860a20810ce678eee3bdfe64cbda3a01873913628ffdd36f56e5441077dd"

// predictionDigest renders the bundle's prediction table over the fixed
// grid and hashes it. Every compiled prediction is also checked
// bit-identical to the pointer walk, so the pinned digest covers both
// evaluators at once.
func predictionDigest(t *testing.T, b *bundle.Bundle) string {
	t.Helper()
	h := sha256.New()
	points := synth.Points(1234, 64)
	for _, name := range b.CollectiveNames() {
		c := b.Collectives[name]
		cf := c.Compiled()
		if cf == nil {
			t.Fatalf("%s: Compiled() == nil", name)
		}
		for i, pt := range points {
			x, err := c.Vector(pt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cf.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			want, err := c.Forest.Predict(x)
			if err != nil {
				t.Fatal(err)
			}
			if got.Class != want.Class {
				t.Fatalf("%s point %d: compiled class %d, pointer class %d", name, i, got.Class, want.Class)
			}
			fmt.Fprintf(h, "%s %d %d", name, i, got.Class)
			for cls := range got.Probs {
				if math.Float64bits(got.Probs[cls]) != math.Float64bits(want.Probs[cls]) {
					t.Fatalf("%s point %d: compiled prob[%d] bits differ from pointer", name, i, cls)
				}
				if got.Votes[cls] != want.Votes[cls] {
					t.Fatalf("%s point %d: compiled votes[%d] differ from pointer", name, i, cls)
				}
				fmt.Fprintf(h, " %016x/%d", math.Float64bits(got.Probs[cls]), got.Votes[cls])
			}
			fmt.Fprintln(h)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenCompiledPredictions pins the exact bits the compiled evaluator
// produces on the committed fixture, for both the JSON and the binary
// decoding of the same bundle — a cross-machine, cross-refactor tripwire
// for any silent change in prediction semantics.
func TestGoldenCompiledPredictions(t *testing.T) {
	b := loadFixture(t)
	if got := predictionDigest(t, b); got != goldenPredictionDigest {
		t.Errorf("fixture prediction table digest %s, pinned %s", got, goldenPredictionDigest)
	}
	bin, err := b.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	fromBinary, err := bundle.ParseBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got := predictionDigest(t, fromBinary); got != goldenPredictionDigest {
		t.Errorf("binary-decoded prediction table digest %s, pinned %s", got, goldenPredictionDigest)
	}
}

// fixtureBinary returns the current binary encoding of the trained fixture.
func fixtureBinary(tb testing.TB) []byte {
	tb.Helper()
	raw, err := os.ReadFile(binFixture)
	if err != nil {
		tb.Fatal(err)
	}
	b, err := bundle.Parse(raw)
	if err != nil {
		tb.Fatal(err)
	}
	bin, err := b.EncodeBinary()
	if err != nil {
		tb.Fatal(err)
	}
	return bin
}

// TestBinaryFuzzSeedInSync keeps the committed FuzzParseBinary valid seed
// in lockstep with the current encoder, so corpus rot is caught by `go
// test` instead of silently shrinking fuzz coverage.
func TestBinaryFuzzSeedInSync(t *testing.T) {
	seedPath := filepath.Join("testdata", "fuzz", "FuzzParseBinary", "seed_valid")
	raw, err := os.ReadFile(seedPath)
	if err != nil {
		t.Fatalf("read committed fuzz seed: %v", err)
	}
	const prefix = "go test fuzz v1\n[]byte("
	text := string(raw)
	if !strings.HasPrefix(text, prefix) {
		t.Fatalf("%s is not a go-fuzz v1 []byte corpus entry", seedPath)
	}
	quoted := strings.TrimSuffix(strings.TrimPrefix(text, prefix), ")\n")
	seed, err := strconv.Unquote(quoted)
	if err != nil {
		t.Fatalf("unquote corpus entry: %v", err)
	}
	if !bytes.Equal([]byte(seed), fixtureBinary(t)) {
		t.Fatalf("%s no longer matches EncodeBinary of %s — regenerate the corpus", seedPath, binFixture)
	}
}

// FuzzParseBinary feeds arbitrary bytes to the binary bundle parser. The
// contract mirrors FuzzParse: hostile input must yield a descriptive error
// — never a panic — and anything accepted must be a fully validated bundle
// that round-trips through both encodings. Seed corpus lives in
// testdata/fuzz/FuzzParseBinary.
func FuzzParseBinary(f *testing.F) {
	bin := fixtureBinary(f)
	f.Add(bin)
	f.Add(bin[:len(bin)/2]) // truncated mid-section
	f.Add([]byte{})
	f.Add([]byte("PMLB"))
	corrupt := bytes.Clone(bin)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	badVersion := bytes.Clone(bin)
	binary.LittleEndian.PutUint32(badVersion[4:], 99)
	f.Add(badVersion)
	badTag := bytes.Clone(bin)
	binary.LittleEndian.PutUint32(badTag[12:], 9) // first section tag → unknown
	f.Add(badTag)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := bundle.ParseBinary(data) // must never panic
		if err != nil {
			if b != nil {
				t.Error("ParseBinary returned both a bundle and an error")
			}
			return
		}
		if b.Version != bundle.SupportedVersion {
			t.Errorf("accepted bundle has version %q", b.Version)
		}
		if len(b.Collectives) == 0 {
			t.Error("accepted bundle has no collectives")
		}
		for name, c := range b.Collectives {
			if c.Forest == nil {
				t.Fatalf("collective %q accepted without a forest", name)
			}
			if err := c.Forest.Validate(len(c.Features)); err != nil {
				t.Errorf("collective %q accepted with invalid forest: %v", name, err)
			}
			if c.Compiled() == nil {
				t.Errorf("collective %q accepted but does not compile", name)
			}
		}
		// Anything accepted must survive both encodings unchanged.
		enc, err := b.Encode()
		if err != nil {
			t.Fatalf("accepted bundle fails Encode: %v", err)
		}
		rebin, err := b.EncodeBinary()
		if err != nil {
			t.Fatalf("accepted bundle fails EncodeBinary: %v", err)
		}
		back, err := bundle.ParseBinary(rebin)
		if err != nil {
			t.Fatalf("re-encoded bundle fails ParseBinary: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Error("accepted bundle does not round-trip through the binary encoding")
		}
	})
}
