package bundle

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
)

// Binary bundle format ("PMLB"): the compact sibling of the canonical JSON
// encoding, built for fleet distribution and fast loads. Layout (all
// little-endian):
//
//	magic        [4]byte "PMLB"
//	version      uint32 (BinaryVersion)
//	sectionCount uint32
//	sections:    tag uint32, length uint64, payload
//
// Section tags:
//
//	1 (meta):          bundle version string, trained_on string list
//	2 (collective):    name, op, cv_auc, feature subset, importance table,
//	                   and the forest as flat node arrays
//	3 (feature_stats): optional training-distribution snapshot (source,
//	                   then per-feature name, bin edges, bin counts)
//
// Strings are uint32-length-prefixed UTF-8; lists are uint32-count-prefixed.
// Unknown tags and any truncation are rejected with descriptive errors.
// ParseBinary(EncodeBinary(b)) reconstructs a bundle whose canonical JSON
// Encode is byte-identical to b's — the fixed-point guarantee the
// round-trip tests pin.

// BinaryMagic identifies a binary bundle; Load and ParseAny sniff it to
// dispatch between the JSON and binary parsers.
var BinaryMagic = [4]byte{'P', 'M', 'L', 'B'}

// BinaryVersion is the binary bundle layout version this build reads and
// writes.
const BinaryVersion = 1

const (
	sectionMeta         = 1
	sectionCollective   = 2
	sectionFeatureStats = 3
)

// IsBinary reports whether data starts with the binary bundle magic.
func IsBinary(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == BinaryMagic
}

// ParseAny decodes a bundle in either encoding, sniffing the binary magic.
func ParseAny(data []byte) (*Bundle, error) {
	if IsBinary(data) {
		return ParseBinary(data)
	}
	return Parse(data)
}

// binaryWriter appends primitives to a growing buffer.
type binaryWriter struct{ buf []byte }

func (w *binaryWriter) u32(v uint32)  { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *binaryWriter) u64(v uint64)  { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *binaryWriter) i32(v int32)   { w.u32(uint32(v)) }
func (w *binaryWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *binaryWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *binaryWriter) strs(ss []string) {
	w.u32(uint32(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

// section writes a tagged, length-prefixed section whose payload is
// produced by fill.
func (w *binaryWriter) section(tag uint32, fill func(*binaryWriter)) {
	w.u32(tag)
	lenAt := len(w.buf)
	w.u64(0) // patched below
	start := len(w.buf)
	fill(w)
	binary.LittleEndian.PutUint64(w.buf[lenAt:], uint64(len(w.buf)-start))
}

// EncodeBinary renders the bundle into the compact binary format after the
// same full validation Encode performs. Deterministic: collectives are
// written in sorted name order, so equal bundles produce equal bytes.
func (b *Bundle) EncodeBinary() ([]byte, error) {
	version := b.Version
	if version == "" {
		version = SupportedVersion
	}
	if version != SupportedVersion {
		return nil, fmt.Errorf("encode binary: unsupported bundle version %q (this build writes %q)", version, SupportedVersion)
	}
	if len(b.Collectives) == 0 {
		return nil, fmt.Errorf("encode binary: bundle contains no collectives")
	}
	names := b.CollectiveNames()
	for _, name := range names {
		if name == "version" || name == "trained_on" || name == "feature_stats" {
			return nil, fmt.Errorf("encode binary: collective name %q collides with a reserved bundle key", name)
		}
		if err := validateCollective(b.Collectives[name]); err != nil {
			return nil, fmt.Errorf("encode binary: collective %q: %w", name, err)
		}
	}
	if b.Stats != nil {
		if err := validateFeatureStats(b.Stats); err != nil {
			return nil, fmt.Errorf("encode binary: %w", err)
		}
	}

	sections := 1 + len(names)
	if b.Stats != nil {
		sections++
	}
	w := &binaryWriter{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, BinaryMagic[:]...)
	w.u32(BinaryVersion)
	w.u32(uint32(sections))
	w.section(sectionMeta, func(w *binaryWriter) {
		w.str(version)
		w.strs(b.TrainedOn)
	})
	if b.Stats != nil {
		w.section(sectionFeatureStats, func(w *binaryWriter) {
			encodeFeatureStats(w, b.Stats)
		})
	}
	for _, name := range names {
		c := b.Collectives[name]
		w.section(sectionCollective, func(w *binaryWriter) {
			w.str(name)
			w.i32(int32(c.Op))
			w.f64(c.CVAUC)
			w.u32(uint32(len(c.Features)))
			for _, idx := range c.Features {
				w.i32(int32(idx))
			}
			w.strs(c.FeatureNames)
			w.u32(uint32(len(c.FullImportance)))
			for _, imp := range c.FullImportance {
				w.str(imp.Name)
				w.i32(int32(imp.Index))
				w.f64(imp.Importance)
			}
			encodeForest(w, c.Forest)
		})
	}
	return w.buf, nil
}

func encodeFeatureStats(w *binaryWriter, s *FeatureStats) {
	w.str(s.Source)
	names := s.FeatureNames()
	w.u32(uint32(len(names)))
	for _, name := range names {
		d := s.Features[name]
		w.str(name)
		w.u32(uint32(len(d.Edges)))
		for _, e := range d.Edges {
			w.f64(e)
		}
		w.u32(uint32(len(d.Counts)))
		for _, c := range d.Counts {
			w.u64(c)
		}
	}
}

func encodeForest(w *binaryWriter, f *forest.Forest) {
	w.u32(uint32(f.NClasses))
	w.f64(f.OOB)
	w.u32(uint32(len(f.Importance)))
	for _, v := range f.Importance {
		w.f64(v)
	}
	w.u32(uint32(len(f.Trees)))
	for ti := range f.Trees {
		nodes := f.Trees[ti].Nodes
		w.u32(uint32(len(nodes)))
		for ni := range nodes {
			n := &nodes[ni]
			w.i32(int32(n.F))
			w.f64(n.T)
			w.i32(int32(n.L))
			w.i32(int32(n.R))
			w.u32(uint32(len(n.D)))
			for _, d := range n.D {
				w.f64(d)
			}
		}
	}
}

// binaryReader consumes primitives with bounds checking; the first failure
// latches an error and turns every later read into a zero-value no-op, so
// decode loops stay simple and truncation can never panic.
type binaryReader struct {
	data []byte
	pos  int
	err  error
}

func (r *binaryReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *binaryReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.fail("binary bundle truncated at byte %d (needed %d more)", r.pos, n)
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *binaryReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *binaryReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *binaryReader) i32() int32     { return int32(r.u32()) }
func (r *binaryReader) f64() float64   { return math.Float64frombits(r.u64()) }
func (r *binaryReader) remaining() int { return len(r.data) - r.pos }

func (r *binaryReader) str() string {
	n := r.u32()
	if int(n) > r.remaining() {
		r.fail("binary bundle: string length %d exceeds remaining %d bytes", n, r.remaining())
		return ""
	}
	return string(r.take(int(n)))
}

func (r *binaryReader) strs() []string {
	n := r.u32()
	if int(n) > r.remaining() {
		r.fail("binary bundle: list count %d exceeds remaining %d bytes", n, r.remaining())
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	return out
}

// ParseBinary decodes and validates a binary bundle. Like Parse it is
// defensive: truncated, corrupt, or hostile input yields a descriptive
// error, never a panic, and the result carries the SHA-256 of the raw
// bytes so registry identity works identically across encodings.
func ParseBinary(data []byte) (*Bundle, error) {
	if !IsBinary(data) {
		return nil, fmt.Errorf("parse binary: missing %q magic", BinaryMagic)
	}
	r := &binaryReader{data: data, pos: 4}
	if v := r.u32(); v != BinaryVersion {
		return nil, fmt.Errorf("parse binary: unsupported binary version %d (this build reads %d)", v, BinaryVersion)
	}
	b := &Bundle{
		Collectives: make(map[string]*Collective),
		LoadedAt:    time.Now(),
		Hash:        fmt.Sprintf("%x", sha256.Sum256(data)),
		SizeBytes:   int64(len(data)),
	}
	sections := r.u32()
	sawMeta := false
	for s := uint32(0); s < sections && r.err == nil; s++ {
		tag := r.u32()
		length := r.u64()
		if length > uint64(r.remaining()) {
			return nil, fmt.Errorf("parse binary: section %d length %d exceeds remaining %d bytes", s, length, r.remaining())
		}
		sec := &binaryReader{data: r.take(int(length))}
		switch tag {
		case sectionMeta:
			if sawMeta {
				return nil, fmt.Errorf("parse binary: duplicate meta section")
			}
			sawMeta = true
			b.Version = sec.str()
			b.TrainedOn = sec.strs()
			if sec.err == nil && b.Version != SupportedVersion {
				return nil, fmt.Errorf("unsupported bundle version %q (this build supports %q)", b.Version, SupportedVersion)
			}
		case sectionFeatureStats:
			if b.Stats != nil {
				return nil, fmt.Errorf("parse binary: duplicate feature_stats section")
			}
			fs, err := decodeFeatureStats(sec)
			if err != nil {
				return nil, fmt.Errorf("parse binary: %w", err)
			}
			if err := validateFeatureStats(fs); err != nil {
				return nil, fmt.Errorf("validate: %w", err)
			}
			b.Stats = fs
		case sectionCollective:
			c, name, err := decodeCollective(sec)
			if err != nil {
				return nil, fmt.Errorf("parse binary: %w", err)
			}
			if name == "version" || name == "trained_on" {
				return nil, fmt.Errorf("parse binary: collective name %q collides with a reserved bundle key", name)
			}
			if _, dup := b.Collectives[name]; dup {
				return nil, fmt.Errorf("parse binary: duplicate collective %q", name)
			}
			if err := validateCollective(c); err != nil {
				return nil, fmt.Errorf("validate: collective %q: %w", name, err)
			}
			if c.Compiled() == nil {
				return nil, fmt.Errorf("validate: collective %q: %w", name, c.compileErr)
			}
			b.Collectives[name] = c
		default:
			return nil, fmt.Errorf("parse binary: unknown section tag %d", tag)
		}
		if sec.err != nil {
			return nil, fmt.Errorf("parse binary: %w", sec.err)
		}
		if sec.remaining() != 0 {
			return nil, fmt.Errorf("parse binary: section tag %d has %d trailing bytes", tag, sec.remaining())
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("parse binary: %w", r.err)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("parse binary: %d trailing bytes after %d sections", r.remaining(), sections)
	}
	if !sawMeta {
		return nil, fmt.Errorf("parse binary: bundle missing meta section")
	}
	if len(b.Collectives) == 0 {
		return nil, fmt.Errorf("validate: bundle contains no collectives")
	}
	return b, nil
}

func decodeFeatureStats(r *binaryReader) (*FeatureStats, error) {
	s := &FeatureStats{Source: r.str(), Features: make(map[string]FeatureDist)}
	nFeat := r.u32()
	if int(nFeat) > r.remaining() {
		return nil, fmt.Errorf("feature_stats: feature count %d exceeds remaining bytes", nFeat)
	}
	for i := uint32(0); i < nFeat && r.err == nil; i++ {
		name := r.str()
		var d FeatureDist
		nEdges := r.u32()
		if int(nEdges)*8 > r.remaining() {
			return nil, fmt.Errorf("feature_stats: feature %q edge count %d exceeds remaining bytes", name, nEdges)
		}
		for e := uint32(0); e < nEdges && r.err == nil; e++ {
			d.Edges = append(d.Edges, r.f64())
		}
		nCounts := r.u32()
		if int(nCounts)*8 > r.remaining() {
			return nil, fmt.Errorf("feature_stats: feature %q bin count %d exceeds remaining bytes", name, nCounts)
		}
		for c := uint32(0); c < nCounts && r.err == nil; c++ {
			d.Counts = append(d.Counts, r.u64())
		}
		if _, dup := s.Features[name]; dup {
			return nil, fmt.Errorf("feature_stats: duplicate feature %q", name)
		}
		s.Features[name] = d
	}
	return s, r.err
}

func decodeCollective(r *binaryReader) (*Collective, string, error) {
	name := r.str()
	c := &Collective{Name: name}
	c.Op = int(r.i32())
	c.CVAUC = r.f64()
	nFeat := r.u32()
	if int(nFeat) > r.remaining() {
		return nil, name, fmt.Errorf("collective %q: feature count %d exceeds remaining bytes", name, nFeat)
	}
	for i := uint32(0); i < nFeat && r.err == nil; i++ {
		c.Features = append(c.Features, int(r.i32()))
	}
	c.FeatureNames = r.strs()
	nImp := r.u32()
	if int(nImp) > r.remaining() {
		return nil, name, fmt.Errorf("collective %q: importance count %d exceeds remaining bytes", name, nImp)
	}
	for i := uint32(0); i < nImp && r.err == nil; i++ {
		imp := Importance{Name: r.str()}
		imp.Index = int(r.i32())
		imp.Importance = r.f64()
		c.FullImportance = append(c.FullImportance, imp)
	}
	f, err := decodeForest(r, name)
	if err != nil {
		return nil, name, err
	}
	c.Forest = f
	return c, name, r.err
}

func decodeForest(r *binaryReader, name string) (*forest.Forest, error) {
	f := &forest.Forest{NClasses: int(r.u32()), OOB: r.f64()}
	nImp := r.u32()
	if int(nImp) > r.remaining() {
		return nil, fmt.Errorf("collective %q: forest importance count %d exceeds remaining bytes", name, nImp)
	}
	for i := uint32(0); i < nImp && r.err == nil; i++ {
		f.Importance = append(f.Importance, r.f64())
	}
	nTrees := r.u32()
	if int(nTrees) > r.remaining() {
		return nil, fmt.Errorf("collective %q: tree count %d exceeds remaining bytes", name, nTrees)
	}
	for t := uint32(0); t < nTrees && r.err == nil; t++ {
		nNodes := r.u32()
		if int(nNodes) > r.remaining() {
			return nil, fmt.Errorf("collective %q: tree %d node count %d exceeds remaining bytes", name, t, nNodes)
		}
		nodes := make([]forest.Node, 0, nNodes)
		for n := uint32(0); n < nNodes && r.err == nil; n++ {
			node := forest.Node{F: int(r.i32()), T: r.f64(), L: int(r.i32()), R: int(r.i32())}
			nd := r.u32()
			if int(nd) > r.remaining() {
				return nil, fmt.Errorf("collective %q: leaf distribution length %d exceeds remaining bytes", name, nd)
			}
			for d := uint32(0); d < nd && r.err == nil; d++ {
				node.D = append(node.D, r.f64())
			}
			nodes = append(nodes, node)
		}
		f.Trees = append(f.Trees, forest.Tree{Nodes: nodes})
	}
	return f, r.err
}

// WriteFileBinary encodes the bundle in the binary format and writes it
// atomically (temp file + rename, like WriteFile). Returns the encoded
// bytes so callers can hash or log what shipped.
func (b *Bundle) WriteFileBinary(path string) ([]byte, error) {
	data, err := b.EncodeBinary()
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".bundle-*.pmlb.tmp")
	if err != nil {
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	return data, nil
}
