package bundle

import (
	"encoding/json"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the bundle parser. The contract under
// fuzzing is the package's core promise: malformed, truncated, or hostile
// input must yield a descriptive error — never a panic — and anything the
// parser accepts must be a fully validated bundle. Seed corpus lives in
// testdata/fuzz/FuzzParse (regenerate with `go test -run=FuzzParse
// -fuzz=FuzzParse -fuzztime=30s ./pkg/bundle`).
func FuzzParse(f *testing.F) {
	f.Add([]byte(minimalBundle))
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"version": "pml-mpi/1"}`))
	f.Add([]byte(`{"version": "pml-mpi/2", "x": {}}`))
	f.Add([]byte(`{"version": "pml-mpi/1", "bad": {"features": [99], "feature_names": ["?"]}}`))
	f.Add([]byte(minimalBundle[:len(minimalBundle)/2])) // truncated mid-forest
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := Parse(data) // must never panic
		if err != nil {
			if b != nil {
				t.Error("Parse returned both a bundle and an error")
			}
			return
		}
		// Anything accepted must be fully valid and usable.
		if b.Version != SupportedVersion {
			t.Errorf("accepted bundle has version %q", b.Version)
		}
		if len(b.Collectives) == 0 {
			t.Error("accepted bundle has no collectives")
		}
		for name, c := range b.Collectives {
			if c.Forest == nil {
				t.Fatalf("collective %q accepted without a forest", name)
			}
			if err := c.Forest.Validate(len(c.Features)); err != nil {
				t.Errorf("collective %q accepted with invalid forest: %v", name, err)
			}
		}
	})
}

// fuzzVectorNames is the feature subset FuzzVector extracts against.
var fuzzVectorNames = []string{"num_nodes", "ppn", "log2_msg_size"}

// FuzzVector feeds arbitrary JSON-encoded feature maps to feature-vector
// extraction. Extraction must never panic: it either orders every required
// feature into the vector, or reports exactly which one is missing. Seed
// corpus lives in testdata/fuzz/FuzzVector.
func FuzzVector(f *testing.F) {
	f.Add([]byte(`{"num_nodes": 4, "ppn": 16, "log2_msg_size": 20}`))
	f.Add([]byte(`{"num_nodes": 4}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"num_nodes": 1e308, "ppn": -0, "log2_msg_size": 0.0000001, "extra": 9}`))
	f.Add([]byte(`{"NUM_NODES": 4, "ppn": 16, "log2_msg_size": 20}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var features map[string]float64
		if json.Unmarshal(data, &features) != nil {
			return // not a feature map; extraction is unreachable in production
		}
		c := &Collective{
			Name:         "fuzz",
			Features:     []int{0, 1, 2},
			FeatureNames: fuzzVectorNames,
		}
		x, err := c.Vector(features) // must never panic
		if err != nil {
			if !strings.Contains(err.Error(), "missing feature") {
				t.Errorf("unexpected error shape: %v", err)
			}
			return
		}
		if len(x) != len(fuzzVectorNames) {
			t.Fatalf("vector has %d entries, want %d", len(x), len(fuzzVectorNames))
		}
		for i, name := range fuzzVectorNames {
			v, ok := features[name]
			if !ok {
				t.Fatalf("Vector succeeded but %q is absent from the input map", name)
			}
			// NaN != NaN, so compare bit-identity via the map value itself.
			if x[i] != v && !(v != v && x[i] != x[i]) {
				t.Errorf("x[%d] = %v, map has %v", i, x[i], v)
			}
		}
	})
}
