package bundle

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

const realBundle = "../../.pmlbench/bundle_all_full.json"

// minimalBundle is a syntactically complete, valid one-collective bundle
// used for truncation and mutation tests.
const minimalBundle = `{
  "version": "pml-mpi/1",
  "trained_on": ["SysA", "SysB"],
  "allgather": {
    "op": 0,
    "features": [2, 1],
    "feature_names": ["log2_msg_size", "ppn"],
    "forest": {
      "trees": [
        {"nodes": [
          {"f": 0, "t": 10, "l": 1, "r": 2},
          {"f": -1, "t": 0, "l": 0, "r": 0, "d": [1, 0]},
          {"f": -1, "t": 0, "l": 0, "r": 0, "d": [0, 1]}
        ]}
      ],
      "nclasses": 2
    },
    "cv_auc": 0.9
  }
}`

func TestLoadRealBundle(t *testing.T) {
	b, err := Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if b.Version != SupportedVersion {
		t.Errorf("version = %q, want %q", b.Version, SupportedVersion)
	}
	if len(b.TrainedOn) != 18 {
		t.Errorf("trained_on has %d systems, want 18", len(b.TrainedOn))
	}
	if got := b.CollectiveNames(); len(got) != 2 || got[0] != "allgather" || got[1] != "alltoall" {
		t.Fatalf("collectives = %v, want [allgather alltoall]", got)
	}
	ag, _ := b.Collective("allgather")
	if len(ag.Forest.Trees) != 60 || ag.Forest.NClasses != 4 {
		t.Errorf("allgather forest: trees=%d classes=%d, want 60/4",
			len(ag.Forest.Trees), ag.Forest.NClasses)
	}
	at, _ := b.Collective("alltoall")
	if len(at.Forest.Trees) != 100 || at.Forest.NClasses != 5 {
		t.Errorf("alltoall forest: trees=%d classes=%d, want 100/5",
			len(at.Forest.Trees), at.Forest.NClasses)
	}
	if b.SizeBytes == 0 || b.Path != realBundle {
		t.Errorf("provenance not recorded: size=%d path=%q", b.SizeBytes, b.Path)
	}
}

func TestLoadTruncatedFileReturnsDescriptiveError(t *testing.T) {
	// Simulate the seed capture being cut mid-stream: a prefix of the real
	// bundle is not valid JSON and must produce an error, never a panic.
	data, err := os.ReadFile(realBundle)
	if err != nil {
		t.Fatalf("read real bundle: %v", err)
	}
	for _, cut := range []int{1, 100, 4096, len(data) / 2} {
		path := filepath.Join(t.TempDir(), "truncated.json")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(path)
		if err == nil {
			t.Fatalf("cut=%d: expected error for truncated bundle", cut)
		}
		if !strings.Contains(err.Error(), "truncated") && !strings.Contains(err.Error(), "parse") {
			t.Errorf("cut=%d: error %q should mention parse/truncation", cut, err)
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	if err == nil || !strings.Contains(err.Error(), "read bundle") {
		t.Fatalf("expected read error, got %v", err)
	}
}

func TestParseMinimalBundle(t *testing.T) {
	b, err := Parse([]byte(minimalBundle))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c, ok := b.Collective("allgather")
	if !ok {
		t.Fatal("missing allgather")
	}
	x, err := c.Vector(map[string]float64{"log2_msg_size": 12, "ppn": 4, "extra": 9})
	if err != nil {
		t.Fatalf("Vector: %v", err)
	}
	if x[0] != 12 || x[1] != 4 {
		t.Errorf("vector = %v, want [12 4]", x)
	}
}

func TestVectorMissingFeature(t *testing.T) {
	b, _ := Parse([]byte(minimalBundle))
	c, _ := b.Collective("allgather")
	_, err := c.Vector(map[string]float64{"log2_msg_size": 12})
	if err == nil || !strings.Contains(err.Error(), `missing feature "ppn"`) {
		t.Fatalf("expected missing-feature error, got %v", err)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"empty input", func(string) string { return "" }, "empty"},
		{"not json", func(string) string { return "not json at all" }, "malformed"},
		{"wrong version", func(s string) string {
			return strings.Replace(s, "pml-mpi/1", "pml-mpi/99", 1)
		}, "unsupported bundle version"},
		{"missing version", func(s string) string {
			return strings.Replace(s, `"version": "pml-mpi/1",`, "", 1)
		}, `missing "version"`},
		{"feature name mismatch", func(s string) string {
			return strings.Replace(s, `"log2_msg_size", "ppn"`, `"ppn", "log2_msg_size"`, 1)
		}, "does not match canonical"},
		{"feature index out of range", func(s string) string {
			return strings.Replace(s, `"features": [2, 1]`, `"features": [2, 99]`, 1)
		}, "out of canonical range"},
		{"length mismatch", func(s string) string {
			return strings.Replace(s, `"features": [2, 1]`, `"features": [2]`, 1)
		}, "length mismatch"},
		{"no collectives", func(string) string {
			return `{"version": "pml-mpi/1", "trained_on": []}`
		}, "no collectives"},
		{"bad leaf arity", func(s string) string {
			return strings.Replace(s, `"d": [1, 0]`, `"d": [1, 0, 0]`, 1)
		}, "leaf distribution"},
		{"cyclic tree", func(s string) string {
			return strings.Replace(s, `{"f": 0, "t": 10, "l": 1, "r": 2}`, `{"f": 0, "t": 10, "l": 0, "r": 2}`, 1)
		}, "point forward"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.mutate(minimalBundle)))
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadObserved(t *testing.T) {
	o := obs.NewForTest()
	b, err := LoadObserved(context.Background(), o, realBundle)
	if err != nil {
		t.Fatalf("LoadObserved: %v", err)
	}
	if b.Version != SupportedVersion {
		t.Errorf("version = %q", b.Version)
	}
	var expo strings.Builder
	o.Registry.WritePrometheus(&expo)
	if !strings.Contains(expo.String(), `pmlmpi_span_duration_seconds_count{span="bundle.load"} 1`) {
		t.Errorf("bundle.load span not recorded:\n%s", expo.String())
	}

	if _, err := LoadObserved(context.Background(), o, "does-not-exist.json"); err == nil {
		t.Error("expected error for missing file")
	}
}
