package bundle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Encode renders the bundle into its canonical on-disk JSON form — the
// exact format Parse accepts — after re-running full validation, so an
// emitted artifact can never be one the loader would reject. Encoding is
// deterministic (object keys sort lexicographically, floats use Go's
// shortest round-trip form), which gives the byte-faithful guarantee the
// training pipeline relies on: Encode → Parse → Encode reproduces
// identical bytes, and therefore an identical content hash.
func (b *Bundle) Encode() ([]byte, error) {
	version := b.Version
	if version == "" {
		version = SupportedVersion
	}
	if version != SupportedVersion {
		return nil, fmt.Errorf("encode: unsupported bundle version %q (this build writes %q)", version, SupportedVersion)
	}
	if len(b.Collectives) == 0 {
		return nil, fmt.Errorf("encode: bundle contains no collectives")
	}
	doc := make(map[string]any, len(b.Collectives)+3)
	doc["version"] = version
	if len(b.TrainedOn) > 0 {
		doc["trained_on"] = b.TrainedOn
	}
	if b.Stats != nil {
		if err := validateFeatureStats(b.Stats); err != nil {
			return nil, fmt.Errorf("encode: %w", err)
		}
		doc["feature_stats"] = b.Stats
	}
	for name, c := range b.Collectives {
		if name == "version" || name == "trained_on" || name == "feature_stats" {
			return nil, fmt.Errorf("encode: collective name %q collides with a reserved bundle key", name)
		}
		if err := validateCollective(c); err != nil {
			return nil, fmt.Errorf("encode: collective %q: %w", name, err)
		}
		doc[name] = c
	}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	return data, nil
}

// WriteFile encodes the bundle and writes it atomically: the bytes land
// in a temporary file in the destination directory, then rename into
// place. A watcher polling the path therefore only ever sees the old
// content or the complete new content, never a partial write. Returns the
// encoded bytes so callers can hash or log what actually shipped.
func (b *Bundle) WriteFile(path string) ([]byte, error) {
	data, err := b.Encode()
	if err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".bundle-*.json.tmp")
	if err != nil {
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return nil, fmt.Errorf("write bundle: %w", err)
	}
	return data, nil
}
