package bundle

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEncodeRoundTripsParsedBundle: parsing any valid bundle and encoding
// it yields bytes Parse accepts again, and the second round trip is
// byte-identical (the canonical-form fixed point).
func TestEncodeRoundTripsParsedBundle(t *testing.T) {
	b, err := Parse([]byte(minimalBundle))
	if err != nil {
		t.Fatal(err)
	}
	first, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	reparsed, err := Parse(first)
	if err != nil {
		t.Fatalf("Parse of encoded bundle: %v", err)
	}
	second, err := reparsed.Encode()
	if err != nil {
		t.Fatalf("second Encode: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("Encode -> Parse -> Encode is not a fixed point")
	}
	if reparsed.Hash != mustParseHash(t, first) {
		t.Fatal("reparsed hash does not match encoded bytes")
	}
	if len(reparsed.TrainedOn) != 2 || reparsed.TrainedOn[0] != "SysA" {
		t.Errorf("trained_on lost in round trip: %v", reparsed.TrainedOn)
	}
}

func mustParseHash(t *testing.T, data []byte) string {
	t.Helper()
	b, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return b.Hash
}

// TestEncodeRealBundle: the shipped production bundle survives a parse →
// encode → parse cycle with every collective intact.
func TestEncodeRealBundle(t *testing.T) {
	b, err := Load(realBundle)
	if err != nil {
		t.Fatal(err)
	}
	data, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b2, err := Parse(data)
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	for name, c := range b.Collectives {
		c2, ok := b2.Collectives[name]
		if !ok {
			t.Fatalf("collective %q lost in round trip", name)
		}
		if len(c2.Forest.Trees) != len(c.Forest.Trees) || c2.Forest.NClasses != c.Forest.NClasses {
			t.Errorf("%s: forest shape changed (%d/%d -> %d/%d)", name,
				len(c.Forest.Trees), c.Forest.NClasses, len(c2.Forest.Trees), c2.Forest.NClasses)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	valid, err := Parse([]byte(minimalBundle))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(*Bundle)
		wantErr string
	}{
		{"no collectives", func(b *Bundle) { b.Collectives = nil }, "no collectives"},
		{"wrong version", func(b *Bundle) { b.Version = "pml-mpi/9" }, "unsupported bundle version"},
		{"reserved name", func(b *Bundle) {
			b.Collectives["version"] = b.Collectives["allgather"]
		}, "reserved bundle key"},
		{"invalid collective", func(b *Bundle) {
			b.Collectives["allgather"].Forest = nil
		}, "missing forest"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := Parse([]byte(minimalBundle))
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(b)
			if _, err := b.Encode(); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not contain %q", err, tc.wantErr)
			}
		})
	}
	// The untouched bundle still encodes.
	if _, err := valid.Encode(); err != nil {
		t.Fatalf("valid bundle failed to encode: %v", err)
	}
}

// TestEncodeEmptyVersionDefaults: a bundle assembled in memory (trainer
// path) with no version set encodes as the supported version.
func TestEncodeEmptyVersionDefaults(t *testing.T) {
	b, err := Parse([]byte(minimalBundle))
	if err != nil {
		t.Fatal(err)
	}
	b.Version = ""
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Version != SupportedVersion {
		t.Errorf("version = %q, want %q", rb.Version, SupportedVersion)
	}
}

func TestWriteFileAtomicAndLoadable(t *testing.T) {
	b, err := Parse([]byte(minimalBundle))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "bundle.json")
	data, err := b.WriteFile(path)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, onDisk) {
		t.Fatal("WriteFile returned bytes that differ from the file")
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("Load of written bundle: %v", err)
	}
	if loaded.Hash != mustParseHash(t, data) {
		t.Fatal("loaded hash mismatch")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "bundle.json" {
			t.Errorf("unexpected file %q left in bundle dir", e.Name())
		}
	}
}
