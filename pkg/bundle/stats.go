package bundle

import (
	"fmt"
	"math"
	"sort"
)

// FeatureStats is the optional training-distribution snapshot a trainer can
// embed in a bundle under the reserved "feature_stats" key (JSON) or
// section tag 3 (binary). It records, per canonical feature, the binned
// distribution of that feature over the training sweep, giving the serving
// side a reference to score live-traffic drift against. Bundles written
// before this field existed simply omit it; every consumer must tolerate
// its absence.
type FeatureStats struct {
	// Source names where the distribution came from, e.g. "train/sweep".
	Source string `json:"source,omitempty"`
	// Features maps canonical feature names to their training distribution.
	Features map[string]FeatureDist `json:"features"`
}

// FeatureDist is one feature's binned training distribution: strictly
// ascending interior cut points plus one count per bin. Bin i covers
// (Edges[i-1], Edges[i]]; the first bin is open below, the last
// (Counts[len(Edges)]) is open above.
type FeatureDist struct {
	Edges  []float64 `json:"edges"`
	Counts []uint64  `json:"counts"`
}

// BucketOf returns the bin index for v under the shared binning convention
// (first edge >= v, overflow bin past the last edge). Every producer and
// consumer of FeatureDist counts — trainer and drift monitor alike — must
// bucket through this one function so their histograms are comparable.
func (d FeatureDist) BucketOf(v float64) int {
	return sort.SearchFloat64s(d.Edges, v)
}

// Total returns the number of training observations behind the distribution.
func (d FeatureDist) Total() uint64 {
	var t uint64
	for _, c := range d.Counts {
		t += c
	}
	return t
}

// FeatureNames returns the sorted feature names present in the stats.
func (s *FeatureStats) FeatureNames() []string {
	names := make([]string, 0, len(s.Features))
	for n := range s.Features {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func validateFeatureStats(s *FeatureStats) error {
	if len(s.Features) == 0 {
		return fmt.Errorf("feature_stats: empty features table")
	}
	canonical := make(map[string]bool, len(CanonicalFeatures))
	for _, n := range CanonicalFeatures {
		canonical[n] = true
	}
	for name, d := range s.Features {
		if !canonical[name] {
			return fmt.Errorf("feature_stats: %q is not a canonical feature", name)
		}
		if len(d.Edges) == 0 {
			return fmt.Errorf("feature_stats: feature %q has no bin edges", name)
		}
		for i, e := range d.Edges {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				return fmt.Errorf("feature_stats: feature %q edge %d is not finite", name, i)
			}
			if i > 0 && e <= d.Edges[i-1] {
				return fmt.Errorf("feature_stats: feature %q edges not strictly ascending at %d", name, i)
			}
		}
		if len(d.Counts) != len(d.Edges)+1 {
			return fmt.Errorf("feature_stats: feature %q has %d counts for %d edges (want %d)",
				name, len(d.Counts), len(d.Edges), len(d.Edges)+1)
		}
		if d.Total() == 0 {
			return fmt.Errorf("feature_stats: feature %q has zero total count", name)
		}
	}
	return nil
}
