package bundle

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestFeatureStatsRoundTrip: feature_stats survives both codecs exactly —
// JSON Encode/Parse, binary EncodeBinary/ParseBinary, and format-sniffing
// ParseAny.
func TestFeatureStatsRoundTrip(t *testing.T) {
	b, err := Load("testdata/trained_small.json")
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats == nil {
		t.Fatal("trained fixture lost its feature_stats")
	}
	if b.Stats.Source != "train/sweep" {
		t.Errorf("source = %q", b.Stats.Source)
	}
	if len(b.Stats.Features) != len(CanonicalFeatures) {
		t.Errorf("stats cover %d features, want all %d canonical", len(b.Stats.Features), len(CanonicalFeatures))
	}
	for _, name := range b.Stats.FeatureNames() {
		d := b.Stats.Features[name]
		if d.Total() == 0 || len(d.Counts) != len(d.Edges)+1 {
			t.Errorf("%s dist malformed: %d edges, %d counts, total %d", name, len(d.Edges), len(d.Counts), d.Total())
		}
	}

	jsonBytes, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Parse(jsonBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON.Stats, b.Stats) {
		t.Error("feature_stats changed across JSON round-trip")
	}

	bin, err := b.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ParseBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin.Stats, b.Stats) {
		t.Error("feature_stats changed across binary round-trip")
	}

	for _, raw := range [][]byte{jsonBytes, bin} {
		any, err := ParseAny(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(any.Stats, b.Stats) {
			t.Error("feature_stats changed through ParseAny")
		}
	}
}

// TestFeatureStatsAbsenceTolerated: bundles written before the field
// existed parse with nil Stats and keep it nil across both codecs.
func TestFeatureStatsAbsenceTolerated(t *testing.T) {
	b, err := Parse([]byte(minimalBundle))
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats != nil {
		t.Fatalf("legacy bundle grew stats: %+v", b.Stats)
	}
	jsonBytes, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(jsonBytes), "feature_stats") {
		t.Error("Encode emits a feature_stats key for a stats-less bundle")
	}
	bin, err := b.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ParseBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.Stats != nil {
		t.Error("binary round-trip invented feature_stats")
	}
}

func TestFeatureDistBucketOf(t *testing.T) {
	d := FeatureDist{Edges: []float64{1, 4, 16}, Counts: []uint64{1, 1, 1, 1}}
	for _, tc := range []struct {
		v    float64
		want int
	}{
		{0, 0}, {1, 0}, {1.5, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {math.Inf(1), 3}, {math.NaN(), 3},
	} {
		if got := d.BucketOf(tc.v); got != tc.want {
			t.Errorf("BucketOf(%v) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestValidateFeatureStatsRejections(t *testing.T) {
	good := func() *FeatureStats {
		return &FeatureStats{
			Source: "t",
			Features: map[string]FeatureDist{
				"num_nodes": {Edges: []float64{1, 2}, Counts: []uint64{1, 2, 3}},
			},
		}
	}
	if err := validateFeatureStats(good()); err != nil {
		t.Fatalf("valid stats rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*FeatureStats)
		wantSub string
	}{
		{"empty table", func(s *FeatureStats) { s.Features = nil }, "empty features table"},
		{"non-canonical feature", func(s *FeatureStats) {
			s.Features["bogus_feature"] = s.Features["num_nodes"]
		}, "not a canonical feature"},
		{"no edges", func(s *FeatureStats) {
			s.Features["num_nodes"] = FeatureDist{Counts: []uint64{1}}
		}, "no bin edges"},
		{"nan edge", func(s *FeatureStats) {
			s.Features["num_nodes"] = FeatureDist{Edges: []float64{1, math.NaN()}, Counts: []uint64{1, 1, 1}}
		}, "not finite"},
		{"inf edge", func(s *FeatureStats) {
			s.Features["num_nodes"] = FeatureDist{Edges: []float64{math.Inf(-1), 1}, Counts: []uint64{1, 1, 1}}
		}, "not finite"},
		{"descending edges", func(s *FeatureStats) {
			s.Features["num_nodes"] = FeatureDist{Edges: []float64{2, 1}, Counts: []uint64{1, 1, 1}}
		}, "strictly ascending"},
		{"duplicate edges", func(s *FeatureStats) {
			s.Features["num_nodes"] = FeatureDist{Edges: []float64{1, 1}, Counts: []uint64{1, 1, 1}}
		}, "strictly ascending"},
		{"count length mismatch", func(s *FeatureStats) {
			s.Features["num_nodes"] = FeatureDist{Edges: []float64{1, 2}, Counts: []uint64{1, 2}}
		}, "counts for"},
		{"zero total", func(s *FeatureStats) {
			s.Features["num_nodes"] = FeatureDist{Edges: []float64{1}, Counts: []uint64{0, 0}}
		}, "zero total"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := good()
			tc.mutate(s)
			err := validateFeatureStats(s)
			if err == nil {
				t.Fatal("invalid stats accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}
