package bundle

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

const trainedFixture = "testdata/trained_small.json"

// TestTrainedFixtureLoadsAndRoundTrips pins the committed trainer-emitted
// bundle: it must keep parsing, validating, and re-encoding byte-for-byte
// as the format evolves, so trained artifacts written by older releases
// stay loadable.
func TestTrainedFixtureLoadsAndRoundTrips(t *testing.T) {
	b, err := Load(trainedFixture)
	if err != nil {
		t.Fatalf("Load(%s): %v", trainedFixture, err)
	}
	if b.Version != SupportedVersion {
		t.Errorf("version %q, want %q", b.Version, SupportedVersion)
	}
	for _, name := range []string{"allgather", "broadcast"} {
		c, ok := b.Collectives[name]
		if !ok {
			t.Fatalf("fixture missing collective %q", name)
		}
		if c.CVAUC <= 0 || c.CVAUC > 1 {
			t.Errorf("%s: OOB/cv score %v outside (0,1]", name, c.CVAUC)
		}
	}
	if len(b.TrainedOn) != 3 {
		t.Errorf("trained_on %v, want the three perfmodel systems", b.TrainedOn)
	}
	raw, err := os.ReadFile(trainedFixture)
	if err != nil {
		t.Fatal(err)
	}
	again, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(raw, again) {
		t.Fatal("committed trained fixture is not in canonical encoding (Load -> Encode changed bytes)")
	}
}

// TestTrainedFixtureFuzzSeedInSync keeps the FuzzParse seed-corpus copy of
// the trained fixture identical to the fixture itself.
func TestTrainedFixtureFuzzSeedInSync(t *testing.T) {
	corpus, err := os.ReadFile("testdata/fuzz/FuzzParse/seed_trained_small")
	if err != nil {
		t.Fatal(err)
	}
	s := string(corpus)
	const pre = "go test fuzz v1\n[]byte("
	if !strings.HasPrefix(s, pre) {
		t.Fatalf("corpus entry does not start with %q", pre)
	}
	quoted := strings.TrimSuffix(strings.TrimPrefix(s, pre), ")\n")
	decoded, err := strconv.Unquote(quoted)
	if err != nil {
		t.Fatalf("corpus entry payload does not unquote: %v", err)
	}
	raw, err := os.ReadFile(trainedFixture)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(decoded), raw) {
		t.Fatal("seed_trained_small corpus entry is out of sync with testdata/trained_small.json")
	}
}
