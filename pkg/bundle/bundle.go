// Package bundle loads and validates the pre-trained PML-MPI model bundle
// (.pmlbench/bundle_all_full.json): one random forest per collective plus
// feature metadata and provenance (systems the model was trained on).
// Loading is defensive — truncated or malformed files yield descriptive
// errors, never panics — because the bundle is the single artifact the
// whole selector depends on.
package bundle

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/forest/compiled"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// SupportedVersion is the bundle schema version this loader understands.
const SupportedVersion = "pml-mpi/1"

// CanonicalFeatures is the full feature space, in index order, that bundle
// feature indices refer to. Each collective's forest uses a subset.
var CanonicalFeatures = []string{
	"num_nodes",       // 0
	"ppn",             // 1
	"log2_msg_size",   // 2
	"max_clock_ghz",   // 3
	"l3_cache_mib",    // 4
	"mem_bw_gbs",      // 5
	"core_count",      // 6
	"thread_count",    // 7
	"sockets",         // 8
	"numa_nodes",      // 9
	"pcie_lanes",      // 10
	"pcie_gen",        // 11
	"link_speed_gbps", // 12
	"link_width",      // 13
}

// Importance is one entry of a collective's full feature-importance table.
type Importance struct {
	Name       string  `json:"name"`
	Index      int     `json:"index"`
	Importance float64 `json:"importance"`
}

// Collective is the per-collective model: the trained forest and the
// feature subset it consumes.
type Collective struct {
	Name           string         `json:"-"`
	Op             int            `json:"op"`
	FullImportance []Importance   `json:"full_importance"`
	Features       []int          `json:"features"`
	FeatureNames   []string       `json:"feature_names"`
	Forest         *forest.Forest `json:"forest"`
	CVAUC          float64        `json:"cv_auc"`

	// compiled is the SoA evaluator derived from Forest, built at most once
	// (eagerly by Parse/ParseBinary so load-time pays the cost, lazily via
	// Compiled for bundles assembled in memory). Unexported so JSON
	// round-trips ignore it.
	compileOnce sync.Once
	compiled    *compiled.Forest
	compileErr  error
}

// Compiled returns the collective's compiled SoA forest, building it on
// first use. It returns nil if compilation failed (callers fall back to the
// pointer evaluator); Parse and ParseBinary surface that failure at load
// time instead.
func (c *Collective) Compiled() *compiled.Forest {
	c.compileOnce.Do(func() {
		c.compiled, c.compileErr = compiled.Compile(c.Forest, len(c.Features))
	})
	return c.compiled
}

// Vector orders the named feature map into the vector layout the forest
// expects. Every feature in FeatureNames must be present.
func (c *Collective) Vector(features map[string]float64) ([]float64, error) {
	x := make([]float64, len(c.FeatureNames))
	if err := c.VectorInto(x, features); err != nil {
		return nil, err
	}
	return x, nil
}

// VectorInto is Vector without the allocation: it fills x, which must have
// exactly len(FeatureNames) entries, for hot paths that reuse a buffer.
func (c *Collective) VectorInto(x []float64, features map[string]float64) error {
	if len(x) != len(c.FeatureNames) {
		return fmt.Errorf("collective %q: vector buffer has %d entries, need %d",
			c.Name, len(x), len(c.FeatureNames))
	}
	for i, name := range c.FeatureNames {
		v, ok := features[name]
		if !ok {
			return fmt.Errorf("collective %q: missing feature %q (need %v)",
				c.Name, name, c.FeatureNames)
		}
		x[i] = v
	}
	return nil
}

// Bundle is a fully loaded and validated model bundle.
type Bundle struct {
	Version     string
	TrainedOn   []string
	Collectives map[string]*Collective
	// Stats is the optional training-distribution snapshot (reserved
	// "feature_stats" key). Nil for bundles written before it existed.
	Stats     *FeatureStats
	Path      string
	SizeBytes int64
	LoadedAt  time.Time
	// Hash is the hex SHA-256 of the raw bundle bytes. The registry keys
	// generation identity and change detection on it.
	Hash string
}

// ShortHash returns the first 12 hex digits of Hash for logs and UIs, or
// "" when the bundle was built in memory without raw bytes.
func (b *Bundle) ShortHash() string {
	if len(b.Hash) < 12 {
		return b.Hash
	}
	return b.Hash[:12]
}

// Collective returns the model for the named collective.
func (b *Bundle) Collective(name string) (*Collective, bool) {
	c, ok := b.Collectives[name]
	return c, ok
}

// CollectiveNames returns the sorted names of all collectives in the bundle.
func (b *Bundle) CollectiveNames() []string {
	names := make([]string, 0, len(b.Collectives))
	for n := range b.Collectives {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Load reads, parses, and validates a bundle file in either encoding
// (JSON or the compact binary format, sniffed by magic).
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read bundle %s: %w", path, err)
	}
	b, err := ParseAny(data)
	if err != nil {
		return nil, fmt.Errorf("bundle %s: %w", path, err)
	}
	b.Path = path
	b.SizeBytes = int64(len(data))
	return b, nil
}

// LoadObserved wraps Load in a bundle.load tracing span and emits a
// structured log record with the outcome.
func LoadObserved(ctx context.Context, o *obs.Obs, path string) (*Bundle, error) {
	ctx, span := o.Tracer.Start(ctx, "bundle.load")
	span.SetAttr("path", path)
	b, err := Load(path)
	d := span.End()
	log := o.Logger.WithCtx(ctx)
	if err != nil {
		log.Error("bundle load failed", "path", path, "error", err.Error())
		return nil, err
	}
	log.Info("bundle loaded",
		"path", path,
		"hash", b.ShortHash(),
		"version", b.Version,
		"collectives", b.CollectiveNames(),
		"trained_on_systems", len(b.TrainedOn),
		"size_bytes", b.SizeBytes,
		"duration_ms", float64(d.Microseconds())/1000.0)
	return b, nil
}

// Parse decodes and validates bundle JSON. Truncated or malformed input
// returns a descriptive error.
func Parse(data []byte) (*Bundle, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("parse: bundle file is empty")
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("parse: malformed or truncated bundle JSON (%d bytes): %w", len(data), err)
	}

	b := &Bundle{
		Collectives: make(map[string]*Collective),
		LoadedAt:    time.Now(),
		Hash:        fmt.Sprintf("%x", sha256.Sum256(data)),
		SizeBytes:   int64(len(data)),
	}

	verRaw, ok := raw["version"]
	if !ok {
		return nil, fmt.Errorf("parse: bundle missing \"version\" field")
	}
	if err := json.Unmarshal(verRaw, &b.Version); err != nil {
		return nil, fmt.Errorf("parse: bad \"version\" field: %w", err)
	}
	if b.Version != SupportedVersion {
		return nil, fmt.Errorf("unsupported bundle version %q (this build supports %q)", b.Version, SupportedVersion)
	}
	if toRaw, ok := raw["trained_on"]; ok {
		if err := json.Unmarshal(toRaw, &b.TrainedOn); err != nil {
			return nil, fmt.Errorf("parse: bad \"trained_on\" field: %w", err)
		}
	}
	if fsRaw, ok := raw["feature_stats"]; ok {
		var fs FeatureStats
		if err := json.Unmarshal(fsRaw, &fs); err != nil {
			return nil, fmt.Errorf("parse: bad \"feature_stats\" field: %w", err)
		}
		if err := validateFeatureStats(&fs); err != nil {
			return nil, fmt.Errorf("validate: %w", err)
		}
		b.Stats = &fs
	}

	for key, msg := range raw {
		if key == "version" || key == "trained_on" || key == "feature_stats" {
			continue
		}
		c := &Collective{Name: key}
		if err := json.Unmarshal(msg, c); err != nil {
			return nil, fmt.Errorf("parse: collective %q: %w", key, err)
		}
		if err := validateCollective(c); err != nil {
			return nil, fmt.Errorf("validate: collective %q: %w", key, err)
		}
		if c.Compiled() == nil {
			return nil, fmt.Errorf("validate: collective %q: %w", key, c.compileErr)
		}
		b.Collectives[key] = c
	}
	if len(b.Collectives) == 0 {
		return nil, fmt.Errorf("validate: bundle contains no collectives")
	}
	return b, nil
}

func validateCollective(c *Collective) error {
	if len(c.Features) == 0 {
		return fmt.Errorf("empty feature subset")
	}
	if len(c.Features) != len(c.FeatureNames) {
		return fmt.Errorf("features (%d) and feature_names (%d) length mismatch",
			len(c.Features), len(c.FeatureNames))
	}
	for i, idx := range c.Features {
		if idx < 0 || idx >= len(CanonicalFeatures) {
			return fmt.Errorf("feature index %d out of canonical range [0,%d)", idx, len(CanonicalFeatures))
		}
		if want := CanonicalFeatures[idx]; c.FeatureNames[i] != want {
			return fmt.Errorf("feature_names[%d]=%q does not match canonical feature %q at index %d",
				i, c.FeatureNames[i], want, idx)
		}
	}
	if c.Forest == nil {
		return fmt.Errorf("missing forest")
	}
	if err := c.Forest.Validate(len(c.Features)); err != nil {
		return fmt.Errorf("forest: %w", err)
	}
	return nil
}
