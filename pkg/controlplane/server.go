package controlplane

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/buildinfo"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// Server is the control plane's HTTP surface:
//
//	GET  /v1/bundles/{hash}     bundle bytes (ETag = "<hash>", 304 on match)
//	POST /v1/bundles            upload a bundle (body = JSON or PMLB bytes)
//	GET  /v1/manifest           desired generation for ?ring= or ?replica=
//	POST /v1/heartbeat          replica heartbeat (JSON Heartbeat)
//	POST /v1/rollout/start      {"hash": "..."} begin canary rollout
//	POST /v1/rollout/promote    force-advance canary→fleet→done
//	POST /v1/rollout/rollback   withdraw the candidate
//	GET  /debug/rollout         full rollout snapshot
//	GET  /healthz               control-plane health (role "controlplane")
//	GET  /metrics               Prometheus text metrics
//
// Bundle and manifest GETs honor If-None-Match, so a steady-state fleet
// polls with body-less 304s.
type Server struct {
	store   *Store
	rollout *Rollout
	o       *obs.Obs
	started time.Time
	mux     *http.ServeMux
	poll    time.Duration

	httpRequests *obs.Counter
	httpLatency  *obs.Histogram
	heartbeats   *obs.Counter
	notModified  *obs.Counter
	bundleBytes  *obs.Counter
	replicaGauge *obs.Gauge
	stateGauge   *obs.Gauge
}

// ServerConfig tunes the control-plane HTTP surface.
type ServerConfig struct {
	// PollInterval is the advisory replica poll interval surfaced in
	// every manifest. Default 2s.
	PollInterval time.Duration
}

// NewServer wires the HTTP surface over a store and rollout controller.
func NewServer(store *Store, rollout *Rollout, o *obs.Obs, cfg ServerConfig) *Server {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	s := &Server{
		store:   store,
		rollout: rollout,
		o:       o,
		started: time.Now(),
		mux:     http.NewServeMux(),
		poll:    cfg.PollInterval,
		httpRequests: o.Registry.Counter("pmlmpi_ctl_http_requests_total",
			"Control-plane HTTP requests served, by path and status code.", "path", "code"),
		httpLatency: o.Registry.Histogram("pmlmpi_ctl_http_request_duration_seconds",
			"Control-plane HTTP request handling latency.", obs.LatencyBuckets, "path"),
		heartbeats: o.Registry.Counter("pmlmpi_ctl_heartbeats_total",
			"Replica heartbeats ingested, by replica id.", "replica"),
		notModified: o.Registry.Counter("pmlmpi_ctl_not_modified_total",
			"Conditional GETs answered with a body-less 304, by path.", "path"),
		bundleBytes: o.Registry.Counter("pmlmpi_ctl_bundle_bytes_total",
			"Bundle payload bytes served from the content-addressed store."),
		replicaGauge: o.Registry.Gauge("pmlmpi_ctl_replicas",
			"Replicas known to the rollout controller."),
		stateGauge: o.Registry.Gauge("pmlmpi_ctl_rollout_state",
			"Rollout state as a one-hot gauge.", "state"),
	}
	buildinfo.Register(o.Registry)
	s.route("/v1/bundles/", http.MethodGet, "GET /v1/bundles/{hash} returns the stored bundle bytes", s.handleBundleGet)
	s.route("/v1/bundles", http.MethodPost, "POST raw bundle bytes (JSON or PMLB) to store them content-addressed", s.handleBundlePut)
	s.route("/v1/manifest", http.MethodGet, "GET returns the desired generation for ?ring= / ?replica=", s.handleManifest)
	s.route("/v1/heartbeat", http.MethodPost, "POST a JSON heartbeat: {\"replica_id\": ..., \"active_hash\": ..., ...}", s.handleHeartbeat)
	s.route("/v1/rollout/start", http.MethodPost, "POST a JSON body: {\"hash\": \"...\"} starts a canary rollout", s.handleRolloutStart)
	s.route("/v1/rollout/promote", http.MethodPost, "POST with an empty body force-advances the rollout", s.handleRolloutPromote)
	s.route("/v1/rollout/rollback", http.MethodPost, "POST with an empty body withdraws the candidate", s.handleRolloutRollback)
	s.route("/debug/rollout", http.MethodGet, "GET returns the rollout controller snapshot", s.handleRolloutDebug)
	s.route("/healthz", http.MethodGet, "GET returns control-plane health", s.handleHealthz)
	s.route("/metrics", http.MethodGet, "GET returns Prometheus text metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// route registers one method-enforced, instrumented endpoint (same
// contract as pkg/admin: other methods get 405 + Allow + usage hint, HEAD
// rides along with GET).
func (s *Server) route(path, method, usage string, h http.HandlerFunc) {
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		if r.Method != method && !(method == http.MethodGet && r.Method == http.MethodHead) {
			w.Header().Set("Allow", method)
			writeError(sr, http.StatusMethodNotAllowed, usage)
		} else {
			h(sr, r)
		}
		s.httpRequests.Inc(path, strconv.Itoa(sr.code))
		s.httpLatency.Observe(time.Since(start).Seconds(), path)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// etagMatch reports whether an If-None-Match header matches etag
// (strong comparison; "*" matches anything).
func etagMatch(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, part := range strings.Split(inm, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// handleBundleGet serves bundle bytes by content hash. The ETag is the
// quoted hash itself — content-addressed data never changes under its
// key, so If-None-Match always short-circuits to 304 once a replica
// holds the bytes.
func (s *Server) handleBundleGet(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/v1/bundles/")
	if !ValidHash(hash) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad bundle hash %q: want 64 hex chars", hash))
		return
	}
	etag := `"` + hash + `"`
	if etagMatch(r, etag) {
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		s.notModified.Inc("/v1/bundles/")
		return
	}
	data, ok := s.store.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no bundle %s in store", short(hash)))
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	if r.Method != http.MethodHead {
		w.Write(data)
		s.bundleBytes.Add(float64(len(data)))
	}
}

// handleBundlePut stores an uploaded bundle. ?stable=true additionally
// seeds it as the fleet-wide stable hash (first boot / bootstrap);
// ?rollout=true starts a staged rollout of it in the same call.
func (s *Server) handleBundlePut(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	hash, existed, err := s.store.Put(data)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if r.URL.Query().Get("stable") == "true" {
		if err := s.rollout.SetStable(hash); err != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
	}
	if r.URL.Query().Get("rollout") == "true" {
		if err := s.rollout.Start(hash); err != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"hash":       hash,
		"existed":    existed,
		"generation": s.store.Seq(hash),
		"bytes":      len(data),
	})
}

// handleManifest serves the desired generation for one ring. ?replica=
// resolves the ring from the controller's assignment (what agents use);
// ?ring= asks for a ring explicitly; neither defaults to the fleet ring.
// The ETag folds the controller revision and the resolved ring, so any
// state or membership change invalidates conditional polls.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	ring := r.URL.Query().Get("ring")
	if id := r.URL.Query().Get("replica"); id != "" {
		ring = s.rollout.RingOf(id)
	}
	m := s.rollout.Manifest(ring)
	m.PollSeconds = s.poll.Seconds()
	etag := fmt.Sprintf(`"m%d-%s"`, s.rollout.Rev(), m.Ring)
	w.Header().Set("ETag", etag)
	if etagMatch(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		s.notModified.Inc("/v1/manifest")
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb Heartbeat
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&hb); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if hb.ReplicaID == "" {
		writeError(w, http.StatusBadRequest, "missing \"replica_id\"")
		return
	}
	ring, state := s.rollout.Observe(hb)
	s.heartbeats.Inc(hb.ReplicaID)
	writeJSON(w, http.StatusOK, HeartbeatAck{Ring: ring, RolloutState: state})
}

// rolloutStartRequest is the POST /v1/rollout/start body.
type rolloutStartRequest struct {
	Hash string `json:"hash"`
}

func (s *Server) handleRolloutStart(w http.ResponseWriter, r *http.Request) {
	var req rolloutStartRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if !ValidHash(req.Hash) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad \"hash\" %q: want 64 hex chars", req.Hash))
		return
	}
	if err := s.rollout.Start(req.Hash); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.rollout.Snapshot())
}

func (s *Server) handleRolloutPromote(w http.ResponseWriter, r *http.Request) {
	if err := s.rollout.Promote(); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.rollout.Snapshot())
}

func (s *Server) handleRolloutRollback(w http.ResponseWriter, r *http.Request) {
	if err := s.rollout.Rollback("operator requested rollback"); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.rollout.Snapshot())
}

func (s *Server) handleRolloutDebug(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.rollout.Snapshot())
}

// ctlHealth is the control plane's /healthz body. Role and Desired mirror
// the fleet-wide health schema (satellite: every node reports its role
// and the generation it believes is desired).
type ctlHealth struct {
	Status        string `json:"status"`
	Role          string `json:"role"`
	ServerVersion string `json:"server_version"`
	GoVersion     string `json:"go_version"`
	Desired       struct {
		Hash       string `json:"hash,omitempty"`
		Generation uint64 `json:"generation,omitempty"`
		Ring       string `json:"ring"`
		State      string `json:"rollout_state"`
	} `json:"desired"`
	StableHash    string  `json:"stable_hash,omitempty"`
	Bundles       int     `json:"bundles"`
	Replicas      int     `json:"replicas"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.rollout.Snapshot()
	m := s.rollout.Manifest(RingFleet)
	h := ctlHealth{
		Status:        "ok",
		Role:          "controlplane",
		ServerVersion: buildinfo.Resolve(),
		GoVersion:     buildinfo.GoVersion(),
		StableHash:    snap.StableHash,
		Bundles:       snap.BundleCount,
		Replicas:      len(snap.Replicas),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	h.Desired.Hash = m.DesiredHash
	h.Desired.Generation = m.DesiredGeneration
	h.Desired.Ring = m.Ring
	h.Desired.State = m.RolloutState
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.rollout.Snapshot()
	s.replicaGauge.Set(float64(len(snap.Replicas)))
	for _, st := range []string{StateIdle, StateCanary, StateFleet, StateDone, StateRolledBack} {
		v := 0.0
		if st == snap.State {
			v = 1
		}
		s.stateGauge.Set(v, st)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.o.Registry.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
