package controlplane

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// RolloutConfig tunes the staged-rollout controller.
type RolloutConfig struct {
	// CanaryPercent is the share of replicas (by count, rounded up, at
	// least one) assigned to the canary ring. Default 25.
	CanaryPercent float64
	// MinAgreement is the minimum shadow-agreement rate a candidate must
	// hold once MinShadowSamples of evidence exist; below it the rollout
	// auto-rolls back. Default 0.9.
	MinAgreement float64
	// MinShadowSamples is how many shadow comparisons a heartbeat must
	// carry before its agreement rate is trusted as evidence. Default 20.
	MinShadowSamples uint64
	// MaxP99Ratio rolls back when a replica serving the candidate reports
	// a select p99 more than this multiple of its pre-rollout baseline.
	// 0 disables the latency gate.
	MaxP99Ratio float64
	// ReplicaTTL is how long after its last heartbeat a replica still
	// counts toward promotion gates; staler replicas are ignored (they
	// are listed as stale on /debug/rollout but cannot wedge a rollout).
	// Default 60s.
	ReplicaTTL time.Duration
	// Now overrides the clock for tests.
	Now func() time.Time
}

func (c *RolloutConfig) fill() {
	if c.CanaryPercent <= 0 || c.CanaryPercent > 100 {
		c.CanaryPercent = 25
	}
	if c.MinAgreement <= 0 || c.MinAgreement > 1 {
		c.MinAgreement = 0.9
	}
	if c.MinShadowSamples == 0 {
		c.MinShadowSamples = 20
	}
	if c.ReplicaTTL <= 0 {
		c.ReplicaTTL = 60 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// replicaState is the controller's view of one replica.
type replicaState struct {
	hb          Heartbeat
	lastSeen    time.Time
	baselineP99 float64 // select p99 at rollout start; 0 = unknown
}

// Rollout is the staged-rollout state machine. All state transitions are
// driven by Observe (heartbeats) and the explicit Start/Promote/Rollback
// verbs; reads (Manifest, Snapshot) are cheap and lock-shared.
type Rollout struct {
	cfg   RolloutConfig
	store *Store

	mu        sync.RWMutex
	rev       uint64 // bumped on any externally visible change (ETag)
	state     string
	stable    string // hash
	candidate string // hash; "" unless a rollout is in flight or rolled back
	reason    string // why the last rollback happened
	started   time.Time
	replicas  map[string]*replicaState
	rings     map[string]string // replica id -> ring
}

// NewRollout returns an idle controller over store.
func NewRollout(store *Store, cfg RolloutConfig) *Rollout {
	cfg.fill()
	return &Rollout{
		cfg:      cfg,
		store:    store,
		state:    StateIdle,
		replicas: make(map[string]*replicaState),
		rings:    make(map[string]string),
	}
}

// Rev returns the current revision counter; it changes whenever a
// manifest any ring sees could have changed (state, hashes, membership).
func (r *Rollout) Rev() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rev
}

// SetStable seeds or force-sets the fleet-wide stable hash. The hash must
// be present in the store. Only allowed while no rollout is in flight.
func (r *Rollout) SetStable(hash string) error {
	if _, ok := r.store.Get(hash); !ok {
		return fmt.Errorf("controlplane: stable hash %s not in store", short(hash))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateCanary || r.state == StateFleet {
		return fmt.Errorf("controlplane: rollout in flight (%s); rollback first", r.state)
	}
	if r.stable != hash {
		r.stable = hash
		r.rev++
	}
	return nil
}

// Start begins a staged rollout of hash: the canary ring's manifest
// switches to it while the fleet ring keeps the stable hash. Each
// replica's current select p99 is recorded as its latency baseline.
func (r *Rollout) Start(hash string) error {
	if _, ok := r.store.Get(hash); !ok {
		return fmt.Errorf("controlplane: candidate hash %s not in store", short(hash))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state == StateCanary || r.state == StateFleet {
		return fmt.Errorf("controlplane: rollout of %s already in flight (%s)", short(r.candidate), r.state)
	}
	if hash == r.stable {
		return fmt.Errorf("controlplane: %s is already the stable hash", short(hash))
	}
	r.candidate = hash
	r.state = StateCanary
	r.reason = ""
	r.started = r.cfg.Now()
	for _, st := range r.replicas {
		st.baselineP99 = st.hb.SelectP99US
	}
	r.rev++
	return nil
}

// Promote force-advances the rollout: canary → fleet, fleet → done. It is
// the manual override for the heartbeat-driven automatic promotion.
func (r *Rollout) Promote() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.state {
	case StateCanary:
		r.state = StateFleet
	case StateFleet:
		r.finishLocked()
	default:
		return fmt.Errorf("controlplane: nothing to promote in state %s", r.state)
	}
	r.rev++
	return nil
}

// Rollback withdraws the in-flight candidate: every ring's manifest
// reverts to the stable hash.
func (r *Rollout) Rollback(reason string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateCanary && r.state != StateFleet {
		return fmt.Errorf("controlplane: nothing to roll back in state %s", r.state)
	}
	r.rollbackLocked(reason)
	return nil
}

func (r *Rollout) rollbackLocked(reason string) {
	r.state = StateRolledBack
	r.reason = reason
	// The rollout settled: fold replicas that joined mid-flight (parked in
	// the fleet ring) into the normal deterministic split.
	r.assignRingsLocked()
	r.rev++
}

func (r *Rollout) finishLocked() {
	r.stable = r.candidate
	r.candidate = ""
	r.state = StateDone
	r.assignRingsLocked()
}

// Observe ingests one heartbeat: registers/refreshes the replica,
// recomputes ring assignment on membership change (frozen while a
// rollout is in flight — new replicas park in the fleet ring until it
// settles), applies the rollback gates, and auto-advances the state
// machine when every in-scope replica has confirmed the candidate. It
// returns the replica's authoritative ring assignment.
func (r *Rollout) Observe(hb Heartbeat) (ring string, state string) {
	now := r.cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()

	st, known := r.replicas[hb.ReplicaID]
	if !known {
		st = &replicaState{}
		r.replicas[hb.ReplicaID] = st
		if r.state == StateCanary || r.state == StateFleet {
			// Ring assignments are frozen while a rollout is in flight: a
			// lexicographic re-split could pull an existing fleet replica
			// into the canary ring mid-stage (it would immediately start
			// pulling the in-flight candidate) or demote a canary that
			// already promoted it (reverting to stable and churning the
			// promotion gates). Newly joined replicas park in the fleet
			// ring; the full re-split happens when the rollout settles.
			r.rings[hb.ReplicaID] = RingFleet
		} else {
			r.assignRingsLocked()
		}
		r.rev++
	}
	st.hb = hb
	st.lastSeen = now

	r.evaluateLocked(now)
	return r.rings[hb.ReplicaID], r.state
}

// assignRingsLocked deterministically splits the replica set: ids sort
// lexicographically and the first ceil(N*CanaryPercent/100) (at least
// one) form the canary ring. Rank-based (not hash-based) so small fleets
// get an exact, predictable split.
func (r *Rollout) assignRingsLocked() {
	ids := make([]string, 0, len(r.replicas))
	for id := range r.replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	n := len(ids)
	canary := int(math.Ceil(float64(n) * r.cfg.CanaryPercent / 100))
	if canary < 1 && n > 0 {
		canary = 1
	}
	r.rings = make(map[string]string, n)
	for i, id := range ids {
		if i < canary {
			r.rings[id] = RingCanary
		} else {
			r.rings[id] = RingFleet
		}
	}
}

// evaluateLocked applies the rollback gates and automatic promotions
// against the current replica set. Replicas unseen within ReplicaTTL are
// out of scope: they can neither block nor confirm a promotion.
func (r *Rollout) evaluateLocked(now time.Time) {
	if r.state != StateCanary && r.state != StateFleet {
		return
	}
	cutoff := now.Add(-r.cfg.ReplicaTTL)

	// Gates first: any live replica with evidence against the candidate
	// rolls the whole fleet back.
	for id, st := range r.replicas {
		if st.lastSeen.Before(cutoff) {
			continue
		}
		hb := st.hb
		if hb.CandidateHash == r.candidate && hb.CandidateStatus == CandidateRejected {
			r.rollbackLocked(fmt.Sprintf("replica %s rejected candidate (shadow agreement %.3f over %d samples)",
				id, hb.CandidateAgreement, hb.CandidateSamples))
			return
		}
		if hb.CandidateHash == r.candidate &&
			hb.CandidateSamples >= r.cfg.MinShadowSamples &&
			hb.CandidateAgreement < r.cfg.MinAgreement {
			r.rollbackLocked(fmt.Sprintf("replica %s shadow agreement %.3f below %.3f (%d samples)",
				id, hb.CandidateAgreement, r.cfg.MinAgreement, hb.CandidateSamples))
			return
		}
		if hb.ActiveHash == r.candidate && hb.DriftStatus == "alert" {
			r.rollbackLocked(fmt.Sprintf("replica %s drift alert while serving candidate", id))
			return
		}
		if r.cfg.MaxP99Ratio > 0 && hb.ActiveHash == r.candidate &&
			st.baselineP99 > 0 && hb.SelectP99US > st.baselineP99*r.cfg.MaxP99Ratio {
			r.rollbackLocked(fmt.Sprintf("replica %s select p99 %.0fus exceeds %.1fx baseline %.0fus",
				id, hb.SelectP99US, r.cfg.MaxP99Ratio, st.baselineP99))
			return
		}
	}

	// Promotion: every live in-scope replica must have confirmed the
	// candidate as its active hash.
	scope := RingCanary
	if r.state == StateFleet {
		scope = "" // all rings
	}
	confirmed, inScope := 0, 0
	for id, st := range r.replicas {
		if st.lastSeen.Before(cutoff) {
			continue
		}
		if scope != "" && r.rings[id] != scope {
			continue
		}
		inScope++
		if st.hb.ActiveHash == r.candidate {
			confirmed++
		}
	}
	if inScope == 0 || confirmed < inScope {
		return
	}
	if r.state == StateCanary {
		r.state = StateFleet
	} else {
		r.finishLocked()
	}
	r.rev++
}

// Manifest returns the desired serving state for ring. Unknown or empty
// ring names resolve to the fleet ring (the conservative view).
func (r *Rollout) Manifest(ring string) Manifest {
	if ring != RingCanary {
		ring = RingFleet
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	desired := r.stable
	switch r.state {
	case StateCanary:
		if ring == RingCanary {
			desired = r.candidate
		}
	case StateFleet:
		desired = r.candidate
	}
	return Manifest{
		Ring:              ring,
		DesiredHash:       desired,
		DesiredGeneration: r.store.Seq(desired),
		StableHash:        r.stable,
		RolloutState:      r.state,
	}
}

// RingOf returns the ring assigned to a replica id (fleet for unknown
// ids, matching Manifest's conservative default).
func (r *Rollout) RingOf(id string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if ring, ok := r.rings[id]; ok {
		return ring
	}
	return RingFleet
}

// ReplicaInfo is one replica's row in the rollout snapshot.
type ReplicaInfo struct {
	ReplicaID   string    `json:"replica_id"`
	Ring        string    `json:"ring"`
	Addr        string    `json:"addr,omitempty"`
	Stale       bool      `json:"stale"`
	LastSeen    time.Time `json:"last_seen"`
	Heartbeat   Heartbeat `json:"heartbeat"`
	BaselineP99 float64   `json:"baseline_p99_us,omitempty"`
}

// Snapshot is the /debug/rollout payload.
type Snapshot struct {
	State          string        `json:"state"`
	StableHash     string        `json:"stable_hash"`
	CandidateHash  string        `json:"candidate_hash,omitempty"`
	RollbackReason string        `json:"rollback_reason,omitempty"`
	StartedAt      time.Time     `json:"started_at,omitempty"`
	Rev            uint64        `json:"rev"`
	BundleCount    int           `json:"bundle_count"`
	Replicas       []ReplicaInfo `json:"replicas"`
	Config         struct {
		CanaryPercent    float64 `json:"canary_percent"`
		MinAgreement     float64 `json:"min_agreement"`
		MinShadowSamples uint64  `json:"min_shadow_samples"`
		MaxP99Ratio      float64 `json:"max_p99_ratio,omitempty"`
	} `json:"config"`
}

// Snapshot returns the full controller state for /debug/rollout.
func (r *Rollout) Snapshot() Snapshot {
	now := r.cfg.Now()
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := Snapshot{
		State:          r.state,
		StableHash:     r.stable,
		CandidateHash:  r.candidate,
		RollbackReason: r.reason,
		StartedAt:      r.started,
		Rev:            r.rev,
		BundleCount:    r.store.Len(),
	}
	snap.Config.CanaryPercent = r.cfg.CanaryPercent
	snap.Config.MinAgreement = r.cfg.MinAgreement
	snap.Config.MinShadowSamples = r.cfg.MinShadowSamples
	snap.Config.MaxP99Ratio = r.cfg.MaxP99Ratio
	cutoff := now.Add(-r.cfg.ReplicaTTL)
	ids := make([]string, 0, len(r.replicas))
	for id := range r.replicas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st := r.replicas[id]
		snap.Replicas = append(snap.Replicas, ReplicaInfo{
			ReplicaID:   id,
			Ring:        r.rings[id],
			Addr:        st.hb.Addr,
			Stale:       st.lastSeen.Before(cutoff),
			LastSeen:    st.lastSeen,
			Heartbeat:   st.hb,
			BaselineP99: st.baselineP99,
		})
	}
	return snap
}

func short(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
