package controlplane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

func newTestServer(t *testing.T) (*Server, *Store, *Rollout) {
	t.Helper()
	store, _ := NewStore("")
	ro := NewRollout(store, RolloutConfig{Now: newFakeClock().now})
	srv := NewServer(store, ro, obs.NewForTest(), ServerConfig{PollInterval: time.Second})
	return srv, store, ro
}

func doJSON(t *testing.T, srv http.Handler, method, path string, body []byte, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if out != nil && rr.Code < 300 {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rr.Body.String(), err)
		}
	}
	return rr
}

func TestBundleUploadFetchAndETag(t *testing.T) {
	srv, _, _ := newTestServer(t)
	data := synthBundle(t, 1)

	var up struct {
		Hash       string `json:"hash"`
		Existed    bool   `json:"existed"`
		Generation uint64 `json:"generation"`
	}
	rr := doJSON(t, srv, http.MethodPost, "/v1/bundles", data, &up)
	if rr.Code != http.StatusOK || up.Hash != HashOf(data) || up.Generation != 1 {
		t.Fatalf("upload: code=%d resp=%+v", rr.Code, up)
	}

	// Plain GET returns the bytes with the quoted hash as ETag.
	req := httptest.NewRequest(http.MethodGet, "/v1/bundles/"+up.Hash, nil)
	get := httptest.NewRecorder()
	srv.ServeHTTP(get, req)
	if get.Code != http.StatusOK || !bytes.Equal(get.Body.Bytes(), data) {
		t.Fatalf("fetch: code=%d len=%d want %d bytes", get.Code, get.Body.Len(), len(data))
	}
	etag := get.Header().Get("ETag")
	if etag != `"`+up.Hash+`"` {
		t.Fatalf("ETag = %q, want quoted hash", etag)
	}

	// Conditional GET with the ETag is a body-less 304.
	req = httptest.NewRequest(http.MethodGet, "/v1/bundles/"+up.Hash, nil)
	req.Header.Set("If-None-Match", etag)
	cond := httptest.NewRecorder()
	srv.ServeHTTP(cond, req)
	if cond.Code != http.StatusNotModified || cond.Body.Len() != 0 {
		t.Fatalf("conditional fetch: code=%d bodyLen=%d, want 304 empty", cond.Code, cond.Body.Len())
	}

	// Bad hash and unknown hash.
	if rr := doJSON(t, srv, http.MethodGet, "/v1/bundles/nothex", nil, nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("bad hash: code=%d, want 400", rr.Code)
	}
	missing := strings.Repeat("ab", 32)
	if rr := doJSON(t, srv, http.MethodGet, "/v1/bundles/"+missing, nil, nil); rr.Code != http.StatusNotFound {
		t.Fatalf("unknown hash: code=%d, want 404", rr.Code)
	}
	// Garbage upload is rejected with 422.
	if rr := doJSON(t, srv, http.MethodPost, "/v1/bundles", []byte("junk"), nil); rr.Code != http.StatusUnprocessableEntity {
		t.Fatalf("garbage upload: code=%d, want 422", rr.Code)
	}
}

func TestManifestETagInvalidatesOnStateChange(t *testing.T) {
	srv, _, ro := newTestServer(t)
	stable := synthBundle(t, 1)
	doJSON(t, srv, http.MethodPost, "/v1/bundles?stable=true", stable, nil)

	var m Manifest
	req := httptest.NewRequest(http.MethodGet, "/v1/manifest?ring=fleet", nil)
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	json.Unmarshal(rr.Body.Bytes(), &m)
	if m.DesiredHash != HashOf(stable) || m.RolloutState != StateIdle || m.PollSeconds != 1 {
		t.Fatalf("manifest = %+v", m)
	}
	etag := rr.Header().Get("ETag")
	if etag == "" {
		t.Fatal("manifest missing ETag")
	}

	// Steady-state conditional poll → 304.
	req = httptest.NewRequest(http.MethodGet, "/v1/manifest?ring=fleet", nil)
	req.Header.Set("If-None-Match", etag)
	cond := httptest.NewRecorder()
	srv.ServeHTTP(cond, req)
	if cond.Code != http.StatusNotModified {
		t.Fatalf("steady-state poll: code=%d, want 304", cond.Code)
	}

	// Any rollout-state change invalidates the ETag.
	cand := synthBundle(t, 2)
	doJSON(t, srv, http.MethodPost, "/v1/bundles", cand, nil)
	if err := ro.Start(HashOf(cand)); err != nil {
		t.Fatalf("Start: %v", err)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/manifest?ring=canary", nil)
	req.Header.Set("If-None-Match", etag)
	after := httptest.NewRecorder()
	srv.ServeHTTP(after, req)
	if after.Code != http.StatusOK {
		t.Fatalf("post-change poll: code=%d, want 200", after.Code)
	}
	var m2 Manifest
	json.Unmarshal(after.Body.Bytes(), &m2)
	if m2.DesiredHash != HashOf(cand) || m2.RolloutState != StateCanary {
		t.Fatalf("canary manifest = %+v, want candidate desired", m2)
	}
}

func TestHeartbeatEndpointAcksRingAndState(t *testing.T) {
	srv, _, _ := newTestServer(t)
	doJSON(t, srv, http.MethodPost, "/v1/bundles?stable=true", synthBundle(t, 1), nil)

	hb, _ := json.Marshal(Heartbeat{ReplicaID: "r-a", ActiveHash: "x", CandidateStatus: CandidateNone})
	var ack HeartbeatAck
	rr := doJSON(t, srv, http.MethodPost, "/v1/heartbeat", hb, &ack)
	if rr.Code != http.StatusOK || ack.Ring != RingCanary || ack.RolloutState != StateIdle {
		t.Fatalf("heartbeat ack: code=%d ack=%+v (single replica must be canary)", rr.Code, ack)
	}
	// Missing replica_id is a 400.
	if rr := doJSON(t, srv, http.MethodPost, "/v1/heartbeat", []byte(`{}`), nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("empty heartbeat: code=%d, want 400", rr.Code)
	}
	// The replica now appears on /debug/rollout.
	var snap Snapshot
	doJSON(t, srv, http.MethodGet, "/debug/rollout", nil, &snap)
	if len(snap.Replicas) != 1 || snap.Replicas[0].ReplicaID != "r-a" {
		t.Fatalf("rollout snapshot replicas = %+v", snap.Replicas)
	}
}

func TestRolloutVerbEndpoints(t *testing.T) {
	srv, _, _ := newTestServer(t)
	stable, cand := synthBundle(t, 1), synthBundle(t, 2)
	doJSON(t, srv, http.MethodPost, "/v1/bundles?stable=true", stable, nil)
	doJSON(t, srv, http.MethodPost, "/v1/bundles", cand, nil)

	body, _ := json.Marshal(map[string]string{"hash": HashOf(cand)})
	var snap Snapshot
	if rr := doJSON(t, srv, http.MethodPost, "/v1/rollout/start", body, &snap); rr.Code != http.StatusOK || snap.State != StateCanary {
		t.Fatalf("rollout start: code=%d state=%s", rr.Code, snap.State)
	}
	if rr := doJSON(t, srv, http.MethodPost, "/v1/rollout/promote", nil, &snap); rr.Code != http.StatusOK || snap.State != StateFleet {
		t.Fatalf("promote: code=%d state=%s", rr.Code, snap.State)
	}
	if rr := doJSON(t, srv, http.MethodPost, "/v1/rollout/rollback", nil, &snap); rr.Code != http.StatusOK || snap.State != StateRolledBack {
		t.Fatalf("rollback: code=%d state=%s", rr.Code, snap.State)
	}
	// Verbs in the wrong state answer 409.
	if rr := doJSON(t, srv, http.MethodPost, "/v1/rollout/rollback", nil, nil); rr.Code != http.StatusConflict {
		t.Fatalf("double rollback: code=%d, want 409", rr.Code)
	}
	// Starting a rollout of an unknown hash answers 409 (valid shape, not
	// in store) and of a malformed hash 400.
	body, _ = json.Marshal(map[string]string{"hash": strings.Repeat("cd", 32)})
	if rr := doJSON(t, srv, http.MethodPost, "/v1/rollout/start", body, nil); rr.Code != http.StatusConflict {
		t.Fatalf("start unknown hash: code=%d, want 409", rr.Code)
	}
	if rr := doJSON(t, srv, http.MethodPost, "/v1/rollout/start", []byte(`{"hash":"zz"}`), nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("start bad hash: code=%d, want 400", rr.Code)
	}
}

func TestControlPlaneHealthzAndMethodEnforcement(t *testing.T) {
	srv, _, _ := newTestServer(t)
	doJSON(t, srv, http.MethodPost, "/v1/bundles?stable=true", synthBundle(t, 1), nil)

	var h struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		Desired struct {
			Hash  string `json:"hash"`
			State string `json:"rollout_state"`
		} `json:"desired"`
		Bundles int `json:"bundles"`
	}
	rr := doJSON(t, srv, http.MethodGet, "/healthz", nil, &h)
	if rr.Code != http.StatusOK || h.Role != "controlplane" || h.Bundles != 1 || h.Desired.Hash == "" {
		t.Fatalf("healthz: code=%d body=%+v", rr.Code, h)
	}

	// Wrong method → 405 with Allow header.
	req := httptest.NewRequest(http.MethodDelete, "/v1/manifest", nil)
	mr := httptest.NewRecorder()
	srv.ServeHTTP(mr, req)
	if mr.Code != http.StatusMethodNotAllowed || mr.Header().Get("Allow") != http.MethodGet {
		t.Fatalf("method enforcement: code=%d allow=%q", mr.Code, mr.Header().Get("Allow"))
	}

	// /metrics exposes the ctl families.
	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	met := httptest.NewRecorder()
	srv.ServeHTTP(met, req)
	for _, fam := range []string{"pmlmpi_ctl_http_requests_total", "pmlmpi_ctl_replicas", "pmlmpi_ctl_rollout_state"} {
		if !strings.Contains(met.Body.String(), fam) {
			t.Fatalf("metrics missing family %s", fam)
		}
	}
}
