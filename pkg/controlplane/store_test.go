package controlplane

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

func synthBundle(t *testing.T, seed int64) []byte {
	t.Helper()
	data, err := synth.JSON(synth.Config{Seed: seed})
	if err != nil {
		t.Fatalf("synth bundle: %v", err)
	}
	return data
}

func TestStorePutGetRoundtrip(t *testing.T) {
	s, err := NewStore("")
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	data := synthBundle(t, 1)
	hash, existed, err := s.Put(data)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if existed {
		t.Fatal("first Put reported existed=true")
	}
	if hash != HashOf(data) {
		t.Fatalf("Put hash %s != HashOf %s", hash, HashOf(data))
	}
	if !ValidHash(hash) {
		t.Fatalf("Put produced invalid hash %q", hash)
	}
	got, ok := s.Get(hash)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get returned ok=%v, equal=%v", ok, bytes.Equal(got, data))
	}
	// Idempotent re-upload.
	hash2, existed, err := s.Put(data)
	if err != nil || !existed || hash2 != hash {
		t.Fatalf("re-Put: hash=%s existed=%v err=%v", hash2, existed, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if s.Seq(hash) != 1 {
		t.Fatalf("Seq = %d, want 1", s.Seq(hash))
	}
}

func TestStoreRejectsGarbage(t *testing.T) {
	s, _ := NewStore("")
	if _, _, err := s.Put([]byte("not a bundle")); err == nil {
		t.Fatal("Put accepted garbage")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after rejected Put, want 0", s.Len())
	}
}

func TestStoreSequenceOrdersUploads(t *testing.T) {
	s, _ := NewStore("")
	h1, _, _ := s.Put(synthBundle(t, 1))
	h2, _, _ := s.Put(synthBundle(t, 2))
	if s.Seq(h1) != 1 || s.Seq(h2) != 2 {
		t.Fatalf("Seq(h1)=%d Seq(h2)=%d, want 1,2", s.Seq(h1), s.Seq(h2))
	}
	hashes := s.Hashes()
	if len(hashes) != 2 || hashes[0] != h1 || hashes[1] != h2 {
		t.Fatalf("Hashes = %v, want [%s %s]", hashes, h1, h2)
	}
	if s.Seq("deadbeef") != 0 {
		t.Fatal("Seq for unknown hash should be 0")
	}
}

func TestStorePersistsAndReloads(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	data1, data2 := synthBundle(t, 1), synthBundle(t, 2)
	h1, _, err := s.Put(data1)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	h2, _, _ := s.Put(data2)

	// Bundles land on disk under their hash.
	if _, err := os.Stat(filepath.Join(dir, h1+".pmlb")); err != nil {
		t.Fatalf("persisted file missing: %v", err)
	}
	// A corrupt artifact in the directory must not break reload.
	os.WriteFile(filepath.Join(dir, "garbage.pmlb"), []byte("junk"), 0o644)

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatalf("reload NewStore: %v", err)
	}
	if s2.Len() != 2 {
		t.Fatalf("reloaded Len = %d, want 2", s2.Len())
	}
	for _, h := range []string{h1, h2} {
		if _, ok := s2.Get(h); !ok {
			t.Fatalf("reloaded store missing %s", short(h))
		}
	}
}

// TestStorePutDoesNotCommitOnPersistFailure: a bundle the store could
// not persist must not be served from memory — otherwise a retried
// upload short-circuits on existed=true and memory and disk silently
// diverge until restart.
func TestStorePutDoesNotCommitOnPersistFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bundles")
	s, err := NewStore(dir)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	data := synthBundle(t, 1)

	// Remove the directory out from under the store so writeAtomic fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatalf("remove store dir: %v", err)
	}
	if _, _, err := s.Put(data); err == nil {
		t.Fatal("Put succeeded with the store dir missing")
	}
	if s.Len() != 0 {
		t.Fatalf("failed Put left %d bundles in memory", s.Len())
	}
	if _, ok := s.Get(HashOf(data)); ok {
		t.Fatal("failed Put left the bundle readable")
	}

	// Once persistence is possible again, the retried upload both commits
	// and lands on disk.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("recreate store dir: %v", err)
	}
	hash, existed, err := s.Put(data)
	if err != nil || existed {
		t.Fatalf("retried Put: existed=%v err=%v, want fresh success", existed, err)
	}
	if _, err := os.Stat(filepath.Join(dir, hash+".pmlb")); err != nil {
		t.Fatalf("retried Put did not persist: %v", err)
	}
}

// TestStoreReloadPreservesUploadOrder: sequence numbers are renumbered
// on reload but must rank bundles in their original upload order, not
// in content-hash (filename) order.
func TestStoreReloadPreservesUploadOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	// Upload in the opposite of hash order, so a filename-sorted reload
	// would swap the sequence numbers.
	first, second := synthBundle(t, 1), synthBundle(t, 2)
	if HashOf(first) < HashOf(second) {
		first, second = second, first
	}
	h1, _, err := s.Put(first)
	if err != nil {
		t.Fatalf("Put first: %v", err)
	}
	h2, _, err := s.Put(second)
	if err != nil {
		t.Fatalf("Put second: %v", err)
	}
	// Real uploads are spread out in time; the test's back-to-back writes
	// could land in the same mtime tick, so separate them explicitly.
	base := time.Now().Add(-time.Hour)
	if err := os.Chtimes(filepath.Join(dir, h1+".pmlb"), base, base); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}
	later := base.Add(2 * time.Second)
	if err := os.Chtimes(filepath.Join(dir, h2+".pmlb"), later, later); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}

	s2, err := NewStore(dir)
	if err != nil {
		t.Fatalf("reload NewStore: %v", err)
	}
	if s2.Seq(h1) != 1 || s2.Seq(h2) != 2 {
		t.Fatalf("reload renumbered out of upload order: Seq(h1)=%d Seq(h2)=%d, want 1,2",
			s2.Seq(h1), s2.Seq(h2))
	}
	if hashes := s2.Hashes(); len(hashes) != 2 || hashes[0] != h1 || hashes[1] != h2 {
		t.Fatalf("reloaded Hashes = %v, want [%s %s]", hashes, short(h1), short(h2))
	}
}

func TestValidHash(t *testing.T) {
	good := HashOf([]byte("x"))
	cases := []struct {
		h    string
		want bool
	}{
		{good, true},
		{"", false},
		{"abc", false},
		{good[:63] + "G", false},
		{good[:63] + "A", false}, // uppercase hex is not canonical
	}
	for _, c := range cases {
		if got := ValidHash(c.h); got != c.want {
			t.Errorf("ValidHash(%q) = %v, want %v", c.h, got, c.want)
		}
	}
}
