package controlplane

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestRollout(t *testing.T, clock *fakeClock) (*Rollout, *Store, string, string) {
	t.Helper()
	store, _ := NewStore("")
	stable, _, err := store.Put(synthBundle(t, 1))
	if err != nil {
		t.Fatalf("Put stable: %v", err)
	}
	cand, _, err := store.Put(synthBundle(t, 2))
	if err != nil {
		t.Fatalf("Put candidate: %v", err)
	}
	ro := NewRollout(store, RolloutConfig{
		CanaryPercent:    25,
		MinAgreement:     0.9,
		MinShadowSamples: 10,
		ReplicaTTL:       30 * time.Second,
		Now:              clock.now,
	})
	if err := ro.SetStable(stable); err != nil {
		t.Fatalf("SetStable: %v", err)
	}
	return ro, store, stable, cand
}

// register sends an initial heartbeat serving hash for each replica id.
func register(ro *Rollout, hash string, ids ...string) {
	for _, id := range ids {
		ro.Observe(Heartbeat{ReplicaID: id, ActiveHash: hash, CandidateStatus: CandidateNone})
	}
}

func TestRingAssignmentIsRankBasedAndDeterministic(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, _ := newTestRollout(t, clock)

	// 3 replicas at 25% → ceil(0.75) = 1 canary, the lexicographically
	// first id.
	register(ro, stable, "r-b", "r-c", "r-a")
	if ring := ro.RingOf("r-a"); ring != RingCanary {
		t.Fatalf("r-a ring = %s, want canary", ring)
	}
	for _, id := range []string{"r-b", "r-c"} {
		if ring := ro.RingOf(id); ring != RingFleet {
			t.Fatalf("%s ring = %s, want fleet", id, ring)
		}
	}
	// 8 replicas at 25% → exactly 2 canary.
	for i := 3; i < 8; i++ {
		register(ro, stable, fmt.Sprintf("r-%c", 'a'+i))
	}
	canary := 0
	for i := 0; i < 8; i++ {
		if ro.RingOf(fmt.Sprintf("r-%c", 'a'+i)) == RingCanary {
			canary++
		}
	}
	if canary != 2 {
		t.Fatalf("canary ring size = %d of 8 at 25%%, want 2", canary)
	}
	// Unknown replicas resolve to the fleet ring.
	if ring := ro.RingOf("never-seen"); ring != RingFleet {
		t.Fatalf("unknown replica ring = %s, want fleet", ring)
	}
}

// TestRingAssignmentFrozenMidRollout: a replica joining while a rollout
// is in flight must not trigger a re-split — that could pull an existing
// fleet replica into the canary ring (exposing it to the in-flight
// candidate) or demote a canary that already promoted it. Joiners park
// in the fleet ring; the deterministic split resumes once the rollout
// settles.
func TestRingAssignmentFrozenMidRollout(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, cand := newTestRollout(t, clock)
	register(ro, stable, "r-b", "r-c") // 2 replicas at 25% → 1 canary: r-b
	if ro.RingOf("r-b") != RingCanary || ro.RingOf("r-c") != RingFleet {
		t.Fatalf("pre-rollout rings: r-b=%s r-c=%s, want canary/fleet", ro.RingOf("r-b"), ro.RingOf("r-c"))
	}
	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start: %v", err)
	}

	// r-a sorts before every existing id; a naive re-split would make it
	// the canary and demote r-b.
	ring, _ := ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: stable, CandidateStatus: CandidateNone})
	if ring != RingFleet {
		t.Fatalf("mid-rollout joiner assigned ring %s, want fleet", ring)
	}
	if ro.RingOf("r-b") != RingCanary || ro.RingOf("r-c") != RingFleet {
		t.Fatalf("mid-rollout join churned rings: r-b=%s r-c=%s", ro.RingOf("r-b"), ro.RingOf("r-c"))
	}
	// The joiner's manifest still desires stable: it is never exposed to
	// the in-flight candidate.
	if m := ro.Manifest(RingFleet); m.DesiredHash != stable {
		t.Fatalf("fleet manifest desires %s mid-canary, want stable", short(m.DesiredHash))
	}

	// Settling the rollout folds the joiner into the normal split: r-a is
	// now the lexicographically first of three.
	if err := ro.Rollback("test settle"); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if ro.RingOf("r-a") != RingCanary || ro.RingOf("r-b") != RingFleet {
		t.Fatalf("post-settle rings: r-a=%s r-b=%s, want canary/fleet", ro.RingOf("r-a"), ro.RingOf("r-b"))
	}

	// The freeze also holds through the fleet stage and a promoted finish.
	if err := ro.Start(cand); err != nil {
		t.Fatalf("second Start: %v", err)
	}
	ro.Observe(Heartbeat{ReplicaID: "a-0", ActiveHash: stable, CandidateStatus: CandidateNone})
	if ro.RingOf("a-0") != RingFleet || ro.RingOf("r-a") != RingCanary {
		t.Fatalf("second mid-rollout join churned rings: a-0=%s r-a=%s", ro.RingOf("a-0"), ro.RingOf("r-a"))
	}
	if err := ro.Promote(); err != nil { // canary → fleet
		t.Fatalf("Promote: %v", err)
	}
	ro.Observe(Heartbeat{ReplicaID: "a-1", ActiveHash: stable, CandidateStatus: CandidateNone})
	if ro.RingOf("a-1") != RingFleet {
		t.Fatalf("fleet-stage joiner assigned ring %s, want fleet", ro.RingOf("a-1"))
	}
	if err := ro.Promote(); err != nil { // fleet → done
		t.Fatalf("Promote to done: %v", err)
	}
	// 5 replicas at 25% → ceil(1.25) = 2 canary: a-0, a-1.
	if ro.RingOf("a-0") != RingCanary || ro.RingOf("a-1") != RingCanary || ro.RingOf("r-a") != RingFleet {
		t.Fatalf("post-done rings: a-0=%s a-1=%s r-a=%s, want canary/canary/fleet",
			ro.RingOf("a-0"), ro.RingOf("a-1"), ro.RingOf("r-a"))
	}
}

func TestStagedRolloutCanaryThenFleetThenDone(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, cand := newTestRollout(t, clock)
	register(ro, stable, "r-a", "r-b", "r-c") // r-a is canary

	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Canary ring wants the candidate; fleet ring still wants stable.
	if m := ro.Manifest(RingCanary); m.DesiredHash != cand || m.RolloutState != StateCanary {
		t.Fatalf("canary manifest = %+v, want desired=%s state=canary", m, short(cand))
	}
	if m := ro.Manifest(RingFleet); m.DesiredHash != stable {
		t.Fatalf("fleet manifest desired = %s, want stable %s", short(m.DesiredHash), short(stable))
	}

	// Fleet replicas confirming the *stable* hash must not advance anything.
	register(ro, stable, "r-b", "r-c")
	if s := ro.Snapshot(); s.State != StateCanary {
		t.Fatalf("state advanced to %s without canary confirmation", s.State)
	}

	// The canary confirms the candidate → fleet stage.
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: cand,
		CandidateHash: cand, CandidateStatus: CandidatePromoted,
		CandidateSamples: 50, CandidateAgreement: 0.98})
	if s := ro.Snapshot(); s.State != StateFleet {
		t.Fatalf("state = %s after canary confirm, want fleet", s.State)
	}
	if m := ro.Manifest(RingFleet); m.DesiredHash != cand {
		t.Fatalf("fleet manifest desired = %s in fleet stage, want candidate", short(m.DesiredHash))
	}

	// All replicas confirm → done, candidate becomes stable.
	register(ro, cand, "r-b", "r-c")
	snap := ro.Snapshot()
	if snap.State != StateDone {
		t.Fatalf("state = %s after fleet confirm, want done", snap.State)
	}
	if snap.StableHash != cand || snap.CandidateHash != "" {
		t.Fatalf("stable=%s candidate=%q after done, want stable=candidate", short(snap.StableHash), snap.CandidateHash)
	}
}

func TestRolloutRollsBackOnRejectedCandidate(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, cand := newTestRollout(t, clock)
	register(ro, stable, "r-a", "r-b", "r-c")
	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: stable,
		CandidateHash: cand, CandidateStatus: CandidateRejected,
		CandidateSamples: 40, CandidateAgreement: 0.31})
	snap := ro.Snapshot()
	if snap.State != StateRolledBack {
		t.Fatalf("state = %s after rejection, want rolled_back", snap.State)
	}
	if !strings.Contains(snap.RollbackReason, "rejected") {
		t.Fatalf("rollback reason %q does not mention rejection", snap.RollbackReason)
	}
	// Every ring reverts to stable.
	for _, ring := range []string{RingCanary, RingFleet} {
		if m := ro.Manifest(ring); m.DesiredHash != stable {
			t.Fatalf("%s manifest desired = %s after rollback, want stable", ring, short(m.DesiredHash))
		}
	}
}

func TestRolloutRollsBackOnLowAgreementEvidence(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, cand := newTestRollout(t, clock)
	register(ro, stable, "r-a", "r-b")
	ro.Start(cand)

	// Thin evidence below threshold is ignored (< MinShadowSamples).
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: stable,
		CandidateHash: cand, CandidateStatus: CandidateSoaking,
		CandidateSamples: 5, CandidateAgreement: 0.2})
	if s := ro.Snapshot(); s.State != StateCanary {
		t.Fatalf("rolled back on %d samples, below MinShadowSamples", 5)
	}
	// Enough samples with low agreement trips the gate.
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: stable,
		CandidateHash: cand, CandidateStatus: CandidateSoaking,
		CandidateSamples: 25, CandidateAgreement: 0.5})
	if s := ro.Snapshot(); s.State != StateRolledBack {
		t.Fatalf("state = %s with agreement 0.5 over 25 samples, want rolled_back", s.State)
	}
}

func TestRolloutRollsBackOnDriftAlert(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, cand := newTestRollout(t, clock)
	register(ro, stable, "r-a", "r-b")
	ro.Start(cand)
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: cand,
		CandidateHash: cand, CandidateStatus: CandidatePromoted,
		DriftStatus: "alert"})
	if s := ro.Snapshot(); s.State != StateRolledBack {
		t.Fatalf("state = %s with drift alert on candidate, want rolled_back", s.State)
	}
}

func TestRolloutRollsBackOnLatencyRegression(t *testing.T) {
	clock := newFakeClock()
	store, _ := NewStore("")
	stable, _, _ := store.Put(synthBundle(t, 1))
	cand, _, _ := store.Put(synthBundle(t, 2))
	ro := NewRollout(store, RolloutConfig{
		MaxP99Ratio: 2.0,
		ReplicaTTL:  30 * time.Second,
		Now:         clock.now,
	})
	ro.SetStable(stable)
	// Baseline p99 of 100us is captured at Start.
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: stable, SelectP99US: 100, CandidateStatus: CandidateNone})
	ro.Start(cand)
	// Serving the candidate at 150us (1.5x) is fine...
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: cand, SelectP99US: 150,
		CandidateHash: cand, CandidateStatus: CandidatePromoted})
	if s := ro.Snapshot(); s.State == StateRolledBack {
		t.Fatal("rolled back at 1.5x baseline with MaxP99Ratio=2")
	}
	// Restart a rollout to test the trip side with a fresh baseline.
	ro2 := NewRollout(store, RolloutConfig{MaxP99Ratio: 2.0, ReplicaTTL: 30 * time.Second, Now: clock.now})
	ro2.SetStable(stable)
	ro2.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: stable, SelectP99US: 100, CandidateStatus: CandidateNone})
	ro2.Start(cand)
	ro2.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: cand, SelectP99US: 250,
		CandidateHash: cand, CandidateStatus: CandidatePromoted})
	if s := ro2.Snapshot(); s.State != StateRolledBack {
		t.Fatalf("state = %s at 2.5x baseline p99, want rolled_back", s.State)
	}
}

func TestStaleReplicasCannotWedgeOrVeto(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, cand := newTestRollout(t, clock)
	register(ro, stable, "r-a", "r-b", "r-c")
	ro.Start(cand)

	// r-b and r-c go silent past the TTL; only r-a (canary) stays live.
	clock.advance(60 * time.Second)
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: cand,
		CandidateHash: cand, CandidateStatus: CandidatePromoted})
	if s := ro.Snapshot(); s.State != StateFleet {
		t.Fatalf("state = %s, want fleet (stale replicas must not wedge canary confirm)", s.State)
	}
	// In the fleet stage the same single live replica already serves the
	// candidate, so the rollout completes despite the stale pair.
	ro.Observe(Heartbeat{ReplicaID: "r-a", ActiveHash: cand,
		CandidateHash: cand, CandidateStatus: CandidatePromoted})
	if s := ro.Snapshot(); s.State != StateDone {
		t.Fatalf("state = %s, want done (stale replicas excluded from fleet gate)", s.State)
	}
	snap := ro.Snapshot()
	stale := 0
	for _, ri := range snap.Replicas {
		if ri.Stale {
			stale++
		}
	}
	if stale != 2 {
		t.Fatalf("snapshot shows %d stale replicas, want 2", stale)
	}
}

func TestRolloutVerbErrors(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, cand := newTestRollout(t, clock)

	if err := ro.Start("0000000000000000000000000000000000000000000000000000000000000000"); err == nil {
		t.Fatal("Start accepted a hash not in the store")
	}
	if err := ro.Start(stable); err == nil {
		t.Fatal("Start accepted the stable hash as candidate")
	}
	if err := ro.Promote(); err == nil {
		t.Fatal("Promote succeeded in idle state")
	}
	if err := ro.Rollback("x"); err == nil {
		t.Fatal("Rollback succeeded in idle state")
	}
	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := ro.Start(cand); err == nil {
		t.Fatal("Start accepted a second rollout while one is in flight")
	}
	if err := ro.SetStable(stable); err == nil {
		t.Fatal("SetStable succeeded mid-rollout")
	}
	// Manual promote path: canary → fleet → done.
	if err := ro.Promote(); err != nil {
		t.Fatalf("Promote canary→fleet: %v", err)
	}
	if err := ro.Promote(); err != nil {
		t.Fatalf("Promote fleet→done: %v", err)
	}
	if s := ro.Snapshot(); s.State != StateDone || s.StableHash != cand {
		t.Fatalf("after manual promotes: state=%s stable=%s, want done/%s", s.State, short(s.StableHash), short(cand))
	}
}

func TestRevChangesOnStateAndMembership(t *testing.T) {
	clock := newFakeClock()
	ro, _, stable, cand := newTestRollout(t, clock)
	r0 := ro.Rev()
	register(ro, stable, "r-a")
	r1 := ro.Rev()
	if r1 == r0 {
		t.Fatal("Rev unchanged after membership change")
	}
	// Re-heartbeating an already known replica with no state change keeps
	// the rev stable — this is what makes steady-state 304 polling work.
	register(ro, stable, "r-a")
	if ro.Rev() != r1 {
		t.Fatal("Rev changed on a steady-state heartbeat")
	}
	ro.Start(cand)
	if ro.Rev() == r1 {
		t.Fatal("Rev unchanged after rollout start")
	}
}
