package controlplane

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
)

// Store is the content-addressed bundle store. Bundles are keyed by the
// hex SHA-256 of their raw bytes — the exact hash pkg/registry computes
// for a loaded generation — so a replica that pulls /v1/bundles/{hash}
// and loads it through its registry ends up with a generation whose
// Hash() equals the manifest's desired hash, with no trust in the
// transport required: the replica re-hashes and re-validates on arrival.
//
// When configured with a directory, every accepted bundle is also
// persisted as <hash>.pmlb via write-temp-then-rename, and the directory
// is reloaded (revalidated) on startup, so a restarted control plane
// still serves the fleet's history.
type Store struct {
	dir string // "" = memory only

	mu   sync.RWMutex
	data map[string][]byte // hash -> raw bundle bytes
	seq  map[string]uint64 // hash -> upload sequence number
	next uint64            // next upload sequence number
}

// NewStore returns an empty in-memory store. If dir is non-empty it is
// created if needed and any *.pmlb / *.json files already present are
// loaded (files that fail validation or whose name disagrees with their
// content hash are skipped, not fatal — a corrupt artifact must not keep
// the control plane down).
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir, data: make(map[string][]byte), seq: make(map[string]uint64), next: 1}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("controlplane: create store dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("controlplane: read store dir: %w", err)
	}
	// Reload in modification-time order (name as tiebreak): files are
	// written at upload time, so mtime order reproduces the original
	// upload order and the reassigned sequence numbers rank bundles the
	// same way they ranked before the restart. Loading by filename would
	// order by content hash instead, silently reshuffling
	// Manifest.DesiredGeneration comparisons across a restart.
	type storedFile struct {
		name string
		mod  time.Time
	}
	files := make([]storedFile, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if !strings.HasSuffix(name, ".pmlb") && !strings.HasSuffix(name, ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, storedFile{name: name, mod: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mod.Equal(files[j].mod) {
			return files[i].mod.Before(files[j].mod)
		}
		return files[i].name < files[j].name
	})
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f.name))
		if err != nil {
			continue
		}
		if _, _, err := s.Put(data); err != nil {
			continue
		}
	}
	return s, nil
}

// HashOf returns the store's content key for raw bundle bytes: hex
// SHA-256, matching registry.Generation.Hash().
func HashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// ValidHash reports whether h looks like a hex SHA-256 digest. Used to
// reject garbage path segments before map lookups.
func ValidHash(h string) bool {
	if len(h) != 64 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put validates data as a bundle (JSON or PMLB, via bundle.ParseAny),
// stores it under its content hash, and returns the hash. existed
// reports whether the exact bytes were already present (idempotent
// re-upload). When a persistence directory is configured the bundle is
// also written to disk as <hash>.pmlb before Put returns.
func (s *Store) Put(data []byte) (hash string, existed bool, err error) {
	if _, err := bundle.ParseAny(data); err != nil {
		return "", false, fmt.Errorf("controlplane: reject bundle: %w", err)
	}
	hash = HashOf(data)

	s.mu.RLock()
	_, ok := s.data[hash]
	s.mu.RUnlock()
	if ok {
		return hash, true, nil
	}

	// Persist before committing to the map: a bundle the store admits to
	// holding must survive a restart. The reverse order would leave a
	// failed write serving from memory only, and — because the existed
	// fast path never re-persists — a retried upload of the same bytes
	// would silently skip the disk write forever.
	if s.dir != "" {
		if err := writeAtomic(filepath.Join(s.dir, hash+".pmlb"), data); err != nil {
			return hash, false, fmt.Errorf("controlplane: persist bundle: %w", err)
		}
	}

	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	if _, ok := s.data[hash]; ok {
		// A concurrent Put of the same bytes won the race; both persisted
		// the identical content-addressed file, so nothing is lost.
		s.mu.Unlock()
		return hash, true, nil
	}
	s.data[hash] = cp
	s.seq[hash] = s.next
	s.next++
	s.mu.Unlock()
	return hash, false, nil
}

// Get returns the raw bytes stored under hash, or ok=false.
func (s *Store) Get(hash string) (data []byte, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok = s.data[hash]
	return data, ok
}

// Seq returns the upload sequence number for hash (0 if absent). The
// sequence is the store's monotonic generation counter surfaced as
// Manifest.DesiredGeneration. Within a process lifetime it grows by one
// per accepted upload; after a restart the reload renumbers from 1 but
// preserves the original upload order (mtime-ordered reload), so
// relative comparisons stay meaningful while absolute values do not.
func (s *Store) Seq(hash string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq[hash]
}

// Len returns the number of distinct bundles held.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Hashes returns all stored hashes ordered by upload sequence.
func (s *Store) Hashes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for h := range s.data {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return s.seq[out[i]] < s.seq[out[j]] })
	return out
}

// writeAtomic writes data to path via a temp file + rename in the same
// directory, so a reader never observes a torn bundle.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pmlb-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
