// Package controlplane is the fleet side of PML-MPI bundle distribution:
// a content-addressed bundle store keyed by the same SHA-256 generation
// hash the registry computes, a per-ring manifest replicas poll to learn
// the desired generation, heartbeat ingestion carrying each replica's
// serving state and model-health evidence, and a staged-rollout state
// machine (canary ring first, fleet on healthy heartbeats, auto-rollback
// on degraded shadow agreement, drift, or latency).
//
// The protocol is pull-based and stateless on the wire: replicas poll
// GET /v1/manifest (cheap 304 via ETag in steady state), fetch missing
// content from GET /v1/bundles/{hash}, and report POST /v1/heartbeat.
// The control plane never dials a replica.
package controlplane

// Ring names. Every registered replica belongs to exactly one ring,
// assigned deterministically by the control plane: replica ids sort
// lexicographically and the first ceil(N * CanaryPercent / 100) (at least
// one) form the canary ring; the rest are the fleet ring.
const (
	RingCanary = "canary"
	RingFleet  = "fleet"
)

// Rollout states, as reported in the manifest and on /debug/rollout.
const (
	// StateIdle: no rollout has ever been started; every ring wants the
	// stable hash.
	StateIdle = "idle"
	// StateCanary: the candidate is desired on the canary ring only.
	StateCanary = "canary"
	// StateFleet: canary heartbeats were healthy; the candidate is desired
	// fleet-wide but not every replica has confirmed serving it yet.
	StateFleet = "fleet"
	// StateDone: every replica confirmed the candidate; it is the new
	// stable hash.
	StateDone = "done"
	// StateRolledBack: the candidate was withdrawn; every ring wants the
	// previous stable hash again.
	StateRolledBack = "rolled_back"
)

// Candidate statuses a replica reports for the bundle it most recently
// staged from the control plane.
const (
	// CandidateNone: no candidate in flight.
	CandidateNone = "none"
	// CandidateSoaking: staged and shadow-evaluating against live traffic.
	CandidateSoaking = "soaking"
	// CandidatePromoted: the candidate passed the local soak gate and is
	// now the active generation.
	CandidatePromoted = "promoted"
	// CandidateRejected: shadow agreement fell below the replica's local
	// threshold; the candidate was never promoted.
	CandidateRejected = "rejected"
)

// Manifest is the GET /v1/manifest response: the desired serving state for
// one ring. Replicas poll it (If-None-Match with the previous ETag makes
// the steady state a body-less 304) and reconcile their registry toward
// DesiredHash.
type Manifest struct {
	// Ring is the polling replica's assigned ring (observers without a
	// replica id see the fleet ring).
	Ring string `json:"ring"`
	// DesiredHash is the hex SHA-256 of the bundle this ring should serve.
	// Empty until a bundle has been uploaded or seeded.
	DesiredHash string `json:"desired_hash"`
	// DesiredGeneration is the control plane's monotonic upload sequence
	// number for DesiredHash — a fleet-wide ordering hint, distinct from
	// each replica's local registry generation ids.
	DesiredGeneration uint64 `json:"desired_generation"`
	// StableHash is the last fleet-wide accepted bundle.
	StableHash string `json:"stable_hash"`
	// RolloutState is the rollout state machine's current state.
	RolloutState string `json:"rollout_state"`
	// PollSeconds is the control plane's advisory poll interval.
	PollSeconds float64 `json:"poll_seconds,omitempty"`
}

// Heartbeat is the POST /v1/heartbeat request body: one replica's serving
// state plus the evidence the rollout controller gates on.
type Heartbeat struct {
	// ReplicaID uniquely names the replica; ring assignment and heartbeat
	// bookkeeping key on it.
	ReplicaID string `json:"replica_id"`
	// Addr is the replica's advertised base URL (for operators and
	// gateway discovery); optional.
	Addr string `json:"addr,omitempty"`
	// Ring echoes the ring from the last manifest the replica saw.
	Ring string `json:"ring,omitempty"`

	// ActiveGeneration / ActiveHash identify the local registry generation
	// currently serving Select traffic.
	ActiveGeneration uint64 `json:"active_generation"`
	ActiveHash       string `json:"active_hash"`

	// CandidateHash / CandidateStatus / CandidateSamples /
	// CandidateAgreement describe the most recent control-plane candidate
	// the replica staged: its shadow-evaluation evidence while soaking and
	// the verdict (promoted / rejected).
	CandidateHash      string  `json:"candidate_hash,omitempty"`
	CandidateStatus    string  `json:"candidate_status"`
	CandidateSamples   uint64  `json:"candidate_samples,omitempty"`
	CandidateAgreement float64 `json:"candidate_agreement,omitempty"`

	// DriftStatus / LowMarginRate mirror the model-health observatory's
	// summary ("ok", "warn", "alert", "collecting", "no_reference").
	DriftStatus   string  `json:"drift_status,omitempty"`
	LowMarginRate float64 `json:"low_margin_rate,omitempty"`
	// SelectP99US is the replica's rolling select latency p99 in
	// microseconds (0 when unknown / idle).
	SelectP99US float64 `json:"select_p99_us,omitempty"`
	// UptimeSeconds is the replica process uptime.
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
}

// HeartbeatAck is the POST /v1/heartbeat response.
type HeartbeatAck struct {
	// Ring is the control plane's current ring assignment for the replica
	// (authoritative; may differ from the echoed ring right after the
	// replica set changes).
	Ring string `json:"ring"`
	// RolloutState lets a replica log state transitions without an extra
	// manifest poll.
	RolloutState string `json:"rollout_state"`
}
