package admin

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// writeSynthBundle renders a deterministic synthetic bundle to a file and
// returns its path.
func writeSynthBundle(t *testing.T, dir string, name string, seed int64) string {
	t.Helper()
	data, err := synth.JSON(synth.Config{Seed: seed})
	if err != nil {
		t.Fatalf("synth.JSON: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// newRegistryServer builds a server backed by a registry with one promoted
// generation, the full production wiring: registry → selector → admin.
func newRegistryServer(t *testing.T) (*Server, *registry.Registry, string) {
	t.Helper()
	dir := t.TempDir()
	o := obs.NewForTest()
	sh := registry.NewShadow(o, registry.ShadowConfig{Fraction: 1, Workers: 1})
	r := registry.New(o, registry.Config{Shadow: sh})
	g, err := r.Load(writeSynthBundle(t, dir, "gen1.json", 1))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	sel := selector.NewFromSource(r, o, selector.Config{RingSize: 8})
	return New(sel, o, Config{Registry: r, Shadow: sh}), r, dir
}

func decode(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, body)
	}
}

func TestRegistryListEndpoint(t *testing.T) {
	srv, _, _ := newRegistryServer(t)
	rec := get(t, srv, "/v1/registry")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/registry = %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		ActiveGeneration uint64          `json:"active_generation"`
		Count            int             `json:"count"`
		Generations      []registry.Info `json:"generations"`
	}
	decode(t, rec.Body.Bytes(), &resp)
	if resp.ActiveGeneration != 1 || resp.Count != 1 {
		t.Fatalf("registry listing = %+v, want active 1 of 1", resp)
	}
	if len(resp.Generations) != 1 || resp.Generations[0].Status != registry.StatusActive {
		t.Fatalf("generations = %+v, want one active", resp.Generations)
	}
	if resp.Generations[0].Hash == "" {
		t.Fatal("generation listing missing content hash")
	}

	if rec := post(t, srv, "/v1/registry", "{}"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/registry = %d, want 405", rec.Code)
	}
}

func TestRegistryLoadPromoteRollbackLifecycle(t *testing.T) {
	srv, reg, dir := newRegistryServer(t)
	gen2 := writeSynthBundle(t, dir, "gen2.json", 2)

	// Load stages without activating.
	rec := post(t, srv, "/v1/registry/load", `{"path": "`+gen2+`"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("load = %d: %s", rec.Code, rec.Body)
	}
	var info registry.Info
	decode(t, rec.Body.Bytes(), &info)
	if info.ID != 2 || info.Status != registry.StatusStaged {
		t.Fatalf("loaded generation = %+v, want id 2 staged", info)
	}
	if g := reg.ActiveGeneration(); g == nil || g.ID() != 1 {
		t.Fatal("load changed the active generation")
	}

	// Bare promote activates the latest staged generation.
	rec = post(t, srv, "/v1/registry/promote", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("promote = %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec.Body.Bytes(), &info)
	if info.ID != 2 || info.Status != registry.StatusActive {
		t.Fatalf("promoted generation = %+v, want id 2 active", info)
	}

	// Rollback returns to generation 1.
	rec = post(t, srv, "/v1/registry/rollback", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("rollback = %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec.Body.Bytes(), &info)
	if info.ID != 1 {
		t.Fatalf("rollback activated %+v, want id 1", info)
	}

	// Explicit-id promote re-activates generation 2.
	rec = post(t, srv, "/v1/registry/promote", `{"id": 2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("explicit promote = %d: %s", rec.Code, rec.Body)
	}
	decode(t, rec.Body.Bytes(), &info)
	if info.ID != 2 {
		t.Fatalf("explicit promote activated %+v, want id 2", info)
	}
}

func TestRegistryEndpointErrorPaths(t *testing.T) {
	srv, reg, dir := newRegistryServer(t)

	// Missing path field.
	if rec := post(t, srv, "/v1/registry/load", "{}"); rec.Code != http.StatusBadRequest {
		t.Fatalf("load without path = %d, want 400", rec.Code)
	}
	// Unreadable file.
	if rec := post(t, srv, "/v1/registry/load", `{"path": "`+filepath.Join(dir, "missing.json")+`"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("load of missing file = %d, want 422", rec.Code)
	}
	// Invalid content: rejected with 422, active generation untouched.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	if rec := post(t, srv, "/v1/registry/load", `{"path": "`+bad+`"}`); rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("load of invalid bundle = %d, want 422", rec.Code)
	}
	if g := reg.ActiveGeneration(); g == nil || g.ID() != 1 {
		t.Fatal("failed load disturbed the active generation")
	}

	// Promote of an unknown id.
	if rec := post(t, srv, "/v1/registry/promote", `{"id": 99}`); rec.Code != http.StatusNotFound {
		t.Fatalf("promote unknown id = %d, want 404", rec.Code)
	}
	// Bare promote with nothing staged.
	if rec := post(t, srv, "/v1/registry/promote", ""); rec.Code != http.StatusConflict {
		t.Fatalf("bare promote with nothing staged = %d, want 409", rec.Code)
	}
	// Rollback with no history (only one generation ever active).
	if rec := post(t, srv, "/v1/registry/rollback", ""); rec.Code != http.StatusConflict {
		t.Fatalf("rollback without history = %d, want 409", rec.Code)
	}

	// Mutating endpoints are POST-only and advertise Allow.
	for _, path := range []string{"/v1/registry/load", "/v1/registry/promote", "/v1/registry/rollback"} {
		rec := get(t, srv, path)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d, want 405", path, rec.Code)
		}
		if rec.Header().Get("Allow") != http.MethodPost {
			t.Fatalf("GET %s missing Allow: POST header", path)
		}
	}
}

func TestHealthzReportsActiveGeneration(t *testing.T) {
	srv, reg, _ := newRegistryServer(t)
	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", rec.Code, rec.Body)
	}
	var h Health
	decode(t, rec.Body.Bytes(), &h)
	if h.Generation == nil {
		t.Fatalf("health has no generation block: %+v", h)
	}
	g := reg.ActiveGeneration()
	if h.Generation.ID != g.ID() || h.Generation.Hash != g.Hash() {
		t.Fatalf("health generation = %+v, want id %d hash %s", h.Generation, g.ID(), g.Hash())
	}
	if h.Generation.Collectives != len(g.Bundle().Collectives) {
		t.Fatalf("health reports %d collectives, want %d", h.Generation.Collectives, len(g.Bundle().Collectives))
	}
}

func TestHealthzDegradesWithoutActiveGeneration(t *testing.T) {
	dir := t.TempDir()
	o := obs.NewForTest()
	r := registry.New(o, registry.Config{})
	// Staged but never promoted: the instance cannot serve selections.
	if _, err := r.Load(writeSynthBundle(t, dir, "staged.json", 1)); err != nil {
		t.Fatalf("load: %v", err)
	}
	sel := selector.NewFromSource(r, o, selector.Config{})
	srv := New(sel, o, Config{Registry: r})

	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with no active generation = %d, want 503", rec.Code)
	}
	var h Health
	decode(t, rec.Body.Bytes(), &h)
	if h.Status != "unavailable" || h.BundleLoaded {
		t.Fatalf("health = %+v, want unavailable/unloaded", h)
	}
}

func TestShadowEndpointReportsCandidateEvidence(t *testing.T) {
	srv, reg, dir := newRegistryServer(t)
	if _, err := reg.Load(writeSynthBundle(t, dir, "cand.json", 2)); err != nil {
		t.Fatalf("load candidate: %v", err)
	}

	rec := get(t, srv, "/debug/shadow")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/shadow = %d: %s", rec.Code, rec.Body)
	}
	var rep registry.ShadowReport
	decode(t, rec.Body.Bytes(), &rep)
	if !rep.Enabled {
		t.Fatalf("shadow report = %+v, want enabled (candidate staged, fraction 1)", rep)
	}
	if rep.CandidateGeneration != 2 {
		t.Fatalf("candidate generation = %d, want 2", rep.CandidateGeneration)
	}
	if rep.Fraction != 1 {
		t.Fatalf("fraction = %v, want 1", rep.Fraction)
	}
}
