package admin

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/feedback"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/retrain"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/slo"
)

// trainedFixture is the committed trained bundle that carries embedded
// feature_stats, so drift monitoring has a training reference.
var trainedFixture = filepath.Join("..", "bundle", "testdata", "trained_small.json")

// trainedFeatures is a full canonical feature vector inside the fixture's
// training sweep support.
var trainedFeatures = map[string]float64{
	"num_nodes": 4, "ppn": 8, "log2_msg_size": 10,
	"max_clock_ghz": 2.6, "l3_cache_mib": 32, "mem_bw_gbs": 180,
	"core_count": 32, "thread_count": 64, "sockets": 2, "numa_nodes": 4,
	"pcie_lanes": 64, "pcie_gen": 4, "link_speed_gbps": 100, "link_width": 4,
}

// newHealthServer wires the admin surface the way cmd/pmlmpi-server does:
// registry-backed selector with cache and a model-health observatory.
func newHealthServer(t *testing.T, hcfg modelhealth.Config) (*Server, *selector.Selector, *obs.Obs) {
	t.Helper()
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	r := registry.New(o, registry.Config{})
	g, err := r.Load(trainedFixture)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	health := modelhealth.New(o.Registry, hcfg)
	sel := selector.NewFromSource(r, o, selector.Config{
		RingSize: 64,
		Cache:    cache.New(cache.Config{}, o.Registry),
		Health:   health,
	})
	return New(sel, o, Config{Registry: r, Health: health}), sel, o
}

// TestModelHealthEndpointsAbsentWithoutObservatory: servers without an
// observatory keep the legacy surface — no new routes, no healthz block.
func TestModelHealthEndpointsAbsentWithoutObservatory(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, path := range []string{"/debug/drift", "/debug/scorecards", "/debug/flightrecorder"} {
		if rec := get(t, srv, path); rec.Code != http.StatusNotFound {
			t.Errorf("%s without health = %d, want 404", path, rec.Code)
		}
	}
	var h Health
	if err := json.Unmarshal(get(t, srv, "/healthz").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.ModelHealth != nil {
		t.Errorf("healthz carries model_health without an observatory: %+v", h.ModelHealth)
	}
}

func TestHealthzModelHealthBlock(t *testing.T) {
	srv, sel, _ := newHealthServer(t, modelhealth.Config{})
	if _, err := sel.Select(context.Background(), "allgather", trainedFeatures); err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.Unmarshal(get(t, srv, "/healthz").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.ModelHealth == nil {
		t.Fatal("healthz missing model_health block")
	}
	if h.ModelHealth.DriftStatus != "collecting" {
		t.Errorf("drift_status = %q, want collecting after one selection", h.ModelHealth.DriftStatus)
	}
	if h.ModelHealth.Decisions != 1 {
		t.Errorf("decisions = %d, want 1", h.ModelHealth.Decisions)
	}
	if h.ModelHealth.FlightRecCapacity != modelhealth.DefaultFlightRecSize {
		t.Errorf("flight capacity = %d", h.ModelHealth.FlightRecCapacity)
	}
}

func TestDebugDriftEndpoint(t *testing.T) {
	srv, sel, _ := newHealthServer(t, modelhealth.Config{})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sel.Select(ctx, "broadcast", trainedFeatures); err != nil {
			t.Fatal(err)
		}
	}
	rec := get(t, srv, "/debug/drift")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/drift = %d", rec.Code)
	}
	var rep modelhealth.DriftReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "collecting" || rep.WindowSize != modelhealth.DefaultWindow {
		t.Errorf("report = status %q window %d", rep.Status, rep.WindowSize)
	}
	if rep.Generation == 0 {
		t.Error("report missing registry generation")
	}
	if rep.ReferenceSource != "train/sweep" {
		t.Errorf("reference_source = %q", rep.ReferenceSource)
	}
	if len(rep.Features) != len(modelhealth.DefaultDriftFeatures) {
		t.Fatalf("features = %d, want %d", len(rep.Features), len(modelhealth.DefaultDriftFeatures))
	}
	for _, f := range rep.Features {
		// 3 selections, but 2 were cache hits on the same key — every
		// selection (hit or cold) feeds the sketches.
		if f.Pending != 3 {
			t.Errorf("%s pending = %d, want 3", f.Feature, f.Pending)
		}
		if f.Reference.Total == 0 {
			t.Errorf("%s has empty training reference", f.Feature)
		}
	}
}

func TestDebugScorecardsEndpointAndDecisionsEnvelope(t *testing.T) {
	srv, sel, _ := newHealthServer(t, modelhealth.Config{})
	ctx := context.Background()
	for i := 0; i < 2; i++ { // one cold + one cache hit
		if _, err := sel.Select(ctx, "allgather", trainedFeatures); err != nil {
			t.Fatal(err)
		}
	}

	rec := get(t, srv, "/debug/scorecards")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/scorecards = %d", rec.Code)
	}
	var resp struct {
		Count      int                     `json:"count"`
		Scorecards []modelhealth.Scorecard `json:"scorecards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || len(resp.Scorecards) != 1 {
		t.Fatalf("scorecards = %d, want 1", resp.Count)
	}
	sc := resp.Scorecards[0]
	if !sc.Active || sc.Decisions != 2 || sc.CacheHits != 1 {
		t.Errorf("scorecard = %+v, want active with 2 decisions / 1 hit", sc)
	}
	if sc.DriftStatus != "collecting" {
		t.Errorf("scorecard drift = %q", sc.DriftStatus)
	}

	// The decisions envelope carries the active scorecard alongside the ring.
	var env struct {
		Count     int                    `json:"count"`
		Scorecard *modelhealth.Scorecard `json:"scorecard"`
	}
	if err := json.Unmarshal(get(t, srv, "/debug/decisions").Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Scorecard == nil || env.Scorecard.Generation != sc.Generation {
		t.Fatalf("decisions scorecard = %+v, want generation %d", env.Scorecard, sc.Generation)
	}

	// And each decision now reports its vote margin.
	var dec struct {
		Decisions []selector.Decision `json:"decisions"`
	}
	if err := json.Unmarshal(get(t, srv, "/debug/decisions").Body.Bytes(), &dec); err != nil {
		t.Fatal(err)
	}
	for i, d := range dec.Decisions {
		if d.Margin < 0 || d.Margin > 1 {
			t.Errorf("decisions[%d].margin = %v, want [0,1]", i, d.Margin)
		}
	}
}

func TestDebugFlightRecorderEndpoint(t *testing.T) {
	// MarginWarn of 1.5 makes every decision low-margin, so each selection
	// lands in the recorder.
	srv, sel, _ := newHealthServer(t, modelhealth.Config{MarginWarn: 1.5, FlightRecSize: 16})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sel.Select(ctx, "broadcast", trainedFeatures); err != nil {
			t.Fatal(err)
		}
	}
	rec := get(t, srv, "/debug/flightrecorder")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/flightrecorder = %d", rec.Code)
	}
	var resp struct {
		Capacity  int                        `json:"capacity"`
		Occupancy int                        `json:"occupancy"`
		Count     int                        `json:"count"`
		Records   []modelhealth.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Capacity != 16 || resp.Occupancy != 3 || resp.Count != 3 {
		t.Fatalf("recorder = cap %d occ %d count %d, want 16/3/3", resp.Capacity, resp.Occupancy, resp.Count)
	}
	r0 := resp.Records[0]
	if r0.Collective != "broadcast" || len(r0.Reasons) == 0 || r0.Reasons[0] != "low_margin" {
		t.Errorf("record = %+v, want broadcast low_margin", r0)
	}
	if r0.Features["num_nodes"] != 4 {
		t.Errorf("record features = %v, want num_nodes=4", r0.Features)
	}

	// Low-margin decisions surface on /metrics too.
	body := get(t, srv, "/metrics").Body.String()
	for _, want := range []string{
		`pmlmpi_margin_low_total{collective="broadcast"} 3`,
		`pmlmpi_flightrec_records_total{reason="low_margin"} 3`,
		"pmlmpi_flightrec_occupancy 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSelectResponseGolden pins the full /v1/select response shape — the
// additive telemetry fields (margin, generation) must not silently change
// the contract. Volatile per-request fields are stripped before comparison.
func TestSelectResponseGolden(t *testing.T) {
	srv, _, _ := newHealthServer(t, modelhealth.Config{})
	body := `{"collective": "allgather", "features": {` +
		`"num_nodes": 4, "ppn": 8, "log2_msg_size": 10, "max_clock_ghz": 2.6, ` +
		`"l3_cache_mib": 32, "mem_bw_gbs": 180, "core_count": 32, "thread_count": 64, ` +
		`"sockets": 2, "numa_nodes": 4, "pcie_lanes": 64, "pcie_gen": 4, ` +
		`"link_speed_gbps": 100, "link_width": 4}}`
	rec := post(t, srv, "/v1/select", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/select = %d: %s", rec.Code, rec.Body.String())
	}
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	for _, volatile := range []string{"time", "latency_ns", "request_id"} {
		if _, ok := got[volatile]; !ok {
			t.Errorf("response missing volatile field %q", volatile)
		}
		delete(got, volatile)
	}
	var want map[string]any
	if err := json.Unmarshal([]byte(selectGolden), &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		gotJSON, _ := json.Marshal(got)
		t.Fatalf("/v1/select response drifted from golden:\n got %s\nwant %s", gotJSON, selectGolden)
	}
}

const selectGolden = `{"algorithm":"neighbor_exchange","class":3,"collective":"allgather","features":{"core_count":32,"l3_cache_mib":32,"link_speed_gbps":100,"link_width":4,"log2_msg_size":10,"max_clock_ghz":2.6,"mem_bw_gbs":180,"num_nodes":4,"numa_nodes":4,"pcie_gen":4,"pcie_lanes":64,"ppn":8,"sockets":2,"thread_count":64},"generation":1,"low_margin":true,"margin":0.13820770930413884,"probs":[0.31368802345558655,0.20816622623319192,0.02625001755149609,0.4518957327597254],"votes":[1,0,0,3]}`

// TestMetricsFamilyInventoryGolden pins the complete instrument inventory of
// a production-wired server (registry, shadow, SLO, cache, model health).
// A new instrument must be added here deliberately; a vanished one is a
// regression.
func TestMetricsFamilyInventoryGolden(t *testing.T) {
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	shadow := registry.NewShadow(o, registry.ShadowConfig{})
	r := registry.New(o, registry.Config{Shadow: shadow})
	g, err := r.Load(trainedFixture)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatal(err)
	}
	tracker := slo.New(o.Registry, slo.Objectives{SelectP99: time.Millisecond, Availability: 0.999})
	health := modelhealth.New(o.Registry, modelhealth.Config{})
	sel := selector.NewFromSource(r, o, selector.Config{
		Cache:  cache.New(cache.Config{}, o.Registry),
		SLO:    tracker,
		Health: health,
	})
	shadow.SetNamer(sel.AlgorithmName)
	shadow.SetHealthSink(health.RecordShadow)
	store, err := feedback.NewStore(o.Registry, feedback.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctrl, err := retrain.New(o, retrain.Config{}, retrain.Deps{Store: store, Registry: r, Shadow: shadow, Health: health})
	if err != nil {
		t.Fatal(err)
	}
	New(sel, o, Config{Registry: r, SLO: tracker, Health: health, Feedback: store, Retrain: ctrl})

	got := o.Registry.FamilyNames()
	if !reflect.DeepEqual(got, inventoryGolden) {
		t.Fatalf("metric family inventory drifted:\n got %q\nwant %q", got, inventoryGolden)
	}
}

var inventoryGolden = []string{
	"pmlmpi_batch_requests_total",
	"pmlmpi_batch_size_items",
	"pmlmpi_build_info",
	"pmlmpi_bundle_forest_trees",
	"pmlmpi_bundle_loaded",
	"pmlmpi_bundle_size_bytes",
	"pmlmpi_bundle_trained_systems",
	"pmlmpi_cache_entries",
	"pmlmpi_cache_evictions_total",
	"pmlmpi_cache_hits_total",
	"pmlmpi_cache_lookup_duration_seconds",
	"pmlmpi_cache_misses_total",
	"pmlmpi_drift_cumulative_psi",
	"pmlmpi_drift_observations_total",
	"pmlmpi_drift_psi",
	"pmlmpi_drift_reference_loaded",
	"pmlmpi_drift_status",
	"pmlmpi_drift_windows_completed",
	"pmlmpi_feedback_records_resident",
	"pmlmpi_feedback_records_total",
	"pmlmpi_feedback_segments",
	"pmlmpi_flightrec_capacity",
	"pmlmpi_flightrec_occupancy",
	"pmlmpi_flightrec_records_total",
	"pmlmpi_forest_predict_duration_seconds",
	"pmlmpi_http_request_duration_seconds",
	"pmlmpi_http_requests_total",
	"pmlmpi_margin_low_rate",
	"pmlmpi_margin_low_total",
	"pmlmpi_margin_vote",
	"pmlmpi_margin_warn_threshold",
	"pmlmpi_registry_active_generation",
	"pmlmpi_registry_generations",
	"pmlmpi_registry_loads_total",
	"pmlmpi_registry_promotions_total",
	"pmlmpi_registry_rollbacks_total",
	"pmlmpi_retrain_candidate_generation",
	"pmlmpi_retrain_cycles_total",
	"pmlmpi_retrain_drift_alert_streak",
	"pmlmpi_retrain_state",
	"pmlmpi_select_duration_seconds",
	"pmlmpi_selection_errors_total",
	"pmlmpi_selections_total",
	"pmlmpi_selector_bundle_swaps_total",
	"pmlmpi_shadow_agreements_total",
	"pmlmpi_shadow_candidate_duration_seconds",
	"pmlmpi_shadow_dropped_total",
	"pmlmpi_shadow_errors_total",
	"pmlmpi_shadow_samples_total",
	"pmlmpi_slo_availability",
	"pmlmpi_slo_availability_burn_rate",
	"pmlmpi_slo_latency_burn_rate",
	"pmlmpi_slo_objective_availability",
	"pmlmpi_slo_objective_select_p99_seconds",
	"pmlmpi_slo_observations_total",
	"pmlmpi_slo_slow_fraction",
	"pmlmpi_span_duration_seconds",
	"pmlmpi_traces_sampled_total",
	"pmlmpi_traces_stored",
}

var _ = bundle.SupportedVersion // keep the bundle import alongside newTestServer's
