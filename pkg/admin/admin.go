// Package admin serves the HTTP operational surface of the PML-MPI
// selector: Prometheus metrics, health/readiness, ring buffers of recent
// decisions and sampled traces, decision analytics, optional pprof, and a
// JSON selection endpoint. Every request is itself instrumented (request
// counter + duration histogram + access log), so the admin surface dogfoods
// the obs package it exposes.
package admin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/buildinfo"
	"github.com/pml-mpi/pmlmpi/pkg/feedback"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/retrain"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/slo"
)

// Config tunes optional parts of the admin surface.
type Config struct {
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default: the
	// profile endpoints can stall the process (CPU profiles block for their
	// duration) and belong behind an operator's explicit flag.
	Pprof bool
	// Registry, when non-nil, mounts the model-registry lifecycle surface
	// (GET /v1/registry, POST /v1/registry/{load,promote,rollback}) and
	// makes /healthz generation-aware: the active generation is reported,
	// and a registry with no valid active bundle degrades health to 503.
	Registry *registry.Registry
	// Shadow, when non-nil, mounts /debug/shadow with the candidate
	// agreement/latency report.
	Shadow *registry.Shadow
	// SLO, when non-nil, mounts /debug/slo with the rolling burn-rate
	// report and refreshes the pmlmpi_slo_* gauges on every /metrics
	// scrape.
	SLO *slo.Tracker
	// Health, when non-nil, mounts the model-health observatory surface
	// (/debug/drift, /debug/scorecards, /debug/flightrecorder), adds a
	// model_health block to /healthz, and refreshes the pmlmpi_drift_* /
	// pmlmpi_margin_* gauges on every /metrics scrape.
	Health *modelhealth.Observatory
	// Feedback, when non-nil, mounts POST /v1/feedback: observed
	// per-algorithm latencies stream into the append-only feedback store
	// (validated, oracle-guarded, deduped) for the retrain loop.
	Feedback *feedback.Store
	// Retrain, when non-nil, mounts /debug/retrain with the controller's
	// state machine and verdict history, and adds a retrain block to
	// /healthz.
	Retrain *retrain.Controller
	// Role names this node's fleet role in /healthz ("server", "replica",
	// "gateway"). Empty defaults to "server".
	Role string
	// Desired, when non-nil, supplies the manifest state this node
	// believes is desired (the replica agent's Status) for /healthz, so
	// fleet drift is diagnosable from one endpoint.
	Desired func() any
}

// Route describes one registered endpoint: its path and the single method
// it accepts (HEAD rides along with GET). Every other method gets a 405
// with an Allow header. The table backs the method-handling audit test.
type Route struct {
	Path   string `json:"path"`
	Method string `json:"method"`
}

// Server is the admin HTTP handler.
type Server struct {
	sel      *selector.Selector
	o        *obs.Obs
	reg      *registry.Registry
	shadow   *registry.Shadow
	slo      *slo.Tracker
	health   *modelhealth.Observatory
	feedback *feedback.Store
	retrain  *retrain.Controller
	role     string
	desired  func() any
	started  time.Time
	mux      *http.ServeMux
	routes   []Route

	httpRequests *obs.Counter
	httpLatency  *obs.Histogram
}

// New builds the admin surface for a selector.
func New(sel *selector.Selector, o *obs.Obs, cfg Config) *Server {
	s := &Server{
		sel:      sel,
		o:        o,
		reg:      cfg.Registry,
		shadow:   cfg.Shadow,
		slo:      cfg.SLO,
		health:   cfg.Health,
		feedback: cfg.Feedback,
		retrain:  cfg.Retrain,
		role:     cfg.Role,
		desired:  cfg.Desired,
		started:  time.Now(),
		mux:      http.NewServeMux(),
		httpRequests: o.Registry.Counter("pmlmpi_http_requests_total",
			"HTTP requests served, by path and status code.", "path", "code"),
		httpLatency: o.Registry.Histogram("pmlmpi_http_request_duration_seconds",
			"HTTP request handling latency.", obs.LatencyBuckets, "path"),
	}
	buildinfo.Register(o.Registry)
	s.route("/metrics", http.MethodGet, "GET returns Prometheus text metrics", s.handleMetrics)
	s.route("/healthz", http.MethodGet, "GET returns serving health", s.handleHealthz)
	s.route("/debug/decisions", http.MethodGet, "GET lists recent decisions (?limit=, ?collective=)", s.handleDecisions)
	s.route("/debug/traces", http.MethodGet, "GET lists sampled traces (?limit=) or one tree (?id=)", s.handleTraces)
	s.route("/debug/analytics", http.MethodGet, "GET returns the decision-analytics rollup", s.handleAnalytics)
	s.route("/v1/select", http.MethodPost, "POST a JSON body: {\"collective\": ..., \"features\": {...}}", s.handleSelect)
	s.route("/v1/select/batch", http.MethodPost, "POST a JSON body: {\"requests\": [{\"collective\": ..., \"features\": {...}}, ...]}", s.handleSelectBatch)
	if cfg.Registry != nil {
		s.route("/v1/registry", http.MethodGet, "GET lists registry generations", s.handleRegistry)
		s.route("/v1/registry/load", http.MethodPost, "POST a JSON body: {\"path\": \"...\", \"promote\": false}", s.handleRegistryLoad)
		s.route("/v1/registry/promote", http.MethodPost, "POST a JSON body: {\"id\": N} (omit id to promote the latest staged generation)", s.handleRegistryPromote)
		s.route("/v1/registry/rollback", http.MethodPost, "POST with an empty body rolls back to the previously active generation", s.handleRegistryRollback)
	}
	if cfg.Shadow != nil {
		s.route("/debug/shadow", http.MethodGet, "GET returns the shadow-evaluation report", s.handleShadow)
	}
	if cfg.SLO != nil {
		s.route("/debug/slo", http.MethodGet, "GET returns the rolling SLO burn-rate report", s.handleSLO)
	}
	if cfg.Health != nil {
		s.route("/debug/drift", http.MethodGet, "GET returns the feature-drift report", s.handleDrift)
		s.route("/debug/scorecards", http.MethodGet, "GET returns per-generation model scorecards", s.handleScorecards)
		s.route("/debug/flightrecorder", http.MethodGet, "GET dumps the anomaly flight recorder", s.handleFlightRecorder)
	}
	if cfg.Feedback != nil {
		s.route("/v1/feedback", http.MethodPost, "POST a JSON body: one record ({\"collective\": ..., \"features\": {...}, \"latency_us\": {...}}) or a batch under \"records\"", s.handleFeedback)
	}
	if cfg.Retrain != nil {
		s.route("/debug/retrain", http.MethodGet, "GET returns the retrain controller state and verdict history", s.handleRetrain)
	}
	if cfg.Pprof {
		// Mounted bare, without the instrument wrapper: statusRecorder does
		// not forward http.Flusher, which the streaming profile endpoints
		// need, and profiling traffic would skew the latency histogram.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Routes returns every registered endpoint with its accepted method
// (pprof endpoints excepted — they are mounted bare). The audit test
// iterates this table so no future route can dodge method enforcement.
func (s *Server) Routes() []Route { return append([]Route(nil), s.routes...) }

// route registers one method-enforced, instrumented endpoint. Any other
// method is answered with 405, an RFC-required Allow header, and a usage
// hint. HEAD is accepted wherever GET is (net/http discards the body).
func (s *Server) route(path, method string, usage string, h http.HandlerFunc) {
	s.routes = append(s.routes, Route{Path: path, Method: method})
	s.mux.HandleFunc(path, s.instrument(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method && !(method == http.MethodGet && r.Method == http.MethodHead) {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, usage)
			return
		}
		h(w, r)
	}))
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, reqID := obs.WithRequestID(r.Context(), r.Header.Get("X-Request-Id"))
		w.Header().Set("X-Request-Id", reqID)
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sr, r.WithContext(ctx))
		elapsed := time.Since(start)
		s.httpRequests.Inc(path, strconv.Itoa(sr.code))
		s.httpLatency.Observe(elapsed.Seconds(), path)
		s.o.Logger.WithCtx(ctx).Debug("http request",
			"method", r.Method,
			"path", path,
			"code", sr.code,
			"duration_us", float64(elapsed.Microseconds()))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.slo != nil {
		// Re-evaluate the rolling windows so scraped burn rates are
		// current without a background refresher goroutine.
		s.slo.Refresh()
	}
	if s.health != nil {
		// Same contract for the model-health gauges: current at scrape
		// time, no refresher goroutine.
		s.health.Refresh()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.o.Registry.WritePrometheus(w)
}

// handleSLO serves the rolling SLO report: objectives plus per-window
// counts, availability, and burn rates.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Report())
}

// healthCollective summarizes one collective model for /healthz.
type healthCollective struct {
	Trees   int     `json:"trees"`
	Classes int     `json:"classes"`
	CVAUC   float64 `json:"cv_auc"`
}

// healthGeneration summarizes the active model generation for /healthz.
type healthGeneration struct {
	ID          uint64 `json:"id"`
	Hash        string `json:"hash"`
	Source      string `json:"source"`
	Collectives int    `json:"collectives"`
}

// Health is the /healthz response body.
type Health struct {
	Status        string                      `json:"status"`
	Role          string                      `json:"role"`
	Desired       any                         `json:"desired,omitempty"`
	ServerVersion string                      `json:"server_version"`
	GoVersion     string                      `json:"go_version"`
	ForestEval    string                      `json:"forest_eval,omitempty"`
	BundleLoaded  bool                        `json:"bundle_loaded"`
	ModelVersion  string                      `json:"model_version,omitempty"`
	BundlePath    string                      `json:"bundle_path,omitempty"`
	Generation    *healthGeneration           `json:"generation,omitempty"`
	TrainedOn     []string                    `json:"trained_on,omitempty"`
	Collectives   map[string]healthCollective `json:"collectives,omitempty"`
	ModelHealth   *modelhealth.Summary        `json:"model_health,omitempty"`
	Retrain       *retrain.Summary            `json:"retrain,omitempty"`
	UptimeSeconds float64                     `json:"uptime_seconds"`
}

// handleHealthz reports serving health. With a registry configured, it
// reports the active generation and degrades to 503 when no generation is
// active — the load balancer signal that this instance cannot select.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Role:          s.role,
		ServerVersion: buildinfo.Resolve(),
		GoVersion:     buildinfo.GoVersion(),
		ForestEval:    s.sel.ForestEval(),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	if h.Role == "" {
		h.Role = "server"
	}
	if s.desired != nil {
		h.Desired = s.desired()
	}
	if s.health != nil {
		sum := s.health.Summary()
		h.ModelHealth = &sum
	}
	if s.retrain != nil {
		sum := s.retrain.Summarize()
		h.Retrain = &sum
	}
	b := s.sel.Bundle()
	if b == nil {
		h.Status = "unavailable"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	h.Status = "ok"
	h.BundleLoaded = true
	h.ModelVersion = b.Version
	h.BundlePath = b.Path
	h.TrainedOn = b.TrainedOn
	h.Collectives = make(map[string]healthCollective, len(b.Collectives))
	for name, c := range b.Collectives {
		h.Collectives[name] = healthCollective{
			Trees:   len(c.Forest.Trees),
			Classes: c.Forest.NClasses,
			CVAUC:   c.CVAUC,
		}
	}
	if s.reg != nil {
		g := s.reg.ActiveGeneration()
		if g == nil {
			h.Status = "unavailable"
			h.BundleLoaded = false
			writeJSON(w, http.StatusServiceUnavailable, h)
			return
		}
		h.Generation = &healthGeneration{
			ID:          g.ID(),
			Hash:        g.Hash(),
			Source:      g.Source(),
			Collectives: len(g.Bundle().Collectives),
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// queryLimit parses a non-negative integer query parameter, trying names in
// order ("limit" first, then legacy aliases). Returns -1 after writing a 400
// if the value is malformed; 0 means "no limit".
func queryLimit(w http.ResponseWriter, r *http.Request, names ...string) int {
	for _, name := range names {
		q := r.URL.Query().Get(name)
		if q == "" {
			continue
		}
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bad %s=%q: want a non-negative integer", name, q))
			return -1
		}
		return v
	}
	return 0
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	n := queryLimit(w, r, "limit", "n") // "n" is the legacy spelling
	if n < 0 {
		return
	}
	collective := r.URL.Query().Get("collective")
	decisions := s.sel.RecentFiltered(n, collective)
	resp := map[string]any{
		"count":     len(decisions),
		"decisions": decisions,
	}
	if collective != "" {
		resp["collective"] = collective
	}
	if s.health != nil {
		if sc, ok := s.health.ActiveScorecard(); ok {
			resp["scorecard"] = sc
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraces serves the sampled-trace ring: without ?id= it lists trace
// summaries newest first (?limit= bounds the list); with ?id= it returns
// the one complete span tree, or a 404 JSON error if it has been evicted.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		tr, ok := s.o.Traces.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no retained trace %q (evicted or never sampled)", id))
			return
		}
		writeJSON(w, http.StatusOK, tr)
		return
	}
	limit := queryLimit(w, r, "limit")
	if limit < 0 {
		return
	}
	traces := s.o.Traces.List(limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"sample_rate": s.o.Traces.SampleRate(),
		"count":       len(traces),
		"traces":      traces,
	})
}

// handleAnalytics serves the decision-analytics aggregate: per
// collective × algorithm counts, cache-hit share, and latency quantiles.
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	rows := s.sel.Analytics()
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(rows),
		"rows":  rows,
	})
}

// selectRequest is the /v1/select request body.
type selectRequest struct {
	Collective string             `json:"collective"`
	Features   map[string]float64 `json:"features"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req selectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Collective == "" {
		writeError(w, http.StatusBadRequest, "missing \"collective\"")
		return
	}
	d, err := s.sel.Select(r.Context(), req.Collective, req.Features)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// MaxBatchItems bounds one /v1/select/batch request.
const MaxBatchItems = 1024

// batchRequest is the /v1/select/batch request body.
type batchRequest struct {
	Requests []selector.BatchRequest `json:"requests"`
}

// batchItemResponse is one entry of the /v1/select/batch response's
// "results" array. Exactly one of Decision and Error is set.
type batchItemResponse struct {
	Decision *selector.Decision `json:"decision,omitempty"`
	Error    string             `json:"error,omitempty"`
}

// batchResponse is the /v1/select/batch response body. The results array
// is positional: results[i] answers requests[i]. Item failures are
// reported inline with HTTP 200; only malformed envelopes get 4xx.
type batchResponse struct {
	Count   int                 `json:"count"`
	Errors  int                 `json:"errors"`
	Results []batchItemResponse `json:"results"`
}

func (s *Server) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: \"requests\" must have at least one item")
		return
	}
	if len(req.Requests) > MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d items exceeds the limit of %d", len(req.Requests), MaxBatchItems))
		return
	}
	results := s.sel.SelectBatch(r.Context(), req.Requests)
	resp := batchResponse{Count: len(results), Results: make([]batchItemResponse, len(results))}
	for i, res := range results {
		if res.Err != nil {
			resp.Errors++
			resp.Results[i] = batchItemResponse{Error: res.Err.Error()}
			continue
		}
		resp.Results[i] = batchItemResponse{Decision: res.Decision}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRegistry lists resident generations and the active one.
func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	var activeID uint64
	if g := s.reg.ActiveGeneration(); g != nil {
		activeID = g.ID()
	}
	gens := s.reg.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"active_generation": activeID,
		"count":             len(gens),
		"generations":       gens,
	})
}

// registryLoadRequest is the POST /v1/registry/load body.
type registryLoadRequest struct {
	Path string `json:"path"`
	// Promote activates the loaded generation immediately — load, stage,
	// and swap in one call.
	Promote bool `json:"promote,omitempty"`
}

// handleRegistryLoad stages a bundle file as a new generation. An invalid
// bundle yields a 422 and leaves the active generation untouched.
func (s *Server) handleRegistryLoad(w http.ResponseWriter, r *http.Request) {
	var req registryLoadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, "missing \"path\"")
		return
	}
	g, err := s.reg.Load(req.Path)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if req.Promote {
		if _, err := s.reg.Promote(g.ID()); err != nil {
			writeError(w, http.StatusConflict, err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, s.reg.InfoFor(g))
}

// registryPromoteRequest is the POST /v1/registry/promote body. Id 0 (or an
// empty body) promotes the most recently staged generation.
type registryPromoteRequest struct {
	ID uint64 `json:"id,omitempty"`
}

func (s *Server) handleRegistryPromote(w http.ResponseWriter, r *http.Request) {
	var req registryPromoteRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
	}
	id := req.ID
	if id == 0 {
		g := s.reg.LatestStaged()
		if g == nil {
			writeError(w, http.StatusConflict, "no staged generation to promote (load one first, or pass an explicit id)")
			return
		}
		id = g.ID()
	}
	g, err := s.reg.Promote(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.reg.InfoFor(g))
}

func (s *Server) handleRegistryRollback(w http.ResponseWriter, r *http.Request) {
	g, err := s.reg.Rollback()
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.reg.InfoFor(g))
}

// handleShadow serves the shadow-evaluation evidence for the staged (or
// most recently staged) candidate generation.
func (s *Server) handleShadow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.shadow.Report())
}

// handleDrift serves per-feature PSI scores of live traffic against the
// active bundle's embedded training distribution.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health.DriftReport())
}

// handleScorecards serves the per-generation model scorecards, newest
// first (the active generation leads).
func (s *Server) handleScorecards(w http.ResponseWriter, r *http.Request) {
	cards := s.health.Scorecards()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":      len(cards),
		"scorecards": cards,
	})
}

// handleFlightRecorder dumps the anomaly flight recorder: the retained
// records oldest first, plus occupancy/capacity for at-a-glance sizing.
func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	fr := s.health.Flight()
	records := fr.Dump()
	writeJSON(w, http.StatusOK, map[string]any{
		"capacity":  fr.Capacity(),
		"occupancy": fr.Occupancy(),
		"count":     len(records),
		"records":   records,
	})
}

// MaxFeedbackRecords bounds one /v1/feedback batch.
const MaxFeedbackRecords = 1024

// feedbackItemResponse is one entry of the /v1/feedback response's
// positional "results" array.
type feedbackItemResponse struct {
	Outcome feedback.Outcome `json:"outcome"`
	Error   string           `json:"error,omitempty"`
}

// feedbackResponse is the /v1/feedback response body. Per-record outcomes
// (duplicate, quarantined, invalid) are reported inline with HTTP 200;
// only a malformed envelope gets a 4xx.
type feedbackResponse struct {
	Count       int                    `json:"count"`
	Accepted    int                    `json:"accepted"`
	Duplicates  int                    `json:"duplicates"`
	Quarantined int                    `json:"quarantined"`
	Invalid     int                    `json:"invalid"`
	Results     []feedbackItemResponse `json:"results"`
}

// handleFeedback ingests observed per-algorithm latencies into the
// feedback store: parse the envelope strictly, then run every record
// through validation, the oracle plausibility guard, and dedup.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	body, err := readAll(w, r, 8<<20)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	records, err := feedback.ParseRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(records) > MaxFeedbackRecords {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d records exceeds the limit of %d", len(records), MaxFeedbackRecords))
		return
	}
	resp := feedbackResponse{Count: len(records), Results: make([]feedbackItemResponse, len(records))}
	for i := range records {
		out, err := s.feedback.Add(&records[i])
		item := feedbackItemResponse{Outcome: out}
		if err != nil {
			item.Error = err.Error()
		}
		resp.Results[i] = item
		switch out {
		case feedback.OutcomeAccepted:
			resp.Accepted++
		case feedback.OutcomeDuplicate:
			resp.Duplicates++
		case feedback.OutcomeQuarantined:
			resp.Quarantined++
		default:
			resp.Invalid++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleRetrain serves the retrain controller's state machine, feedback
// snapshot, and verdict history (newest first).
func (s *Server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.retrain.Report())
}

// readAll drains a size-capped request body.
func readAll(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
