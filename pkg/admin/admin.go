// Package admin serves the HTTP operational surface of the PML-MPI
// selector: Prometheus metrics, health/readiness, ring buffers of recent
// decisions and sampled traces, decision analytics, optional pprof, and a
// JSON selection endpoint. Every request is itself instrumented (request
// counter + duration histogram + access log), so the admin surface dogfoods
// the obs package it exposes.
package admin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

// Config tunes optional parts of the admin surface.
type Config struct {
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default: the
	// profile endpoints can stall the process (CPU profiles block for their
	// duration) and belong behind an operator's explicit flag.
	Pprof bool
}

// Server is the admin HTTP handler.
type Server struct {
	sel     *selector.Selector
	o       *obs.Obs
	started time.Time
	mux     *http.ServeMux

	httpRequests *obs.Counter
	httpLatency  *obs.Histogram
}

// New builds the admin surface for a selector.
func New(sel *selector.Selector, o *obs.Obs, cfg Config) *Server {
	s := &Server{
		sel:     sel,
		o:       o,
		started: time.Now(),
		mux:     http.NewServeMux(),
		httpRequests: o.Registry.Counter("pmlmpi_http_requests_total",
			"HTTP requests served, by path and status code.", "path", "code"),
		httpLatency: o.Registry.Histogram("pmlmpi_http_request_duration_seconds",
			"HTTP request handling latency.", obs.LatencyBuckets, "path"),
	}
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/debug/decisions", s.instrument("/debug/decisions", s.handleDecisions))
	s.mux.HandleFunc("/debug/traces", s.instrument("/debug/traces", s.handleTraces))
	s.mux.HandleFunc("/debug/analytics", s.instrument("/debug/analytics", s.handleAnalytics))
	s.mux.HandleFunc("/v1/select", s.instrument("/v1/select", s.handleSelect))
	s.mux.HandleFunc("/v1/select/batch", s.instrument("/v1/select/batch", s.handleSelectBatch))
	if cfg.Pprof {
		// Mounted bare, without the instrument wrapper: statusRecorder does
		// not forward http.Flusher, which the streaming profile endpoints
		// need, and profiling traffic would skew the latency histogram.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, reqID := obs.WithRequestID(r.Context(), r.Header.Get("X-Request-Id"))
		w.Header().Set("X-Request-Id", reqID)
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sr, r.WithContext(ctx))
		elapsed := time.Since(start)
		s.httpRequests.Inc(path, strconv.Itoa(sr.code))
		s.httpLatency.Observe(elapsed.Seconds(), path)
		s.o.Logger.WithCtx(ctx).Debug("http request",
			"method", r.Method,
			"path", path,
			"code", sr.code,
			"duration_us", float64(elapsed.Microseconds()))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.o.Registry.WritePrometheus(w)
}

// healthCollective summarizes one collective model for /healthz.
type healthCollective struct {
	Trees   int     `json:"trees"`
	Classes int     `json:"classes"`
	CVAUC   float64 `json:"cv_auc"`
}

// Health is the /healthz response body.
type Health struct {
	Status        string                      `json:"status"`
	BundleLoaded  bool                        `json:"bundle_loaded"`
	ModelVersion  string                      `json:"model_version"`
	BundlePath    string                      `json:"bundle_path,omitempty"`
	TrainedOn     []string                    `json:"trained_on"`
	Collectives   map[string]healthCollective `json:"collectives"`
	UptimeSeconds float64                     `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	b := s.sel.Bundle()
	h := Health{
		Status:        "ok",
		BundleLoaded:  true,
		ModelVersion:  b.Version,
		BundlePath:    b.Path,
		TrainedOn:     b.TrainedOn,
		Collectives:   make(map[string]healthCollective, len(b.Collectives)),
		UptimeSeconds: time.Since(s.started).Seconds(),
	}
	for name, c := range b.Collectives {
		h.Collectives[name] = healthCollective{
			Trees:   len(c.Forest.Trees),
			Classes: c.Forest.NClasses,
			CVAUC:   c.CVAUC,
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// queryLimit parses a non-negative integer query parameter, trying names in
// order ("limit" first, then legacy aliases). Returns -1 after writing a 400
// if the value is malformed; 0 means "no limit".
func queryLimit(w http.ResponseWriter, r *http.Request, names ...string) int {
	for _, name := range names {
		q := r.URL.Query().Get(name)
		if q == "" {
			continue
		}
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("bad %s=%q: want a non-negative integer", name, q))
			return -1
		}
		return v
	}
	return 0
}

func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	n := queryLimit(w, r, "limit", "n") // "n" is the legacy spelling
	if n < 0 {
		return
	}
	collective := r.URL.Query().Get("collective")
	decisions := s.sel.RecentFiltered(n, collective)
	resp := map[string]any{
		"count":     len(decisions),
		"decisions": decisions,
	}
	if collective != "" {
		resp["collective"] = collective
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraces serves the sampled-trace ring: without ?id= it lists trace
// summaries newest first (?limit= bounds the list); with ?id= it returns
// the one complete span tree, or a 404 JSON error if it has been evicted.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		tr, ok := s.o.Traces.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Sprintf("no retained trace %q (evicted or never sampled)", id))
			return
		}
		writeJSON(w, http.StatusOK, tr)
		return
	}
	limit := queryLimit(w, r, "limit")
	if limit < 0 {
		return
	}
	traces := s.o.Traces.List(limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"sample_rate": s.o.Traces.SampleRate(),
		"count":       len(traces),
		"traces":      traces,
	})
}

// handleAnalytics serves the decision-analytics aggregate: per
// collective × algorithm counts, cache-hit share, and latency quantiles.
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	rows := s.sel.Analytics()
	writeJSON(w, http.StatusOK, map[string]any{
		"count": len(rows),
		"rows":  rows,
	})
}

// selectRequest is the /v1/select request body.
type selectRequest struct {
	Collective string             `json:"collective"`
	Features   map[string]float64 `json:"features"`
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST a JSON body: {\"collective\": ..., \"features\": {...}}")
		return
	}
	var req selectRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Collective == "" {
		writeError(w, http.StatusBadRequest, "missing \"collective\"")
		return
	}
	d, err := s.sel.Select(r.Context(), req.Collective, req.Features)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, d)
}

// MaxBatchItems bounds one /v1/select/batch request.
const MaxBatchItems = 1024

// batchRequest is the /v1/select/batch request body.
type batchRequest struct {
	Requests []selector.BatchRequest `json:"requests"`
}

// batchItemResponse is one entry of the /v1/select/batch response's
// "results" array. Exactly one of Decision and Error is set.
type batchItemResponse struct {
	Decision *selector.Decision `json:"decision,omitempty"`
	Error    string             `json:"error,omitempty"`
}

// batchResponse is the /v1/select/batch response body. The results array
// is positional: results[i] answers requests[i]. Item failures are
// reported inline with HTTP 200; only malformed envelopes get 4xx.
type batchResponse struct {
	Count   int                 `json:"count"`
	Errors  int                 `json:"errors"`
	Results []batchItemResponse `json:"results"`
}

func (s *Server) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, "POST a JSON body: {\"requests\": [{\"collective\": ..., \"features\": {...}}, ...]}")
		return
	}
	var req batchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: \"requests\" must have at least one item")
		return
	}
	if len(req.Requests) > MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d items exceeds the limit of %d", len(req.Requests), MaxBatchItems))
		return
	}
	results := s.sel.SelectBatch(r.Context(), req.Requests)
	resp := batchResponse{Count: len(results), Results: make([]batchItemResponse, len(results))}
	for i, res := range results {
		if res.Err != nil {
			resp.Errors++
			resp.Results[i] = batchItemResponse{Error: res.Err.Error()}
			continue
		}
		resp.Results[i] = batchItemResponse{Decision: res.Decision}
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// methodNotAllowed writes a 405 with the RFC-required Allow header; all
// mutating endpoints here are POST-only.
func methodNotAllowed(w http.ResponseWriter, msg string) {
	w.Header().Set("Allow", http.MethodPost)
	writeError(w, http.StatusMethodNotAllowed, msg)
}
