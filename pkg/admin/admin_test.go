package admin

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

const realBundle = "../../.pmlbench/bundle_all_full.json"

var alltoallFeatures = map[string]float64{
	"log2_msg_size": 22,
	"ppn":           48,
	"num_nodes":     32,
	"mem_bw_gbs":    204.8,
	"thread_count":  96,
}

func newTestServer(t *testing.T) (*Server, *selector.Selector, *obs.Obs) {
	t.Helper()
	b, err := bundle.Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	o := obs.NewForTest()
	sel := selector.New(b, o, selector.Config{RingSize: 8})
	return New(sel, o), sel, o
}

func get(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestMetricsEndpointIncludesEveryRegisteredInstrument(t *testing.T) {
	srv, sel, o := newTestServer(t)

	// One real selection so the selection counter and latency histogram
	// have series, then one admin request for the HTTP instruments.
	if _, err := sel.Select(context.Background(), "alltoall", alltoallFeatures); err != nil {
		t.Fatalf("Select: %v", err)
	}
	get(t, srv, "/healthz")

	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()

	// Every family registered anywhere in the process must be exposed.
	for _, name := range o.Registry.FamilyNames() {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("/metrics missing registered family %q", name)
		}
	}

	// The acceptance-criteria instruments, with live series.
	for _, want := range []string{
		`pmlmpi_selections_total{collective="alltoall",algorithm="pairwise"} 1`,
		`pmlmpi_prediction_latency_seconds_count{collective="alltoall"} 1`,
		"pmlmpi_bundle_loaded 1",
		`pmlmpi_bundle_forest_trees{collective="allgather"} 60`,
		`pmlmpi_bundle_forest_trees{collective="alltoall"} 100`,
		`pmlmpi_http_requests_total{path="/healthz",code="200"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", rec.Code)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if h.Status != "ok" || !h.BundleLoaded {
		t.Errorf("health = %+v, want ok/loaded", h)
	}
	if h.ModelVersion != bundle.SupportedVersion {
		t.Errorf("model version = %q, want %q", h.ModelVersion, bundle.SupportedVersion)
	}
	if len(h.TrainedOn) != 18 {
		t.Errorf("trained_on has %d systems, want 18", len(h.TrainedOn))
	}
	ag, ok := h.Collectives["allgather"]
	if !ok || ag.Trees != 60 || ag.Classes != 4 {
		t.Errorf("allgather summary = %+v", ag)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id header")
	}
}

func TestDebugDecisionsShowsSelections(t *testing.T) {
	srv, sel, _ := newTestServer(t)
	d, err := sel.Select(context.Background(), "alltoall", alltoallFeatures)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}

	rec := get(t, srv, "/debug/decisions")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/decisions status = %d", rec.Code)
	}
	var resp struct {
		Count     int                 `json:"count"`
		Decisions []selector.Decision `json:"decisions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decisions not JSON: %v", err)
	}
	if resp.Count != 1 || len(resp.Decisions) != 1 {
		t.Fatalf("count = %d, want 1", resp.Count)
	}
	got := resp.Decisions[0]
	if got.Collective != "alltoall" || got.Algorithm != d.Algorithm || got.Class != d.Class {
		t.Errorf("decision = %+v, want algorithm %q class %d", got, d.Algorithm, d.Class)
	}
	if got.Features["ppn"] != 48 {
		t.Errorf("features not recorded: %v", got.Features)
	}
	if len(got.Votes) != 5 {
		t.Errorf("vote split = %v, want 5 classes", got.Votes)
	}
	if got.LatencyNS <= 0 {
		t.Error("latency not recorded")
	}

	// Limit query works.
	sel.Select(context.Background(), "alltoall", alltoallFeatures)
	rec = get(t, srv, "/debug/decisions?n=1")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 {
		t.Errorf("n=1 returned %d decisions", resp.Count)
	}

	if rec := get(t, srv, "/debug/decisions?n=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad n should be 400, got %d", rec.Code)
	}
}

func TestSelectEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)

	body := `{"collective": "alltoall", "features": {"log2_msg_size": 22, "ppn": 48, "num_nodes": 32, "mem_bw_gbs": 204.8, "thread_count": 96}}`
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/select", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/select status = %d: %s", rec.Code, rec.Body.String())
	}
	var d selector.Decision
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	// Golden case: this vector is a near-unanimous pairwise (class 1) pick.
	if d.Algorithm != "pairwise" || d.Class != 1 {
		t.Errorf("selection = %q class %d, want pairwise class 1", d.Algorithm, d.Class)
	}

	// Error paths.
	if rec := get(t, srv, "/v1/select"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET should be 405, got %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/select", strings.NewReader("{nope")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body should be 400, got %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/select",
		strings.NewReader(`{"collective": "broadcast", "features": {}}`)))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown collective should be 422, got %d", rec.Code)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	srv, sel, _ := newTestServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/select", strings.NewReader(
		`{"collective": "alltoall", "features": {"log2_msg_size": 10, "ppn": 16, "num_nodes": 8, "mem_bw_gbs": 100, "thread_count": 64}}`))
	req.Header.Set("X-Request-Id", "caller-supplied-id")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Request-Id"); got != "caller-supplied-id" {
		t.Errorf("response request ID = %q, want caller's", got)
	}
	recent := sel.Recent(1)
	if len(recent) != 1 || recent[0].RequestID != "caller-supplied-id" {
		t.Errorf("decision request ID = %+v, want caller-supplied-id", recent)
	}
}
