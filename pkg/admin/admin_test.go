package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

const realBundle = "../../.pmlbench/bundle_all_full.json"

var alltoallFeatures = map[string]float64{
	"log2_msg_size": 22,
	"ppn":           48,
	"num_nodes":     32,
	"mem_bw_gbs":    204.8,
	"thread_count":  96,
}

func newTestServer(t *testing.T) (*Server, *selector.Selector, *obs.Obs) {
	t.Helper()
	b, err := bundle.Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	o := obs.NewForTest()
	sel := selector.New(b, o, selector.Config{RingSize: 8})
	return New(sel, o, Config{}), sel, o
}

func get(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestMetricsEndpointIncludesEveryRegisteredInstrument(t *testing.T) {
	srv, sel, o := newTestServer(t)

	// One real selection so the selection counter and latency histogram
	// have series, then one admin request for the HTTP instruments.
	if _, err := sel.Select(context.Background(), "alltoall", alltoallFeatures); err != nil {
		t.Fatalf("Select: %v", err)
	}
	get(t, srv, "/healthz")

	rec := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()

	// Every family registered anywhere in the process must be exposed.
	for _, name := range o.Registry.FamilyNames() {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("/metrics missing registered family %q", name)
		}
	}

	// The acceptance-criteria instruments, with live series.
	for _, want := range []string{
		`pmlmpi_selections_total{collective="alltoall",algorithm="pairwise"} 1`,
		`pmlmpi_select_duration_seconds_count{collective="alltoall",path="cold"} 1`,
		`pmlmpi_forest_predict_duration_seconds_count{collective="alltoall"} 1`,
		"pmlmpi_bundle_loaded 1",
		`pmlmpi_bundle_forest_trees{collective="allgather"} 60`,
		`pmlmpi_bundle_forest_trees{collective="alltoall"} 100`,
		`pmlmpi_http_requests_total{path="/healthz",code="200"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d", rec.Code)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if h.Status != "ok" || !h.BundleLoaded {
		t.Errorf("health = %+v, want ok/loaded", h)
	}
	if h.ModelVersion != bundle.SupportedVersion {
		t.Errorf("model version = %q, want %q", h.ModelVersion, bundle.SupportedVersion)
	}
	if len(h.TrainedOn) != 18 {
		t.Errorf("trained_on has %d systems, want 18", len(h.TrainedOn))
	}
	ag, ok := h.Collectives["allgather"]
	if !ok || ag.Trees != 60 || ag.Classes != 4 {
		t.Errorf("allgather summary = %+v", ag)
	}
	if rec.Header().Get("X-Request-Id") == "" {
		t.Error("response missing X-Request-Id header")
	}
}

func TestDebugDecisionsShowsSelections(t *testing.T) {
	srv, sel, _ := newTestServer(t)
	d, err := sel.Select(context.Background(), "alltoall", alltoallFeatures)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}

	rec := get(t, srv, "/debug/decisions")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/decisions status = %d", rec.Code)
	}
	var resp struct {
		Count     int                 `json:"count"`
		Decisions []selector.Decision `json:"decisions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decisions not JSON: %v", err)
	}
	if resp.Count != 1 || len(resp.Decisions) != 1 {
		t.Fatalf("count = %d, want 1", resp.Count)
	}
	got := resp.Decisions[0]
	if got.Collective != "alltoall" || got.Algorithm != d.Algorithm || got.Class != d.Class {
		t.Errorf("decision = %+v, want algorithm %q class %d", got, d.Algorithm, d.Class)
	}
	if got.Features["ppn"] != 48 {
		t.Errorf("features not recorded: %v", got.Features)
	}
	if len(got.Votes) != 5 {
		t.Errorf("vote split = %v, want 5 classes", got.Votes)
	}
	if got.LatencyNS <= 0 {
		t.Error("latency not recorded")
	}

	// Limit query works.
	sel.Select(context.Background(), "alltoall", alltoallFeatures)
	rec = get(t, srv, "/debug/decisions?n=1")
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 {
		t.Errorf("n=1 returned %d decisions", resp.Count)
	}

	if rec := get(t, srv, "/debug/decisions?n=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad n should be 400, got %d", rec.Code)
	}
}

func TestSelectEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)

	body := `{"collective": "alltoall", "features": {"log2_msg_size": 22, "ppn": 48, "num_nodes": 32, "mem_bw_gbs": 204.8, "thread_count": 96}}`
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/select", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/select status = %d: %s", rec.Code, rec.Body.String())
	}
	var d selector.Decision
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	// Golden case: this vector is a near-unanimous pairwise (class 1) pick.
	if d.Algorithm != "pairwise" || d.Class != 1 {
		t.Errorf("selection = %q class %d, want pairwise class 1", d.Algorithm, d.Class)
	}

	// Error paths.
	if rec := get(t, srv, "/v1/select"); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET should be 405, got %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/select", strings.NewReader("{nope")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body should be 400, got %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/select",
		strings.NewReader(`{"collective": "broadcast", "features": {}}`)))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown collective should be 422, got %d", rec.Code)
	}
}

func post(t *testing.T, srv http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
	return rec
}

func TestSelectEndpointsRejectNonPOSTWithAllowHeader(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, path := range []string{"/v1/select", "/v1/select/batch"} {
		for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(method, path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, path, rec.Code)
			}
			if got := rec.Header().Get("Allow"); got != http.MethodPost {
				t.Errorf("%s %s Allow header = %q, want POST", method, path, got)
			}
		}
	}
}

func TestSelectBatchErrorPaths(t *testing.T) {
	goodItem := `{"collective":"alltoall","features":{"log2_msg_size":22,"ppn":48,"num_nodes":32,"mem_bw_gbs":204.8,"thread_count":96}}`
	oversized := `{"requests":[` + goodItem
	for i := 0; i < MaxBatchItems; i++ {
		oversized += "," + goodItem
	}
	oversized += `]}`

	tests := []struct {
		name       string
		body       string
		wantCode   int
		wantErrSub string // substring of the top-level "error" field
		wantItems  int    // for 200 responses: expected results length
		wantItem0  string // for 200 responses: substring of results[0].error ("" = success)
	}{
		{
			name:       "bad JSON",
			body:       `{"requests": [{"collective"`,
			wantCode:   http.StatusBadRequest,
			wantErrSub: "bad request body",
		},
		{
			name:       "empty batch",
			body:       `{"requests": []}`,
			wantCode:   http.StatusBadRequest,
			wantErrSub: "empty batch",
		},
		{
			name:       "missing requests field",
			body:       `{}`,
			wantCode:   http.StatusBadRequest,
			wantErrSub: "empty batch",
		},
		{
			name:       "oversized batch",
			body:       oversized,
			wantCode:   http.StatusBadRequest,
			wantErrSub: fmt.Sprintf("limit of %d", MaxBatchItems),
		},
		{
			name:      "unknown collective reported per item",
			body:      `{"requests": [{"collective": "broadcast", "features": {}}, ` + goodItem + `]}`,
			wantCode:  http.StatusOK,
			wantItems: 2,
			wantItem0: "unknown collective",
		},
		{
			name:      "missing feature reported per item",
			body:      `{"requests": [{"collective": "alltoall", "features": {"ppn": 4}}]}`,
			wantCode:  http.StatusOK,
			wantItems: 1,
			wantItem0: "missing feature",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			srv, _, _ := newTestServer(t)
			rec := post(t, srv, "/v1/select/batch", tc.body)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.wantCode, rec.Body.String())
			}
			if tc.wantCode != http.StatusOK {
				var e map[string]string
				if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
					t.Fatalf("error response not JSON: %v", err)
				}
				if !strings.Contains(e["error"], tc.wantErrSub) {
					t.Errorf("error = %q, want substring %q", e["error"], tc.wantErrSub)
				}
				return
			}
			var resp batchResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("response not JSON: %v", err)
			}
			if resp.Count != tc.wantItems || len(resp.Results) != tc.wantItems {
				t.Fatalf("count = %d (results %d), want %d", resp.Count, len(resp.Results), tc.wantItems)
			}
			if tc.wantItem0 != "" && !strings.Contains(resp.Results[0].Error, tc.wantItem0) {
				t.Errorf("results[0].error = %q, want substring %q", resp.Results[0].Error, tc.wantItem0)
			}
		})
	}
}

func TestSelectBatchSuccess(t *testing.T) {
	srv, _, _ := newTestServer(t)
	item := `{"collective":"alltoall","features":{"log2_msg_size":22,"ppn":48,"num_nodes":32,"mem_bw_gbs":204.8,"thread_count":96}}`
	rec := post(t, srv, "/v1/select/batch", `{"requests":[`+item+`,`+item+`]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || resp.Errors != 0 {
		t.Fatalf("count=%d errors=%d, want 2/0", resp.Count, resp.Errors)
	}
	for i, r := range resp.Results {
		if r.Decision == nil || r.Decision.Algorithm != "pairwise" || r.Decision.Class != 1 {
			t.Errorf("results[%d] = %+v, want pairwise class 1", i, r)
		}
	}
}

func TestMetricsExposeCacheAndBatchInstruments(t *testing.T) {
	// A server wired like production (cache enabled) must surface the
	// cache hit/miss/eviction counters and batch instruments on /metrics.
	b, err := bundle.Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	o := obs.NewForTest()
	sel := selector.New(b, o, selector.Config{
		Cache: cache.New(cache.Config{MaxEntries: 1024}, o.Registry),
	})
	srv := New(sel, o, Config{})

	item := `{"collective":"alltoall","features":{"log2_msg_size":22,"ppn":48,"num_nodes":32,"mem_bw_gbs":204.8,"thread_count":96}}`
	post(t, srv, "/v1/select", item)                             // miss
	post(t, srv, "/v1/select", item)                             // hit
	post(t, srv, "/v1/select/batch", `{"requests":[`+item+`]}`) // hit via batch

	body := get(t, srv, "/metrics").Body.String()
	for _, want := range []string{
		"pmlmpi_cache_hits_total 2",
		"pmlmpi_cache_misses_total 1",
		"# TYPE pmlmpi_cache_evictions_total counter",
		"pmlmpi_cache_entries 1",
		"pmlmpi_batch_requests_total 1",
		"pmlmpi_batch_size_items_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	srv, sel, _ := newTestServer(t)
	req := httptest.NewRequest(http.MethodPost, "/v1/select", strings.NewReader(
		`{"collective": "alltoall", "features": {"log2_msg_size": 10, "ppn": 16, "num_nodes": 8, "mem_bw_gbs": 100, "thread_count": 64}}`))
	req.Header.Set("X-Request-Id", "caller-supplied-id")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got := rec.Header().Get("X-Request-Id"); got != "caller-supplied-id" {
		t.Errorf("response request ID = %q, want caller's", got)
	}
	recent := sel.Recent(1)
	if len(recent) != 1 || recent[0].RequestID != "caller-supplied-id" {
		t.Errorf("decision request ID = %+v, want caller-supplied-id", recent)
	}
}

var allgatherFeatures = map[string]float64{
	"log2_msg_size": 20,
	"ppn":           32,
	"num_nodes":     64,
	"thread_count":  128,
	"l3_cache_mib":  24,
}

func TestDebugDecisionsFilters(t *testing.T) {
	srv, sel, _ := newTestServer(t)
	ctx := context.Background()
	// Three alltoall then two allgather selections, so newest-first order
	// and the per-collective filter are both observable.
	for i := 0; i < 3; i++ {
		if _, err := sel.Select(ctx, "alltoall", alltoallFeatures); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := sel.Select(ctx, "allgather", allgatherFeatures); err != nil {
			t.Fatal(err)
		}
	}

	tests := []struct {
		name           string
		query          string
		wantCode       int
		wantCount      int
		wantCollective string // "" = mixed
	}{
		{name: "no filters", query: "", wantCode: http.StatusOK, wantCount: 5},
		{name: "limit", query: "?limit=2", wantCode: http.StatusOK, wantCount: 2, wantCollective: "allgather"},
		{name: "legacy n alias", query: "?n=2", wantCode: http.StatusOK, wantCount: 2, wantCollective: "allgather"},
		{name: "collective filter", query: "?collective=alltoall", wantCode: http.StatusOK, wantCount: 3, wantCollective: "alltoall"},
		{name: "collective plus limit", query: "?collective=alltoall&limit=1", wantCode: http.StatusOK, wantCount: 1, wantCollective: "alltoall"},
		{name: "unknown collective empty", query: "?collective=broadcast", wantCode: http.StatusOK, wantCount: 0},
		{name: "bad limit", query: "?limit=-1", wantCode: http.StatusBadRequest},
		{name: "malformed limit", query: "?limit=lots", wantCode: http.StatusBadRequest},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rec := get(t, srv, "/debug/decisions"+tc.query)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.wantCode, rec.Body.String())
			}
			if tc.wantCode != http.StatusOK {
				return
			}
			var resp struct {
				Count     int                 `json:"count"`
				Decisions []selector.Decision `json:"decisions"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("not JSON: %v", err)
			}
			if resp.Count != tc.wantCount || len(resp.Decisions) != tc.wantCount {
				t.Fatalf("count = %d (decisions %d), want %d", resp.Count, len(resp.Decisions), tc.wantCount)
			}
			if tc.wantCollective != "" {
				for i, d := range resp.Decisions {
					if d.Collective != tc.wantCollective {
						t.Errorf("decisions[%d].collective = %q, want %q", i, d.Collective, tc.wantCollective)
					}
				}
			}
		})
	}
}

func TestDebugTracesServesCompleteSpanTree(t *testing.T) {
	srv, _, o := newTestServer(t)
	o.Traces.SetSampleRate(1)

	body := `{"collective": "alltoall", "features": {"log2_msg_size": 22, "ppn": 48, "num_nodes": 32, "mem_bw_gbs": 204.8, "thread_count": 96}}`
	if rec := post(t, srv, "/v1/select", body); rec.Code != http.StatusOK {
		t.Fatalf("/v1/select status = %d", rec.Code)
	}

	rec := get(t, srv, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces status = %d", rec.Code)
	}
	var list struct {
		SampleRate float64            `json:"sample_rate"`
		Count      int                `json:"count"`
		Traces     []obs.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if list.SampleRate != 1 {
		t.Errorf("sample_rate = %v, want 1", list.SampleRate)
	}
	if list.Count != 1 || len(list.Traces) != 1 {
		t.Fatalf("count = %d, want exactly the one sampled trace", list.Count)
	}
	sum := list.Traces[0]
	if sum.Root != "selector.decide" || sum.Spans < 3 {
		t.Fatalf("summary = %+v, want root selector.decide with >= 3 spans", sum)
	}

	// Fetch the full tree and check its shape: feature.extract and
	// forest.eval must both be children of the selector.decide root.
	rec = get(t, srv, "/debug/traces?id="+sum.TraceID)
	if rec.Code != http.StatusOK {
		t.Fatalf("fetch status = %d", rec.Code)
	}
	var tr obs.Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	spans := map[string]obs.SpanRecord{}
	for _, sp := range tr.Spans {
		spans[sp.Name] = sp
	}
	root, ok := spans["selector.decide"]
	if !ok || root.ParentID != "" {
		t.Fatalf("missing parentless selector.decide root in %+v", tr.Spans)
	}
	for _, child := range []string{"feature.extract", "forest.eval"} {
		sp, ok := spans[child]
		if !ok {
			t.Errorf("span tree missing %q", child)
			continue
		}
		if sp.ParentID != root.SpanID {
			t.Errorf("%s parent = %q, want root %q", child, sp.ParentID, root.SpanID)
		}
	}

	// Error paths: unknown ID is a JSON 404, bad limit a 400.
	if rec := get(t, srv, "/debug/traces?id=tr-nope"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown id should be 404, got %d", rec.Code)
	}
	if rec := get(t, srv, "/debug/traces?limit=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad limit should be 400, got %d", rec.Code)
	}
}

func TestDebugTracesLimit(t *testing.T) {
	srv, sel, o := newTestServer(t)
	o.Traces.SetSampleRate(1)
	for i := 0; i < 4; i++ {
		if _, err := sel.Select(context.Background(), "alltoall", alltoallFeatures); err != nil {
			t.Fatal(err)
		}
	}
	rec := get(t, srv, "/debug/traces?limit=2")
	var list struct {
		Count  int                `json:"count"`
		Traces []obs.TraceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 2 {
		t.Errorf("limit=2 returned %d traces", list.Count)
	}
}

func TestDebugAnalytics(t *testing.T) {
	b, err := bundle.Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	o := obs.NewForTest()
	sel := selector.New(b, o, selector.Config{
		Cache: cache.New(cache.Config{MaxEntries: 1024}, o.Registry),
	})
	srv := New(sel, o, Config{})

	ctx := context.Background()
	for i := 0; i < 3; i++ { // one cold + two cache hits
		if _, err := sel.Select(ctx, "alltoall", alltoallFeatures); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sel.Select(ctx, "allgather", allgatherFeatures); err != nil {
		t.Fatal(err)
	}

	rec := get(t, srv, "/debug/analytics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/analytics status = %d", rec.Code)
	}
	var resp struct {
		Count int `json:"count"`
		Rows  []struct {
			Collective string  `json:"collective"`
			Algorithm  string  `json:"algorithm"`
			Count      uint64  `json:"count"`
			CacheHits  uint64  `json:"cache_hits"`
			Share      float64 `json:"share"`
			P99US      float64 `json:"p99_us"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("analytics not JSON: %v", err)
	}
	if resp.Count != 2 || len(resp.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (one per collective): %s", resp.Count, rec.Body.String())
	}
	// Sorted by collective: allgather first.
	ag, at := resp.Rows[0], resp.Rows[1]
	if ag.Collective != "allgather" || ag.Algorithm != "bruck" || ag.Count != 1 || ag.Share != 1 {
		t.Errorf("allgather row = %+v", ag)
	}
	if at.Collective != "alltoall" || at.Algorithm != "pairwise" || at.Count != 3 || at.CacheHits != 2 {
		t.Errorf("alltoall row = %+v", at)
	}
	if at.P99US <= 0 {
		t.Errorf("alltoall p99 = %v, want > 0", at.P99US)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	b, err := bundle.Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	o := obs.NewForTest()
	sel := selector.New(b, o, selector.Config{})

	off := New(sel, o, Config{})
	if rec := get(t, off, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/ = %d, want 404", rec.Code)
	}

	on := New(sel, obs.NewForTest(), Config{Pprof: true})
	if rec := get(t, on, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/ = %d, want 200", rec.Code)
	}
	rec := get(t, on, "/debug/pprof/cmdline")
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Errorf("pprof on: /debug/pprof/cmdline = %d with %d bytes", rec.Code, rec.Body.Len())
	}
}
