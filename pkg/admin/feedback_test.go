package admin

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/dataset"
	"github.com/pml-mpi/pmlmpi/pkg/feedback"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/retrain"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

// newFeedbackServer wires the full self-tuning admin surface: registry,
// shadow, observatory, feedback store, and an idle retrain controller.
func newFeedbackServer(t *testing.T) *Server {
	t.Helper()
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	shadow := registry.NewShadow(o, registry.ShadowConfig{})
	r := registry.New(o, registry.Config{Shadow: shadow})
	g, err := r.Load(trainedFixture)
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	health := modelhealth.New(o.Registry, modelhealth.Config{})
	sel := selector.NewFromSource(r, o, selector.Config{
		Cache:  cache.New(cache.Config{}, o.Registry),
		Health: health,
	})
	store, err := feedback.NewStore(o.Registry, feedback.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("feedback store: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	ctrl, err := retrain.New(o, retrain.Config{},
		retrain.Deps{Store: store, Registry: r, Shadow: shadow, Health: health})
	if err != nil {
		t.Fatalf("retrain controller: %v", err)
	}
	return New(sel, o, Config{
		Registry: r, Health: health, Feedback: store, Retrain: ctrl,
	})
}

// postJSON sends a POST with a JSON body and returns the recorder.
func postJSON(t *testing.T, srv http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

// oracleFeedback builds an oracle-labeled feedback record for one point of
// the default system's workload space.
func oracleFeedback(t *testing.T, nodes, ppn, lm float64) dataset.Record {
	t.Helper()
	f := perfmodel.DefaultSystems[0].Features(nodes, ppn, lm)
	costs, err := perfmodel.Costs("broadcast", f)
	if err != nil {
		t.Fatalf("oracle costs: %v", err)
	}
	algos := perfmodel.Table()["broadcast"]
	lat := make(map[string]float64, len(algos))
	for i, name := range algos {
		lat[name] = costs[i] * 1e6
	}
	return dataset.Record{Collective: "broadcast", Features: f, LatenciesUS: lat}
}

func TestFeedbackEndpointSingleRecordLifecycle(t *testing.T) {
	srv := newFeedbackServer(t)
	rec := oracleFeedback(t, 8, 16, 12)
	body, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}

	w := postJSON(t, srv, "/v1/feedback", body)
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/feedback = %d body %s", w.Code, w.Body.String())
	}
	var resp feedbackResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 1 || resp.Accepted != 1 || resp.Results[0].Outcome != feedback.OutcomeAccepted {
		t.Fatalf("first submit = %+v, want 1 accepted", resp)
	}

	// Bit-exact resubmission dedups — still HTTP 200, outcome inline.
	w = postJSON(t, srv, "/v1/feedback", body)
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if w.Code != http.StatusOK || resp.Duplicates != 1 {
		t.Fatalf("resubmit = %d %+v, want 200 with 1 duplicate", w.Code, resp)
	}
}

func TestFeedbackEndpointBatchWithQuarantine(t *testing.T) {
	srv := newFeedbackServer(t)
	good := oracleFeedback(t, 4, 8, 10)
	// An implausible winner: the analytically worst algorithm reported as
	// fastest by five orders of magnitude trips the oracle guardrail.
	poisoned := oracleFeedback(t, 16, 16, 14)
	worst, worstLat := "", 0.0
	for name, lat := range poisoned.LatenciesUS {
		if lat > worstLat {
			worst, worstLat = name, lat
		}
	}
	poisoned.LatenciesUS[worst] = 0.001

	body, err := json.Marshal(map[string]any{"records": []dataset.Record{good, poisoned}})
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, srv, "/v1/feedback", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch = %d body %s", w.Code, w.Body.String())
	}
	var resp feedbackResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 2 || resp.Accepted != 1 || resp.Quarantined != 1 {
		t.Fatalf("batch = %+v, want 1 accepted + 1 quarantined", resp)
	}
	if resp.Results[1].Outcome != feedback.OutcomeQuarantined || resp.Results[1].Error == "" {
		t.Fatalf("poisoned result = %+v, want quarantined with a reason", resp.Results[1])
	}
}

func TestFeedbackEndpointRejectsMalformedEnvelopes(t *testing.T) {
	srv := newFeedbackServer(t)
	for name, body := range map[string]string{
		"not json":      "{",
		"unknown field": `{"collective":"broadcast","features":{"ppn":8},"latency_us":{"a":1},"bogus":1}`,
		"empty object":  `{}`,
	} {
		if w := postJSON(t, srv, "/v1/feedback", []byte(body)); w.Code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", name, w.Code)
		}
	}

	// Oversized batches are refused before any record is ingested.
	records := make([]dataset.Record, MaxFeedbackRecords+1)
	base := oracleFeedback(t, 2, 2, 8)
	for i := range records {
		records[i] = base
	}
	body, err := json.Marshal(map[string]any{"records": records})
	if err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, srv, "/v1/feedback", body); w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", w.Code)
	}
}

func TestFeedbackEndpointAbsentWithoutStore(t *testing.T) {
	srv, _, _ := newTestServer(t)
	if w := postJSON(t, srv, "/v1/feedback", []byte(`{}`)); w.Code != http.StatusNotFound {
		t.Errorf("/v1/feedback without a store = %d, want 404", w.Code)
	}
	if w := get(t, srv, "/debug/retrain"); w.Code != http.StatusNotFound {
		t.Errorf("/debug/retrain without a controller = %d, want 404", w.Code)
	}
}

func TestDebugRetrainEndpointAndHealthzBlock(t *testing.T) {
	srv := newFeedbackServer(t)

	// Seed a couple of records so the feedback snapshot is non-trivial.
	for i, lm := range []float64{8, 14} {
		nodes := 2 << uint(i)
		rec := oracleFeedback(t, float64(nodes), 8, lm)
		body, _ := json.Marshal(rec)
		if w := postJSON(t, srv, "/v1/feedback", body); w.Code != http.StatusOK {
			t.Fatalf("seed %d = %d", i, w.Code)
		}
	}

	w := get(t, srv, "/debug/retrain")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/retrain = %d", w.Code)
	}
	var rep retrain.Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.State != retrain.StateIdle || rep.Cycles != 0 {
		t.Errorf("report = state %q cycles %d, want idle with no cycles", rep.State, rep.Cycles)
	}
	if rep.Policy != retrain.PolicyAuto {
		t.Errorf("policy = %q, want default %q", rep.Policy, retrain.PolicyAuto)
	}
	if rep.Feedback.Resident != 2 || rep.Feedback.Accepted != 2 {
		t.Errorf("feedback snapshot = %+v, want 2 resident", rep.Feedback)
	}

	var h Health
	if err := json.Unmarshal(get(t, srv, "/healthz").Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Retrain == nil {
		t.Fatal("healthz missing retrain block")
	}
	if h.Retrain.State != retrain.StateIdle || h.Retrain.FeedbackResident != 2 {
		t.Errorf("healthz retrain = %+v", h.Retrain)
	}
}

// TestFeedbackMethodAudit: the route table gives the new surfaces the
// standard 405+Allow treatment.
func TestFeedbackMethodAudit(t *testing.T) {
	srv := newFeedbackServer(t)
	for path, allow := range map[string]string{
		"/v1/feedback":   http.MethodPost,
		"/debug/retrain": http.MethodGet,
	} {
		wrong := http.MethodGet
		if allow == http.MethodGet {
			wrong = http.MethodPost
		}
		req := httptest.NewRequest(wrong, path, bytes.NewReader(nil))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", wrong, path, rec.Code)
		}
		if got := rec.Header().Get("Allow"); got != allow {
			t.Errorf("%s Allow = %q, want %q", path, got, allow)
		}
	}
}
