package admin

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/buildinfo"
	"github.com/pml-mpi/pmlmpi/pkg/slo"
)

// sloWindow pulls one named window out of a /debug/slo response.
func sloWindow(t *testing.T, report slo.Report, label string) slo.Window {
	t.Helper()
	for _, w := range report.Windows {
		if w.Window == label {
			return w
		}
	}
	t.Fatalf("no %q window in %+v", label, report.Windows)
	return slo.Window{}
}

func TestDebugSLOTracksLiveSelects(t *testing.T) {
	srv, tracker := newFullServer(t)

	// Drive live traffic through the selection endpoint; every Select must
	// land in the SLO windows via the selector wiring.
	for i := 0; i < 20; i++ {
		if rec := post(t, srv, "/v1/select", selectBody(t, srv)); rec.Code != http.StatusOK {
			t.Fatalf("select = %d: %s", rec.Code, rec.Body.String())
		}
	}

	rec := get(t, srv, "/debug/slo")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slo = %d", rec.Code)
	}
	var report slo.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	w := sloWindow(t, report, "1m")
	if w.Count != 20 {
		t.Errorf("1m window count = %d, want 20 live selects", w.Count)
	}
	if w.Availability != 1 {
		t.Errorf("availability = %v, want 1", w.Availability)
	}
	// µs-regime selects against a 1ms objective: burn must be ~0.
	if w.LatencyBurnRate > 0.5 {
		t.Errorf("latency burn under healthy fixture workload = %v, want ~0", w.LatencyBurnRate)
	}
	if report.Objectives.SelectP99Seconds != 0.001 {
		t.Errorf("objectives = %+v", report.Objectives)
	}

	// Injected slow selects push the burn rate over 1.
	for i := 0; i < 5; i++ {
		tracker.Record(0.05, true)
	}
	rec = get(t, srv, "/debug/slo")
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	if w := sloWindow(t, report, "1m"); w.LatencyBurnRate <= 1 {
		t.Errorf("burn after injected slow selects = %v, want > 1", w.LatencyBurnRate)
	}
}

// selectBody builds a valid /v1/select body for the synthetic bundle by
// reading its first collective's feature names.
func selectBody(t *testing.T, srv *Server) string {
	t.Helper()
	b := srv.sel.Bundle()
	for name, c := range b.Collectives {
		feats := map[string]float64{}
		for _, f := range c.FeatureNames {
			feats[f] = 8
		}
		req := map[string]any{"collective": name, "features": feats}
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	t.Fatal("bundle has no collectives")
	return ""
}

// TestFailedSelectsBurnAvailability: selector errors must count against the
// availability budget.
func TestFailedSelectsBurnAvailability(t *testing.T) {
	srv, _ := newFullServer(t)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := srv.sel.Select(ctx, "no_such_collective", nil); err == nil {
			t.Fatal("expected error for unknown collective")
		}
	}
	var report slo.Report
	rec := get(t, srv, "/debug/slo")
	if err := json.Unmarshal(rec.Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	w := sloWindow(t, report, "1m")
	if w.Errors != 4 {
		t.Errorf("errors = %d, want 4", w.Errors)
	}
	// 100% errors against a 0.1% budget: burn = 1000.
	if w.AvailabilityBurnRate <= 1 {
		t.Errorf("availability burn = %v, want >> 1", w.AvailabilityBurnRate)
	}
}

func TestMetricsExposeSLOAndBuildInfo(t *testing.T) {
	srv, _ := newFullServer(t)
	if rec := post(t, srv, "/v1/select", selectBody(t, srv)); rec.Code != http.StatusOK {
		t.Fatalf("select = %d", rec.Code)
	}
	body := get(t, srv, "/metrics").Body.String()
	for _, want := range []string{
		"# TYPE pmlmpi_slo_latency_burn_rate gauge",
		`pmlmpi_slo_availability{window="1m"} 1`,
		"pmlmpi_slo_objective_select_p99_seconds",
		`pmlmpi_build_info{version="` + buildinfo.Resolve() + `"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestHealthzReportsVersionAndUptime(t *testing.T) {
	srv, _ := newFullServer(t)
	var h Health
	rec := get(t, srv, "/healthz")
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.ServerVersion != buildinfo.Resolve() {
		t.Errorf("server_version = %q, want %q", h.ServerVersion, buildinfo.Resolve())
	}
	if h.GoVersion == "" {
		t.Error("go_version missing from /healthz")
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", h.UptimeSeconds)
	}
}

// TestDebugSLOAbsentWithoutTracker: the endpoint only mounts when a tracker
// is configured.
func TestDebugSLOAbsentWithoutTracker(t *testing.T) {
	srv, _, _ := newTestServer(t)
	if rec := get(t, srv, "/debug/slo"); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/slo without tracker = %d, want 404", rec.Code)
	}
}
