package admin

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/slo"
)

// newFullServer wires every optional surface (registry, shadow, SLO) so the
// route table is complete.
func newFullServer(t *testing.T) (*Server, *slo.Tracker) {
	t.Helper()
	dir := t.TempDir()
	o := obs.NewForTest()
	sh := registry.NewShadow(o, registry.ShadowConfig{Fraction: 1, Workers: 1})
	r := registry.New(o, registry.Config{Shadow: sh})
	g, err := r.Load(writeSynthBundle(t, dir, "gen1.json", 1))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	tracker := slo.New(o.Registry, slo.Objectives{SelectP99: time.Millisecond, Availability: 0.999})
	sel := selector.NewFromSource(r, o, selector.Config{RingSize: 8, SLO: tracker})
	return New(sel, o, Config{Registry: r, Shadow: sh, SLO: tracker}), tracker
}

// TestEveryRouteEnforcesItsMethod is the method-handling audit: every
// registered route — GET and POST alike, /debug/* included — must answer a
// wrong-method request with 405 and an Allow header naming the one accepted
// method. Iterating Server.Routes() means a newly added endpoint is audited
// automatically.
func TestEveryRouteEnforcesItsMethod(t *testing.T) {
	srv, _ := newFullServer(t)
	routes := srv.Routes()
	if len(routes) < 13 {
		t.Fatalf("route table has %d entries, want every endpoint (>= 13): %+v", len(routes), routes)
	}
	// The table must cover the full debug surface.
	want := map[string]bool{
		"/metrics": false, "/healthz": false,
		"/debug/decisions": false, "/debug/traces": false, "/debug/analytics": false,
		"/debug/shadow": false, "/debug/slo": false,
		"/v1/select": false, "/v1/select/batch": false,
		"/v1/registry": false, "/v1/registry/load": false,
		"/v1/registry/promote": false, "/v1/registry/rollback": false,
	}
	for _, rt := range routes {
		if _, ok := want[rt.Path]; ok {
			want[rt.Path] = true
		}
	}
	for path, seen := range want {
		if !seen {
			t.Errorf("route table missing %s", path)
		}
	}

	wrong := map[string][]string{
		http.MethodGet:  {http.MethodPost, http.MethodPut, http.MethodDelete, http.MethodPatch},
		http.MethodPost: {http.MethodGet, http.MethodPut, http.MethodDelete, http.MethodPatch},
	}
	for _, rt := range routes {
		for _, method := range wrong[rt.Method] {
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, httptest.NewRequest(method, rt.Path, nil))
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, rt.Path, rec.Code)
			}
			if got := rec.Header().Get("Allow"); got != rt.Method {
				t.Errorf("%s %s Allow = %q, want %q", method, rt.Path, got, rt.Method)
			}
		}
	}
}

// TestHeadRidesAlongWithGet: HEAD on a GET route must not 405 (net/http
// drops the body itself).
func TestHeadRidesAlongWithGet(t *testing.T) {
	srv, _ := newFullServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodHead, "/healthz", nil))
	if rec.Code == http.StatusMethodNotAllowed {
		t.Errorf("HEAD /healthz = 405, want it treated as GET")
	}
}
