package obs

import (
	"context"
	"io"
	"time"
)

// Tracer creates lightweight spans. Each completed span feeds the
// pmlmpi_span_duration_seconds histogram (labeled by span name) and, at
// debug level, a structured log record with the wall time and request ID.
type Tracer struct {
	log  *Logger
	hist *Histogram
	now  func() time.Time
}

// NewTracer returns a tracer recording into reg and logging through log.
func NewTracer(reg *Registry, log *Logger) *Tracer {
	return &Tracer{
		log: log,
		hist: reg.Histogram("pmlmpi_span_duration_seconds",
			"Wall time of internal tracing spans.", LatencyBuckets, "span"),
		now: time.Now,
	}
}

// Span is one timed region of work. End it exactly once.
type Span struct {
	tracer *Tracer
	name   string
	parent string
	reqID  string
	start  time.Time
	attrs  []kv
	ended  bool
}

type spanKey struct{}

// Start begins a span named name. The returned context carries the span so
// nested Start calls record their parent.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		name:   name,
		reqID:  RequestIDFrom(ctx),
		start:  t.now(),
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok {
		s.parent = parent.name
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// SetAttr attaches a key/value attribute emitted with the span's log record.
func (s *Span) SetAttr(key string, value any) {
	s.attrs = append(s.attrs, kv{k: key, v: value})
}

// End finishes the span, records its duration into the span histogram, and
// emits a debug log record. It returns the measured duration. Calling End
// more than once is a no-op returning 0.
func (s *Span) End() time.Duration {
	if s.ended {
		return 0
	}
	s.ended = true
	d := s.tracer.now().Sub(s.start)
	s.tracer.hist.Observe(d.Seconds(), s.name)
	if s.tracer.log.Enabled(LevelDebug) {
		pairs := []any{"span", s.name, "duration_us", float64(d.Microseconds())}
		if s.parent != "" {
			pairs = append(pairs, "parent", s.parent)
		}
		if s.reqID != "" {
			pairs = append(pairs, "request_id", s.reqID)
		}
		for _, a := range s.attrs {
			pairs = append(pairs, a.k, a.v)
		}
		s.tracer.log.Debug("span", pairs...)
	}
	return d
}

// Obs bundles the three observability primitives every subsystem needs.
type Obs struct {
	Registry *Registry
	Logger   *Logger
	Tracer   *Tracer
}

// New builds a full observability stack writing logs to w.
func New(w io.Writer, level Level) *Obs {
	reg := NewRegistry()
	log := NewLogger(w, level)
	return &Obs{Registry: reg, Logger: log, Tracer: NewTracer(reg, log)}
}

// NewForTest builds an Obs stack that discards log output.
func NewForTest() *Obs {
	return New(io.Discard, LevelDebug)
}
