package obs

import (
	"context"
	"io"
	"time"
)

// Tracer creates lightweight spans. Each completed span feeds the
// pmlmpi_span_duration_seconds histogram (labeled by span name) and, at
// debug level, a structured log record with the wall time and request ID.
// When a TraceStore is attached and head-based sampling selects a root
// span, the tracer additionally retains the complete span tree — IDs,
// parent links, timings, attributes — for /debug/traces.
type Tracer struct {
	log   *Logger
	hist  *Histogram
	store *TraceStore
	now   func() time.Time
}

// NewTracer returns a tracer recording into reg and logging through log,
// with no trace retention.
func NewTracer(reg *Registry, log *Logger) *Tracer {
	return &Tracer{
		log: log,
		hist: reg.Histogram("pmlmpi_span_duration_seconds",
			"Wall time of internal tracing spans.", LatencyBuckets, "span"),
		now: time.Now,
	}
}

// SetStore attaches the trace store that retains sampled span trees.
func (t *Tracer) SetStore(store *TraceStore) { t.store = store }

// Span is one timed region of work. End it exactly once.
type Span struct {
	tracer   *Tracer
	name     string
	parent   string // parent span name, for the debug log record
	reqID    string
	start    time.Time
	attrs    []kv
	ended    bool
	tb       *traceBuilder // non-nil when this span's trace is sampled
	spanID   string
	parentID string
}

type spanKey struct{}

// Start begins a span named name. The returned context carries the span so
// nested Start calls record their parent. A span with no parent in ctx is a
// trace root: if the tracer's store samples it, the whole tree it anchors is
// retained.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		name:   name,
		reqID:  RequestIDFrom(ctx),
		start:  t.now(),
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok {
		s.parent = parent.name
		if parent.tb != nil {
			s.tb = parent.tb
			s.spanID = parent.tb.spanID()
			s.parentID = parent.spanID
		}
	} else if t.store != nil && t.store.Sample() {
		s.tb = newTraceBuilder(t.store)
		s.spanID = s.tb.spanID()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// TraceID returns the ID of the sampled trace this span belongs to, or ""
// when the span is not sampled.
func (s *Span) TraceID() string {
	if s.tb == nil {
		return ""
	}
	return s.tb.traceID
}

// SetAttr attaches a key/value attribute emitted with the span's log record
// and, when sampled, its trace record.
func (s *Span) SetAttr(key string, value any) {
	s.attrs = append(s.attrs, kv{k: key, v: value})
}

// End finishes the span, records its duration into the span histogram, and
// emits a debug log record. When the span belongs to a sampled trace its
// record is appended to the trace, and ending the root seals the trace into
// the store. It returns the measured duration. Calling End more than once
// is a no-op returning 0.
func (s *Span) End() time.Duration {
	if s.ended {
		return 0
	}
	s.ended = true
	d := s.tracer.now().Sub(s.start)
	s.tracer.hist.Observe(d.Seconds(), s.name)
	if s.tb != nil {
		rec := SpanRecord{
			SpanID:     s.spanID,
			ParentID:   s.parentID,
			Name:       s.name,
			Start:      s.start,
			DurationUS: float64(d.Nanoseconds()) / 1e3,
		}
		if len(s.attrs) > 0 {
			rec.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				rec.Attrs[a.k] = a.v
			}
		}
		s.tb.record(rec)
		if s.parentID == "" {
			s.tb.finish(s, d)
		}
	}
	if s.tracer.log.Enabled(LevelDebug) {
		pairs := []any{"span", s.name, "duration_us", float64(d.Microseconds())}
		if s.parent != "" {
			pairs = append(pairs, "parent", s.parent)
		}
		if s.reqID != "" {
			pairs = append(pairs, "request_id", s.reqID)
		}
		for _, a := range s.attrs {
			pairs = append(pairs, a.k, a.v)
		}
		s.tracer.log.Debug("span", pairs...)
	}
	return d
}

// SampleLeaf reports whether a leaf record (RecordLeaf) for this request
// should be retained, without allocating: inside an already-sampled trace
// it always should; at top level it consumes one head-sampling tick. It
// exists so fast paths can skip building the attribute map entirely when
// the answer is no — with sampling disabled the check is one atomic load.
func (t *Tracer) SampleLeaf(ctx context.Context) bool {
	if t.store == nil || !t.store.enabled() {
		return false
	}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok {
		return parent.tb != nil
	}
	return t.store.Sample()
}

// RecordLeaf retains an already-measured operation as a trace span without
// the Start/End machinery — the cheap instrumentation for fast paths like
// the decision-cache hit. Callers must first win a SampleLeaf roll. Inside
// a sampled trace the record is appended as a child span; at top level it
// becomes a complete single-span trace of its own. attrs must not be
// mutated afterwards.
func (t *Tracer) RecordLeaf(ctx context.Context, name string, start time.Time, d time.Duration, attrs map[string]any) {
	if t.store == nil {
		return
	}
	us := float64(d.Nanoseconds()) / 1e3
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok {
		if parent.tb == nil {
			return
		}
		parent.tb.record(SpanRecord{
			SpanID:     parent.tb.spanID(),
			ParentID:   parent.spanID,
			Name:       name,
			Start:      start,
			DurationUS: us,
			Attrs:      attrs,
		})
		return
	}
	t.store.Add(&Trace{
		TraceID:    NewTraceID(),
		RequestID:  RequestIDFrom(ctx),
		Root:       name,
		Start:      start,
		DurationUS: us,
		Spans: []SpanRecord{{
			SpanID:     "s1",
			Name:       name,
			Start:      start,
			DurationUS: us,
			Attrs:      attrs,
		}},
	})
}

// Obs bundles the observability primitives every subsystem needs.
type Obs struct {
	Registry *Registry
	Logger   *Logger
	Tracer   *Tracer
	Traces   *TraceStore
}

// New builds a full observability stack writing logs to w. The trace store
// starts with DefaultTraceCapacity and sampling disabled; call
// Traces.SetSampleRate (and optionally Traces.SetCapacity) to retain spans.
func New(w io.Writer, level Level) *Obs {
	reg := NewRegistry()
	log := NewLogger(w, level)
	tracer := NewTracer(reg, log)
	store := NewTraceStore(reg, DefaultTraceCapacity)
	tracer.SetStore(store)
	return &Obs{Registry: reg, Logger: log, Tracer: tracer, Traces: store}
}

// NewForTest builds an Obs stack that discards log output.
func NewForTest() *Obs {
	return New(io.Discard, LevelDebug)
}
