package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// windowStripeCount is the number of independent lock stripes in a
// WindowRing, mirroring the histogram design: concurrent recorders spread
// round-robin across stripes so a hot ring never serializes on one mutex,
// and snapshots merge the stripes under their individual locks. Must be a
// power of two.
const windowStripeCount = 8

// WindowRing is a rolling, time-sliced latency/outcome accumulator: a ring
// of fixed-width time slots, each holding bucketed latency counts plus
// total/error tallies. Recording touches exactly one stripe slot (bucket
// index resolved outside the lock); snapshotting merges the slots that fall
// inside a requested trailing window. Slots recycle lazily — a slot is
// reset the first time it is written in a new time period — so an idle ring
// costs nothing. This is the backing store for multi-window SLO tracking.
type WindowRing struct {
	slotDur time.Duration
	slots   int
	bounds  []float64
	now     func() time.Time

	next    atomic.Uint32
	stripes [windowStripeCount]windowStripe
}

type windowStripe struct {
	mu    sync.Mutex
	slots []windowSlot
	// Pad to keep adjacent stripes off the same cache line under
	// concurrent recorders.
	_ [16]byte
}

// windowSlot accumulates one stripe's observations for one absolute time
// slot. idx is the absolute slot index (unix time / slot width) the data
// belongs to; a write with a newer idx resets the slot in place.
type windowSlot struct {
	idx    int64
	count  uint64
	errors uint64
	sum    float64
	counts []uint64 // per-bucket, non-cumulative; last slot is +Inf
}

// NewWindowRing builds a ring of slots slots of slotDur width over the given
// latency bucket bounds (seconds, strictly ascending; nil selects
// LatencyBuckets). The maximum supported window is slotDur*slots.
func NewWindowRing(slotDur time.Duration, slots int, bounds []float64) *WindowRing {
	if slotDur <= 0 {
		slotDur = time.Second
	}
	if slots <= 0 {
		slots = 60
	}
	if bounds == nil {
		bounds = LatencyBuckets
	}
	w := &WindowRing{
		slotDur: slotDur,
		slots:   slots,
		bounds:  append([]float64(nil), bounds...),
		now:     time.Now,
	}
	for i := range w.stripes {
		w.stripes[i].slots = make([]windowSlot, slots)
		for j := range w.stripes[i].slots {
			w.stripes[i].slots[j].idx = -1
			w.stripes[i].slots[j].counts = make([]uint64, len(bounds)+1)
		}
	}
	return w
}

// SetClock replaces the ring's time source, for tests. Call before any
// Record/Snapshot traffic.
func (w *WindowRing) SetClock(now func() time.Time) { w.now = now }

// Bounds returns the ring's bucket upper bounds (shared, read-only).
func (w *WindowRing) Bounds() []float64 { return w.bounds }

// MaxWindow is the longest trailing window the ring can answer.
func (w *WindowRing) MaxWindow() time.Duration { return w.slotDur * time.Duration(w.slots) }

// Record adds one observation (latency in seconds, success flag) to the
// current time slot of one stripe.
func (w *WindowRing) Record(seconds float64, ok bool) {
	abs := w.now().UnixNano() / int64(w.slotDur)
	bucket := sort.SearchFloat64s(w.bounds, seconds)
	st := &w.stripes[w.next.Add(1)&(windowStripeCount-1)]
	st.mu.Lock()
	s := &st.slots[abs%int64(w.slots)]
	if s.idx != abs {
		s.idx = abs
		s.count = 0
		s.errors = 0
		s.sum = 0
		for i := range s.counts {
			s.counts[i] = 0
		}
	}
	s.count++
	if !ok {
		s.errors++
	}
	s.sum += seconds
	s.counts[bucket]++
	st.mu.Unlock()
}

// WindowSnapshot is the merged view of one trailing window.
type WindowSnapshot struct {
	Count  uint64
	Errors uint64
	Sum    float64
	Counts []uint64 // non-cumulative bucket counts, +Inf last
}

// Snapshot merges every slot whose period lies inside the trailing window
// ending now (the current, partially filled slot included). Windows longer
// than MaxWindow are clamped. Stripes are locked one at a time, so the view
// is not a single atomic cut — fine for SLO monitoring, where per-read skew
// of a few in-flight observations is expected.
func (w *WindowRing) Snapshot(window time.Duration) WindowSnapshot {
	absNow := w.now().UnixNano() / int64(w.slotDur)
	n := int64(window / w.slotDur)
	if window%w.slotDur != 0 {
		n++
	}
	if n < 1 {
		n = 1
	}
	if n > int64(w.slots) {
		n = int64(w.slots)
	}
	oldest := absNow - n + 1

	snap := WindowSnapshot{Counts: make([]uint64, len(w.bounds)+1)}
	for i := range w.stripes {
		st := &w.stripes[i]
		st.mu.Lock()
		for j := range st.slots {
			s := &st.slots[j]
			if s.idx < oldest || s.idx > absNow {
				continue
			}
			snap.Count += s.count
			snap.Errors += s.errors
			snap.Sum += s.sum
			for b, c := range s.counts {
				snap.Counts[b] += c
			}
		}
		st.mu.Unlock()
	}
	return snap
}

// Summary rolls the trailing window up into a quantile Summary.
func (w *WindowRing) Summary(window time.Duration) Summary {
	s := w.Snapshot(window)
	return SummaryFromBuckets(w.bounds, s.Counts, s.Sum, s.Count)
}
