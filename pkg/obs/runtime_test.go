package obs

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeCollectorPublishesGauges(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	runtime.GC() // guarantee at least one GC cycle so pause gauges are live
	c.Collect()

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, name := range []string{
		"pmlmpi_go_goroutines",
		"pmlmpi_go_heap_alloc_bytes",
		"pmlmpi_go_heap_sys_bytes",
		"pmlmpi_go_heap_objects",
		"pmlmpi_go_next_gc_bytes",
		"pmlmpi_go_gc_runs",
		"pmlmpi_go_gc_pause_last_seconds",
		"pmlmpi_go_gc_pause_total_seconds",
	} {
		if !strings.Contains(out, "# TYPE "+name+" gauge") {
			t.Errorf("exposition missing gauge %q", name)
		}
	}
	if c.goroutines.Value() < 1 {
		t.Errorf("goroutines gauge = %v, want >= 1", c.goroutines.Value())
	}
	if c.heapAlloc.Value() <= 0 {
		t.Errorf("heap alloc gauge = %v, want > 0", c.heapAlloc.Value())
	}
	if c.gcRuns.Value() < 1 {
		t.Errorf("gc runs gauge = %v, want >= 1 after runtime.GC()", c.gcRuns.Value())
	}
}

func TestRuntimeCollectorRunStopsOnCancel(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		c.Run(ctx, time.Millisecond)
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Run did not stop after cancel")
	}
	if c.goroutines.Value() < 1 {
		t.Error("Run never collected")
	}
}
