package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity level.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel maps a string ("debug", "info", "warn", "error") to a Level,
// defaulting to info on unknown input.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// Logger emits structured JSON lines: one object per record with ts, level,
// msg, and any key/value fields. It is safe for concurrent use.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level *int32
	base  []kv // fields attached via With
	now   func() time.Time
}

type kv struct {
	k string
	v any
}

// NewLogger returns a logger writing JSON lines at or above the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	lv := int32(level)
	return &Logger{mu: &sync.Mutex{}, w: w, level: &lv, now: time.Now}
}

// SetLevel changes the minimum emitted level at runtime.
func (l *Logger) SetLevel(level Level) { atomic.StoreInt32(l.level, int32(level)) }

// Enabled reports whether records at the given level would be emitted.
func (l *Logger) Enabled(level Level) bool { return level >= Level(atomic.LoadInt32(l.level)) }

// With returns a child logger that attaches the given key/value pairs to
// every record. Keys must be strings; pairs are (key, value) interleaved.
func (l *Logger) With(pairs ...any) *Logger {
	child := *l
	child.base = append(append([]kv(nil), l.base...), toKVs(pairs)...)
	return &child
}

// WithCtx returns a logger that attaches the request ID from ctx, if any.
func (l *Logger) WithCtx(ctx context.Context) *Logger {
	if id := RequestIDFrom(ctx); id != "" {
		return l.With("request_id", id)
	}
	return l
}

func (l *Logger) Debug(msg string, pairs ...any) { l.emit(LevelDebug, msg, pairs) }
func (l *Logger) Info(msg string, pairs ...any)  { l.emit(LevelInfo, msg, pairs) }
func (l *Logger) Warn(msg string, pairs ...any)  { l.emit(LevelWarn, msg, pairs) }
func (l *Logger) Error(msg string, pairs ...any) { l.emit(LevelError, msg, pairs) }

func (l *Logger) emit(level Level, msg string, pairs []any) {
	if !l.Enabled(level) {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":"`...)
	buf = append(buf, l.now().UTC().Format(time.RFC3339Nano)...)
	buf = append(buf, `","level":"`...)
	buf = append(buf, level.String()...)
	buf = append(buf, `","msg":`...)
	buf = appendJSON(buf, msg)
	for _, f := range l.base {
		buf = appendField(buf, f.k, f.v)
	}
	for _, f := range toKVs(pairs) {
		buf = appendField(buf, f.k, f.v)
	}
	buf = append(buf, '}', '\n')

	l.mu.Lock()
	l.w.Write(buf)
	l.mu.Unlock()
}

func appendField(buf []byte, k string, v any) []byte {
	buf = append(buf, ',')
	buf = appendJSON(buf, k)
	buf = append(buf, ':')
	return appendJSON(buf, v)
}

func appendJSON(buf []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}

func toKVs(pairs []any) []kv {
	out := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		k, ok := pairs[i].(string)
		if !ok {
			k = fmt.Sprint(pairs[i])
		}
		out = append(out, kv{k: k, v: pairs[i+1]})
	}
	if len(pairs)%2 == 1 {
		out = append(out, kv{k: "arg", v: pairs[len(pairs)-1]})
	}
	return out
}

type requestIDKey struct{}

// reqIDPrefix is a per-process random 8-hex-char prefix; reqIDCounter
// completes each ID. One crypto/rand read at startup instead of one per
// request keeps ID generation off the selection hot path (~µs → ~ns)
// while IDs stay unique per process and collision-resistant across
// processes.
var (
	reqIDPrefix  = newReqIDPrefix()
	reqIDCounter atomic.Uint64
)

func newReqIDPrefix() [8]byte {
	var raw [4]byte
	if _, err := rand.Read(raw[:]); err != nil {
		// Fall back to a timestamp-derived prefix; uniqueness is best-effort.
		binary.LittleEndian.PutUint32(raw[:], uint32(time.Now().UnixNano()))
	}
	var out [8]byte
	hex.Encode(out[:], raw[:])
	return out
}

// NewRequestID returns a fresh 16-hex-char request ID: the process prefix
// followed by a monotonically increasing counter.
func NewRequestID() string {
	var b [16]byte
	copy(b[:8], reqIDPrefix[:])
	n := reqIDCounter.Add(1)
	const digits = "0123456789abcdef"
	for i := 15; i >= 8; i-- {
		b[i] = digits[n&0xf]
		n >>= 4
	}
	return string(b[:])
}

// WithRequestID stores a request ID in ctx, generating one if id is empty.
func WithRequestID(ctx context.Context, id string) (context.Context, string) {
	if id == "" {
		id = NewRequestID()
	}
	return context.WithValue(ctx, requestIDKey{}, id), id
}

// RequestIDFrom returns the request ID stored in ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	if id, ok := ctx.Value(requestIDKey{}).(string); ok {
		return id
	}
	return ""
}
