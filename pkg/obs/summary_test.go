package obs

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// trueQuantile returns the empirical q-quantile of samples (nearest-rank).
func trueQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// bucketIndex returns which bucket (0..len(bounds), last = +Inf) v falls in.
func bucketIndex(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// TestSummaryQuantilesWithinOneBucket is the property test for bucket
// quantile estimation: for random sample sets, every estimated quantile
// must land in the same bucket as the true sample quantile or an adjacent
// one — i.e. the estimate is within one bucket boundary of the truth.
func TestSummaryQuantilesWithinOneBucket(t *testing.T) {
	bounds := LatencyBuckets
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(2000)
		samples := make([]float64, n)
		for i := range samples {
			// Log-uniform across 1µs..0.5s so every bucket regime gets hit
			// across seeds, plus occasional heavy-tail outliers.
			exp := -6 + rng.Float64()*5.7
			samples[i] = math.Pow(10, exp)
			if rng.Float64() < 0.01 {
				samples[i] = 0.3 + rng.Float64()
			}
		}
		counts, sum := BucketCounts(bounds, samples)
		s := SummaryFromBuckets(bounds, counts, sum, uint64(n))

		sorted := append([]float64(nil), samples...)
		sort.Float64s(sorted)
		for _, tc := range []struct {
			q   float64
			est float64
		}{
			{0.50, s.P50US / 1e6},
			{0.90, s.P90US / 1e6},
			{0.99, s.P99US / 1e6},
			{0.999, s.P999US / 1e6},
		} {
			truth := trueQuantile(sorted, tc.q)
			bTrue := bucketIndex(bounds, truth)
			bEst := bucketIndex(bounds, tc.est)
			if d := bEst - bTrue; d < -1 || d > 1 {
				t.Errorf("seed %d q=%v: estimate %.3gs in bucket %d, true %.3gs in bucket %d (off by %d buckets)",
					seed, tc.q, tc.est, bEst, truth, bTrue, d)
			}
		}
		if s.Count != uint64(n) {
			t.Errorf("seed %d: count = %d, want %d", seed, s.Count, n)
		}
		if math.Abs(s.SumSeconds-sum) > 1e-9 {
			t.Errorf("seed %d: sum = %v, want %v", seed, s.SumSeconds, sum)
		}
	}
}

// TestSummaryQuantilesMonotone pins p50 <= p90 <= p99 <= p999 for random
// bucket fills — the invariant every report consumer leans on.
func TestSummaryQuantilesMonotone(t *testing.T) {
	bounds := LatencyBuckets
	for seed := int64(100); seed < 130; seed++ {
		rng := rand.New(rand.NewSource(seed))
		counts := make([]uint64, len(bounds)+1)
		var total uint64
		for i := range counts {
			c := uint64(rng.Intn(50))
			counts[i] = c
			total += c
		}
		if total == 0 {
			continue
		}
		s := SummaryFromBuckets(bounds, counts, 1, total)
		if !(s.P50US <= s.P90US && s.P90US <= s.P99US && s.P99US <= s.P999US) {
			t.Errorf("seed %d: quantiles not monotone: %+v", seed, s)
		}
	}
}

// TestSummaryGoldenJSON pins the exact JSON field set and naming of
// obs.Summary — the shape BENCH_loadgen.json and /debug/slo embed. Changing
// this is a report-schema break and must be deliberate.
func TestSummaryGoldenJSON(t *testing.T) {
	s := Summary{
		Count:      1000,
		SumSeconds: 1.25,
		MeanUS:     1250,
		P50US:      900.5,
		P90US:      2400,
		P99US:      8100.25,
		P999US:     20000,
	}
	got, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"count":1000,"sum_seconds":1.25,"mean_us":1250,"p50_us":900.5,"p90_us":2400,"p99_us":8100.25,"p999_us":20000}`
	if string(got) != want {
		t.Errorf("Summary JSON shape changed:\n got %s\nwant %s", got, want)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := SummaryFromBuckets(LatencyBuckets, make([]uint64, len(LatencyBuckets)+1), 0, 0)
	if s != (Summary{}) {
		t.Errorf("empty summary = %+v, want zero value", s)
	}
}

// TestSummaryInfBucketClamps pins the +Inf behavior: with all mass beyond
// the last finite bound, quantiles report that bound rather than inventing
// numbers.
func TestSummaryInfBucketClamps(t *testing.T) {
	counts := make([]uint64, len(LatencyBuckets)+1)
	counts[len(counts)-1] = 10
	s := SummaryFromBuckets(LatencyBuckets, counts, 50, 10)
	last := LatencyBuckets[len(LatencyBuckets)-1] * 1e6
	if s.P50US != last || s.P999US != last {
		t.Errorf("inf-bucket quantiles = %v/%v, want clamp to %v", s.P50US, s.P999US, last)
	}
}

func TestHistogramSummary(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_hist", "test", LatencyBuckets, "path")
	for i := 0; i < 100; i++ {
		h.Observe(2e-6, "a") // well inside bucket (1µs, 2.5µs]
	}
	s := h.Summary("a")
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50US < 1 || s.P50US > 2.5 {
		t.Errorf("p50 = %vµs, want within the (1, 2.5]µs bucket", s.P50US)
	}
	if other := h.Summary("b"); other.Count != 0 {
		t.Errorf("untouched series count = %d", other.Count)
	}
}
