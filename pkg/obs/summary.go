package obs

import "sort"

// Summary is a compact latency rollup computed from histogram bucket counts:
// total count, sum, and bucket-interpolated quantiles. It is the shared
// report currency of the observability stack — the SLO tracker, the loadgen
// report, and tests all speak Summary, so client-side and server-side
// measurements of the same traffic are directly comparable.
//
// Quantiles are estimated Prometheus histogram_quantile style: find the
// bucket holding the target rank and interpolate linearly between its
// bounds, so each estimate carries at most one bucket boundary of error.
// Fields mirror /debug/analytics conventions: quantiles and the mean in
// microseconds, the sum in seconds.
type Summary struct {
	Count      uint64  `json:"count"`
	SumSeconds float64 `json:"sum_seconds"`
	MeanUS     float64 `json:"mean_us"`
	P50US      float64 `json:"p50_us"`
	P90US      float64 `json:"p90_us"`
	P99US      float64 `json:"p99_us"`
	P999US     float64 `json:"p999_us"`
}

// SummaryFromBuckets computes a Summary from non-cumulative bucket counts.
// bounds are the finite bucket upper bounds (strictly ascending, seconds);
// counts must have len(bounds)+1 slots, the last being the +Inf bucket.
// A zero count yields the zero Summary. Observations in the +Inf bucket
// clamp to the last finite bound — the best available estimate without a
// tracked max.
func SummaryFromBuckets(bounds []float64, counts []uint64, sum float64, count uint64) Summary {
	if count == 0 {
		return Summary{}
	}
	s := Summary{
		Count:      count,
		SumSeconds: sum,
		MeanUS:     sum / float64(count) * 1e6,
		P50US:      bucketQuantile(bounds, counts, count, 0.50) * 1e6,
		P90US:      bucketQuantile(bounds, counts, count, 0.90) * 1e6,
		P99US:      bucketQuantile(bounds, counts, count, 0.99) * 1e6,
		P999US:     bucketQuantile(bounds, counts, count, 0.999) * 1e6,
	}
	return s
}

// bucketQuantile estimates the q-quantile (0 < q < 1) in seconds from
// non-cumulative bucket counts (last slot +Inf).
func bucketQuantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	rank := q * float64(total)
	cum := uint64(0)
	for i, n := range counts {
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		if n == 0 {
			return upper
		}
		frac := (rank - float64(cum-n)) / float64(n)
		return lower + (upper-lower)*frac
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// Snapshot returns one series' non-cumulative bucket counts (+Inf last),
// observation sum, and observation count.
func (h *Histogram) Snapshot(labelValues ...string) (counts []uint64, sum float64, count uint64) {
	return h.f.get(labelValues).hist.snapshot(len(h.f.buckets))
}

// Summary rolls one series up into a quantile Summary.
func (h *Histogram) Summary(labelValues ...string) Summary {
	counts, sum, count := h.Snapshot(labelValues...)
	return SummaryFromBuckets(h.f.buckets, counts, sum, count)
}

// BucketCounts converts a sample set into the non-cumulative bucket-count
// layout SummaryFromBuckets expects (len(bounds)+1 slots, +Inf last).
// Mainly for tests and offline summarization of raw latency slices.
func BucketCounts(bounds []float64, samples []float64) (counts []uint64, sum float64) {
	counts = make([]uint64, len(bounds)+1)
	for _, v := range samples {
		counts[sort.SearchFloat64s(bounds, v)]++
		sum += v
	}
	return counts, sum
}
