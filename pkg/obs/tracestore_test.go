package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func newTestTracer(rate float64, capacity int) (*Tracer, *TraceStore) {
	reg := NewRegistry()
	tr := NewTracer(reg, NewLogger(discardWriter{}, LevelError))
	store := NewTraceStore(reg, capacity)
	store.SetSampleRate(rate)
	tr.SetStore(store)
	return tr, store
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestSampledRootRetainsCompleteSpanTree(t *testing.T) {
	tr, store := newTestTracer(1.0, 8)

	ctx, _ := WithRequestID(context.Background(), "req-42")
	ctx, root := tr.Start(ctx, "selector.decide")
	root.SetAttr("collective", "alltoall")

	cctx, extract := tr.Start(ctx, "feature.extract")
	extract.End()
	_ = cctx

	ectx, eval := tr.Start(ctx, "forest.eval")
	_, inner := tr.Start(ectx, "forest.eval.chunk")
	inner.End()
	eval.End()
	root.End()

	if store.Len() != 1 {
		t.Fatalf("store holds %d traces, want 1", store.Len())
	}
	id := root.TraceID()
	if id == "" {
		t.Fatal("sampled root has no trace ID")
	}
	trace, ok := store.Get(id)
	if !ok {
		t.Fatalf("trace %q not fetchable", id)
	}
	if trace.Root != "selector.decide" || trace.RequestID != "req-42" {
		t.Errorf("trace = root %q request %q", trace.Root, trace.RequestID)
	}
	if len(trace.Spans) != 4 {
		t.Fatalf("trace has %d spans, want 4: %+v", len(trace.Spans), trace.Spans)
	}

	// Rebuild parentage: every child's ParentID must resolve to a span in
	// the same trace, and the root is the only span with no parent.
	byID := map[string]SpanRecord{}
	for _, s := range trace.Spans {
		byID[s.SpanID] = s
	}
	parents := map[string]string{} // name -> parent name
	roots := 0
	for _, s := range trace.Spans {
		if s.ParentID == "" {
			roots++
			continue
		}
		p, ok := byID[s.ParentID]
		if !ok {
			t.Fatalf("span %q has dangling parent %q", s.Name, s.ParentID)
		}
		parents[s.Name] = p.Name
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want 1", roots)
	}
	want := map[string]string{
		"feature.extract":   "selector.decide",
		"forest.eval":       "selector.decide",
		"forest.eval.chunk": "forest.eval",
	}
	for name, parent := range want {
		if parents[name] != parent {
			t.Errorf("span %q parent = %q, want %q", name, parents[name], parent)
		}
	}
	// Root attrs survive into the record.
	if rec := byID[trace.Spans[len(trace.Spans)-1].SpanID]; rec.Name == "selector.decide" {
		if rec.Attrs["collective"] != "alltoall" {
			t.Errorf("root attrs = %v", rec.Attrs)
		}
	}
}

func TestUnsampledRootRetainsNothing(t *testing.T) {
	tr, store := newTestTracer(0, 8) // sampling disabled
	ctx, root := tr.Start(context.Background(), "selector.decide")
	_, child := tr.Start(ctx, "forest.eval")
	child.End()
	root.End()
	if root.TraceID() != "" {
		t.Error("unsampled root has a trace ID")
	}
	if store.Len() != 0 {
		t.Errorf("store holds %d traces, want 0", store.Len())
	}
}

func TestSampleRateOneInN(t *testing.T) {
	tr, store := newTestTracer(0.25, 64) // every 4th root
	for i := 0; i < 40; i++ {
		_, root := tr.Start(context.Background(), "op")
		root.End()
	}
	if got := store.Len(); got != 10 {
		t.Errorf("sampled %d of 40 roots at rate 0.25, want 10", got)
	}
	if store.SampleRate() != 0.25 {
		t.Errorf("SampleRate = %v", store.SampleRate())
	}
}

func TestTraceRingEvictsOldest(t *testing.T) {
	tr, store := newTestTracer(1.0, 3)
	var ids []string
	for i := 0; i < 5; i++ {
		_, root := tr.Start(context.Background(), fmt.Sprintf("op%d", i))
		ids = append(ids, root.TraceID())
		root.End()
	}
	if store.Len() != 3 {
		t.Fatalf("store holds %d traces, want capacity 3", store.Len())
	}
	for _, old := range ids[:2] {
		if _, ok := store.Get(old); ok {
			t.Errorf("evicted trace %q still fetchable", old)
		}
	}
	list := store.List(0)
	if len(list) != 3 {
		t.Fatalf("List returned %d summaries", len(list))
	}
	// Newest first.
	if list[0].Root != "op4" || list[2].Root != "op2" {
		t.Errorf("List order = %q..%q, want op4..op2", list[0].Root, list[2].Root)
	}
	if got := store.List(1); len(got) != 1 || got[0].Root != "op4" {
		t.Errorf("List(1) = %+v", got)
	}
}

func TestRecordLeafStandalone(t *testing.T) {
	tr, store := newTestTracer(1.0, 8)
	ctx, _ := WithRequestID(context.Background(), "req-leaf")
	if !tr.SampleLeaf(ctx) {
		t.Fatal("SampleLeaf at rate 1.0 must sample")
	}
	start := time.Now()
	tr.RecordLeaf(ctx, "selector.cache_hit", start, 800*time.Nanosecond,
		map[string]any{"collective": "allgather"})

	list := store.List(0)
	if len(list) != 1 || list[0].Root != "selector.cache_hit" || list[0].Spans != 1 {
		t.Fatalf("leaf trace summary = %+v", list)
	}
	trace, _ := store.Get(list[0].TraceID)
	if trace.RequestID != "req-leaf" || trace.Spans[0].Attrs["collective"] != "allgather" {
		t.Errorf("leaf trace = %+v", trace)
	}
	if trace.DurationUS <= 0 {
		t.Error("leaf duration not recorded")
	}
}

func TestRecordLeafJoinsSampledParentTrace(t *testing.T) {
	tr, store := newTestTracer(1.0, 8)
	ctx, root := tr.Start(context.Background(), "selector.batch")
	if !tr.SampleLeaf(ctx) {
		t.Fatal("leaf under a sampled root must sample")
	}
	tr.RecordLeaf(ctx, "selector.cache_hit", time.Now(), time.Microsecond, nil)
	root.End()

	if store.Len() != 1 {
		t.Fatalf("store holds %d traces, want the one batch trace", store.Len())
	}
	trace, _ := store.Get(root.TraceID())
	if len(trace.Spans) != 2 {
		t.Fatalf("trace has %d spans, want 2", len(trace.Spans))
	}
	leaf := trace.Spans[0]
	if leaf.Name != "selector.cache_hit" || leaf.ParentID == "" {
		t.Errorf("leaf span = %+v, want child of batch root", leaf)
	}
}

func TestRecordLeafUnderUnsampledParentIsDropped(t *testing.T) {
	tr, store := newTestTracer(0, 8)
	ctx, root := tr.Start(context.Background(), "selector.batch")
	if tr.SampleLeaf(ctx) {
		t.Fatal("SampleLeaf with sampling disabled must not sample")
	}
	tr.RecordLeaf(ctx, "selector.cache_hit", time.Now(), time.Microsecond, nil)
	root.End()
	if store.Len() != 0 {
		t.Errorf("store holds %d traces, want 0", store.Len())
	}
}

func TestTraceTruncationCap(t *testing.T) {
	tr, store := newTestTracer(1.0, 2)
	ctx, root := tr.Start(context.Background(), "big")
	for i := 0; i < MaxSpansPerTrace+10; i++ {
		_, s := tr.Start(ctx, "child")
		s.End()
	}
	root.End()
	trace, ok := store.Get(root.TraceID())
	if !ok {
		t.Fatal("truncated trace not stored")
	}
	if !trace.Truncated {
		t.Error("trace not marked truncated")
	}
	if len(trace.Spans) > MaxSpansPerTrace {
		t.Errorf("trace retained %d spans, cap is %d", len(trace.Spans), MaxSpansPerTrace)
	}
}

func TestSetCapacityDropsRetained(t *testing.T) {
	tr, store := newTestTracer(1.0, 4)
	_, root := tr.Start(context.Background(), "op")
	root.End()
	store.SetCapacity(16)
	if store.Len() != 0 {
		t.Errorf("resize kept %d traces", store.Len())
	}
	_, root = tr.Start(context.Background(), "op2")
	root.End()
	if store.Len() != 1 {
		t.Errorf("store broken after resize: %d traces", store.Len())
	}
}
