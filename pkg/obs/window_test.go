package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable time source for WindowRing tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowRingRecordAndSnapshot(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowRing(time.Second, 60, LatencyBuckets)
	w.SetClock(clk.now)

	for i := 0; i < 10; i++ {
		w.Record(1e-5, true)
	}
	w.Record(0.2, false)

	snap := w.Snapshot(time.Minute)
	if snap.Count != 11 || snap.Errors != 1 {
		t.Fatalf("count/errors = %d/%d, want 11/1", snap.Count, snap.Errors)
	}
	s := w.Summary(time.Minute)
	if s.Count != 11 {
		t.Fatalf("summary count = %d", s.Count)
	}
	if s.P50US < 5 || s.P50US > 10 {
		t.Errorf("p50 = %vµs, want inside the (5, 10]µs bucket", s.P50US)
	}
}

// TestWindowRingExpiry pins the rolling behavior: observations leave a
// short window as the clock passes, while a longer window still sees them.
func TestWindowRingExpiry(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowRing(time.Second, 600, nil)
	w.SetClock(clk.now)

	w.Record(1e-4, false)
	clk.advance(90 * time.Second)
	w.Record(1e-5, true)

	oneMin := w.Snapshot(time.Minute)
	if oneMin.Count != 1 || oneMin.Errors != 0 {
		t.Errorf("1m window = %d/%d errors, want only the fresh success", oneMin.Count, oneMin.Errors)
	}
	fiveMin := w.Snapshot(5 * time.Minute)
	if fiveMin.Count != 2 || fiveMin.Errors != 1 {
		t.Errorf("5m window = %d/%d errors, want both observations", fiveMin.Count, fiveMin.Errors)
	}
}

// TestWindowRingSlotRecycling pins that a slot written in a new period
// drops its stale contents instead of merging epochs.
func TestWindowRingSlotRecycling(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowRing(time.Second, 4, nil) // tiny ring: 4s capacity
	w.SetClock(clk.now)

	for i := 0; i < 100; i++ {
		w.Record(1e-5, true)
	}
	// One full ring revolution later, the old slot indices are reused.
	clk.advance(4 * time.Second)
	w.Record(1e-5, true)

	snap := w.Snapshot(4 * time.Second)
	if snap.Count != 1 {
		t.Errorf("post-revolution count = %d, want 1 (stale epoch must not leak)", snap.Count)
	}
}

func TestWindowRingClampsToCapacity(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowRing(time.Second, 10, nil)
	w.SetClock(clk.now)
	w.Record(1e-5, true)
	// Asking for more than MaxWindow must clamp, not panic or wrap.
	if got := w.Snapshot(time.Hour).Count; got != 1 {
		t.Errorf("clamped snapshot count = %d, want 1", got)
	}
	if w.MaxWindow() != 10*time.Second {
		t.Errorf("MaxWindow = %v", w.MaxWindow())
	}
}

func TestWindowRingConcurrent(t *testing.T) {
	w := NewWindowRing(time.Second, 60, nil)
	var wg sync.WaitGroup
	const goroutines, perG = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Record(1e-5, i%10 != 0)
			}
		}()
	}
	wg.Wait()
	snap := w.Snapshot(time.Minute)
	if snap.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", snap.Count, goroutines*perG)
	}
	if snap.Errors != goroutines*perG/10 {
		t.Errorf("errors = %d, want %d", snap.Errors, goroutines*perG/10)
	}
}
