// Package obs is the observability core for PML-MPI: a dependency-free
// metrics registry with Prometheus text exposition, structured JSON
// logging, and lightweight tracing spans. Every subsystem (bundle loading,
// forest inference, selection) reports through this package so that the
// admin surface can expose a single consistent view.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the fixed histogram buckets (in seconds) used for all
// latency instruments. They span 1µs..1s, which covers both sub-microsecond
// tree walks and pathological cold-start loads.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

// ExponentialBuckets returns count bucket upper bounds starting at start and
// multiplying by factor for each subsequent bound (start, start*factor,
// start*factor², …). It panics on a non-positive start, a factor <= 1, or a
// non-positive count, since those can never produce a valid ascending bucket
// layout.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if start <= 0 {
		panic(fmt.Sprintf("obs: ExponentialBuckets start must be positive, got %v", start))
	}
	if factor <= 1 {
		panic(fmt.Sprintf("obs: ExponentialBuckets factor must be > 1, got %v", factor))
	}
	if count < 1 {
		panic(fmt.Sprintf("obs: ExponentialBuckets count must be positive, got %d", count))
	}
	out := make([]float64, count)
	ub := start
	for i := range out {
		out[i] = ub
		ub *= factor
	}
	return out
}

// validBuckets reports whether bounds are strictly ascending and finite.
func validBuckets(bounds []float64) bool {
	for i, ub := range bounds {
		if math.IsNaN(ub) || math.IsInf(ub, 0) {
			return false
		}
		if i > 0 && ub <= bounds[i-1] {
			return false
		}
	}
	return true
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds all metric families. The zero value is not usable; create
// one with NewRegistry. Registration is idempotent: asking for an existing
// family with an identical shape returns the existing instrument.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	labelValues []string
	value       float64    // counters and gauges, guarded by family.mu
	hist        *histState // histograms only; has its own striped locks
}

// histStripeCount is the number of independent lock stripes per histogram
// series. Concurrent observers are spread round-robin across stripes so a
// hot series never serializes on one mutex; the exposition path merges the
// stripes under their individual locks. Must be a power of two.
const histStripeCount = 8

// histState is the lock-striped backing store of one histogram series.
type histState struct {
	next    atomic.Uint32
	stripes [histStripeCount]histStripe
}

type histStripe struct {
	mu     sync.Mutex
	sum    float64
	count  uint64
	counts []uint64 // per-bucket, non-cumulative; last slot is +Inf
	// Pad each stripe to its own cache line so adjacent stripes don't
	// false-share under concurrent observers.
	_ [16]byte
}

func newHistState(nBuckets int) *histState {
	st := &histState{}
	for i := range st.stripes {
		st.stripes[i].counts = make([]uint64, nBuckets+1) // +1 for +Inf
	}
	return st
}

// observe records v into one stripe. The bucket index is resolved outside
// the lock; only the chosen stripe is held, and only for three field writes.
func (st *histState) observe(buckets []float64, v float64) {
	idx := sort.SearchFloat64s(buckets, v) // first bound >= v, i.e. v <= bound
	s := &st.stripes[st.next.Add(1)&(histStripeCount-1)]
	s.mu.Lock()
	s.counts[idx]++
	s.sum += v
	s.count++
	s.mu.Unlock()
}

// snapshot merges all stripes into one view. Stripes are locked one at a
// time, so the merged view is not a single atomic cut — fine for
// monitoring, where per-scrape skew of a few in-flight observations is
// expected.
func (st *histState) snapshot(nBuckets int) (counts []uint64, sum float64, count uint64) {
	counts = make([]uint64, nBuckets+1)
	for i := range st.stripes {
		s := &st.stripes[i]
		s.mu.Lock()
		for b, c := range s.counts {
			counts[b] += c
		}
		sum += s.sum
		count += s.count
		s.mu.Unlock()
	}
	return counts, sum, count
}

func (r *Registry) register(name, help, typ string, buckets []float64, labelNames []string) *family {
	if typ == typeHistogram && !validBuckets(buckets) {
		panic(fmt.Sprintf("obs: metric %q has invalid buckets %v (must be strictly ascending and finite)", name, buckets))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different shape", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// FamilyNames returns the sorted names of every registered metric family.
func (r *Registry) FamilyNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.typ == typeHistogram {
			s.hist = newHistState(len(f.buckets))
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing metric, optionally labeled.
type Counter struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *Counter {
	return &Counter{f: r.register(name, help, typeCounter, nil, labelNames)}
}

// Inc increments the counter series identified by labelValues by 1.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add increments the counter series by delta. Negative deltas panic.
func (c *Counter) Add(delta float64, labelValues ...string) {
	if delta < 0 {
		panic("obs: counter decrease")
	}
	s := c.f.get(labelValues)
	c.f.mu.Lock()
	s.value += delta
	c.f.mu.Unlock()
}

// Value returns the current value of one series (mainly for tests).
func (c *Counter) Value(labelValues ...string) float64 {
	s := c.f.get(labelValues)
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return s.value
}

// BoundCounter is a counter pinned to one label combination. Binding once
// and incrementing the bound handle skips the per-call label join and
// series map lookup — for hot paths that hit the same series repeatedly.
type BoundCounter struct {
	f *family
	s *series
}

// Bind resolves (creating if needed) the series for labelValues.
func (c *Counter) Bind(labelValues ...string) BoundCounter {
	return BoundCounter{f: c.f, s: c.f.get(labelValues)}
}

// Inc increments the bound series by 1.
func (b BoundCounter) Inc() {
	b.f.mu.Lock()
	b.s.value++
	b.f.mu.Unlock()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *Gauge {
	return &Gauge{f: r.register(name, help, typeGauge, nil, labelNames)}
}

// Set sets the gauge series to v.
func (g *Gauge) Set(v float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value = v
	g.f.mu.Unlock()
}

// Add adds delta to the gauge series.
func (g *Gauge) Add(delta float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value += delta
	g.f.mu.Unlock()
}

// Value returns the current value of one series (mainly for tests).
func (g *Gauge) Value(labelValues ...string) float64 {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return s.value
}

// Histogram is a fixed-bucket distribution metric.
type Histogram struct{ f *family }

// Histogram registers (or fetches) a histogram family with the given
// bucket upper bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return &Histogram{f: r.register(name, help, typeHistogram, buckets, labelNames)}
}

// Observe records one observation into the series identified by labelValues.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	h.f.get(labelValues).hist.observe(h.f.buckets, v)
}

// Buckets returns a copy of the family's bucket upper bounds.
func (h *Histogram) Buckets() []float64 {
	return append([]float64(nil), h.f.buckets...)
}

// BoundHistogram is a histogram pinned to one label combination; see
// BoundCounter for the rationale.
type BoundHistogram struct {
	f *family
	s *series
}

// Bind resolves (creating if needed) the series for labelValues.
func (h *Histogram) Bind(labelValues ...string) BoundHistogram {
	return BoundHistogram{f: h.f, s: h.f.get(labelValues)}
}

// Observe records one observation into the bound series.
func (b BoundHistogram) Observe(v float64) {
	b.s.hist.observe(b.f.buckets, v)
}

// Count returns the total observation count of one series (mainly for tests).
func (h *Histogram) Count(labelValues ...string) uint64 {
	_, _, count := h.f.get(labelValues).hist.snapshot(len(h.f.buckets))
	return count
}

// Sum returns the observation sum of one series (mainly for tests).
func (h *Histogram) Sum(labelValues ...string) float64 {
	_, sum, _ := h.f.get(labelValues).hist.snapshot(len(h.f.buckets))
	return sum
}

// WritePrometheus writes every registered family in Prometheus text
// exposition format (version 0.0.4), with families and series sorted for
// deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		s := f.series[k]
		switch f.typ {
		case typeCounter, typeGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labelNames, s.labelValues, "", ""), formatFloat(s.value))
		case typeHistogram:
			counts, sum, count := s.hist.snapshot(len(f.buckets))
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, s.labelValues, "le", formatFloat(ub)), cum)
			}
			cum += counts[len(f.buckets)]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labelNames, s.labelValues, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labelNames, s.labelValues, "", ""), formatFloat(sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labelNames, s.labelValues, "", ""), count)
		}
	}
	f.mu.Unlock()
}

func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
