// Package obs is the observability core for PML-MPI: a dependency-free
// metrics registry with Prometheus text exposition, structured JSON
// logging, and lightweight tracing spans. Every subsystem (bundle loading,
// forest inference, selection) reports through this package so that the
// admin surface can expose a single consistent view.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LatencyBuckets are the fixed histogram buckets (in seconds) used for all
// latency instruments. They span 1µs..1s, which covers both sub-microsecond
// tree walks and pathological cold-start loads.
var LatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1,
}

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Registry holds all metric families. The zero value is not usable; create
// one with NewRegistry. Registration is idempotent: asking for an existing
// family with an identical shape returns the existing instrument.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	labelValues []string
	value       float64   // counters and gauges
	counts      []uint64  // histogram per-bucket (non-cumulative)
	sum         float64   // histogram sum
	count       uint64    // histogram count
}

func (r *Registry) register(name, help, typ string, buckets []float64, labelNames []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different shape", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// FamilyNames returns the sorted names of every registered metric family.
func (r *Registry) FamilyNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (f *family) get(labelValues []string) *series {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{labelValues: append([]string(nil), labelValues...)}
		if f.typ == typeHistogram {
			s.counts = make([]uint64, len(f.buckets)+1) // +1 for +Inf
		}
		f.series[key] = s
	}
	return s
}

// Counter is a monotonically increasing metric, optionally labeled.
type Counter struct{ f *family }

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *Counter {
	return &Counter{f: r.register(name, help, typeCounter, nil, labelNames)}
}

// Inc increments the counter series identified by labelValues by 1.
func (c *Counter) Inc(labelValues ...string) { c.Add(1, labelValues...) }

// Add increments the counter series by delta. Negative deltas panic.
func (c *Counter) Add(delta float64, labelValues ...string) {
	if delta < 0 {
		panic("obs: counter decrease")
	}
	s := c.f.get(labelValues)
	c.f.mu.Lock()
	s.value += delta
	c.f.mu.Unlock()
}

// Value returns the current value of one series (mainly for tests).
func (c *Counter) Value(labelValues ...string) float64 {
	s := c.f.get(labelValues)
	c.f.mu.Lock()
	defer c.f.mu.Unlock()
	return s.value
}

// BoundCounter is a counter pinned to one label combination. Binding once
// and incrementing the bound handle skips the per-call label join and
// series map lookup — for hot paths that hit the same series repeatedly.
type BoundCounter struct {
	f *family
	s *series
}

// Bind resolves (creating if needed) the series for labelValues.
func (c *Counter) Bind(labelValues ...string) BoundCounter {
	return BoundCounter{f: c.f, s: c.f.get(labelValues)}
}

// Inc increments the bound series by 1.
func (b BoundCounter) Inc() {
	b.f.mu.Lock()
	b.s.value++
	b.f.mu.Unlock()
}

// Gauge is a metric that can go up and down.
type Gauge struct{ f *family }

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *Gauge {
	return &Gauge{f: r.register(name, help, typeGauge, nil, labelNames)}
}

// Set sets the gauge series to v.
func (g *Gauge) Set(v float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value = v
	g.f.mu.Unlock()
}

// Add adds delta to the gauge series.
func (g *Gauge) Add(delta float64, labelValues ...string) {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	s.value += delta
	g.f.mu.Unlock()
}

// Value returns the current value of one series (mainly for tests).
func (g *Gauge) Value(labelValues ...string) float64 {
	s := g.f.get(labelValues)
	g.f.mu.Lock()
	defer g.f.mu.Unlock()
	return s.value
}

// Histogram is a fixed-bucket distribution metric.
type Histogram struct{ f *family }

// Histogram registers (or fetches) a histogram family with the given
// bucket upper bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *Histogram {
	if len(buckets) == 0 {
		buckets = LatencyBuckets
	}
	return &Histogram{f: r.register(name, help, typeHistogram, buckets, labelNames)}
}

// Observe records one observation into the series identified by labelValues.
func (h *Histogram) Observe(v float64, labelValues ...string) {
	observeSeries(h.f, h.f.get(labelValues), v)
}

func observeSeries(f *family, s *series, v float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	idx := len(f.buckets) // +Inf slot
	for i, ub := range f.buckets {
		if v <= ub {
			idx = i
			break
		}
	}
	s.counts[idx]++
	s.sum += v
	s.count++
}

// BoundHistogram is a histogram pinned to one label combination; see
// BoundCounter for the rationale.
type BoundHistogram struct {
	f *family
	s *series
}

// Bind resolves (creating if needed) the series for labelValues.
func (h *Histogram) Bind(labelValues ...string) BoundHistogram {
	return BoundHistogram{f: h.f, s: h.f.get(labelValues)}
}

// Observe records one observation into the bound series.
func (b BoundHistogram) Observe(v float64) {
	observeSeries(b.f, b.s, v)
}

// Count returns the total observation count of one series (mainly for tests).
func (h *Histogram) Count(labelValues ...string) uint64 {
	s := h.f.get(labelValues)
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return s.count
}

// WritePrometheus writes every registered family in Prometheus text
// exposition format (version 0.0.4), with families and series sorted for
// deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	for _, k := range keys {
		s := f.series[k]
		switch f.typ {
		case typeCounter, typeGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labelNames, s.labelValues, "", ""), formatFloat(s.value))
		case typeHistogram:
			cum := uint64(0)
			for i, ub := range f.buckets {
				cum += s.counts[i]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					labelString(f.labelNames, s.labelValues, "le", formatFloat(ub)), cum)
			}
			cum += s.counts[len(f.buckets)]
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelString(f.labelNames, s.labelValues, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labelNames, s.labelValues, "", ""), formatFloat(s.sum))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labelNames, s.labelValues, "", ""), s.count)
		}
	}
	f.mu.Unlock()
}

func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, n := range names {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
