package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "Requests.", "path", "code")
	c.Inc("/metrics", "200")
	c.Add(2, "/healthz", "200")
	g := reg.Gauge("test_loaded", "Loaded flag.")
	g.Set(1)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# HELP test_requests_total Requests.",
		"# TYPE test_requests_total counter",
		`test_requests_total{path="/healthz",code="200"} 2`,
		`test_requests_total{path="/metrics",code="200"} 1`,
		"# TYPE test_loaded gauge",
		"test_loaded 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterIsIdempotentlyRegistered(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "x", "l")
	b := reg.Counter("dup_total", "x", "l")
	a.Inc("v")
	b.Inc("v")
	if got := a.Value("v"); got != 2 {
		t.Fatalf("shared counter value = %v, want 2", got)
	}
}

func TestRegisterConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("shape_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on re-registration with a different type")
		}
	}()
	reg.Gauge("shape_total", "x")
}

func TestHistogramBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "op")
	h.Observe(0.005, "sel") // bucket 0.01
	h.Observe(0.05, "sel")  // bucket 0.1
	h.Observe(0.5, "sel")   // bucket 1
	h.Observe(5, "sel")     // +Inf

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{op="sel",le="0.01"} 1`,
		`test_latency_seconds_bucket{op="sel",le="0.1"} 2`,
		`test_latency_seconds_bucket{op="sel",le="1"} 3`,
		`test_latency_seconds_bucket{op="sel",le="+Inf"} 4`,
		`test_latency_seconds_sum{op="sel"} 5.555`,
		`test_latency_seconds_count{op="sel"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if h.Count("sel") != 4 {
		t.Errorf("Count = %d, want 4", h.Count("sel"))
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("esc_total", "x", "l").Inc(`a"b\c` + "\n")
	var b strings.Builder
	reg.WritePrometheus(&b)
	if want := `esc_total{l="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q in:\n%s", want, b.String())
	}
}

func TestFamilyNamesSorted(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("zzz", "x")
	reg.Counter("aaa_total", "x")
	got := reg.FamilyNames()
	if len(got) != 2 || got[0] != "aaa_total" || got[1] != "zzz" {
		t.Fatalf("FamilyNames = %v", got)
	}
}

func TestWrongLabelCountPanics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("labels_total", "x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong label arity")
		}
	}()
	c.Inc("only-one")
}
