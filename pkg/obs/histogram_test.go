package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > want[i]*1e-12 {
			t.Errorf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !validBuckets(got) {
		t.Error("ExponentialBuckets produced non-ascending bounds")
	}
}

func TestExponentialBucketsPanicsOnBadArgs(t *testing.T) {
	cases := []struct {
		name          string
		start, factor float64
		count         int
	}{
		{"zero start", 0, 2, 4},
		{"negative start", -1, 2, 4},
		{"factor one", 1, 1, 4},
		{"zero count", 1, 2, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			ExponentialBuckets(tc.start, tc.factor, tc.count)
		})
	}
}

func TestHistogramRejectsInvalidBuckets(t *testing.T) {
	cases := []struct {
		name    string
		buckets []float64
	}{
		{"descending", []float64{1, 0.5}},
		{"duplicate", []float64{1, 1}},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{1, math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewRegistry().Histogram("bad_seconds", "x", tc.buckets)
		})
	}
}

// TestHistogramBucketBoundaryPlacement pins the `le` semantics: an
// observation exactly on a bound lands in that bound's bucket, just above
// goes to the next, and anything beyond the last bound goes to +Inf only.
func TestHistogramBucketBoundaryPlacement(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("bound_seconds", "x", []float64{1, 2, 4})

	h.Observe(1)   // exactly on bound 1 → le="1"
	h.Observe(1.5) // le="2"
	h.Observe(2)   // exactly on bound 2 → le="2"
	h.Observe(4)   // exactly on last bound → le="4"
	h.Observe(4.1) // +Inf
	h.Observe(-3)  // below all bounds → first bucket

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`bound_seconds_bucket{le="1"} 2`, // 1 and -3, cumulative
		`bound_seconds_bucket{le="2"} 4`,
		`bound_seconds_bucket{le="4"} 5`,
		`bound_seconds_bucket{le="+Inf"} 6`,
		"bound_seconds_count 6",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestHistogramGoldenPrometheusOutput pins the complete text-format
// rendering of one histogram family, byte for byte.
func TestHistogramGoldenPrometheusOutput(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("golden_seconds", "Golden histogram.", []float64{0.25, 0.5}, "op")
	h.Observe(0.1, "a")
	h.Observe(0.3, "a")
	h.Observe(9, "a")
	h.Observe(0.5, "b")

	var b strings.Builder
	reg.WritePrometheus(&b)
	want := strings.Join([]string{
		"# HELP golden_seconds Golden histogram.",
		"# TYPE golden_seconds histogram",
		`golden_seconds_bucket{op="a",le="0.25"} 1`,
		`golden_seconds_bucket{op="a",le="0.5"} 2`,
		`golden_seconds_bucket{op="a",le="+Inf"} 3`,
		`golden_seconds_sum{op="a"} 9.4`,
		`golden_seconds_count{op="a"} 3`,
		`golden_seconds_bucket{op="b",le="0.25"} 0`,
		`golden_seconds_bucket{op="b",le="0.5"} 1`,
		`golden_seconds_bucket{op="b",le="+Inf"} 1`,
		`golden_seconds_sum{op="b"} 0.5`,
		`golden_seconds_count{op="b"} 1`,
		"",
	}, "\n")
	if b.String() != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestHistogramConcurrentObserves hammers one series (both the labeled and
// the bound handle) from many goroutines; run under -race this proves the
// stripes synchronize correctly, and the final snapshot must account for
// every observation exactly once.
func TestHistogramConcurrentObserves(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("conc_seconds", "x", []float64{0.001, 0.01, 0.1}, "op")
	bound := h.Bind("hot")

	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				v := float64(i%200) / 1000.0 // spread across all buckets incl. +Inf
				if g%2 == 0 {
					bound.Observe(v)
				} else {
					h.Observe(v, "hot")
				}
			}
		}(g)
	}
	// A concurrent scraper exercises snapshot-under-observation.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			reg.WritePrometheus(&b)
		}
	}()
	wg.Wait()
	<-done

	if got := h.Count("hot"); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	// The cumulative +Inf bucket must equal the count.
	var b strings.Builder
	reg.WritePrometheus(&b)
	if want := `conc_seconds_bucket{op="hot",le="+Inf"} 32000`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q in:\n%s", want, b.String())
	}
}
