package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanFeedsHistogramAndLog(t *testing.T) {
	var logBuf bytes.Buffer
	reg := NewRegistry()
	log := NewLogger(&logBuf, LevelDebug)
	tr := NewTracer(reg, log)

	ctx, _ := WithRequestID(context.Background(), "req-123")
	ctx, outer := tr.Start(ctx, "selector.decide")
	_, inner := tr.Start(ctx, "forest.eval")
	inner.SetAttr("trees", 60)
	if d := inner.End(); d < 0 {
		t.Fatalf("negative duration %v", d)
	}
	outer.End()
	if inner.End() != 0 {
		t.Error("second End should be a no-op returning 0")
	}

	var expo strings.Builder
	reg.WritePrometheus(&expo)
	for _, want := range []string{
		`pmlmpi_span_duration_seconds_count{span="selector.decide"} 1`,
		`pmlmpi_span_duration_seconds_count{span="forest.eval"} 1`,
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %q in:\n%s", want, expo.String())
		}
	}

	// The inner span's debug record must carry name, parent, request ID,
	// and attrs as valid JSON.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 span log lines, got %d: %q", len(lines), logBuf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("span log is not JSON: %v: %q", err, lines[0])
	}
	if rec["span"] != "forest.eval" || rec["parent"] != "selector.decide" ||
		rec["request_id"] != "req-123" || rec["trees"] != float64(60) {
		t.Errorf("unexpected span record: %v", rec)
	}
}

func TestLoggerLevelsAndFields(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger(&buf, LevelInfo)
	log.Debug("hidden")
	log.With("component", "bundle").Info("loaded", "size_bytes", 42)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("expected exactly 1 line, got %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v", err)
	}
	if rec["level"] != "info" || rec["msg"] != "loaded" ||
		rec["component"] != "bundle" || rec["size_bytes"] != float64(42) {
		t.Errorf("unexpected record: %v", rec)
	}
	if _, ok := rec["ts"]; !ok {
		t.Error("record missing ts")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	ctx, id := WithRequestID(context.Background(), "")
	if id == "" {
		t.Fatal("expected generated ID")
	}
	if got := RequestIDFrom(ctx); got != id {
		t.Fatalf("RequestIDFrom = %q, want %q", got, id)
	}
	if RequestIDFrom(context.Background()) != "" {
		t.Error("empty context should have no request ID")
	}
}
