package obs

import (
	"context"
	"runtime"
	"time"
)

// RuntimeCollector periodically samples Go runtime health — goroutine
// count, heap profile, GC pause behaviour — into gauges, so /metrics can
// answer "is the process itself healthy" alongside the selection metrics.
type RuntimeCollector struct {
	goroutines   *Gauge
	heapAlloc    *Gauge
	heapSys      *Gauge
	heapObjects  *Gauge
	nextGC       *Gauge
	gcRuns       *Gauge
	gcPauseLast  *Gauge
	gcPauseTotal *Gauge
}

// NewRuntimeCollector registers the runtime gauges in reg. Call Collect for
// a one-shot sample or Run for a periodic loop.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	return &RuntimeCollector{
		goroutines: reg.Gauge("pmlmpi_go_goroutines",
			"Live goroutines."),
		heapAlloc: reg.Gauge("pmlmpi_go_heap_alloc_bytes",
			"Bytes of allocated heap objects."),
		heapSys: reg.Gauge("pmlmpi_go_heap_sys_bytes",
			"Bytes of heap memory obtained from the OS."),
		heapObjects: reg.Gauge("pmlmpi_go_heap_objects",
			"Live heap objects."),
		nextGC: reg.Gauge("pmlmpi_go_next_gc_bytes",
			"Heap size target of the next GC cycle."),
		gcRuns: reg.Gauge("pmlmpi_go_gc_runs",
			"Completed GC cycles since process start."),
		gcPauseLast: reg.Gauge("pmlmpi_go_gc_pause_last_seconds",
			"Stop-the-world pause of the most recent GC cycle."),
		gcPauseTotal: reg.Gauge("pmlmpi_go_gc_pause_total_seconds",
			"Cumulative stop-the-world pause time since process start."),
	}
}

// Collect takes one sample of the runtime state. Note ReadMemStats briefly
// stops the world, which is why sampling is periodic rather than per scrape.
func (c *RuntimeCollector) Collect() {
	c.goroutines.Set(float64(runtime.NumGoroutine()))
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	c.heapAlloc.Set(float64(m.HeapAlloc))
	c.heapSys.Set(float64(m.HeapSys))
	c.heapObjects.Set(float64(m.HeapObjects))
	c.nextGC.Set(float64(m.NextGC))
	c.gcRuns.Set(float64(m.NumGC))
	if m.NumGC > 0 {
		c.gcPauseLast.Set(float64(m.PauseNs[(m.NumGC+255)%256]) / 1e9)
	}
	c.gcPauseTotal.Set(float64(m.PauseTotalNs) / 1e9)
}

// Run collects immediately and then every interval until ctx is cancelled.
// It blocks; callers run it in a goroutine.
func (c *RuntimeCollector) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	c.Collect()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Collect()
		}
	}
}
