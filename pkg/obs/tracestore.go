package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTraceCapacity is the number of sampled traces retained when the
// store is built through New.
const DefaultTraceCapacity = 256

// MaxSpansPerTrace bounds one trace's span tree; spans beyond the cap are
// dropped and the trace is marked truncated, so a runaway fan-out (e.g. a
// 1024-item batch) cannot balloon the store.
const MaxSpansPerTrace = 512

// SpanRecord is one completed span within a sampled trace. ParentID is
// empty for the root span.
type SpanRecord struct {
	SpanID     string         `json:"span_id"`
	ParentID   string         `json:"parent_id,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationUS float64        `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Trace is one retained span tree. Spans appear in end order (children
// before their parent, since a parent outlives its children); consumers
// rebuild the tree from SpanID/ParentID.
type Trace struct {
	TraceID    string       `json:"trace_id"`
	RequestID  string       `json:"request_id,omitempty"`
	Root       string       `json:"root"`
	Start      time.Time    `json:"start"`
	DurationUS float64      `json:"duration_us"`
	Spans      []SpanRecord `json:"spans"`
	Truncated  bool         `json:"truncated,omitempty"`
}

// TraceSummary is the list-view projection of a retained trace.
type TraceSummary struct {
	TraceID    string    `json:"trace_id"`
	RequestID  string    `json:"request_id,omitempty"`
	Root       string    `json:"root"`
	Start      time.Time `json:"start"`
	DurationUS float64   `json:"duration_us"`
	Spans      int       `json:"spans"`
}

// TraceStore retains complete span trees for head-sampled requests in a
// bounded ring. Sampling is 1-in-N: SetSampleRate(r) keeps every round(1/r)th
// root, deterministically via an atomic tick, so the non-sampled fast path
// costs a single atomic add. The zero sample rate (the default) disables
// sampling entirely.
type TraceStore struct {
	every atomic.Uint64 // keep every Nth root; 0 = sampling off
	tick  atomic.Uint64

	mu   sync.Mutex
	buf  []*Trace
	next int
	full bool
	byID map[string]*Trace
	rate float64 // configured rate, for display

	sampled *Counter
	stored  *Gauge
}

// NewTraceStore builds a store retaining up to capacity traces, registering
// its instruments (pmlmpi_traces_sampled_total, pmlmpi_traces_stored) in reg.
func NewTraceStore(reg *Registry, capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{
		buf:  make([]*Trace, capacity),
		byID: make(map[string]*Trace, capacity),
		sampled: reg.Counter("pmlmpi_traces_sampled_total",
			"Root spans chosen by head-based sampling."),
		stored: reg.Gauge("pmlmpi_traces_stored",
			"Sampled traces currently retained in the ring."),
	}
}

// SetSampleRate configures head-based sampling from a fraction in [0,1]:
// rate r keeps every round(1/r)th root span. r <= 0 disables sampling; any
// r >= 1 samples every request.
func (ts *TraceStore) SetSampleRate(rate float64) {
	ts.mu.Lock()
	ts.rate = rate
	ts.mu.Unlock()
	switch {
	case rate <= 0:
		ts.every.Store(0)
	case rate >= 1:
		ts.every.Store(1)
	default:
		ts.every.Store(uint64(1/rate + 0.5))
	}
}

// SampleRate returns the configured sampling fraction.
func (ts *TraceStore) SampleRate() float64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.rate
}

// SetCapacity resizes the ring, dropping all currently retained traces.
// Intended for startup configuration, not steady-state use.
func (ts *TraceStore) SetCapacity(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	ts.mu.Lock()
	ts.buf = make([]*Trace, capacity)
	ts.next = 0
	ts.full = false
	ts.byID = make(map[string]*Trace, capacity)
	ts.mu.Unlock()
	ts.stored.Set(0)
}

// enabled reports whether any sampling is configured.
func (ts *TraceStore) enabled() bool { return ts.every.Load() != 0 }

// Sample consumes one sampling tick and reports whether the caller's root
// span should be traced. The non-sampled path costs one atomic add.
func (ts *TraceStore) Sample() bool {
	every := ts.every.Load()
	if every == 0 {
		return false
	}
	if ts.tick.Add(1)%every != 0 {
		return false
	}
	ts.sampled.Inc()
	return true
}

// Add retains a completed trace, evicting the oldest when the ring is full.
// Traces must be immutable once added.
func (ts *TraceStore) Add(tr *Trace) {
	ts.mu.Lock()
	if old := ts.buf[ts.next]; old != nil {
		delete(ts.byID, old.TraceID)
	}
	ts.buf[ts.next] = tr
	ts.byID[tr.TraceID] = tr
	ts.next++
	if ts.next == len(ts.buf) {
		ts.next = 0
		ts.full = true
	}
	n := len(ts.byID)
	ts.mu.Unlock()
	ts.stored.Set(float64(n))
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.byID)
}

// Get returns the retained trace with the given ID.
func (ts *TraceStore) Get(traceID string) (*Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr, ok := ts.byID[traceID]
	return tr, ok
}

// List returns summaries of up to limit retained traces, newest first
// (limit <= 0 for all).
func (ts *TraceStore) List(limit int) []TraceSummary {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	size := ts.next
	if ts.full {
		size = len(ts.buf)
	}
	if limit <= 0 || limit > size {
		limit = size
	}
	out := make([]TraceSummary, 0, limit)
	for i := 1; i <= limit; i++ {
		idx := ts.next - i
		if idx < 0 {
			idx += len(ts.buf)
		}
		tr := ts.buf[idx]
		if tr == nil {
			break
		}
		out = append(out, TraceSummary{
			TraceID:    tr.TraceID,
			RequestID:  tr.RequestID,
			Root:       tr.Root,
			Start:      tr.Start,
			DurationUS: tr.DurationUS,
			Spans:      len(tr.Spans),
		})
	}
	return out
}

// NewTraceID returns a fresh trace ID, distinct from request IDs.
func NewTraceID() string {
	return "tr-" + NewRequestID()
}

// traceBuilder accumulates the span records of one sampled trace. It is
// shared by every span of the trace, including spans ended from concurrent
// batch workers, hence the mutex.
type traceBuilder struct {
	store   *TraceStore
	traceID string

	mu        sync.Mutex
	spans     []SpanRecord
	truncated bool
	nextSpan  uint64
}

func newTraceBuilder(store *TraceStore) *traceBuilder {
	return &traceBuilder{store: store, traceID: NewTraceID()}
}

// spanID issues the next ID within this trace ("s1", "s2", …).
func (tb *traceBuilder) spanID() string {
	tb.mu.Lock()
	tb.nextSpan++
	n := tb.nextSpan
	tb.mu.Unlock()
	return spanIDString(n)
}

func spanIDString(n uint64) string {
	// Tiny base-10 itoa; avoids strconv on a path that only runs when
	// sampled but keeps IDs human-readable in JSON.
	var buf [21]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return "s" + string(buf[i:])
}

func (tb *traceBuilder) record(rec SpanRecord) {
	tb.mu.Lock()
	if len(tb.spans) >= MaxSpansPerTrace {
		tb.truncated = true
	} else {
		tb.spans = append(tb.spans, rec)
	}
	tb.mu.Unlock()
}

// finish seals the trace once its root span ends and hands it to the store.
func (tb *traceBuilder) finish(root *Span, d time.Duration) {
	tb.mu.Lock()
	tr := &Trace{
		TraceID:    tb.traceID,
		RequestID:  root.reqID,
		Root:       root.name,
		Start:      root.start,
		DurationUS: float64(d.Nanoseconds()) / 1e3,
		Spans:      tb.spans,
		Truncated:  tb.truncated,
	}
	tb.spans = nil
	tb.mu.Unlock()
	tb.store.Add(tr)
}
