package loadgen

import (
	"math"
	"testing"
)

const promBefore = `# HELP pmlmpi_cache_hits_total Decision-cache hits.
# TYPE pmlmpi_cache_hits_total counter
pmlmpi_cache_hits_total 10
pmlmpi_cache_misses_total 5
pmlmpi_selections_total{algorithm="ring",collective="allgather"} 12
pmlmpi_selections_total{algorithm="binomial",collective="broadcast"} 3
pmlmpi_select_duration_seconds_bucket{collective="allgather",path="cold",le="0.0001"} 4
pmlmpi_select_duration_seconds_bucket{collective="allgather",path="cold",le="0.001"} 10
pmlmpi_select_duration_seconds_bucket{collective="allgather",path="cold",le="+Inf"} 12
pmlmpi_select_duration_seconds_sum{collective="allgather",path="cold"} 0.01
pmlmpi_select_duration_seconds_count{collective="allgather",path="cold"} 12
pmlmpi_select_duration_seconds_bucket{collective="broadcast",path="cache_hit",le="0.0001"} 3
pmlmpi_select_duration_seconds_bucket{collective="broadcast",path="cache_hit",le="0.001"} 3
pmlmpi_select_duration_seconds_bucket{collective="broadcast",path="cache_hit",le="+Inf"} 3
pmlmpi_select_duration_seconds_sum{collective="broadcast",path="cache_hit"} 0.0001
pmlmpi_select_duration_seconds_count{collective="broadcast",path="cache_hit"} 3
`

const promAfter = `pmlmpi_cache_hits_total 110
pmlmpi_cache_misses_total 25
pmlmpi_selections_total{algorithm="ring",collective="allgather"} 92
pmlmpi_selections_total{algorithm="binomial",collective="broadcast"} 43
pmlmpi_select_duration_seconds_bucket{collective="allgather",path="cold",le="0.0001"} 54
pmlmpi_select_duration_seconds_bucket{collective="allgather",path="cold",le="0.001"} 90
pmlmpi_select_duration_seconds_bucket{collective="allgather",path="cold",le="+Inf"} 92
pmlmpi_select_duration_seconds_sum{collective="allgather",path="cold"} 0.05
pmlmpi_select_duration_seconds_count{collective="allgather",path="cold"} 92
pmlmpi_select_duration_seconds_bucket{collective="broadcast",path="cache_hit",le="0.0001"} 43
pmlmpi_select_duration_seconds_bucket{collective="broadcast",path="cache_hit",le="0.001"} 43
pmlmpi_select_duration_seconds_bucket{collective="broadcast",path="cache_hit",le="+Inf"} 43
pmlmpi_select_duration_seconds_sum{collective="broadcast",path="cache_hit"} 0.0011
pmlmpi_select_duration_seconds_count{collective="broadcast",path="cache_hit"} 43
`

func TestParseMetrics(t *testing.T) {
	snap, err := parseMetrics(promBefore)
	if err != nil {
		t.Fatal(err)
	}
	if snap.cacheHits != 10 || snap.cacheMisses != 5 {
		t.Errorf("cache = %v/%v", snap.cacheHits, snap.cacheMisses)
	}
	if snap.selections["allgather"] != 12 || snap.selections["broadcast"] != 3 {
		t.Errorf("selections = %v", snap.selections)
	}
	if snap.count != 15 {
		t.Errorf("merged histogram count = %v, want 15", snap.count)
	}
	if len(snap.bounds) != 2 || snap.bounds[0] != 0.0001 || snap.bounds[1] != 0.001 {
		t.Errorf("bounds = %v", snap.bounds)
	}
	// Merged across the two label sets: le=0.0001 holds 4+3.
	if snap.buckets[0.0001] != 7 {
		t.Errorf("merged le=0.0001 = %v, want 7", snap.buckets[0.0001])
	}
	if snap.buckets[math.Inf(1)] != 15 {
		t.Errorf("merged +Inf = %v, want 15", snap.buckets[math.Inf(1)])
	}
	if snap.pathCounts["cold"] != 12 || snap.pathCounts["cache_hit"] != 3 {
		t.Errorf("path counts = %v", snap.pathCounts)
	}
}

func TestMetricsDelta(t *testing.T) {
	before, err := parseMetrics(promBefore)
	if err != nil {
		t.Fatal(err)
	}
	after, err := parseMetrics(promAfter)
	if err != nil {
		t.Fatal(err)
	}
	d := after.delta(before)
	if d.CacheHits != 100 || d.CacheMisses != 20 {
		t.Errorf("cache delta = %d/%d", d.CacheHits, d.CacheMisses)
	}
	if got := d.CacheHitRate; math.Abs(got-100.0/120.0) > 1e-9 {
		t.Errorf("hit rate = %v", got)
	}
	if d.SelectionsByCollective["allgather"] != 80 || d.SelectionsByCollective["broadcast"] != 40 {
		t.Errorf("selections delta = %v", d.SelectionsByCollective)
	}
	if d.SelectLatency.Count != 120 {
		t.Errorf("latency delta count = %d, want 120", d.SelectLatency.Count)
	}
	// Delta buckets: le=1e-4 gained (54+43)-(4+3)=90, le=1e-3 cumulative
	// gained 120 → median sits in the first bucket.
	if d.SelectLatency.P50US <= 0 || d.SelectLatency.P50US > 100 {
		t.Errorf("delta p50 = %vus, want within first bucket (<=100us)", d.SelectLatency.P50US)
	}
	if d.SelectPathCounts["cold"] != 80 || d.SelectPathCounts["cache_hit"] != 40 {
		t.Errorf("path delta = %v", d.SelectPathCounts)
	}
}

func TestParsePromLine(t *testing.T) {
	name, labels, v, ok := parsePromLine(`x_total{a="1",b="two words, quoted"} 42`)
	if !ok || name != "x_total" || v != 42 {
		t.Fatalf("parse = %q %v %v %v", name, labels, v, ok)
	}
	if labels["a"] != "1" || labels["b"] != "two words, quoted" {
		t.Errorf("labels = %v", labels)
	}
	if name, _, v, ok := parsePromLine("plain_metric 1.5e-3"); !ok || name != "plain_metric" || v != 0.0015 {
		t.Errorf("bare metric parse = %q %v %v", name, v, ok)
	}
	if _, _, _, ok := parsePromLine("garbage"); ok {
		t.Error("garbage line must not parse")
	}
}
