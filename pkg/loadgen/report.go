package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"github.com/pml-mpi/pmlmpi/pkg/analytics"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
)

// ReportSchema versions the BENCH_loadgen.json layout; bump it on any
// incompatible change so trajectory tooling can dispatch on it.
const ReportSchema = 1

// Report is the canonical loadgen artifact: the run configuration, the
// server identity it hit, client-observed results, and the scraped
// server-side deltas — everything needed to compare two runs in one file.
type Report struct {
	Schema      int    `json:"schema"`
	GeneratedAt string `json:"generated_at,omitempty"` // RFC3339, UTC

	Config RunConfig   `json:"config"`
	Server ServerInfo  `json:"server"`
	Client Results     `json:"client"`
	Delta  ServerDelta `json:"server_delta"`

	// Analytics is the server's post-run /debug/analytics rollup
	// (cumulative since server start; equal to the run on a fresh server).
	Analytics []analytics.Row `json:"analytics,omitempty"`
	// Shadow is the post-run /debug/shadow report when shadow evaluation
	// is mounted.
	Shadow *registry.ShadowReport `json:"shadow,omitempty"`
	// ModelHealth is the post-run model-health view when the observatory
	// is mounted: drift verdicts from /debug/drift plus margin and
	// flight-recorder deltas from /metrics.
	ModelHealth *ModelHealthReport `json:"model_health,omitempty"`
	// Feedback tallies the oracle-labeled /v1/feedback side stream when
	// the run emits one (FeedbackFraction > 0).
	Feedback *FeedbackResults `json:"feedback,omitempty"`
	// Gateway is the per-replica routing view when the target is a fleet
	// gateway (TargetMode "gateway"): run-window deltas of the gateway's
	// /debug/replicas ledger.
	Gateway *GatewayResults `json:"gateway,omitempty"`
}

// GatewayResults is the gateway-mode routing evidence: how the run's
// requests spread across the replica set, plus the fleet-wide selection
// tally (the sum over replicas — comparable to a single-server run's
// server_delta.selections_by_collective for the same spec and seed).
type GatewayResults struct {
	Replicas []GatewayReplica `json:"replicas"`
	// SelectionsByCollective aggregates the per-replica deltas; with every
	// request answered it equals the single-server tally for the same
	// sequence.
	SelectionsByCollective map[string]uint64 `json:"selections_by_collective,omitempty"`
}

// GatewayReplica is one replica's run-window delta from /debug/replicas.
type GatewayReplica struct {
	ID      string `json:"id"`
	Healthy bool   `json:"healthy"`
	// Requests/Errors are proxy attempts the gateway sent this replica
	// during the run; Share is this replica's fraction of all attempts.
	Requests               uint64            `json:"requests"`
	Errors                 uint64            `json:"errors"`
	Share                  float64           `json:"share"`
	SelectionsByCollective map[string]uint64 `json:"selections_by_collective,omitempty"`
}

// FeedbackResults is the client-side ledger of the feedback emission
// stream: how many requests were flagged for emission and what the server
// said about each posted record.
type FeedbackResults struct {
	// Fraction echoes the configured emission fraction.
	Fraction float64 `json:"fraction"`
	// Flagged counts requests selected by the deterministic emission
	// stream; Posted counts the subset whose POST round-tripped with 200.
	Flagged uint64 `json:"flagged"`
	Posted  uint64 `json:"posted"`
	// Per-record server outcomes summed across posted records.
	Accepted    uint64 `json:"accepted"`
	Duplicates  uint64 `json:"duplicates"`
	Quarantined uint64 `json:"quarantined"`
	Invalid     uint64 `json:"invalid"`
	// Errors counts transport failures and non-200 envelopes; OracleSkips
	// counts collectives the analytical oracle cannot label.
	Errors      uint64 `json:"errors"`
	OracleSkips uint64 `json:"oracle_skips,omitempty"`
}

// ModelHealthReport summarizes the observatory's verdict on the run.
type ModelHealthReport struct {
	// DriftStatus is the overall post-run drift status ("ok", "warn",
	// "alert", "collecting", "no_reference").
	DriftStatus string `json:"drift_status"`
	// DriftLastPSI maps each monitored feature to the PSI of its most
	// recent completed window.
	DriftLastPSI map[string]float64 `json:"drift_last_psi,omitempty"`
	// DriftFeatureStatus maps each monitored feature to its own status.
	DriftFeatureStatus map[string]string `json:"drift_feature_status,omitempty"`
	// MarginObservations / LowMarginDecisions are run-window deltas of the
	// vote-margin telemetry; LowMarginRate is their ratio.
	MarginObservations uint64  `json:"margin_observations"`
	LowMarginDecisions uint64  `json:"low_margin_decisions"`
	LowMarginRate      float64 `json:"low_margin_rate"`
	// FlightRecords is the run-window delta of anomaly records captured.
	FlightRecords uint64 `json:"flightrec_records"`
}

// RunConfig records the knobs that produced the run. SequenceHash pins the
// exact request sequence: two reports with equal spec/seed/hash replayed
// identical workloads.
type RunConfig struct {
	SpecName         string  `json:"spec_name"`
	TargetMode       string  `json:"target_mode,omitempty"`
	Seed             int64   `json:"seed"`
	SequenceHash     string  `json:"sequence_hash"`
	QPS              float64 `json:"target_qps"`
	DurationSeconds  float64 `json:"duration_seconds"`
	WarmupSeconds    float64 `json:"warmup_seconds"`
	Workers          int     `json:"workers"`
	BatchFraction    float64 `json:"batch_fraction"`
	BatchSize        int     `json:"batch_size,omitempty"`
	FeedbackFraction float64 `json:"feedback_fraction,omitempty"`
	Scheduled        int     `json:"scheduled_requests"`
}

// ServerInfo stamps the server identity at run start.
type ServerInfo struct {
	Version            string   `json:"version"`
	GoVersion          string   `json:"go_version"`
	ModelVersion       string   `json:"model_version,omitempty"`
	Generation         uint64   `json:"generation,omitempty"`
	GenerationHash     string   `json:"generation_hash,omitempty"`
	Collectives        []string `json:"collectives,omitempty"`
	UptimeSecondsStart float64  `json:"uptime_seconds_at_start"`
}

// Results is the client-observed side of the run. Latencies are measured
// from each request's *scheduled* start (open-loop), so queueing induced
// by a saturated server is charged to the server, not hidden — the
// coordinated-omission-safe convention.
type Results struct {
	Measured        uint64  `json:"measured_requests"`
	WarmupRequests  uint64  `json:"warmup_requests"`
	Completed       uint64  `json:"completed"`
	Errors          uint64  `json:"errors"`
	MeasuredSeconds float64 `json:"measured_window_seconds"`
	ThroughputRPS   float64 `json:"throughput_rps"`

	// Latency aggregates every measured request; Endpoints splits it by
	// API surface ("/v1/select" per request, "/v1/select/batch" per call).
	Latency   obs.Summary            `json:"latency"`
	Endpoints map[string]obs.Summary `json:"endpoints,omitempty"`

	ErrorsByKind map[string]uint64 `json:"errors_by_kind,omitempty"`
}

// ServerDelta is the after-minus-before view of the server's /metrics over
// the run window.
type ServerDelta struct {
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`

	SelectionsByCollective map[string]uint64 `json:"selections_by_collective,omitempty"`
	// SelectPathCounts splits pmlmpi_select_duration_seconds observations
	// by path label (cold vs. cache_hit).
	SelectPathCounts map[string]uint64 `json:"select_path_counts,omitempty"`
	// SelectLatency summarizes the server-side select-duration histogram
	// delta — the in-process cost, without HTTP/network.
	SelectLatency obs.Summary `json:"select_latency"`

	// RecentDecisionsByGeneration tallies the bounded /debug/decisions
	// ring after the run — a sample of which model generation answered.
	RecentDecisionsByGeneration map[string]uint64 `json:"recent_decisions_by_generation,omitempty"`

	// FeedbackByOutcome is the run-window delta of the server's
	// pmlmpi_feedback_records_total counter by outcome — the server-side
	// cross-check of the client's FeedbackResults ledger.
	FeedbackByOutcome map[string]uint64 `json:"feedback_by_outcome,omitempty"`
	// RetrainCycles is the run-window delta of pmlmpi_retrain_cycles_total
	// by outcome: retrain cycles the workload triggered while running.
	RetrainCycles map[string]uint64 `json:"retrain_cycles,omitempty"`
}

// WriteFile atomically writes the report as indented JSON: temp file in
// the destination directory, fsync, rename. A crashed or concurrent run
// can never leave a torn BENCH artifact.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("rename report into place: %w", err)
	}
	return nil
}
