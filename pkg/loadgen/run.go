package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
)

// Target modes: what kind of process BaseURL points at. The request
// stream is identical either way — same spec, same seed, same sequence
// hash — only the evidence scraped around the run differs.
const (
	// ModeServer targets a single pmlmpi-server (the default).
	ModeServer = "server"
	// ModeGateway targets a pmlmpi-gateway fronting a replica fleet: the
	// run additionally diffs the gateway's /debug/replicas ledger into a
	// per-replica routing report.
	ModeGateway = "gateway"
)

// Options configures one load-generation run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// TargetMode is ModeServer or ModeGateway; empty means ModeServer.
	TargetMode string
	// Spec is the workload mix; the zero value means DefaultSpec.
	Spec *Spec
	// Seed drives every random choice. Same seed + same spec = identical
	// request sequence, arrival schedule, and batch assignment.
	Seed int64
	// QPS is the target open-loop arrival rate (default 200).
	QPS float64
	// Duration is the measured window (default 5s); Warmup requests run
	// first and are excluded from client statistics.
	Duration time.Duration
	Warmup   time.Duration
	// Workers is the HTTP worker-pool size (default 8). Workers only
	// bound concurrency; arrival times never depend on service times.
	Workers int
	// Timeout bounds each HTTP request (default 10s).
	Timeout time.Duration
	// FeedbackFraction is the fraction of requests that also POST an
	// oracle-labeled record to /v1/feedback after their select completes,
	// exercising the server's self-tuning loop under load. The emission
	// stream is seeded independently of contents, arrivals, and batching,
	// so the sequence hash is identical with feedback on or off. 0 (the
	// default) disables emission.
	FeedbackFraction float64
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.TargetMode == "" {
		out.TargetMode = ModeServer
	}
	if out.Spec == nil {
		s := DefaultSpec()
		out.Spec = &s
	}
	if out.QPS <= 0 {
		out.QPS = 200
	}
	if out.Duration <= 0 {
		out.Duration = 5 * time.Second
	}
	if out.Warmup < 0 {
		out.Warmup = 0
	}
	if out.Workers <= 0 {
		out.Workers = 8
	}
	if out.Timeout <= 0 {
		out.Timeout = 10 * time.Second
	}
	if out.Client == nil {
		out.Client = &http.Client{Timeout: out.Timeout}
	}
	if out.Logf == nil {
		out.Logf = func(string, ...any) {}
	}
	return out
}

// clientBuckets spans the HTTP round-trip regime: 10µs up to ~84s.
var clientBuckets = obs.ExponentialBuckets(1e-5, 2, 23)

// job is one dispatch unit: a single /v1/select call or one coalesced
// /v1/select/batch call.
type job struct {
	single  *Request
	group   []Request
	offset  time.Duration   // dispatch offset from run start
	offsets []time.Duration // per group member arrival offsets
}

// Run executes the workload against a live server and assembles the
// report. The arrival schedule is open-loop: requests are released at
// their scheduled times regardless of how fast the server answers, and
// latency is measured from the scheduled start, so server-induced queueing
// is visible instead of silently omitted.
func Run(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	spec := *opts.Spec
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if opts.FeedbackFraction < 0 || opts.FeedbackFraction > 1 {
		return nil, fmt.Errorf("feedback fraction must be in [0,1], got %v", opts.FeedbackFraction)
	}
	if opts.TargetMode != ModeServer && opts.TargetMode != ModeGateway {
		return nil, fmt.Errorf("target mode must be %q or %q, got %q", ModeServer, ModeGateway, opts.TargetMode)
	}
	p := newProbe(opts.BaseURL, opts.Client)

	healthBefore, err := p.health(ctx)
	if err != nil {
		return nil, fmt.Errorf("server not reachable: %w", err)
	}
	if healthBefore.Status != "ok" {
		return nil, fmt.Errorf("server unhealthy before run: status %q", healthBefore.Status)
	}
	metricsBefore, err := p.metrics(ctx)
	if err != nil {
		return nil, fmt.Errorf("scrape /metrics before run: %w", err)
	}
	var gwBefore []gatewayReplicaRow
	if opts.TargetMode == ModeGateway {
		gwBefore, err = p.gatewayReplicas(ctx)
		if err != nil {
			return nil, fmt.Errorf("scrape /debug/replicas before run (gateway mode): %w", err)
		}
	}

	total := int(math.Ceil(opts.QPS * (opts.Warmup + opts.Duration).Seconds()))
	seq, err := Sequence(spec, opts.Seed, total)
	if err != nil {
		return nil, err
	}
	hash, err := SequenceHash(seq)
	if err != nil {
		return nil, err
	}
	offsets := Arrivals(opts.Seed, total, opts.QPS)
	jobs := plan(seq, offsets, batchFlags(opts.Seed, total, spec.BatchFraction), spec.BatchSize)
	opts.Logf("loadgen: %d requests (%d dispatch units) at %.0f qps, seq %s",
		total, len(jobs), opts.QPS, hash[:12])

	var fb *feedbackEmitter
	if opts.FeedbackFraction > 0 {
		fb = newFeedbackEmitter(opts, feedbackFlags(opts.Seed, total, opts.FeedbackFraction))
		opts.Logf("loadgen: emitting oracle-labeled feedback for %.0f%% of requests", opts.FeedbackFraction*100)
	}

	rec := newRecorder()
	ch := make(chan job, len(jobs))
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				execute(ctx, opts, rec, start, j, fb)
			}
		}()
	}

	// Open-loop dispatcher: release each unit at its scheduled offset. The
	// channel holds every job, so a send never blocks — slow service shows
	// up as measured queueing, not a slower arrival rate.
	runErr := dispatch(ctx, start, jobs, ch)
	close(ch)
	wg.Wait()
	end := time.Now()

	rep := &Report{
		Schema:      ReportSchema,
		GeneratedAt: end.UTC().Format(time.RFC3339),
		Config: RunConfig{
			SpecName:         spec.Name,
			TargetMode:       opts.TargetMode,
			Seed:             opts.Seed,
			SequenceHash:     hash,
			QPS:              opts.QPS,
			DurationSeconds:  opts.Duration.Seconds(),
			WarmupSeconds:    opts.Warmup.Seconds(),
			Workers:          opts.Workers,
			BatchFraction:    spec.BatchFraction,
			BatchSize:        spec.BatchSize,
			FeedbackFraction: opts.FeedbackFraction,
			Scheduled:        total,
		},
		Server: ServerInfo{
			Version:            healthBefore.ServerVersion,
			GoVersion:          healthBefore.GoVersion,
			ModelVersion:       healthBefore.ModelVersion,
			UptimeSecondsStart: healthBefore.UptimeSeconds,
		},
	}
	if g := healthBefore.Generation; g != nil {
		rep.Server.Generation = g.ID
		rep.Server.GenerationHash = g.Hash
	}
	for name := range healthBefore.Collectives {
		rep.Server.Collectives = append(rep.Server.Collectives, name)
	}
	sort.Strings(rep.Server.Collectives)

	window := end.Sub(start.Add(opts.Warmup)).Seconds()
	rep.Client = rec.results(window)
	if fb != nil {
		rep.Feedback = fb.results()
	}

	// Post-run server-side evidence. The run is already complete, so a
	// scrape failure degrades the report instead of failing it.
	metricsAfter, err := p.metrics(ctx)
	if err == nil {
		rep.Delta = metricsAfter.delta(metricsBefore)
	} else {
		opts.Logf("loadgen: post-run /metrics scrape failed: %v", err)
	}
	if rows, err := p.analytics(ctx); err == nil {
		rep.Analytics = rows
	}
	if sh, err := p.shadow(ctx); err == nil && sh != nil {
		rep.Shadow = sh
	}
	if dr, err := p.drift(ctx); err == nil && dr != nil {
		rep.ModelHealth = modelHealthReport(dr, metricsBefore, metricsAfter)
	}
	if gens, err := p.decisionsByGeneration(ctx); err == nil && len(gens) > 0 {
		rep.Delta.RecentDecisionsByGeneration = gens
	}
	if opts.TargetMode == ModeGateway {
		if gwAfter, err := p.gatewayReplicas(ctx); err == nil {
			rep.Gateway = gatewayResults(gwBefore, gwAfter)
		} else {
			opts.Logf("loadgen: post-run /debug/replicas scrape failed: %v", err)
		}
	}
	return rep, runErr
}

// plan turns the request sequence into dispatch units: consecutive
// batch-flagged requests coalesce (up to batchSize per call) and fly when
// their last member's arrival time comes due; everything else is a single
// /v1/select call at its own arrival time.
func plan(seq []Request, offsets []time.Duration, batched []bool, batchSize int) []job {
	var jobs []job
	var group []Request
	var groupOffs []time.Duration
	flush := func() {
		if len(group) == 0 {
			return
		}
		jobs = append(jobs, job{
			group:   group,
			offsets: groupOffs,
			offset:  groupOffs[len(groupOffs)-1],
		})
		group, groupOffs = nil, nil
	}
	for i := range seq {
		if batched[i] {
			group = append(group, seq[i])
			groupOffs = append(groupOffs, offsets[i])
			if len(group) >= batchSize {
				flush()
			}
			continue
		}
		jobs = append(jobs, job{single: &seq[i], offset: offsets[i]})
	}
	flush()
	// Dispatch strictly by release time (batch units are due at their
	// last member, which can land after later singles).
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].offset < jobs[b].offset })
	return jobs
}

func dispatch(ctx context.Context, start time.Time, jobs []job, ch chan<- job) error {
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for _, j := range jobs {
		if wait := time.Until(start.Add(j.offset)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-timer.C:
			}
		} else if err := ctx.Err(); err != nil {
			return err
		}
		ch <- j
	}
	return nil
}

// execute performs one dispatch unit and records its outcome. warmup
// membership is per request: a batch straddling the warmup boundary
// contributes only its measured members. Feedback emission happens after
// the select is recorded, so it never inflates select latencies.
func execute(ctx context.Context, opts Options, rec *recorder, start time.Time, j job, fb *feedbackEmitter) {
	if j.single != nil {
		measured := j.offset >= opts.Warmup
		ok, kind := postSelect(ctx, opts, j.single)
		rec.record("/v1/select", time.Since(start.Add(j.offset)).Seconds(), measured, ok, kind)
		fb.maybeEmit(ctx, j.single)
		return
	}
	okItems, callOK, kind := postBatch(ctx, opts, j.group)
	callMeasured := j.offset >= opts.Warmup
	rec.recordCall("/v1/select/batch", time.Since(start.Add(j.offset)).Seconds(), callMeasured, callOK, kind)
	for i := range j.group {
		measured := j.offsets[i] >= opts.Warmup
		itemOK := callOK && okItems[i]
		itemKind := kind
		if callOK && !okItems[i] {
			itemKind = "batch_item"
		}
		rec.recordItem(time.Since(start.Add(j.offsets[i])).Seconds(), measured, itemOK, itemKind)
		fb.maybeEmit(ctx, &j.group[i])
	}
}

// feedbackEmitter turns flagged requests into oracle-labeled /v1/feedback
// POSTs: the analytical model prices every algorithm for the request's
// feature point and the per-algorithm costs become the record's observed
// latencies. Against a live analytical oracle the argmin always agrees
// with the plausibility guard, so accepted/duplicate are the expected
// outcomes on a healthy server.
type feedbackEmitter struct {
	opts  Options
	flags []bool

	mu  sync.Mutex
	res FeedbackResults
}

func newFeedbackEmitter(opts Options, flags []bool) *feedbackEmitter {
	return &feedbackEmitter{opts: opts, flags: flags, res: FeedbackResults{Fraction: opts.FeedbackFraction}}
}

// maybeEmit posts an oracle-labeled record for flagged requests. Safe on a
// nil emitter (feedback disabled).
func (e *feedbackEmitter) maybeEmit(ctx context.Context, r *Request) {
	if e == nil || r.Index >= len(e.flags) || !e.flags[r.Index] {
		return
	}
	e.mu.Lock()
	e.res.Flagged++
	e.mu.Unlock()

	costs, err := perfmodel.Costs(r.Collective, r.Features)
	if err != nil {
		e.count(func(res *FeedbackResults) { res.OracleSkips++ })
		return
	}
	algos := perfmodel.Table()[r.Collective]
	lat := make(map[string]float64, len(algos))
	for i, name := range algos {
		lat[name] = costs[i] * 1e6
	}
	body, err := json.Marshal(struct {
		Collective  string             `json:"collective"`
		Features    map[string]float64 `json:"features"`
		LatenciesUS map[string]float64 `json:"latency_us"`
	}{r.Collective, r.Features, lat})
	if err != nil {
		e.count(func(res *FeedbackResults) { res.Errors++ })
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.opts.BaseURL+"/v1/feedback", bytes.NewReader(body))
	if err != nil {
		e.count(func(res *FeedbackResults) { res.Errors++ })
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := e.opts.Client.Do(req)
	if err != nil {
		e.count(func(res *FeedbackResults) { res.Errors++ })
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		e.count(func(res *FeedbackResults) { res.Errors++ })
		return
	}
	var parsed struct {
		Accepted    int `json:"accepted"`
		Duplicates  int `json:"duplicates"`
		Quarantined int `json:"quarantined"`
		Invalid     int `json:"invalid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		e.count(func(res *FeedbackResults) { res.Errors++ })
		return
	}
	e.count(func(res *FeedbackResults) {
		res.Posted++
		res.Accepted += uint64(parsed.Accepted)
		res.Duplicates += uint64(parsed.Duplicates)
		res.Quarantined += uint64(parsed.Quarantined)
		res.Invalid += uint64(parsed.Invalid)
	})
}

func (e *feedbackEmitter) count(f func(*FeedbackResults)) {
	e.mu.Lock()
	f(&e.res)
	e.mu.Unlock()
}

func (e *feedbackEmitter) results() *FeedbackResults {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := e.res
	return &out
}

type selectBody struct {
	Collective string             `json:"collective"`
	Features   map[string]float64 `json:"features"`
}

func postSelect(ctx context.Context, opts Options, r *Request) (ok bool, kind string) {
	body, err := json.Marshal(selectBody{Collective: r.Collective, Features: r.Features})
	if err != nil {
		return false, "encode"
	}
	return post(ctx, opts, "/v1/select", body)
}

func postBatch(ctx context.Context, opts Options, group []Request) (okItems []bool, callOK bool, kind string) {
	okItems = make([]bool, len(group))
	reqs := make([]selectBody, len(group))
	for i, r := range group {
		reqs[i] = selectBody{Collective: r.Collective, Features: r.Features}
	}
	body, err := json.Marshal(map[string]any{"requests": reqs})
	if err != nil {
		return okItems, false, "encode"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.BaseURL+"/v1/select/batch", bytes.NewReader(body))
	if err != nil {
		return okItems, false, "transport"
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := opts.Client.Do(req)
	if err != nil {
		return okItems, false, "transport"
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return okItems, false, statusKind(resp.StatusCode)
	}
	var parsed struct {
		Results []struct {
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil || len(parsed.Results) != len(group) {
		return okItems, false, "decode"
	}
	for i, res := range parsed.Results {
		okItems[i] = res.Error == ""
	}
	return okItems, true, ""
}

func post(ctx context.Context, opts Options, path string, body []byte) (ok bool, kind string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return false, "transport"
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := opts.Client.Do(req)
	if err != nil {
		return false, "transport"
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return false, statusKind(resp.StatusCode)
	}
	return true, ""
}

func statusKind(code int) string {
	if code >= 500 {
		return "http_5xx"
	}
	return "http_4xx"
}

// recorder accumulates client-side statistics under one mutex; the HTTP
// round trip dominates, so contention is negligible at loadgen rates.
type recorder struct {
	mu           sync.Mutex
	overall      bucketAcc
	endpoints    map[string]*bucketAcc
	completed    uint64
	errors       uint64
	measured     uint64
	warmup       uint64
	errorsByKind map[string]uint64
}

type bucketAcc struct {
	counts []uint64
	sum    float64
	count  uint64
}

func (a *bucketAcc) add(v float64) {
	if a.counts == nil {
		a.counts = make([]uint64, len(clientBuckets)+1)
	}
	a.counts[sort.SearchFloat64s(clientBuckets, v)]++
	a.sum += v
	a.count++
}

func newRecorder() *recorder {
	return &recorder{
		endpoints:    make(map[string]*bucketAcc),
		errorsByKind: make(map[string]uint64),
	}
}

// record handles a single-request call: one item, one endpoint sample.
func (r *recorder) record(endpoint string, sec float64, measured, ok bool, kind string) {
	r.recordCall(endpoint, sec, measured, ok, kind)
	r.recordItem(sec, measured, ok, kind)
}

// recordCall tracks per-endpoint call latency (one sample per HTTP call).
func (r *recorder) recordCall(endpoint string, sec float64, measured, ok bool, kind string) {
	if !measured || !ok {
		return
	}
	r.mu.Lock()
	ep := r.endpoints[endpoint]
	if ep == nil {
		ep = &bucketAcc{}
		r.endpoints[endpoint] = ep
	}
	ep.add(sec)
	r.mu.Unlock()
}

// recordItem tracks per-request outcome and overall latency.
func (r *recorder) recordItem(sec float64, measured, ok bool, kind string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !measured {
		r.warmup++
		return
	}
	r.measured++
	if !ok {
		r.errors++
		r.errorsByKind[kind]++
		return
	}
	r.completed++
	r.overall.add(sec)
}

func (r *recorder) results(windowSeconds float64) Results {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := Results{
		Measured:        r.measured,
		WarmupRequests:  r.warmup,
		Completed:       r.completed,
		Errors:          r.errors,
		MeasuredSeconds: windowSeconds,
		Latency:         obs.SummaryFromBuckets(clientBuckets, r.overall.counts, r.overall.sum, r.overall.count),
	}
	if windowSeconds > 0 {
		res.ThroughputRPS = float64(r.completed) / windowSeconds
	}
	if len(r.endpoints) > 0 {
		res.Endpoints = make(map[string]obs.Summary, len(r.endpoints))
		for ep, acc := range r.endpoints {
			res.Endpoints[ep] = obs.SummaryFromBuckets(clientBuckets, acc.counts, acc.sum, acc.count)
		}
	}
	if len(r.errorsByKind) > 0 {
		res.ErrorsByKind = make(map[string]uint64, len(r.errorsByKind))
		for k, v := range r.errorsByKind {
			res.ErrorsByKind[k] = v
		}
	}
	return res
}
