package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"github.com/pml-mpi/pmlmpi/pkg/analytics"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
)

// probe scrapes the server's observability surface before and after a run
// so the report can carry true per-run deltas rather than
// since-server-start cumulatives.
type probe struct {
	base   string
	client *http.Client
}

func newProbe(base string, client *http.Client) *probe {
	return &probe{base: strings.TrimRight(base, "/"), client: client}
}

func (p *probe) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return fmt.Errorf("GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// serverHealth is the subset of /healthz the report stamps.
type serverHealth struct {
	Status        string   `json:"status"`
	ServerVersion string   `json:"server_version"`
	GoVersion     string   `json:"go_version"`
	ModelVersion  string   `json:"model_version"`
	TrainedOn     []string `json:"trained_on"`
	Generation    *struct {
		ID   uint64 `json:"id"`
		Hash string `json:"hash"`
	} `json:"generation"`
	Collectives   map[string]json.RawMessage `json:"collectives"`
	UptimeSeconds float64                    `json:"uptime_seconds"`
}

func (p *probe) health(ctx context.Context) (serverHealth, error) {
	var h serverHealth
	err := p.getJSON(ctx, "/healthz", &h)
	return h, err
}

func (p *probe) analytics(ctx context.Context) ([]analytics.Row, error) {
	var resp struct {
		Rows []analytics.Row `json:"rows"`
	}
	err := p.getJSON(ctx, "/debug/analytics", &resp)
	return resp.Rows, err
}

// shadow returns the /debug/shadow report, or nil when the endpoint is not
// mounted (shadow evaluation disabled).
func (p *probe) shadow(ctx context.Context) (*registry.ShadowReport, error) {
	var rep registry.ShadowReport
	err := p.getJSON(ctx, "/debug/shadow", &rep)
	if err != nil {
		if strings.Contains(err.Error(), "404") {
			return nil, nil
		}
		return nil, err
	}
	return &rep, nil
}

// drift returns the /debug/drift report, or nil when the endpoint is not
// mounted (model-health observatory disabled).
func (p *probe) drift(ctx context.Context) (*modelhealth.DriftReport, error) {
	var rep modelhealth.DriftReport
	err := p.getJSON(ctx, "/debug/drift", &rep)
	if err != nil {
		if strings.Contains(err.Error(), "404") {
			return nil, nil
		}
		return nil, err
	}
	return &rep, nil
}

// decisionsByGeneration tallies the /debug/decisions ring by model
// generation. The ring is bounded, so this is a recent-window sample — the
// fleet-level "which generation answered" signal, not an exact count.
func (p *probe) decisionsByGeneration(ctx context.Context) (map[string]uint64, error) {
	var resp struct {
		Decisions []struct {
			Generation uint64 `json:"generation"`
		} `json:"decisions"`
	}
	if err := p.getJSON(ctx, "/debug/decisions?limit=0", &resp); err != nil {
		return nil, err
	}
	tally := make(map[string]uint64)
	for _, d := range resp.Decisions {
		tally[strconv.FormatUint(d.Generation, 10)]++
	}
	return tally, nil
}

// gatewayReplicaRow mirrors one row of the gateway's /debug/replicas
// ledger (cumulative since gateway start; the report diffs two scrapes).
type gatewayReplicaRow struct {
	ID                     string            `json:"id"`
	Healthy                bool              `json:"healthy"`
	Requests               uint64            `json:"requests"`
	Errors                 uint64            `json:"errors"`
	SelectionsByCollective map[string]uint64 `json:"selections_by_collective"`
}

// gatewayReplicas scrapes /debug/replicas. Unlike the optional debug
// surfaces, gateway mode treats a failure here as fatal before the run:
// without the ledger there is no routing evidence to report.
func (p *probe) gatewayReplicas(ctx context.Context) ([]gatewayReplicaRow, error) {
	var resp struct {
		Replicas []gatewayReplicaRow `json:"replicas"`
	}
	if err := p.getJSON(ctx, "/debug/replicas", &resp); err != nil {
		return nil, err
	}
	return resp.Replicas, nil
}

// gatewayResults diffs two /debug/replicas scrapes into the report's
// gateway section: per-replica request/error/selection deltas, each
// replica's share of proxy attempts, and the fleet-wide selection tally.
func gatewayResults(before, after []gatewayReplicaRow) *GatewayResults {
	prev := make(map[string]gatewayReplicaRow, len(before))
	for _, r := range before {
		prev[r.ID] = r
	}
	out := &GatewayResults{}
	var total uint64
	for _, r := range after {
		b := prev[r.ID]
		row := GatewayReplica{
			ID:       r.ID,
			Healthy:  r.Healthy,
			Requests: subU64(r.Requests, b.Requests),
			Errors:   subU64(r.Errors, b.Errors),
		}
		for c, n := range r.SelectionsByCollective {
			d := subU64(n, b.SelectionsByCollective[c])
			if d == 0 {
				continue
			}
			if row.SelectionsByCollective == nil {
				row.SelectionsByCollective = make(map[string]uint64)
			}
			row.SelectionsByCollective[c] = d
			if out.SelectionsByCollective == nil {
				out.SelectionsByCollective = make(map[string]uint64)
			}
			out.SelectionsByCollective[c] += d
		}
		total += row.Requests
		out.Replicas = append(out.Replicas, row)
	}
	if total > 0 {
		for i := range out.Replicas {
			out.Replicas[i].Share = float64(out.Replicas[i].Requests) / float64(total)
		}
	}
	return out
}

func subU64(a, b uint64) uint64 {
	if a <= b {
		return 0
	}
	return a - b
}

// metricsSnapshot is the scraped subset of /metrics the report diffs:
// decision-cache traffic, per-collective selection counts, and the merged
// pmlmpi_select_duration_seconds histogram.
type metricsSnapshot struct {
	cacheHits   float64
	cacheMisses float64
	selections  map[string]float64 // by collective
	pathCounts  map[string]float64 // select duration _count by path label
	bounds      []float64          // sorted finite le bounds
	buckets     map[float64]float64
	sum         float64
	count       float64

	marginCount   float64 // pmlmpi_margin_vote observations across collectives
	marginLow     float64 // pmlmpi_margin_low_total across collectives
	flightRecords float64 // pmlmpi_flightrec_records_total across reasons

	feedbackByOutcome map[string]float64 // pmlmpi_feedback_records_total by outcome
	retrainByOutcome  map[string]float64 // pmlmpi_retrain_cycles_total by outcome
}

func (p *probe) metrics(ctx context.Context) (*metricsSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return parseMetrics(string(body))
}

func parseMetrics(text string) (*metricsSnapshot, error) {
	snap := &metricsSnapshot{
		selections:        make(map[string]float64),
		pathCounts:        make(map[string]float64),
		buckets:           make(map[float64]float64),
		feedbackByOutcome: make(map[string]float64),
		retrainByOutcome:  make(map[string]float64),
	}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, ok := parsePromLine(line)
		if !ok {
			continue
		}
		switch name {
		case "pmlmpi_cache_hits_total":
			snap.cacheHits += value
		case "pmlmpi_cache_misses_total":
			snap.cacheMisses += value
		case "pmlmpi_selections_total":
			snap.selections[labels["collective"]] += value
		case "pmlmpi_select_duration_seconds_sum":
			snap.sum += value
		case "pmlmpi_select_duration_seconds_count":
			snap.count += value
			snap.pathCounts[labels["path"]] += value
		case "pmlmpi_margin_vote_count":
			snap.marginCount += value
		case "pmlmpi_margin_low_total":
			snap.marginLow += value
		case "pmlmpi_flightrec_records_total":
			snap.flightRecords += value
		case "pmlmpi_feedback_records_total":
			snap.feedbackByOutcome[labels["outcome"]] += value
		case "pmlmpi_retrain_cycles_total":
			snap.retrainByOutcome[labels["outcome"]] += value
		case "pmlmpi_select_duration_seconds_bucket":
			le, err := parseLE(labels["le"])
			if err != nil {
				return nil, fmt.Errorf("bad le label in %q: %w", line, err)
			}
			snap.buckets[le] += value
		}
	}
	for le := range snap.buckets {
		if !math.IsInf(le, 1) {
			snap.bounds = append(snap.bounds, le)
		}
	}
	sort.Float64s(snap.bounds)
	return snap, nil
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parsePromLine parses one Prometheus text-format sample:
// name{k="v",...} value. Label values in this codebase never contain
// escaped quotes, so a simple quote scan suffices.
func parsePromLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return "", nil, 0, false
		}
		for _, pair := range splitLabels(line[i+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				continue
			}
			labels[pair[:eq]] = strings.Trim(pair[eq+1:], `"`)
		}
		rest = strings.TrimSpace(line[end+1:])
	} else {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", nil, 0, false
		}
		name = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	// The value is the first whitespace-separated token (a timestamp may
	// follow in the general format; this codebase emits none).
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		parts = append(parts, s[start:])
	}
	return parts
}

// delta computes after-minus-before for every tracked counter family and
// folds the merged histogram delta into an obs.Summary. Negative deltas
// (server restarted mid-run) clamp to zero.
func (after *metricsSnapshot) delta(before *metricsSnapshot) ServerDelta {
	d := ServerDelta{
		CacheHits:              clampU64(after.cacheHits - before.cacheHits),
		CacheMisses:            clampU64(after.cacheMisses - before.cacheMisses),
		SelectionsByCollective: make(map[string]uint64),
		SelectPathCounts:       make(map[string]uint64),
	}
	if total := d.CacheHits + d.CacheMisses; total > 0 {
		d.CacheHitRate = float64(d.CacheHits) / float64(total)
	}
	for c, v := range after.selections {
		if n := clampU64(v - before.selections[c]); n > 0 {
			d.SelectionsByCollective[c] = n
		}
	}
	for p, v := range after.pathCounts {
		if n := clampU64(v - before.pathCounts[p]); n > 0 {
			d.SelectPathCounts[p] = n
		}
	}
	for o, v := range after.feedbackByOutcome {
		if n := clampU64(v - before.feedbackByOutcome[o]); n > 0 {
			if d.FeedbackByOutcome == nil {
				d.FeedbackByOutcome = make(map[string]uint64)
			}
			d.FeedbackByOutcome[o] = n
		}
	}
	for o, v := range after.retrainByOutcome {
		if n := clampU64(v - before.retrainByOutcome[o]); n > 0 {
			if d.RetrainCycles == nil {
				d.RetrainCycles = make(map[string]uint64)
			}
			d.RetrainCycles[o] = n
		}
	}

	// Histogram delta: cumulative per-le differences, then de-cumulated
	// into per-bucket counts (+Inf last) for SummaryFromBuckets.
	bounds := after.bounds
	counts := make([]uint64, len(bounds)+1)
	var prev float64
	for i, le := range bounds {
		cum := after.buckets[le] - before.buckets[le]
		counts[i] = clampU64(cum - prev)
		prev = cum
	}
	inf := math.Inf(1)
	counts[len(bounds)] = clampU64((after.buckets[inf] - before.buckets[inf]) - prev)
	count := clampU64(after.count - before.count)
	d.SelectLatency = obs.SummaryFromBuckets(bounds, counts, after.sum-before.sum, count)
	return d
}

// modelHealthReport folds the post-run drift report and the margin /
// flight-recorder counter deltas into the report's model_health section.
// after may be nil (failed post-run scrape); the drift verdicts still land.
func modelHealthReport(dr *modelhealth.DriftReport, before, after *metricsSnapshot) *ModelHealthReport {
	mh := &ModelHealthReport{DriftStatus: dr.Status}
	if len(dr.Features) > 0 {
		mh.DriftLastPSI = make(map[string]float64, len(dr.Features))
		mh.DriftFeatureStatus = make(map[string]string, len(dr.Features))
		for _, f := range dr.Features {
			mh.DriftLastPSI[f.Feature] = f.LastPSI
			mh.DriftFeatureStatus[f.Feature] = f.Status
		}
	}
	if after != nil {
		mh.MarginObservations = clampU64(after.marginCount - before.marginCount)
		mh.LowMarginDecisions = clampU64(after.marginLow - before.marginLow)
		mh.FlightRecords = clampU64(after.flightRecords - before.flightRecords)
		if mh.MarginObservations > 0 {
			mh.LowMarginRate = float64(mh.LowMarginDecisions) / float64(mh.MarginObservations)
		}
	}
	return mh
}

func clampU64(v float64) uint64 {
	if v <= 0 {
		return 0
	}
	return uint64(v + 0.5)
}
