package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/admin"
	"github.com/pml-mpi/pmlmpi/pkg/analytics"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/feedback"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/retrain"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/slo"
)

// newLiveServer boots the full admin surface over the committed trained
// fixture — the same wiring cmd/pmlmpi-server uses, behind httptest —
// with the given forest evaluator mode ("" means the compiled default).
func newLiveServer(t *testing.T, evalMode string) *httptest.Server {
	t.Helper()
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	r := registry.New(o, registry.Config{})
	g, err := r.Load(filepath.Join("..", "bundle", "testdata", "trained_small.json"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	tracker := slo.New(o.Registry, slo.Objectives{SelectP99: time.Millisecond, Availability: 0.999})
	health := modelhealth.New(o.Registry, modelhealth.Config{})
	sel := selector.NewFromSource(r, o, selector.Config{
		RingSize:   1024,
		Cache:      cache.New(cache.Config{}, o.Registry),
		SLO:        tracker,
		ForestEval: evalMode,
		Health:     health,
	})
	srv := httptest.NewServer(admin.New(sel, o, admin.Config{Registry: r, SLO: tracker, Health: health}))
	t.Cleanup(srv.Close)
	return srv
}

func monotone(t *testing.T, label string, s obs.Summary) {
	t.Helper()
	if !(s.P50US <= s.P90US && s.P90US <= s.P99US && s.P99US <= s.P999US) {
		t.Errorf("%s quantiles not monotone: p50=%v p90=%v p99=%v p999=%v",
			label, s.P50US, s.P90US, s.P99US, s.P999US)
	}
}

func TestRunEndToEnd(t *testing.T) {
	srv := newLiveServer(t, selector.EvalCompiled)
	opts := Options{
		BaseURL:  srv.URL,
		Seed:     11,
		QPS:      600,
		Duration: time.Second,
		Warmup:   200 * time.Millisecond,
		Workers:  8,
		Logf:     t.Logf,
	}
	rep, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	// Client side: a healthy fixture server must answer everything.
	if rep.Client.Errors != 0 {
		t.Fatalf("errors = %d (%v), want 0", rep.Client.Errors, rep.Client.ErrorsByKind)
	}
	if rep.Client.Completed == 0 || rep.Client.ThroughputRPS <= 0 {
		t.Fatalf("completed = %d, throughput = %v", rep.Client.Completed, rep.Client.ThroughputRPS)
	}
	if rep.Client.Completed+rep.Client.WarmupRequests != uint64(rep.Config.Scheduled) {
		t.Errorf("completed %d + warmup %d != scheduled %d",
			rep.Client.Completed, rep.Client.WarmupRequests, rep.Config.Scheduled)
	}
	monotone(t, "client", rep.Client.Latency)
	for ep, s := range rep.Client.Endpoints {
		monotone(t, ep, s)
	}
	if _, ok := rep.Client.Endpoints["/v1/select"]; !ok {
		t.Error("no /v1/select endpoint stats")
	}
	if _, ok := rep.Client.Endpoints["/v1/select/batch"]; !ok {
		t.Error("no /v1/select/batch endpoint stats (DefaultSpec batches 20%)")
	}

	// The run config pins the exact workload for replay.
	seq, _ := Sequence(*opts.withDefaults().Spec, opts.Seed, rep.Config.Scheduled)
	wantHash, _ := SequenceHash(seq)
	if rep.Config.SequenceHash != wantHash {
		t.Errorf("report hash %s != recomputed %s", rep.Config.SequenceHash, wantHash)
	}

	// Server stamp.
	if rep.Server.Version == "" || rep.Server.GoVersion == "" {
		t.Errorf("server stamp incomplete: %+v", rep.Server)
	}
	if len(rep.Server.Collectives) != 2 {
		t.Errorf("collectives = %v, want [allgather broadcast]", rep.Server.Collectives)
	}

	// Server-side delta: every scheduled request (warmup included — the
	// server has no warmup concept) ran exactly one Select.
	var selections uint64
	for _, n := range rep.Delta.SelectionsByCollective {
		selections += n
	}
	if selections != uint64(rep.Config.Scheduled) {
		t.Errorf("server-side selections delta = %d, want %d", selections, rep.Config.Scheduled)
	}
	if rep.Delta.SelectLatency.Count != uint64(rep.Config.Scheduled) {
		t.Errorf("select histogram delta count = %d, want %d",
			rep.Delta.SelectLatency.Count, rep.Config.Scheduled)
	}
	monotone(t, "server delta", rep.Delta.SelectLatency)
	// The fixture grid repeats, so the decision cache must be doing work.
	if rep.Delta.CacheHits == 0 || rep.Delta.CacheHitRate <= 0 {
		t.Errorf("cache delta hits=%d rate=%v, want hits under a repeating grid",
			rep.Delta.CacheHits, rep.Delta.CacheHitRate)
	}
	if len(rep.Delta.RecentDecisionsByGeneration) == 0 {
		t.Error("no per-generation decision tally scraped")
	}
	if len(rep.Analytics) == 0 {
		t.Fatal("no analytics rows scraped")
	}

	// Quantile cross-validation: the /metrics histogram delta and the
	// /debug/analytics rollup watched the same selects through different
	// bucket layouts. A mixture's quantile lies within the min/max of its
	// components' quantiles, so the merged metric-side estimate must land
	// inside the analytics rows' span, widened by one bucket factor on
	// each side (factor-2 analytics buckets × ~factor-2.5 LatencyBuckets).
	checkQuantileAgainstAnalytics(t, "p50", rep.Delta.SelectLatency.P50US, rep.Analytics,
		func(r analytics.Row) float64 { return r.P50US })
	checkQuantileAgainstAnalytics(t, "p99", rep.Delta.SelectLatency.P99US, rep.Analytics,
		func(r analytics.Row) float64 { return r.P99US })
}

func checkQuantileAgainstAnalytics(t *testing.T, label string, gotUS float64, rows []analytics.Row, pick func(analytics.Row) float64) {
	t.Helper()
	const tolerance = 5.0 // one bucket boundary of slack on each estimator
	lo, hi := pick(rows[0]), pick(rows[0])
	for _, r := range rows[1:] {
		if v := pick(r); v < lo {
			lo = v
		} else if v > hi {
			hi = v
		}
	}
	if gotUS < lo/tolerance || gotUS > hi*tolerance {
		t.Errorf("%s: metrics-delta estimate %vus outside analytics span [%v, %v]us × tolerance %v",
			label, gotUS, lo, hi, tolerance)
	}
}

// TestRunSequenceHashStableAcrossRuns: the byte-identical-replay
// guarantee, end to end — two live runs with one seed report one hash.
func TestRunSequenceHashStableAcrossRuns(t *testing.T) {
	srv := newLiveServer(t, selector.EvalCompiled)
	opts := Options{
		BaseURL:  srv.URL,
		Seed:     23,
		QPS:      300,
		Duration: 400 * time.Millisecond,
		Workers:  4,
	}
	a, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Config.SequenceHash != b.Config.SequenceHash {
		t.Fatalf("same seed, different workloads: %s vs %s", a.Config.SequenceHash, b.Config.SequenceHash)
	}
	if a.Config.Scheduled != b.Config.Scheduled {
		t.Fatalf("scheduled %d vs %d", a.Config.Scheduled, b.Config.Scheduled)
	}
}

// TestRunIdenticalAcrossEvalModes drives the same seeded workload against
// one live server per forest evaluator mode and asserts the serving
// surface is indistinguishable: identical per-collective selection counts
// and an identical per-collective class tally in the decision ring. The
// unit differential tests pin prediction bits; this pins the end-to-end
// behavior a fleet operator would observe when flipping -forest-eval.
func TestRunIdenticalAcrossEvalModes(t *testing.T) {
	type outcome struct {
		hash       string
		selections map[string]uint64
		classes    map[string]uint64 // "collective/class" -> decisions
	}
	outcomes := map[string]outcome{}
	for _, mode := range []string{selector.EvalCompiled, selector.EvalPointer} {
		srv := newLiveServer(t, mode)
		rep, err := Run(context.Background(), Options{
			BaseURL:  srv.URL,
			Seed:     31,
			QPS:      300,
			Duration: 500 * time.Millisecond,
			Workers:  4,
		})
		if err != nil {
			t.Fatalf("%s: run: %v", mode, err)
		}
		if rep.Client.Errors != 0 {
			t.Fatalf("%s: %d client errors (%v)", mode, rep.Client.Errors, rep.Client.ErrorsByKind)
		}
		// The decision ring (sized above the scheduled request count, so
		// nothing was evicted) records which class every select chose.
		resp, err := http.Get(srv.URL + "/debug/decisions?limit=0")
		if err != nil {
			t.Fatalf("%s: scrape decisions: %v", mode, err)
		}
		var ring struct {
			Decisions []struct {
				Collective string `json:"collective"`
				Class      int    `json:"class"`
			} `json:"decisions"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ring)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: decode decisions: %v", mode, err)
		}
		if uint64(len(ring.Decisions)) != uint64(rep.Config.Scheduled) {
			t.Fatalf("%s: decision ring has %d entries for %d scheduled requests (ring evicted — shrink the workload)",
				mode, len(ring.Decisions), rep.Config.Scheduled)
		}
		classes := make(map[string]uint64)
		for _, d := range ring.Decisions {
			classes[fmt.Sprintf("%s/%d", d.Collective, d.Class)]++
		}
		outcomes[mode] = outcome{rep.Config.SequenceHash, rep.Delta.SelectionsByCollective, classes}
	}
	a, b := outcomes[selector.EvalCompiled], outcomes[selector.EvalPointer]
	if a.hash != b.hash {
		t.Fatalf("workloads diverged despite one seed: %s vs %s", a.hash, b.hash)
	}
	if !reflect.DeepEqual(a.selections, b.selections) {
		t.Errorf("per-collective selection counts differ across eval modes:\ncompiled: %v\npointer:  %v",
			a.selections, b.selections)
	}
	if !reflect.DeepEqual(a.classes, b.classes) {
		t.Errorf("per-collective class tallies differ across eval modes:\ncompiled: %v\npointer:  %v",
			a.classes, b.classes)
	}
}

// TestRunDriftVerdicts is the end-to-end drift check: a workload drawn
// uniformly from the training sweep's own grids must leave /debug/drift at
// "ok", and the same-size workload shifted entirely outside the training
// support must flip it to "alert". Both runs are seeded, so the verdicts
// are deterministic. The committed spec files are the same ones the CI
// drift smoke replays against a real server binary.
func TestRunDriftVerdicts(t *testing.T) {
	cases := []struct {
		specFile   string
		wantStatus string
	}{
		{"spec_sweep_indist.json", "ok"},
		{"spec_sweep_shifted.json", "alert"},
	}
	for _, tc := range cases {
		t.Run(tc.specFile, func(t *testing.T) {
			spec, err := LoadSpec(filepath.Join("testdata", tc.specFile))
			if err != nil {
				t.Fatalf("load spec: %v", err)
			}
			srv := newLiveServer(t, selector.EvalCompiled)
			// 800 scheduled requests complete one full default drift window
			// (512) for every monitored feature.
			rep, err := Run(context.Background(), Options{
				BaseURL:  srv.URL,
				Spec:     &spec,
				Seed:     7,
				QPS:      800,
				Duration: time.Second,
				Workers:  8,
				Logf:     t.Logf,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if rep.Client.Errors != 0 {
				t.Fatalf("errors = %d (%v), want 0", rep.Client.Errors, rep.Client.ErrorsByKind)
			}
			mh := rep.ModelHealth
			if mh == nil {
				t.Fatal("report has no model_health section despite a mounted observatory")
			}
			if mh.DriftStatus != tc.wantStatus {
				t.Fatalf("drift status = %q (per-feature PSI %v), want %q",
					mh.DriftStatus, mh.DriftLastPSI, tc.wantStatus)
			}
			// Every scheduled request fed the margin telemetry exactly once.
			if mh.MarginObservations != uint64(rep.Config.Scheduled) {
				t.Errorf("margin observations = %d, want %d (one per scheduled request)",
					mh.MarginObservations, rep.Config.Scheduled)
			}
			for feat, status := range mh.DriftFeatureStatus {
				if status != tc.wantStatus {
					t.Errorf("feature %s status = %q, want %q (psi %v)",
						feat, status, tc.wantStatus, mh.DriftLastPSI[feat])
				}
			}
		})
	}
}

func TestRunRefusesUnreachableServer(t *testing.T) {
	_, err := Run(context.Background(), Options{
		BaseURL: "http://127.0.0.1:1",
		Timeout: 500 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("want error against unreachable server")
	}
}

func TestReportWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_loadgen.json")
	rep := &Report{Schema: ReportSchema, Config: RunConfig{SpecName: "x", Seed: 1}}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if back.Schema != ReportSchema || back.Config.SpecName != "x" {
		t.Fatalf("round trip = %+v", back)
	}
	// No temp litter after a successful rename.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
}

// newSelfTuningServer extends the live fixture server with the feedback
// store and an idle retrain controller — the full self-tuning surface.
func newSelfTuningServer(t *testing.T) *httptest.Server {
	t.Helper()
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	shadow := registry.NewShadow(o, registry.ShadowConfig{})
	r := registry.New(o, registry.Config{Shadow: shadow})
	g, err := r.Load(filepath.Join("..", "bundle", "testdata", "trained_small.json"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	health := modelhealth.New(o.Registry, modelhealth.Config{})
	sel := selector.NewFromSource(r, o, selector.Config{
		RingSize: 1024,
		Cache:    cache.New(cache.Config{}, o.Registry),
		Health:   health,
	})
	store, err := feedback.NewStore(o.Registry, feedback.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("feedback store: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	ctrl, err := retrain.New(o, retrain.Config{},
		retrain.Deps{Store: store, Registry: r, Shadow: shadow, Health: health})
	if err != nil {
		t.Fatalf("retrain controller: %v", err)
	}
	srv := httptest.NewServer(admin.New(sel, o, admin.Config{
		Registry: r, Health: health, Feedback: store, Retrain: ctrl,
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunFeedbackEmission: a feedback-emitting run posts oracle-labeled
// records for exactly the flagged requests, the server accepts or dedups
// every one (the oracle labels itself, so nothing can be implausible), the
// client and server ledgers agree, and the sequence hash is the same one a
// feedback-free run would report.
func TestRunFeedbackEmission(t *testing.T) {
	srv := newSelfTuningServer(t)
	opts := Options{
		BaseURL:          srv.URL,
		Seed:             11,
		QPS:              400,
		Duration:         time.Second,
		Workers:          8,
		FeedbackFraction: 0.5,
		Logf:             t.Logf,
	}
	rep, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Client.Errors != 0 {
		t.Fatalf("client errors = %d (%v)", rep.Client.Errors, rep.Client.ErrorsByKind)
	}
	fb := rep.Feedback
	if fb == nil {
		t.Fatal("report has no feedback section despite FeedbackFraction 0.5")
	}
	if rep.Config.FeedbackFraction != 0.5 || fb.Fraction != 0.5 {
		t.Errorf("feedback fraction not echoed: config %v, results %v", rep.Config.FeedbackFraction, fb.Fraction)
	}
	if fb.Flagged == 0 || fb.Flagged >= uint64(rep.Config.Scheduled) {
		t.Fatalf("flagged = %d of %d scheduled at fraction 0.5", fb.Flagged, rep.Config.Scheduled)
	}
	if fb.Errors != 0 || fb.OracleSkips != 0 {
		t.Fatalf("feedback errors=%d oracle_skips=%d, want 0 (%+v)", fb.Errors, fb.OracleSkips, fb)
	}
	if fb.Posted != fb.Flagged {
		t.Errorf("posted %d != flagged %d", fb.Posted, fb.Flagged)
	}
	// The oracle labels its own records, so every post is accepted or a
	// dedup of an earlier identical feature point.
	if fb.Accepted == 0 || fb.Accepted+fb.Duplicates != fb.Posted {
		t.Errorf("accepted %d + duplicates %d != posted %d (quarantined %d, invalid %d)",
			fb.Accepted, fb.Duplicates, fb.Posted, fb.Quarantined, fb.Invalid)
	}
	// Server-side cross-check via the scraped counter delta.
	if got := rep.Delta.FeedbackByOutcome["accepted"]; got != fb.Accepted {
		t.Errorf("server accepted delta = %d, client saw %d", got, fb.Accepted)
	}
	if got := rep.Delta.FeedbackByOutcome["duplicate"]; got != fb.Duplicates {
		t.Errorf("server duplicate delta = %d, client saw %d", got, fb.Duplicates)
	}
	// Feedback emission must not perturb the workload: the hash matches
	// the pure expansion of (spec, seed, n).
	seq, _ := Sequence(*opts.withDefaults().Spec, opts.Seed, rep.Config.Scheduled)
	wantHash, _ := SequenceHash(seq)
	if rep.Config.SequenceHash != wantHash {
		t.Errorf("report hash %s != feedback-free expansion %s", rep.Config.SequenceHash, wantHash)
	}
}

func TestRunRejectsBadFeedbackFraction(t *testing.T) {
	if _, err := Run(context.Background(), Options{BaseURL: "http://127.0.0.1:1", FeedbackFraction: 1.5}); err == nil {
		t.Fatal("want error for feedback fraction > 1")
	}
}
