// Package loadgen is a deterministic, open-loop load generator for the
// PML-MPI selection service. A seeded workload Spec expands into a fully
// reproducible request sequence (same seed + same spec = byte-identical
// requests), which the engine replays against a live server's /v1/select
// and /v1/select/batch endpoints at a target arrival rate. The run report
// combines client-observed latency quantiles with scraped server-side
// counter deltas, so one artifact captures both sides of the benchmark.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Scenario is one weighted cell of the workload mix: a collective crossed
// with topology and message-size grids. Each generated request draws one
// value from every axis.
type Scenario struct {
	// Name labels the scenario in reports and generated requests.
	Name string `json:"name"`
	// Collective is the target collective operation (must exist in the
	// served bundle for the request to succeed).
	Collective string `json:"collective"`
	// Weight is the scenario's relative share of generated traffic.
	Weight float64 `json:"weight"`
	// NumNodes and PPN are the communicator topology grids (nodes ×
	// processes per node), drawn uniformly.
	NumNodes []int `json:"num_nodes"`
	PPN      []int `json:"ppn"`
	// Log2MsgSizes is the grid of log2(message bytes) values.
	Log2MsgSizes []int `json:"log2_msg_sizes"`
	// SizeSkew biases the message-size draw toward the small end of
	// Log2MsgSizes: the index is chosen as floor(len * u^SizeSkew) for
	// uniform u, so 1 (or 0, the default standing for 1) is uniform and
	// larger values make big messages progressively rarer — the heavy
	// tail of a DL training mix.
	SizeSkew float64 `json:"size_skew,omitempty"`
}

// Spec is a complete workload description. It is pure data: expanding it
// with a seed (see Sequence) is the only source of randomness, so a
// committed spec file plus a seed pins a benchmark workload forever.
type Spec struct {
	// Name identifies the spec in reports.
	Name string `json:"name"`
	// System holds the host/interconnect feature values merged into every
	// request; scenario axes (num_nodes, ppn, log2_msg_size) override any
	// colliding key.
	System map[string]float64 `json:"system"`
	// Scenarios is the weighted mix.
	Scenarios []Scenario `json:"scenarios"`
	// BatchFraction is the fraction of requests delivered via
	// /v1/select/batch instead of /v1/select; BatchSize caps the items
	// coalesced per batch call.
	BatchFraction float64 `json:"batch_fraction"`
	BatchSize     int     `json:"batch_size,omitempty"`
}

// Validate checks the spec for internal consistency.
func (s *Spec) Validate() error {
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("spec %q has no scenarios", s.Name)
	}
	for i, sc := range s.Scenarios {
		switch {
		case sc.Collective == "":
			return fmt.Errorf("scenario %d (%q): missing collective", i, sc.Name)
		case sc.Weight <= 0:
			return fmt.Errorf("scenario %d (%q): weight must be > 0, got %v", i, sc.Name, sc.Weight)
		case len(sc.NumNodes) == 0 || len(sc.PPN) == 0 || len(sc.Log2MsgSizes) == 0:
			return fmt.Errorf("scenario %d (%q): num_nodes, ppn and log2_msg_sizes must be non-empty", i, sc.Name)
		case sc.SizeSkew < 0:
			return fmt.Errorf("scenario %d (%q): size_skew must be >= 0, got %v", i, sc.Name, sc.SizeSkew)
		}
	}
	if s.BatchFraction < 0 || s.BatchFraction > 1 {
		return fmt.Errorf("batch_fraction must be in [0,1], got %v", s.BatchFraction)
	}
	if s.BatchFraction > 0 && s.BatchSize < 1 {
		return fmt.Errorf("batch_size must be >= 1 when batch_fraction > 0, got %d", s.BatchSize)
	}
	return nil
}

// ParseSpec decodes and validates a JSON workload spec.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("decode spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a workload spec from a file.
func LoadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	return ParseSpec(f)
}

// DefaultSpec is the committed benchmark workload: a heavy-tailed deep-
// learning collective mix sized from the DLcomm payload grids (per-GPU
// buffers from 1 KB control messages up to 100 MB gradient blocks,
// communicator shapes from a handful of nodes × 2–12 GPUs each). It
// targets the allgather and broadcast collectives served by the committed
// trained fixture, so a stock server answers every request.
func DefaultSpec() Spec {
	return Spec{
		Name: "dlcomm-mix/v1",
		System: map[string]float64{
			"max_clock_ghz":   2.6,
			"l3_cache_mib":    32,
			"mem_bw_gbs":      180,
			"core_count":      32,
			"thread_count":    64,
			"sockets":         2,
			"numa_nodes":      4,
			"pcie_lanes":      64,
			"pcie_gen":        4,
			"link_speed_gbps": 100,
			"link_width":      4,
		},
		Scenarios: []Scenario{
			{
				// Activation/embedding exchange: frequent, small-to-medium
				// payloads, skewed small.
				Name:         "allgather/dl-activations",
				Collective:   "allgather",
				Weight:       0.45,
				NumNodes:     []int{2, 4, 8, 16},
				PPN:          []int{2, 4, 8, 12},
				Log2MsgSizes: []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21},
				SizeSkew:     2,
			},
			{
				// Gradient blocks: rare but huge (8 MB – 128 MB), the heavy
				// tail of the mix.
				Name:         "allgather/dl-gradients",
				Collective:   "allgather",
				Weight:       0.15,
				NumNodes:     []int{2, 4},
				PPN:          []int{8, 12},
				Log2MsgSizes: []int{23, 24, 25, 26, 27},
			},
			{
				// Parameter/model broadcast at step boundaries.
				Name:         "broadcast/model-sync",
				Collective:   "broadcast",
				Weight:       0.30,
				NumNodes:     []int{2, 4, 8, 16, 32},
				PPN:          []int{4, 8, 12},
				Log2MsgSizes: []int{10, 12, 14, 16, 18, 20, 22, 24},
				SizeSkew:     1.5,
			},
			{
				// Tiny control-plane broadcasts (flags, counters).
				Name:         "broadcast/control-small",
				Collective:   "broadcast",
				Weight:       0.10,
				NumNodes:     []int{2, 4, 8, 16, 32, 64},
				PPN:          []int{1, 2, 4},
				Log2MsgSizes: []int{4, 6, 8, 10},
			},
		},
		BatchFraction: 0.2,
		BatchSize:     16,
	}
}
