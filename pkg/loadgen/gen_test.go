package loadgen

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// goldenSequenceHash pins the exact byte encoding of the committed
// benchmark workload: DefaultSpec, seed 42, 500 requests. If this test
// fails, the generator's output changed and every historical
// BENCH_loadgen.json with spec dlcomm-mix/v1 stops being comparable —
// bump the spec name rather than silently changing the workload.
const goldenSequenceHash = "39aaf9a9d20c8237ab9bb0112f7184ee5b3a8c7806d1b7faad03d6906bda7bf0"

func TestSequenceDeterministic(t *testing.T) {
	spec := DefaultSpec()
	a, err := Sequence(spec, 7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequence(spec, 7, 2000)
	if err != nil {
		t.Fatal(err)
	}
	encA, err := EncodeSequence(a)
	if err != nil {
		t.Fatal(err)
	}
	encB, err := EncodeSequence(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encA, encB) {
		t.Fatal("two runs with the same seed+spec produced different request bytes")
	}

	c, err := Sequence(spec, 8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	encC, _ := EncodeSequence(c)
	if bytes.Equal(encA, encC) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestSequenceGoldenHash(t *testing.T) {
	reqs, err := Sequence(DefaultSpec(), 42, 500)
	if err != nil {
		t.Fatal(err)
	}
	h, err := SequenceHash(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if h != goldenSequenceHash {
		t.Fatalf("sequence hash = %s, want pinned %s (the committed workload changed)", h, goldenSequenceHash)
	}
}

func TestSequenceShape(t *testing.T) {
	spec := DefaultSpec()
	reqs, err := Sequence(spec, 3, 5000)
	if err != nil {
		t.Fatal(err)
	}
	byScenario := map[string]int{}
	sawLarge := false
	for i, r := range reqs {
		if r.Index != i {
			t.Fatalf("reqs[%d].Index = %d", i, r.Index)
		}
		byScenario[r.Scenario]++
		if r.Collective != "allgather" && r.Collective != "broadcast" {
			t.Fatalf("unexpected collective %q", r.Collective)
		}
		for _, axis := range []string{"num_nodes", "ppn", "log2_msg_size", "link_speed_gbps"} {
			if _, ok := r.Features[axis]; !ok {
				t.Fatalf("request %d missing feature %q", i, axis)
			}
		}
		if r.Features["log2_msg_size"] >= 23 {
			sawLarge = true
		}
	}
	// Every scenario must appear, roughly in weight proportion.
	for _, sc := range spec.Scenarios {
		n := byScenario[sc.Name]
		if n == 0 {
			t.Errorf("scenario %q never drawn", sc.Name)
		}
		share := float64(n) / float64(len(reqs))
		if share < sc.Weight/2 || share > sc.Weight*2 {
			t.Errorf("scenario %q share = %.3f, weight %.2f", sc.Name, share, sc.Weight)
		}
	}
	if !sawLarge {
		t.Error("heavy tail missing: no request drew a >= 8MB message")
	}
}

func TestSizeSkewBiasesSmall(t *testing.T) {
	spec := Spec{
		Name:   "skewtest",
		System: map[string]float64{},
		Scenarios: []Scenario{{
			Name: "s", Collective: "c", Weight: 1,
			NumNodes: []int{2}, PPN: []int{2},
			Log2MsgSizes: []int{10, 12, 14, 16, 18, 20, 22, 24},
			SizeSkew:     3,
		}},
	}
	reqs, err := Sequence(spec, 1, 4000)
	if err != nil {
		t.Fatal(err)
	}
	small := 0
	for _, r := range reqs {
		if r.Features["log2_msg_size"] <= 14 {
			small++
		}
	}
	// With skew 3 the first three of eight slots hold ~u^(1/3) inverted
	// mass; uniform would give 37.5%, skewed must be well above.
	if frac := float64(small) / float64(len(reqs)); frac < 0.6 {
		t.Errorf("small-message fraction with skew 3 = %.3f, want > 0.6", frac)
	}
}

func TestArrivalsOpenLoopProperties(t *testing.T) {
	a := Arrivals(9, 1000, 500)
	b := Arrivals(9, 1000, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs between identical runs: %v vs %v", i, a[i], b[i])
		}
	}
	last := time.Duration(-1)
	for i, off := range a {
		if off <= last {
			t.Fatalf("arrivals not strictly increasing at %d: %v after %v", i, off, last)
		}
		last = off
	}
	// 1000 arrivals at 500 qps should span ~2s.
	if span := a[len(a)-1].Seconds(); span < 1.0 || span > 4.0 {
		t.Errorf("1000 arrivals at 500 qps span %.2fs, want ~2s", span)
	}
	// Changing QPS must not perturb the request-content stream: the
	// content RNG and arrival RNG are independent.
	s1, _ := Sequence(DefaultSpec(), 9, 100)
	_ = Arrivals(9, 100, 50)
	s2, _ := Sequence(DefaultSpec(), 9, 100)
	h1, _ := SequenceHash(s1)
	h2, _ := SequenceHash(s2)
	if h1 != h2 {
		t.Fatal("arrival generation perturbed request contents")
	}
}

func TestBatchFlagsDeterministic(t *testing.T) {
	a := batchFlags(4, 1000, 0.25)
	b := batchFlags(4, 1000, 0.25)
	n := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("batch assignment differs between identical runs")
		}
		if a[i] {
			n++
		}
	}
	if n < 150 || n > 350 {
		t.Errorf("batch-flagged %d of 1000 at fraction 0.25", n)
	}
	for _, f := range batchFlags(4, 100, 0) {
		if f {
			t.Fatal("batch flag set with fraction 0")
		}
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"no scenarios", func(s *Spec) { s.Scenarios = nil }, "no scenarios"},
		{"missing collective", func(s *Spec) { s.Scenarios[0].Collective = "" }, "missing collective"},
		{"zero weight", func(s *Spec) { s.Scenarios[0].Weight = 0 }, "weight"},
		{"empty sizes", func(s *Spec) { s.Scenarios[0].Log2MsgSizes = nil }, "non-empty"},
		{"negative skew", func(s *Spec) { s.Scenarios[0].SizeSkew = -1 }, "size_skew"},
		{"bad batch fraction", func(s *Spec) { s.BatchFraction = 1.5 }, "batch_fraction"},
		{"batch without size", func(s *Spec) { s.BatchFraction = 0.5; s.BatchSize = 0 }, "batch_size"},
	}
	for _, tc := range cases {
		spec := DefaultSpec()
		tc.mut(&spec)
		err := spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if spec := DefaultSpec(); spec.Validate() != nil {
		t.Error("DefaultSpec must validate")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	enc, err := EncodeSequence(nil)
	if err != nil || len(enc) != 0 {
		t.Fatalf("empty sequence encode = %q, %v", enc, err)
	}
	raw := strings.NewReader(`{"name":"x","system":{"core_count":8},` +
		`"scenarios":[{"name":"s","collective":"allgather","weight":1,` +
		`"num_nodes":[2],"ppn":[4],"log2_msg_sizes":[10]}],"batch_fraction":0}`)
	parsed, err := ParseSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != "x" || len(parsed.Scenarios) != 1 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if _, err := ParseSpec(strings.NewReader(`{"nope":1}`)); err == nil {
		t.Error("unknown fields must be rejected")
	}
}

func TestFeedbackFlagsDeterministicAndDecorrelated(t *testing.T) {
	a := feedbackFlags(4, 1000, 0.25)
	b := feedbackFlags(4, 1000, 0.25)
	n := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("feedback assignment differs between identical runs")
		}
		if a[i] {
			n++
		}
	}
	if n < 150 || n > 350 {
		t.Errorf("feedback-flagged %d of 1000 at fraction 0.25", n)
	}
	for _, f := range feedbackFlags(4, 100, 0) {
		if f {
			t.Fatal("feedback flag set with fraction 0")
		}
	}
	// The feedback stream must be independent of the batch stream: with
	// one seed and one fraction the two flag vectors cannot coincide
	// (that would mean a shared RNG stream, coupling the surfaces).
	batch := batchFlags(4, 1000, 0.25)
	same := 0
	for i := range a {
		if a[i] == batch[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("feedback flags identical to batch flags: seed streams are correlated")
	}
	// And emitting feedback draws nothing from the content stream.
	s1, _ := Sequence(DefaultSpec(), 9, 100)
	_ = feedbackFlags(9, 100, 0.5)
	s2, _ := Sequence(DefaultSpec(), 9, 100)
	h1, _ := SequenceHash(s1)
	h2, _ := SequenceHash(s2)
	if h1 != h2 {
		t.Fatal("feedback flag generation perturbed request contents")
	}
}
