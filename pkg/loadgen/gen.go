package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Request is one generated selection request. Features carry the full
// merged feature map (system features + scenario axes), ready to POST to
// /v1/select.
type Request struct {
	Index      int                `json:"index"`
	Scenario   string             `json:"scenario"`
	Collective string             `json:"collective"`
	Features   map[string]float64 `json:"features"`
}

// Seed-stream separators: the content, arrival and batch-assignment RNGs
// are decorrelated from one base seed so changing the target QPS (which
// consumes arrival draws) can never perturb the request contents, and vice
// versa.
const (
	arrivalSeedMix  = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as two's complement
	batchSeedMix    = int64(0x5bf0363db2e2c6d9)
	feedbackSeedMix = int64(0x2545f4914f6cdd1d)
)

// Sequence deterministically expands a spec into n requests. The same
// (spec, seed, n) always yields the same slice, element for element —
// EncodeSequence of two such runs is byte-identical. That property is the
// backbone of replayable benchmarking and is pinned by tests.
func Sequence(spec Spec, seed int64, n int) ([]Request, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("sequence length must be >= 0, got %d", n)
	}
	var total float64
	for _, sc := range spec.Scenarios {
		total += sc.Weight
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	for i := range reqs {
		// Weighted scenario pick.
		r := rng.Float64() * total
		sc := spec.Scenarios[len(spec.Scenarios)-1]
		for _, cand := range spec.Scenarios {
			if r -= cand.Weight; r < 0 {
				sc = cand
				break
			}
		}
		feats := make(map[string]float64, len(spec.System)+3)
		for k, v := range spec.System {
			feats[k] = v
		}
		feats["num_nodes"] = float64(sc.NumNodes[rng.Intn(len(sc.NumNodes))])
		feats["ppn"] = float64(sc.PPN[rng.Intn(len(sc.PPN))])
		feats["log2_msg_size"] = float64(sc.Log2MsgSizes[skewedIndex(rng, len(sc.Log2MsgSizes), sc.SizeSkew)])
		reqs[i] = Request{
			Index:      i,
			Scenario:   sc.Name,
			Collective: sc.Collective,
			Features:   feats,
		}
	}
	return reqs, nil
}

// skewedIndex draws an index in [0, n) biased toward 0 by raising a
// uniform draw to the skew power. Skew <= 1 (including the zero value) is
// uniform.
func skewedIndex(rng *rand.Rand, n int, skew float64) int {
	u := rng.Float64()
	if skew > 1 {
		u = math.Pow(u, skew)
	}
	idx := int(u * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// EncodeSequence renders requests as newline-delimited JSON. Go's
// encoding/json sorts map keys, so the encoding — not just the logical
// content — is deterministic. Used for golden pins and --dump-requests.
func EncodeSequence(reqs []Request) ([]byte, error) {
	var out []byte
	for i := range reqs {
		line, err := json.Marshal(&reqs[i])
		if err != nil {
			return nil, err
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out, nil
}

// SequenceHash is the SHA-256 of EncodeSequence, hex-encoded. Two runs
// with the same spec and seed must report the same hash; the report embeds
// it so benchmark artifacts are comparable at a glance.
func SequenceHash(reqs []Request) (string, error) {
	enc, err := EncodeSequence(reqs)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:]), nil
}

// Arrivals returns n cumulative start offsets for an open-loop Poisson
// arrival process at the target rate. The offsets are deterministic for a
// given (seed, n, qps) and strictly derived from a seed stream independent
// of the request contents.
func Arrivals(seed int64, n int, qps float64) []time.Duration {
	if n <= 0 || qps <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed ^ arrivalSeedMix))
	offs := make([]time.Duration, n)
	var t float64
	for i := range offs {
		t += rng.ExpFloat64() / qps
		offs[i] = time.Duration(t * float64(time.Second))
	}
	return offs
}

// batchFlags deterministically marks which requests travel via the batch
// endpoint, independent of both contents and arrivals.
func batchFlags(seed int64, n int, fraction float64) []bool {
	flags := make([]bool, n)
	if fraction <= 0 {
		return flags
	}
	rng := rand.New(rand.NewSource(seed ^ batchSeedMix))
	for i := range flags {
		flags[i] = rng.Float64() < fraction
	}
	return flags
}

// feedbackFlags deterministically marks which requests also emit an
// oracle-labeled record to /v1/feedback. The stream is decorrelated from
// contents, arrivals, and batching, so turning feedback emission on or off
// can never perturb the request sequence (the sequence hash is invariant).
func feedbackFlags(seed int64, n int, fraction float64) []bool {
	flags := make([]bool, n)
	if fraction <= 0 {
		return flags
	}
	rng := rand.New(rand.NewSource(seed ^ feedbackSeedMix))
	for i := range flags {
		flags[i] = rng.Float64() < fraction
	}
	return flags
}
