//go:build !race

package retrain

// raceEnabled mirrors the -race build flag so allocation guards can skip
// themselves: the race runtime adds per-access bookkeeping that breaks
// AllocsPerRun counts.
const raceEnabled = false
