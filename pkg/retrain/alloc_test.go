package retrain

import (
	"context"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// TestSelectFeedbackZeroAllocOverhead pins the tentpole's hot-path
// contract: running the feedback store and the retrain controller
// alongside a selector adds zero allocations to the warm Select path —
// ingestion and retraining live entirely on the admin/background path.
// Measured differentially against an identical stack without them.
func TestSelectFeedbackZeroAllocOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}

	build := func(withLoop bool) *selector.Selector {
		bd, err := synth.New(synth.Config{Seed: 51, Collectives: []string{"bench"}, Trees: 64, Depth: 8, Features: 14, Classes: 5})
		if err != nil {
			t.Fatal(err)
		}
		o := obs.NewForTest()
		o.Logger.SetLevel(obs.LevelError)
		sel := selector.New(bd, o, selector.Config{Cache: cache.New(cache.Config{}, o.Registry)})
		if withLoop {
			h := newHarness(t)
			seedFeedback(t, h.store)
			c := h.controller(t, Config{Interval: time.Hour, DriftWindows: 4, DriftPoll: time.Hour})
			c.Start()
			t.Cleanup(c.Stop)
		}
		return sel
	}

	pt := synth.Points(51, 1)[0]
	measure := func(s *selector.Selector) float64 {
		ctx := context.Background()
		if _, err := s.Select(ctx, "bench", pt); err != nil { // warm the cache
			t.Fatal(err)
		}
		return testing.AllocsPerRun(2000, func() {
			d, err := s.Select(ctx, "bench", pt)
			if err != nil {
				t.Fatal(err)
			}
			if !d.Cached {
				t.Fatal("iteration missed the cache")
			}
		})
	}

	base := measure(build(false))
	instrumented := measure(build(true))
	if instrumented > base {
		t.Fatalf("feedback/retrain wiring adds %.1f allocations per warm Select (%.1f -> %.1f), want 0 added",
			instrumented-base, base, instrumented)
	}
}
