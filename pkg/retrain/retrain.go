// Package retrain closes the serving loop: it watches the feedback store
// and the model-health observatory, and when enough evidence accumulates —
// a timer tick with fresh records, or a sustained drift ALERT — it trains a
// candidate bundle on a blend of operator feedback and the analytical
// sweep, stages it in the registry, and judges it against the incumbent on
// a shared held-out split, offline margin quality, and (optionally) live
// shadow-traffic agreement. Only a candidate that wins every clause is
// promoted; a loser is retired without ever serving a request. Every cycle
// leaves a verdict on /debug/retrain and in the pmlmpi_retrain_* metrics,
// so the self-tuning loop is as auditable as a human-driven promote.
package retrain

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/dataset"
	"github.com/pml-mpi/pmlmpi/pkg/feedback"
	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/train"
)

// Cycle outcomes, as recorded in verdicts and the
// pmlmpi_retrain_cycles_total{outcome} counter.
const (
	OutcomePromoted         = "promoted"
	OutcomeRetired          = "retired"
	OutcomeStaged           = "staged" // won, but policy is manual
	OutcomeSkippedRecords   = "skipped_min_records"
	OutcomeSkippedDuplicate = "skipped_duplicate"
	OutcomeError            = "error"
)

// Promote policies.
const (
	PolicyAuto   = "auto"   // winning candidates are promoted immediately
	PolicyManual = "manual" // winning candidates stay staged for an operator
)

// Controller state machine values (pmlmpi_retrain_state gauge).
const (
	StateIdle     = "idle"
	StateTraining = "training"
	StateJudging  = "judging"
)

// Defaults for the zero Config.
const (
	DefaultMinRecords   = 64
	DefaultDriftPoll    = 2 * time.Second
	DefaultSweepFrac    = 1.0
	DefaultHoldoutFrac  = 0.2
	DefaultHoldoutFloor = 0.75
	DefaultHoldoutSlack = 0.02
	DefaultMarginSlack  = 0.05
	DefaultShadowWait   = 30 * time.Second
	DefaultHistory      = 32
)

// Config tunes a Controller. The zero value disables both automatic
// triggers (no interval, no drift windows) but still supports manual
// RunCycle calls with the documented judging defaults.
type Config struct {
	// Interval between timer-driven cycles. 0 disables the timer.
	Interval time.Duration
	// MinRecords is the fewest resident feedback records worth training
	// on; cycles below it are skipped (default 64).
	MinRecords int
	// DriftWindows triggers a cycle after this many completed drift
	// windows with the observatory in ALERT, consecutively. 0 disables
	// the drift trigger.
	DriftWindows int
	// DriftPoll is how often the drift state is sampled (default 2s).
	DriftPoll time.Duration
	// PromotePolicy is PolicyAuto (default) or PolicyManual.
	PromotePolicy string
	// SweepFrac is the fraction of the analytical sweep blended under
	// the feedback records, in [0,1] (default 1: the full sweep). The
	// sweep anchors regions feedback has not covered; feedback wins on
	// identical feature points.
	SweepFrac float64
	// Sweep shapes the analytical base dataset; the zero value is the
	// default full grid.
	Sweep perfmodel.SweepConfig
	// Trainer tunes the candidate forest; zero value takes the train
	// package defaults.
	Trainer train.Config
	// Seed drives the holdout split, sweep subsampling, and (combined
	// with the cycle number) the trainer, keeping cycles deterministic.
	Seed int64
	// HoldoutFrac is the held-back fraction of the blended dataset used
	// for judging (default 0.2).
	HoldoutFrac float64
	// HoldoutFloor is the minimum holdout accuracy a candidate must
	// reach regardless of the incumbent (default 0.75).
	HoldoutFloor float64
	// HoldoutSlack is how far below the incumbent's holdout accuracy a
	// candidate may fall and still pass (default 0.02).
	HoldoutSlack float64
	// MarginSlack is how much higher than the incumbent's low-margin
	// rate the candidate's may be and still pass (default 0.05).
	MarginSlack float64
	// MarginWarn is the low-margin threshold for offline margin scoring;
	// 0 takes the observatory's threshold, or 0.15 without one.
	MarginWarn float64
	// MinShadowSamples gates judging on live shadow evidence: the cycle
	// waits (up to ShadowTimeout) for this many mirrored decisions
	// before reading the agreement rate. 0 skips the shadow clause.
	MinShadowSamples uint64
	// ShadowTimeout bounds the shadow-evidence wait (default 30s).
	ShadowTimeout time.Duration
	// MinShadowAgreement is the lowest acceptable candidate/incumbent
	// agreement rate when the shadow clause runs (default 0).
	MinShadowAgreement float64
	// OutDir receives candidate bundle files (default the feedback
	// store's directory).
	OutDir string
	// History bounds the verdict ring served on /debug/retrain
	// (default 32).
	History int
}

func (c Config) withDefaults(store *feedback.Store) Config {
	if c.MinRecords <= 0 {
		c.MinRecords = DefaultMinRecords
	}
	if c.DriftPoll <= 0 {
		c.DriftPoll = DefaultDriftPoll
	}
	if c.PromotePolicy == "" {
		c.PromotePolicy = PolicyAuto
	}
	if c.SweepFrac <= 0 {
		c.SweepFrac = DefaultSweepFrac
	}
	if c.HoldoutFrac <= 0 {
		c.HoldoutFrac = DefaultHoldoutFrac
	}
	if c.HoldoutFloor <= 0 {
		c.HoldoutFloor = DefaultHoldoutFloor
	}
	if c.HoldoutSlack <= 0 {
		c.HoldoutSlack = DefaultHoldoutSlack
	}
	if c.MarginSlack <= 0 {
		c.MarginSlack = DefaultMarginSlack
	}
	if c.ShadowTimeout <= 0 {
		c.ShadowTimeout = DefaultShadowWait
	}
	if c.OutDir == "" && store != nil {
		c.OutDir = store.Dir()
	}
	if c.History <= 0 {
		c.History = DefaultHistory
	}
	return c
}

// ValidPolicy reports whether p is a recognized promote policy.
func ValidPolicy(p string) bool { return p == PolicyAuto || p == PolicyManual }

// Deps are the live subsystems the controller drives. Store and Registry
// are required; Shadow and Health are optional (without Health the drift
// trigger is inert, without Shadow the shadow clause is skipped).
type Deps struct {
	Store    *feedback.Store
	Registry *registry.Registry
	Shadow   *registry.Shadow
	Health   *modelhealth.Observatory
}

// Verdict is the auditable record of one retrain cycle.
type Verdict struct {
	Cycle     uint64    `json:"cycle"`
	Trigger   string    `json:"trigger"` // interval | drift | manual
	StartedAt time.Time `json:"started_at"`
	EndedAt   time.Time `json:"ended_at"`
	Outcome   string    `json:"outcome"`
	// Detail explains retirements, skips, and errors.
	Detail string `json:"detail,omitempty"`

	FeedbackRecords int `json:"feedback_records"`
	SweepExamples   int `json:"sweep_examples"`
	TrainExamples   int `json:"train_examples"`
	HoldoutExamples int `json:"holdout_examples"`

	CandidateGeneration uint64 `json:"candidate_generation,omitempty"`
	CandidateHash       string `json:"candidate_hash,omitempty"`

	CandidateAccuracy  float64 `json:"candidate_accuracy"`
	IncumbentAccuracy  float64 `json:"incumbent_accuracy"`
	CandidateLowMargin float64 `json:"candidate_low_margin_rate"`
	IncumbentLowMargin float64 `json:"incumbent_low_margin_rate"`
	ShadowSamples      uint64  `json:"shadow_samples,omitempty"`
	ShadowAgreement    float64 `json:"shadow_agreement,omitempty"`
}

// Report is the /debug/retrain payload.
type Report struct {
	State            string            `json:"state"`
	Policy           string            `json:"policy"`
	IntervalSeconds  float64           `json:"interval_seconds"`
	MinRecords       int               `json:"min_records"`
	DriftWindows     int               `json:"drift_windows"`
	DriftAlertStreak uint64            `json:"drift_alert_streak"`
	Cycles           uint64            `json:"cycles"`
	Promoted         uint64            `json:"promoted"`
	Retired          uint64            `json:"retired"`
	Feedback         feedback.Snapshot `json:"feedback"`
	// Verdicts are newest first.
	Verdicts []Verdict `json:"verdicts"`
}

// Summary is the retrain block embedded in /healthz.
type Summary struct {
	State            string     `json:"state"`
	Policy           string     `json:"policy"`
	Cycles           uint64     `json:"cycles"`
	Promoted         uint64     `json:"promoted"`
	DriftAlertStreak uint64     `json:"drift_alert_streak"`
	LastOutcome      string     `json:"last_outcome,omitempty"`
	LastCycleAt      *time.Time `json:"last_cycle_at,omitempty"`
	FeedbackResident int        `json:"feedback_resident"`
}

// Controller runs the retrain loop. Create with New, launch the triggers
// with Start, stop with Stop. RunCycle may also be called directly (the
// /debug and test path); cycles are serialized by an internal mutex.
type Controller struct {
	o    *obs.Obs
	cfg  Config
	deps Deps

	state atomic.Int32 // 0 idle, 1 training, 2 judging

	cycleMu sync.Mutex // serializes RunCycle
	cycles  atomic.Uint64

	driftStreak  atomic.Uint64
	driftWindows uint64 // last observed completed-window count (run loop only)

	mu       sync.Mutex
	verdicts []Verdict // ring, oldest first
	promoted uint64
	retired  uint64

	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	cCycles *obs.Counter // {outcome}
	gState  *obs.Gauge
	gStreak *obs.Gauge
	gCand   *obs.Gauge
}

// New builds a Controller. Store and Registry must be non-nil.
func New(o *obs.Obs, cfg Config, deps Deps) (*Controller, error) {
	if deps.Store == nil || deps.Registry == nil {
		return nil, fmt.Errorf("retrain: Deps.Store and Deps.Registry are required")
	}
	cfg = cfg.withDefaults(deps.Store)
	if !ValidPolicy(cfg.PromotePolicy) {
		return nil, fmt.Errorf("retrain: unknown promote policy %q (want %s or %s)",
			cfg.PromotePolicy, PolicyAuto, PolicyManual)
	}
	c := &Controller{
		o:    o,
		cfg:  cfg,
		deps: deps,
		done: make(chan struct{}),
		cCycles: o.Registry.Counter("pmlmpi_retrain_cycles_total",
			"Retrain cycles by outcome.", "outcome"),
		gState: o.Registry.Gauge("pmlmpi_retrain_state",
			"Controller state: 0 idle, 1 training, 2 judging."),
		gStreak: o.Registry.Gauge("pmlmpi_retrain_drift_alert_streak",
			"Completed drift windows observed while the drift status held at ALERT."),
		gCand: o.Registry.Gauge("pmlmpi_retrain_candidate_generation",
			"Generation id of the most recent retrain candidate (0 before the first cycle)."),
	}
	c.gState.Set(0)
	return c, nil
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Start launches the trigger loop. Idempotent.
func (c *Controller) Start() {
	c.once.Do(func() {
		c.wg.Add(1)
		go c.run()
	})
}

// Stop halts the trigger loop and waits for any in-flight cycle started by
// it to finish.
func (c *Controller) Stop() {
	select {
	case <-c.done:
		return
	default:
	}
	c.Start() // ensure wg accounting exists even if Start was never called
	close(c.done)
	c.wg.Wait()
}

func (c *Controller) run() {
	defer c.wg.Done()

	var tickC <-chan time.Time
	if c.cfg.Interval > 0 {
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		tickC = t.C
	}
	var driftC <-chan time.Time
	if c.cfg.DriftWindows > 0 && c.deps.Health != nil {
		// Baseline the window counter so windows completed before the
		// controller existed never count toward the streak.
		_, c.driftWindows = c.deps.Health.DriftState()
		d := time.NewTicker(c.cfg.DriftPoll)
		defer d.Stop()
		driftC = d.C
	}
	for {
		select {
		case <-c.done:
			return
		case <-tickC:
			c.RunCycle("interval")
		case <-driftC:
			if c.pollDrift() {
				c.RunCycle("drift")
			}
		}
	}
}

// pollDrift folds one drift-state sample into the ALERT streak and reports
// whether the sustained-drift trigger fired. The streak counts completed
// windows observed while the status held at ALERT; any other status resets
// it.
func (c *Controller) pollDrift() bool {
	st, windows := c.deps.Health.DriftState()
	if st == modelhealth.DriftAlert {
		if windows > c.driftWindows {
			c.driftStreak.Add(windows - c.driftWindows)
		}
	} else {
		c.driftStreak.Store(0)
	}
	c.driftWindows = windows
	streak := c.driftStreak.Load()
	c.gStreak.Set(float64(streak))
	return streak >= uint64(c.cfg.DriftWindows)
}

func (c *Controller) setState(s int32) {
	c.state.Store(s)
	c.gState.Set(float64(s))
}

// State returns the controller's current state name.
func (c *Controller) State() string {
	switch c.state.Load() {
	case 1:
		return StateTraining
	case 2:
		return StateJudging
	default:
		return StateIdle
	}
}

// RunCycle executes one full retrain cycle synchronously and returns its
// verdict. trigger is recorded verbatim ("interval", "drift", "manual").
func (c *Controller) RunCycle(trigger string) Verdict {
	c.cycleMu.Lock()
	defer c.cycleMu.Unlock()

	v := Verdict{
		Cycle:     c.cycles.Add(1),
		Trigger:   trigger,
		StartedAt: time.Now(),
	}
	c.setState(1)
	c.runCycle(&v)
	c.setState(0)
	v.EndedAt = time.Now()

	// Any cycle — even a skip — consumes the drift evidence that fired it.
	c.driftStreak.Store(0)
	c.gStreak.Set(0)

	c.cCycles.Inc(v.Outcome)
	c.mu.Lock()
	c.verdicts = append(c.verdicts, v)
	if len(c.verdicts) > c.cfg.History {
		c.verdicts = c.verdicts[len(c.verdicts)-c.cfg.History:]
	}
	switch v.Outcome {
	case OutcomePromoted:
		c.promoted++
	case OutcomeRetired:
		c.retired++
	}
	c.mu.Unlock()
	c.o.Logger.Info("retrain cycle finished",
		"cycle", v.Cycle, "trigger", trigger, "outcome", v.Outcome, "detail", v.Detail)
	return v
}

func (c *Controller) runCycle(v *Verdict) {
	snap := c.deps.Store.Snapshot()
	v.FeedbackRecords = snap.Resident
	if snap.Resident < c.cfg.MinRecords {
		v.Outcome = OutcomeSkippedRecords
		v.Detail = fmt.Sprintf("%d resident feedback records, need %d", snap.Resident, c.cfg.MinRecords)
		return
	}

	fb, err := c.deps.Store.Dataset()
	if err != nil {
		v.Outcome = OutcomeError
		v.Detail = fmt.Sprintf("feedback dataset: %v", err)
		return
	}

	blended, sweepN, err := c.blend(fb)
	if err != nil {
		v.Outcome = OutcomeError
		v.Detail = err.Error()
		return
	}
	v.SweepExamples = sweepN

	trainDS, holdout := blended.Split(c.cfg.HoldoutFrac, c.cfg.Seed)
	v.TrainExamples = trainDS.Len()
	v.HoldoutExamples = holdout.Len()
	if trainDS.Len() == 0 || holdout.Len() == 0 {
		v.Outcome = OutcomeError
		v.Detail = fmt.Sprintf("degenerate split: %d train / %d holdout", trainDS.Len(), holdout.Len())
		return
	}

	tc := c.cfg.Trainer
	// Vary the trainer seed per cycle so retraining on the same data after
	// a retirement can still explore a different ensemble.
	tc.Seed = c.cfg.Seed + int64(v.Cycle)
	b, _, err := train.TrainBundle(trainDS, train.BundleConfig{
		Config: tc,
		TrainedOn: []string{
			fmt.Sprintf("feedback:%d", fb.Len()),
			fmt.Sprintf("sweep:%d", sweepN),
		},
	})
	if err != nil {
		v.Outcome = OutcomeError
		v.Detail = fmt.Sprintf("train: %v", err)
		return
	}

	path := filepath.Join(c.cfg.OutDir, fmt.Sprintf("retrain-%06d.json", v.Cycle))
	data, err := b.WriteFile(path)
	if err != nil {
		v.Outcome = OutcomeError
		v.Detail = fmt.Sprintf("write bundle: %v", err)
		return
	}
	_, activeGen := c.deps.Registry.Active()
	g, err := c.deps.Registry.LoadData(data, path)
	if err != nil {
		v.Outcome = OutcomeError
		v.Detail = fmt.Sprintf("stage: %v", err)
		return
	}
	v.CandidateGeneration = g.ID()
	v.CandidateHash = g.Hash()
	c.gCand.Set(float64(g.ID()))
	if g.ID() == activeGen {
		// LoadData returned an already-resident generation: the candidate
		// is byte-identical to the serving model, nothing to judge.
		v.Outcome = OutcomeSkippedDuplicate
		v.Detail = "candidate hash matches the active generation"
		return
	}

	c.setState(2)
	win, detail := c.judge(v, g, holdout)
	if !win {
		if c.deps.Shadow != nil && c.deps.Shadow.Candidate() == g {
			c.deps.Shadow.ClearCandidate()
		}
		v.Outcome = OutcomeRetired
		v.Detail = detail
		return
	}
	if c.cfg.PromotePolicy == PolicyManual {
		v.Outcome = OutcomeStaged
		v.Detail = "candidate won judging; promote policy is manual"
		return
	}
	if _, err := c.deps.Registry.Promote(g.ID()); err != nil {
		v.Outcome = OutcomeError
		v.Detail = fmt.Sprintf("promote: %v", err)
		return
	}
	v.Outcome = OutcomePromoted
}

// blend builds the training pool: feedback first, then a (possibly
// subsampled) analytical sweep, deduped so feedback wins identical points.
func (c *Controller) blend(fb *dataset.Dataset) (*dataset.Dataset, int, error) {
	sweep, err := perfmodel.Sweep(c.cfg.Sweep)
	if err != nil {
		return nil, 0, fmt.Errorf("sweep: %v", err)
	}
	if c.cfg.SweepFrac < 1 {
		sweep, _ = sweep.Split(1-c.cfg.SweepFrac, c.cfg.Seed)
	}
	blended := dataset.New(sweep.Algorithms)
	if err := blended.Merge(fb); err != nil {
		return nil, 0, fmt.Errorf("merge feedback: %v", err)
	}
	if err := blended.Merge(sweep); err != nil {
		return nil, 0, fmt.Errorf("merge sweep: %v", err)
	}
	blended.Dedup()
	return blended, sweep.Len(), nil
}

// judge runs the promotion clauses against the incumbent. It returns
// win=false with a human-readable reason on the first failing clause.
func (c *Controller) judge(v *Verdict, g *registry.Generation, holdout *dataset.Dataset) (bool, string) {
	marginWarn := c.cfg.MarginWarn
	if marginWarn <= 0 {
		marginWarn = modelhealth.DefaultMarginWarn
		if c.deps.Health != nil {
			marginWarn = c.deps.Health.MarginWarn()
		}
	}

	candAcc, candLow, err := scoreBundle(g.Bundle(), holdout, marginWarn)
	if err != nil {
		return false, fmt.Sprintf("candidate holdout scoring failed: %v", err)
	}
	v.CandidateAccuracy = candAcc
	v.CandidateLowMargin = candLow

	incumbent, incumbentGen := c.deps.Registry.Active()
	if incumbent != nil {
		incAcc, incLow, err := scoreBundle(incumbent, holdout, marginWarn)
		if err != nil {
			// An incumbent that cannot score the holdout (e.g. missing
			// collectives) concedes the comparative clauses.
			incAcc, incLow = 0, 1
		}
		v.IncumbentAccuracy = incAcc
		v.IncumbentLowMargin = incLow
	}

	// Clause 1: absolute and relative holdout accuracy.
	if candAcc < c.cfg.HoldoutFloor {
		return false, fmt.Sprintf("holdout accuracy %.4f below floor %.4f", candAcc, c.cfg.HoldoutFloor)
	}
	if incumbent != nil && candAcc < v.IncumbentAccuracy-c.cfg.HoldoutSlack {
		return false, fmt.Sprintf("holdout accuracy %.4f trails incumbent %.4f beyond slack %.4f",
			candAcc, v.IncumbentAccuracy, c.cfg.HoldoutSlack)
	}
	// Clause 2: offline decision confidence must not degrade. Only an
	// incumbent that itself clears the accuracy floor may veto here — a
	// confidently wrong model has a perfect margin profile and would
	// otherwise block every better-calibrated challenger.
	if incumbent != nil && v.IncumbentAccuracy >= c.cfg.HoldoutFloor &&
		candLow > v.IncumbentLowMargin+c.cfg.MarginSlack {
		return false, fmt.Sprintf("low-margin rate %.4f exceeds incumbent %.4f plus slack %.4f",
			candLow, v.IncumbentLowMargin, c.cfg.MarginSlack)
	}
	// Clause 3: live shadow agreement, when configured.
	if c.cfg.MinShadowSamples > 0 && c.deps.Shadow != nil {
		samples, agreement, ok := c.awaitShadow(g)
		v.ShadowSamples = samples
		v.ShadowAgreement = agreement
		if !ok {
			return false, fmt.Sprintf("shadow evidence: %d/%d samples within %s",
				samples, c.cfg.MinShadowSamples, c.cfg.ShadowTimeout)
		}
		if agreement < c.cfg.MinShadowAgreement {
			return false, fmt.Sprintf("shadow agreement %.4f below minimum %.4f",
				agreement, c.cfg.MinShadowAgreement)
		}
		if c.deps.Health != nil {
			if card, ok := c.deps.Health.ActiveScorecard(); ok && card.Generation == incumbentGen &&
				card.ShadowSamples > 0 && agreement < card.ShadowAgreeRate {
				return false, fmt.Sprintf("shadow agreement %.4f below incumbent's own candidate record %.4f",
					agreement, card.ShadowAgreeRate)
			}
		}
	}
	return true, ""
}

// awaitShadow polls the shadow evaluator until the candidate has collected
// MinShadowSamples mirrored decisions or the timeout lapses.
func (c *Controller) awaitShadow(g *registry.Generation) (samples uint64, agreement float64, ok bool) {
	deadline := time.Now().Add(c.cfg.ShadowTimeout)
	for {
		rep := c.deps.Shadow.Report()
		samples, agreement = 0, 0
		var agreed uint64
		if rep.CandidateGeneration == g.ID() {
			for _, cell := range rep.Collectives {
				samples += cell.Samples
				agreed += cell.Agreements
			}
		}
		if samples > 0 {
			agreement = float64(agreed) / float64(samples)
		}
		if samples >= c.cfg.MinShadowSamples {
			return samples, agreement, true
		}
		if time.Now().After(deadline) {
			return samples, agreement, false
		}
		select {
		case <-c.done:
			return samples, agreement, false
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// scoreBundle evaluates b on ds in one pass: overall accuracy (collectives
// the bundle cannot serve count as wrong) and the fraction of decisions
// whose soft-vote margin falls below marginWarn (unservable examples count
// as zero-margin).
func scoreBundle(b *bundle.Bundle, ds *dataset.Dataset, marginWarn float64) (acc, lowMarginRate float64, err error) {
	if ds.Len() == 0 {
		return 0, 0, fmt.Errorf("empty holdout")
	}
	var correct, low int
	for i := range ds.Examples {
		ex := &ds.Examples[i]
		coll, ok := b.Collective(ex.Collective)
		if !ok {
			low++
			continue
		}
		x, err := coll.Vector(ex.Features)
		if err != nil {
			return 0, 0, fmt.Errorf("%s example %d: %w", ex.Collective, i, err)
		}
		pred, err := coll.Forest.Predict(x)
		if err != nil {
			return 0, 0, fmt.Errorf("%s example %d: %w", ex.Collective, i, err)
		}
		if pred.Class == ex.Label {
			correct++
		}
		if forest.Margin(pred.Probs) < marginWarn {
			low++
		}
	}
	n := float64(ds.Len())
	return float64(correct) / n, float64(low) / n, nil
}

// DriftAlertStreak returns the current sustained-ALERT window count.
func (c *Controller) DriftAlertStreak() uint64 { return c.driftStreak.Load() }

// Report builds the /debug/retrain payload.
func (c *Controller) Report() Report {
	c.mu.Lock()
	verdicts := make([]Verdict, len(c.verdicts))
	for i := range c.verdicts {
		verdicts[len(c.verdicts)-1-i] = c.verdicts[i]
	}
	promoted, retired := c.promoted, c.retired
	c.mu.Unlock()
	return Report{
		State:            c.State(),
		Policy:           c.cfg.PromotePolicy,
		IntervalSeconds:  c.cfg.Interval.Seconds(),
		MinRecords:       c.cfg.MinRecords,
		DriftWindows:     c.cfg.DriftWindows,
		DriftAlertStreak: c.driftStreak.Load(),
		Cycles:           c.cycles.Load(),
		Promoted:         promoted,
		Retired:          retired,
		Feedback:         c.deps.Store.Snapshot(),
		Verdicts:         verdicts,
	}
}

// Summarize builds the /healthz retrain block.
func (c *Controller) Summarize() Summary {
	s := Summary{
		State:            c.State(),
		Policy:           c.cfg.PromotePolicy,
		Cycles:           c.cycles.Load(),
		DriftAlertStreak: c.driftStreak.Load(),
		FeedbackResident: c.deps.Store.Resident(),
	}
	c.mu.Lock()
	s.Promoted = c.promoted
	if n := len(c.verdicts); n > 0 {
		last := c.verdicts[n-1]
		s.LastOutcome = last.Outcome
		at := last.EndedAt
		s.LastCycleAt = &at
	}
	c.mu.Unlock()
	return s
}
