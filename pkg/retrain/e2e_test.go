package retrain

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/feedback"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/train"
)

// shiftedGrid is the workload region the incumbent never saw: large node
// counts and large messages. The drift monitors, the feedback stream, and
// the post-promotion accuracy check all draw from it.
func shiftedGrid() (nodes, ppn, lms []float64) {
	return []float64{32, 64, 128}, []float64{16, 32}, []float64{16, 18, 20, 22, 24}
}

// TestClosedLoopDriftRetrainPromote is the end-to-end proof of the
// self-tuning loop: a server stack (registry + shadow + health + selector)
// serving a model trained on a narrow region receives shifted traffic and
// matching oracle-labeled feedback; the drift monitors go ALERT, the
// controller fires, trains on the blended feedback, collects live shadow
// evidence, auto-promotes the winner, and subsequent selections track the
// oracle on the shifted region.
func TestClosedLoopDriftRetrainPromote(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop e2e trains models")
	}
	o := obs.NewForTest()
	shadow := registry.NewShadow(o, registry.ShadowConfig{Fraction: 1})
	reg := registry.New(o, registry.Config{Keep: 4, Shadow: shadow})
	g, err := reg.LoadData(trainNarrowIncumbent(t, t.TempDir()), "incumbent")
	if err != nil {
		t.Fatalf("load incumbent: %v", err)
	}
	if _, err := reg.Promote(g.ID()); err != nil {
		t.Fatalf("promote incumbent: %v", err)
	}
	incGen := g.ID()

	health := modelhealth.New(o.Registry, modelhealth.Config{Window: 32})
	sel := selector.NewFromSource(reg, o, selector.Config{
		Shadow: shadow,
		Health: health,
	})
	shadow.SetNamer(sel.AlgorithmName)
	shadow.SetHealthSink(health.RecordShadow)
	shadow.Start()
	defer shadow.Stop()

	store, err := feedback.NewStore(o.Registry, feedback.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("feedback store: %v", err)
	}
	defer store.Close()

	// Oracle-labeled feedback from the shifted region, plus one poisoned
	// record that must be quarantined, never trained on.
	nodes, ppns, lms := shiftedGrid()
	for _, n := range nodes {
		for _, p := range ppns {
			for _, lm := range lms {
				rec := oracleRecord(t, "broadcast", n, p, lm)
				if out, err := s2out(store.Add(rec)); out != feedback.OutcomeAccepted {
					t.Fatalf("seed feedback: outcome %s err %v", out, err)
				}
			}
		}
	}
	poison := oracleRecord(t, "broadcast", 16, 16, 10)
	worst, worstLat := "", 0.0
	for name, lat := range poison.LatenciesUS {
		if lat > worstLat {
			worst, worstLat = name, lat
		}
	}
	poison.LatenciesUS[worst] = 0.001
	if out, _ := store.Add(poison); out != feedback.OutcomeQuarantined {
		t.Fatalf("poisoned record outcome %s, want quarantined", out)
	}

	ctrl, err := New(o, Config{
		DriftWindows:     2,
		DriftPoll:        5 * time.Millisecond,
		MinRecords:       16,
		Sweep:            testSweep(),
		Trainer:          train.Config{Trees: 8, MaxDepth: 8},
		Seed:             7,
		HoldoutFloor:     0.5,
		MarginSlack:      0.5,
		MinShadowSamples: 8,
		ShadowTimeout:    30 * time.Second,
		OutDir:           t.TempDir(),
	}, Deps{Store: store, Registry: reg, Shadow: shadow, Health: health})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctrl.Start()
	defer ctrl.Stop()

	// Live traffic from the shifted region: keeps the drift sketches
	// filling (Window=32 → ALERT within a few hundred selects) and, once a
	// candidate is staged, feeds the shadow evaluator the samples the
	// judging clause waits for.
	var stopTraffic atomic.Bool
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		ctx := context.Background()
		for i := 0; !stopTraffic.Load(); i++ {
			n := nodes[i%len(nodes)]
			p := ppns[(i/len(nodes))%len(ppns)]
			lm := lms[(i/(len(nodes)*len(ppns)))%len(lms)]
			f := perfmodel.DefaultSystems[0].Features(n, p, lm)
			if _, err := sel.Select(ctx, "broadcast", f); err != nil {
				t.Errorf("select: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	defer func() {
		stopTraffic.Store(true)
		<-trafficDone
	}()

	// Wait for the drift-triggered cycle to complete and promote.
	deadline := time.Now().Add(60 * time.Second)
	var rep Report
	for {
		rep = ctrl.Report()
		if rep.Cycles > 0 && rep.State == StateIdle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no retrain cycle completed; report %+v, drift %+v", rep, health.DriftReport())
		}
		time.Sleep(20 * time.Millisecond)
	}
	v := rep.Verdicts[0]
	if v.Trigger != "drift" {
		t.Fatalf("cycle trigger = %q, want drift", v.Trigger)
	}
	if v.Outcome != OutcomePromoted {
		t.Fatalf("cycle outcome = %s detail %q, want promoted", v.Outcome, v.Detail)
	}
	if v.ShadowSamples < 8 {
		t.Fatalf("judging saw %d shadow samples, want >= 8", v.ShadowSamples)
	}
	_, activeGen := reg.Active()
	if activeGen == incGen || activeGen != v.CandidateGeneration {
		t.Fatalf("active generation %d (incumbent %d, candidate %d)", activeGen, incGen, v.CandidateGeneration)
	}

	// The promoted model's selections must track the oracle on the shifted
	// region the feedback taught it.
	stopTraffic.Store(true)
	<-trafficDone
	correct, total := 0, 0
	ctx := context.Background()
	for _, n := range nodes {
		for _, p := range ppns {
			for _, lm := range lms {
				f := perfmodel.DefaultSystems[0].Features(n, p, lm)
				d, err := sel.Select(ctx, "broadcast", f)
				if err != nil {
					t.Fatalf("post-promotion select: %v", err)
				}
				want, err := perfmodel.Best("broadcast", f)
				if err != nil {
					t.Fatal(err)
				}
				if d.Algorithm == sel.AlgorithmName("broadcast", want) {
					correct++
				}
				total++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.7 {
		t.Fatalf("post-promotion oracle accuracy %.2f on the shifted grid, want >= 0.70", acc)
	}

	// Stale-candidate rollback: an operator can still retreat to the
	// previous generation after an automatic promotion.
	rb, err := reg.Rollback()
	if err != nil {
		t.Fatalf("rollback after auto-promote: %v", err)
	}
	if rb.ID() != incGen {
		t.Fatalf("rollback landed on generation %d, want incumbent %d", rb.ID(), incGen)
	}
	if _, gen := reg.Active(); gen != incGen {
		t.Fatalf("active generation %d after rollback, want %d", gen, incGen)
	}
	// And forward again to the retrained winner.
	if _, err := reg.Promote(v.CandidateGeneration); err != nil {
		t.Fatalf("re-promote candidate: %v", err)
	}
}

// s2out adapts store.Add's two-value return for inline assertions.
func s2out(out feedback.Outcome, err error) (feedback.Outcome, error) { return out, err }
