package retrain

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/dataset"
	"github.com/pml-mpi/pmlmpi/pkg/feedback"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/train"
)

// testSweep is the small analytical base grid controllers blend under the
// feedback records in these tests: broadcast only, one system, 32 points.
func testSweep() perfmodel.SweepConfig {
	return perfmodel.SweepConfig{
		Collectives:  []string{"broadcast"},
		Nodes:        []float64{2, 4, 8, 16},
		PPN:          []float64{2, 8},
		Log2MsgSizes: []float64{4, 10, 16, 22},
		Systems:      perfmodel.DefaultSystems[:1],
	}
}

// trainNarrowIncumbent fits a deliberately weak incumbent on a sliver of
// the feature space and returns its serialized bundle.
func trainNarrowIncumbent(t testing.TB, dir string) []byte {
	t.Helper()
	ds, err := perfmodel.Sweep(perfmodel.SweepConfig{
		Collectives:  []string{"broadcast"},
		Nodes:        []float64{2},
		PPN:          []float64{2},
		Log2MsgSizes: []float64{4, 6},
		Systems:      perfmodel.DefaultSystems[:1],
	})
	if err != nil {
		t.Fatalf("narrow sweep: %v", err)
	}
	b, _, err := train.TrainBundle(ds, train.BundleConfig{
		Config:    train.Config{Trees: 4, MaxDepth: 4, Seed: 3},
		TrainedOn: []string{"narrow"},
	})
	if err != nil {
		t.Fatalf("train incumbent: %v", err)
	}
	data, err := b.WriteFile(filepath.Join(dir, "incumbent.json"))
	if err != nil {
		t.Fatalf("write incumbent: %v", err)
	}
	return data
}

// seedFeedback adds oracle-labeled records across a wide broadcast grid,
// none of which coincide with testSweep's points.
func seedFeedback(t testing.TB, s *feedback.Store) int {
	t.Helper()
	added := 0
	for _, nodes := range []float64{3, 6, 12, 24, 48, 96} {
		for _, ppn := range []float64{4, 16} {
			for _, lm := range []float64{6, 12, 18, 24} {
				rec := oracleRecord(t, "broadcast", nodes, ppn, lm)
				if out, err := s.Add(rec); out != feedback.OutcomeAccepted {
					t.Fatalf("seed nodes=%v ppn=%v lm=%v: outcome %s err %v", nodes, ppn, lm, out, err)
				}
				added++
			}
		}
	}
	return added
}

// oracleRecord mirrors the feedback package's test helper: latencies are
// the analytical costs in microseconds, so the argmin matches the oracle.
func oracleRecord(t testing.TB, collective string, nodes, ppn, lm float64) *dataset.Record {
	t.Helper()
	f := perfmodel.DefaultSystems[0].Features(nodes, ppn, lm)
	costs, err := perfmodel.Costs(collective, f)
	if err != nil {
		t.Fatalf("oracle costs: %v", err)
	}
	algos := perfmodel.Table()[collective]
	lat := make(map[string]float64, len(algos))
	for i, name := range algos {
		lat[name] = costs[i] * 1e6
	}
	return &dataset.Record{Collective: collective, Features: f, LatenciesUS: lat}
}

// harness is the wired store + registry + incumbent every controller test
// starts from.
type harness struct {
	o      *obs.Obs
	store  *feedback.Store
	shadow *registry.Shadow
	reg    *registry.Registry
	incGen uint64
}

func newHarness(t testing.TB) *harness {
	t.Helper()
	o := obs.NewForTest()
	store, err := feedback.NewStore(o.Registry, feedback.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("feedback store: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	shadow := registry.NewShadow(o, registry.ShadowConfig{Fraction: 1})
	reg := registry.New(o, registry.Config{Keep: 4, Shadow: shadow})
	g, err := reg.LoadData(trainNarrowIncumbent(t, t.TempDir()), "incumbent")
	if err != nil {
		t.Fatalf("load incumbent: %v", err)
	}
	if _, err := reg.Promote(g.ID()); err != nil {
		t.Fatalf("promote incumbent: %v", err)
	}
	return &harness{o: o, store: store, shadow: shadow, reg: reg, incGen: g.ID()}
}

func (h *harness) controller(t testing.TB, cfg Config) *Controller {
	t.Helper()
	if cfg.MinRecords == 0 {
		cfg.MinRecords = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	if cfg.Sweep.Collectives == nil {
		cfg.Sweep = testSweep()
	}
	if cfg.Trainer.Trees == 0 {
		cfg.Trainer = train.Config{Trees: 8, MaxDepth: 8}
	}
	if cfg.HoldoutFloor == 0 {
		cfg.HoldoutFloor = 0.5
	}
	if cfg.MarginSlack == 0 {
		// The tiny 4-tree incumbent votes unanimously everywhere (margin
		// 1.0), so a realistic candidate can only win with generous slack.
		cfg.MarginSlack = 0.5
	}
	if cfg.OutDir == "" {
		cfg.OutDir = t.TempDir()
	}
	c, err := New(h.o, cfg, Deps{Store: h.store, Registry: h.reg, Shadow: h.shadow})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestRunCycleSkipsBelowMinRecords(t *testing.T) {
	h := newHarness(t)
	c := h.controller(t, Config{MinRecords: 16})
	v := c.RunCycle("manual")
	if v.Outcome != OutcomeSkippedRecords {
		t.Fatalf("outcome = %s, want %s (detail %q)", v.Outcome, OutcomeSkippedRecords, v.Detail)
	}
	if _, gen := h.reg.Active(); gen != h.incGen {
		t.Fatalf("skip cycle changed the active generation to %d", gen)
	}
	if c.State() != StateIdle {
		t.Fatalf("controller left in state %s", c.State())
	}
}

func TestRunCyclePromotesWinningCandidate(t *testing.T) {
	h := newHarness(t)
	n := seedFeedback(t, h.store)
	c := h.controller(t, Config{})

	v := c.RunCycle("manual")
	if v.Outcome != OutcomePromoted {
		t.Fatalf("outcome = %s detail %q, want %s", v.Outcome, v.Detail, OutcomePromoted)
	}
	if v.FeedbackRecords != n {
		t.Fatalf("verdict counted %d feedback records, want %d", v.FeedbackRecords, n)
	}
	if v.SweepExamples == 0 || v.TrainExamples == 0 || v.HoldoutExamples == 0 {
		t.Fatalf("verdict dataset sizes = %+v", v)
	}
	if v.CandidateAccuracy < 0.5 {
		t.Fatalf("candidate holdout accuracy %.4f below the test floor", v.CandidateAccuracy)
	}
	_, gen := h.reg.Active()
	if gen != v.CandidateGeneration || gen == h.incGen {
		t.Fatalf("active generation %d, want promoted candidate %d", gen, v.CandidateGeneration)
	}
	// Promotion clears the shadow candidate via the registry.
	if h.shadow.Candidate() != nil {
		t.Fatal("shadow candidate still staged after promotion")
	}

	rep := c.Report()
	if rep.Cycles != 1 || rep.Promoted != 1 || len(rep.Verdicts) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Verdicts[0].Cycle != v.Cycle {
		t.Fatalf("report verdict cycle %d, want %d", rep.Verdicts[0].Cycle, v.Cycle)
	}
	sum := c.Summarize()
	if sum.LastOutcome != OutcomePromoted || sum.Promoted != 1 || sum.State != StateIdle {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestRunCycleRetiresLosingCandidate(t *testing.T) {
	h := newHarness(t)
	seedFeedback(t, h.store)
	// An unreachable accuracy floor forces every candidate to lose.
	c := h.controller(t, Config{HoldoutFloor: 1.01})

	v := c.RunCycle("manual")
	if v.Outcome != OutcomeRetired {
		t.Fatalf("outcome = %s detail %q, want %s", v.Outcome, v.Detail, OutcomeRetired)
	}
	if !strings.Contains(v.Detail, "below floor") {
		t.Fatalf("retirement detail %q does not name the failed clause", v.Detail)
	}
	if _, gen := h.reg.Active(); gen != h.incGen {
		t.Fatalf("losing candidate went active: generation %d", gen)
	}
	// The loser must stop receiving mirrored traffic.
	if h.shadow.Candidate() != nil {
		t.Fatal("shadow candidate still staged after retirement")
	}
	if rep := c.Report(); rep.Retired != 1 {
		t.Fatalf("report retired = %d, want 1", rep.Retired)
	}
}

func TestRunCycleManualPolicyStagesWinner(t *testing.T) {
	h := newHarness(t)
	seedFeedback(t, h.store)
	c := h.controller(t, Config{PromotePolicy: PolicyManual})

	v := c.RunCycle("manual")
	if v.Outcome != OutcomeStaged {
		t.Fatalf("outcome = %s detail %q, want %s", v.Outcome, v.Detail, OutcomeStaged)
	}
	if _, gen := h.reg.Active(); gen != h.incGen {
		t.Fatalf("manual policy promoted anyway: generation %d", gen)
	}
	// The winner stays staged for an operator promote.
	g, ok := h.reg.Generation(v.CandidateGeneration)
	if !ok {
		t.Fatalf("staged winner %d evicted", v.CandidateGeneration)
	}
	if _, err := h.reg.Promote(g.ID()); err != nil {
		t.Fatalf("operator promote of staged winner: %v", err)
	}
}

func TestRunCycleSkipsDuplicateCandidate(t *testing.T) {
	h := newHarness(t)
	seedFeedback(t, h.store)
	c1 := h.controller(t, Config{Seed: 11, OutDir: t.TempDir()})
	if v := c1.RunCycle("manual"); v.Outcome != OutcomePromoted {
		t.Fatalf("first cycle outcome = %s detail %q", v.Outcome, v.Detail)
	}
	// A fresh controller with the same seed trains a byte-identical bundle
	// on the unchanged data; staging it dedups onto the active generation.
	c2 := h.controller(t, Config{Seed: 11, OutDir: t.TempDir()})
	v := c2.RunCycle("manual")
	if v.Outcome != OutcomeSkippedDuplicate {
		t.Fatalf("second cycle outcome = %s detail %q, want %s", v.Outcome, v.Detail, OutcomeSkippedDuplicate)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	h := newHarness(t)
	if _, err := New(h.o, Config{}, Deps{Store: h.store}); err == nil {
		t.Fatal("New accepted nil Registry")
	}
	if _, err := New(h.o, Config{PromotePolicy: "yolo"}, Deps{Store: h.store, Registry: h.reg}); err == nil {
		t.Fatal("New accepted unknown promote policy")
	}
	if !ValidPolicy(PolicyAuto) || !ValidPolicy(PolicyManual) || ValidPolicy("x") {
		t.Fatal("ValidPolicy misclassifies")
	}
}
