// Package fleete2e exercises the whole fleet-serving stack in one
// process: a real control plane (httptest), three full replica stacks
// (registry + shadow + selector + agent + admin surface), and the
// partitioning gateway, driven deterministically through Agent.Tick.
//
// The scenarios mirror the operational stories the fleet exists for:
// a staged canary -> fleet promote of a compatible candidate, an
// auto-rollback of a bad candidate that non-canary replicas must never
// serve, and gateway-vs-single-server loadgen tally equality for the
// same seed.
package fleete2e

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/admin"
	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/controlplane"
	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/gateway"
	"github.com/pml-mpi/pmlmpi/pkg/loadgen"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/replica"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// constBundleJSON builds a minimal valid bundle whose every collective
// predicts the same class for every input: a single-leaf tree with all
// its mass on that class. Two bundles with equal classes but different
// salts have different content hashes and identical predictions (shadow
// agreement exactly 1.0); different classes disagree on every sample
// (agreement exactly 0.0) — the two deterministic endpoints the rollout
// verdicts key on.
func constBundleJSON(t *testing.T, collectives []string, class int, salt string) []byte {
	t.Helper()
	const classes = 4
	dist := make([]float64, classes)
	for i := range dist {
		dist[i] = 0.01
	}
	dist[class] = 1 - 0.01*float64(classes-1)

	doc := map[string]any{
		"version":    bundle.SupportedVersion,
		"trained_on": []string{"fleet-e2e/" + salt},
	}
	for op, name := range collectives {
		doc[name] = &bundle.Collective{
			Op:           op,
			Features:     []int{0, 1, 2},
			FeatureNames: []string{"num_nodes", "ppn", "log2_msg_size"},
			Forest: &forest.Forest{
				NClasses: classes,
				Trees:    []forest.Tree{{Nodes: []forest.Node{{F: -1, D: dist}}}},
			},
			CVAUC: 0.9,
		}
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal const bundle: %v", err)
	}
	if _, err := bundle.Parse(data); err != nil {
		t.Fatalf("const bundle does not parse: %v", err)
	}
	return data
}

// newFleetCtl stands up a real control plane with stableData seeded as
// the fleet-wide stable hash.
func newFleetCtl(t *testing.T, stableData []byte, cfg controlplane.RolloutConfig) (url string, store *controlplane.Store, ro *controlplane.Rollout, stable string) {
	t.Helper()
	store, err := controlplane.NewStore("")
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	ro = controlplane.NewRollout(store, cfg)
	ts := httptest.NewServer(controlplane.NewServer(store, ro, obs.NewForTest(), controlplane.ServerConfig{}))
	t.Cleanup(ts.Close)
	stable, _, err = store.Put(stableData)
	if err != nil {
		t.Fatalf("seed stable bundle: %v", err)
	}
	if err := ro.SetStable(stable); err != nil {
		t.Fatalf("SetStable: %v", err)
	}
	return ts.URL, store, ro, stable
}

// fleetReplica is one full in-process replica: model registry with
// shadow evaluation, selector, control-plane agent, and the admin HTTP
// surface the gateway proxies to.
type fleetReplica struct {
	id     string
	reg    *registry.Registry
	shadow *registry.Shadow
	sel    *selector.Selector
	agent  *replica.Agent
	srv    *httptest.Server
}

func newFleetReplica(t *testing.T, ctlURL, id string, soak time.Duration) *fleetReplica {
	t.Helper()
	o := obs.NewForTest()
	sh := registry.NewShadow(o, registry.ShadowConfig{Fraction: 1})
	reg := registry.New(o, registry.Config{Shadow: sh})
	sel := selector.NewFromSource(reg, o, selector.Config{Shadow: sh})
	sh.SetNamer(sel.AlgorithmName)
	sh.Start()
	t.Cleanup(sh.Stop)

	a, err := replica.NewAgent(o, replica.AgentConfig{
		ControlPlane:     ctlURL,
		ReplicaID:        id,
		Registry:         reg,
		Shadow:           sh,
		PollInterval:     5 * time.Millisecond,
		StageSoak:        soak,
		MinAgreement:     0.9,
		MinShadowSamples: 8,
	})
	if err != nil {
		t.Fatalf("NewAgent(%s): %v", id, err)
	}
	srv := admin.New(sel, o, admin.Config{
		Registry: reg,
		Shadow:   sh,
		Role:     "replica",
		Desired:  func() any { return a.Status() },
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &fleetReplica{id: id, reg: reg, shadow: sh, sel: sel, agent: a, srv: ts}
}

func (r *fleetReplica) activeHash() string {
	if g := r.reg.ActiveGeneration(); g != nil {
		return g.Hash()
	}
	return ""
}

// feedSelects drives live decisions through the replica's selector so
// shadow evaluation accumulates candidate evidence. Features vary per
// call to look like real traffic; predictions are constant regardless.
func (r *fleetReplica) feedSelects(ctx context.Context, t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		feats := map[string]float64{
			"num_nodes":     float64(2 + i%14),
			"ppn":           float64(1 + i%8),
			"log2_msg_size": float64(4 + i%20),
		}
		if _, err := r.sel.Select(ctx, "allreduce", feats); err != nil {
			t.Fatalf("replica %s select: %v", r.id, err)
		}
	}
}

const rolloutDeadline = 30 * time.Second

// fleetRolloutConfig gates rollouts on the same thresholds the agents
// soak with, so both layers judge candidates consistently.
func fleetRolloutConfig() controlplane.RolloutConfig {
	return controlplane.RolloutConfig{
		CanaryPercent:    25, // 3 replicas -> 1-replica canary ring
		MinAgreement:     0.9,
		MinShadowSamples: 8,
		ReplicaTTL:       time.Minute,
	}
}

// TestFleetStagedRolloutPromotes walks the happy path end to end: three
// replicas bootstrap from the control plane, a salt-only candidate (same
// predictions, new hash) rolls out canary-first, soaks with perfect
// shadow agreement, and promotes ring by ring until the fleet converges
// and the candidate becomes stable. While the rollout is in the canary
// stage, non-canary replicas must keep serving the old stable.
func TestFleetStagedRolloutPromotes(t *testing.T) {
	cols := []string{"allreduce"}
	stableData := constBundleJSON(t, cols, 0, "stable-a")
	candData := constBundleJSON(t, cols, 0, "candidate-b")

	url, store, ro, stable := newFleetCtl(t, stableData, fleetRolloutConfig())
	reps := []*fleetReplica{
		newFleetReplica(t, url, "r0", 100*time.Millisecond),
		newFleetReplica(t, url, "r1", 100*time.Millisecond),
		newFleetReplica(t, url, "r2", 100*time.Millisecond),
	}
	ctx := context.Background()

	// Bootstrap: every replica adopts the stable hash (two ticks for the
	// desired-hash debounce, one more for the heartbeat to confirm).
	for i := 0; i < 3; i++ {
		for _, r := range reps {
			r.agent.Tick(ctx)
		}
	}
	for _, r := range reps {
		if r.activeHash() != stable {
			t.Fatalf("replica %s bootstrapped to %q, want stable", r.id, r.activeHash())
		}
	}
	// Ring assignment is deterministic: sorted IDs, first ceil(25% of 3)=1
	// is the canary.
	for _, ri := range ro.Snapshot().Replicas {
		want := controlplane.RingFleet
		if ri.ReplicaID == "r0" {
			want = controlplane.RingCanary
		}
		if ri.Ring != want {
			t.Fatalf("replica %s in ring %s, want %s", ri.ReplicaID, ri.Ring, want)
		}
	}

	cand, _, err := store.Put(candData)
	if err != nil {
		t.Fatalf("Put candidate: %v", err)
	}
	if cand == stable {
		t.Fatal("salt did not change the bundle hash")
	}
	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start rollout: %v", err)
	}

	sawCanary, sawFleet := false, false
	deadline := time.Now().Add(rolloutDeadline)
	for {
		for _, r := range reps {
			r.agent.Tick(ctx)
			r.feedSelects(ctx, t, 2)
		}
		snap := ro.Snapshot()
		switch snap.State {
		case controlplane.StateCanary:
			sawCanary = true
			// The candidate is only exposed to the canary ring: r1/r2
			// must still be serving the old stable generation.
			for _, r := range reps[1:] {
				if r.activeHash() != stable {
					t.Fatalf("non-canary replica %s serves %q during canary stage", r.id, r.activeHash())
				}
			}
		case controlplane.StateFleet:
			sawFleet = true
		case controlplane.StateRolledBack:
			t.Fatalf("rollout rolled back: %s", snap.RollbackReason)
		case controlplane.StateDone:
			if snap.StableHash != cand {
				t.Fatalf("done with stable %q, want candidate", snap.StableHash)
			}
			for _, r := range reps {
				if r.activeHash() != cand {
					t.Fatalf("replica %s serves %q after done, want candidate", r.id, r.activeHash())
				}
			}
			if !sawCanary || !sawFleet {
				t.Fatalf("rollout skipped stages: canary=%v fleet=%v", sawCanary, sawFleet)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rollout stuck in state %s after %s", snap.State, rolloutDeadline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetAutoRollbackNeverServesBadCandidate rolls out a candidate
// that disagrees with the stable model on every decision. The canary
// soaks it against live traffic, shadow agreement lands at exactly 0.0,
// the replica rejects it, and the control plane rolls the fleet back.
// The invariant under test: at no point does ANY replica — canary
// included, since rejection fires before the soak deadline — serve the
// bad hash, and non-canary replicas never even see it as a candidate.
func TestFleetAutoRollbackNeverServesBadCandidate(t *testing.T) {
	cols := []string{"allreduce"}
	stableData := constBundleJSON(t, cols, 0, "stable-a")
	badData := constBundleJSON(t, cols, 1, "bad-c") // flipped class: 0.0 agreement

	url, store, ro, stable := newFleetCtl(t, stableData, fleetRolloutConfig())
	// Soak of an hour: the deadline's thin-evidence promote can never
	// fire, so an explicit shadow rejection is the only way forward.
	reps := []*fleetReplica{
		newFleetReplica(t, url, "r0", time.Hour),
		newFleetReplica(t, url, "r1", time.Hour),
		newFleetReplica(t, url, "r2", time.Hour),
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		for _, r := range reps {
			r.agent.Tick(ctx)
		}
	}

	bad, _, err := store.Put(badData)
	if err != nil {
		t.Fatalf("Put bad candidate: %v", err)
	}
	if err := ro.Start(bad); err != nil {
		t.Fatalf("Start rollout: %v", err)
	}

	sawSoak := false
	deadline := time.Now().Add(rolloutDeadline)
	for {
		for _, r := range reps {
			r.agent.Tick(ctx)
			r.feedSelects(ctx, t, 2)
		}
		// The core invariant, checked on every iteration.
		for _, r := range reps {
			if r.activeHash() != stable {
				t.Fatalf("replica %s serves %q mid-rollout, must stay on stable", r.id, r.activeHash())
			}
		}
		// Non-canary replicas must never stage the candidate at all.
		for _, r := range reps[1:] {
			if st := r.agent.Status(); st.CandidateHash == bad {
				t.Fatalf("non-canary replica %s staged the bad candidate", r.id)
			}
		}
		if st := reps[0].agent.Status(); st.CandidateHash == bad {
			sawSoak = true
		}
		snap := ro.Snapshot()
		if snap.State == controlplane.StateRolledBack {
			if snap.StableHash != stable {
				t.Fatalf("rolled back to %q, want original stable", snap.StableHash)
			}
			if snap.RollbackReason == "" {
				t.Fatal("rollback recorded no reason")
			}
			if !sawSoak {
				t.Fatal("canary never soaked the candidate; rollback came from the wrong path")
			}
			break
		}
		if snap.State == controlplane.StateDone {
			t.Fatal("bad candidate was promoted to the fleet")
		}
		if time.Now().After(deadline) {
			t.Fatalf("no rollback after %s (state %s)", rolloutDeadline, snap.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Settle: replicas re-adopt the stable manifest; the sticky rejection
	// must not disturb serving.
	for i := 0; i < 4; i++ {
		for _, r := range reps {
			r.agent.Tick(ctx)
		}
	}
	for _, r := range reps {
		if r.activeHash() != stable {
			t.Fatalf("replica %s not on stable after rollback settle", r.id)
		}
	}
}

// serveStack is a minimal serving node for the loadgen comparison: no
// agent, no shadow — just a promoted bundle behind the admin surface.
type serveStack struct {
	srv *httptest.Server
}

func newServeStack(t *testing.T, bundleData []byte) *serveStack {
	t.Helper()
	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	gen, err := reg.LoadData(bundleData, "fleete2e")
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	if _, err := reg.Promote(gen.ID()); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	sel := selector.NewFromSource(reg, o, selector.Config{})
	ts := httptest.NewServer(admin.New(sel, o, admin.Config{Registry: reg, Role: "replica"}))
	t.Cleanup(ts.Close)
	return &serveStack{srv: ts}
}

// TestGatewayLoadgenTallyMatchesSingleServer replays the same seeded
// workload against a single server and against a gateway fronting three
// replicas of the same bundle, and asserts the per-collective selection
// tallies are identical: partitioning re-routes requests but neither
// drops nor duplicates any.
func TestGatewayLoadgenTallyMatchesSingleServer(t *testing.T) {
	bundleData, err := synth.JSON(synth.Config{Seed: 7, Collectives: []string{"allgather", "broadcast"}})
	if err != nil {
		t.Fatalf("synth bundle: %v", err)
	}

	single := newServeStack(t, bundleData)

	var specs []gateway.ReplicaSpec
	for _, id := range []string{"r0", "r1", "r2"} {
		specs = append(specs, gateway.ReplicaSpec{ID: id, URL: newServeStack(t, bundleData).srv.URL})
	}
	gw, err := gateway.New(obs.NewForTest(), gateway.Config{Replicas: specs, MaxAttempts: 3})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	gwts := httptest.NewServer(gw)
	t.Cleanup(gwts.Close)

	ctx := context.Background()
	opts := loadgen.Options{
		Seed:     11,
		QPS:      400,
		Duration: 500 * time.Millisecond,
		Warmup:   0,
		Workers:  6,
	}

	soloOpts := opts
	soloOpts.BaseURL = single.srv.URL
	soloRep, err := loadgen.Run(ctx, soloOpts)
	if err != nil {
		t.Fatalf("single-server run: %v", err)
	}

	gwOpts := opts
	gwOpts.BaseURL = gwts.URL
	gwOpts.TargetMode = loadgen.ModeGateway
	gwRep, err := loadgen.Run(ctx, gwOpts)
	if err != nil {
		t.Fatalf("gateway run: %v", err)
	}

	if soloRep.Config.SequenceHash != gwRep.Config.SequenceHash {
		t.Fatalf("sequence hashes differ: %s vs %s — gateway mode perturbed the workload",
			soloRep.Config.SequenceHash, gwRep.Config.SequenceHash)
	}
	if soloRep.Client.Errors != 0 || gwRep.Client.Errors != 0 {
		t.Fatalf("errors: solo=%d gateway=%d, want 0", soloRep.Client.Errors, gwRep.Client.Errors)
	}
	if gwRep.Config.TargetMode != loadgen.ModeGateway || gwRep.Gateway == nil {
		t.Fatalf("gateway run missing gateway section (mode %q)", gwRep.Config.TargetMode)
	}

	if !reflect.DeepEqual(gwRep.Gateway.SelectionsByCollective, soloRep.Delta.SelectionsByCollective) {
		t.Fatalf("selection tallies diverge:\n gateway: %v\n single:  %v",
			gwRep.Gateway.SelectionsByCollective, soloRep.Delta.SelectionsByCollective)
	}

	served := 0
	for _, r := range gwRep.Gateway.Replicas {
		if r.Requests > 0 {
			served++
		}
		if r.Errors != 0 {
			t.Fatalf("replica %s recorded %d proxy errors on a healthy fleet", r.ID, r.Errors)
		}
	}
	if served < 2 {
		t.Fatalf("partitioning sent traffic to only %d replica(s); want spread across at least 2", served)
	}
}
