// Package perfmodel implements analytical Hockney-style (α-β) cost models
// for the candidate algorithms of the MPI collectives PML-MPI selects
// among, in the tradition of Nuriyev & Lastovetsky's analytical selection
// work. Each model maps the canonical feature vector (cluster shape plus
// hardware bandwidth/latency proxies) to an estimated completion time; the
// argmin across a collective's candidates is a physically grounded label.
//
// The package serves two roles: a deterministic label generator for the
// training pipeline (Sweep produces grids of labeled examples without a
// real cluster), and a ground-truth oracle that end-to-end tests compare
// served decisions against.
package perfmodel

import (
	"fmt"
	"math"

	"github.com/pml-mpi/pmlmpi/pkg/dataset"
)

// Params are the derived α-β model inputs for one configuration: process
// count, message size, and the effective latency/bandwidth terms blended
// from the intra-node and inter-node fabrics.
type Params struct {
	// P is the total number of ranks (num_nodes × ppn, at least 1).
	P int
	// M is the message size in bytes (2^log2_msg_size).
	M float64
	// Alpha is the effective per-message latency in seconds.
	Alpha float64
	// Beta is the effective per-byte transfer time in seconds.
	Beta float64
	// BetaMem is the per-byte local memory-copy time, charged to
	// algorithms that shuffle data through intermediate buffers (Bruck).
	BetaMem float64
}

// Baseline fabric constants. These are plausible modern-cluster magnitudes;
// the models only need relative ordering to produce meaningful labels, and
// every derivation below is deterministic in the input features.
const (
	interNodeAlpha = 1.5e-6 // seconds, base network injection latency
	intraNodeAlpha = 4.0e-7 // seconds, shared-memory latency
	numaAlphaStep  = 0.10   // relative α penalty per extra NUMA domain
)

// feature reads a named feature with a default for absent entries, so the
// models degrade gracefully on sparse feature maps (the sweep always emits
// the full set).
func feature(f map[string]float64, name string, def float64) float64 {
	if v, ok := f[name]; ok && !math.IsNaN(v) && !math.IsInf(v, 0) {
		return v
	}
	return def
}

// DeriveParams blends the canonical features into α-β model parameters.
// With a single node everything moves over shared memory; with many nodes
// the effective terms approach the network fabric's. The blend weight is
// the probability that a uniformly random peer lives on another node,
// 1 − 1/num_nodes.
func DeriveParams(f map[string]float64) Params {
	nodes := math.Max(1, feature(f, "num_nodes", 1))
	ppn := math.Max(1, feature(f, "ppn", 1))
	p := int(nodes * ppn)
	if p < 1 {
		p = 1
	}
	m := math.Exp2(feature(f, "log2_msg_size", 10))

	// Inter-node fabric: link_speed_gbps per lane × link_width lanes.
	lanes := math.Max(1, feature(f, "link_width", 4))
	gbps := math.Max(1, feature(f, "link_speed_gbps", 25)) * lanes
	betaNet := 8.0 / (gbps * 1e9) // seconds per byte

	// Intra-node fabric: memory bandwidth shared by the ranks on a node.
	memBW := math.Max(1, feature(f, "mem_bw_gbs", 100)) * 1e9
	betaMem := 1.0 / memBW

	numa := math.Max(1, feature(f, "numa_nodes", 1))
	alphaNet := interNodeAlpha * (1 + numaAlphaStep*(numa-1)/4)
	alphaMem := intraNodeAlpha * (1 + numaAlphaStep*(numa-1))

	// Blend by the remote-peer probability.
	remote := 1 - 1/nodes
	return Params{
		P:       p,
		M:       m,
		Alpha:   remote*alphaNet + (1-remote)*alphaMem,
		Beta:    remote*betaNet + (1-remote)*betaMem,
		BetaMem: betaMem,
	}
}

// Algorithm is one candidate implementation of a collective: a class index
// (its position in the collective's candidate list), a name matching the
// selector's algorithm tables, and its cost model.
type Algorithm struct {
	Name string
	Cost func(Params) float64
}

// log2Ceil returns ceil(log2(p)) for p ≥ 1.
func log2Ceil(p int) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p)))
}

// isPow2 reports whether p is a power of two.
func isPow2(p int) bool { return p > 0 && p&(p-1) == 0 }

// pipelineSegments is the segment count the segmented-pipeline broadcast
// model assumes: the near-optimal s* = sqrt((p−2)·β·m / α) that balances
// the latency and serialization terms, clamped so segments stay at least
// 1 KiB (below that, per-packet overheads swamp the model).
func pipelineSegments(pr Params) float64 {
	fill := math.Max(1, float64(pr.P-2))
	s := math.Sqrt(fill * pr.Beta * pr.M / pr.Alpha)
	maxS := math.Max(1, math.Floor(pr.M/1024))
	if s < 1 {
		return 1
	}
	if s > maxS {
		return maxS
	}
	return math.Round(s)
}

// Collectives maps each supported collective to its candidate algorithms
// in class-index order. The order is frozen: class indices are what the
// trainer learns and what the serving selector's algorithm tables assume.
var Collectives = map[string][]Algorithm{
	"broadcast": {
		// Binomial tree: ceil(log2 p) rounds, full message per round.
		// Latency-optimal; loses at large m where pipelining amortizes β.
		{Name: "binomial_tree", Cost: func(pr Params) float64 {
			r := log2Ceil(pr.P)
			return r * (pr.Alpha + pr.Beta*pr.M)
		}},
		// Segmented pipeline (chain): fills after p−2 steps, then streams
		// one segment per step. Bandwidth-optimal for long messages.
		{Name: "pipeline", Cost: func(pr Params) float64 {
			if pr.P <= 1 {
				return 0
			}
			s := pipelineSegments(pr)
			steps := float64(pr.P-2) + s
			return steps * (pr.Alpha + pr.Beta*pr.M/s)
		}},
		// Van de Geijn scatter + allgather: 2(p−1)/p·βm bandwidth term at
		// the price of log p + p − 1 latencies. Wins mid-size messages.
		{Name: "scatter_allgather", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			r := log2Ceil(pr.P)
			return (r+p-1)*pr.Alpha + 2*(p-1)/p*pr.Beta*pr.M
		}},
	},
	"allgather": {
		// Recursive doubling: log p rounds for powers of two; non-powers
		// pay extra fix-up rounds and fragmented transfers. Distance
		// doubles each round, so far exchanges congest shared links.
		{Name: "recursive_doubling", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			rounds := log2Ceil(pr.P)
			congest := 1 + 0.10*log2Ceil(pr.P)
			if !isPow2(pr.P) {
				rounds = math.Floor(math.Log2(p)) + 2
				congest *= 1.5
			}
			return rounds*pr.Alpha + (p-1)*pr.M*pr.Beta*congest
		}},
		// Bruck: ceil(log2 p) rounds for any p, plus local rotation
		// copies through the staging buffer.
		{Name: "bruck", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			congest := 1 + 0.15*log2Ceil(pr.P)
			rotate := p * pr.M * pr.BetaMem
			return log2Ceil(pr.P)*pr.Alpha + (p-1)*pr.M*pr.Beta*congest + rotate
		}},
		// Ring: p−1 nearest-neighbor steps, contention-free, so the pure
		// (p−1)βm bandwidth term. Wins long messages.
		{Name: "ring", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			return (p-1)*pr.Alpha + (p-1)*pr.M*pr.Beta
		}},
		// Neighbor exchange: p/2 pairwise phases, even p only (odd p falls
		// back to an inefficient fix-up, modeled as a 2× stretch).
		{Name: "neighbor_exchange", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			cost := (p/2)*pr.Alpha + (p-1)*pr.M*pr.Beta
			if pr.P%2 != 0 {
				cost *= 2
			}
			return cost
		}},
	},
	"alltoall": {
		// Linear: post every send/recv at once. Minimal handshaking but
		// p simultaneous flows congest the fabric as p grows.
		{Name: "linear", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			congest := 1 + p/64
			return (p-1)*0.5*pr.Alpha + (p-1)*pr.M*pr.Beta*congest
		}},
		// Pairwise exchange: p−1 scheduled phases, contention-free when p
		// is even; odd p breaks the perfect matching.
		{Name: "pairwise", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			congest := 1.0
			if pr.P%2 != 0 {
				congest = 1.3
			}
			return (p - 1) * (pr.Alpha + pr.M*pr.Beta*congest)
		}},
		// Modified Bruck: log p rounds moving p/2 blocks each — wins the
		// latency-bound regime, pays log p extra bandwidth.
		{Name: "modified_bruck", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			r := log2Ceil(pr.P)
			rotate := p * pr.M * pr.BetaMem
			return r*pr.Alpha + (p/2)*pr.M*r*pr.Beta + rotate
		}},
		// Linear with per-peer synchronization: serializes handshakes
		// (1.5α per peer) but caps in-flight flows, so congestion stays
		// mild for large p.
		{Name: "linear_sync", Cost: func(pr Params) float64 {
			p := float64(pr.P)
			congest := 1 + p/512
			return (p - 1) * (1.5*pr.Alpha + pr.M*pr.Beta*congest)
		}},
	},
}

// CollectiveNames returns the supported collectives in sorted order.
func CollectiveNames() []string {
	return []string{"allgather", "alltoall", "broadcast"}
}

// AlgorithmNames returns the class-ordered algorithm names of a collective.
func AlgorithmNames(collective string) ([]string, error) {
	algos, ok := Collectives[collective]
	if !ok {
		return nil, fmt.Errorf("perfmodel: unknown collective %q (have %v)", collective, CollectiveNames())
	}
	names := make([]string, len(algos))
	for i, a := range algos {
		names[i] = a.Name
	}
	return names, nil
}

// Table returns the full collective → class-ordered algorithm-name table,
// the shape dataset ingestion and the selector's Config.Algorithms expect.
func Table() map[string][]string {
	t := make(map[string][]string, len(Collectives))
	for name := range Collectives {
		names, _ := AlgorithmNames(name)
		t[name] = names
	}
	return t
}

// Cost evaluates one candidate's model on a feature map.
func Cost(collective string, class int, features map[string]float64) (float64, error) {
	algos, ok := Collectives[collective]
	if !ok {
		return 0, fmt.Errorf("perfmodel: unknown collective %q", collective)
	}
	if class < 0 || class >= len(algos) {
		return 0, fmt.Errorf("perfmodel: collective %q has no class %d (has %d)", collective, class, len(algos))
	}
	return algos[class].Cost(DeriveParams(features)), nil
}

// Costs evaluates every candidate of a collective, in class order.
func Costs(collective string, features map[string]float64) ([]float64, error) {
	algos, ok := Collectives[collective]
	if !ok {
		return nil, fmt.Errorf("perfmodel: unknown collective %q", collective)
	}
	pr := DeriveParams(features)
	out := make([]float64, len(algos))
	for i, a := range algos {
		out[i] = a.Cost(pr)
	}
	return out, nil
}

// Best returns the argmin-cost class for a collective on the given
// features; ties break toward the lowest class index, so the oracle is
// fully deterministic.
func Best(collective string, features map[string]float64) (int, error) {
	costs, err := Costs(collective, features)
	if err != nil {
		return 0, err
	}
	best := 0
	for i, c := range costs {
		if c < costs[best] {
			best = i
		}
	}
	return best, nil
}

// Oracle adapts Best into the dataset oracle signature used by agreement
// checks: it panics on unknown collectives, which sweep-produced examples
// never reference.
func Oracle(collective string, features map[string]float64) int {
	cls, err := Best(collective, features)
	if err != nil {
		panic(err)
	}
	return cls
}

// System is one hardware profile a sweep labels points on. The fields feed
// the canonical feature map; anything the α-β derivation ignores
// (clock, cache, PCIe) still varies per system so trained forests see the
// full canonical feature space.
type System struct {
	Name         string
	MaxClockGHz  float64
	L3CacheMiB   float64
	MemBWGBs     float64
	CoreCount    float64
	Sockets      float64
	NUMANodes    float64
	PCIeLanes    float64
	PCIeGen      float64
	LinkSpeedGbs float64
	LinkWidth    float64
}

// Features renders the system profile plus a job shape into a full
// canonical feature map.
func (s System) Features(numNodes, ppn, log2MsgSize float64) map[string]float64 {
	return map[string]float64{
		"num_nodes":       numNodes,
		"ppn":             ppn,
		"log2_msg_size":   log2MsgSize,
		"max_clock_ghz":   s.MaxClockGHz,
		"l3_cache_mib":    s.L3CacheMiB,
		"mem_bw_gbs":      s.MemBWGBs,
		"core_count":      s.CoreCount,
		"thread_count":    s.CoreCount * 2,
		"sockets":         s.Sockets,
		"numa_nodes":      s.NUMANodes,
		"pcie_lanes":      s.PCIeLanes,
		"pcie_gen":        s.PCIeGen,
		"link_speed_gbps": s.LinkSpeedGbs,
		"link_width":      s.LinkWidth,
	}
}

// DefaultSystems are three hardware profiles spanning a fat-node/fast-
// fabric box, a balanced cluster, and a thin-node/slow-fabric cluster, so
// sweeps cover meaningfully different α-β regimes.
var DefaultSystems = []System{
	{Name: "hdr-fat", MaxClockGHz: 3.5, L3CacheMiB: 256, MemBWGBs: 350, CoreCount: 64,
		Sockets: 2, NUMANodes: 8, PCIeLanes: 128, PCIeGen: 4, LinkSpeedGbs: 50, LinkWidth: 4},
	{Name: "edr-mid", MaxClockGHz: 2.9, L3CacheMiB: 64, MemBWGBs: 180, CoreCount: 32,
		Sockets: 2, NUMANodes: 2, PCIeLanes: 64, PCIeGen: 3, LinkSpeedGbs: 25, LinkWidth: 4},
	{Name: "eth-thin", MaxClockGHz: 2.4, L3CacheMiB: 32, MemBWGBs: 90, CoreCount: 16,
		Sockets: 1, NUMANodes: 1, PCIeLanes: 32, PCIeGen: 3, LinkSpeedGbs: 10, LinkWidth: 1},
}

// SweepConfig shapes a labeled feature-space sweep. Zero values take the
// documented defaults, so SweepConfig{} is a usable full sweep.
type SweepConfig struct {
	// Collectives to sweep (default: all supported).
	Collectives []string
	// Nodes, PPN, Log2MsgSizes are the grid axes (defaults below).
	Nodes        []float64
	PPN          []float64
	Log2MsgSizes []float64
	// Systems are the hardware profiles labeled (default DefaultSystems).
	Systems []System
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Collectives) == 0 {
		c.Collectives = CollectiveNames()
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	}
	if len(c.PPN) == 0 {
		c.PPN = []float64{1, 2, 4, 8, 16, 32}
	}
	if len(c.Log2MsgSizes) == 0 {
		c.Log2MsgSizes = []float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22}
	}
	if len(c.Systems) == 0 {
		c.Systems = DefaultSystems
	}
	return c
}

// Sweep enumerates the configured grid in deterministic order and labels
// every point with the argmin-cost algorithm. The result is a fully
// validated dataset: every example carries the complete canonical feature
// map and a class index into the collective's candidate list.
func Sweep(cfg SweepConfig) (*dataset.Dataset, error) {
	cfg = cfg.withDefaults()
	ds := dataset.New(Table())
	for _, coll := range cfg.Collectives {
		names, err := AlgorithmNames(coll)
		if err != nil {
			return nil, err
		}
		for _, sys := range cfg.Systems {
			for _, nodes := range cfg.Nodes {
				for _, ppn := range cfg.PPN {
					for _, lm := range cfg.Log2MsgSizes {
						f := sys.Features(nodes, ppn, lm)
						cls, err := Best(coll, f)
						if err != nil {
							return nil, err
						}
						ds.Examples = append(ds.Examples, dataset.Example{
							Collective: coll,
							Features:   f,
							Label:      cls,
							Algorithm:  names[cls],
						})
					}
				}
			}
		}
	}
	return ds, nil
}
