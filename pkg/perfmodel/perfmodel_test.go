package perfmodel_test

import (
	"math"
	"reflect"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

// features builds a canonical feature map on the mid-range default system.
func features(nodes, ppn, log2Msg float64) map[string]float64 {
	return perfmodel.DefaultSystems[1].Features(nodes, ppn, log2Msg)
}

// className resolves a Best result to its algorithm name.
func className(t *testing.T, collective string, f map[string]float64) string {
	t.Helper()
	cls, err := perfmodel.Best(collective, f)
	if err != nil {
		t.Fatalf("Best(%s): %v", collective, err)
	}
	names, err := perfmodel.AlgorithmNames(collective)
	if err != nil {
		t.Fatal(err)
	}
	return names[cls]
}

// TestRegimes pins the physically expected winners: latency-bound regimes
// (tiny messages, many ranks) go to logarithmic-round algorithms,
// bandwidth-bound regimes (huge messages) to pipelined/contention-free
// ones. These are the textbook α-β results; if a model edit flips one of
// these, the training labels have lost their physical grounding.
func TestRegimes(t *testing.T) {
	cases := []struct {
		collective string
		f          map[string]float64
		want       string
	}{
		// 16 nodes × 16 ranks, 16-byte broadcast: latency-dominated, the
		// binomial tree's log2(256)=8 rounds beat 255 linear sends.
		{"broadcast", features(16, 16, 4), "binomial_tree"},
		// 16 nodes × 4 ranks, 16 MiB broadcast: pipeline streams segments
		// (scatter+allgather's 2βm bandwidth term loses to ~1·βm).
		{"broadcast", features(16, 4, 24), "pipeline"},
		// 16 nodes × 4 ranks (p=64, power of two), tiny allgather:
		// recursive doubling's log2 p rounds win.
		{"allgather", features(16, 4, 2), "recursive_doubling"},
		// p=11 (odd, not a power of two), tiny allgather: Bruck handles
		// any p in ceil(log2 p) rounds without recursive doubling's
		// fix-up penalty or neighbor exchange's odd-p degradation.
		{"allgather", features(11, 1, 2), "bruck"},
		// Even p, 4 MiB allgather: nearest-neighbor exchange, fewest
		// latencies among the contention-free bandwidth algorithms.
		{"allgather", features(8, 4, 22), "neighbor_exchange"},
		// Odd p, 4 MiB allgather: ring (neighbor exchange degrades).
		{"allgather", features(3, 3, 22), "ring"},
		// Large p, tiny alltoall: modified Bruck's log p rounds win.
		{"alltoall", features(32, 8, 2), "modified_bruck"},
		// Even p, 1 MiB alltoall: pairwise exchange, contention-free.
		{"alltoall", features(8, 4, 20), "pairwise"},
	}
	for _, tc := range cases {
		if got := className(t, tc.collective, tc.f); got != tc.want {
			costs, _ := perfmodel.Costs(tc.collective, tc.f)
			t.Errorf("%s nodes=%v ppn=%v log2m=%v: got %q, want %q (costs %v)",
				tc.collective, tc.f["num_nodes"], tc.f["ppn"], tc.f["log2_msg_size"],
				got, tc.want, costs)
		}
	}
}

func TestCostsArePositiveAndFinite(t *testing.T) {
	for _, coll := range perfmodel.CollectiveNames() {
		for _, nodes := range []float64{1, 2, 7, 64} {
			for _, lm := range []float64{0, 10, 26} {
				costs, err := perfmodel.Costs(coll, features(nodes, 8, lm))
				if err != nil {
					t.Fatalf("Costs(%s): %v", coll, err)
				}
				for i, c := range costs {
					if !(c > 0) || math.IsInf(c, 0) || math.IsNaN(c) {
						t.Errorf("%s class %d: cost %v not positive-finite (nodes=%v log2m=%v)",
							coll, i, c, nodes, lm)
					}
				}
			}
		}
	}
}

func TestUnknownCollectiveErrors(t *testing.T) {
	if _, err := perfmodel.Best("reduce_scatter", features(4, 4, 10)); err == nil {
		t.Fatal("Best on unsupported collective should error")
	}
	if _, err := perfmodel.Cost("broadcast", 99, features(4, 4, 10)); err == nil {
		t.Fatal("Cost with out-of-range class should error")
	}
	if _, err := perfmodel.AlgorithmNames("nope"); err == nil {
		t.Fatal("AlgorithmNames on unsupported collective should error")
	}
}

// TestSweepDeterministicAndValid: equal configs produce equal datasets,
// every example is fully labeled over the complete canonical feature set,
// and every supported collective sees at least two distinct winning
// classes (a degenerate single-class sweep would train a useless model).
func TestSweepDeterministicAndValid(t *testing.T) {
	a, err := perfmodel.Sweep(perfmodel.SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := perfmodel.Sweep(perfmodel.SweepConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two default sweeps differ")
	}
	if a.Len() == 0 {
		t.Fatal("default sweep is empty")
	}
	for i := range a.Examples {
		ex := &a.Examples[i]
		if len(ex.Features) != len(bundle.CanonicalFeatures) {
			t.Fatalf("example %d has %d features, want the full canonical %d",
				i, len(ex.Features), len(bundle.CanonicalFeatures))
		}
		names := a.Algorithms[ex.Collective]
		if ex.Label < 0 || ex.Label >= len(names) {
			t.Fatalf("example %d label %d outside [0,%d)", i, ex.Label, len(names))
		}
		if ex.Algorithm != names[ex.Label] {
			t.Fatalf("example %d algorithm %q does not match class %d (%q)",
				i, ex.Algorithm, ex.Label, names[ex.Label])
		}
	}
	for _, coll := range perfmodel.CollectiveNames() {
		counts := a.LabelCounts(coll)
		distinct := 0
		for _, c := range counts {
			if c > 0 {
				distinct++
			}
		}
		if distinct < 2 {
			t.Errorf("%s: sweep labels collapse to %d class(es) (%v)", coll, distinct, counts)
		}
	}
}

// TestAlgorithmNamesMatchSelectorTable pins the contract between the
// analytical models and the serving layer: class indices produced by the
// trainer must decode to the same algorithm names the selector serves.
func TestAlgorithmNamesMatchSelectorTable(t *testing.T) {
	for coll, names := range perfmodel.Table() {
		served, ok := selector.DefaultAlgorithms[coll]
		if !ok {
			t.Errorf("selector.DefaultAlgorithms missing collective %q", coll)
			continue
		}
		if len(served) < len(names) {
			t.Errorf("%s: selector names %v shorter than perfmodel classes %v", coll, served, names)
			continue
		}
		for i, n := range names {
			if served[i] != n {
				t.Errorf("%s class %d: perfmodel %q vs selector %q", coll, i, n, served[i])
			}
		}
	}
}

func TestDeriveParamsSingleNodeIsSharedMemory(t *testing.T) {
	one := perfmodel.DeriveParams(features(1, 16, 10))
	many := perfmodel.DeriveParams(features(16, 16, 10))
	if one.Beta >= many.Beta {
		t.Errorf("intra-node beta %v should beat the blended inter-node beta %v", one.Beta, many.Beta)
	}
	if one.Alpha >= many.Alpha {
		t.Errorf("intra-node alpha %v should beat the blended inter-node alpha %v", one.Alpha, many.Alpha)
	}
	if one.P != 16 || many.P != 256 {
		t.Errorf("P = %d/%d, want 16/256", one.P, many.P)
	}
}
