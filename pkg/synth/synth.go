// Package synth generates deterministic synthetic model bundles for tests
// and benchmarks. Given a seed and shape parameters (collectives, trees,
// depth, features, classes) it produces bundle JSON that pkg/bundle.Parse
// accepts unchanged, so every consumer exercises the exact artifact format
// the production loader sees — no hand-written fixtures, no drift. The same
// Config always yields byte-identical output.
package synth

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/train"
)

// Config shapes a synthetic bundle. The zero value is usable: it yields a
// two-collective bundle of 32 trees, depth 6, 5 features, 4 classes.
type Config struct {
	// Seed drives every random choice; equal configs generate equal bundles.
	Seed int64
	// Collectives names the per-collective forests (default
	// {"allgather", "alltoall"} to mirror the shipped bundle).
	Collectives []string
	// Trees per forest (default 32).
	Trees int
	// Depth is the maximum tree depth (default 6). Branches may terminate
	// early, so trees are irregular like real learned trees.
	Depth int
	// Features is the size of each collective's feature subset, drawn from
	// bundle.CanonicalFeatures (default 5, max len(CanonicalFeatures)).
	Features int
	// Classes is the number of algorithm classes per forest (default 4).
	Classes int
	// TrainedOn is the number of synthetic provenance systems (default 3).
	TrainedOn int
	// Labeled switches generation from random trees to a genuinely trained
	// bundle: a reduced perfmodel sweep labels points by analytical argmin
	// cost and a random forest is trained on them, so tree structure and
	// decisions reflect real regime boundaries instead of noise. Every
	// collective must be supported by pkg/perfmodel. Features, Classes, and
	// TrainedOn are ignored in this mode — the feature set is the full
	// canonical space, class counts come from the perfmodel algorithm
	// table, and provenance records the swept systems.
	Labeled bool
}

func (c Config) withDefaults() Config {
	if len(c.Collectives) == 0 {
		c.Collectives = []string{"allgather", "alltoall"}
	}
	if c.Trees <= 0 {
		c.Trees = 32
	}
	if c.Depth <= 0 {
		c.Depth = 6
	}
	if c.Features <= 0 {
		c.Features = 5
	}
	if c.Features > len(bundle.CanonicalFeatures) {
		c.Features = len(bundle.CanonicalFeatures)
	}
	if c.Classes <= 0 {
		c.Classes = 4
	}
	if c.TrainedOn <= 0 {
		c.TrainedOn = 3
	}
	return c
}

// JSON renders a synthetic bundle in the exact on-disk format
// bundle.Parse expects. Deterministic for a given Config.
func JSON(cfg Config) ([]byte, error) {
	cfg = cfg.withDefaults()
	if cfg.Labeled {
		return labeledJSON(cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	doc := make(map[string]any, len(cfg.Collectives)+2)
	doc["version"] = bundle.SupportedVersion
	trained := make([]string, cfg.TrainedOn)
	for i := range trained {
		trained[i] = fmt.Sprintf("synth-sys-%02d", i)
	}
	doc["trained_on"] = trained

	for op, name := range cfg.Collectives {
		if name == "version" || name == "trained_on" {
			return nil, fmt.Errorf("synth: collective name %q collides with a reserved bundle key", name)
		}
		doc[name] = genCollective(rng, cfg, op)
	}
	return json.MarshalIndent(doc, "", " ")
}

// labeledJSON builds a Labeled-mode bundle: analytical sweep → forest
// training → canonical encoding. The sweep grid is reduced relative to
// perfmodel's default so test-path generation stays fast (~100ms) while
// still spanning every cost regime.
func labeledJSON(cfg Config) ([]byte, error) {
	for _, name := range cfg.Collectives {
		if _, err := perfmodel.AlgorithmNames(name); err != nil {
			return nil, fmt.Errorf("synth: labeled mode: %w", err)
		}
	}
	ds, err := perfmodel.Sweep(perfmodel.SweepConfig{
		Collectives:  cfg.Collectives,
		Nodes:        []float64{1, 2, 4, 8, 16, 32},
		PPN:          []float64{1, 4, 16},
		Log2MsgSizes: []float64{2, 6, 10, 14, 18, 22},
	})
	if err != nil {
		return nil, fmt.Errorf("synth: labeled sweep: %w", err)
	}
	trainedOn := make([]string, len(perfmodel.DefaultSystems))
	for i, sys := range perfmodel.DefaultSystems {
		trainedOn[i] = "perfmodel/" + sys.Name
	}
	b, _, err := train.TrainBundle(ds, train.BundleConfig{
		Config:    train.Config{Trees: cfg.Trees, MaxDepth: cfg.Depth, Seed: cfg.Seed},
		TrainedOn: trainedOn,
	})
	if err != nil {
		return nil, fmt.Errorf("synth: labeled training: %w", err)
	}
	return b.Encode()
}

// Binary renders a synthetic bundle in the compact PMLB binary encoding —
// the JSON bundle re-encoded through bundle.EncodeBinary, so binary-path
// consumers (ParseAny, registry loads, fuzz seeds) exercise exactly what
// WriteFileBinary ships. Deterministic for a given Config.
func Binary(cfg Config) ([]byte, error) {
	b, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return b.EncodeBinary()
}

// New generates a synthetic bundle and loads it through bundle.Parse, so
// the result is guaranteed to be exactly what the production loader would
// accept from disk.
func New(cfg Config) (*bundle.Bundle, error) {
	data, err := JSON(cfg)
	if err != nil {
		return nil, err
	}
	b, err := bundle.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("synth: generated bundle failed to parse: %w", err)
	}
	b.SizeBytes = int64(len(data))
	return b, nil
}

// MustNew is New for tests and benchmarks that treat a generation failure
// as fatal programmer error.
func MustNew(cfg Config) *bundle.Bundle {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// Points returns n deterministic feature maps covering every canonical
// feature, so each point is a valid input for every collective in any
// synthetic bundle. Distinct indices yield distinct maps (values carry
// far more than cache-quantum precision).
func Points(seed int64, n int) []map[string]float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5f3759df))
	pts := make([]map[string]float64, n)
	for i := range pts {
		m := make(map[string]float64, len(bundle.CanonicalFeatures))
		for _, name := range bundle.CanonicalFeatures {
			m[name] = rng.Float64() * 128
		}
		pts[i] = m
	}
	return pts
}

func genCollective(rng *rand.Rand, cfg Config, op int) *bundle.Collective {
	// Random feature subset of the canonical space, sorted ascending like
	// the shipped bundle's subsets.
	perm := rng.Perm(len(bundle.CanonicalFeatures))[:cfg.Features]
	sort.Ints(perm)
	names := make([]string, cfg.Features)
	imp := make([]bundle.Importance, cfg.Features)
	for i, idx := range perm {
		names[i] = bundle.CanonicalFeatures[idx]
		imp[i] = bundle.Importance{Name: names[i], Index: idx, Importance: rng.Float64()}
	}

	f := &forest.Forest{NClasses: cfg.Classes, Trees: make([]forest.Tree, cfg.Trees)}
	for t := range f.Trees {
		f.Trees[t] = genTree(rng, cfg)
	}
	return &bundle.Collective{
		Op:             op,
		FullImportance: imp,
		Features:       perm,
		FeatureNames:   names,
		Forest:         f,
		CVAUC:          0.5 + rng.Float64()/2,
	}
}

// genTree builds one tree as a flat, forward-pointing node array: each
// internal node is appended before its children, so child indices always
// exceed the parent's and forest.Validate's cycle check passes by
// construction.
func genTree(rng *rand.Rand, cfg Config) forest.Tree {
	var nodes []forest.Node
	var build func(depth int) int
	build = func(depth int) int {
		idx := len(nodes)
		nodes = append(nodes, forest.Node{})
		// Terminate at max depth, or early with 15% probability so tree
		// shapes are irregular like real learned trees.
		if depth <= 0 || rng.Float64() < 0.15 {
			nodes[idx] = forest.Node{F: -1, D: leafDistribution(rng, cfg.Classes)}
			return idx
		}
		feat := rng.Intn(cfg.Features)
		thresh := rng.Float64() * 128 // same range Points draws values from
		l := build(depth - 1)
		r := build(depth - 1)
		nodes[idx] = forest.Node{F: feat, T: thresh, L: l, R: r}
		return idx
	}
	build(cfg.Depth)
	return forest.Tree{Nodes: nodes}
}

// leafDistribution returns a normalized class distribution. The +0.01
// floor keeps every class mass strictly positive so exact argmax ties are
// vanishingly unlikely.
func leafDistribution(rng *rand.Rand, classes int) []float64 {
	d := make([]float64, classes)
	sum := 0.0
	for i := range d {
		d[i] = rng.Float64() + 0.01
		sum += d[i]
	}
	for i := range d {
		d[i] /= sum
	}
	return d
}
