package synth

import (
	"bytes"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
)

func TestJSONIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Trees: 8, Depth: 4}
	a, err := JSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same config produced different bundle bytes")
	}
	c, err := JSON(Config{Seed: 8, Trees: 8, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical bundle bytes")
	}
}

func TestNewRoundTripsThroughBundleParse(t *testing.T) {
	b, err := New(Config{Seed: 1, Collectives: []string{"allgather", "alltoall", "bcast"}, Trees: 12, Depth: 5, Features: 6, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Collectives); got != 3 {
		t.Fatalf("bundle has %d collectives, want 3", got)
	}
	for name, c := range b.Collectives {
		if len(c.Forest.Trees) != 12 {
			t.Errorf("%s: %d trees, want 12", name, len(c.Forest.Trees))
		}
		if c.Forest.NClasses != 3 {
			t.Errorf("%s: %d classes, want 3", name, c.Forest.NClasses)
		}
		if len(c.FeatureNames) != 6 {
			t.Errorf("%s: %d features, want 6", name, len(c.FeatureNames))
		}
		// Parse already validated canonical-name agreement; spot-check one.
		if c.FeatureNames[0] != bundle.CanonicalFeatures[c.Features[0]] {
			t.Errorf("%s: feature name/index disagree", name)
		}
	}
	if len(b.TrainedOn) != 3 {
		t.Errorf("trained_on has %d systems, want default 3", len(b.TrainedOn))
	}
}

func TestFeaturesClampedToCanonicalSpace(t *testing.T) {
	b, err := New(Config{Seed: 2, Features: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range b.Collectives {
		if len(c.FeatureNames) != len(bundle.CanonicalFeatures) {
			t.Errorf("feature count %d, want clamp to %d", len(c.FeatureNames), len(bundle.CanonicalFeatures))
		}
	}
}

func TestReservedCollectiveNameRejected(t *testing.T) {
	if _, err := JSON(Config{Collectives: []string{"version"}}); err == nil {
		t.Error("collective named \"version\" should be rejected")
	}
}

func TestPointsAreDeterministicDistinctAndComplete(t *testing.T) {
	a := Points(42, 16)
	b := Points(42, 16)
	for i := range a {
		if len(a[i]) != len(bundle.CanonicalFeatures) {
			t.Fatalf("point %d covers %d features, want all %d", i, len(a[i]), len(bundle.CanonicalFeatures))
		}
		for k, v := range a[i] {
			if b[i][k] != v {
				t.Fatalf("point %d key %s differs across runs", i, k)
			}
		}
	}
	if a[0]["ppn"] == a[1]["ppn"] {
		t.Error("distinct points should have distinct values")
	}
}

func TestSyntheticPredictionsWork(t *testing.T) {
	b := MustNew(Config{Seed: 3})
	pt := Points(3, 1)[0]
	for name, c := range b.Collectives {
		x, err := c.Vector(pt)
		if err != nil {
			t.Fatalf("%s: Vector: %v", name, err)
		}
		pred, err := c.Forest.Predict(x)
		if err != nil {
			t.Fatalf("%s: Predict: %v", name, err)
		}
		if pred.Class < 0 || pred.Class >= c.Forest.NClasses {
			t.Errorf("%s: class %d out of range", name, pred.Class)
		}
	}
}

// TestLabeledModeTrainsRealBundle: Labeled routes generation through the
// analytical perfmodel and the trainer, so the bundle's decisions track
// real cost-regime boundaries and its class counts match the perfmodel
// algorithm table (Features/Classes knobs are ignored).
func TestLabeledModeTrainsRealBundle(t *testing.T) {
	b, err := New(Config{Seed: 7, Labeled: true, Trees: 8, Depth: 8, Classes: 99, Features: 2})
	if err != nil {
		t.Fatalf("New(Labeled): %v", err)
	}
	for _, name := range []string{"allgather", "alltoall"} {
		c, ok := b.Collectives[name]
		if !ok {
			t.Fatalf("labeled bundle missing default collective %q", name)
		}
		algos, err := perfmodel.AlgorithmNames(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Forest.NClasses != len(algos) {
			t.Errorf("%s: NClasses %d, want perfmodel table size %d", name, c.Forest.NClasses, len(algos))
		}
		if len(c.Features) != len(bundle.CanonicalFeatures) {
			t.Errorf("%s: feature subset %d, want full canonical space %d", name, len(c.Features), len(bundle.CanonicalFeatures))
		}
	}

	// Decisions reflect analytical regimes: on a labeled sweep grid point,
	// the trained bundle should usually agree with the oracle.
	ds, err := perfmodel.Sweep(perfmodel.SweepConfig{
		Collectives:  []string{"allgather"},
		Nodes:        []float64{2, 8, 32},
		PPN:          []float64{4, 16},
		Log2MsgSizes: []float64{4, 12, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := b.Collectives["allgather"]
	agree := 0
	for i := range ds.Examples {
		ex := &ds.Examples[i]
		x, err := c.Vector(ex.Features)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := c.Forest.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Class == ex.Label {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(ds.Examples)); frac < 0.75 {
		t.Errorf("labeled bundle agrees with oracle on %.2f of probe points, want >= 0.75", frac)
	}
}

// TestLabeledModeDeterministicAndValidated: equal configs produce
// byte-identical labeled bundles, and unsupported collectives fail fast.
func TestLabeledModeDeterministicAndValidated(t *testing.T) {
	cfg := Config{Seed: 11, Labeled: true, Trees: 4, Depth: 6, Collectives: []string{"broadcast"}}
	a, err := JSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("labeled mode is not deterministic for equal configs")
	}
	if _, err := JSON(Config{Labeled: true, Collectives: []string{"reduce_scatter"}}); err == nil {
		t.Fatal("labeled mode must reject collectives the perfmodel does not support")
	}
}
