package synth

import (
	"bytes"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
)

func TestJSONIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Trees: 8, Depth: 4}
	a, err := JSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := JSON(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("same config produced different bundle bytes")
	}
	c, err := JSON(Config{Seed: 8, Trees: 8, Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical bundle bytes")
	}
}

func TestNewRoundTripsThroughBundleParse(t *testing.T) {
	b, err := New(Config{Seed: 1, Collectives: []string{"allgather", "alltoall", "bcast"}, Trees: 12, Depth: 5, Features: 6, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Collectives); got != 3 {
		t.Fatalf("bundle has %d collectives, want 3", got)
	}
	for name, c := range b.Collectives {
		if len(c.Forest.Trees) != 12 {
			t.Errorf("%s: %d trees, want 12", name, len(c.Forest.Trees))
		}
		if c.Forest.NClasses != 3 {
			t.Errorf("%s: %d classes, want 3", name, c.Forest.NClasses)
		}
		if len(c.FeatureNames) != 6 {
			t.Errorf("%s: %d features, want 6", name, len(c.FeatureNames))
		}
		// Parse already validated canonical-name agreement; spot-check one.
		if c.FeatureNames[0] != bundle.CanonicalFeatures[c.Features[0]] {
			t.Errorf("%s: feature name/index disagree", name)
		}
	}
	if len(b.TrainedOn) != 3 {
		t.Errorf("trained_on has %d systems, want default 3", len(b.TrainedOn))
	}
}

func TestFeaturesClampedToCanonicalSpace(t *testing.T) {
	b, err := New(Config{Seed: 2, Features: 99})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range b.Collectives {
		if len(c.FeatureNames) != len(bundle.CanonicalFeatures) {
			t.Errorf("feature count %d, want clamp to %d", len(c.FeatureNames), len(bundle.CanonicalFeatures))
		}
	}
}

func TestReservedCollectiveNameRejected(t *testing.T) {
	if _, err := JSON(Config{Collectives: []string{"version"}}); err == nil {
		t.Error("collective named \"version\" should be rejected")
	}
}

func TestPointsAreDeterministicDistinctAndComplete(t *testing.T) {
	a := Points(42, 16)
	b := Points(42, 16)
	for i := range a {
		if len(a[i]) != len(bundle.CanonicalFeatures) {
			t.Fatalf("point %d covers %d features, want all %d", i, len(a[i]), len(bundle.CanonicalFeatures))
		}
		for k, v := range a[i] {
			if b[i][k] != v {
				t.Fatalf("point %d key %s differs across runs", i, k)
			}
		}
	}
	if a[0]["ppn"] == a[1]["ppn"] {
		t.Error("distinct points should have distinct values")
	}
}

func TestSyntheticPredictionsWork(t *testing.T) {
	b := MustNew(Config{Seed: 3})
	pt := Points(3, 1)[0]
	for name, c := range b.Collectives {
		x, err := c.Vector(pt)
		if err != nil {
			t.Fatalf("%s: Vector: %v", name, err)
		}
		pred, err := c.Forest.Predict(x)
		if err != nil {
			t.Fatalf("%s: Predict: %v", name, err)
		}
		if pred.Class < 0 || pred.Class >= c.Forest.NClasses {
			t.Errorf("%s: class %d out of range", name, pred.Class)
		}
	}
}
