package train

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
)

// Config tunes the random-forest trainer. The zero value takes the
// documented defaults, so Config{} is a usable configuration.
type Config struct {
	// Trees in the ensemble (default 48).
	Trees int
	// MaxDepth bounds each tree (default 14).
	MaxDepth int
	// MinSamplesSplit is the smallest node the learner will try to split
	// (default 2).
	MinSamplesSplit int
	// MinSamplesLeaf is the smallest child a split may create (default 1).
	MinSamplesLeaf int
	// FeatureFrac is the per-tree feature subsample fraction in (0, 1]
	// (default 0.8; at least one feature is always kept).
	FeatureFrac float64
	// Seed drives bootstrap and feature sampling. Equal seeds and inputs
	// yield byte-identical forests.
	Seed int64
	// Workers bounds concurrent tree construction (default GOMAXPROCS).
	// Parallelism never affects the result: every tree derives its own
	// generator from Seed and its index.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Trees <= 0 {
		c.Trees = 48
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 14
	}
	if c.MinSamplesSplit < 2 {
		c.MinSamplesSplit = 2
	}
	if c.MinSamplesLeaf < 1 {
		c.MinSamplesLeaf = 1
	}
	if c.FeatureFrac <= 0 || c.FeatureFrac > 1 {
		c.FeatureFrac = 0.8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// treeSeedStride spreads consecutive tree indices across the seed space
// (the 63-bit golden-ratio multiplier; overflow wraps, which is fine — only
// distinctness matters).
const treeSeedStride int64 = 0x1E3779B97F4A7C15

// Result is one trained forest plus its quality diagnostics.
type Result struct {
	Forest *forest.Forest
	// OOBAccuracy is the out-of-bag accuracy: each sample is scored only
	// by trees whose bootstrap excluded it. NaN-free; 0 when no sample
	// was ever out of bag (tiny inputs).
	OOBAccuracy float64
	// Importance is the normalized mean-decrease-in-impurity per feature
	// column (sums to 1 when any split was made).
	Importance []float64
}

// TrainForest fits a bagged random forest to the sample matrix x (row per
// sample, column per feature) and labels y in [0, nClasses). Deterministic
// for a fixed Config.Seed regardless of Config.Workers.
func TrainForest(x [][]float64, y []int, nClasses int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(x) == 0 {
		return nil, fmt.Errorf("train: no samples")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("train: %d samples but %d labels", len(x), len(y))
	}
	if nClasses <= 0 {
		return nil, fmt.Errorf("train: nClasses must be positive, got %d", nClasses)
	}
	nFeatures := len(x[0])
	if nFeatures == 0 {
		return nil, fmt.Errorf("train: samples have no features")
	}
	for i, row := range x {
		if len(row) != nFeatures {
			return nil, fmt.Errorf("train: sample %d has %d features, want %d", i, len(row), nFeatures)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("train: sample %d feature %d is non-finite (%v)", i, j, v)
			}
		}
	}
	for i, cls := range y {
		if cls < 0 || cls >= nClasses {
			return nil, fmt.Errorf("train: label %d of sample %d outside [0,%d)", cls, i, nClasses)
		}
	}

	kFeatures := int(math.Ceil(cfg.FeatureFrac * float64(nFeatures)))
	if kFeatures < 1 {
		kFeatures = 1
	}

	type treeOut struct {
		tree       forest.Tree
		importance []float64
		oob        []int // sample indices out of this tree's bootstrap
		err        error
	}
	outs := make([]treeOut, cfg.Trees)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for t := 0; t < cfg.Trees; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer func() { <-sem; wg.Done() }()
			// Per-tree generator: the golden-ratio odd constant spreads
			// consecutive tree indices across the seed space.
			rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*treeSeedStride))
			inBag := make([]bool, len(x))
			idx := make([]int, len(x))
			for i := range idx {
				s := rng.Intn(len(x))
				idx[i] = s
				inBag[s] = true
			}
			feats := sampleFeatures(rng, nFeatures, kFeatures)
			tree, imp, err := trainTree(x, y, idx, cartConfig{
				maxDepth:        cfg.MaxDepth,
				minSamplesSplit: cfg.MinSamplesSplit,
				minSamplesLeaf:  cfg.MinSamplesLeaf,
				nClasses:        nClasses,
				features:        feats,
			})
			if err != nil {
				outs[t] = treeOut{err: err}
				return
			}
			var oob []int
			for i, in := range inBag {
				if !in {
					oob = append(oob, i)
				}
			}
			outs[t] = treeOut{tree: tree, importance: imp, oob: oob}
		}(t)
	}
	wg.Wait()

	f := &forest.Forest{Trees: make([]forest.Tree, cfg.Trees), NClasses: nClasses}
	importance := make([]float64, nFeatures)
	oobVotes := make([][]float64, len(x))
	for t, out := range outs {
		if out.err != nil {
			return nil, fmt.Errorf("train: tree %d: %w", t, out.err)
		}
		f.Trees[t] = out.tree
		for j, v := range out.importance {
			importance[j] += v
		}
		for _, i := range out.oob {
			leaf, err := treeLeaf(&f.Trees[t], x[i])
			if err != nil {
				return nil, fmt.Errorf("train: oob eval tree %d: %w", t, err)
			}
			if oobVotes[i] == nil {
				oobVotes[i] = make([]float64, nClasses)
			}
			for c, p := range leaf.D {
				oobVotes[i][c] += p
			}
		}
	}

	covered, correct := 0, 0
	for i, votes := range oobVotes {
		if votes == nil {
			continue
		}
		covered++
		if argmax(votes) == y[i] {
			correct++
		}
	}
	oobAcc := 0.0
	if covered > 0 {
		oobAcc = float64(correct) / float64(covered)
	}

	total := 0.0
	for _, v := range importance {
		total += v
	}
	if total > 0 {
		for j := range importance {
			importance[j] /= total
		}
	}
	f.Importance = importance
	f.OOB = oobAcc

	if err := f.Validate(nFeatures); err != nil {
		return nil, fmt.Errorf("train: produced invalid forest: %w", err)
	}
	return &Result{Forest: f, OOBAccuracy: oobAcc, Importance: importance}, nil
}

// treeLeaf walks one tree to its leaf for x.
func treeLeaf(t *forest.Tree, x []float64) (*forest.Node, error) {
	i := 0
	for steps := 0; steps <= len(t.Nodes); steps++ {
		n := &t.Nodes[i]
		if n.Leaf() {
			return n, nil
		}
		if x[n.F] <= n.T {
			i = n.L
		} else {
			i = n.R
		}
	}
	return nil, fmt.Errorf("tree walk exceeded %d steps", len(t.Nodes))
}

func argmax(v []float64) int {
	best := 0
	for i := range v {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
