// Package train grows the models pkg/bundle serves: a CART decision-tree
// learner (Gini impurity, depth and min-samples limits) and a bagged
// random-forest trainer (bootstrap sampling, per-tree feature
// subsampling, seeded determinism) with out-of-bag accuracy and
// per-feature importance. Trained forests export to the exact on-disk
// bundle format, so the offline train → publish → hot-swap loop runs
// entirely inside this repo.
package train

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/pml-mpi/pmlmpi/pkg/forest"
)

// cartConfig bounds one tree's growth.
type cartConfig struct {
	maxDepth        int
	minSamplesSplit int
	minSamplesLeaf  int
	nClasses        int
	// features are the column indices this tree may split on (the
	// per-tree feature subsample).
	features []int
}

// cartBuilder grows one tree over a column-major view of the training
// matrix. Nodes append parent-before-children, so child indices always
// point forward — the invariant forest.Validate enforces.
type cartBuilder struct {
	cfg cartConfig
	x   [][]float64 // x[sample][feature]
	y   []int
	// importance accumulates weighted Gini decrease per (full-space)
	// feature column as splits are chosen.
	importance []float64
	nTotal     float64
	nodes      []forest.Node
	// scratch buffers reused across splits to keep allocation flat.
	leftCounts  []float64
	rightCounts []float64
}

// counts tallies class membership for the given sample indices.
func (b *cartBuilder) counts(idx []int) []float64 {
	c := make([]float64, b.cfg.nClasses)
	for _, i := range idx {
		c[b.y[i]]++
	}
	return c
}

// gini computes the Gini impurity of a class-count vector with n total
// samples.
func gini(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

// split is a candidate decision: route x[feature] <= threshold left.
type split struct {
	feature   int
	threshold float64
	gain      float64
	ok        bool
}

// bestSplit searches the candidate features for the split with the
// largest impurity decrease. Ties break toward the lower feature index,
// then the lower threshold, so tree growth is fully deterministic.
func (b *cartBuilder) bestSplit(idx []int, parentCounts []float64) split {
	n := float64(len(idx))
	parentGini := gini(parentCounts, n)
	best := split{}
	order := make([]int, len(idx))
	for _, f := range b.cfg.features {
		copy(order, idx)
		// Sort samples by (value, index): the index tiebreak keeps the
		// scan order — and therefore midpoint thresholds — deterministic.
		sort.Slice(order, func(a, c int) bool {
			va, vc := b.x[order[a]][f], b.x[order[c]][f]
			if va != vc {
				return va < vc
			}
			return order[a] < order[c]
		})
		for i := range b.leftCounts {
			b.leftCounts[i] = 0
			b.rightCounts[i] = parentCounts[i]
		}
		for i := 0; i < len(order)-1; i++ {
			cls := b.y[order[i]]
			b.leftCounts[cls]++
			b.rightCounts[cls]--
			v, next := b.x[order[i]][f], b.x[order[i+1]][f]
			if v == next {
				continue // can't cut between equal values
			}
			nl, nr := float64(i+1), n-float64(i+1)
			if int(nl) < b.cfg.minSamplesLeaf || int(nr) < b.cfg.minSamplesLeaf {
				continue
			}
			gain := parentGini - (nl*gini(b.leftCounts, nl)+nr*gini(b.rightCounts, nr))/n
			if gain <= 1e-12 {
				continue
			}
			// Strictly-greater keeps the first-found split on ties; with
			// features visited ascending and thresholds ascending, that
			// makes the chosen split fully deterministic.
			if gain > best.gain {
				best = split{feature: f, threshold: v + (next-v)/2, gain: gain, ok: true}
			}
		}
	}
	return best
}

// leafDist converts class counts into the leaf probability distribution
// the serving forest stores.
func leafDist(counts []float64, n float64) []float64 {
	d := make([]float64, len(counts))
	for i, c := range counts {
		d[i] = c / n
	}
	return d
}

// build grows the subtree over idx and returns its node index.
func (b *cartBuilder) build(idx []int, depth int) int {
	at := len(b.nodes)
	b.nodes = append(b.nodes, forest.Node{})
	counts := b.counts(idx)
	n := float64(len(idx))

	pure := false
	for _, c := range counts {
		if c == n {
			pure = true
			break
		}
	}
	if pure || depth >= b.cfg.maxDepth || len(idx) < b.cfg.minSamplesSplit {
		b.nodes[at] = forest.Node{F: -1, D: leafDist(counts, n)}
		return at
	}
	sp := b.bestSplit(idx, counts)
	if !sp.ok {
		b.nodes[at] = forest.Node{F: -1, D: leafDist(counts, n)}
		return at
	}
	b.importance[sp.feature] += (n / b.nTotal) * sp.gain

	left := make([]int, 0, len(idx))
	right := make([]int, 0, len(idx))
	for _, i := range idx {
		if b.x[i][sp.feature] <= sp.threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.nodes[at] = forest.Node{F: sp.feature, T: sp.threshold, L: l, R: r}
	return at
}

// trainTree grows one CART tree on the samples in idx and returns the
// tree plus the per-feature importance it accumulated.
func trainTree(x [][]float64, y []int, idx []int, cfg cartConfig) (forest.Tree, []float64, error) {
	if len(idx) == 0 {
		return forest.Tree{}, nil, fmt.Errorf("train: tree has no samples")
	}
	nFeatures := len(x[0])
	b := &cartBuilder{
		cfg:         cfg,
		x:           x,
		y:           y,
		importance:  make([]float64, nFeatures),
		nTotal:      float64(len(idx)),
		leftCounts:  make([]float64, cfg.nClasses),
		rightCounts: make([]float64, cfg.nClasses),
	}
	b.build(idx, 0)
	return forest.Tree{Nodes: b.nodes}, b.importance, nil
}

// sampleFeatures draws k distinct feature columns with a seeded
// generator, returned sorted for deterministic split search order.
func sampleFeatures(rng *rand.Rand, nFeatures, k int) []int {
	if k >= nFeatures {
		k = nFeatures
	}
	perm := rng.Perm(nFeatures)[:k]
	sort.Ints(perm)
	return perm
}
