package train_test

import (
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/train"
)

// benchMatrix materializes one collective's sweep as a training matrix.
func benchMatrix(b *testing.B) (x [][]float64, y []int, classes int) {
	b.Helper()
	ds, err := perfmodel.Sweep(perfmodel.SweepConfig{Collectives: []string{"allgather"}})
	if err != nil {
		b.Fatal(err)
	}
	names := ds.Algorithms["allgather"]
	for i := range ds.Examples {
		ex := &ds.Examples[i]
		row := make([]float64, 0, len(ex.Features))
		for _, name := range []string{"num_nodes", "ppn", "log2_msg_size", "mem_bw_gbs", "numa_nodes", "link_speed_gbps", "link_width"} {
			row = append(row, ex.Features[name])
		}
		x = append(x, row)
		y = append(y, ex.Label)
	}
	return x, y, len(names)
}

// BenchmarkTrainForest measures end-to-end forest training throughput on
// one collective's full default sweep (~2k samples, 7 features).
func BenchmarkTrainForest(b *testing.B) {
	x, y, classes := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := train.TrainForest(x, y, classes, train.Config{Trees: 24, MaxDepth: 12, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res.OOBAccuracy == 0 {
			b.Fatal("implausible zero OOB accuracy")
		}
	}
	b.ReportMetric(float64(len(x)*24), "sampletrees/op")
}

// BenchmarkTrainForestSerial is the single-worker baseline for the
// parallel speedup above.
func BenchmarkTrainForestSerial(b *testing.B) {
	x, y, classes := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := train.TrainForest(x, y, classes, train.Config{Trees: 24, MaxDepth: 12, Seed: 1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainBundle measures the full dataset → multi-collective
// bundle pipeline on a reduced sweep.
func BenchmarkTrainBundle(b *testing.B) {
	ds, err := perfmodel.Sweep(perfmodel.SweepConfig{
		Nodes: []float64{1, 2, 4, 8, 16},
		PPN:   []float64{1, 4, 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := train.TrainBundle(ds, train.BundleConfig{
			Config: train.Config{Trees: 16, MaxDepth: 10, Seed: 1},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBundleEncode measures bundle export (the publish step of the
// train → publish → hot-swap loop).
func BenchmarkBundleEncode(b *testing.B) {
	ds, err := perfmodel.Sweep(perfmodel.SweepConfig{
		Nodes: []float64{1, 2, 4, 8, 16},
		PPN:   []float64{1, 4, 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	bun, _, err := train.TrainBundle(ds, train.BundleConfig{
		Config: train.Config{Trees: 16, MaxDepth: 10, Seed: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		data, err := bun.Encode()
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.SetBytes(int64(size))
}
