package train

import (
	"fmt"
	"sort"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/dataset"
)

// BundleConfig tunes TrainBundle: the per-forest trainer settings plus
// bundle provenance.
type BundleConfig struct {
	Config
	// TrainedOn is the provenance list recorded in the bundle (the
	// systems/sweeps the dataset came from).
	TrainedOn []string
}

// Report summarizes one trained collective model.
type Report struct {
	Collective  string              `json:"collective"`
	Examples    int                 `json:"examples"`
	Classes     int                 `json:"classes"`
	Trees       int                 `json:"trees"`
	OOBAccuracy float64             `json:"oob_accuracy"`
	Importance  []bundle.Importance `json:"importance"`
}

// featureSubset returns the canonical features present in every example of
// the slice, as (canonical indices, names) sorted by canonical index —
// the exact layout bundle validation requires.
func featureSubset(examples []dataset.Example) ([]int, []string, error) {
	if len(examples) == 0 {
		return nil, nil, fmt.Errorf("no examples")
	}
	var idxs []int
	var names []string
	for i, name := range bundle.CanonicalFeatures {
		inAll := true
		for e := range examples {
			if _, ok := examples[e].Features[name]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			idxs = append(idxs, i)
			names = append(names, name)
		}
	}
	if len(idxs) == 0 {
		return nil, nil, fmt.Errorf("no canonical feature is present in every example")
	}
	return idxs, names, nil
}

// TrainBundle fits one random forest per collective in the dataset and
// assembles them into a serving-ready bundle that round-trips through
// bundle.Parse. Each collective's feature subset is the canonical
// features present in all of its examples; its class space is the
// dataset's algorithm table. Deterministic for a fixed cfg.Seed.
func TrainBundle(ds *dataset.Dataset, cfg BundleConfig) (*bundle.Bundle, []Report, error) {
	if ds.Len() == 0 {
		return nil, nil, fmt.Errorf("train: dataset is empty")
	}
	byColl := ds.ByCollective()
	collectives := make([]string, 0, len(byColl))
	for name := range byColl {
		collectives = append(collectives, name)
	}
	sort.Strings(collectives)

	b := &bundle.Bundle{
		Version:     bundle.SupportedVersion,
		TrainedOn:   cfg.TrainedOn,
		Collectives: make(map[string]*bundle.Collective, len(collectives)),
	}
	// Embed the training distribution so the serving side can score live
	// feature drift against it (bundle.FeatureStats, optional metadata).
	stats, err := ComputeFeatureStats(ds, DefaultStatsBins)
	if err != nil {
		return nil, nil, fmt.Errorf("train: %w", err)
	}
	b.Stats = stats
	var reports []Report
	for op, name := range collectives {
		examples := byColl[name]
		algos, ok := ds.Algorithms[name]
		if !ok {
			return nil, nil, fmt.Errorf("train: collective %q has examples but no algorithm table entry", name)
		}
		idxs, featNames, err := featureSubset(examples)
		if err != nil {
			return nil, nil, fmt.Errorf("train: collective %q: %w", name, err)
		}
		x := make([][]float64, len(examples))
		y := make([]int, len(examples))
		for i := range examples {
			row := make([]float64, len(featNames))
			for j, fn := range featNames {
				row[j] = examples[i].Features[fn]
			}
			x[i] = row
			if examples[i].Label < 0 || examples[i].Label >= len(algos) {
				return nil, nil, fmt.Errorf("train: collective %q example %d: label %d outside [0,%d)",
					name, i, examples[i].Label, len(algos))
			}
			y[i] = examples[i].Label
		}
		res, err := TrainForest(x, y, len(algos), cfg.Config)
		if err != nil {
			return nil, nil, fmt.Errorf("train: collective %q: %w", name, err)
		}
		imp := make([]bundle.Importance, len(featNames))
		for j := range featNames {
			imp[j] = bundle.Importance{Name: featNames[j], Index: idxs[j], Importance: res.Importance[j]}
		}
		b.Collectives[name] = &bundle.Collective{
			Name:           name,
			Op:             op,
			FullImportance: imp,
			Features:       idxs,
			FeatureNames:   featNames,
			Forest:         res.Forest,
			// The bundle schema records one scalar quality figure per
			// collective; for natively trained models it is the OOB
			// accuracy of the ensemble.
			CVAUC: res.OOBAccuracy,
		}
		reports = append(reports, Report{
			Collective:  name,
			Examples:    len(examples),
			Classes:     len(algos),
			Trees:       len(res.Forest.Trees),
			OOBAccuracy: res.OOBAccuracy,
			Importance:  imp,
		})
	}
	return b, reports, nil
}

// Evaluate scores a bundle against a labeled dataset, returning accuracy
// per collective (fraction of examples whose forest argmax matches the
// label). Collectives in the dataset but absent from the bundle score 0.
func Evaluate(b *bundle.Bundle, ds *dataset.Dataset) (map[string]float64, error) {
	correct := map[string]int{}
	total := map[string]int{}
	for i := range ds.Examples {
		ex := &ds.Examples[i]
		total[ex.Collective]++
		c, ok := b.Collective(ex.Collective)
		if !ok {
			continue
		}
		x, err := c.Vector(ex.Features)
		if err != nil {
			return nil, fmt.Errorf("evaluate: %s example %d: %w", ex.Collective, i, err)
		}
		pred, err := c.Forest.Predict(x)
		if err != nil {
			return nil, fmt.Errorf("evaluate: %s example %d: %w", ex.Collective, i, err)
		}
		if pred.Class == ex.Label {
			correct[ex.Collective]++
		}
	}
	out := make(map[string]float64, len(total))
	for coll, n := range total {
		out[coll] = float64(correct[coll]) / float64(n)
	}
	return out, nil
}
