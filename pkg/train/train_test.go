package train_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/dataset"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/train"
)

// xorProblem builds a 2-feature, 2-class dataset a depth-2 tree cannot
// solve but a forest of deeper trees learns exactly: class = (x0 > 5) XOR
// (x1 > 5) over a 20×20 grid.
func xorProblem() (x [][]float64, y []int) {
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			a, b := float64(i)/2, float64(j)/2
			cls := 0
			if (a > 5) != (b > 5) {
				cls = 1
			}
			x = append(x, []float64{a, b})
			y = append(y, cls)
		}
	}
	return x, y
}

func TestTrainForestLearnsXOR(t *testing.T) {
	x, y := xorProblem()
	res, err := train.TrainForest(x, y, 2, train.Config{Trees: 24, MaxDepth: 8, Seed: 3, FeatureFrac: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	correct := 0
	for i := range x {
		pred, err := res.Forest.Predict(x[i])
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if pred.Class == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(x)); acc < 0.97 {
		t.Errorf("training accuracy %.3f, want >= 0.97", acc)
	}
	if res.OOBAccuracy < 0.9 || res.OOBAccuracy > 1 {
		t.Errorf("OOB accuracy %.3f outside plausible [0.9, 1]", res.OOBAccuracy)
	}
	sum := 0.0
	for _, v := range res.Importance {
		if v < 0 {
			t.Errorf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importance sums to %v, want 1", sum)
	}
}

// TestTrainForestDeterministic: equal seeds yield byte-identical forests
// regardless of worker count; different seeds differ.
func TestTrainForestDeterministic(t *testing.T) {
	x, y := xorProblem()
	marshal := func(cfg train.Config) []byte {
		res, err := train.TrainForest(x, y, 2, cfg)
		if err != nil {
			t.Fatalf("TrainForest: %v", err)
		}
		data, err := json.Marshal(res.Forest)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := train.Config{Trees: 12, MaxDepth: 6, Seed: 11}
	serial, parallel := base, base
	serial.Workers = 1
	parallel.Workers = 8
	a, b := marshal(serial), marshal(parallel)
	if !bytes.Equal(a, b) {
		t.Fatal("Workers=1 and Workers=8 produced different forests for the same seed")
	}
	other := base
	other.Seed = 12
	if bytes.Equal(a, marshal(other)) {
		t.Fatal("different seeds produced identical forests")
	}
}

func TestTrainForestValidation(t *testing.T) {
	cases := []struct {
		name    string
		x       [][]float64
		y       []int
		classes int
		wantErr string
	}{
		{"no samples", nil, nil, 2, "no samples"},
		{"length mismatch", [][]float64{{1}}, []int{0, 1}, 2, "labels"},
		{"no features", [][]float64{{}}, []int{0}, 2, "no features"},
		{"ragged rows", [][]float64{{1, 2}, {1}}, []int{0, 0}, 2, "features, want"},
		{"nan feature", [][]float64{{math.NaN()}}, []int{0}, 2, "non-finite"},
		{"label out of range", [][]float64{{1}}, []int{5}, 2, "outside"},
		{"bad classes", [][]float64{{1}}, []int{0}, 0, "nClasses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := train.TrainForest(tc.x, tc.y, tc.classes, train.Config{Trees: 2, Seed: 1})
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestTrainForestSingleClass: a degenerate all-one-class input still
// yields a valid forest (all leaves vote that class).
func TestTrainForestSingleClass(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []int{1, 1, 1, 1}
	res, err := train.TrainForest(x, y, 3, train.Config{Trees: 4, Seed: 1})
	if err != nil {
		t.Fatalf("TrainForest: %v", err)
	}
	pred, err := res.Forest.Predict([]float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if pred.Class != 1 {
		t.Errorf("predicted class %d, want 1", pred.Class)
	}
}

// sweepBundle trains a small bundle from perfmodel labels, shared by the
// round-trip and registry tests.
func sweepBundle(t testing.TB, seed int64) (*bundle.Bundle, *dataset.Dataset) {
	t.Helper()
	ds, err := perfmodel.Sweep(perfmodel.SweepConfig{
		Collectives:  []string{"allgather", "broadcast"},
		Nodes:        []float64{1, 2, 4, 8, 16},
		PPN:          []float64{1, 4, 16},
		Log2MsgSizes: []float64{2, 6, 10, 14, 18, 22},
		Systems:      perfmodel.DefaultSystems[:2],
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	tr, te := ds.Split(0.25, seed)
	b, reports, err := train.TrainBundle(tr, train.BundleConfig{
		Config:    train.Config{Trees: 16, MaxDepth: 10, Seed: seed},
		TrainedOn: []string{"perfmodel-sweep"},
	})
	if err != nil {
		t.Fatalf("TrainBundle: %v", err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	for _, r := range reports {
		if r.OOBAccuracy < 0.8 {
			t.Errorf("%s: OOB accuracy %.3f suspiciously low", r.Collective, r.OOBAccuracy)
		}
	}
	return b, te
}

// TestTrainedBundleRoundTripsByteFaithfully is the acceptance-criteria
// pin: a trained bundle encodes, parses with no validation errors, and
// re-encodes to identical bytes (hence an identical content hash).
func TestTrainedBundleRoundTripsByteFaithfully(t *testing.T) {
	b, _ := sweepBundle(t, 5)
	data, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	parsed, err := bundle.Parse(data)
	if err != nil {
		t.Fatalf("trained bundle failed Parse: %v", err)
	}
	again, err := parsed.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("Encode -> Parse -> Encode is not byte-faithful")
	}
	if got := parsed.CollectiveNames(); len(got) != 2 || got[0] != "allgather" || got[1] != "broadcast" {
		t.Fatalf("parsed collectives = %v", got)
	}
	ag := parsed.Collectives["allgather"]
	if ag.Forest.NClasses != 4 || len(ag.Forest.Trees) != 16 {
		t.Errorf("allgather forest classes=%d trees=%d, want 4/16", ag.Forest.NClasses, len(ag.Forest.Trees))
	}
	if len(ag.Features) != len(bundle.CanonicalFeatures) {
		t.Errorf("feature subset %d, want full canonical %d (sweep emits every feature)",
			len(ag.Features), len(bundle.CanonicalFeatures))
	}
}

func TestTrainBundleDeterministic(t *testing.T) {
	a, _ := sweepBundle(t, 9)
	b, _ := sweepBundle(t, 9)
	da, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("same seed trained different bundles")
	}
}

func TestEvaluateHeldOutAccuracy(t *testing.T) {
	b, te := sweepBundle(t, 13)
	acc, err := train.Evaluate(b, te)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	for coll, a := range acc {
		if a < 0.85 {
			t.Errorf("%s: held-out accuracy %.3f < 0.85", coll, a)
		}
	}
	if len(acc) != 2 {
		t.Fatalf("accuracy for %d collectives, want 2", len(acc))
	}
}

func TestTrainBundleEmptyDataset(t *testing.T) {
	if _, _, err := train.TrainBundle(dataset.New(perfmodel.Table()), train.BundleConfig{}); err == nil {
		t.Fatal("empty dataset must fail")
	}
}
