package train

import (
	"fmt"
	"math"
	"sort"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/dataset"
)

// DefaultStatsBins is the target bin count for the training-distribution
// snapshot embedded in bundles. Ten quantile-spaced bins is the standard
// population-stability-index resolution: coarse enough that every bin
// holds real mass, fine enough that a shifted workload lights up.
const DefaultStatsBins = 10

// ComputeFeatureStats derives the per-feature training distribution the
// serving side scores live-traffic drift against. For each canonical
// feature present anywhere in the dataset it picks quantile-spaced bin
// edges (deduplicated, so grid-valued features get fewer, exact bins) and
// counts the training values into them using the same bucketing rule the
// drift monitor applies to live traffic. Deterministic for a fixed
// dataset.
func ComputeFeatureStats(ds *dataset.Dataset, bins int) (*bundle.FeatureStats, error) {
	if bins < 2 {
		bins = DefaultStatsBins
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("feature stats: dataset is empty")
	}
	stats := &bundle.FeatureStats{
		Source:   "train/sweep",
		Features: make(map[string]bundle.FeatureDist),
	}
	for _, name := range bundle.CanonicalFeatures {
		var values []float64
		for i := range ds.Examples {
			if v, ok := ds.Examples[i].Features[name]; ok && !math.IsNaN(v) && !math.IsInf(v, 0) {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			continue
		}
		edges := quantileEdges(values, bins)
		if len(edges) == 0 {
			// A constant feature has no interior cut points; bin it as
			// "at the constant" vs "above it" so drift off the point mass
			// still registers.
			edges = []float64{values[0]}
		}
		d := bundle.FeatureDist{Edges: edges, Counts: make([]uint64, len(edges)+1)}
		for _, v := range values {
			d.Counts[d.BucketOf(v)]++
		}
		stats.Features[name] = d
	}
	if len(stats.Features) == 0 {
		return nil, fmt.Errorf("feature stats: no canonical feature present in any example")
	}
	return stats, nil
}

// quantileEdges picks up to bins-1 interior cut points at the k/bins
// quantiles of values, deduplicated and strictly ascending. Values backed
// by a small grid (node counts, log2 sizes) collapse to exact edges.
func quantileEdges(values []float64, bins int) []float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var edges []float64
	for k := 1; k < bins; k++ {
		idx := k * len(sorted) / bins
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		e := sorted[idx]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	// Drop a top edge equal to the maximum: it would leave a permanently
	// empty overflow bin and the bin below it covers the same mass.
	if len(edges) > 1 && edges[len(edges)-1] == sorted[len(sorted)-1] {
		edges = edges[:len(edges)-1]
	}
	return edges
}
