package train_test

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/replica"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/train"
)

// TestEndToEndTrainWatchServe closes the full offline-train → publish →
// hot-swap → serve loop the paper implies:
//
//  1. sweep the analytical perfmodel for labels and hold out a test split,
//  2. train a forest bundle and write it atomically to a watched path,
//  3. let the registry watcher discover, validate, and promote it,
//  4. serve live Select calls through the selector,
//  5. require >= 90% agreement between served decisions and the
//     analytical oracle on the held-out points, deterministically.
func TestEndToEndTrainWatchServe(t *testing.T) {
	const seed = 17

	ds, err := perfmodel.Sweep(perfmodel.SweepConfig{})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if dropped := ds.Dedup(); dropped != 0 {
		t.Fatalf("default sweep contains %d duplicate points", dropped)
	}
	trainSet, heldOut := ds.Split(0.2, seed)

	b, reports, err := train.TrainBundle(trainSet, train.BundleConfig{
		Config:    train.Config{Trees: 32, MaxDepth: 14, Seed: seed},
		TrainedOn: []string{"perfmodel-sweep-v1"},
	})
	if err != nil {
		t.Fatalf("TrainBundle: %v", err)
	}
	for _, r := range reports {
		t.Logf("trained %s: %d examples, %d trees, OOB %.4f", r.Collective, r.Examples, r.Trees, r.OOBAccuracy)
	}

	// Publish to the watched path. WriteFile is atomic, so the watcher can
	// never observe a half-written bundle.
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	written, err := b.WriteFile(path)
	if err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	w := replica.NewFileWatcher(reg, o, path, time.Second)
	w.SetInterval(2 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for reg.ActiveGeneration() == nil && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	gen := reg.ActiveGeneration()
	if gen == nil {
		t.Fatal("watcher never promoted the trained bundle")
	}
	if gen.Bundle().Hash != mustHash(t, written) {
		t.Fatal("promoted generation hash does not match the written artifact")
	}

	sel := selector.NewFromSource(reg, o, selector.Config{})
	agree := map[string]int{}
	total := map[string]int{}
	for i := range heldOut.Examples {
		ex := &heldOut.Examples[i]
		d, err := sel.Select(ctx, ex.Collective, ex.Features)
		if err != nil {
			t.Fatalf("Select(%s) example %d: %v", ex.Collective, i, err)
		}
		if d.Generation != gen.ID() {
			t.Fatalf("decision generation %d, want %d", d.Generation, gen.ID())
		}
		// The oracle label was computed at sweep time; recompute to prove
		// the oracle itself is deterministic.
		if oracle := perfmodel.Oracle(ex.Collective, ex.Features); oracle != ex.Label {
			t.Fatalf("oracle drifted: example %d labeled %d, recomputed %d", i, ex.Label, oracle)
		}
		total[ex.Collective]++
		if d.Class == ex.Label {
			agree[ex.Collective]++
		}
	}
	cancel()
	<-done

	overallAgree, overallTotal := 0, 0
	for coll, n := range total {
		frac := float64(agree[coll]) / float64(n)
		t.Logf("served agreement %s: %d/%d = %.4f", coll, agree[coll], n, frac)
		if frac < 0.90 {
			t.Errorf("collective %s: served decisions agree with the analytical oracle on %.2f%% of held-out points, want >= 90%%",
				coll, frac*100)
		}
		overallAgree += agree[coll]
		overallTotal += n
	}
	if overallTotal == 0 {
		t.Fatal("held-out split is empty")
	}
	if frac := float64(overallAgree) / float64(overallTotal); frac < 0.90 {
		t.Errorf("overall served agreement %.4f < 0.90", frac)
	}

	// Served algorithm names decode through the default table for every
	// perfmodel collective (class order pinned by a perfmodel test).
	for i := range heldOut.Examples {
		ex := &heldOut.Examples[i]
		if ex.Collective != "broadcast" {
			continue
		}
		d, err := sel.Select(ctx, "broadcast", ex.Features)
		if err != nil {
			t.Fatal(err)
		}
		names, err := perfmodel.AlgorithmNames("broadcast")
		if err != nil {
			t.Fatal(err)
		}
		if d.Algorithm != names[d.Class] {
			t.Errorf("served algorithm %q but class %d is %q in the perfmodel table", d.Algorithm, d.Class, names[d.Class])
		}
		break
	}
}

// mustHash parses raw bundle bytes and returns their content hash.
func mustHash(t *testing.T, data []byte) string {
	t.Helper()
	b, err := bundle.Parse(data)
	if err != nil {
		t.Fatalf("parse written bundle: %v", err)
	}
	return b.Hash
}
