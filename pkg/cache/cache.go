// Package cache is a sharded, bounded, TTL-aware memoization cache for
// selection decisions. Keys are opaque byte strings (the selector derives
// them from the collective name plus the quantized feature vector), values
// are arbitrary immutable payloads. Each shard is an independent LRU list
// guarded by its own mutex, so concurrent readers on different keys rarely
// contend. Hit/miss/eviction counts are kept twice: as lock-free atomics
// (for cheap programmatic assertions via Stats) and as obs counters (so
// they show up on /metrics).
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// Config tunes a Cache.
type Config struct {
	// Shards is the number of independent shards; it is rounded up to the
	// next power of two. Default 16.
	Shards int
	// MaxEntries bounds the total number of live entries across all
	// shards; the bound is enforced per shard (MaxEntries/Shards each, at
	// least 1). Default 65536.
	MaxEntries int
	// TTL is how long an entry stays valid after Put. Zero means entries
	// never expire.
	TTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.MaxEntries <= 0 {
		c.MaxEntries = 65536
	}
	return c
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // LRU and TTL evictions combined
	Entries   int
}

// Cache is a sharded LRU/TTL cache. Safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint32
	ttl    time.Duration
	now    func() time.Time

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	mHits      *obs.Counter
	mMisses    *obs.Counter
	mEvictions *obs.Counter
	mEntries   *obs.Gauge
	mLookup    obs.BoundHistogram
}

type shard struct {
	mu      sync.Mutex
	lru     *list.List // front = most recently used
	entries map[string]*list.Element
	cap     int
}

type entry struct {
	key     string
	val     any
	expires time.Time // zero = never
}

// New builds a cache and registers its instruments in reg:
// pmlmpi_cache_hits_total, pmlmpi_cache_misses_total,
// pmlmpi_cache_evictions_total{reason}, pmlmpi_cache_entries,
// pmlmpi_cache_lookup_duration_seconds.
func New(cfg Config, reg *obs.Registry) *Cache {
	cfg = cfg.withDefaults()
	perShard := cfg.MaxEntries / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{
		shards: make([]shard, cfg.Shards),
		mask:   uint32(cfg.Shards - 1),
		ttl:    cfg.TTL,
		now:    time.Now,
		mHits: reg.Counter("pmlmpi_cache_hits_total",
			"Decision-cache lookups served from cache."),
		mMisses: reg.Counter("pmlmpi_cache_misses_total",
			"Decision-cache lookups that fell through to the forest."),
		mEvictions: reg.Counter("pmlmpi_cache_evictions_total",
			"Decision-cache entries evicted.", "reason"),
		mEntries: reg.Gauge("pmlmpi_cache_entries",
			"Live decision-cache entries."),
		mLookup: reg.Histogram("pmlmpi_cache_lookup_duration_seconds",
			"Wall time of one decision-cache Get, hit or miss.", obs.LatencyBuckets).Bind(),
	}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].cap = perShard
	}
	return c
}

// fnv32a hashes the key to pick a shard.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shardFor(key string) *shard {
	return &c.shards[fnv32a(key)&c.mask]
}

// Get returns the value stored under key, refreshing its LRU position. An
// expired entry is removed and counted as a TTL eviction plus a miss. Every
// lookup, hit or miss, feeds the lookup-duration histogram.
func (c *Cache) Get(key string) (any, bool) {
	start := time.Now()
	v, ok := c.get(key)
	c.mLookup.Observe(time.Since(start).Seconds())
	return v, ok
}

func (c *Cache) get(key string) (any, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.entries[key]
	if ok {
		e := el.Value.(*entry)
		if !e.expires.IsZero() && c.now().After(e.expires) {
			sh.lru.Remove(el)
			delete(sh.entries, key)
			sh.mu.Unlock()
			c.evictions.Add(1)
			c.mEvictions.Inc("ttl")
			c.mEntries.Add(-1)
			c.misses.Add(1)
			c.mMisses.Inc()
			return nil, false
		}
		sh.lru.MoveToFront(el)
		val := e.val
		sh.mu.Unlock()
		c.hits.Add(1)
		c.mHits.Inc()
		return val, true
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	c.mMisses.Inc()
	return nil, false
}

// Put stores val under key, evicting the shard's least recently used entry
// if the shard is at capacity. Re-putting an existing key refreshes its
// value, TTL, and LRU position without eviction.
func (c *Cache) Put(key string, val any) {
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*entry)
		e.val = val
		e.expires = expires
		sh.lru.MoveToFront(el)
		sh.mu.Unlock()
		return
	}
	evicted := false
	if sh.lru.Len() >= sh.cap {
		back := sh.lru.Back()
		if back != nil {
			sh.lru.Remove(back)
			delete(sh.entries, back.Value.(*entry).key)
			evicted = true
		}
	}
	sh.entries[key] = sh.lru.PushFront(&entry{key: key, val: val, expires: expires})
	sh.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
		c.mEvictions.Inc("lru")
	} else {
		c.mEntries.Add(1)
	}
}

// Flush drops every live entry, counting each as an eviction with reason
// "flush", and returns how many were dropped. The selector calls it when a
// new model generation is promoted: generation-prefixed keys already make
// old entries unreachable, so this exists to reclaim their memory eagerly
// rather than waiting on LRU/TTL pressure.
func (c *Cache) Flush() int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n := sh.lru.Len()
		sh.lru.Init()
		sh.entries = make(map[string]*list.Element)
		sh.mu.Unlock()
		total += n
	}
	if total > 0 {
		c.evictions.Add(uint64(total))
		c.mEvictions.Add(float64(total), "flush")
		c.mEntries.Add(float64(-total))
	}
	return total
}

// Len returns the number of live entries across all shards. Expired but
// not-yet-collected entries are included.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the atomic counters and current entry count.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
