package cache

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

func newTestCache(cfg Config) (*Cache, *obs.Registry) {
	reg := obs.NewRegistry()
	return New(cfg, reg), reg
}

func TestGetPutHitMiss(t *testing.T) {
	c, _ := newTestCache(Config{})

	if _, ok := c.Get("k1"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("k1", 42)
	v, ok := c.Get("k1")
	if !ok || v.(int) != 42 {
		t.Fatalf("Get(k1) = %v, %v; want 42, true", v, ok)
	}
	c.Put("k1", 43) // refresh
	if v, _ := c.Get("k1"); v.(int) != 43 {
		t.Fatalf("refreshed value = %v, want 43", v)
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 0 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 2 hits / 1 miss / 0 evictions / 1 entry", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One shard of capacity 3 makes the LRU order fully observable.
	c, _ := newTestCache(Config{Shards: 1, MaxEntries: 3})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // a is now most recent; b is the LRU victim
	c.Put("d", 4)

	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction and 3 entries", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c, _ := newTestCache(Config{TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Put("k", "v")
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry should be live before TTL")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry should have expired")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 0 {
		t.Errorf("stats = %+v, want 1 TTL eviction and 0 entries", st)
	}
	// Re-put after expiry works and refreshes the TTL.
	c.Put("k", "v2")
	if v, ok := c.Get("k"); !ok || v.(string) != "v2" {
		t.Errorf("re-put after expiry = %v, %v", v, ok)
	}
}

func TestCapacityBoundAcrossShards(t *testing.T) {
	c, _ := newTestCache(Config{Shards: 4, MaxEntries: 64})
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("key-%d", i), i)
	}
	if n := c.Len(); n > 64 {
		t.Errorf("cache holds %d entries, bound is 64", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("overfilling the cache should have evicted")
	}
}

func TestShardCountRoundsToPowerOfTwo(t *testing.T) {
	c, _ := newTestCache(Config{Shards: 5})
	if len(c.shards) != 8 {
		t.Errorf("5 shards rounded to %d, want 8", len(c.shards))
	}
}

func TestMetricsExposition(t *testing.T) {
	c, reg := newTestCache(Config{Shards: 1, MaxEntries: 2})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")      // hit
	c.Get("nope")   // miss
	c.Put("c", 3)   // LRU-evicts b

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"pmlmpi_cache_hits_total 1",
		"pmlmpi_cache_misses_total 1",
		`pmlmpi_cache_evictions_total{reason="lru"} 1`,
		"pmlmpi_cache_entries 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, _ := newTestCache(Config{Shards: 8, MaxEntries: 1024})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%50)
				if i%3 == 0 {
					c.Put(key, g)
				} else {
					c.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 50 {
		t.Errorf("cache holds %d entries, want at most 50 distinct keys", n)
	}
}

func TestLookupDurationHistogramCountsEveryGet(t *testing.T) {
	c, reg := newTestCache(Config{})
	c.Get("missing")
	c.Put("k", 1)
	c.Get("k")
	c.Get("k")

	var b strings.Builder
	reg.WritePrometheus(&b)
	if want := "pmlmpi_cache_lookup_duration_seconds_count 3"; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q in:\n%s", want, b.String())
	}
}

func TestFlushEmptiesEveryShardAndCounts(t *testing.T) {
	c, reg := newTestCache(Config{MaxEntries: 1024, Shards: 8})
	const n = 100
	for i := 0; i < n; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if got := c.Len(); got != n {
		t.Fatalf("Len = %d before flush, want %d", got, n)
	}

	if flushed := c.Flush(); flushed != n {
		t.Fatalf("Flush returned %d, want %d", flushed, n)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("Len = %d after flush, want 0", got)
	}
	for i := 0; i < n; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("key k%d survived the flush", i)
		}
	}
	if st := c.Stats(); st.Evictions != n {
		t.Fatalf("evictions = %d after flush, want %d", st.Evictions, n)
	}

	// Flushing an empty cache is a no-op, and the cache stays usable.
	if flushed := c.Flush(); flushed != 0 {
		t.Fatalf("second Flush returned %d, want 0", flushed)
	}
	c.Put("again", 1)
	if v, ok := c.Get("again"); !ok || v.(int) != 1 {
		t.Fatal("cache unusable after flush")
	}

	var expo strings.Builder
	reg.WritePrometheus(&expo)
	if out := expo.String(); !strings.Contains(out, `pmlmpi_cache_evictions_total{reason="flush"} 100`) {
		t.Fatalf("flush evictions not exported with reason label:\n%s", out)
	}
}
