package feedback

import (
	"os"
	"sync"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// fuzzStore is one long-lived store shared across fuzz iterations so the
// accounting invariant is exercised against accumulated state (dedup hits,
// segment rotation, quarantine growth), not a fresh directory every call.
var (
	fuzzOnce sync.Once
	fuzzMu   sync.Mutex
	fuzzS    *Store
	fuzzErr  error
)

func fuzzStoreInit() {
	dir, err := os.MkdirTemp("", "feedback-fuzz-")
	if err != nil {
		fuzzErr = err
		return
	}
	fuzzS, fuzzErr = NewStore(obs.NewRegistry(), Config{
		Dir:               dir,
		SegmentMaxRecords: 64,
		MaxSegments:       2,
	})
}

// FuzzFeedbackRecord throws hostile JSON bodies at the full ingestion
// path: envelope parse → record validation → oracle guard → store. It
// must never panic, and the outcome accounting must stay consistent —
// every parsed record lands in exactly one outcome bucket.
func FuzzFeedbackRecord(f *testing.F) {
	f.Add([]byte(`{"collective":"broadcast","features":{"num_nodes":4,"ppn":8,"log2_msg_size":10},"latency_us":{"binomial_tree":12.5,"pipeline":80.1,"scatter_allgather":44.0}}`))
	f.Add([]byte(`{"records":[{"collective":"allgather","features":{"num_nodes":16,"ppn":32,"log2_msg_size":20},"latency_us":{"ring":9.0,"bruck":12.0}}]}`))
	f.Add([]byte(`{"collective":"alltoall","features":{"num_nodes":2,"ppn":1,"log2_msg_size":4},"algorithm":"pairwise"}`))
	f.Add([]byte(`{"collective":"broadcast","features":{"num_nodes":1e308,"ppn":-0,"log2_msg_size":0.5},"latency_us":{"pipeline":1e-300}}`))
	f.Add([]byte(`{"collective":"broadcast","features":{"bogus_feature":1},"latency_us":{"binomial_tree":1}}`))
	f.Add([]byte(`{"records":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"collective":"broadcast","features":{"num_nodes":4},"latency_us":{"binomial_tree":-5}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"collective":"broadcast","unknown_field":true}`))
	f.Add([]byte(`{"collective":"broadcast","features":{"num_nodes":4,"ppn":8,"log2_msg_size":10},"latency_us":{"binomial_tree":1},"records":[{"collective":"broadcast"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzOnce.Do(fuzzStoreInit)
		if fuzzErr != nil {
			t.Fatalf("fuzz store init: %v", fuzzErr)
		}
		records, err := ParseRequest(data)
		if err != nil {
			return // hostile envelope rejected cleanly
		}
		if len(records) == 0 {
			t.Fatal("ParseRequest returned no records and no error")
		}
		fuzzMu.Lock()
		defer fuzzMu.Unlock()
		before := fuzzS.Snapshot()
		outcomes := map[Outcome]uint64{}
		for i := range records {
			out, _ := fuzzS.Add(&records[i])
			switch out {
			case OutcomeAccepted, OutcomeDuplicate, OutcomeQuarantined, OutcomeInvalid:
				outcomes[out]++
			default:
				t.Fatalf("unknown outcome %q", out)
			}
		}
		after := fuzzS.Snapshot()
		if after.Accepted != before.Accepted+outcomes[OutcomeAccepted] ||
			after.Duplicates != before.Duplicates+outcomes[OutcomeDuplicate] ||
			after.Quarantined != before.Quarantined+outcomes[OutcomeQuarantined] ||
			after.Invalid != before.Invalid+outcomes[OutcomeInvalid] {
			t.Fatalf("outcome accounting drifted: before=%+v outcomes=%v after=%+v",
				before, outcomes, after)
		}
		total := after.Accepted + after.Duplicates + after.Quarantined + after.Invalid
		wantTotal := before.Accepted + before.Duplicates + before.Quarantined + before.Invalid + uint64(len(records))
		if total != wantTotal {
			t.Fatalf("total accounting drifted: got %d want %d", total, wantTotal)
		}
		if after.QuarantineRecords < before.QuarantineRecords {
			t.Fatalf("quarantine count went backwards: %d -> %d",
				before.QuarantineRecords, after.QuarantineRecords)
		}
	})
}
