package feedback

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/pml-mpi/pmlmpi/pkg/dataset"
)

// Request is the POST /v1/feedback body: either one record inline (the
// dataset.Record fields at top level) or a batch under "records". Exactly
// one of the two shapes must be used.
type Request struct {
	dataset.Record
	Records []dataset.Record `json:"records,omitempty"`
}

// ParseRequest strictly decodes a feedback body into its record list.
// Unknown fields, trailing data, mixed single+batch shapes, and empty
// envelopes are errors; semantic validation of each record happens in
// Store.Add, so a parse success only means the envelope is well-formed.
func ParseRequest(data []byte) ([]dataset.Record, error) {
	var req Request
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("bad feedback body: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("bad feedback body: trailing data after the JSON object")
	}
	inline := req.Collective != "" || len(req.Features) > 0 ||
		req.Algorithm != "" || len(req.LatenciesUS) > 0
	switch {
	case len(req.Records) > 0 && inline:
		return nil, fmt.Errorf("bad feedback body: use either an inline record or \"records\", not both")
	case len(req.Records) > 0:
		return req.Records, nil
	case inline:
		return []dataset.Record{req.Record}, nil
	default:
		return nil, fmt.Errorf("bad feedback body: no record fields and no \"records\" array")
	}
}
