package feedback

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/dataset"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
)

// oracleRecord builds a record whose latencies are the analytical costs in
// microseconds, so its argmin agrees with the oracle exactly.
func oracleRecord(t testing.TB, collective string, nodes, ppn, lm float64) *dataset.Record {
	t.Helper()
	f := perfmodel.DefaultSystems[1].Features(nodes, ppn, lm)
	costs, err := perfmodel.Costs(collective, f)
	if err != nil {
		t.Fatalf("oracle costs: %v", err)
	}
	algos := perfmodel.Table()[collective]
	lat := make(map[string]float64, len(algos))
	for i, name := range algos {
		lat[name] = costs[i] * 1e6
	}
	return &dataset.Record{Collective: collective, Features: f, LatenciesUS: lat}
}

// poisonedRecord flips the latencies so the oracle's worst algorithm looks
// fastest — the data-poisoning shape the guard must catch.
func poisonedRecord(t testing.TB, collective string, nodes, ppn, lm float64) *dataset.Record {
	t.Helper()
	rec := oracleRecord(t, collective, nodes, ppn, lm)
	worst, worstLat := "", 0.0
	for name, lat := range rec.LatenciesUS {
		if lat > worstLat {
			worst, worstLat = name, lat
		}
	}
	rec.LatenciesUS[worst] = 0.001 // absurdly fast for the worst algorithm
	return rec
}

func newTestStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := NewStore(obs.NewRegistry(), cfg)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreAcceptDedupQuarantine(t *testing.T) {
	s := newTestStore(t, Config{})

	rec := oracleRecord(t, "broadcast", 4, 8, 12)
	if out, err := s.Add(rec); out != OutcomeAccepted || err != nil {
		t.Fatalf("first add: outcome %s err %v", out, err)
	}
	if out, _ := s.Add(oracleRecord(t, "broadcast", 4, 8, 12)); out != OutcomeDuplicate {
		t.Fatalf("repeat add: outcome %s, want duplicate", out)
	}

	poison := poisonedRecord(t, "broadcast", 16, 16, 10)
	out, err := s.Add(poison)
	if out != OutcomeQuarantined {
		t.Fatalf("poisoned add: outcome %s, want quarantined", out)
	}
	if err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Fatalf("quarantine reason missing: %v", err)
	}

	bad := &dataset.Record{Collective: "broadcast", Features: map[string]float64{"bogus": 1},
		LatenciesUS: map[string]float64{"binomial_tree": 1}}
	if out, err := s.Add(bad); out != OutcomeInvalid || err == nil {
		t.Fatalf("invalid add: outcome %s err %v", out, err)
	}
	noLat := oracleRecord(t, "broadcast", 2, 2, 8)
	noLat.LatenciesUS = nil
	noLat.Algorithm = "pipeline"
	if out, _ := s.Add(noLat); out != OutcomeInvalid {
		t.Fatalf("latency-free add: outcome %s, want invalid", out)
	}

	snap := s.Snapshot()
	if snap.Accepted != 1 || snap.Duplicates != 1 || snap.Quarantined != 1 || snap.Invalid != 2 {
		t.Fatalf("snapshot counters = %+v", snap)
	}
	if snap.Resident != 1 || snap.QuarantineRecords != 1 {
		t.Fatalf("snapshot residency = %+v", snap)
	}

	// The quarantined record must not be in the training dataset.
	ds, err := s.Dataset()
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	if ds.Len() != 1 {
		t.Fatalf("dataset has %d examples, want 1 (quarantined record leaked?)", ds.Len())
	}
	poisonKey := dataset.Key(poison.Collective, poison.Features)
	for i := range ds.Examples {
		if dataset.Key(ds.Examples[i].Collective, ds.Examples[i].Features) == poisonKey {
			t.Fatal("quarantined record found in training dataset")
		}
	}
}

func TestStoreSegmentRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, Config{Dir: dir, SegmentMaxRecords: 4, MaxSegments: 2})
	// 4 distinct nodes x 5 ppn = 20 accepted records → 5 segments worth,
	// retention keeps 2.
	added := 0
	for _, nodes := range []float64{2, 4, 8, 16} {
		for _, ppn := range []float64{1, 2, 4, 8, 16} {
			rec := oracleRecord(t, "allgather", nodes, ppn, 14)
			if out, err := s.Add(rec); out != OutcomeAccepted {
				t.Fatalf("add nodes=%v ppn=%v: outcome %s err %v", nodes, ppn, out, err)
			}
			added++
		}
	}
	snap := s.Snapshot()
	if snap.Segments != 2 {
		t.Fatalf("snapshot has %d segments, want 2 (retention)", snap.Segments)
	}
	if snap.Resident != 8 {
		t.Fatalf("resident = %d, want 8 (2 segments x 4 records)", snap.Resident)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segFiles := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "segment-") {
			segFiles++
		}
	}
	if segFiles != 2 {
		t.Fatalf("%d segment files on disk, want 2", segFiles)
	}
	// An evicted record's key is gone, so resubmitting it is accepted
	// again rather than reported duplicate.
	if out, err := s.Add(oracleRecord(t, "allgather", 2, 1, 14)); out != OutcomeAccepted {
		t.Fatalf("resubmit of evicted record: outcome %s err %v", out, err)
	}
}

func TestStoreCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s := newTestStore(t, Config{Dir: dir, SegmentMaxRecords: 4, MaxSegments: 4})
	for _, nodes := range []float64{2, 4, 8, 16, 24, 32} {
		if out, err := s.Add(oracleRecord(t, "alltoall", nodes, 4, 16)); out != OutcomeAccepted {
			t.Fatalf("add: outcome %s err %v", out, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the active segment's tail, as a crash mid-append would.
	active := filepath.Join(dir, "segment-000002.jsonl")
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"collective":"alltoall","fea`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := newTestStore(t, Config{Dir: dir, SegmentMaxRecords: 4, MaxSegments: 4})
	snap := s2.Snapshot()
	if snap.Resident != 6 {
		t.Fatalf("recovered resident = %d, want 6", snap.Resident)
	}
	if snap.Segments != 2 || snap.ActiveSegment != "segment-000002.jsonl" {
		t.Fatalf("recovered layout = %+v", snap)
	}
	// Dedup survives recovery: resubmitting a recovered record is a dup.
	if out, _ := s2.Add(oracleRecord(t, "alltoall", 2, 4, 16)); out != OutcomeDuplicate {
		t.Fatalf("resubmit after recovery: outcome %s, want duplicate", out)
	}
	// And novel records land in the repaired active segment.
	if out, err := s2.Add(oracleRecord(t, "alltoall", 3, 4, 16)); out != OutcomeAccepted {
		t.Fatalf("novel add after recovery: outcome %s err %v", out, err)
	}
	ds, err := s2.Dataset()
	if err != nil {
		t.Fatalf("Dataset after recovery: %v", err)
	}
	if ds.Len() != 7 {
		t.Fatalf("dataset after recovery has %d examples, want 7", ds.Len())
	}
}

func TestStoreGuardDisabled(t *testing.T) {
	s := newTestStore(t, Config{MaxCostRatio: -1})
	poison := poisonedRecord(t, "broadcast", 16, 16, 10)
	if out, err := s.Add(poison); out != OutcomeAccepted || err != nil {
		t.Fatalf("guard-disabled add: outcome %s err %v", out, err)
	}
}
