// Package feedback ingests observed per-algorithm latencies from live
// deployments into an append-only JSONL dataset store that the retrain
// controller blends into future training sets. Every record is validated
// against the canonical feature schema (pkg/dataset) and checked for
// plausibility against the pkg/perfmodel analytical oracle: a record whose
// observed argmin algorithm costs more than a configurable multiple of the
// oracle's best is quarantined, never trained on — the data-poisoning
// defense. Accepted records are deduplicated on their bit-exact feature
// identity, written with fsync into rotating segments, recovered
// crash-safely on startup, and bounded by a segment retention cap.
package feedback

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"

	"github.com/pml-mpi/pmlmpi/pkg/dataset"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/perfmodel"
)

// Outcome classifies what happened to one submitted record.
type Outcome string

const (
	// OutcomeAccepted: validated, plausible, novel — appended to the store.
	OutcomeAccepted Outcome = "accepted"
	// OutcomeDuplicate: a record for this exact feature point is already
	// resident; the submission was dropped.
	OutcomeDuplicate Outcome = "duplicate"
	// OutcomeQuarantined: well-formed but implausible against the
	// analytical oracle; appended to the quarantine file for audit, never
	// to the training segments.
	OutcomeQuarantined Outcome = "quarantined"
	// OutcomeInvalid: failed schema validation; dropped.
	OutcomeInvalid Outcome = "invalid"
)

// Config tunes a Store. Zero values take the documented defaults.
type Config struct {
	// Dir is the segment directory (required).
	Dir string
	// Algorithms is the collective → class-ordered algorithm table records
	// are validated against. Default perfmodel.Table().
	Algorithms map[string][]string
	// MaxCostRatio is the plausibility guardrail: a record is quarantined
	// when the analytical cost of its observed argmin algorithm exceeds
	// MaxCostRatio times the analytical minimum for that feature point.
	// Default 3.0; values <= 1 disable the guard entirely (every cost
	// ratio is >= 1, so nothing could ever pass — treat as "off").
	MaxCostRatio float64
	// SegmentMaxRecords rotates the active segment after this many
	// records. Default 4096.
	SegmentMaxRecords int
	// MaxSegments bounds retention: when rotation would exceed it, the
	// oldest segment (and its dedup keys) is dropped. Default 8.
	MaxSegments int
	// Oracle computes per-class analytical costs for the plausibility
	// guard. Default perfmodel.Costs. An oracle error (e.g. a collective
	// the analytical models don't cover) skips the guard for that record.
	Oracle func(collective string, features map[string]float64) ([]float64, error)
}

// Config defaults, exported so flag declarations can echo them.
const (
	DefaultMaxCostRatio      = 3.0
	DefaultSegmentMaxRecords = 4096
	DefaultMaxSegments       = 8
)

func (c Config) withDefaults() Config {
	if c.Algorithms == nil {
		c.Algorithms = perfmodel.Table()
	}
	if c.MaxCostRatio == 0 {
		c.MaxCostRatio = DefaultMaxCostRatio
	}
	if c.SegmentMaxRecords <= 0 {
		c.SegmentMaxRecords = DefaultSegmentMaxRecords
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = DefaultMaxSegments
	}
	if c.Oracle == nil {
		c.Oracle = perfmodel.Costs
	}
	return c
}

// segment is one resident JSONL segment file.
type segment struct {
	index   int
	path    string
	records int
}

var segmentNameRe = regexp.MustCompile(`^segment-(\d{6})\.jsonl$`)

func segmentPath(dir string, index int) string {
	return filepath.Join(dir, fmt.Sprintf("segment-%06d.jsonl", index))
}

// quarantineRecord is one line of the quarantine audit file: the rejected
// record plus why the guard refused it.
type quarantineRecord struct {
	Reason string          `json:"reason"`
	Record *dataset.Record `json:"record"`
}

// Store is the append-only feedback dataset store. Safe for concurrent
// use; Add never touches the Select hot path.
type Store struct {
	cfg Config

	mu       sync.Mutex
	segments []segment
	active   *dataset.AppendJSONL
	keys     map[string]int // dedup identity → segment index
	qfile    *os.File
	qcount   int

	accepted    uint64
	duplicates  uint64
	quarantined uint64
	invalid     uint64

	cRecords  *obs.Counter
	gResident *obs.Gauge
	gSegments *obs.Gauge
}

// NewStore opens (creating if needed) a feedback store rooted at cfg.Dir
// and registers its pmlmpi_feedback_* instruments. Existing segments are
// recovered: torn tails are truncated, records recounted, and the dedup
// index rebuilt, so a crash between fsyncs loses at most the torn record.
func NewStore(reg *obs.Registry, cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("feedback: Config.Dir is required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: %w", err)
	}
	s := &Store{
		cfg:  cfg,
		keys: make(map[string]int),
		cRecords: reg.Counter("pmlmpi_feedback_records_total",
			"Feedback records submitted, by outcome.", "outcome"),
		gResident: reg.Gauge("pmlmpi_feedback_records_resident",
			"Accepted feedback records currently resident in the store."),
		gSegments: reg.Gauge("pmlmpi_feedback_segments",
			"Feedback segment files currently resident."),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	qpath := filepath.Join(cfg.Dir, "quarantine.jsonl")
	s.qcount = countCompleteLines(qpath)
	qf, err := os.OpenFile(qpath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("feedback: %w", err)
	}
	s.qfile = qf
	s.refreshGauges()
	return s, nil
}

// recover scans Dir for segment files, repairs and indexes each, and opens
// the newest as the active append target (creating segment-000001 in an
// empty directory).
func (s *Store) recover() error {
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("feedback: %w", err)
	}
	var indices []int
	for _, e := range entries {
		if m := segmentNameRe.FindStringSubmatch(e.Name()); m != nil {
			var idx int
			fmt.Sscanf(m[1], "%d", &idx)
			indices = append(indices, idx)
		}
	}
	sort.Ints(indices)
	if len(indices) == 0 {
		indices = []int{1}
	}
	for _, idx := range indices {
		path := segmentPath(s.cfg.Dir, idx)
		// OpenAppendJSONL repairs a torn tail and validates + counts every
		// complete record; older segments are only ever opened to repair
		// and count, then closed again.
		w, err := dataset.OpenAppendJSONL(path, s.cfg.Algorithms)
		if err != nil {
			return fmt.Errorf("feedback: segment %s: %w", path, err)
		}
		n := w.Records()
		if idx == indices[len(indices)-1] {
			s.active = w
		} else if err := w.Close(); err != nil {
			return fmt.Errorf("feedback: segment %s: %w", path, err)
		}
		s.segments = append(s.segments, segment{index: idx, path: path, records: n})
		if n > 0 {
			ds, err := dataset.ReadFile(path, s.cfg.Algorithms)
			if err != nil {
				return fmt.Errorf("feedback: segment %s: %w", path, err)
			}
			for i := range ds.Examples {
				ex := &ds.Examples[i]
				s.keys[dataset.Key(ex.Collective, ex.Features)] = idx
			}
		}
	}
	return nil
}

// countCompleteLines counts newline-terminated lines; a missing file is 0.
func countCompleteLines(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	return n
}

// Add validates one record and routes it to the training segments, the
// quarantine file, or the floor. The returned error carries detail for
// invalid and quarantined outcomes (nil for accepted/duplicate); storage
// I/O failures surface as OutcomeInvalid with the underlying error.
func (s *Store) Add(rec *dataset.Record) (Outcome, error) {
	_, algorithm, err := dataset.ValidateRecord(s.cfg.Algorithms, rec)
	if err == nil && len(rec.LatenciesUS) == 0 {
		// Feedback is measurements, not assertions: an explicit algorithm
		// label with no latencies carries no evidence worth training on.
		err = fmt.Errorf("feedback records must carry latency_us measurements")
	}
	if err != nil {
		s.count(OutcomeInvalid)
		return OutcomeInvalid, err
	}

	if reason := s.implausible(rec, algorithm); reason != "" {
		s.mu.Lock()
		qerr := s.quarantineLocked(rec, reason)
		s.mu.Unlock()
		s.count(OutcomeQuarantined)
		if qerr != nil {
			return OutcomeQuarantined, qerr
		}
		return OutcomeQuarantined, fmt.Errorf("%s", reason)
	}

	key := dataset.Key(rec.Collective, rec.Features)
	s.mu.Lock()
	if _, dup := s.keys[key]; dup {
		s.mu.Unlock()
		s.count(OutcomeDuplicate)
		return OutcomeDuplicate, nil
	}
	if err := s.appendLocked(rec, key); err != nil {
		s.mu.Unlock()
		s.count(OutcomeInvalid)
		return OutcomeInvalid, err
	}
	s.mu.Unlock()
	s.count(OutcomeAccepted)
	s.refreshGauges()
	return OutcomeAccepted, nil
}

// implausible applies the oracle guard; a non-empty return is the
// quarantine reason.
func (s *Store) implausible(rec *dataset.Record, algorithm string) string {
	if s.cfg.MaxCostRatio <= 1 {
		return ""
	}
	costs, err := s.cfg.Oracle(rec.Collective, rec.Features)
	if err != nil || len(costs) == 0 {
		return "" // no analytical coverage — guard abstains
	}
	algos := s.cfg.Algorithms[rec.Collective]
	cls := -1
	for i, n := range algos {
		if n == algorithm && i < len(costs) {
			cls = i
			break
		}
	}
	if cls < 0 {
		return ""
	}
	min := costs[0]
	for _, c := range costs[1:] {
		if c < min {
			min = c
		}
	}
	if min <= 0 {
		return ""
	}
	ratio := costs[cls] / min
	if ratio > s.cfg.MaxCostRatio {
		return fmt.Sprintf("implausible winner %q: analytical cost is %.2fx the oracle best (limit %.2fx)",
			algorithm, ratio, s.cfg.MaxCostRatio)
	}
	return ""
}

// appendLocked writes one accepted record to the active segment, rotating
// and enforcing retention as needed. Caller holds s.mu.
func (s *Store) appendLocked(rec *dataset.Record, key string) error {
	if s.active == nil {
		return fmt.Errorf("feedback: store is closed")
	}
	cur := &s.segments[len(s.segments)-1]
	if cur.records >= s.cfg.SegmentMaxRecords {
		if err := s.rotateLocked(); err != nil {
			return err
		}
		cur = &s.segments[len(s.segments)-1]
	}
	if err := s.active.Append(rec); err != nil {
		return err
	}
	cur.records++
	s.keys[key] = cur.index
	return nil
}

// rotateLocked closes the active segment, opens the next one, and drops
// the oldest segments (with their dedup keys) beyond the retention cap.
func (s *Store) rotateLocked() error {
	if err := s.active.Close(); err != nil {
		return err
	}
	next := s.segments[len(s.segments)-1].index + 1
	w, err := dataset.OpenAppendJSONL(segmentPath(s.cfg.Dir, next), s.cfg.Algorithms)
	if err != nil {
		return err
	}
	s.active = w
	s.segments = append(s.segments, segment{index: next, path: w.Path()})
	for len(s.segments) > s.cfg.MaxSegments {
		victim := s.segments[0]
		s.segments = s.segments[1:]
		os.Remove(victim.path)
		for k, idx := range s.keys {
			if idx == victim.index {
				delete(s.keys, k)
			}
		}
	}
	return nil
}

// quarantineLocked appends one {reason, record} line to the audit file.
// Caller holds s.mu.
func (s *Store) quarantineLocked(rec *dataset.Record, reason string) error {
	if s.qfile == nil {
		return nil
	}
	buf, err := json.Marshal(quarantineRecord{Reason: reason, Record: rec})
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := s.qfile.Write(buf); err != nil {
		return err
	}
	if err := s.qfile.Sync(); err != nil {
		return err
	}
	s.qcount++
	return nil
}

func (s *Store) count(o Outcome) {
	s.mu.Lock()
	switch o {
	case OutcomeAccepted:
		s.accepted++
	case OutcomeDuplicate:
		s.duplicates++
	case OutcomeQuarantined:
		s.quarantined++
	case OutcomeInvalid:
		s.invalid++
	}
	s.mu.Unlock()
	s.cRecords.Inc(string(o))
}

func (s *Store) refreshGauges() {
	s.mu.Lock()
	resident := len(s.keys)
	segs := len(s.segments)
	s.mu.Unlock()
	s.gResident.Set(float64(resident))
	s.gSegments.Set(float64(segs))
}

// Dir returns the store's on-disk directory.
func (s *Store) Dir() string { return s.cfg.Dir }

// Resident returns how many accepted records are currently resident.
func (s *Store) Resident() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.keys)
}

// Dataset reads every resident segment into one validated dataset.
func (s *Store) Dataset() (*dataset.Dataset, error) {
	s.mu.Lock()
	paths := make([]string, len(s.segments))
	for i, seg := range s.segments {
		paths[i] = seg.path
	}
	s.mu.Unlock()
	out := dataset.New(s.cfg.Algorithms)
	for _, p := range paths {
		if countCompleteLines(p) == 0 {
			continue
		}
		ds, err := dataset.ReadFile(p, s.cfg.Algorithms)
		if err != nil {
			return nil, fmt.Errorf("feedback: %w", err)
		}
		if err := out.Merge(ds); err != nil {
			return nil, fmt.Errorf("feedback: %w", err)
		}
	}
	return out, nil
}

// Snapshot is the store's JSON-ready state for /debug/retrain.
type Snapshot struct {
	Dir               string `json:"dir"`
	Accepted          uint64 `json:"accepted"`
	Duplicates        uint64 `json:"duplicates"`
	Quarantined       uint64 `json:"quarantined"`
	Invalid           uint64 `json:"invalid"`
	Resident          int    `json:"resident"`
	Segments          int    `json:"segments"`
	ActiveSegment     string `json:"active_segment"`
	QuarantineRecords int    `json:"quarantine_records"`
}

// Snapshot returns current counters and layout.
func (s *Store) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Dir:               s.cfg.Dir,
		Accepted:          s.accepted,
		Duplicates:        s.duplicates,
		Quarantined:       s.quarantined,
		Invalid:           s.invalid,
		Resident:          len(s.keys),
		Segments:          len(s.segments),
		QuarantineRecords: s.qcount,
	}
	if len(s.segments) > 0 {
		snap.ActiveSegment = filepath.Base(s.segments[len(s.segments)-1].path)
	}
	return snap
}

// Close syncs and closes the active segment and quarantine file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.active != nil {
		err = s.active.Close()
		s.active = nil
	}
	if s.qfile != nil {
		if cerr := s.qfile.Close(); err == nil {
			err = cerr
		}
		s.qfile = nil
	}
	return err
}
