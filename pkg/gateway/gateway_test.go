package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

// fakeReplica is a minimal replica backend: /healthz, /v1/select, and
// /v1/select/batch that echo the replica's identity, plus counters for
// what reached it.
type fakeReplica struct {
	id string
	ts *httptest.Server

	mu      sync.Mutex
	selects int
	batches int
	items   []string // collectives received, in order
}

func newFakeReplica(t *testing.T, id string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","generation":{"id":1,"hash":"hash-%s"}}`, id)
	})
	mux.HandleFunc("/v1/select", func(w http.ResponseWriter, r *http.Request) {
		var req selector.BatchRequest
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.selects++
		f.items = append(f.items, req.Collective)
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"collective":%q,"algorithm":"echo","served_by":%q}`, req.Collective, id)
	})
	mux.HandleFunc("/v1/select/batch", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Requests []selector.BatchRequest `json:"requests"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.batches++
		results := make([]map[string]any, len(req.Requests))
		for i, item := range req.Requests {
			f.items = append(f.items, item.Collective)
			results[i] = map[string]any{
				"decision": map[string]any{"collective": item.Collective, "served_by": id},
			}
		}
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"count": len(results), "errors": 0, "results": results,
		})
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func newTestGateway(t *testing.T, fakes []*fakeReplica) *Gateway {
	t.Helper()
	specs := make([]ReplicaSpec, len(fakes))
	for i, f := range fakes {
		specs[i] = ReplicaSpec{ID: f.id, URL: f.ts.URL}
	}
	g, err := New(obs.NewForTest(), Config{Replicas: specs, MaxAttempts: len(fakes)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func testFeatures(i int) map[string]float64 {
	return map[string]float64{
		"msg_size_bytes": float64(int64(64) << (i % 16)),
		"comm_size":      float64(2 + i%62),
		"node_count":     float64(1 + i%16),
	}
}

// TestOwnerStableAcrossRestartsAndConfigOrder pins the satellite
// requirement: the replica a request routes to depends only on the
// request and the replica IDs — not on process lifetime or the order
// replicas appear in the config.
func TestOwnerStableAcrossRestartsAndConfigOrder(t *testing.T) {
	ids := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"}
	build := func(perm []int) *Gateway {
		specs := make([]ReplicaSpec, len(ids))
		for i, pi := range perm {
			specs[i] = ReplicaSpec{ID: ids[pi], URL: "http://unused.invalid"}
		}
		g, err := New(obs.NewForTest(), Config{Replicas: specs})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return g
	}
	identity := make([]int, len(ids))
	for i := range identity {
		identity[i] = i
	}
	g1 := build(identity)
	perm := rand.New(rand.NewSource(7)).Perm(len(ids))
	g2 := build(perm) // "restarted" gateway, shuffled config order

	for i := 0; i < 500; i++ {
		feats := testFeatures(i)
		o1 := g1.Owner("allreduce", feats)
		o2 := g2.Owner("allreduce", feats)
		if o1 != o2 {
			t.Fatalf("request %d owner changed across restart: %s vs %s", i, o1, o2)
		}
	}
	// Quantization folds near-identical floats onto the same owner.
	a := map[string]float64{"msg_size_bytes": 4096, "comm_size": 48}
	b := map[string]float64{"msg_size_bytes": 4096.0000004, "comm_size": 48.0000004}
	if g1.Owner("allreduce", a) != g1.Owner("allreduce", b) {
		t.Fatal("quantization did not fold near-identical features onto one owner")
	}
}

// TestOwnerDistributionUniform checks rendezvous balance: across 8
// replicas and a deterministic request population, every replica owns
// within 10% of its fair share.
func TestOwnerDistributionUniform(t *testing.T) {
	specs := make([]ReplicaSpec, 8)
	for i := range specs {
		specs[i] = ReplicaSpec{ID: fmt.Sprintf("replica-%d", i), URL: "http://unused.invalid"}
	}
	g, err := New(obs.NewForTest(), Config{Replicas: specs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const n = 20000
	counts := make(map[string]int)
	collectives := []string{"allreduce", "bcast", "allgather", "reduce_scatter"}
	for i := 0; i < n; i++ {
		feats := map[string]float64{
			"msg_size_bytes": float64(8 + i*13),
			"comm_size":      float64(2 + i%126),
		}
		counts[g.Owner(collectives[i%len(collectives)], feats)]++
	}
	fair := float64(n) / float64(len(specs))
	for id, c := range counts {
		dev := (float64(c) - fair) / fair
		if dev > 0.10 || dev < -0.10 {
			t.Errorf("replica %s owns %d keys, %.1f%% off the fair share %.0f",
				id, c, dev*100, fair)
		}
	}
	if len(counts) != len(specs) {
		t.Fatalf("only %d of %d replicas own any keys", len(counts), len(specs))
	}
}

func postSelect(t *testing.T, url, collective string, feats map[string]float64) (*http.Response, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"collective": collective, "features": feats})
	resp, err := http.Post(url+"/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/select: %v", err)
	}
	defer resp.Body.Close()
	var parsed map[string]any
	json.NewDecoder(resp.Body).Decode(&parsed)
	return resp, parsed
}

// TestFailoverReroutesWithoutErrors kills one replica and asserts its
// keys re-route to live replicas with zero client-visible errors, while
// keys owned by surviving replicas stay where they were.
func TestFailoverReroutesWithoutErrors(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	g := newTestGateway(t, fakes)
	front := httptest.NewServer(g)
	defer front.Close()

	// Partition a request population by current owner.
	byOwner := make(map[string][]map[string]float64)
	for i := 0; i < 60; i++ {
		feats := testFeatures(i)
		byOwner[g.Owner("allreduce", feats)] = append(byOwner[g.Owner("allreduce", feats)], feats)
	}
	victim := fakes[0]
	if len(byOwner[victim.id]) == 0 {
		t.Fatalf("no requests landed on %s; owners: %v", victim.id, byOwner)
	}
	survivorOwned := byOwner[fakes[1].id]

	victim.ts.Close() // kill it: connections now refuse

	// Every key the victim owned must re-route and succeed.
	for _, feats := range byOwner[victim.id] {
		resp, parsed := postSelect(t, front.URL, "allreduce", feats)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("victim-owned key got HTTP %d: %v", resp.StatusCode, parsed)
		}
		if served := parsed["served_by"]; served == victim.id {
			t.Fatalf("request claims to be served by the killed replica %s", victim.id)
		}
		if resp.Header.Get("X-Pmlmpi-Replica") == victim.id {
			t.Fatal("gateway reports routing to the killed replica")
		}
	}
	// Keys owned by survivors stay put — rendezvous minimal disruption.
	for _, feats := range survivorOwned {
		resp, parsed := postSelect(t, front.URL, "allreduce", feats)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("survivor-owned key got HTTP %d", resp.StatusCode)
		}
		if parsed["served_by"] != fakes[1].id {
			t.Fatalf("survivor-owned key moved from %s to %v", fakes[1].id, parsed["served_by"])
		}
	}
	// The gateway learned: the victim is marked down and its ledger shows
	// the failures.
	for _, info := range g.Snapshot() {
		if info.ID == victim.id {
			if info.Healthy {
				t.Fatal("killed replica still marked healthy")
			}
			if info.Errors == 0 {
				t.Fatal("killed replica shows no errors in the ledger")
			}
		}
	}
}

// TestBatchSplitsByPartitionAndReassembles sends one batch whose items
// are owned by different replicas and checks the positional envelope
// comes back intact, annotated with the serving replica.
func TestBatchSplitsByPartitionAndReassembles(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b"), newFakeReplica(t, "c")}
	g := newTestGateway(t, fakes)
	front := httptest.NewServer(g)
	defer front.Close()

	var reqs []map[string]any
	var owners []string
	for i := 0; i < 24; i++ {
		feats := testFeatures(i)
		reqs = append(reqs, map[string]any{"collective": "bcast", "features": feats})
		owners = append(owners, g.Owner("bcast", feats))
	}
	body, _ := json.Marshal(map[string]any{"requests": reqs})
	resp, err := http.Post(front.URL+"/v1/select/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	defer resp.Body.Close()
	var parsed struct {
		Count   int `json:"count"`
		Errors  int `json:"errors"`
		Results []struct {
			Decision map[string]any `json:"decision"`
			Error    string         `json:"error"`
			Replica  string         `json:"replica"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if parsed.Count != len(reqs) || parsed.Errors != 0 {
		t.Fatalf("count=%d errors=%d, want %d/0", parsed.Count, parsed.Errors, len(reqs))
	}
	distinct := make(map[string]bool)
	for i, res := range parsed.Results {
		if res.Error != "" {
			t.Fatalf("item %d errored: %s", i, res.Error)
		}
		if res.Replica != owners[i] {
			t.Fatalf("item %d served by %s, owner is %s", i, res.Replica, owners[i])
		}
		if res.Decision["served_by"] != owners[i] {
			t.Fatalf("item %d decision from %v, owner is %s", i, res.Decision["served_by"], owners[i])
		}
		distinct[res.Replica] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("batch never split: all %d items went to one replica", len(reqs))
	}
	// Sub-batch accounting: each replica saw exactly one batch call.
	for _, f := range fakes {
		f.mu.Lock()
		batches, items := f.batches, len(f.items)
		f.mu.Unlock()
		if items > 0 && batches != 1 {
			t.Fatalf("replica %s saw %d batch calls for %d items, want 1", f.id, batches, items)
		}
	}
}

func TestHealthzReportsRoleAndDegrades(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b")}
	g := newTestGateway(t, fakes)
	front := httptest.NewServer(g)
	defer front.Close()

	get := func() (int, map[string]any) {
		resp, err := http.Get(front.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		var h map[string]any
		json.NewDecoder(resp.Body).Decode(&h)
		return resp.StatusCode, h
	}
	code, h := get()
	if code != http.StatusOK || h["status"] != "ok" || h["role"] != "gateway" {
		t.Fatalf("healthz = %d %v, want 200 ok/gateway", code, h)
	}

	// All replicas die; an active sweep notices; health degrades to 503.
	for _, f := range fakes {
		f.ts.Close()
	}
	g.CheckNow(context.Background())
	code, h = get()
	if code != http.StatusServiceUnavailable || h["status"] != "unavailable" {
		t.Fatalf("healthz after fleet death = %d %v, want 503 unavailable", code, h)
	}
	if h["role"] != "gateway" {
		t.Fatalf("role = %v, want gateway even when unavailable", h["role"])
	}
}

// TestActiveProbeRevivesRecoveredReplica: passive failure marks a
// replica down; only a successful active probe (or proxy) brings it
// back.
func TestActiveProbeRevivesRecoveredReplica(t *testing.T) {
	fakes := []*fakeReplica{newFakeReplica(t, "a"), newFakeReplica(t, "b")}
	g := newTestGateway(t, fakes)
	g.CheckNow(context.Background())
	for _, info := range g.Snapshot() {
		if !info.Healthy {
			t.Fatalf("replica %s unhealthy after clean probe", info.ID)
		}
		if info.ActiveHash != "hash-"+info.ID {
			t.Fatalf("probe did not record active hash: %+v", info)
		}
	}
	g.markDown(g.replicas[0], "synthetic failure")
	if g.Snapshot()[0].Healthy {
		t.Fatal("markDown did not stick")
	}
	g.CheckNow(context.Background())
	if !g.Snapshot()[0].Healthy {
		t.Fatal("active probe did not revive the replica")
	}
}
