// Package gateway is the fleet's front door: a partitioning HTTP proxy
// that spreads /v1/select traffic across a replica set. Requests are
// keyed by the same quantized (collective, features) identity the
// decision cache uses — selector.PartitionKey — and routed by rendezvous
// (highest-random-weight) hashing, so each replica owns a stable slice
// of the key space and the fleet's decision caches partition instead of
// duplicating. A killed replica's keys re-route to their next-best owner
// while every other key stays put; the rest of the fleet's caches stay
// warm.
//
// Health is tracked two ways: passively (a failed proxy attempt marks
// the replica down, a successful one marks it up) and actively (Run
// probes /healthz on an interval, which also revives recovered
// replicas). Routing prefers healthy replicas in rendezvous order and
// falls back to unhealthy ones only when nothing better remains, with a
// bounded number of attempts per request.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/buildinfo"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
)

// MaxBatchItems mirrors the replica-side /v1/select/batch bound.
const MaxBatchItems = 1024

// ReplicaSpec names one backend replica.
type ReplicaSpec struct {
	// ID is the stable replica identity — the rendezvous seed. It must
	// match the replica's -replica-id so routing survives address
	// changes: keys follow the ID, not the URL.
	ID string
	// URL is the replica's base URL, e.g. "http://10.0.0.7:8080".
	URL string
}

// Config tunes the gateway.
type Config struct {
	// Replicas is the backend set; at least one is required.
	Replicas []ReplicaSpec
	// Quantum is the feature-quantization step for partition keys. It
	// must match the replicas' decision-cache quantum for cache locality
	// to hold. <= 0 means selector.DefaultCacheQuantum.
	Quantum float64
	// MaxAttempts bounds how many replicas one request may try before
	// the gateway gives up with a 502. Default 3, capped at the replica
	// count.
	MaxAttempts int
	// HealthInterval is the active /healthz probe period for Run.
	// Default 2s.
	HealthInterval time.Duration
	// ControlPlane, when set, is the control-plane base URL; /healthz
	// then embeds the fleet-ring manifest as the gateway's desired view.
	ControlPlane string
	// Client overrides the proxy HTTP client (default 10s timeout).
	Client *http.Client
}

// replica is one backend plus its routing and accounting state.
type replica struct {
	id   string
	url  string
	seed uint64 // rendezvous seed derived from the ID

	mu         sync.Mutex
	healthy    bool
	lastErr    string
	activeGen  uint64
	activeHash string
	requests   uint64
	errors     uint64
	selections map[string]uint64 // successful select items by collective
}

// Gateway is the fleet front door; it implements http.Handler.
type Gateway struct {
	o        *obs.Obs
	cfg      Config
	client   *http.Client
	replicas []*replica // fixed config order
	started  time.Time
	mux      *http.ServeMux

	httpRequests *obs.Counter
	proxied      *obs.Counter
	proxyLatency *obs.Histogram
	retries      *obs.Counter
	healthyGauge *obs.Gauge
}

// New builds a gateway over a fixed replica set.
func New(o *obs.Obs, cfg Config) (*Gateway, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("gateway needs at least one replica")
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = selector.DefaultCacheQuantum
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.MaxAttempts > len(cfg.Replicas) {
		cfg.MaxAttempts = len(cfg.Replicas)
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	g := &Gateway{
		o:       o,
		cfg:     cfg,
		client:  client,
		started: time.Now(),
		mux:     http.NewServeMux(),
		httpRequests: o.Registry.Counter("pmlmpi_gw_http_requests_total",
			"Gateway HTTP requests served, by path and status code.", "path", "code"),
		proxied: o.Registry.Counter("pmlmpi_gw_proxy_requests_total",
			"Proxy attempts, by replica and outcome code (HTTP status or \"error\").", "replica", "code"),
		proxyLatency: o.Registry.Histogram("pmlmpi_gw_proxy_duration_seconds",
			"Proxy round-trip latency, by replica.", obs.LatencyBuckets, "replica"),
		retries: o.Registry.Counter("pmlmpi_gw_retries_total",
			"Requests re-routed after a replica failure, by failed replica.", "replica"),
		healthyGauge: o.Registry.Gauge("pmlmpi_gw_replica_healthy",
			"Replica health as seen by the gateway (1 healthy, 0 down).", "replica"),
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	for _, spec := range cfg.Replicas {
		if spec.ID == "" || spec.URL == "" {
			return nil, fmt.Errorf("replica spec needs both id and url, got %+v", spec)
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("duplicate replica id %q", spec.ID)
		}
		seen[spec.ID] = true
		g.replicas = append(g.replicas, &replica{
			id:   spec.ID,
			url:  strings.TrimRight(spec.URL, "/"),
			seed: replicaSeed(spec.ID),
			// Optimistic start: a replica is presumed healthy until a
			// probe or proxy attempt says otherwise, so the gateway
			// serves before the first health sweep completes.
			healthy:    true,
			selections: make(map[string]uint64),
		})
	}
	buildinfo.Register(o.Registry)
	g.route("/v1/select", http.MethodPost, "POST a JSON body: {\"collective\": ..., \"features\": {...}}", g.handleSelect)
	g.route("/v1/select/batch", http.MethodPost, "POST a JSON body: {\"requests\": [...]}", g.handleSelectBatch)
	g.route("/debug/replicas", http.MethodGet, "GET returns per-replica routing and health state", g.handleReplicas)
	g.route("/healthz", http.MethodGet, "GET returns gateway health", g.handleHealthz)
	g.route("/metrics", http.MethodGet, "GET returns Prometheus text metrics", g.handleMetrics)
	return g, nil
}

// replicaSeed derives the rendezvous seed for a replica ID: FNV-1a of
// the ID, finalized with splitmix64 so nearby IDs ("r1", "r2") land far
// apart in the score space.
func replicaSeed(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return selector.Mix64(h.Sum64())
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Run drives the active health prober until ctx is canceled.
func (g *Gateway) Run(ctx context.Context) {
	ticker := time.NewTicker(g.cfg.HealthInterval)
	defer ticker.Stop()
	g.CheckNow(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			g.CheckNow(ctx)
		}
	}
}

// CheckNow probes every replica's /healthz once, concurrently, updating
// health state and the advertised active generation. It is the revival
// path: passive failure marking is immediate, but recovery is only ever
// observed here.
func (g *Gateway) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rp := range g.replicas {
		wg.Add(1)
		go func(rp *replica) {
			defer wg.Done()
			g.probe(ctx, rp)
		}(rp)
	}
	wg.Wait()
}

// replicaHealth is the subset of a replica's /healthz the prober reads.
type replicaHealth struct {
	Status     string `json:"status"`
	Generation *struct {
		ID   uint64 `json:"id"`
		Hash string `json:"hash"`
	} `json:"generation"`
}

func (g *Gateway) probe(ctx context.Context, rp *replica) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rp.url+"/healthz", nil)
	if err != nil {
		g.markDown(rp, err.Error())
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.markDown(rp, err.Error())
		return
	}
	defer resp.Body.Close()
	var h replicaHealth
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		g.markDown(rp, "bad /healthz body: "+err.Error())
		return
	}
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		g.markDown(rp, fmt.Sprintf("replica reports %s (HTTP %d)", h.Status, resp.StatusCode))
		return
	}
	rp.mu.Lock()
	rp.healthy = true
	rp.lastErr = ""
	if h.Generation != nil {
		rp.activeGen = h.Generation.ID
		rp.activeHash = h.Generation.Hash
	}
	rp.mu.Unlock()
	g.healthyGauge.Set(1, rp.id)
}

func (g *Gateway) markDown(rp *replica, reason string) {
	rp.mu.Lock()
	rp.healthy = false
	rp.lastErr = reason
	rp.mu.Unlock()
	g.healthyGauge.Set(0, rp.id)
}

func (g *Gateway) markUp(rp *replica) {
	rp.mu.Lock()
	rp.healthy = true
	rp.lastErr = ""
	rp.mu.Unlock()
	g.healthyGauge.Set(1, rp.id)
}

// rank orders replicas for a partition key: rendezvous score descending,
// healthy replicas before unhealthy ones. The first entry is the key's
// owner; the tail is the bounded-retry failover order. Ties (identical
// scores are astronomically unlikely, but determinism matters) break on
// replica ID.
func (g *Gateway) rank(key uint64) []*replica {
	type scored struct {
		rp      *replica
		score   uint64
		healthy bool
	}
	rows := make([]scored, len(g.replicas))
	for i, rp := range g.replicas {
		rp.mu.Lock()
		healthy := rp.healthy
		rp.mu.Unlock()
		rows[i] = scored{rp: rp, score: selector.Mix64(key ^ rp.seed), healthy: healthy}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].healthy != rows[b].healthy {
			return rows[a].healthy
		}
		if rows[a].score != rows[b].score {
			return rows[a].score > rows[b].score
		}
		return rows[a].rp.id < rows[b].rp.id
	})
	out := make([]*replica, len(rows))
	for i, row := range rows {
		out[i] = row.rp
	}
	return out
}

// Owner returns the replica ID a request currently routes to — exposed
// for tests and for the partition-distribution report.
func (g *Gateway) Owner(collective string, features map[string]float64) string {
	key := selector.PartitionKey(collective, features, g.cfg.Quantum)
	return g.rank(key)[0].id
}

// proxyResult is one completed proxy attempt.
type proxyResult struct {
	status int
	body   []byte
}

// tryReplica performs one proxy attempt. Transport errors and 5xx
// responses are replica failures (retryable, mark down); anything else —
// including 4xx/422, which are the caller's fault — is a final answer
// and marks the replica up.
func (g *Gateway) tryReplica(ctx context.Context, rp *replica, path string, body []byte) (proxyResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rp.url+path, bytes.NewReader(body))
	if err != nil {
		return proxyResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := g.client.Do(req)
	g.proxyLatency.Observe(time.Since(start).Seconds(), rp.id)
	if err != nil {
		g.proxied.Inc(rp.id, "error")
		g.markDown(rp, err.Error())
		rp.count(false, "", 0)
		return proxyResult{}, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		g.proxied.Inc(rp.id, "error")
		g.markDown(rp, err.Error())
		rp.count(false, "", 0)
		return proxyResult{}, err
	}
	g.proxied.Inc(rp.id, strconv.Itoa(resp.StatusCode))
	if resp.StatusCode >= 500 {
		g.markDown(rp, fmt.Sprintf("HTTP %d from %s", resp.StatusCode, path))
		rp.count(false, "", 0)
		return proxyResult{}, fmt.Errorf("replica %s: HTTP %d", rp.id, resp.StatusCode)
	}
	g.markUp(rp)
	return proxyResult{status: resp.StatusCode, body: respBody}, nil
}

// count updates one replica's routing ledger: a request landed (ok or
// not), and on success items selected per collective.
func (rp *replica) count(ok bool, collective string, items uint64) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	rp.requests++
	if !ok {
		rp.errors++
		return
	}
	if collective != "" {
		rp.selections[collective] += items
	}
}

func (g *Gateway) handleSelect(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	var req selector.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Collective == "" {
		writeError(w, http.StatusBadRequest, "missing \"collective\"")
		return
	}
	key := selector.PartitionKey(req.Collective, req.Features, g.cfg.Quantum)
	order := g.rank(key)
	var lastErr error
	for i, rp := range order {
		if i >= g.cfg.MaxAttempts {
			break
		}
		if i > 0 {
			g.retries.Inc(order[i-1].id)
		}
		res, err := g.tryReplica(r.Context(), rp, "/v1/select", body)
		if err != nil {
			lastErr = err
			continue
		}
		if res.status == http.StatusOK {
			rp.count(true, req.Collective, 1)
		} else {
			rp.count(true, "", 0)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Pmlmpi-Replica", rp.id)
		w.WriteHeader(res.status)
		w.Write(res.body)
		return
	}
	writeError(w, http.StatusBadGateway, "no replica could answer: "+errString(lastErr))
}

// batchItem is one positional entry of a replica's batch response. The
// decision passes through opaquely; only the error field is inspected.
// The gateway annotates each answered item with the replica that served
// it — extra over the single-server schema, ignored by clients that
// don't know it.
type batchItem struct {
	Decision json.RawMessage `json:"decision,omitempty"`
	Error    string          `json:"error,omitempty"`
	Replica  string          `json:"replica,omitempty"`
}

// pendingItem tracks one batch member through routing rounds. The
// failover order is pinned at enqueue time (like the single-select
// path), so attempts index straight into it.
type pendingItem struct {
	idx      int
	req      selector.BatchRequest
	order    []*replica
	attempts int
}

// handleSelectBatch splits a batch along partition boundaries: each item
// routes to its own key's owner, sub-batches fly per replica, and the
// positional envelope is reassembled. Items on a failed replica re-route
// (bounded per-item attempts) in later rounds without failing the call.
func (g *Gateway) handleSelectBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Requests []selector.BatchRequest `json:"requests"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch: \"requests\" must have at least one item")
		return
	}
	if len(req.Requests) > MaxBatchItems {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d items exceeds the limit of %d", len(req.Requests), MaxBatchItems))
		return
	}

	results := make([]batchItem, len(req.Requests))
	queue := make([]pendingItem, 0, len(req.Requests))
	for i, item := range req.Requests {
		queue = append(queue, pendingItem{
			idx: i, req: item,
			order: g.rank(selector.PartitionKey(item.Collective, item.Features, g.cfg.Quantum)),
		})
	}
	for len(queue) > 0 {
		// Group this round's items by each one's next untried replica.
		// Every queued item has attempts < MaxAttempts <= len(order).
		groups := make(map[*replica][]pendingItem)
		for _, it := range queue {
			groups[it.order[it.attempts]] = append(groups[it.order[it.attempts]], it)
		}
		queue = queue[:0]
		for rp, items := range groups {
			sub := make([]selector.BatchRequest, len(items))
			for i, it := range items {
				sub[i] = it.req
			}
			body, _ := json.Marshal(map[string]any{"requests": sub})
			res, err := g.tryReplica(r.Context(), rp, "/v1/select/batch", body)
			if err == nil && res.status == http.StatusOK {
				var parsed struct {
					Results []batchItem `json:"results"`
				}
				if jerr := json.Unmarshal(res.body, &parsed); jerr != nil || len(parsed.Results) != len(items) {
					err = fmt.Errorf("replica %s: unparseable batch response", rp.id)
				} else {
					for i, it := range items {
						results[it.idx] = parsed.Results[i]
						results[it.idx].Replica = rp.id
						if parsed.Results[i].Error == "" {
							rp.countCollective(it.req.Collective)
						}
					}
					rp.count(true, "", 0)
					continue
				}
			} else if err == nil {
				// Non-200, non-5xx on a whole sub-batch (e.g. a 400 the
				// gateway's own validation should have caught): surface
				// it per item rather than retrying a doomed request.
				for _, it := range items {
					results[it.idx] = batchItem{Error: fmt.Sprintf("replica %s: HTTP %d", rp.id, res.status)}
				}
				rp.count(true, "", 0)
				continue
			}
			// Replica failure: re-queue survivors for the next round.
			g.retries.Inc(rp.id)
			for _, it := range items {
				it.attempts++
				if it.attempts >= g.cfg.MaxAttempts {
					results[it.idx] = batchItem{Error: "no replica could answer: " + err.Error()}
					continue
				}
				queue = append(queue, it)
			}
		}
	}

	resp := struct {
		Count   int         `json:"count"`
		Errors  int         `json:"errors"`
		Results []batchItem `json:"results"`
	}{Count: len(results), Results: results}
	for _, res := range results {
		if res.Error != "" {
			resp.Errors++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// countCollective tallies one successful batch item.
func (rp *replica) countCollective(collective string) {
	rp.mu.Lock()
	rp.selections[collective]++
	rp.mu.Unlock()
}

// ReplicaInfo is one row of /debug/replicas.
type ReplicaInfo struct {
	ID                     string            `json:"id"`
	URL                    string            `json:"url"`
	Healthy                bool              `json:"healthy"`
	LastError              string            `json:"last_error,omitempty"`
	ActiveGeneration       uint64            `json:"active_generation,omitempty"`
	ActiveHash             string            `json:"active_hash,omitempty"`
	Requests               uint64            `json:"requests"`
	Errors                 uint64            `json:"errors"`
	SelectionsByCollective map[string]uint64 `json:"selections_by_collective,omitempty"`
}

// Snapshot returns the per-replica routing ledger in config order.
func (g *Gateway) Snapshot() []ReplicaInfo {
	out := make([]ReplicaInfo, 0, len(g.replicas))
	for _, rp := range g.replicas {
		rp.mu.Lock()
		info := ReplicaInfo{
			ID:               rp.id,
			URL:              rp.url,
			Healthy:          rp.healthy,
			LastError:        rp.lastErr,
			ActiveGeneration: rp.activeGen,
			ActiveHash:       rp.activeHash,
			Requests:         rp.requests,
			Errors:           rp.errors,
		}
		if len(rp.selections) > 0 {
			info.SelectionsByCollective = make(map[string]uint64, len(rp.selections))
			for c, n := range rp.selections {
				info.SelectionsByCollective[c] = n
			}
		}
		rp.mu.Unlock()
		out = append(out, info)
	}
	return out
}

func (g *Gateway) handleReplicas(w http.ResponseWriter, r *http.Request) {
	rows := g.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":    len(rows),
		"replicas": rows,
	})
}

// gwHealth is the gateway's /healthz body: fleet-wide role/desired
// schema plus the replica roster. Status is "ok" while at least one
// replica is believed healthy — the gateway can still route.
type gwHealth struct {
	Status          string        `json:"status"`
	Role            string        `json:"role"`
	ServerVersion   string        `json:"server_version"`
	GoVersion       string        `json:"go_version"`
	Desired         any           `json:"desired,omitempty"`
	HealthyReplicas int           `json:"healthy_replicas"`
	Replicas        []ReplicaInfo `json:"replicas"`
	UptimeSeconds   float64       `json:"uptime_seconds"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rows := g.Snapshot()
	h := gwHealth{
		Role:          "gateway",
		ServerVersion: buildinfo.Resolve(),
		GoVersion:     buildinfo.GoVersion(),
		Replicas:      rows,
		UptimeSeconds: time.Since(g.started).Seconds(),
	}
	for _, row := range rows {
		if row.Healthy {
			h.HealthyReplicas++
		}
	}
	h.Status = "ok"
	code := http.StatusOK
	if h.HealthyReplicas == 0 {
		h.Status = "unavailable"
		code = http.StatusServiceUnavailable
	}
	if g.cfg.ControlPlane != "" {
		if m := g.fetchManifest(r.Context()); m != nil {
			h.Desired = m
		}
	}
	writeJSON(w, code, h)
}

// fetchManifest asks the control plane for the fleet-ring manifest; nil
// on any failure (the health report degrades, it does not fail).
func (g *Gateway) fetchManifest(ctx context.Context) any {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(g.cfg.ControlPlane, "/")+"/v1/manifest?ring=fleet", nil)
	if err != nil {
		return nil
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var m map[string]any
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
		return nil
	}
	return m
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.o.Registry.WritePrometheus(w)
}

// route registers one method-enforced, instrumented endpoint (same
// contract as pkg/admin and pkg/controlplane).
func (g *Gateway) route(path, method, usage string, h http.HandlerFunc) {
	g.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		if r.Method != method && !(method == http.MethodGet && r.Method == http.MethodHead) {
			w.Header().Set("Allow", method)
			writeError(sr, http.StatusMethodNotAllowed, usage)
		} else {
			h(sr, r)
		}
		g.httpRequests.Inc(path, strconv.Itoa(sr.code))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func errString(err error) string {
	if err == nil {
		return "no replicas configured"
	}
	return err.Error()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
