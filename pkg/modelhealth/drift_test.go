package modelhealth

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
)

// uniformRef is a 4-bin training reference, uniform over (0,30] in steps of
// ten, 100 observations per bin.
func uniformRef() bundle.FeatureDist {
	return bundle.FeatureDist{
		Edges:  []float64{10, 20, 30},
		Counts: []uint64{100, 100, 100, 100},
	}
}

func TestPSIZeroForMatchingDistribution(t *testing.T) {
	d := uniformRef()
	refProps := smoothProps(d.Counts, d.Total())
	live := []uint64{50, 50, 50, 50}
	if psi := psiAgainst(live, 200, refProps); math.Abs(psi) > 1e-9 {
		t.Fatalf("PSI of an identically-proportioned window = %v, want ~0", psi)
	}
}

func TestPSILargeForDisjointDistribution(t *testing.T) {
	d := uniformRef()
	refProps := smoothProps(d.Counts, d.Total())
	live := []uint64{0, 0, 0, 200} // everything in the overflow bin
	if psi := psiAgainst(live, 200, refProps); psi < 1 {
		t.Fatalf("PSI of a disjoint window = %v, want >> alert threshold", psi)
	}
}

func TestFeatureMonitorWindowRotation(t *testing.T) {
	m := newFeatureMonitor("f", uniformRef())
	rng := rand.New(rand.NewSource(5))
	const window = 64
	for i := 0; i < window-1; i++ {
		if rotated := m.observe(rng.Float64()*40, window); rotated {
			t.Fatalf("rotated after %d observations, window is %d", i+1, window)
		}
	}
	if st, _, _ := m.status(0.25); st != DriftCollecting {
		t.Fatalf("status before first rotation = %v, want collecting", st)
	}
	if !m.observe(5, window) {
		t.Fatal("window-filling observation did not rotate")
	}
	st, psi, windows := m.status(0.25)
	if windows != 1 {
		t.Fatalf("windows = %d, want 1", windows)
	}
	if st != DriftOK {
		t.Fatalf("in-distribution window status = %v (psi %v), want ok", st, psi)
	}
	if m.window.Total() != 0 {
		t.Fatalf("window not reset after rotation: %d pending", m.window.Total())
	}
	if m.cumulative.Total() != window {
		t.Fatalf("cumulative = %d, want %d", m.cumulative.Total(), window)
	}
}

func TestFeatureMonitorStatusThresholds(t *testing.T) {
	// Everything far outside the training support must alert.
	m := newFeatureMonitor("f", uniformRef())
	for i := 0; i < 32; i++ {
		m.observe(1e6, 32)
	}
	if st, psi, _ := m.status(0.25); st != DriftAlert {
		t.Fatalf("fully shifted window status = %v (psi %v), want alert", st, psi)
	}

	// A matching window scores ok even at a tight alert threshold.
	m2 := newFeatureMonitor("f", uniformRef())
	for i := 0; i < 32; i++ {
		m2.observe(float64(i%4)*10+5, 32)
	}
	if st, psi, _ := m2.status(0.25); st != DriftOK {
		t.Fatalf("matching window status = %v (psi %v), want ok", st, psi)
	}

	// The warn band sits at [0.4*alert, alert): grade a mild skew against
	// a threshold pair chosen to land the PSI between them.
	m3 := newFeatureMonitor("f", uniformRef())
	for i := 0; i < 64; i++ {
		bin := i % 8 // bins 0..3 twice as likely as overflow never hit
		if bin >= 4 {
			bin = 0 // skew mass onto the first bin
		}
		m3.observe(float64(bin)*10+5, 64)
	}
	_, psi, _ := m3.status(0.25)
	if psi <= 0 {
		t.Fatalf("skewed window PSI = %v, want > 0", psi)
	}
	if st, _, _ := m3.status(psi * 2); st != DriftWarn {
		t.Fatalf("status with alert=2*psi = %v, want warn (psi %v)", st, psi)
	}
	if st, _, _ := m3.status(psi / 2); st != DriftAlert {
		t.Fatalf("status with alert=psi/2 = %v, want alert", st)
	}
}

func TestDriftSetLifecycle(t *testing.T) {
	// No stats: nothing to monitor.
	empty := newDriftSet(1, nil, DefaultDriftFeatures)
	if st := empty.status(0.25); st != DriftNoReference {
		t.Fatalf("nil-stats status = %v, want no_reference", st)
	}

	stats := &bundle.FeatureStats{
		Source: "test",
		Features: map[string]bundle.FeatureDist{
			"num_nodes": uniformRef(),
			"ppn":       uniformRef(),
		},
	}
	// log2_msg_size requested but absent from stats: silently skipped.
	ds := newDriftSet(2, stats, DefaultDriftFeatures)
	if len(ds.monitors) != 2 {
		t.Fatalf("monitors = %d, want 2", len(ds.monitors))
	}
	if ds.monitors[0].name != "num_nodes" || ds.monitors[1].name != "ppn" {
		t.Fatalf("monitors not name-sorted: %s, %s", ds.monitors[0].name, ds.monitors[1].name)
	}
	if st := ds.status(0.25); st != DriftCollecting {
		t.Fatalf("fresh set status = %v, want collecting", st)
	}

	// Rotate one monitor in-distribution (one value per reference bin, so
	// the window matches the uniform reference exactly), the other shifted:
	// worst wins.
	for _, v := range []float64{5, 15, 25, 35} {
		ds.monitors[0].observe(v, 4)
		ds.monitors[1].observe(1e9, 4)
	}
	if st := ds.status(0.25); st != DriftAlert {
		t.Fatalf("one-alerting-feature status = %v, want alert", st)
	}

	rep := ds.report(0.25)
	if len(rep) != 2 {
		t.Fatalf("report has %d features", len(rep))
	}
	if rep[0].Status != "ok" || rep[1].Status != "alert" {
		t.Fatalf("report statuses = %s/%s, want ok/alert", rep[0].Status, rep[1].Status)
	}
	if rep[1].Reference.Total != 400 {
		t.Fatalf("reference total = %d, want 400", rep[1].Reference.Total)
	}
	if rep[1].Live.Total != 4 {
		t.Fatalf("live total = %d, want 4", rep[1].Live.Total)
	}
}

func TestDriftStatusStrings(t *testing.T) {
	want := map[DriftStatus]string{
		DriftNoReference: "no_reference",
		DriftCollecting:  "collecting",
		DriftOK:          "ok",
		DriftWarn:        "warn",
		DriftAlert:       "alert",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), s)
		}
	}
	if DriftOK.GaugeValue() != 0 || DriftWarn.GaugeValue() != 1 ||
		DriftAlert.GaugeValue() != 2 || DriftCollecting.GaugeValue() != -1 {
		t.Error("gauge mapping changed")
	}
}
