package modelhealth

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestNewSketchValidation(t *testing.T) {
	cases := []struct {
		name  string
		edges []float64
	}{
		{"empty", nil},
		{"nan", []float64{1, math.NaN()}},
		{"inf", []float64{math.Inf(1)}},
		{"descending", []float64{2, 1}},
		{"duplicate", []float64{1, 1}},
	}
	for _, tc := range cases {
		if _, err := NewSketch(tc.edges); err == nil {
			t.Errorf("%s: NewSketch(%v) accepted invalid edges", tc.name, tc.edges)
		}
	}
	if _, err := NewSketch([]float64{1, 2, 4}); err != nil {
		t.Fatalf("valid edges rejected: %v", err)
	}
}

// TestSketchQuantileRankErrorBound is the rank-error property: for any
// observed multiset and any q, the true rank-ceil(q*n) order statistic must
// land in the same bin the sketch reports the quantile from. The sketch
// cannot do better than bucket resolution, and this pins that it never does
// worse.
func TestSketchQuantileRankErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		nEdges := 1 + rng.Intn(12)
		edges := make([]float64, 0, nEdges)
		prev := rng.Float64() * 10
		for len(edges) < nEdges {
			prev += 0.1 + rng.Float64()*5
			edges = append(edges, prev)
		}
		s := MustSketch(edges)
		n := 1 + rng.Intn(500)
		values := make([]float64, n)
		for i := range values {
			values[i] = rng.NormFloat64()*8 + 10
			s.Observe(values[i])
		}
		sort.Float64s(values)

		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			trueBin := bucketOf(edges, values[rank-1])

			// Recompute the bin the sketch answers from: first bin whose
			// cumulative count reaches the rank.
			var cum uint64
			gotBin := len(edges)
			for i := 0; i < s.Buckets(); i++ {
				cum += s.Count(i)
				if cum >= uint64(rank) {
					gotBin = i
					break
				}
			}
			if gotBin != trueBin {
				t.Fatalf("trial %d q=%v: sketch answers from bin %d, true quantile %v is in bin %d",
					trial, q, gotBin, values[rank-1], trueBin)
			}
			// And the point estimate must fall inside (or on the edge of)
			// that bin's bracket.
			lo, hi := s.QuantileBracket(q)
			est := s.Quantile(q)
			if est < lo || est > hi {
				t.Fatalf("trial %d q=%v: estimate %v outside bracket [%v,%v]", trial, q, est, lo, hi)
			}
		}
	}
}

func TestSketchQuantileEmpty(t *testing.T) {
	s := MustSketch([]float64{1, 2})
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty sketch quantile = %v, want 0", got)
	}
}

// TestSketchMergeAssociativeCommutative: integer counts make any merge tree
// over the same sketches produce identical results.
func TestSketchMergeAssociativeCommutative(t *testing.T) {
	edges := []float64{0, 1, 2, 4, 8}
	rng := rand.New(rand.NewSource(7))
	parts := make([]*Sketch, 3)
	for p := range parts {
		parts[p] = MustSketch(edges)
		for i := 0; i < 200+rng.Intn(200); i++ {
			parts[p].Observe(rng.NormFloat64() * 4)
		}
	}
	clone := func(s *Sketch) *Sketch {
		c := MustSketch(edges)
		if err := c.Merge(s); err != nil {
			t.Fatal(err)
		}
		return c
	}

	// (A+B)+C
	left := clone(parts[0])
	left.Merge(parts[1])
	left.Merge(parts[2])
	// A+(B+C)
	bc := clone(parts[1])
	bc.Merge(parts[2])
	right := clone(parts[0])
	right.Merge(bc)
	// C+B+A
	rev := clone(parts[2])
	rev.Merge(parts[1])
	rev.Merge(parts[0])

	want := left.Counts()
	for name, s := range map[string]*Sketch{"A+(B+C)": right, "C+B+A": rev} {
		got := s.Counts()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s counts[%d] = %d, want %d (merge not order-free)", name, i, got[i], want[i])
			}
		}
		if s.Total() != left.Total() {
			t.Fatalf("%s total = %d, want %d", name, s.Total(), left.Total())
		}
	}

	mismatched := MustSketch([]float64{0, 1})
	if err := left.Merge(mismatched); err == nil {
		t.Fatal("merge across different edge sets must fail")
	}
}

// TestSketchDeterministicAcrossInterleavings: the same multiset observed
// under different goroutine partitions yields bit-identical counts —
// integer atomics commute exactly, no float accumulation order anywhere.
func TestSketchDeterministicAcrossInterleavings(t *testing.T) {
	edges := []float64{1, 2, 4, 8, 16}
	rng := rand.New(rand.NewSource(99))
	values := make([]float64, 4096)
	for i := range values {
		values[i] = rng.ExpFloat64() * 6
	}

	sequential := MustSketch(edges)
	for _, v := range values {
		sequential.Observe(v)
	}
	want := sequential.Counts()

	for _, workers := range []int{2, 7, 16} {
		s := MustSketch(edges)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(values); i += workers {
					s.Observe(values[i])
				}
			}(w)
		}
		wg.Wait()
		got := s.Counts()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: counts[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSketchSnapshotGoldenJSON pins the exact serialized form served on the
// debug endpoints.
func TestSketchSnapshotGoldenJSON(t *testing.T) {
	s := MustSketch([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100, math.NaN()} {
		s.Observe(v)
	}
	raw, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Bin layout: v <= 1 | 1 < v <= 2 | 2 < v <= 4 | v > 4 (NaN lands in
	// the overflow bin — every comparison against it is false).
	const golden = `{"edges":[1,2,4],"counts":[2,2,2,3],"total":9}`
	if string(raw) != golden {
		t.Fatalf("snapshot JSON = %s, want pinned %s", raw, golden)
	}
}

func TestSketchReset(t *testing.T) {
	s := MustSketch([]float64{1})
	s.Observe(0)
	s.Observe(2)
	s.Reset()
	if s.Total() != 0 || s.Count(0) != 0 || s.Count(1) != 0 {
		t.Fatalf("reset left counts %v total %d", s.Counts(), s.Total())
	}
}
