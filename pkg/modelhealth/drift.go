package modelhealth

import (
	"math"
	"sync"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
)

// DefaultDriftFeatures are the canonical features monitored for drift by
// default: the workload axes that vary request-to-request. Hardware
// features (clock, cache, link speed, ...) are a per-deployment point mass
// — a cluster pins them to one value inside the training support — so
// scoring them against the multi-system training sweep would alert on
// every healthy deployment. Operators monitoring heterogeneous fleets can
// widen the set via Config.Features.
var DefaultDriftFeatures = []string{"num_nodes", "ppn", "log2_msg_size"}

// Drift status levels, ordered by severity. The overall status is the
// worst per-feature status.
type DriftStatus int

const (
	// DriftNoReference: the active bundle carries no feature_stats, so
	// there is nothing to score against (old bundles are tolerated).
	DriftNoReference DriftStatus = iota
	// DriftCollecting: a reference exists but no monitored feature has
	// completed a full window yet.
	DriftCollecting
	// DriftOK: every completed window scored below the WARN threshold.
	DriftOK
	// DriftWarn: some feature's last window scored in [warn, alert).
	DriftWarn
	// DriftAlert: some feature's last window scored at or above the alert
	// threshold — live traffic no longer looks like the training sweep.
	DriftAlert
)

// String returns the lowercase JSON form of the status.
func (s DriftStatus) String() string {
	switch s {
	case DriftNoReference:
		return "no_reference"
	case DriftCollecting:
		return "collecting"
	case DriftOK:
		return "ok"
	case DriftWarn:
		return "warn"
	case DriftAlert:
		return "alert"
	}
	return "unknown"
}

// GaugeValue maps the status onto the pmlmpi_drift_status gauge:
// -1 = no data, 0 = ok, 1 = warn, 2 = alert.
func (s DriftStatus) GaugeValue() float64 {
	switch s {
	case DriftOK:
		return 0
	case DriftWarn:
		return 1
	case DriftAlert:
		return 2
	}
	return -1
}

// warnFraction sets the WARN threshold as a fraction of the ALERT
// threshold, so the classic PSI pairing (0.1 warn / 0.25 alert) holds at
// the default alert level and scales with -drift-alert-psi.
const warnFraction = 0.4

// psiEpsilon is the Laplace smoothing count added to every bin on both
// sides of the PSI computation, keeping the score finite when a bin is
// empty on either side.
const psiEpsilon = 0.5

// smoothProps converts bin counts into Laplace-smoothed proportions.
func smoothProps(counts []uint64, total uint64) []float64 {
	k := float64(len(counts))
	denom := float64(total) + psiEpsilon*k
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = (float64(c) + psiEpsilon) / denom
	}
	return out
}

// psiAgainst computes the population stability index of the live counts
// against precomputed smoothed reference proportions. Pure and
// deterministic: fixed iteration order, no accumulator reuse.
func psiAgainst(live []uint64, liveTotal uint64, refProps []float64) float64 {
	denom := float64(liveTotal) + psiEpsilon*float64(len(refProps))
	var sum float64
	for i, rp := range refProps {
		q := (float64(live[i]) + psiEpsilon) / denom
		sum += (q - rp) * math.Log(q/rp)
	}
	return sum
}

// featureMonitor scores one canonical feature's live distribution against
// its training reference over tumbling count-based windows. A mutex
// serializes observations so window boundaries are exact — the same
// per-record locking cost class as the striped obs histograms — and the
// window sketch is reset in place, so the steady state allocates nothing.
type featureMonitor struct {
	name     string
	refProps []float64 // smoothed reference proportions, fixed at build

	mu         sync.Mutex
	window     *Sketch // current tumbling window, reset in place
	cumulative *Sketch // all observations since the reference was set
	scratch    []uint64
	windows    uint64  // completed windows
	lastPSI    float64 // PSI of the most recent completed window
	cumPSI     float64 // PSI of cumulative, recomputed at each rotation
}

func newFeatureMonitor(name string, d bundle.FeatureDist) *featureMonitor {
	return &featureMonitor{
		name:       name,
		refProps:   smoothProps(d.Counts, d.Total()),
		window:     MustSketch(d.Edges),
		cumulative: MustSketch(d.Edges),
		scratch:    make([]uint64, len(d.Counts)),
	}
}

// observe records one live value, rotating the window when it fills;
// reports whether a rotation (and so a fresh PSI score) happened.
func (m *featureMonitor) observe(v float64, windowSize int) bool {
	m.mu.Lock()
	m.window.Observe(v)
	m.cumulative.Observe(v)
	rotated := m.window.Total() >= uint64(windowSize)
	if rotated {
		liveTotal := m.window.CountsInto(m.scratch)
		m.lastPSI = psiAgainst(m.scratch, liveTotal, m.refProps)
		cumTotal := m.cumulative.CountsInto(m.scratch)
		m.cumPSI = psiAgainst(m.scratch, cumTotal, m.refProps)
		m.windows++
		m.window.Reset()
	}
	m.mu.Unlock()
	return rotated
}

// status grades the last completed window against the thresholds.
func (m *featureMonitor) status(alertPSI float64) (DriftStatus, float64, uint64) {
	m.mu.Lock()
	psi, windows := m.lastPSI, m.windows
	m.mu.Unlock()
	switch {
	case windows == 0:
		return DriftCollecting, 0, 0
	case psi >= alertPSI:
		return DriftAlert, psi, windows
	case psi >= alertPSI*warnFraction:
		return DriftWarn, psi, windows
	default:
		return DriftOK, psi, windows
	}
}

// FeatureDrift is one feature's entry in the /debug/drift report.
type FeatureDrift struct {
	Feature string `json:"feature"`
	Status  string `json:"status"`
	// LastPSI is the population-stability index of the most recent
	// completed window against the training reference.
	LastPSI float64 `json:"last_psi"`
	// CumulativePSI scores everything seen this generation.
	CumulativePSI float64 `json:"cumulative_psi"`
	// Windows is the number of completed windows.
	Windows uint64 `json:"windows"`
	// Pending is the fill level of the current (incomplete) window.
	Pending uint64 `json:"pending"`
	// Live is the cumulative live sketch for this generation.
	Live SketchSnapshot `json:"live"`
	// Reference is the training distribution scored against.
	Reference SketchSnapshot `json:"reference"`
}

// DriftReport is the /debug/drift payload.
type DriftReport struct {
	Status string `json:"status"`
	// Generation is the registry generation the live sketches describe.
	Generation uint64 `json:"generation"`
	// ReferenceSource echoes bundle.FeatureStats.Source when present.
	ReferenceSource string `json:"reference_source,omitempty"`
	// WindowSize is the observations-per-window rotation threshold.
	WindowSize int     `json:"window_size"`
	WarnPSI    float64 `json:"warn_psi"`
	AlertPSI   float64 `json:"alert_psi"`
	// Features lists monitored features in sorted name order; empty when
	// the active bundle has no feature_stats.
	Features []FeatureDrift `json:"features"`
}

// driftSet is the per-generation collection of feature monitors, indexed
// by canonical feature index for the hot path. Built whole on each
// generation swap and swapped in atomically, so in-flight observations
// always land in a coherent generation's sketches.
type driftSet struct {
	gen      uint64
	source   string
	byCanon  []*featureMonitor // len(bundle.CanonicalFeatures); nil = unmonitored
	monitors []*featureMonitor // sorted by name, for reports
	refs     map[string]bundle.FeatureDist
}

// newDriftSet builds monitors for every requested feature present in the
// bundle's stats. Returns a set with no monitors when stats is nil.
func newDriftSet(gen uint64, stats *bundle.FeatureStats, features []string) *driftSet {
	ds := &driftSet{gen: gen, byCanon: make([]*featureMonitor, len(bundle.CanonicalFeatures))}
	if stats == nil {
		return ds
	}
	ds.source = stats.Source
	ds.refs = stats.Features
	canonIndex := make(map[string]int, len(bundle.CanonicalFeatures))
	for i, n := range bundle.CanonicalFeatures {
		canonIndex[n] = i
	}
	seen := make(map[string]bool, len(features))
	for _, name := range features {
		if seen[name] {
			continue
		}
		seen[name] = true
		d, ok := stats.Features[name]
		if !ok {
			continue
		}
		idx, ok := canonIndex[name]
		if !ok {
			continue
		}
		m := newFeatureMonitor(name, d)
		ds.byCanon[idx] = m
		ds.monitors = append(ds.monitors, m)
	}
	// features was caller-ordered; keep report order stable by name.
	for i := 1; i < len(ds.monitors); i++ {
		for j := i; j > 0 && ds.monitors[j-1].name > ds.monitors[j].name; j-- {
			ds.monitors[j-1], ds.monitors[j] = ds.monitors[j], ds.monitors[j-1]
		}
	}
	return ds
}

// status is the worst per-feature status, or DriftNoReference with no
// monitors.
func (ds *driftSet) status(alertPSI float64) DriftStatus {
	if len(ds.monitors) == 0 {
		return DriftNoReference
	}
	worst := DriftCollecting
	sawWindow := false
	for _, m := range ds.monitors {
		st, _, windows := m.status(alertPSI)
		if windows > 0 {
			sawWindow = true
		}
		if st > worst {
			worst = st
		}
	}
	if !sawWindow {
		return DriftCollecting
	}
	if worst == DriftCollecting {
		return DriftOK
	}
	return worst
}

// report builds the features section of the drift report.
func (ds *driftSet) report(alertPSI float64) []FeatureDrift {
	out := make([]FeatureDrift, 0, len(ds.monitors))
	for _, m := range ds.monitors {
		st, _, _ := m.status(alertPSI)
		m.mu.Lock()
		fd := FeatureDrift{
			Feature:       m.name,
			Status:        st.String(),
			LastPSI:       m.lastPSI,
			CumulativePSI: m.cumPSI,
			Windows:       m.windows,
			Pending:       m.window.Total(),
			Live:          m.cumulative.Snapshot(),
		}
		m.mu.Unlock()
		d := ds.refs[m.name]
		fd.Reference = SketchSnapshot{
			Edges:  append([]float64(nil), d.Edges...),
			Counts: append([]uint64(nil), d.Counts...),
			Total:  d.Total(),
		}
		out = append(out, fd)
	}
	return out
}
