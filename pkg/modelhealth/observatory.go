package modelhealth

import (
	"sort"
	"sync"
	"sync/atomic"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// Config shapes the observatory. Zero values take the documented defaults,
// so Config{} is usable.
type Config struct {
	// Window is the observations-per-feature tumbling-window size for
	// drift scoring. Default 512.
	Window int
	// AlertPSI is the per-window population-stability index at which a
	// feature's drift status becomes ALERT; WARN sits at 40% of it, so the
	// default 0.25 gives the classic 0.1/0.25 PSI pairing.
	AlertPSI float64
	// MarginWarn is the vote-margin below which a decision counts as
	// low-confidence. Default 0.15.
	MarginWarn float64
	// FlightRecSize is the anomaly flight-recorder capacity. Default 256.
	FlightRecSize int
	// Features lists the canonical features to score for drift. Default
	// DefaultDriftFeatures (the workload axes).
	Features []string
	// MaxGenerations bounds how many per-generation scorecards are kept.
	// Default 8; the active generation's card is never evicted.
	MaxGenerations int
}

// Config defaults, exported so flag declarations can echo them.
const (
	DefaultWindow        = 512
	DefaultAlertPSI      = 0.25
	DefaultMarginWarn    = 0.15
	DefaultFlightRecSize = 256
)

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.AlertPSI <= 0 {
		c.AlertPSI = DefaultAlertPSI
	}
	if c.MarginWarn <= 0 {
		c.MarginWarn = DefaultMarginWarn
	}
	if c.FlightRecSize <= 0 {
		c.FlightRecSize = DefaultFlightRecSize
	}
	if len(c.Features) == 0 {
		c.Features = DefaultDriftFeatures
	}
	if c.MaxGenerations <= 0 {
		c.MaxGenerations = 8
	}
	return c
}

// marginEdges are the fixed vote-margin sketch/histogram bins: 0.05-wide
// steps across [0,1].
var marginEdges = func() []float64 {
	out := make([]float64, 19)
	for i := range out {
		out[i] = float64(i+1) * 0.05
	}
	return out
}()

// latencyEdgesNS are the per-generation latency sketch bins: 1µs to ~1s in
// nanoseconds, doubling.
var latencyEdgesNS = obs.ExponentialBuckets(1e3, 2, 21)

// tailRecomputeMask: the latency-tail threshold is re-derived from the
// active card's latency sketch every (mask+1) decisions.
const tailRecomputeMask = 1023

// tailMinSamples gates the latency-tail anomaly trigger until the sketch
// has enough data to make a p99 meaningful.
const tailMinSamples = 512

// marginCell is the pre-bound per-collective margin instrument pair; the
// copy-on-write cell map keeps the hot path free of label joins.
type marginCell struct {
	hist obs.BoundHistogram
	low  obs.BoundCounter
}

// genCard is one generation's scorecard: pure atomic counters plus two
// sketches, so recording from the Select path costs a handful of atomic
// adds. Frozen drift fields are written once at swap under Observatory.mu.
type genCard struct {
	gen       uint64
	decisions atomic.Uint64
	cacheHits atomic.Uint64
	lowMargin atomic.Uint64
	margins   *Sketch
	latency   *Sketch

	shadowSamples atomic.Uint64
	shadowAgree   atomic.Uint64

	// Frozen at generation swap (guarded by Observatory.mu): the drift
	// picture at the moment this generation stopped being active.
	frozenDriftStatus string
	frozenDriftScores map[string]float64
}

func newGenCard(gen uint64) *genCard {
	return &genCard{
		gen:     gen,
		margins: MustSketch(marginEdges),
		latency: MustSketch(latencyEdgesNS),
	}
}

// Observatory is the model-health hub fed by every Select. All hot-path
// methods are allocation-free; reporting and gauge refresh happen on the
// admin path.
type Observatory struct {
	cfg Config

	drift       atomic.Pointer[driftSet]
	driftStatus atomic.Int64 // DriftStatus, updated at rotation/refresh/swap

	mu      sync.Mutex
	cards   map[uint64]*genCard
	order   []uint64 // insertion order for eviction
	current atomic.Pointer[genCard]

	flight        *FlightRecorder
	latencyTailNS atomic.Int64

	totalDecisions atomic.Uint64
	lowDecisions   atomic.Uint64

	cells  atomic.Pointer[map[string]*marginCell]
	cellMu sync.Mutex

	marginHist    *obs.Histogram
	lowCounter    *obs.Counter
	cObservations obs.BoundCounter
	cFlightLow    obs.BoundCounter
	cFlightDrift  obs.BoundCounter
	cFlightTail   obs.BoundCounter
	gPSI          *obs.Gauge
	gCumPSI       *obs.Gauge
	gWindows      *obs.Gauge
	gStatus       *obs.Gauge
	gRefLoaded    *obs.Gauge
	gLowRate      *obs.Gauge
	gFlightOcc    *obs.Gauge
}

// New builds an observatory and registers its instruments (pmlmpi_drift_*,
// pmlmpi_margin_*, pmlmpi_flightrec_*) in reg.
func New(reg *obs.Registry, cfg Config) *Observatory {
	cfg = cfg.withDefaults()
	o := &Observatory{
		cfg:    cfg,
		cards:  make(map[uint64]*genCard),
		flight: NewFlightRecorder(cfg.FlightRecSize),
		marginHist: reg.Histogram("pmlmpi_margin_vote",
			"Vote margin (top-two probability gap) of every selection.", marginEdges, "collective"),
		lowCounter: reg.Counter("pmlmpi_margin_low_total",
			"Selections whose vote margin fell below the warn threshold.", "collective"),
		gPSI: reg.Gauge("pmlmpi_drift_psi",
			"Population-stability index of the last completed drift window per feature.", "feature"),
		gCumPSI: reg.Gauge("pmlmpi_drift_cumulative_psi",
			"Population-stability index of all observations this generation per feature.", "feature"),
		gWindows: reg.Gauge("pmlmpi_drift_windows_completed",
			"Completed drift windows per feature this generation.", "feature"),
		gStatus: reg.Gauge("pmlmpi_drift_status",
			"Overall drift status: -1 no data, 0 ok, 1 warn, 2 alert."),
		gRefLoaded: reg.Gauge("pmlmpi_drift_reference_loaded",
			"1 when the active bundle carries a training-distribution reference."),
		gLowRate: reg.Gauge("pmlmpi_margin_low_rate",
			"Fraction of selections below the margin warn threshold."),
		gFlightOcc: reg.Gauge("pmlmpi_flightrec_occupancy",
			"Anomaly flight-recorder slots currently holding a record."),
	}
	o.cObservations = reg.Counter("pmlmpi_drift_observations_total",
		"Selections fed into the model-health observatory.").Bind()
	flightTotal := reg.Counter("pmlmpi_flightrec_records_total",
		"Anomalous decisions captured by the flight recorder, by trigger.", "reason")
	o.cFlightLow = flightTotal.Bind("low_margin")
	o.cFlightDrift = flightTotal.Bind("drift_alert")
	o.cFlightTail = flightTotal.Bind("latency_tail")
	reg.Gauge("pmlmpi_margin_warn_threshold",
		"Configured vote-margin warn threshold.").Set(cfg.MarginWarn)
	reg.Gauge("pmlmpi_flightrec_capacity",
		"Anomaly flight-recorder ring capacity.").Set(float64(o.flight.Capacity()))
	o.gStatus.Set(DriftNoReference.GaugeValue())
	o.gRefLoaded.Set(0)
	o.driftStatus.Store(int64(DriftNoReference))
	empty := make(map[string]*marginCell)
	o.cells.Store(&empty)
	o.drift.Store(newDriftSet(0, nil, cfg.Features))
	return o
}

// MarginWarn returns the configured low-margin threshold.
func (o *Observatory) MarginWarn() float64 { return o.cfg.MarginWarn }

// Flight returns the anomaly flight recorder.
func (o *Observatory) Flight() *FlightRecorder { return o.flight }

// cell returns the pre-bound instruments for a collective, creating them
// off the hot path on first sight via copy-on-write.
func (o *Observatory) cell(collective string) *marginCell {
	if c, ok := (*o.cells.Load())[collective]; ok {
		return c
	}
	o.cellMu.Lock()
	defer o.cellMu.Unlock()
	cur := *o.cells.Load()
	if c, ok := cur[collective]; ok {
		return c
	}
	next := make(map[string]*marginCell, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	c := &marginCell{
		hist: o.marginHist.Bind(collective),
		low:  o.lowCounter.Bind(collective),
	}
	next[collective] = c
	o.cells.Store(&next)
	return c
}

// card returns the scorecard for a generation, creating it off the hot
// path on first sight.
func (o *Observatory) card(gen uint64) *genCard {
	if c := o.current.Load(); c != nil && c.gen == gen {
		return c
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.cardLocked(gen)
}

func (o *Observatory) cardLocked(gen uint64) *genCard {
	if c, ok := o.cards[gen]; ok {
		return c
	}
	c := newGenCard(gen)
	o.cards[gen] = c
	o.order = append(o.order, gen)
	cur := o.current.Load()
	if cur == nil || gen >= cur.gen {
		o.current.Store(c)
		cur = c
	}
	for len(o.order) > o.cfg.MaxGenerations {
		victim := o.order[0]
		if victim == cur.gen {
			break
		}
		o.order = o.order[1:]
		delete(o.cards, victim)
	}
	return c
}

// RecordDecision feeds one completed selection into drift sketches, margin
// telemetry, the generation scorecard, and — when anomalous — the flight
// recorder. Called once per Select off the response path; allocation-free
// in the steady state (new collectives and generations allocate once).
// canonIdx[i] names the canonical feature index of x[i]; neither slice is
// retained.
func (o *Observatory) RecordDecision(gen uint64, collective, algorithm string,
	canonIdx []int, x []float64, margin float64, cached bool, latencyNS int64) {
	o.cObservations.Inc()
	o.totalDecisions.Add(1)

	low := margin < o.cfg.MarginWarn
	cell := o.cell(collective)
	cell.hist.Observe(margin)
	if low {
		cell.low.Inc()
		o.lowDecisions.Add(1)
	}

	card := o.card(gen)
	n := card.decisions.Add(1)
	if cached {
		card.cacheHits.Add(1)
	}
	if low {
		card.lowMargin.Add(1)
	}
	card.margins.Observe(margin)
	card.latency.Observe(float64(latencyNS))

	// Drift sketches are generation-scoped: a straggling decision from a
	// just-retired generation must not contaminate the fresh window, the
	// same isolation the generation-prefixed decision cache gives.
	ds := o.drift.Load()
	if ds.gen == gen {
		rotated := false
		for i, ci := range canonIdx {
			if ci < 0 || ci >= len(ds.byCanon) {
				continue
			}
			if m := ds.byCanon[ci]; m != nil && m.observe(x[i], o.cfg.Window) {
				rotated = true
			}
		}
		if rotated {
			o.driftStatus.Store(int64(ds.status(o.cfg.AlertPSI)))
		}
	}

	// Re-derive the latency-tail threshold periodically from this
	// generation's own latency sketch (p99 bracket upper edge).
	if n&tailRecomputeMask == 0 && card.latency.Total() >= tailMinSamples {
		_, hi := card.latency.QuantileBracket(0.99)
		o.latencyTailNS.Store(int64(hi))
	}

	var reasons uint8
	if low {
		reasons |= ReasonLowMargin
	}
	drift := DriftStatus(o.driftStatus.Load())
	if drift == DriftAlert {
		reasons |= ReasonDriftAlert
	}
	if tail := o.latencyTailNS.Load(); tail > 0 && latencyNS > tail {
		reasons |= ReasonLatencyTail
	}
	if reasons != 0 {
		o.flight.Record(gen, collective, algorithm, canonIdx, x, margin, cached, latencyNS, reasons, drift)
		if reasons&ReasonLowMargin != 0 {
			o.cFlightLow.Inc()
		}
		if reasons&ReasonDriftAlert != 0 {
			o.cFlightDrift.Inc()
		}
		if reasons&ReasonLatencyTail != 0 {
			o.cFlightTail.Inc()
		}
	}
}

// RecordShadow attributes one shadow-evaluation outcome to the candidate
// generation's scorecard, building the before/after quality record a
// promotion decision wants.
func (o *Observatory) RecordShadow(candidateGen uint64, agree bool) {
	card := o.card(candidateGen)
	card.shadowSamples.Add(1)
	if agree {
		card.shadowAgree.Add(1)
	}
}

// OnSwap rotates generation-scoped state when the registry promotes or
// rolls back: the outgoing generation's drift picture is frozen onto its
// scorecard, fresh drift sketches are built from the new bundle's
// embedded training reference (absent stats disable drift scoring), and a
// fresh scorecard becomes current. Called from the selector's registry
// subscription, right next to the decision-cache flush.
func (o *Observatory) OnSwap(gen uint64, b *bundle.Bundle) {
	var stats *bundle.FeatureStats
	if b != nil {
		stats = b.Stats
	}
	next := newDriftSet(gen, stats, o.cfg.Features)

	o.mu.Lock()
	prev := o.drift.Load()
	if prev != nil && prev.gen != 0 && prev.gen != gen {
		if card, ok := o.cards[prev.gen]; ok {
			card.frozenDriftStatus = prev.status(o.cfg.AlertPSI).String()
			card.frozenDriftScores = driftScores(prev)
		}
	}
	o.drift.Store(next)
	o.cardLocked(gen)
	o.mu.Unlock()

	o.latencyTailNS.Store(0)
	st := next.status(o.cfg.AlertPSI)
	o.driftStatus.Store(int64(st))
	o.gStatus.Set(st.GaugeValue())
	if len(next.monitors) > 0 {
		o.gRefLoaded.Set(1)
	} else {
		o.gRefLoaded.Set(0)
	}
}

// driftScores snapshots each monitor's last-window PSI.
func driftScores(ds *driftSet) map[string]float64 {
	out := make(map[string]float64, len(ds.monitors))
	for _, m := range ds.monitors {
		m.mu.Lock()
		if m.windows > 0 {
			out[m.name] = m.lastPSI
		}
		m.mu.Unlock()
	}
	return out
}

// lowMarginRate is lowDecisions/totalDecisions (0 when idle).
func (o *Observatory) lowMarginRate() float64 {
	total := o.totalDecisions.Load()
	if total == 0 {
		return 0
	}
	return float64(o.lowDecisions.Load()) / float64(total)
}

// Refresh re-derives every exported gauge from current state; called on
// each /metrics scrape so the exposition is current without a background
// goroutine.
func (o *Observatory) Refresh() {
	ds := o.drift.Load()
	st := ds.status(o.cfg.AlertPSI)
	o.driftStatus.Store(int64(st))
	o.gStatus.Set(st.GaugeValue())
	for _, m := range ds.monitors {
		m.mu.Lock()
		psi, cum, windows := m.lastPSI, m.cumPSI, m.windows
		m.mu.Unlock()
		o.gPSI.Set(psi, m.name)
		o.gCumPSI.Set(cum, m.name)
		o.gWindows.Set(float64(windows), m.name)
	}
	o.gLowRate.Set(o.lowMarginRate())
	o.gFlightOcc.Set(float64(o.flight.Occupancy()))
}

// DriftReport builds the /debug/drift payload.
func (o *Observatory) DriftReport() DriftReport {
	ds := o.drift.Load()
	return DriftReport{
		Status:          ds.status(o.cfg.AlertPSI).String(),
		Generation:      ds.gen,
		ReferenceSource: ds.source,
		WindowSize:      o.cfg.Window,
		WarnPSI:         o.cfg.AlertPSI * warnFraction,
		AlertPSI:        o.cfg.AlertPSI,
		Features:        ds.report(o.cfg.AlertPSI),
	}
}

// DriftState returns the overall drift status and the total completed
// drift windows across monitored features for the active generation. The
// window count only grows within a generation, so callers polling for a
// sustained ALERT (e.g. the retrain controller) can use the delta to count
// how many windows completed while the status held.
func (o *Observatory) DriftState() (DriftStatus, uint64) {
	ds := o.drift.Load()
	var windows uint64
	for _, m := range ds.monitors {
		m.mu.Lock()
		windows += m.windows
		m.mu.Unlock()
	}
	return ds.status(o.cfg.AlertPSI), windows
}

// Scorecard is one generation's quality record, as served on
// /debug/scorecards.
type Scorecard struct {
	Generation    uint64  `json:"generation"`
	Active        bool    `json:"active"`
	Decisions     uint64  `json:"decisions"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	LowMargin     uint64  `json:"low_margin"`
	LowMarginRate float64 `json:"low_margin_rate"`
	MarginP10     float64 `json:"margin_p10"`
	MarginP50     float64 `json:"margin_p50"`
	MarginP90     float64 `json:"margin_p90"`
	LatencyP50NS  float64 `json:"latency_p50_ns"`
	LatencyP99NS  float64 `json:"latency_p99_ns"`
	ShadowSamples uint64  `json:"shadow_samples"`
	// ShadowAgreeRate is the fraction of shadow evaluations (taken while
	// this generation was the staged candidate) that agreed with the
	// then-active generation. Zero with no samples.
	ShadowAgreeRate float64 `json:"shadow_agree_rate"`
	// DriftStatus/DriftScores are live for the active generation and
	// frozen at swap for retired ones.
	DriftStatus string             `json:"drift_status"`
	DriftScores map[string]float64 `json:"drift_scores,omitempty"`
}

func (o *Observatory) scorecard(card *genCard, active bool) Scorecard {
	sc := Scorecard{
		Generation:    card.gen,
		Active:        active,
		Decisions:     card.decisions.Load(),
		CacheHits:     card.cacheHits.Load(),
		LowMargin:     card.lowMargin.Load(),
		MarginP10:     card.margins.Quantile(0.10),
		MarginP50:     card.margins.Quantile(0.50),
		MarginP90:     card.margins.Quantile(0.90),
		LatencyP50NS:  card.latency.Quantile(0.50),
		LatencyP99NS:  card.latency.Quantile(0.99),
		ShadowSamples: card.shadowSamples.Load(),
	}
	if sc.Decisions > 0 {
		sc.CacheHitRate = float64(sc.CacheHits) / float64(sc.Decisions)
		sc.LowMarginRate = float64(sc.LowMargin) / float64(sc.Decisions)
	}
	if sc.ShadowSamples > 0 {
		sc.ShadowAgreeRate = float64(card.shadowAgree.Load()) / float64(sc.ShadowSamples)
	}
	if active {
		ds := o.drift.Load()
		sc.DriftStatus = ds.status(o.cfg.AlertPSI).String()
		sc.DriftScores = driftScores(ds)
	} else {
		sc.DriftStatus = card.frozenDriftStatus
		sc.DriftScores = card.frozenDriftScores
	}
	return sc
}

// Scorecards returns every retained generation's scorecard, newest first.
func (o *Observatory) Scorecards() []Scorecard {
	o.mu.Lock()
	cards := make([]*genCard, 0, len(o.cards))
	for _, c := range o.cards {
		cards = append(cards, c)
	}
	cur := o.current.Load()
	o.mu.Unlock()
	sort.Slice(cards, func(a, b int) bool { return cards[a].gen > cards[b].gen })
	out := make([]Scorecard, 0, len(cards))
	for _, c := range cards {
		out = append(out, o.scorecard(c, cur != nil && c.gen == cur.gen))
	}
	return out
}

// ActiveScorecard returns the current generation's scorecard, or false
// before any generation was seen.
func (o *Observatory) ActiveScorecard() (Scorecard, bool) {
	cur := o.current.Load()
	if cur == nil {
		return Scorecard{}, false
	}
	return o.scorecard(cur, true), true
}

// Summary is the /healthz model_health block.
type Summary struct {
	DriftStatus        string  `json:"drift_status"`
	LowMarginRate      float64 `json:"low_margin_rate"`
	Decisions          uint64  `json:"decisions"`
	FlightRecOccupancy int     `json:"flightrecorder_occupancy"`
	FlightRecCapacity  int     `json:"flightrecorder_capacity"`
}

// Summary builds the /healthz block.
func (o *Observatory) Summary() Summary {
	return Summary{
		DriftStatus:        o.drift.Load().status(o.cfg.AlertPSI).String(),
		LowMarginRate:      o.lowMarginRate(),
		Decisions:          o.totalDecisions.Load(),
		FlightRecOccupancy: o.flight.Occupancy(),
		FlightRecCapacity:  o.flight.Capacity(),
	}
}
