package modelhealth

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
)

// Anomaly reasons, a bitmask so one decision can trip several.
const (
	// ReasonLowMargin: the vote margin fell below the -margin-warn
	// threshold — the forest nearly tied two algorithms.
	ReasonLowMargin uint8 = 1 << iota
	// ReasonDriftAlert: the decision happened while feature drift stood at
	// ALERT, so the model was operating off its training distribution.
	ReasonDriftAlert
	// ReasonLatencyTail: the select latency exceeded the rolling p99
	// threshold derived from the active generation's latency sketch.
	ReasonLatencyTail
)

// reasonNames renders a reason mask for reports, in bit order.
func reasonNames(mask uint8) []string {
	var out []string
	if mask&ReasonLowMargin != 0 {
		out = append(out, "low_margin")
	}
	if mask&ReasonDriftAlert != 0 {
		out = append(out, "drift_alert")
	}
	if mask&ReasonLatencyTail != 0 {
		out = append(out, "latency_tail")
	}
	return out
}

// flightStripes is the number of independent ring stripes. Writers pick a
// stripe round-robin off an atomic sequence, so concurrent anomaly bursts
// spread across locks instead of serializing. Must be a power of two.
const flightStripes = 8

// maxFlightFeatures bounds the feature vector captured per entry; it
// matches the selector's fixed stack buffer over bundle.CanonicalFeatures.
const maxFlightFeatures = 16

// flightEntry is one captured decision. Fixed-size by construction —
// feature values live in an inline array, strings are header copies — so
// recording into a preallocated slot allocates nothing.
type flightEntry struct {
	seq        uint64 // 0 = slot never written
	unixNanos  int64
	generation uint64
	collective string
	algorithm  string
	margin     float64
	cached     bool
	latencyNS  int64
	reasons    uint8
	drift      DriftStatus
	nFeat      uint8
	canon      [maxFlightFeatures]uint8
	vals       [maxFlightFeatures]float64
}

type flightStripe struct {
	mu      sync.Mutex
	entries []flightEntry
	next    int
	// Pad stripes apart so adjacent ring cursors don't false-share.
	_ [32]byte
}

// FlightRecorder is the bounded lock-striped anomaly ring: the last N
// anomalous decisions with full context, overwritten oldest-first per
// stripe. Writes are allocation-free; Dump reconstructs readable records.
type FlightRecorder struct {
	stripes  [flightStripes]flightStripe
	seq      atomic.Uint64
	capacity int
}

// NewFlightRecorder builds a recorder holding at least size entries
// (rounded up to a multiple of the stripe count; minimum one per stripe).
func NewFlightRecorder(size int) *FlightRecorder {
	perStripe := (size + flightStripes - 1) / flightStripes
	if perStripe < 1 {
		perStripe = 1
	}
	r := &FlightRecorder{capacity: perStripe * flightStripes}
	for i := range r.stripes {
		r.stripes[i].entries = make([]flightEntry, perStripe)
	}
	return r
}

// Capacity returns the actual ring capacity.
func (r *FlightRecorder) Capacity() int { return r.capacity }

// Record captures one anomalous decision. canonIdx and x are copied into
// the slot (truncated past maxFlightFeatures); nothing is retained.
func (r *FlightRecorder) Record(gen uint64, collective, algorithm string, canonIdx []int, x []float64,
	margin float64, cached bool, latencyNS int64, reasons uint8, drift DriftStatus) {
	seq := r.seq.Add(1)
	s := &r.stripes[seq&(flightStripes-1)]
	s.mu.Lock()
	e := &s.entries[s.next]
	s.next++
	if s.next == len(s.entries) {
		s.next = 0
	}
	e.seq = seq
	e.unixNanos = time.Now().UnixNano()
	e.generation = gen
	e.collective = collective
	e.algorithm = algorithm
	e.margin = margin
	e.cached = cached
	e.latencyNS = latencyNS
	e.reasons = reasons
	e.drift = drift
	n := len(canonIdx)
	if n > len(x) {
		n = len(x)
	}
	if n > maxFlightFeatures {
		n = maxFlightFeatures
	}
	e.nFeat = uint8(n)
	for i := 0; i < n; i++ {
		e.canon[i] = uint8(canonIdx[i])
		e.vals[i] = x[i]
	}
	s.mu.Unlock()
}

// Occupancy returns the number of slots holding a record.
func (r *FlightRecorder) Occupancy() int {
	n := 0
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for j := range s.entries {
			if s.entries[j].seq != 0 {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// FlightRecord is one dumped anomaly, as served on /debug/flightrecorder.
type FlightRecord struct {
	Seq        uint64             `json:"seq"`
	Time       time.Time          `json:"time"`
	Generation uint64             `json:"generation"`
	Collective string             `json:"collective"`
	Algorithm  string             `json:"algorithm"`
	Margin     float64            `json:"margin"`
	Cached     bool               `json:"cached"`
	LatencyNS  int64              `json:"latency_ns"`
	Reasons    []string           `json:"reasons"`
	Drift      string             `json:"drift_status"`
	Features   map[string]float64 `json:"features"`
}

// Dump returns every captured record, oldest first by sequence number.
// Feature names are reconstructed from the canonical index table.
func (r *FlightRecorder) Dump() []FlightRecord {
	var out []FlightRecord
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		for j := range s.entries {
			e := &s.entries[j]
			if e.seq == 0 {
				continue
			}
			rec := FlightRecord{
				Seq:        e.seq,
				Time:       time.Unix(0, e.unixNanos).UTC(),
				Generation: e.generation,
				Collective: e.collective,
				Algorithm:  e.algorithm,
				Margin:     e.margin,
				Cached:     e.cached,
				LatencyNS:  e.latencyNS,
				Reasons:    reasonNames(e.reasons),
				Drift:      e.drift.String(),
				Features:   make(map[string]float64, e.nFeat),
			}
			for k := 0; k < int(e.nFeat); k++ {
				ci := int(e.canon[k])
				if ci < len(bundle.CanonicalFeatures) {
					rec.Features[bundle.CanonicalFeatures[ci]] = e.vals[k]
				}
			}
			out = append(out, rec)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}
