package modelhealth

import (
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

func canonIndexOf(t *testing.T, name string) int {
	t.Helper()
	for i, n := range bundle.CanonicalFeatures {
		if n == name {
			return i
		}
	}
	t.Fatalf("feature %q is not canonical", name)
	return -1
}

func testStats() *bundle.FeatureStats {
	return &bundle.FeatureStats{
		Source: "unit-test-sweep",
		Features: map[string]bundle.FeatureDist{
			"num_nodes": uniformRef(),
		},
	}
}

// TestObservatoryGenerationIsolationOnSwap is the mid-stream-promote
// regression: a promotion must freeze the outgoing generation's drift
// picture onto its scorecard, start the new generation's window from
// scratch, and ignore straggling decisions still tagged with the old
// generation — the same isolation the generation-prefixed decision cache
// provides.
func TestObservatoryGenerationIsolationOnSwap(t *testing.T) {
	o := New(obs.NewRegistry(), Config{Window: 4, FlightRecSize: 16})
	b := &bundle.Bundle{Stats: testStats()}
	ci := []int{canonIndexOf(t, "num_nodes")}

	o.OnSwap(1, b)
	if rep := o.DriftReport(); rep.Generation != 1 || rep.Status != "collecting" {
		t.Fatalf("post-swap report = gen %d status %s, want gen 1 collecting", rep.Generation, rep.Status)
	}

	// Eight decisions far outside the training support: two completed
	// windows, both alerting.
	for i := 0; i < 8; i++ {
		o.RecordDecision(1, "allgather", "ring", ci, []float64{1e9}, 0.5, false, 1000)
	}
	if rep := o.DriftReport(); rep.Status != "alert" {
		t.Fatalf("shifted gen-1 status = %s, want alert", rep.Status)
	}

	// Promote mid-stream.
	o.OnSwap(2, b)
	rep := o.DriftReport()
	if rep.Generation != 2 {
		t.Fatalf("post-promote generation = %d, want 2", rep.Generation)
	}
	if rep.Status != "collecting" {
		t.Fatalf("post-promote status = %s, want collecting (fresh sketches)", rep.Status)
	}
	if rep.ReferenceSource != "unit-test-sweep" {
		t.Fatalf("reference source = %q", rep.ReferenceSource)
	}

	// Gen-2 traffic matches the reference exactly (one value per bin).
	for _, v := range []float64{5, 15, 25, 35} {
		o.RecordDecision(2, "allgather", "ring", ci, []float64{v}, 0.5, false, 1000)
	}
	if rep := o.DriftReport(); rep.Status != "ok" {
		t.Fatalf("in-distribution gen-2 status = %s, want ok", rep.Status)
	}

	// A straggler still tagged gen 1 must not touch gen 2's sketches.
	before := o.DriftReport().Features[0]
	o.RecordDecision(1, "allgather", "ring", ci, []float64{1e9}, 0.5, false, 1000)
	after := o.DriftReport().Features[0]
	if after.Pending != before.Pending || after.Live.Total != before.Live.Total {
		t.Fatalf("gen-1 straggler contaminated gen-2 sketches: pending %d->%d live %d->%d",
			before.Pending, after.Pending, before.Live.Total, after.Live.Total)
	}
	if rep := o.DriftReport(); rep.Status != "ok" {
		t.Fatalf("status after straggler = %s, want ok", rep.Status)
	}

	// Scorecards: counts attribute per generation, gen 1's drift picture is
	// frozen at the moment of promotion.
	cards := o.Scorecards()
	if len(cards) != 2 {
		t.Fatalf("scorecards = %d, want 2", len(cards))
	}
	g2, g1 := cards[0], cards[1] // newest first
	if g2.Generation != 2 || g1.Generation != 1 {
		t.Fatalf("scorecard order = gen %d, gen %d", g2.Generation, g1.Generation)
	}
	if !g2.Active || g1.Active {
		t.Fatalf("active flags = gen2 %v gen1 %v", g2.Active, g1.Active)
	}
	if g1.Decisions != 9 { // 8 pre-promote + the straggler
		t.Fatalf("gen-1 decisions = %d, want 9", g1.Decisions)
	}
	if g2.Decisions != 4 {
		t.Fatalf("gen-2 decisions = %d, want 4", g2.Decisions)
	}
	if g1.DriftStatus != "alert" {
		t.Fatalf("gen-1 frozen drift status = %q, want alert", g1.DriftStatus)
	}
	if _, ok := g1.DriftScores["num_nodes"]; !ok {
		t.Fatalf("gen-1 frozen drift scores missing num_nodes: %v", g1.DriftScores)
	}
	if g2.DriftStatus != "ok" {
		t.Fatalf("gen-2 live drift status = %q, want ok", g2.DriftStatus)
	}

	active, ok := o.ActiveScorecard()
	if !ok || active.Generation != 2 {
		t.Fatalf("active scorecard = %+v ok=%v, want gen 2", active, ok)
	}
}

func TestObservatoryMarginTelemetryAndFlightCapture(t *testing.T) {
	o := New(obs.NewRegistry(), Config{Window: 4, MarginWarn: 0.2, FlightRecSize: 16})
	o.OnSwap(1, &bundle.Bundle{Stats: testStats()})
	ci := []int{canonIndexOf(t, "num_nodes")}

	// Three confident decisions, one low-margin; feature values spread one
	// per reference bin so the completed window scores ok.
	for i, v := range []float64{5, 15, 25} {
		o.RecordDecision(1, "broadcast", "btree", ci, []float64{v}, 0.8, i == 0, 1000)
	}
	o.RecordDecision(1, "broadcast", "btree", ci, []float64{35}, 0.05, false, 1000)

	sum := o.Summary()
	if sum.Decisions != 4 {
		t.Fatalf("summary decisions = %d, want 4", sum.Decisions)
	}
	if sum.LowMarginRate != 0.25 {
		t.Fatalf("low-margin rate = %v, want 0.25", sum.LowMarginRate)
	}
	if sum.DriftStatus != "ok" {
		t.Fatalf("summary drift = %s, want ok (window of 4 in-dist values)", sum.DriftStatus)
	}
	if sum.FlightRecCapacity != 16 {
		t.Fatalf("flight capacity = %d", sum.FlightRecCapacity)
	}
	if sum.FlightRecOccupancy != 1 {
		t.Fatalf("flight occupancy = %d, want 1 (the low-margin decision)", sum.FlightRecOccupancy)
	}

	recs := o.Flight().Dump()
	if len(recs) != 1 {
		t.Fatalf("flight records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.Margin != 0.05 || r.Collective != "broadcast" || r.Algorithm != "btree" || r.Generation != 1 {
		t.Fatalf("flight record = %+v", r)
	}
	if len(r.Reasons) != 1 || r.Reasons[0] != "low_margin" {
		t.Fatalf("flight reasons = %v, want [low_margin]", r.Reasons)
	}
	if got := r.Features["num_nodes"]; got != 35 {
		t.Fatalf("flight features = %v, want num_nodes=35", r.Features)
	}

	// Push the drift state to alert; subsequent decisions carry the
	// drift_alert reason even at high margin.
	for i := 0; i < 4; i++ {
		o.RecordDecision(1, "broadcast", "btree", ci, []float64{1e9}, 0.9, false, 1000)
	}
	o.RecordDecision(1, "broadcast", "btree", ci, []float64{1e9}, 0.9, false, 1000)
	recs = o.Flight().Dump()
	last := recs[len(recs)-1]
	found := false
	for _, reason := range last.Reasons {
		if reason == "drift_alert" {
			found = true
		}
	}
	if !found {
		t.Fatalf("decision under drift alert carried reasons %v, want drift_alert", last.Reasons)
	}
	if last.Drift != "alert" {
		t.Fatalf("flight drift field = %s, want alert", last.Drift)
	}

	// Refresh re-derives gauges without panicking on live state.
	o.Refresh()
}

func TestRecordShadowAttribution(t *testing.T) {
	o := New(obs.NewRegistry(), Config{})
	o.RecordShadow(3, true)
	o.RecordShadow(3, true)
	o.RecordShadow(3, false)

	cards := o.Scorecards()
	if len(cards) != 1 || cards[0].Generation != 3 {
		t.Fatalf("scorecards = %+v", cards)
	}
	if cards[0].ShadowSamples != 3 {
		t.Fatalf("shadow samples = %d, want 3", cards[0].ShadowSamples)
	}
	if got := cards[0].ShadowAgreeRate; got < 0.66 || got > 0.67 {
		t.Fatalf("shadow agree rate = %v, want 2/3", got)
	}
}

func TestScorecardEviction(t *testing.T) {
	o := New(obs.NewRegistry(), Config{MaxGenerations: 3})
	for gen := uint64(1); gen <= 6; gen++ {
		o.OnSwap(gen, nil)
	}
	cards := o.Scorecards()
	if len(cards) != 3 {
		t.Fatalf("retained %d cards, want 3", len(cards))
	}
	if cards[0].Generation != 6 || cards[2].Generation != 4 {
		t.Fatalf("retained generations %d..%d, want 6..4", cards[0].Generation, cards[2].Generation)
	}
}

func TestObservatoryNoReferenceBundle(t *testing.T) {
	// Bundles without feature_stats (all pre-existing ones) must be
	// tolerated: no drift scoring, everything else live.
	o := New(obs.NewRegistry(), Config{})
	o.OnSwap(1, &bundle.Bundle{})
	ci := []int{canonIndexOf(t, "num_nodes")}
	o.RecordDecision(1, "allgather", "ring", ci, []float64{4}, 0.7, false, 1000)

	rep := o.DriftReport()
	if rep.Status != "no_reference" || len(rep.Features) != 0 {
		t.Fatalf("no-stats report = %+v, want no_reference with no features", rep)
	}
	if sum := o.Summary(); sum.DriftStatus != "no_reference" || sum.Decisions != 1 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestFlightRecorderCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{10, 16}, {0, 8}, {-5, 8}, {8, 8}, {256, 256}, {257, 264},
	} {
		if got := NewFlightRecorder(tc.in).Capacity(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Capacity() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	fr := NewFlightRecorder(16)
	for i := 0; i < 40; i++ {
		fr.Record(1, "allgather", "ring", []int{0}, []float64{float64(i)}, 0.1, false, 100, ReasonLowMargin, DriftOK)
	}
	if occ := fr.Occupancy(); occ != 16 {
		t.Fatalf("occupancy = %d, want 16 after wraparound", occ)
	}
	recs := fr.Dump()
	if len(recs) != 16 {
		t.Fatalf("dump = %d records, want 16", len(recs))
	}
	// Round-robin striping over 8 stripes x 2 slots keeps exactly the last
	// 16 sequence numbers, returned oldest first.
	for i, r := range recs {
		if want := uint64(25 + i); r.Seq != want {
			t.Fatalf("dump[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}
}
