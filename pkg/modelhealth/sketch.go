// Package modelhealth is the model-quality observability layer: it watches
// every selection off the hot path (the same feeding pattern as pkg/slo)
// and answers the question pkg/obs cannot — is the *model* still right?
// It tracks feature drift against the training distribution embedded in
// the bundle (bundle.FeatureStats), vote-margin confidence telemetry,
// per-registry-generation scorecards, and an anomaly flight recorder that
// captures full context for the decisions worth auditing.
package modelhealth

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Sketch is a deterministic, mergeable histogram sketch over a fixed set
// of bin edges decided at construction. Bin i covers (edges[i-1],
// edges[i]]; the first bin is open below and the last (index len(edges))
// open above, so every finite value lands somewhere and the layout matches
// bundle.FeatureDist exactly. All state is integer counts updated with
// atomics: observations commute exactly (integer addition), so the final
// counts — and everything derived from them — are identical for any
// goroutine interleaving of the same multiset of observations, and Merge
// is exactly associative and commutative. No floating-point accumulators
// anywhere, by design.
type Sketch struct {
	edges  []float64
	counts []atomic.Uint64
	total  atomic.Uint64
}

// NewSketch builds a sketch over the given interior cut points, which must
// be non-empty, finite, and strictly ascending.
func NewSketch(edges []float64) (*Sketch, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("sketch: need at least one bin edge")
	}
	for i, e := range edges {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("sketch: edge %d is not finite", i)
		}
		if i > 0 && e <= edges[i-1] {
			return nil, fmt.Errorf("sketch: edges not strictly ascending at %d", i)
		}
	}
	return &Sketch{
		edges:  append([]float64(nil), edges...),
		counts: make([]atomic.Uint64, len(edges)+1),
	}, nil
}

// MustSketch is NewSketch for statically known edge sets; it panics on
// invalid edges.
func MustSketch(edges []float64) *Sketch {
	s, err := NewSketch(edges)
	if err != nil {
		panic("modelhealth: " + err.Error())
	}
	return s
}

// Buckets returns the number of bins (len(edges)+1).
func (s *Sketch) Buckets() int { return len(s.counts) }

// Edges returns a copy of the interior cut points.
func (s *Sketch) Edges() []float64 { return append([]float64(nil), s.edges...) }

// bucketOf is the shared binning rule: index of the first edge >= v, i.e.
// v <= edges[i] goes to bin i, anything past the last edge (including NaN,
// which compares false everywhere) to the overflow bin.
func bucketOf(edges []float64, v float64) int {
	return sort.SearchFloat64s(edges, v)
}

// Observe adds one observation. Safe for concurrent use; allocation-free.
func (s *Sketch) Observe(v float64) {
	s.counts[bucketOf(s.edges, v)].Add(1)
	s.total.Add(1)
}

// Total returns the number of observations recorded.
func (s *Sketch) Total() uint64 { return s.total.Load() }

// Count returns the count of one bin.
func (s *Sketch) Count(i int) uint64 { return s.counts[i].Load() }

// Counts returns a snapshot of all bin counts. Concurrent observers may
// land between bin loads; callers needing an exact cut must quiesce first.
func (s *Sketch) Counts() []uint64 {
	out := make([]uint64, len(s.counts))
	for i := range s.counts {
		out[i] = s.counts[i].Load()
	}
	return out
}

// CountsInto is Counts without the allocation; dst must have Buckets()
// entries. Returns the total across dst.
func (s *Sketch) CountsInto(dst []uint64) uint64 {
	var t uint64
	for i := range s.counts {
		dst[i] = s.counts[i].Load()
		t += dst[i]
	}
	return t
}

// Merge adds o's counts into s. Both sketches must share bit-identical
// edges. Elementwise integer addition makes merging exactly associative
// and commutative: any merge tree over the same set of sketches yields
// identical counts.
func (s *Sketch) Merge(o *Sketch) error {
	if len(s.edges) != len(o.edges) {
		return fmt.Errorf("sketch: merge edge count mismatch (%d vs %d)", len(s.edges), len(o.edges))
	}
	for i := range s.edges {
		if math.Float64bits(s.edges[i]) != math.Float64bits(o.edges[i]) {
			return fmt.Errorf("sketch: merge edge %d mismatch (%v vs %v)", i, s.edges[i], o.edges[i])
		}
	}
	var added uint64
	for i := range s.counts {
		c := o.counts[i].Load()
		s.counts[i].Add(c)
		added += c
	}
	s.total.Add(added)
	return nil
}

// Reset zeroes every bin. Not linearizable against concurrent Observe
// calls (an in-flight observation may survive or vanish); callers that
// need exact window boundaries serialize externally, as the drift monitor
// does.
func (s *Sketch) Reset() {
	for i := range s.counts {
		s.counts[i].Store(0)
	}
	s.total.Store(0)
}

// Quantile returns a point estimate of the q-quantile (q in [0,1]) by
// locating the bin holding the ceil(q*total)-th observation and linearly
// interpolating by rank inside it. The open outer bins collapse to their
// single known edge. Returns 0 on an empty sketch. The true q-quantile of
// the observed multiset always falls in the same bin as the estimate —
// the rank-error bound the property tests pin.
func (s *Sketch) Quantile(q float64) float64 {
	lo, hi, ok := s.quantileBin(q)
	if !ok {
		return 0
	}
	return lo + (hi-lo)*0.5
}

// QuantileBracket returns the [lo,hi] value range of the bin containing
// the q-quantile, or (0,0) on an empty sketch.
func (s *Sketch) QuantileBracket(q float64) (float64, float64) {
	lo, hi, _ := s.quantileBin(q)
	return lo, hi
}

func (s *Sketch) quantileBin(q float64) (lo, hi float64, ok bool) {
	total := s.Total()
	if total == 0 {
		return 0, 0, false
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range s.counts {
		c := s.counts[i].Load()
		if cum+c >= rank {
			switch {
			case i == 0:
				return s.edges[0], s.edges[0], true
			case i == len(s.edges):
				last := s.edges[len(s.edges)-1]
				return last, last, true
			default:
				return s.edges[i-1], s.edges[i], true
			}
		}
		cum += c
	}
	last := s.edges[len(s.edges)-1]
	return last, last, true
}

// SketchSnapshot is the JSON form of a sketch, used by the debug endpoints
// and pinned by a golden test.
type SketchSnapshot struct {
	Edges  []float64 `json:"edges"`
	Counts []uint64  `json:"counts"`
	Total  uint64    `json:"total"`
}

// Snapshot captures the sketch for serialization.
func (s *Sketch) Snapshot() SketchSnapshot {
	counts := s.Counts()
	var t uint64
	for _, c := range counts {
		t += c
	}
	return SketchSnapshot{Edges: s.Edges(), Counts: counts, Total: t}
}
