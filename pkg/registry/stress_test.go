package registry

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/selector"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// TestConcurrentSwapUnderLoad hammers Select and SelectBatch from many
// goroutines while generations are loaded, promoted, and rolled back
// underneath them. It asserts:
//
//   - zero failed requests: a swap must never be observable as an error;
//   - every decision is self-consistent: its Generation field names a
//     loaded generation and its Class equals what that generation's forest
//     (and no other's) computes for the same features — which also proves
//     the decision cache never crosses generations;
//   - generation ids handed out by the registry are strictly monotonic.
//
// Run under -race this is the swap-safety acceptance test of the registry.
// It runs once per forest evaluator mode: the compiled arena is shared by
// every goroutine touching a generation, so swap safety must hold for it
// exactly as for the pointer walk.
func TestConcurrentSwapUnderLoad(t *testing.T) {
	for _, mode := range []string{selector.EvalCompiled, selector.EvalPointer} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			concurrentSwapUnderLoad(t, mode)
		})
	}
}

func concurrentSwapUnderLoad(t *testing.T, evalMode string) {
	const (
		workers   = 8
		swaps     = 30
		batchSize = 8
	)
	o := obs.NewForTest()
	r := New(o, Config{Keep: 64}) // retain everything: verifiers need old bundles

	// All generations the test rotates through, verified against by id.
	// sync.Map: the swap loop stores while worker goroutines load.
	// Small forests keep the race-instrumented run fast; swap safety does
	// not depend on model size.
	var bundles sync.Map // uint64 -> *Generation
	load := func(seed int64) uint64 {
		data, err := synth.JSON(synth.Config{Seed: seed, Trees: 4, Depth: 3})
		if err != nil {
			t.Fatalf("synth.JSON: %v", err)
		}
		g, err := r.LoadData(data, fmt.Sprintf("mem://seed-%d", seed))
		if err != nil {
			t.Fatalf("load seed %d: %v", seed, err)
		}
		bundles.Store(g.ID(), g)
		return g.ID()
	}
	first := load(1)
	if _, err := r.Promote(first); err != nil {
		t.Fatalf("initial promote: %v", err)
	}

	sel := selector.NewFromSource(r, o, selector.Config{
		Cache:      cache.New(cache.Config{MaxEntries: 4096}, o.Registry),
		ForestEval: evalMode,
	})

	points := synth.Points(99, 32)
	ctx := context.Background()
	var failures atomic.Int64
	var verified atomic.Int64
	stopTraffic := make(chan struct{})
	var wg sync.WaitGroup

	verify := func(collective string, features map[string]float64, gen uint64, class int) error {
		v, ok := bundles.Load(gen)
		if !ok {
			return fmt.Errorf("decision names unknown generation %d", gen)
		}
		c, ok := v.(*Generation).Bundle().Collective(collective)
		if !ok {
			return fmt.Errorf("generation %d has no collective %q", gen, collective)
		}
		x, err := c.Vector(features)
		if err != nil {
			return err
		}
		pred, err := c.Forest.Predict(x)
		if err != nil {
			return err
		}
		if pred.Class != class {
			return fmt.Errorf("generation %d predicts class %d for this point, decision says %d (stale cross-generation result)",
				gen, pred.Class, class)
		}
		return nil
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for {
				select {
				case <-stopTraffic:
					return
				default:
				}
				p := points[i%len(points)]
				i++
				if i%3 == 0 {
					reqs := make([]selector.BatchRequest, batchSize)
					for j := range reqs {
						reqs[j] = selector.BatchRequest{Collective: "alltoall", Features: points[(i+j)%len(points)]}
					}
					for j, res := range sel.SelectBatch(ctx, reqs) {
						if res.Err != nil {
							failures.Add(1)
							t.Errorf("batch item failed during swap: %v", res.Err)
							continue
						}
						if err := verify("alltoall", reqs[j].Features, res.Decision.Generation, res.Decision.Class); err != nil {
							failures.Add(1)
							t.Errorf("batch verify: %v", err)
						}
						verified.Add(1)
					}
					continue
				}
				d, err := sel.Select(ctx, "allgather", p)
				if err != nil {
					failures.Add(1)
					t.Errorf("Select failed during swap: %v", err)
					continue
				}
				if err := verify("allgather", p, d.Generation, d.Class); err != nil {
					failures.Add(1)
					t.Errorf("verify: %v", err)
				}
				verified.Add(1)
			}
		}(w)
	}

	// Swap loop: stage a new generation, promote it, and every third swap
	// roll back, all while traffic flows. Loaded ids must be monotonic.
	lastID := first
	for s := 0; s < swaps; s++ {
		id := load(int64(s + 2))
		if id <= lastID {
			t.Fatalf("generation ids not monotonic: %d after %d", id, lastID)
		}
		lastID = id
		if _, err := r.Promote(id); err != nil {
			t.Fatalf("promote %d: %v", id, err)
		}
		if s%3 == 2 {
			if _, err := r.Rollback(); err != nil {
				t.Fatalf("rollback after promote %d: %v", id, err)
			}
		}
	}
	close(stopTraffic)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d failed or inconsistent requests during %d swaps", n, swaps)
	}
	if verified.Load() == 0 {
		t.Fatal("no decisions verified — traffic never ran")
	}
	t.Logf("verified %d decisions across %d promotes (+rollbacks) with zero failures", verified.Load(), swaps)
}
