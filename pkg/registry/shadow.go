// Shadow evaluation: while a candidate generation is staged, a configurable
// fraction of live Select traffic is also evaluated against the candidate's
// forests, off the response path, on a small worker pool. Per collective it
// records how often the candidate agrees with the serving model and how the
// candidate's evaluation latency compares to the live decision latency, so
// an operator can promote with evidence instead of hope. Results surface on
// /debug/shadow and as pmlmpi_shadow_* metrics.
package registry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// ShadowConfig tunes a Shadow.
type ShadowConfig struct {
	// Fraction of live decisions to shadow-evaluate, in [0,1]. Sampling is
	// deterministic (every round(1/Fraction)-th offer). 0 disables
	// shadowing entirely.
	Fraction float64
	// Workers evaluating candidates off the hot path (default 2).
	Workers int
	// QueueSize bounds the task queue; offers beyond it are dropped and
	// counted, never blocking the caller (default 256).
	QueueSize int
	// Namer maps (collective, class) to an algorithm name for agreement
	// comparison and reporting. Defaults to "class_<n>". Wire the
	// selector's AlgorithmName here so both sides name classes identically.
	Namer func(collective string, class int) string
}

// shadowTask is one live decision to re-evaluate against the candidate.
type shadowTask struct {
	gen        *Generation
	collective string
	features   map[string]float64
	algorithm  string
	latencyNS  int64
}

// Shadow mirrors a sample of live traffic onto a staged candidate
// generation. It implements selector.ShadowSink. The idle cost — no
// candidate staged, or sampling skips the request — is one atomic load
// (plus an atomic add when a candidate is staged).
type Shadow struct {
	o       *obs.Obs
	workers int

	fraction float64
	stride   atomic.Uint64 // 0 = disabled; else sample every stride-th offer
	counter  atomic.Uint64

	candidate  atomic.Pointer[Generation]
	namer      atomic.Pointer[func(collective string, class int) string]
	healthSink atomic.Pointer[func(candidateGen uint64, agree bool)]

	queue chan shadowTask
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	mu    sync.Mutex
	stats map[string]*shadowCell
	// candID/candHash freeze report identity even after the candidate is
	// promoted (and the pointer cleared), so the evidence stays readable.
	candID   uint64
	candHash string

	mSamples    *obs.Counter // {collective}
	mAgreements *obs.Counter // {collective}
	mErrors     *obs.Counter // {collective, reason}
	mDropped    *obs.Counter
	mLatency    *obs.Histogram // {collective}
}

// shadowCell accumulates per-collective agreement evidence.
type shadowCell struct {
	samples      uint64
	agreements   uint64
	errors       uint64
	sumPrimaryNS float64
	sumCandNS    float64
}

// NewShadow builds a shadow evaluator; call Start to launch its workers.
func NewShadow(o *obs.Obs, cfg ShadowConfig) *Shadow {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	queueSize := cfg.QueueSize
	if queueSize <= 0 {
		queueSize = 256
	}
	s := &Shadow{
		o:        o,
		workers:  workers,
		fraction: cfg.Fraction,
		queue:    make(chan shadowTask, queueSize),
		done:     make(chan struct{}),
		stats:    make(map[string]*shadowCell),
		mSamples: o.Registry.Counter("pmlmpi_shadow_samples_total",
			"Live decisions mirrored to the shadow candidate.", "collective"),
		mAgreements: o.Registry.Counter("pmlmpi_shadow_agreements_total",
			"Shadow evaluations whose algorithm matched the live decision.", "collective"),
		mErrors: o.Registry.Counter("pmlmpi_shadow_errors_total",
			"Shadow evaluations that failed.", "collective", "reason"),
		mDropped: o.Registry.Counter("pmlmpi_shadow_dropped_total",
			"Shadow samples dropped because the queue was full."),
		mLatency: o.Registry.Histogram("pmlmpi_shadow_candidate_duration_seconds",
			"Wall time of one candidate forest evaluation.", obs.LatencyBuckets, "collective"),
	}
	if cfg.Namer != nil {
		s.namer.Store(&cfg.Namer)
	}
	s.setFraction(cfg.Fraction)
	return s
}

func (s *Shadow) setFraction(f float64) {
	switch {
	case f <= 0:
		s.stride.Store(0)
	case f >= 1:
		s.stride.Store(1)
	default:
		s.stride.Store(uint64(math.Round(1 / f)))
	}
}

// SetNamer wires the algorithm namer after construction (the selector is
// built after the shadow in server wiring).
func (s *Shadow) SetNamer(fn func(collective string, class int) string) {
	if fn == nil {
		s.namer.Store(nil)
		return
	}
	s.namer.Store(&fn)
}

// SetHealthSink wires an observer (typically the model-health observatory's
// RecordShadow) that receives every shadow agreement verdict keyed by the
// candidate generation. Nil clears it.
func (s *Shadow) SetHealthSink(fn func(candidateGen uint64, agree bool)) {
	if fn == nil {
		s.healthSink.Store(nil)
		return
	}
	s.healthSink.Store(&fn)
}

func (s *Shadow) name(collective string, class int) string {
	if fn := s.namer.Load(); fn != nil {
		return (*fn)(collective, class)
	}
	return fmt.Sprintf("class_%d", class)
}

// Start launches the worker pool. Idempotent.
func (s *Shadow) Start() {
	s.once.Do(func() {
		for i := 0; i < s.workers; i++ {
			s.wg.Add(1)
			go s.run()
		}
	})
}

// Stop drains queued tasks and waits for the workers to exit — the
// graceful-shutdown path. Offers arriving after Stop are dropped.
func (s *Shadow) Stop() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	s.wg.Wait()
}

func (s *Shadow) run() {
	defer s.wg.Done()
	for {
		select {
		case t := <-s.queue:
			s.evaluate(t)
		case <-s.done:
			// Drain whatever is already queued, then exit.
			for {
				select {
				case t := <-s.queue:
					s.evaluate(t)
				default:
					return
				}
			}
		}
	}
}

// SetCandidate stages gen as the shadow candidate and resets the evidence
// accumulated for any previous candidate.
func (s *Shadow) SetCandidate(g *Generation) {
	s.candidate.Store(g)
	s.mu.Lock()
	s.stats = make(map[string]*shadowCell)
	s.candID = g.id
	s.candHash = g.hash
	s.mu.Unlock()
	s.o.Logger.Info("shadow candidate staged",
		"generation", g.id, "hash", g.bundle.ShortHash(), "fraction", s.fraction)
}

// ClearCandidate stops mirroring traffic (accumulated evidence stays
// readable until the next SetCandidate).
func (s *Shadow) ClearCandidate() { s.candidate.Store(nil) }

// Candidate returns the currently staged candidate, or nil.
func (s *Shadow) Candidate() *Generation { return s.candidate.Load() }

// Offer implements selector.ShadowSink: sample the decision, copy its
// features, and enqueue it for candidate evaluation. Never blocks; a full
// queue drops the sample and counts it.
func (s *Shadow) Offer(collective string, features map[string]float64, algorithm string, class int, latencyNS int64) {
	g := s.candidate.Load()
	if g == nil {
		return
	}
	stride := s.stride.Load()
	if stride == 0 || s.counter.Add(1)%stride != 0 {
		return
	}
	f := make(map[string]float64, len(features))
	for k, v := range features {
		f[k] = v
	}
	select {
	case s.queue <- shadowTask{gen: g, collective: collective, features: f, algorithm: algorithm, latencyNS: latencyNS}:
	default:
		s.mDropped.Inc()
	}
}

// evaluate runs one mirrored decision against the candidate and folds the
// outcome into the per-collective evidence.
func (s *Shadow) evaluate(t shadowTask) {
	cell := s.cell(t.collective)

	c, ok := t.gen.bundle.Collective(t.collective)
	if !ok {
		s.fail(cell, t.collective, "unknown_collective")
		return
	}
	x, err := c.Vector(t.features)
	if err != nil {
		s.fail(cell, t.collective, "missing_feature")
		return
	}
	start := time.Now()
	pred, err := c.Forest.Predict(x)
	candNS := time.Since(start).Nanoseconds()
	if err != nil {
		s.fail(cell, t.collective, "forest_error")
		return
	}
	candAlgo := s.name(t.collective, pred.Class)
	agree := candAlgo == t.algorithm
	if sink := s.healthSink.Load(); sink != nil {
		(*sink)(t.gen.id, agree)
	}

	s.mSamples.Inc(t.collective)
	s.mLatency.Observe(float64(candNS)/1e9, t.collective)
	if agree {
		s.mAgreements.Inc(t.collective)
	}
	s.mu.Lock()
	cell.samples++
	if agree {
		cell.agreements++
	}
	cell.sumPrimaryNS += float64(t.latencyNS)
	cell.sumCandNS += float64(candNS)
	s.mu.Unlock()
}

func (s *Shadow) fail(cell *shadowCell, collective, reason string) {
	s.mErrors.Inc(collective, reason)
	s.mu.Lock()
	cell.errors++
	s.mu.Unlock()
}

func (s *Shadow) cell(collective string) *shadowCell {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.stats[collective]
	if !ok {
		c = &shadowCell{}
		s.stats[collective] = c
	}
	return c
}

// ShadowCollective is per-collective shadow evidence, as served on
// /debug/shadow. Latency means are in nanoseconds; the primary mean is the
// live decision latency as observed (cache hits included), the candidate
// mean is always a cold forest evaluation — the delta therefore bounds the
// worst-case cost of promoting, not the steady state, since the candidate
// would enjoy the same cache once promoted.
type ShadowCollective struct {
	Samples            uint64  `json:"samples"`
	Agreements         uint64  `json:"agreements"`
	AgreementRate      float64 `json:"agreement_rate"`
	Errors             uint64  `json:"errors"`
	PrimaryMeanNS      float64 `json:"primary_mean_latency_ns"`
	CandidateMeanNS    float64 `json:"candidate_mean_latency_ns"`
	LatencyDeltaMeanNS float64 `json:"latency_delta_mean_ns"`
}

// ShadowReport is the full /debug/shadow payload.
type ShadowReport struct {
	Enabled             bool                        `json:"enabled"`
	Fraction            float64                     `json:"fraction"`
	CandidateGeneration uint64                      `json:"candidate_generation,omitempty"`
	CandidateHash       string                      `json:"candidate_hash,omitempty"`
	Dropped             uint64                      `json:"dropped"`
	Collectives         map[string]ShadowCollective `json:"collectives"`
}

// Report snapshots the accumulated evidence. Enabled means a candidate is
// currently staged and the sampling fraction is non-zero; after a
// promotion the last candidate's evidence remains readable with
// Enabled=false.
func (s *Shadow) Report() ShadowReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := ShadowReport{
		Enabled:             s.candidate.Load() != nil && s.stride.Load() > 0,
		Fraction:            s.fraction,
		CandidateGeneration: s.candID,
		CandidateHash:       s.candHash,
		Dropped:             uint64(s.mDropped.Value()),
		Collectives:         make(map[string]ShadowCollective, len(s.stats)),
	}
	for name, c := range s.stats {
		sc := ShadowCollective{
			Samples:    c.samples,
			Agreements: c.agreements,
			Errors:     c.errors,
		}
		if c.samples > 0 {
			n := float64(c.samples)
			sc.AgreementRate = float64(c.agreements) / n
			sc.PrimaryMeanNS = c.sumPrimaryNS / n
			sc.CandidateMeanNS = c.sumCandNS / n
			sc.LatencyDeltaMeanNS = sc.CandidateMeanNS - sc.PrimaryMeanNS
		}
		rep.Collectives[name] = sc
	}
	return rep
}
