package registry

import (
	"fmt"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// stageCandidate loads a synthetic bundle into a fresh registry wired to a
// shadow evaluator and stages it as the candidate.
func stageCandidate(t *testing.T, sh *Shadow, seed int64) *Generation {
	t.Helper()
	r := New(obs.NewForTest(), Config{Shadow: sh})
	g, err := r.LoadData(bundleJSON(t, seed), fmt.Sprintf("mem://seed-%d", seed))
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	return g
}

// waitDrained polls until the shadow queue is empty and workers are idle
// (bounded); Stop would also drain but tests often want the shadow alive.
func drainAndStop(sh *Shadow) { sh.Stop() }

func TestShadowAgreementMatchesDirectComparison(t *testing.T) {
	o := obs.NewForTest()
	sh := NewShadow(o, ShadowConfig{Fraction: 1, Workers: 1})
	sh.Start()
	cand := stageCandidate(t, sh, 2)

	// Evaluate the candidate directly on each point to know the expected
	// agreement outcome, then offer the same points as "live" decisions
	// whose algorithm is the candidate's own answer for even indices and a
	// guaranteed-mismatching name for odd ones.
	points := synth.Points(7, 20)
	wantAgree := 0
	for i, p := range points {
		c, ok := cand.Bundle().Collective("allgather")
		if !ok {
			t.Fatal("candidate missing allgather")
		}
		x, err := c.Vector(p)
		if err != nil {
			t.Fatalf("vector: %v", err)
		}
		pred, err := c.Forest.Predict(x)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		algo := fmt.Sprintf("class_%d", pred.Class)
		if i%2 == 1 {
			algo = "definitely_not_" + algo
		} else {
			wantAgree++
		}
		sh.Offer("allgather", p, algo, pred.Class, 1000)
	}
	drainAndStop(sh)

	rep := sh.Report()
	cell, ok := rep.Collectives["allgather"]
	if !ok {
		t.Fatalf("report has no allgather cell: %+v", rep)
	}
	if cell.Samples != uint64(len(points)) {
		t.Fatalf("samples = %d, want %d", cell.Samples, len(points))
	}
	if cell.Agreements != uint64(wantAgree) {
		t.Fatalf("agreements = %d, want %d", cell.Agreements, wantAgree)
	}
	wantRate := float64(wantAgree) / float64(len(points))
	if cell.AgreementRate != wantRate {
		t.Fatalf("agreement rate = %v, want %v", cell.AgreementRate, wantRate)
	}
	if cell.CandidateMeanNS <= 0 {
		t.Fatalf("candidate mean latency = %v, want > 0", cell.CandidateMeanNS)
	}
	if cell.PrimaryMeanNS != 1000 {
		t.Fatalf("primary mean latency = %v, want 1000", cell.PrimaryMeanNS)
	}
	if got := cell.CandidateMeanNS - cell.PrimaryMeanNS; cell.LatencyDeltaMeanNS != got {
		t.Fatalf("latency delta = %v, want %v", cell.LatencyDeltaMeanNS, got)
	}
	if rep.CandidateGeneration != cand.ID() {
		t.Fatalf("report candidate generation = %d, want %d", rep.CandidateGeneration, cand.ID())
	}
}

func TestShadowSamplingStride(t *testing.T) {
	sh := NewShadow(obs.NewForTest(), ShadowConfig{Fraction: 0.5, Workers: 1})
	sh.Start()
	stageCandidate(t, sh, 3)
	points := synth.Points(1, 10)
	for _, p := range points {
		sh.Offer("allgather", p, "x", 0, 1)
	}
	drainAndStop(sh)
	cell := sh.Report().Collectives["allgather"]
	// Deterministic counter sampling: exactly every 2nd offer.
	if total := cell.Samples + cell.Errors; total != 5 {
		t.Fatalf("fraction 0.5 sampled %d of 10 offers, want exactly 5", total)
	}
}

func TestShadowDisabledWhenNoCandidateOrZeroFraction(t *testing.T) {
	sh := NewShadow(obs.NewForTest(), ShadowConfig{Fraction: 1, Workers: 1})
	sh.Start()
	// No candidate staged: offers are ignored outright.
	sh.Offer("allgather", synth.Points(1, 1)[0], "x", 0, 1)

	zero := NewShadow(obs.NewForTest(), ShadowConfig{Fraction: 0, Workers: 1})
	zero.Start()
	stageCandidate(t, zero, 4)
	zero.Offer("allgather", synth.Points(1, 1)[0], "x", 0, 1)

	drainAndStop(sh)
	drainAndStop(zero)
	if n := len(sh.Report().Collectives); n != 0 {
		t.Fatalf("candidate-less shadow recorded %d collectives, want 0", n)
	}
	if n := len(zero.Report().Collectives); n != 0 {
		t.Fatalf("zero-fraction shadow recorded %d collectives, want 0", n)
	}
	if zero.Report().Enabled {
		t.Fatal("zero-fraction shadow reports enabled")
	}
}

func TestShadowQueueOverflowDropsWithoutBlocking(t *testing.T) {
	sh := NewShadow(obs.NewForTest(), ShadowConfig{Fraction: 1, Workers: 1, QueueSize: 1})
	// Workers intentionally not started: the queue fills at one entry.
	stageCandidate(t, sh, 5)
	p := synth.Points(2, 1)[0]
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			sh.Offer("allgather", p, "x", 0, 1)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Offer blocked on a full queue")
	}
	if rep := sh.Report(); rep.Dropped != 9 {
		t.Fatalf("dropped = %d, want 9 (queue of 1, 10 offers, no workers)", rep.Dropped)
	}
}

func TestShadowErrorPathsCounted(t *testing.T) {
	sh := NewShadow(obs.NewForTest(), ShadowConfig{Fraction: 1, Workers: 1})
	sh.Start()
	stageCandidate(t, sh, 6)
	// Unknown collective and a point missing every feature both count as
	// errors, never as agreement samples.
	sh.Offer("no_such_collective", synth.Points(3, 1)[0], "x", 0, 1)
	sh.Offer("allgather", map[string]float64{}, "x", 0, 1)
	drainAndStop(sh)
	rep := sh.Report()
	var errs uint64
	for _, c := range rep.Collectives {
		errs += c.Errors
		if c.Samples != 0 {
			t.Fatalf("error-path offers recorded %d samples: %+v", c.Samples, rep)
		}
	}
	if errs != 2 {
		t.Fatalf("errors = %d, want 2", errs)
	}
}

func TestShadowCandidateClearedOnPromote(t *testing.T) {
	sh := NewShadow(obs.NewForTest(), ShadowConfig{Fraction: 1, Workers: 1})
	sh.Start()
	defer drainAndStop(sh)
	r := New(obs.NewForTest(), Config{Shadow: sh})
	g, _ := r.LoadData(bundleJSON(t, 8), "mem://cand")
	if sh.Candidate() == nil {
		t.Fatal("loading did not stage a shadow candidate")
	}
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if sh.Candidate() != nil {
		t.Fatal("promoting the candidate did not clear it")
	}
	// Evidence identity survives for post-promote inspection.
	if rep := sh.Report(); rep.CandidateGeneration != g.ID() || rep.Enabled {
		t.Fatalf("post-promote report = %+v, want candidate id %d and enabled=false", rep, g.ID())
	}
}
