package registry

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// bundleJSON renders a deterministic synthetic bundle for the given seed.
func bundleJSON(t *testing.T, seed int64) []byte {
	t.Helper()
	data, err := synth.JSON(synth.Config{Seed: seed})
	if err != nil {
		t.Fatalf("synth.JSON: %v", err)
	}
	return data
}

func TestLoadStagesWithoutActivating(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	g, err := r.LoadData(bundleJSON(t, 1), "mem://a")
	if err != nil {
		t.Fatalf("LoadData: %v", err)
	}
	if g.ID() != 1 {
		t.Fatalf("first generation id = %d, want 1", g.ID())
	}
	if g.Hash() == "" {
		t.Fatal("generation has no content hash")
	}
	if b, gen := r.Active(); b != nil || gen != 0 {
		t.Fatalf("Active() = (%v, %d) before any promote, want (nil, 0)", b, gen)
	}
	if got := r.Snapshot(); len(got) != 1 || got[0].Status != StatusStaged {
		t.Fatalf("Snapshot = %+v, want one staged generation", got)
	}
}

func TestPromoteAndRollback(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	a, _ := r.LoadData(bundleJSON(t, 1), "mem://a")
	b, _ := r.LoadData(bundleJSON(t, 2), "mem://b")

	if _, err := r.Promote(a.ID()); err != nil {
		t.Fatalf("promote a: %v", err)
	}
	if _, gen := r.Active(); gen != a.ID() {
		t.Fatalf("active generation = %d, want %d", gen, a.ID())
	}
	if _, err := r.Promote(b.ID()); err != nil {
		t.Fatalf("promote b: %v", err)
	}
	if _, gen := r.Active(); gen != b.ID() {
		t.Fatalf("active generation = %d, want %d", gen, b.ID())
	}

	// Rollback returns to a; a second rollback toggles back to b.
	g, err := r.Rollback()
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if g.ID() != a.ID() {
		t.Fatalf("rollback activated %d, want %d", g.ID(), a.ID())
	}
	g, err = r.Rollback()
	if err != nil {
		t.Fatalf("second rollback: %v", err)
	}
	if g.ID() != b.ID() {
		t.Fatalf("second rollback activated %d, want %d", g.ID(), b.ID())
	}
}

func TestRollbackWithoutHistoryFails(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback on empty registry should fail")
	}
	g, _ := r.LoadData(bundleJSON(t, 1), "mem://a")
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	// prev is nil (nothing was active before the first promote).
	if _, err := r.Rollback(); err == nil {
		t.Fatal("rollback with no previously active generation should fail")
	}
}

func TestPromoteUnknownGeneration(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	if _, err := r.Promote(42); err == nil {
		t.Fatal("promoting an unknown generation should fail")
	}
}

func TestPromoteActiveIsNoOp(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	g, _ := r.LoadData(bundleJSON(t, 1), "mem://a")
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("promote: %v", err)
	}
	swaps := 0
	r.Subscribe(func(_ *bundle.Bundle, _ uint64) { swaps++ })
	if _, err := r.Promote(g.ID()); err != nil {
		t.Fatalf("re-promote: %v", err)
	}
	if swaps != 0 {
		t.Fatalf("re-promoting the active generation notified %d subscribers, want 0", swaps)
	}
}

func TestInvalidBundleRejectedWithoutDisturbingActive(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	a, _ := r.LoadData(bundleJSON(t, 1), "mem://a")
	r.Promote(a.ID())

	if _, err := r.LoadData([]byte(`{"version": "wrong"}`), "mem://bad"); err == nil {
		t.Fatal("invalid bundle should be rejected")
	}
	if _, gen := r.Active(); gen != a.ID() {
		t.Fatalf("active generation changed to %d after invalid load", gen)
	}
	if got := len(r.Snapshot()); got != 1 {
		t.Fatalf("registry has %d generations after rejected load, want 1", got)
	}
}

func TestDuplicateLoadReturnsResidentGeneration(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	a, _ := r.LoadData(bundleJSON(t, 1), "mem://a")
	dup, err := r.LoadData(bundleJSON(t, 1), "mem://elsewhere")
	if err != nil {
		t.Fatalf("duplicate load: %v", err)
	}
	if dup.ID() != a.ID() {
		t.Fatalf("duplicate load created generation %d, want resident %d", dup.ID(), a.ID())
	}
}

func TestRetentionNeverDropsActiveOrRollbackTarget(t *testing.T) {
	r := New(obs.NewForTest(), Config{Keep: 2})
	var first *Generation
	for seed := int64(1); seed <= 5; seed++ {
		g, err := r.LoadData(bundleJSON(t, seed), "mem://gen")
		if err != nil {
			t.Fatalf("load seed %d: %v", seed, err)
		}
		if first == nil {
			first = g
		}
		if _, err := r.Promote(g.ID()); err != nil {
			t.Fatalf("promote seed %d: %v", seed, err)
		}
	}
	snap := r.Snapshot()
	if len(snap) > 2 {
		t.Fatalf("registry retained %d generations with Keep=2: %+v", len(snap), snap)
	}
	// The active (id 5) and rollback target (id 4) must both survive.
	ids := map[uint64]bool{}
	for _, inf := range snap {
		ids[inf.ID] = true
	}
	if !ids[5] || !ids[4] {
		t.Fatalf("retention dropped active or rollback target: resident %v", ids)
	}
	if _, ok := r.Generation(first.ID()); ok {
		t.Fatal("oldest generation should have been dropped by retention")
	}
}

func TestSubscribeRunsOnEverySwap(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	var gens []uint64
	r.Subscribe(func(_ *bundle.Bundle, gen uint64) { gens = append(gens, gen) })

	a, _ := r.LoadData(bundleJSON(t, 1), "mem://a")
	b, _ := r.LoadData(bundleJSON(t, 2), "mem://b")
	r.Promote(a.ID())
	r.Promote(b.ID())
	r.Rollback()

	want := []uint64{a.ID(), b.ID(), a.ID()}
	if len(gens) != len(want) {
		t.Fatalf("subscriber saw %v, want %v", gens, want)
	}
	for i := range want {
		if gens[i] != want[i] {
			t.Fatalf("subscriber saw %v, want %v", gens, want)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	if err := os.WriteFile(path, bundleJSON(t, 7), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(obs.NewForTest(), Config{})
	g, err := r.Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if g.Source() != path {
		t.Fatalf("source = %q, want %q", g.Source(), path)
	}
	if _, err := r.Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loading a missing file should fail")
	}
}

func TestLatestStaged(t *testing.T) {
	r := New(obs.NewForTest(), Config{})
	if r.LatestStaged() != nil {
		t.Fatal("empty registry has no staged generation")
	}
	a, _ := r.LoadData(bundleJSON(t, 1), "mem://a")
	b, _ := r.LoadData(bundleJSON(t, 2), "mem://b")
	if got := r.LatestStaged(); got == nil || got.ID() != b.ID() {
		t.Fatalf("LatestStaged = %v, want generation %d", got, b.ID())
	}
	r.Promote(b.ID())
	if got := r.LatestStaged(); got == nil || got.ID() != a.ID() {
		t.Fatalf("LatestStaged after promote = %v, want generation %d", got, a.ID())
	}
}
