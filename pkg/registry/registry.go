// Package registry owns the lifecycle of loaded model bundles. It keeps N
// generations (id, source, content hash, load time, status), serves the
// active one to the selector through an atomic pointer (lock-free read on
// the Select hot path), and supports promotion, rollback, and duplicate
// detection. Staged candidates can be shadow-evaluated against live
// traffic (see Shadow) and adopted automatically from disk (see Watcher).
//
// Lifecycle: Load stages a validated generation; Promote atomically swaps
// it to active and retires the previous one; Rollback re-activates the
// generation that was active before the most recent swap. Invalid bundles
// are rejected at load time and never disturb the active generation.
package registry

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// Status is a generation's position in the lifecycle.
type Status string

const (
	// StatusStaged: loaded and validated, not serving traffic.
	StatusStaged Status = "staged"
	// StatusActive: the one generation serving Select traffic.
	StatusActive Status = "active"
	// StatusRetired: previously active (or superseded), kept for rollback.
	StatusRetired Status = "retired"
)

// Generation is one loaded, validated model bundle under registry
// management. All fields are immutable after creation except status, which
// the registry mutates under its lock.
type Generation struct {
	id       uint64
	source   string
	hash     string
	bundle   *bundle.Bundle
	loadedAt time.Time

	// Guarded by Registry.mu.
	status     Status
	promotedAt time.Time
}

// ID returns the generation's monotonically increasing id (first load = 1).
func (g *Generation) ID() uint64 { return g.id }

// Hash returns the hex SHA-256 of the generation's raw bundle bytes.
func (g *Generation) Hash() string { return g.hash }

// Bundle returns the generation's loaded bundle.
func (g *Generation) Bundle() *bundle.Bundle { return g.bundle }

// Source returns where the generation was loaded from (file path or a
// caller-supplied label for in-memory loads).
func (g *Generation) Source() string { return g.source }

// Info is a JSON-ready snapshot of one generation.
type Info struct {
	ID          uint64     `json:"id"`
	Source      string     `json:"source"`
	Hash        string     `json:"hash"`
	Status      Status     `json:"status"`
	LoadedAt    time.Time  `json:"loaded_at"`
	PromotedAt  *time.Time `json:"promoted_at,omitempty"`
	Collectives []string   `json:"collectives"`
	SizeBytes   int64      `json:"size_bytes"`
	TrainedOn   int        `json:"trained_on_systems"`
}

// Config tunes a Registry.
type Config struct {
	// Keep bounds how many generations stay resident (default 4, min 2).
	// The active generation, the rollback target, and the shadow candidate
	// are never dropped, so the bound can be exceeded transiently.
	Keep int
	// Shadow, when non-nil, is fed each newly staged generation as the
	// shadow-evaluation candidate and cleared when that candidate is
	// promoted.
	Shadow *Shadow
}

// Registry is a versioned store of model generations. Safe for concurrent
// use; the hot-path read (Active) is one atomic load.
type Registry struct {
	o      *obs.Obs
	keep   int
	shadow *Shadow

	mu     sync.Mutex
	gens   []*Generation // ascending by id
	nextID uint64
	// prev is the rollback target: the generation that was active before
	// the most recent promote/rollback.
	prev *Generation
	subs []func(b *bundle.Bundle, gen uint64)

	active atomic.Pointer[Generation]

	loads      *obs.Counter // {status: ok|invalid|duplicate}
	promotions *obs.Counter
	rollbacks  *obs.Counter
	gActive    *obs.Gauge
	gCount     *obs.Gauge
}

// New builds an empty registry. Nothing is active until a generation is
// loaded and promoted.
func New(o *obs.Obs, cfg Config) *Registry {
	keep := cfg.Keep
	if keep <= 0 {
		keep = 4
	}
	if keep < 2 {
		keep = 2
	}
	reg := o.Registry
	r := &Registry{
		o:      o,
		keep:   keep,
		shadow: cfg.Shadow,
		loads: reg.Counter("pmlmpi_registry_loads_total",
			"Bundle load attempts into the registry, by outcome.", "status"),
		promotions: reg.Counter("pmlmpi_registry_promotions_total",
			"Generation promotions (staged/retired -> active)."),
		rollbacks: reg.Counter("pmlmpi_registry_rollbacks_total",
			"Rollbacks to the previously active generation."),
		gActive: reg.Gauge("pmlmpi_registry_active_generation",
			"Id of the generation currently serving traffic (0 = none)."),
		gCount: reg.Gauge("pmlmpi_registry_generations",
			"Generations currently resident in the registry."),
	}
	return r
}

// Active returns the bundle serving traffic and its generation id (nil, 0
// when nothing has been promoted). It implements selector.Source.
func (r *Registry) Active() (*bundle.Bundle, uint64) {
	g := r.active.Load()
	if g == nil {
		return nil, 0
	}
	return g.bundle, g.id
}

// ActiveGeneration returns the active generation, or nil.
func (r *Registry) ActiveGeneration() *Generation { return r.active.Load() }

// Subscribe registers fn to run after every swap of the active generation
// (promote or rollback), with the new active bundle and generation id. It
// implements selector.Source.
func (r *Registry) Subscribe(fn func(b *bundle.Bundle, gen uint64)) {
	r.mu.Lock()
	r.subs = append(r.subs, fn)
	r.mu.Unlock()
}

// Load reads, hashes, parses, and validates a bundle file, staging it as a
// new generation. Loading content whose hash matches a resident generation
// returns that generation instead of creating a duplicate. An invalid
// bundle is rejected without disturbing any resident generation.
func (r *Registry) Load(path string) (*Generation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		r.loads.Inc("invalid")
		return nil, fmt.Errorf("registry: read bundle %s: %w", path, err)
	}
	return r.LoadData(data, path)
}

// LoadData stages raw bundle bytes as a new generation; source labels where
// they came from. See Load for semantics.
func (r *Registry) LoadData(data []byte, source string) (*Generation, error) {
	_, span := r.o.Tracer.Start(context.Background(), "registry.load")
	span.SetAttr("source", source)
	defer span.End()

	b, err := bundle.ParseAny(data)
	if err != nil {
		r.loads.Inc("invalid")
		r.o.Logger.Warn("registry rejected bundle",
			"source", source, "error", err.Error())
		return nil, fmt.Errorf("registry: %s: %w", source, err)
	}
	b.Path = source

	r.mu.Lock()
	for _, g := range r.gens {
		if g.hash == b.Hash {
			r.mu.Unlock()
			r.loads.Inc("duplicate")
			r.o.Logger.Info("registry load is a duplicate of a resident generation",
				"source", source, "generation", g.id, "hash", b.ShortHash())
			return g, nil
		}
	}
	r.nextID++
	g := &Generation{
		id:       r.nextID,
		source:   source,
		hash:     b.Hash,
		bundle:   b,
		loadedAt: time.Now(),
		status:   StatusStaged,
	}
	r.gens = append(r.gens, g)
	r.evictLocked(g)
	r.gCount.Set(float64(len(r.gens)))
	r.mu.Unlock()

	r.loads.Inc("ok")
	span.SetAttr("generation", g.id)
	r.o.Logger.Info("generation staged",
		"generation", g.id,
		"source", source,
		"hash", b.ShortHash(),
		"collectives", b.CollectiveNames(),
		"size_bytes", b.SizeBytes)
	if r.shadow != nil {
		r.shadow.SetCandidate(g)
	}
	return g, nil
}

// evictLocked drops the oldest droppable generations until at most keep
// remain. The active generation, the rollback target, the shadow
// candidate, and the generation just staged (fresh) are never dropped; if
// nothing is droppable the bound is exceeded rather than risking a
// generation still in use.
func (r *Registry) evictLocked(fresh *Generation) {
	var candidate *Generation
	if r.shadow != nil {
		candidate = r.shadow.Candidate()
	}
	for len(r.gens) > r.keep {
		dropped := false
		for i, g := range r.gens {
			if g == r.active.Load() || g == r.prev || g == candidate || g == fresh {
				continue
			}
			r.gens = append(r.gens[:i], r.gens[i+1:]...)
			r.o.Logger.Info("generation dropped by retention",
				"generation", g.id, "status", string(g.status))
			dropped = true
			break
		}
		if !dropped {
			return
		}
	}
}

// Promote makes generation id the active one, retiring the previous active
// generation (which becomes the rollback target). Promoting the already
// active generation is a no-op. Subscribers run synchronously before
// Promote returns, so by the time an admin call completes, the selector
// has flushed its cache and re-pointed its gauges.
func (r *Registry) Promote(id uint64) (*Generation, error) {
	return r.swap(id, false)
}

// Rollback re-activates the generation that was active before the most
// recent promote or rollback. Two consecutive rollbacks toggle between the
// last two active generations.
func (r *Registry) Rollback() (*Generation, error) {
	r.mu.Lock()
	target := r.prev
	r.mu.Unlock()
	if target == nil {
		return nil, fmt.Errorf("registry: no previously active generation to roll back to")
	}
	return r.swap(target.id, true)
}

func (r *Registry) swap(id uint64, rollback bool) (*Generation, error) {
	_, span := r.o.Tracer.Start(context.Background(), "registry.swap")
	span.SetAttr("generation", id)
	span.SetAttr("rollback", rollback)
	defer span.End()

	r.mu.Lock()
	var g *Generation
	for _, cand := range r.gens {
		if cand.id == id {
			g = cand
			break
		}
	}
	if g == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: no generation %d (dropped or never loaded)", id)
	}
	old := r.active.Load()
	if old == g {
		r.mu.Unlock()
		return g, nil
	}
	if old != nil {
		old.status = StatusRetired
	}
	g.status = StatusActive
	g.promotedAt = time.Now()
	r.prev = old
	r.active.Store(g)
	r.gActive.Set(float64(g.id))
	// The swap may have unpinned the old rollback target; re-check the
	// retention bound.
	r.evictLocked(nil)
	r.gCount.Set(float64(len(r.gens)))
	subs := append([]func(*bundle.Bundle, uint64){}, r.subs...)
	r.mu.Unlock()

	if rollback {
		r.rollbacks.Inc()
	} else {
		r.promotions.Inc()
	}
	oldID := uint64(0)
	if old != nil {
		oldID = old.id
	}
	r.o.Logger.Info("generation activated",
		"generation", g.id,
		"previous", oldID,
		"rollback", rollback,
		"hash", g.bundle.ShortHash())
	for _, fn := range subs {
		fn(g.bundle, g.id)
	}
	if r.shadow != nil && r.shadow.Candidate() == g {
		r.shadow.ClearCandidate()
	}
	return g, nil
}

// Generation returns the resident generation with the given id.
func (r *Registry) Generation(id uint64) (*Generation, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, g := range r.gens {
		if g.id == id {
			return g, true
		}
	}
	return nil, false
}

// LatestStaged returns the most recently loaded generation still in the
// staged state, or nil — the default target of a bare promote request.
func (r *Registry) LatestStaged() *Generation {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.gens) - 1; i >= 0; i-- {
		if r.gens[i].status == StatusStaged {
			return r.gens[i]
		}
	}
	return nil
}

// Snapshot returns JSON-ready info for every resident generation, oldest
// first.
func (r *Registry) Snapshot() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, len(r.gens))
	for i, g := range r.gens {
		out[i] = infoLocked(g)
	}
	return out
}

func infoLocked(g *Generation) Info {
	inf := Info{
		ID:          g.id,
		Source:      g.source,
		Hash:        g.hash,
		Status:      g.status,
		LoadedAt:    g.loadedAt,
		Collectives: g.bundle.CollectiveNames(),
		SizeBytes:   g.bundle.SizeBytes,
		TrainedOn:   len(g.bundle.TrainedOn),
	}
	if !g.promotedAt.IsZero() {
		t := g.promotedAt
		inf.PromotedAt = &t
	}
	return inf
}

// InfoFor snapshots one generation.
func (r *Registry) InfoFor(g *Generation) Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	return infoLocked(g)
}
