package registry

import (
	"context"
	"os"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// Watcher polls a bundle file and feeds changed content through the
// registry: mtime+size change detection, a one-poll debounce (the file must
// look identical on two consecutive polls before it is read, so a writer
// mid-copy is never loaded), content-hash deduplication (via the registry),
// and auto-promotion of successfully staged generations. Invalid content is
// rejected and remembered, so a bad artifact is logged once, never retried
// in a loop, and never disturbs the active generation.
type Watcher struct {
	reg      *Registry
	o        *obs.Obs
	path     string
	interval time.Duration

	// lastApplied is the stat signature of the content most recently
	// loaded (or rejected); pending is a changed signature awaiting its
	// stability confirmation on the next poll.
	lastApplied fileSig
	pending     *fileSig

	polls   *obs.Counter
	reloads *obs.Counter // {status: promoted|invalid|duplicate}
}

// fileSig is the cheap change-detection signature of the watched file.
type fileSig struct {
	modTime time.Time
	size    int64
}

// NewWatcher builds a watcher over path with the given poll interval
// (values below 100ms are clamped up to keep stat traffic sane; tests use
// SetInterval to go faster).
func NewWatcher(reg *Registry, o *obs.Obs, path string, interval time.Duration) *Watcher {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return &Watcher{
		reg:      reg,
		o:        o,
		path:     path,
		interval: interval,
		polls: o.Registry.Counter("pmlmpi_watcher_polls_total",
			"Bundle-watcher poll cycles."),
		reloads: o.Registry.Counter("pmlmpi_watcher_reloads_total",
			"Bundle-watcher reload attempts after a stable file change, by outcome.", "status"),
	}
}

// SetInterval overrides the poll interval without clamping — for tests.
func (w *Watcher) SetInterval(d time.Duration) { w.interval = d }

// Run polls until ctx is cancelled. The first stable sighting of the file
// goes through the registry like any change; content the server already
// loaded at startup dedups by hash into a no-op, so there is no startup
// race between the initial load and a concurrent overwrite.
func (w *Watcher) Run(ctx context.Context) {
	w.o.Logger.Info("bundle watcher started",
		"path", w.path, "interval", w.interval.String())
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			w.o.Logger.Info("bundle watcher stopped", "path", w.path)
			return
		case <-t.C:
			w.poll()
		}
	}
}

func (w *Watcher) poll() {
	w.polls.Inc()
	fi, err := os.Stat(w.path)
	if err != nil {
		// A transiently missing file (atomic-rename writers) is not a
		// change; just wait for it to reappear.
		w.pending = nil
		return
	}
	sig := fileSig{modTime: fi.ModTime(), size: fi.Size()}
	if sig == w.lastApplied {
		w.pending = nil
		return
	}
	if w.pending == nil || *w.pending != sig {
		// First sight of this change (or it is still mutating): wait one
		// more interval for the file to settle.
		w.pending = &sig
		return
	}
	// Stable across two polls: adopt it.
	w.pending = nil
	w.lastApplied = sig
	data, err := os.ReadFile(w.path)
	if err != nil {
		w.reloads.Inc("invalid")
		w.o.Logger.Warn("bundle watcher read failed", "path", w.path, "error", err.Error())
		return
	}
	gen, err := w.reg.LoadData(data, w.path)
	if err != nil {
		// Rejected: the active generation is untouched, and lastApplied
		// already records this content so it is not retried every poll.
		w.reloads.Inc("invalid")
		w.o.Logger.Warn("bundle watcher rejected changed bundle",
			"path", w.path, "error", err.Error())
		return
	}
	if active := w.reg.ActiveGeneration(); active != nil && active.ID() == gen.ID() {
		w.reloads.Inc("duplicate")
		return
	}
	if _, err := w.reg.Promote(gen.ID()); err != nil {
		w.reloads.Inc("invalid")
		w.o.Logger.Warn("bundle watcher promote failed",
			"generation", gen.ID(), "error", err.Error())
		return
	}
	w.reloads.Inc("promoted")
	w.o.Logger.Info("bundle watcher promoted changed bundle",
		"path", w.path, "generation", gen.ID(), "hash", gen.Bundle().ShortHash())
}
