// Package replica turns a PML-MPI server into a fleet member. It holds
// the change-detection primitives every bundle poller shares (the
// two-observation Debounce and an error Backoff), the local-disk
// FileWatcher (moved here from pkg/registry — the PR 4 `-bundle-watch`
// poller), and the network Agent that extends the same poll-debounce-
// stage-promote loop across HTTP: poll the control-plane manifest by
// generation hash, pull-verify-stage new bundles through the registry,
// soak them against shadow evaluation, and report heartbeats.
package replica

import "time"

// Debounce is the shared two-observation stability filter: a new
// signature must be seen on two consecutive observations before it is
// adopted, so a source mid-change (a writer mid-copy, a manifest flapping
// between revisions) is never acted on. The zero value is ready to use;
// the zero signature value means "nothing adopted yet".
type Debounce[T comparable] struct {
	applied T
	pending *T
}

// Observe feeds one observation and reports whether sig should be adopted
// now: it differs from the last adopted signature and was identical on
// the previous observation. Adopting updates the applied signature, so a
// given change fires exactly once.
func (d *Debounce[T]) Observe(sig T) bool {
	if sig == d.applied {
		d.pending = nil
		return false
	}
	if d.pending == nil || *d.pending != sig {
		d.pending = &sig
		return false
	}
	d.pending = nil
	d.applied = sig
	return true
}

// Clear drops any half-confirmed observation — for a transiently missing
// source (atomic-rename writers, a control plane mid-restart) that should
// restart its stability count when it reappears.
func (d *Debounce[T]) Clear() { d.pending = nil }

// Applied returns the last adopted signature.
func (d *Debounce[T]) Applied() T { return d.applied }

// Backoff is the shared failure backoff for pollers: exponential from
// Base to Max, reset on success. The zero value backs off from 1s to 30s.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
	cur  time.Duration
}

// Next returns the delay to wait after one more consecutive failure.
func (b *Backoff) Next() time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = time.Second
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if b.cur <= 0 {
		b.cur = base
	} else {
		b.cur *= 2
	}
	if b.cur > max {
		b.cur = max
	}
	return b.cur
}

// Reset clears the failure streak after a success.
func (b *Backoff) Reset() { b.cur = 0 }
