package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/controlplane"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/slo"
)

// AgentConfig wires a replica Agent to its control plane and local
// serving stack.
type AgentConfig struct {
	// ControlPlane is the control plane's base URL (e.g. http://ctl:9100).
	ControlPlane string
	// ReplicaID uniquely names this replica to the control plane.
	ReplicaID string
	// Advertise is this replica's own base URL, reported in heartbeats for
	// operators and gateway discovery. Optional.
	Advertise string
	// Registry is the local generation store bundles are staged through.
	Registry *registry.Registry
	// Shadow, when non-nil, supplies shadow-agreement evidence during the
	// candidate soak (the registry auto-stages each pulled bundle as the
	// shadow candidate). Without it candidates promote immediately.
	Shadow *registry.Shadow
	// Health, when non-nil, feeds drift status into heartbeats.
	Health *modelhealth.Observatory
	// SLO, when non-nil, feeds the select p99 into heartbeats.
	SLO *slo.Tracker
	// PollInterval is the manifest poll (and heartbeat) cadence.
	// Default 2s.
	PollInterval time.Duration
	// StageSoak is how long a pulled candidate shadow-evaluates before the
	// promote decision. Default 10s; 0 keeps the default, negative values
	// promote immediately.
	StageSoak time.Duration
	// MinAgreement is the local promote gate: with at least
	// MinShadowSamples of evidence, a candidate below this agreement rate
	// is rejected (sticky — never retried for the same hash). Default 0.9.
	MinAgreement float64
	// MinShadowSamples is the evidence floor for the agreement gate.
	// Default 20. A candidate with thinner evidence at the soak deadline
	// promotes on benefit of the doubt — the control plane still gates the
	// fleet stage on the canary's live heartbeats.
	MinShadowSamples uint64
	// Client overrides the HTTP client (tests). Default: 10s timeout.
	Client *http.Client
	// Now overrides the clock (tests).
	Now func() time.Time
}

// Status is the agent's /healthz contribution: what this node believes
// the fleet wants it to serve.
type Status struct {
	ControlPlane      string    `json:"control_plane"`
	ReplicaID         string    `json:"replica_id"`
	Ring              string    `json:"ring,omitempty"`
	RolloutState      string    `json:"rollout_state,omitempty"`
	DesiredHash       string    `json:"desired_hash,omitempty"`
	DesiredGeneration uint64    `json:"desired_generation,omitempty"`
	CandidateHash     string    `json:"candidate_hash,omitempty"`
	CandidateStatus   string    `json:"candidate_status,omitempty"`
	LastPoll          time.Time `json:"last_poll,omitempty"`
	LastError         string    `json:"last_error,omitempty"`
}

// candidateState tracks the bundle most recently pulled from the control
// plane while it soaks toward a promote/reject verdict.
type candidateState struct {
	hash      string
	genID     uint64
	deadline  time.Time
	status    string // controlplane.Candidate*
	samples   uint64
	agreement float64
}

// Agent is the replica-side fleet member: it polls the control-plane
// manifest (conditional GETs — steady state is a body-less 304), pulls
// missing bundles by content hash, verifies and stages them through the
// registry, soaks them against shadow evaluation, promotes or rejects,
// and reports heartbeats. It reuses the same Debounce as the local-disk
// FileWatcher, applied to the desired hash, so a manifest flapping
// mid-transition is never acted on.
type Agent struct {
	cfg     AgentConfig
	o       *obs.Obs
	client  *http.Client
	started time.Time

	mu        sync.Mutex
	etag      string
	manifest  controlplane.Manifest
	ring      string
	deb       Debounce[string]
	cand      *candidateState
	known     map[string]uint64 // hash -> local registry generation id
	rejected  map[string]string // hash -> rejection reason (sticky)
	lastPoll  time.Time
	lastError string

	backoff   Backoff
	failUntil time.Time

	polls      *obs.Counter // {status: ok|not_modified|error}
	pulls      *obs.Counter // {status: ok|invalid|error}
	heartbeats *obs.Counter // {status: ok|error}
	verdicts   *obs.Counter // {verdict: promoted|rejected}
}

// NewAgent builds an agent; Run starts it.
func NewAgent(o *obs.Obs, cfg AgentConfig) (*Agent, error) {
	if cfg.ControlPlane == "" {
		return nil, fmt.Errorf("replica: ControlPlane URL is required")
	}
	if cfg.ReplicaID == "" {
		return nil, fmt.Errorf("replica: ReplicaID is required")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("replica: Registry is required")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * time.Second
	}
	if cfg.StageSoak == 0 {
		cfg.StageSoak = 10 * time.Second
	}
	if cfg.MinAgreement <= 0 || cfg.MinAgreement > 1 {
		cfg.MinAgreement = 0.9
	}
	if cfg.MinShadowSamples == 0 {
		cfg.MinShadowSamples = 20
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Agent{
		cfg:      cfg,
		o:        o,
		client:   client,
		started:  cfg.Now(),
		known:    make(map[string]uint64),
		rejected: make(map[string]string),
		polls: o.Registry.Counter("pmlmpi_replica_polls_total",
			"Manifest polls against the control plane, by outcome.", "status"),
		pulls: o.Registry.Counter("pmlmpi_replica_pulls_total",
			"Bundle pulls from the control plane, by outcome.", "status"),
		heartbeats: o.Registry.Counter("pmlmpi_replica_heartbeats_total",
			"Heartbeats sent to the control plane, by outcome.", "status"),
		verdicts: o.Registry.Counter("pmlmpi_replica_candidate_verdicts_total",
			"Local candidate soak verdicts.", "verdict"),
	}, nil
}

// Run polls and heartbeats until ctx is cancelled.
func (a *Agent) Run(ctx context.Context) {
	a.o.Logger.Info("replica agent started",
		"control_plane", a.cfg.ControlPlane,
		"replica_id", a.cfg.ReplicaID,
		"interval", a.cfg.PollInterval.String())
	t := time.NewTicker(a.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			a.o.Logger.Info("replica agent stopped", "replica_id", a.cfg.ReplicaID)
			return
		case <-t.C:
			a.Tick(ctx)
		}
	}
}

// Tick runs one poll-reconcile-heartbeat cycle. Exported so tests (and
// the in-process e2e) can drive the agent deterministically without a
// ticker.
func (a *Agent) Tick(ctx context.Context) {
	now := a.cfg.Now()
	a.mu.Lock()
	wait := a.failUntil.After(now)
	a.mu.Unlock()
	if !wait {
		if err := a.pollOnce(ctx); err != nil {
			a.mu.Lock()
			a.lastError = err.Error()
			a.failUntil = now.Add(a.backoff.Next())
			a.mu.Unlock()
			a.polls.Inc("error")
			a.o.Logger.Warn("replica manifest poll failed",
				"control_plane", a.cfg.ControlPlane, "error", err.Error())
		} else {
			a.mu.Lock()
			a.lastError = ""
			a.backoff.Reset()
			a.failUntil = time.Time{}
			a.mu.Unlock()
		}
	}
	a.evaluateSoak()
	if err := a.sendHeartbeat(ctx); err != nil {
		a.heartbeats.Inc("error")
		a.o.Logger.Warn("replica heartbeat failed", "error", err.Error())
	} else {
		a.heartbeats.Inc("ok")
	}
}

// pollOnce fetches the manifest (conditional on the previous ETag) and
// reconciles toward its desired hash.
func (a *Agent) pollOnce(ctx context.Context) error {
	a.mu.Lock()
	etag := a.etag
	a.mu.Unlock()

	url := fmt.Sprintf("%s/v1/manifest?replica=%s", a.cfg.ControlPlane, a.cfg.ReplicaID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()

	now := a.cfg.Now()
	switch resp.StatusCode {
	case http.StatusNotModified:
		io.Copy(io.Discard, resp.Body)
		a.polls.Inc("not_modified")
		a.mu.Lock()
		a.lastPoll = now
		m := a.manifest
		a.mu.Unlock()
		// An unchanged manifest still re-observes the same desired hash,
		// completing the debounce started by the previous (200) poll.
		return a.reconcile(ctx, m)
	case http.StatusOK:
		var m controlplane.Manifest
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
			return fmt.Errorf("decode manifest: %w", err)
		}
		a.polls.Inc("ok")
		a.mu.Lock()
		a.etag = resp.Header.Get("ETag")
		a.manifest = m
		a.ring = m.Ring
		a.lastPoll = now
		a.mu.Unlock()
		return a.reconcile(ctx, m)
	default:
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("manifest poll: unexpected status %d", resp.StatusCode)
	}
}

// reconcile drives the local registry toward the manifest's desired
// hash: debounce the desired value, then promote a resident generation
// or pull-verify-stage a missing one.
func (a *Agent) reconcile(ctx context.Context, m controlplane.Manifest) error {
	desired := m.DesiredHash
	if desired == "" {
		return nil
	}
	// A soaking candidate the manifest no longer desires was withdrawn
	// mid-soak (operator rollback, or another replica tripping a fleet
	// gate): abort it before anything else, so the soak deadline can
	// never promote a hash the control plane has already walked back.
	// This must run before the active==desired early return — on a
	// rollback the replica is typically still serving the stable hash.
	a.abortWithdrawnCandidate(desired)

	active := a.cfg.Registry.ActiveGeneration()
	if active != nil && active.Hash() == desired {
		a.mu.Lock()
		a.deb.Observe(desired) // keep the debounce in sync with reality
		a.mu.Unlock()
		return nil
	}

	a.mu.Lock()
	if reason, bad := a.rejected[desired]; bad {
		a.mu.Unlock()
		// Sticky: this replica already judged the hash unsafe; the
		// heartbeat keeps reporting the rejection so the control plane
		// rolls the fleet back.
		_ = reason
		return nil
	}
	if a.cand != nil && a.cand.hash == desired {
		a.mu.Unlock()
		return nil // already staged, soaking
	}
	adopt := a.deb.Observe(desired)
	if !adopt && a.deb.Applied() == desired {
		// The desired hash was already debounce-confirmed and adopted
		// once, yet the active generation drifted away from it (e.g. a
		// stale-manifest promote that raced a rollback). A value that
		// survived the two-observation filter before needs no second
		// soak of stability: re-adopt immediately so the replica
		// converges back instead of wedging on "already applied".
		adopt = true
	}
	knownID, resident := a.known[desired]
	a.mu.Unlock()
	if !adopt {
		return nil
	}

	// A previously vetted resident generation (the rollback path — the
	// control plane reverted to a hash we served before): promote
	// directly, no soak.
	if resident {
		if _, err := a.cfg.Registry.Promote(knownID); err == nil {
			a.mu.Lock()
			a.cand = nil
			a.mu.Unlock()
			a.o.Logger.Info("replica promoted resident generation for desired hash",
				"generation", knownID, "hash", shortHash(desired))
			return nil
		}
		// Evicted since: fall through to a fresh pull.
	}

	data, err := a.fetchBundle(ctx, desired)
	if err != nil {
		a.pulls.Inc("error")
		return err
	}
	if got := controlplane.HashOf(data); got != desired {
		a.pulls.Inc("invalid")
		return fmt.Errorf("pulled bundle hash %s does not match desired %s", shortHash(got), shortHash(desired))
	}
	gen, err := a.cfg.Registry.LoadData(data, a.cfg.ControlPlane+"/v1/bundles/"+desired)
	if err != nil {
		a.pulls.Inc("invalid")
		a.mu.Lock()
		a.rejected[desired] = err.Error()
		a.mu.Unlock()
		return fmt.Errorf("stage pulled bundle: %w", err)
	}
	a.pulls.Inc("ok")

	now := a.cfg.Now()
	a.mu.Lock()
	a.known[desired] = gen.ID()
	soak := a.cfg.StageSoak > 0 && a.cfg.Shadow != nil && a.cfg.Registry.ActiveGeneration() != nil
	if soak {
		a.cand = &candidateState{
			hash:     desired,
			genID:    gen.ID(),
			deadline: now.Add(a.cfg.StageSoak),
			status:   controlplane.CandidateSoaking,
		}
	}
	a.mu.Unlock()

	if !soak {
		// Bootstrap (no active generation yet) or no shadow evaluation
		// configured: promote immediately.
		if _, err := a.cfg.Registry.Promote(gen.ID()); err != nil {
			return fmt.Errorf("promote pulled bundle: %w", err)
		}
		a.mu.Lock()
		a.cand = &candidateState{hash: desired, genID: gen.ID(), status: controlplane.CandidatePromoted}
		a.mu.Unlock()
		a.verdicts.Inc("promoted")
		a.o.Logger.Info("replica promoted pulled bundle",
			"generation", gen.ID(), "hash", shortHash(desired))
		return nil
	}
	a.o.Logger.Info("replica staged pulled bundle for soak",
		"generation", gen.ID(), "hash", shortHash(desired), "soak", a.cfg.StageSoak.String())
	return nil
}

// evaluateSoak refreshes a soaking candidate's shadow evidence and
// settles the promote/reject verdict once the gate trips or the deadline
// passes.
func (a *Agent) evaluateSoak() {
	a.mu.Lock()
	cand := a.cand
	if cand == nil || cand.status != controlplane.CandidateSoaking {
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()

	if a.cfg.Shadow != nil {
		rep := a.cfg.Shadow.Report()
		if rep.CandidateHash == cand.hash {
			var samples, agreements uint64
			for _, c := range rep.Collectives {
				samples += c.Samples
				agreements += c.Agreements
			}
			a.mu.Lock()
			cand.samples = samples
			if samples > 0 {
				cand.agreement = float64(agreements) / float64(samples)
			}
			a.mu.Unlock()
		}
	}

	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cand != cand || cand.status != controlplane.CandidateSoaking {
		return // aborted or replaced while we polled the shadow report
	}
	if cand.samples >= a.cfg.MinShadowSamples && cand.agreement < a.cfg.MinAgreement {
		cand.status = controlplane.CandidateRejected
		a.rejected[cand.hash] = fmt.Sprintf("shadow agreement %.3f below %.3f over %d samples",
			cand.agreement, a.cfg.MinAgreement, cand.samples)
		if a.cfg.Shadow != nil {
			a.cfg.Shadow.ClearCandidate()
		}
		a.verdicts.Inc("rejected")
		a.o.Logger.Warn("replica rejected candidate after soak",
			"hash", shortHash(cand.hash),
			"agreement", cand.agreement,
			"samples", cand.samples)
		return
	}
	if now.Before(cand.deadline) {
		return
	}
	if a.manifest.DesiredHash != cand.hash {
		// The manifest stopped desiring this hash while it soaked but the
		// reconcile-side abort has not caught up (e.g. polls are failing
		// and the last-known manifest already reflects the rollback).
		// Promoting now would serve a withdrawn bundle: drop the
		// candidate instead and let reconcile converge on what the
		// control plane actually wants.
		a.dropCandidateLocked("manifest no longer desires soaking candidate")
		return
	}
	// Deadline reached without the gate tripping: promote. Thin evidence
	// promotes on benefit of the doubt — the control plane still gates
	// the fleet stage on post-promotion heartbeats.
	if _, err := a.cfg.Registry.Promote(cand.genID); err != nil {
		cand.status = controlplane.CandidateRejected
		a.rejected[cand.hash] = "promote failed: " + err.Error()
		a.verdicts.Inc("rejected")
		a.o.Logger.Warn("replica candidate promote failed",
			"generation", cand.genID, "error", err.Error())
		return
	}
	cand.status = controlplane.CandidatePromoted
	a.verdicts.Inc("promoted")
	a.o.Logger.Info("replica promoted candidate after soak",
		"generation", cand.genID,
		"hash", shortHash(cand.hash),
		"agreement", cand.agreement,
		"samples", cand.samples)
}

// abortWithdrawnCandidate drops a soaking candidate whose hash the
// manifest no longer desires. Aborting is not a verdict on the bundle —
// the hash is not marked rejected — but the half-soaked generation is
// forgotten (removed from known) so a future rollout of the same hash
// starts a fresh pull-and-soak instead of taking the vetted-resident
// fast path.
func (a *Agent) abortWithdrawnCandidate(desired string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cand == nil || a.cand.status != controlplane.CandidateSoaking || a.cand.hash == desired {
		return
	}
	a.dropCandidateLocked("withdrawn by manifest, now desires " + shortHash(desired))
}

// dropCandidateLocked clears the current candidate and its shadow
// staging without judging the hash. Caller holds a.mu.
func (a *Agent) dropCandidateLocked(why string) {
	cand := a.cand
	a.cand = nil
	delete(a.known, cand.hash)
	if a.cfg.Shadow != nil {
		a.cfg.Shadow.ClearCandidate()
	}
	a.verdicts.Inc("aborted")
	a.o.Logger.Info("replica aborted soaking candidate",
		"hash", shortHash(cand.hash),
		"reason", why,
		"samples", cand.samples,
		"agreement", cand.agreement)
}

// fetchBundle pulls bundle bytes by content hash.
func (a *Agent) fetchBundle(ctx context.Context, hash string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		a.cfg.ControlPlane+"/v1/bundles/"+hash, nil)
	if err != nil {
		return nil, err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("fetch bundle %s: status %d", shortHash(hash), resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 64<<20))
}

// sendHeartbeat reports this replica's serving state and evidence.
func (a *Agent) sendHeartbeat(ctx context.Context) error {
	hb := a.buildHeartbeat()
	body, err := json.Marshal(hb)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.ControlPlane+"/v1/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("heartbeat: status %d", resp.StatusCode)
	}
	var ack controlplane.HeartbeatAck
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&ack); err != nil {
		return fmt.Errorf("decode heartbeat ack: %w", err)
	}
	a.mu.Lock()
	a.ring = ack.Ring
	a.mu.Unlock()
	return nil
}

// buildHeartbeat assembles the wire heartbeat from the local stack.
func (a *Agent) buildHeartbeat() controlplane.Heartbeat {
	a.mu.Lock()
	ring := a.ring
	cand := a.cand
	a.mu.Unlock()

	hb := controlplane.Heartbeat{
		ReplicaID:       a.cfg.ReplicaID,
		Addr:            a.cfg.Advertise,
		Ring:            ring,
		CandidateStatus: controlplane.CandidateNone,
		UptimeSeconds:   a.cfg.Now().Sub(a.started).Seconds(),
	}
	if g := a.cfg.Registry.ActiveGeneration(); g != nil {
		hb.ActiveGeneration = g.ID()
		hb.ActiveHash = g.Hash()
	}
	if cand != nil {
		hb.CandidateHash = cand.hash
		hb.CandidateStatus = cand.status
		hb.CandidateSamples = cand.samples
		hb.CandidateAgreement = cand.agreement
	}
	if a.cfg.Health != nil {
		sum := a.cfg.Health.Summary()
		hb.DriftStatus = sum.DriftStatus
		hb.LowMarginRate = sum.LowMarginRate
	}
	if a.cfg.SLO != nil {
		a.cfg.SLO.Refresh()
		rep := a.cfg.SLO.Report()
		if len(rep.Windows) > 0 {
			hb.SelectP99US = rep.Windows[0].Latency.P99US
		}
	}
	return hb
}

// Status reports what this node believes the fleet wants — the /healthz
// "desired" block.
func (a *Agent) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Status{
		ControlPlane:      a.cfg.ControlPlane,
		ReplicaID:         a.cfg.ReplicaID,
		Ring:              a.ring,
		RolloutState:      a.manifest.RolloutState,
		DesiredHash:       a.manifest.DesiredHash,
		DesiredGeneration: a.manifest.DesiredGeneration,
		LastPoll:          a.lastPoll,
		LastError:         a.lastError,
	}
	if a.cand != nil {
		st.CandidateHash = a.cand.hash
		st.CandidateStatus = a.cand.status
	}
	return st
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}
