package replica

import (
	"testing"
	"time"
)

func TestDebounceRequiresTwoObservations(t *testing.T) {
	var d Debounce[string]
	if d.Observe("a") {
		t.Fatal("adopted on first sight")
	}
	if !d.Observe("a") {
		t.Fatal("did not adopt after two identical observations")
	}
	if d.Applied() != "a" {
		t.Fatalf("Applied = %q, want a", d.Applied())
	}
	// Re-observing the adopted value never fires again.
	if d.Observe("a") || d.Observe("a") {
		t.Fatal("re-adopted an unchanged value")
	}
}

func TestDebounceRestartsOnFlappingValue(t *testing.T) {
	var d Debounce[string]
	d.Observe("a")
	// The value changed mid-confirmation: the stability count restarts.
	if d.Observe("b") {
		t.Fatal("adopted a flapping value")
	}
	if !d.Observe("b") {
		t.Fatal("did not adopt after b stabilized")
	}
	if d.Applied() != "b" {
		t.Fatalf("Applied = %q, want b", d.Applied())
	}
}

func TestDebounceClearDropsPending(t *testing.T) {
	var d Debounce[int]
	d.Observe(7)
	d.Clear() // source vanished mid-confirmation
	if d.Observe(7) {
		t.Fatal("adopted after Clear without a fresh double observation")
	}
	if !d.Observe(7) {
		t.Fatal("did not adopt after re-confirmation")
	}
}

func TestBackoffDoublesToMaxAndResets(t *testing.T) {
	b := Backoff{Base: time.Second, Max: 10 * time.Second}
	want := []time.Duration{1, 2, 4, 8, 10, 10}
	for i, w := range want {
		if got := b.Next(); got != w*time.Second {
			t.Fatalf("Next #%d = %v, want %v", i, got, w*time.Second)
		}
	}
	b.Reset()
	if got := b.Next(); got != time.Second {
		t.Fatalf("Next after Reset = %v, want 1s", got)
	}
}

func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if got := b.Next(); got != time.Second {
		t.Fatalf("zero-value first Next = %v, want 1s", got)
	}
	for i := 0; i < 10; i++ {
		if got := b.Next(); got > 30*time.Second {
			t.Fatalf("zero-value backoff exceeded 30s: %v", got)
		}
	}
}
