package replica

import (
	"context"
	"os"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
)

// FileWatcher polls a bundle file and feeds changed content through the
// registry: mtime+size change detection, the shared two-poll Debounce
// (the file must look identical on two consecutive polls before it is
// read, so a writer mid-copy is never loaded), content-hash
// deduplication (via the registry), and auto-promotion of successfully
// staged generations. Invalid content is rejected and remembered, so a
// bad artifact is logged once, never retried in a loop, and never
// disturbs the active generation.
//
// This is the PR 4 `-bundle-watch` poller, relocated from pkg/registry
// so that the local-disk and network pollers share one debounce
// implementation. Metric names are unchanged.
type FileWatcher struct {
	reg      *registry.Registry
	o        *obs.Obs
	path     string
	interval time.Duration
	deb      Debounce[fileSig]

	polls   *obs.Counter
	reloads *obs.Counter // {status: promoted|invalid|duplicate}
}

// fileSig is the cheap change-detection signature of the watched file.
type fileSig struct {
	modTime time.Time
	size    int64
}

// NewFileWatcher builds a watcher over path with the given poll interval
// (values below 100ms are clamped up to keep stat traffic sane; tests use
// SetInterval to go faster).
func NewFileWatcher(reg *registry.Registry, o *obs.Obs, path string, interval time.Duration) *FileWatcher {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return &FileWatcher{
		reg:      reg,
		o:        o,
		path:     path,
		interval: interval,
		polls: o.Registry.Counter("pmlmpi_watcher_polls_total",
			"Bundle-watcher poll cycles."),
		reloads: o.Registry.Counter("pmlmpi_watcher_reloads_total",
			"Bundle-watcher reload attempts after a stable file change, by outcome.", "status"),
	}
}

// SetInterval overrides the poll interval without clamping — for tests.
func (w *FileWatcher) SetInterval(d time.Duration) { w.interval = d }

// Run polls until ctx is cancelled. The first stable sighting of the file
// goes through the registry like any change; content the server already
// loaded at startup dedups by hash into a no-op, so there is no startup
// race between the initial load and a concurrent overwrite.
func (w *FileWatcher) Run(ctx context.Context) {
	w.o.Logger.Info("bundle watcher started",
		"path", w.path, "interval", w.interval.String())
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			w.o.Logger.Info("bundle watcher stopped", "path", w.path)
			return
		case <-t.C:
			w.poll()
		}
	}
}

func (w *FileWatcher) poll() {
	w.polls.Inc()
	fi, err := os.Stat(w.path)
	if err != nil {
		// A transiently missing file (atomic-rename writers) is not a
		// change; just wait for it to reappear.
		w.deb.Clear()
		return
	}
	if !w.deb.Observe(fileSig{modTime: fi.ModTime(), size: fi.Size()}) {
		return
	}
	// Stable across two polls: adopt it.
	data, err := os.ReadFile(w.path)
	if err != nil {
		w.reloads.Inc("invalid")
		w.o.Logger.Warn("bundle watcher read failed", "path", w.path, "error", err.Error())
		return
	}
	gen, err := w.reg.LoadData(data, w.path)
	if err != nil {
		// Rejected: the active generation is untouched, and the debounce
		// already recorded this content so it is not retried every poll.
		w.reloads.Inc("invalid")
		w.o.Logger.Warn("bundle watcher rejected changed bundle",
			"path", w.path, "error", err.Error())
		return
	}
	if active := w.reg.ActiveGeneration(); active != nil && active.ID() == gen.ID() {
		w.reloads.Inc("duplicate")
		return
	}
	if _, err := w.reg.Promote(gen.ID()); err != nil {
		w.reloads.Inc("invalid")
		w.o.Logger.Warn("bundle watcher promote failed",
			"generation", gen.ID(), "error", err.Error())
		return
	}
	w.reloads.Inc("promoted")
	w.o.Logger.Info("bundle watcher promoted changed bundle",
		"path", w.path, "generation", gen.ID(), "hash", gen.Bundle().ShortHash())
}
