package replica

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/controlplane"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
)

// newCtl spins up a real control plane over httptest with one stable
// bundle seeded, returning the server URL, the rollout controller, and
// the stable hash.
func newCtl(t *testing.T) (string, *controlplane.Store, *controlplane.Rollout, string) {
	t.Helper()
	store, _ := controlplane.NewStore("")
	ro := controlplane.NewRollout(store, controlplane.RolloutConfig{})
	srv := controlplane.NewServer(store, ro, obs.NewForTest(), controlplane.ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	stable, _, err := store.Put(bundleJSON(t, 1))
	if err != nil {
		t.Fatalf("seed stable bundle: %v", err)
	}
	if err := ro.SetStable(stable); err != nil {
		t.Fatalf("SetStable: %v", err)
	}
	return ts.URL, store, ro, stable
}

func newAgent(t *testing.T, url string, reg *registry.Registry, o *obs.Obs) *Agent {
	t.Helper()
	a, err := NewAgent(o, AgentConfig{
		ControlPlane: url,
		ReplicaID:    "r-test",
		Registry:     reg,
		PollInterval: 10 * time.Millisecond,
		StageSoak:    -1, // no shadow configured: promote immediately
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	return a
}

func TestAgentBootstrapsFromControlPlane(t *testing.T) {
	url, _, ro, stable := newCtl(t)
	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	a := newAgent(t, url, reg, o)

	ctx := context.Background()
	// Two ticks: the desired-hash debounce needs two observations.
	a.Tick(ctx)
	a.Tick(ctx)

	g := reg.ActiveGeneration()
	if g == nil || g.Hash() != stable {
		t.Fatalf("active generation = %v, want stable hash %s", g, stable[:12])
	}
	// The heartbeat registered us with the control plane.
	snap := ro.Snapshot()
	if len(snap.Replicas) != 1 || snap.Replicas[0].ReplicaID != "r-test" {
		t.Fatalf("control plane replicas = %+v", snap.Replicas)
	}
	if snap.Replicas[0].Heartbeat.ActiveHash != stable {
		t.Fatalf("heartbeat active hash = %s, want stable", snap.Replicas[0].Heartbeat.ActiveHash[:12])
	}
	st := a.Status()
	if st.DesiredHash != stable || st.Ring != controlplane.RingCanary {
		t.Fatalf("Status = %+v, want desired=stable ring=canary", st)
	}
	// Steady state: further polls are conditional 304s.
	before := a.polls.Value("not_modified")
	a.Tick(ctx)
	if a.polls.Value("not_modified") != before+1 {
		t.Fatal("steady-state poll was not a 304")
	}
}

func TestAgentFollowsRolloutAndPromotesResidentOnRevert(t *testing.T) {
	url, store, ro, stable := newCtl(t)
	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	a := newAgent(t, url, reg, o)
	ctx := context.Background()
	a.Tick(ctx)
	a.Tick(ctx)

	// Roll out a new bundle. This agent is the whole fleet, so its
	// confirmations drive the rollout to done.
	cand, _, err := store.Put(bundleJSON(t, 2))
	if err != nil {
		t.Fatalf("Put candidate: %v", err)
	}
	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for i := 0; i < 6; i++ {
		a.Tick(ctx)
	}
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != cand {
		t.Fatal("agent did not adopt the rolled-out candidate")
	}
	if s := ro.Snapshot(); s.State != controlplane.StateDone || s.StableHash != cand {
		t.Fatalf("rollout state = %s stable = %s, want done/%s", s.State, s.StableHash[:12], cand[:12])
	}

	// Revert: a rollout back to the original hash must reuse the resident
	// generation — no network pull.
	pullsBefore := a.pulls.Value("ok")
	if err := ro.Start(stable); err != nil {
		t.Fatalf("Start revert: %v", err)
	}
	for i := 0; i < 6; i++ {
		a.Tick(ctx)
	}
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != stable {
		t.Fatal("agent did not revert to the stable hash")
	}
	if a.pulls.Value("ok") != pullsBefore {
		t.Fatalf("revert re-pulled the bundle (%v pulls, had %v)", a.pulls.Value("ok"), pullsBefore)
	}
}

// TestAgentRejectsHashMismatch serves bytes whose content hash disagrees
// with the manifest's desired hash — a corrupt or hostile control plane —
// and asserts the agent never stages them.
func TestAgentRejectsHashMismatch(t *testing.T) {
	good := bundleJSON(t, 1)
	evil := bundleJSON(t, 2)
	goodHash := controlplane.HashOf(good)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/manifest", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(controlplane.Manifest{
			Ring: controlplane.RingFleet, DesiredHash: goodHash, RolloutState: controlplane.StateIdle,
		})
	})
	mux.HandleFunc("/v1/bundles/", func(w http.ResponseWriter, r *http.Request) {
		w.Write(evil) // wrong bytes for the advertised hash
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(controlplane.HeartbeatAck{Ring: controlplane.RingFleet})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	a := newAgent(t, ts.URL, reg, o)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		a.Tick(ctx)
	}
	if reg.ActiveGeneration() != nil {
		t.Fatal("agent promoted a bundle whose hash did not match the manifest")
	}
	if a.pulls.Value("invalid") == 0 {
		t.Fatal("hash mismatch was not counted as an invalid pull")
	}
}

// TestAgentBacksOffOnControlPlaneErrors verifies failed polls arm the
// shared backoff (skipping polls until the deadline) and that recovery
// resets it.
func TestAgentBacksOffOnControlPlaneErrors(t *testing.T) {
	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	a, err := NewAgent(o, AgentConfig{
		ControlPlane: "http://127.0.0.1:1", // nothing listens here
		ReplicaID:    "r-test",
		Registry:     reg,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	ctx := context.Background()
	a.Tick(ctx)
	if a.polls.Value("error") != 1 {
		t.Fatalf("poll errors = %v, want 1", a.polls.Value("error"))
	}
	if a.Status().LastError == "" {
		t.Fatal("LastError empty after failed poll")
	}
	// The next tick lands inside the backoff window: no second attempt.
	a.Tick(ctx)
	if a.polls.Value("error") != 1 {
		t.Fatalf("poll errors = %v during backoff window, want still 1", a.polls.Value("error"))
	}
}
