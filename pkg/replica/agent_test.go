package replica

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/controlplane"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
)

// newCtl spins up a real control plane over httptest with one stable
// bundle seeded, returning the server URL, the rollout controller, and
// the stable hash.
func newCtl(t *testing.T) (string, *controlplane.Store, *controlplane.Rollout, string) {
	t.Helper()
	store, _ := controlplane.NewStore("")
	ro := controlplane.NewRollout(store, controlplane.RolloutConfig{})
	srv := controlplane.NewServer(store, ro, obs.NewForTest(), controlplane.ServerConfig{})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	stable, _, err := store.Put(bundleJSON(t, 1))
	if err != nil {
		t.Fatalf("seed stable bundle: %v", err)
	}
	if err := ro.SetStable(stable); err != nil {
		t.Fatalf("SetStable: %v", err)
	}
	return ts.URL, store, ro, stable
}

func newAgent(t *testing.T, url string, reg *registry.Registry, o *obs.Obs) *Agent {
	t.Helper()
	a, err := NewAgent(o, AgentConfig{
		ControlPlane: url,
		ReplicaID:    "r-test",
		Registry:     reg,
		PollInterval: 10 * time.Millisecond,
		StageSoak:    -1, // no shadow configured: promote immediately
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	return a
}

func TestAgentBootstrapsFromControlPlane(t *testing.T) {
	url, _, ro, stable := newCtl(t)
	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	a := newAgent(t, url, reg, o)

	ctx := context.Background()
	// Two ticks: the desired-hash debounce needs two observations.
	a.Tick(ctx)
	a.Tick(ctx)

	g := reg.ActiveGeneration()
	if g == nil || g.Hash() != stable {
		t.Fatalf("active generation = %v, want stable hash %s", g, stable[:12])
	}
	// The heartbeat registered us with the control plane.
	snap := ro.Snapshot()
	if len(snap.Replicas) != 1 || snap.Replicas[0].ReplicaID != "r-test" {
		t.Fatalf("control plane replicas = %+v", snap.Replicas)
	}
	if snap.Replicas[0].Heartbeat.ActiveHash != stable {
		t.Fatalf("heartbeat active hash = %s, want stable", snap.Replicas[0].Heartbeat.ActiveHash[:12])
	}
	st := a.Status()
	if st.DesiredHash != stable || st.Ring != controlplane.RingCanary {
		t.Fatalf("Status = %+v, want desired=stable ring=canary", st)
	}
	// Steady state: further polls are conditional 304s.
	before := a.polls.Value("not_modified")
	a.Tick(ctx)
	if a.polls.Value("not_modified") != before+1 {
		t.Fatal("steady-state poll was not a 304")
	}
}

func TestAgentFollowsRolloutAndPromotesResidentOnRevert(t *testing.T) {
	url, store, ro, stable := newCtl(t)
	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	a := newAgent(t, url, reg, o)
	ctx := context.Background()
	a.Tick(ctx)
	a.Tick(ctx)

	// Roll out a new bundle. This agent is the whole fleet, so its
	// confirmations drive the rollout to done.
	cand, _, err := store.Put(bundleJSON(t, 2))
	if err != nil {
		t.Fatalf("Put candidate: %v", err)
	}
	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for i := 0; i < 6; i++ {
		a.Tick(ctx)
	}
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != cand {
		t.Fatal("agent did not adopt the rolled-out candidate")
	}
	if s := ro.Snapshot(); s.State != controlplane.StateDone || s.StableHash != cand {
		t.Fatalf("rollout state = %s stable = %s, want done/%s", s.State, s.StableHash[:12], cand[:12])
	}

	// Revert: a rollout back to the original hash must reuse the resident
	// generation — no network pull.
	pullsBefore := a.pulls.Value("ok")
	if err := ro.Start(stable); err != nil {
		t.Fatalf("Start revert: %v", err)
	}
	for i := 0; i < 6; i++ {
		a.Tick(ctx)
	}
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != stable {
		t.Fatal("agent did not revert to the stable hash")
	}
	if a.pulls.Value("ok") != pullsBefore {
		t.Fatalf("revert re-pulled the bundle (%v pulls, had %v)", a.pulls.Value("ok"), pullsBefore)
	}
}

// TestAgentRejectsHashMismatch serves bytes whose content hash disagrees
// with the manifest's desired hash — a corrupt or hostile control plane —
// and asserts the agent never stages them.
func TestAgentRejectsHashMismatch(t *testing.T) {
	good := bundleJSON(t, 1)
	evil := bundleJSON(t, 2)
	goodHash := controlplane.HashOf(good)

	mux := http.NewServeMux()
	mux.HandleFunc("/v1/manifest", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(controlplane.Manifest{
			Ring: controlplane.RingFleet, DesiredHash: goodHash, RolloutState: controlplane.StateIdle,
		})
	})
	mux.HandleFunc("/v1/bundles/", func(w http.ResponseWriter, r *http.Request) {
		w.Write(evil) // wrong bytes for the advertised hash
	})
	mux.HandleFunc("/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(controlplane.HeartbeatAck{Ring: controlplane.RingFleet})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	a := newAgent(t, ts.URL, reg, o)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		a.Tick(ctx)
	}
	if reg.ActiveGeneration() != nil {
		t.Fatal("agent promoted a bundle whose hash did not match the manifest")
	}
	if a.pulls.Value("invalid") == 0 {
		t.Fatal("hash mismatch was not counted as an invalid pull")
	}
}

// newSoakingAgent builds an agent with shadow evaluation and a manual
// clock, so soak deadlines are driven by the test instead of wall time.
// MinShadowSamples is set high enough that the agreement gate can never
// trip — only the deadline (and the withdrawal checks) decide.
func newSoakingAgent(t *testing.T, url string, clock *time.Time) (*Agent, *registry.Registry) {
	t.Helper()
	o := obs.NewForTest()
	sh := registry.NewShadow(o, registry.ShadowConfig{Fraction: 1})
	reg := registry.New(o, registry.Config{Shadow: sh})
	a, err := NewAgent(o, AgentConfig{
		ControlPlane:     url,
		ReplicaID:        "r-test",
		Registry:         reg,
		Shadow:           sh,
		PollInterval:     10 * time.Millisecond,
		StageSoak:        10 * time.Second,
		MinShadowSamples: 1 << 20,
		Now:              func() time.Time { return *clock },
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	return a, reg
}

// TestAgentAbortsWithdrawnCandidateMidSoak covers the operator-rollback
// race: the control plane withdraws a candidate while it is still
// soaking on this replica. The agent must abort the soak — the deadline
// must never promote the withdrawn hash — without marking it rejected,
// so a later re-rollout of the same hash soaks afresh.
func TestAgentAbortsWithdrawnCandidateMidSoak(t *testing.T) {
	url, store, ro, stable := newCtl(t)
	clock := time.Unix(1_700_000_000, 0)
	a, reg := newSoakingAgent(t, url, &clock)
	ctx := context.Background()

	a.Tick(ctx)
	a.Tick(ctx)
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != stable {
		t.Fatal("agent did not bootstrap to stable")
	}

	cand, _, err := store.Put(bundleJSON(t, 2))
	if err != nil {
		t.Fatalf("Put candidate: %v", err)
	}
	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start: %v", err)
	}
	a.Tick(ctx)
	a.Tick(ctx)
	if st := a.Status(); st.CandidateHash != cand || st.CandidateStatus != controlplane.CandidateSoaking {
		t.Fatalf("candidate not soaking after rollout start: %+v", st)
	}

	// The operator rolls back while the candidate soaks.
	if err := ro.Rollback("operator rollback"); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	a.Tick(ctx)
	if st := a.Status(); st.CandidateHash != "" {
		t.Fatalf("candidate not aborted after rollback: %+v", st)
	}

	// Even long past the soak deadline nothing promotes.
	clock = clock.Add(time.Minute)
	a.Tick(ctx)
	a.Tick(ctx)
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != stable {
		t.Fatal("agent promoted a withdrawn candidate")
	}
	if v := a.verdicts.Value("aborted"); v != 1 {
		t.Fatalf("aborted verdicts = %v, want 1", v)
	}
	if v := a.verdicts.Value("rejected"); v != 0 {
		t.Fatalf("rejected verdicts = %v, want 0 (abort is not a judgment)", v)
	}

	// A re-rollout of the same hash is not sticky-blocked: the agent
	// re-pulls and re-soaks from scratch.
	if err := ro.Start(cand); err != nil {
		t.Fatalf("re-Start: %v", err)
	}
	a.Tick(ctx)
	a.Tick(ctx)
	if st := a.Status(); st.CandidateHash != cand || st.CandidateStatus != controlplane.CandidateSoaking {
		t.Fatalf("re-rollout did not restage the candidate: %+v", st)
	}
	clock = clock.Add(11 * time.Second)
	a.Tick(ctx)
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != cand {
		t.Fatal("re-rolled-out candidate did not promote at the soak deadline")
	}
}

// TestAgentRevertsAfterStaleManifestPromote covers the uglier variant:
// the rollback lands while the control plane is unreachable, so the
// replica's last-known manifest still desires the candidate when the
// soak deadline promotes it. Once polling recovers the replica must
// converge back to the stable hash rather than serving the rolled-back
// bundle forever.
func TestAgentRevertsAfterStaleManifestPromote(t *testing.T) {
	store, _ := controlplane.NewStore("")
	ro := controlplane.NewRollout(store, controlplane.RolloutConfig{})
	ctl := controlplane.NewServer(store, ro, obs.NewForTest(), controlplane.ServerConfig{})
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "control plane unreachable", http.StatusServiceUnavailable)
			return
		}
		ctl.ServeHTTP(w, r)
	}))
	defer ts.Close()
	stable, _, err := store.Put(bundleJSON(t, 1))
	if err != nil {
		t.Fatalf("seed stable: %v", err)
	}
	if err := ro.SetStable(stable); err != nil {
		t.Fatalf("SetStable: %v", err)
	}

	clock := time.Unix(1_700_000_000, 0)
	a, reg := newSoakingAgent(t, ts.URL, &clock)
	ctx := context.Background()
	a.Tick(ctx)
	a.Tick(ctx)

	cand, _, err := store.Put(bundleJSON(t, 2))
	if err != nil {
		t.Fatalf("Put candidate: %v", err)
	}
	if err := ro.Start(cand); err != nil {
		t.Fatalf("Start: %v", err)
	}
	a.Tick(ctx)
	a.Tick(ctx)
	if st := a.Status(); st.CandidateStatus != controlplane.CandidateSoaking {
		t.Fatalf("candidate not soaking: %+v", st)
	}

	// The control plane goes dark, then rolls back where the replica
	// cannot see it; the soak deadline passes during the outage.
	down.Store(true)
	if err := ro.Rollback("operator rollback during outage"); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	clock = clock.Add(30 * time.Second)
	a.Tick(ctx)
	// With only a stale manifest that still desires the candidate, the
	// deadline promote fires — benefit of the doubt.
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != cand {
		t.Fatal("deadline promote with a stale manifest did not fire")
	}

	// Polling recovers: the replica must revert to the stable hash.
	down.Store(false)
	for i := 0; i < 6; i++ {
		clock = clock.Add(5 * time.Second) // clear any armed backoff
		a.Tick(ctx)
	}
	if g := reg.ActiveGeneration(); g == nil || g.Hash() != stable {
		got := ""
		if g := reg.ActiveGeneration(); g != nil {
			got = g.Hash()[:12]
		}
		t.Fatalf("replica serves %q after recovery, want rolled-back stable", got)
	}
}

// TestAgentBacksOffOnControlPlaneErrors verifies failed polls arm the
// shared backoff (skipping polls until the deadline) and that recovery
// resets it.
func TestAgentBacksOffOnControlPlaneErrors(t *testing.T) {
	o := obs.NewForTest()
	reg := registry.New(o, registry.Config{})
	a, err := NewAgent(o, AgentConfig{
		ControlPlane: "http://127.0.0.1:1", // nothing listens here
		ReplicaID:    "r-test",
		Registry:     reg,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	ctx := context.Background()
	a.Tick(ctx)
	if a.polls.Value("error") != 1 {
		t.Fatalf("poll errors = %v, want 1", a.polls.Value("error"))
	}
	if a.Status().LastError == "" {
		t.Fatal("LastError empty after failed poll")
	}
	// The next tick lands inside the backoff window: no second attempt.
	a.Tick(ctx)
	if a.polls.Value("error") != 1 {
		t.Fatalf("poll errors = %v during backoff window, want still 1", a.polls.Value("error"))
	}
}
