package replica

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/registry"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

func bundleJSON(t *testing.T, seed int64) []byte {
	t.Helper()
	data, err := synth.JSON(synth.Config{Seed: seed})
	if err != nil {
		t.Fatalf("synth.JSON: %v", err)
	}
	return data
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFileWatcherPromotesChangedBundleAndRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	if err := os.WriteFile(path, bundleJSON(t, 1), 0o644); err != nil {
		t.Fatal(err)
	}

	o := obs.NewForTest()
	r := registry.New(o, registry.Config{})
	g1, err := r.Load(path)
	if err != nil {
		t.Fatalf("initial load: %v", err)
	}
	if _, err := r.Promote(g1.ID()); err != nil {
		t.Fatalf("initial promote: %v", err)
	}

	w := NewFileWatcher(r, o, path, time.Second)
	w.SetInterval(5 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	// Overwrite with new valid content: the watcher must stage and promote
	// it (after the one-poll debounce).
	if err := os.WriteFile(path, bundleJSON(t, 2), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "watcher to promote the changed bundle", func() bool {
		_, gen := r.Active()
		return gen > g1.ID()
	})
	_, gen2 := r.Active()

	// Overwrite with garbage: the watcher must reject it and leave the
	// active generation untouched.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "watcher to observe and reject the garbage", func() bool {
		return w.reloads.Value("invalid") >= 1
	})
	if _, gen := r.Active(); gen != gen2 {
		t.Fatalf("garbage content changed active generation from %d to %d", gen2, gen)
	}

	// Recover with a third valid bundle: promotion resumes.
	if err := os.WriteFile(path, bundleJSON(t, 3), 0o644); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "watcher to promote the recovery bundle", func() bool {
		_, gen := r.Active()
		return gen > gen2
	})
}

func TestFileWatcherIgnoresUnchangedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	if err := os.WriteFile(path, bundleJSON(t, 1), 0o644); err != nil {
		t.Fatal(err)
	}
	o := obs.NewForTest()
	r := registry.New(o, registry.Config{})
	g, _ := r.Load(path)
	r.Promote(g.ID())

	w := NewFileWatcher(r, o, path, time.Second)
	w.SetInterval(2 * time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	waitFor(t, 5*time.Second, "a few poll cycles", func() bool {
		return w.polls.Value() >= 5
	})
	if n := w.reloads.Value("promoted"); n != 0 {
		t.Fatalf("watcher reloaded %v times with an unchanged file", n)
	}
	if _, gen := r.Active(); gen != g.ID() {
		t.Fatalf("active generation drifted to %d", gen)
	}
}
