// Package slo tracks server-side service-level objectives for the selection
// path: a latency objective ("99% of selects complete within N") and an
// availability objective ("at least X of selects succeed"), both evaluated
// over rolling multi-window time rings (1m / 5m / 1h by default) in the
// standard SRE burn-rate formulation. A burn rate of 1.0 means the error
// budget is being consumed exactly as fast as the objective allows; >1 means
// the budget is burning down and the window will eventually violate; a
// multi-window alert (short AND long window both >1) separates real
// regressions from blips.
//
// The tracker is fed one Record per completed Select (success or failure)
// off the response path — one bucket search plus one striped-lock slot
// update, no allocation — and is read by /debug/slo and the pmlmpi_slo_*
// metrics.
package slo

import (
	"fmt"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// Objectives are the configured SLO targets.
type Objectives struct {
	// SelectP99 is the latency objective: 99% of selects must complete
	// within this duration. Zero disables latency burn tracking.
	SelectP99 time.Duration
	// Availability is the success-rate objective in (0,1), e.g. 0.999 for
	// "three nines" (an error budget of 0.1% of requests). Zero disables
	// availability burn tracking.
	Availability float64
}

// latencyBudget is the allowed slow fraction implied by a p99 objective.
const latencyBudget = 0.01

// DefaultWindows are the rolling evaluation windows, shortest first.
var DefaultWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// ringSlot is the time-slot width of the backing ring. 5s keeps the 1h
// window at 720 slots while giving the 1m window 12-slot resolution.
const ringSlot = 5 * time.Second

// Tracker evaluates the objectives over rolling windows.
type Tracker struct {
	obj     Objectives
	windows []time.Duration
	ring    *obs.WindowRing

	gLatencyBurn  *obs.Gauge
	gAvailBurn    *obs.Gauge
	gAvailability *obs.Gauge
	gSlowFraction *obs.Gauge
	cRecorded     *obs.Counter
}

// New builds a tracker over DefaultWindows, registering its instruments
// (pmlmpi_slo_*) in reg. The objectives are exported as gauges so dashboards
// can plot measured values against targets without re-configuration.
func New(reg *obs.Registry, obj Objectives) *Tracker {
	maxWin := DefaultWindows[len(DefaultWindows)-1]
	t := &Tracker{
		obj:     obj,
		windows: DefaultWindows,
		ring:    obs.NewWindowRing(ringSlot, int(maxWin/ringSlot), obs.LatencyBuckets),
		gLatencyBurn: reg.Gauge("pmlmpi_slo_latency_burn_rate",
			"Latency error-budget burn rate per rolling window (1.0 = burning exactly at budget).", "window"),
		gAvailBurn: reg.Gauge("pmlmpi_slo_availability_burn_rate",
			"Availability error-budget burn rate per rolling window.", "window"),
		gAvailability: reg.Gauge("pmlmpi_slo_availability",
			"Measured success fraction per rolling window.", "window"),
		gSlowFraction: reg.Gauge("pmlmpi_slo_slow_fraction",
			"Fraction of selects slower than the latency objective, per rolling window.", "window"),
		cRecorded: reg.Counter("pmlmpi_slo_observations_total",
			"Select outcomes fed into the SLO windows.", "outcome"),
	}
	reg.Gauge("pmlmpi_slo_objective_select_p99_seconds",
		"Configured latency objective: 99% of selects must finish within this.").Set(obj.SelectP99.Seconds())
	reg.Gauge("pmlmpi_slo_objective_availability",
		"Configured availability objective (success fraction).").Set(obj.Availability)
	return t
}

// SetClock replaces the tracker's time source, for tests. Call before any
// Record traffic.
func (t *Tracker) SetClock(now func() time.Time) { t.ring.SetClock(now) }

// Objectives returns the configured targets.
func (t *Tracker) Objectives() Objectives { return t.obj }

// Record feeds one completed select (latency in seconds, success flag) into
// every window. Safe for concurrent use; intended to be called once per
// Select on the serving path.
func (t *Tracker) Record(seconds float64, ok bool) {
	t.ring.Record(seconds, ok)
	if ok {
		t.cRecorded.Inc("ok")
	} else {
		t.cRecorded.Inc("error")
	}
}

// Window is the evaluation of the objectives over one rolling window, as
// served on /debug/slo.
type Window struct {
	Window string `json:"window"`
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// Availability is the measured success fraction (1 when idle — an empty
	// window has consumed no budget).
	Availability float64 `json:"availability"`
	// AvailabilityBurnRate is (error fraction) / (1 - objective).
	AvailabilityBurnRate float64 `json:"availability_burn_rate"`
	// SlowFraction is the share of selects slower than the latency objective.
	SlowFraction float64 `json:"slow_fraction"`
	// LatencyBurnRate is SlowFraction / 0.01 (the budget a p99 objective allows).
	LatencyBurnRate float64 `json:"latency_burn_rate"`
	Latency         obs.Summary `json:"latency"`
}

// Report is the full /debug/slo payload.
type Report struct {
	Objectives struct {
		SelectP99Seconds float64 `json:"select_p99_seconds"`
		Availability     float64 `json:"availability"`
	} `json:"objectives"`
	Windows []Window `json:"windows"`
}

// windowLabel renders a duration as a compact metric label ("1m", "5m", "1h").
func windowLabel(d time.Duration) string {
	switch {
	case d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	default:
		return fmt.Sprintf("%ds", d/time.Second)
	}
}

// Report evaluates every window now.
func (t *Tracker) Report() Report {
	var r Report
	r.Objectives.SelectP99Seconds = t.obj.SelectP99.Seconds()
	r.Objectives.Availability = t.obj.Availability
	r.Windows = make([]Window, 0, len(t.windows))
	for _, d := range t.windows {
		r.Windows = append(r.Windows, t.evalWindow(d))
	}
	return r
}

func (t *Tracker) evalWindow(d time.Duration) Window {
	snap := t.ring.Snapshot(d)
	w := Window{
		Window:       windowLabel(d),
		Count:        snap.Count,
		Errors:       snap.Errors,
		Availability: 1,
		Latency:      obs.SummaryFromBuckets(t.ring.Bounds(), snap.Counts, snap.Sum, snap.Count),
	}
	if snap.Count == 0 {
		return w
	}
	errFrac := float64(snap.Errors) / float64(snap.Count)
	w.Availability = 1 - errFrac
	if t.obj.Availability > 0 && t.obj.Availability < 1 {
		w.AvailabilityBurnRate = errFrac / (1 - t.obj.Availability)
	}
	if t.obj.SelectP99 > 0 {
		w.SlowFraction = slowFraction(t.ring.Bounds(), snap.Counts, snap.Count, t.obj.SelectP99.Seconds())
		w.LatencyBurnRate = w.SlowFraction / latencyBudget
	}
	return w
}

// slowFraction estimates the fraction of observations above threshold from
// non-cumulative bucket counts (+Inf last). The bucket straddling the
// threshold is split by linear interpolation.
func slowFraction(bounds []float64, counts []uint64, total uint64, threshold float64) float64 {
	if total == 0 {
		return 0
	}
	var slow float64
	lower := 0.0
	for i, n := range counts {
		if n == 0 {
			if i < len(bounds) {
				lower = bounds[i]
			}
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: no upper bound to interpolate against, so every
			// observation here counts as slow — the conservative reading.
			slow += float64(n)
			continue
		}
		upper := bounds[i]
		switch {
		case threshold <= lower:
			slow += float64(n)
		case threshold >= upper:
			// entire bucket fast
		default:
			slow += float64(n) * (upper - threshold) / (upper - lower)
		}
		lower = upper
	}
	return slow / float64(total)
}

// Refresh re-evaluates every window and publishes the results to the
// pmlmpi_slo_* gauges. Called on each /metrics scrape so exported burn
// rates are current without a background goroutine.
func (t *Tracker) Refresh() {
	for _, w := range t.Report().Windows {
		t.gLatencyBurn.Set(w.LatencyBurnRate, w.Window)
		t.gAvailBurn.Set(w.AvailabilityBurnRate, w.Window)
		t.gAvailability.Set(w.Availability, w.Window)
		t.gSlowFraction.Set(w.SlowFraction, w.Window)
	}
}
