package slo

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTracker(obj Objectives) (*Tracker, *fakeClock, *obs.Registry) {
	reg := obs.NewRegistry()
	t := New(reg, obj)
	clk := newFakeClock()
	t.SetClock(clk.now)
	return t, clk, reg
}

func window(t *testing.T, r Report, label string) Window {
	t.Helper()
	for _, w := range r.Windows {
		if w.Window == label {
			return w
		}
	}
	t.Fatalf("report has no %q window: %+v", label, r.Windows)
	return Window{}
}

// TestLatencyBurnRateOnSlowSelects is the acceptance-criteria test: inject
// deliberately slow selects and the burn rate must exceed 1; a normal
// microsecond-regime workload must burn ~0.
func TestLatencyBurnRateOnSlowSelects(t *testing.T) {
	tr, _, _ := newTracker(Objectives{SelectP99: time.Millisecond, Availability: 0.999})

	// 90 fast selects, 10 pathological ones: slow fraction 0.1 against a
	// 1% budget → burn rate 10.
	for i := 0; i < 90; i++ {
		tr.Record(10e-6, true)
	}
	for i := 0; i < 10; i++ {
		tr.Record(50e-3, true)
	}
	w := window(t, tr.Report(), "1m")
	if w.Count != 100 {
		t.Fatalf("count = %d", w.Count)
	}
	if w.LatencyBurnRate <= 1 {
		t.Errorf("burn rate with 10%% slow selects = %v, want > 1", w.LatencyBurnRate)
	}
	if math.Abs(w.SlowFraction-0.1) > 0.02 {
		t.Errorf("slow fraction = %v, want ~0.1", w.SlowFraction)
	}
	if math.Abs(w.LatencyBurnRate-10) > 2 {
		t.Errorf("burn rate = %v, want ~10", w.LatencyBurnRate)
	}
}

func TestLatencyBurnRateNormalWorkloadIsNearZero(t *testing.T) {
	tr, _, _ := newTracker(Objectives{SelectP99: time.Millisecond, Availability: 0.999})
	for i := 0; i < 1000; i++ {
		tr.Record(5e-6, true) // healthy µs-regime selects
	}
	w := window(t, tr.Report(), "1m")
	if w.LatencyBurnRate > 0.01 {
		t.Errorf("burn rate under normal workload = %v, want ~0", w.LatencyBurnRate)
	}
	if w.AvailabilityBurnRate != 0 {
		t.Errorf("availability burn with zero errors = %v", w.AvailabilityBurnRate)
	}
	if w.Availability != 1 {
		t.Errorf("availability = %v, want 1", w.Availability)
	}
}

func TestAvailabilityBurnRate(t *testing.T) {
	tr, _, _ := newTracker(Objectives{SelectP99: time.Millisecond, Availability: 0.999})
	for i := 0; i < 995; i++ {
		tr.Record(5e-6, true)
	}
	for i := 0; i < 5; i++ {
		tr.Record(5e-6, false)
	}
	// 0.5% errors against a 0.1% budget → burn rate 5.
	w := window(t, tr.Report(), "1m")
	if math.Abs(w.AvailabilityBurnRate-5) > 0.1 {
		t.Errorf("availability burn = %v, want ~5", w.AvailabilityBurnRate)
	}
	if math.Abs(w.Availability-0.995) > 1e-9 {
		t.Errorf("availability = %v, want 0.995", w.Availability)
	}
}

// TestMultiWindowSeparation pins the point of multiple windows: after a
// burst of slow selects ages past the short window, the 1m burn recovers
// while the 1h window still remembers the incident.
func TestMultiWindowSeparation(t *testing.T) {
	tr, clk, _ := newTracker(Objectives{SelectP99: time.Millisecond, Availability: 0.999})

	for i := 0; i < 100; i++ {
		tr.Record(50e-3, true) // incident: everything slow
	}
	clk.advance(10 * time.Minute)
	for i := 0; i < 100; i++ {
		tr.Record(5e-6, true) // recovered
	}

	r := tr.Report()
	if w := window(t, r, "1m"); w.LatencyBurnRate > 0.01 {
		t.Errorf("1m burn after recovery = %v, want ~0", w.LatencyBurnRate)
	}
	if w := window(t, r, "1h"); w.LatencyBurnRate <= 1 {
		t.Errorf("1h burn = %v, want > 1 (incident within the hour)", w.LatencyBurnRate)
	}
}

func TestIdleWindowsReportHealthy(t *testing.T) {
	tr, _, _ := newTracker(Objectives{SelectP99: time.Millisecond, Availability: 0.999})
	for _, w := range tr.Report().Windows {
		if w.Count != 0 || w.Availability != 1 || w.LatencyBurnRate != 0 || w.AvailabilityBurnRate != 0 {
			t.Errorf("idle window %q = %+v, want healthy zero state", w.Window, w)
		}
	}
}

func TestRefreshPublishesGauges(t *testing.T) {
	tr, _, reg := newTracker(Objectives{SelectP99: time.Millisecond, Availability: 0.999})
	for i := 0; i < 10; i++ {
		tr.Record(50e-3, true)
	}
	tr.Refresh()
	var b strings.Builder
	reg.WritePrometheus(&b)
	body := b.String()
	for _, want := range []string{
		`pmlmpi_slo_latency_burn_rate{window="1m"} 100`,
		`pmlmpi_slo_availability{window="1m"} 1`,
		`pmlmpi_slo_objective_select_p99_seconds 0.001`,
		`pmlmpi_slo_objective_availability 0.999`,
		`pmlmpi_slo_observations_total{outcome="ok"} 10`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestReportJSONShape pins the /debug/slo wire format.
func TestReportJSONShape(t *testing.T) {
	tr, _, _ := newTracker(Objectives{SelectP99: time.Millisecond, Availability: 0.999})
	tr.Record(5e-6, true)
	raw, err := json.Marshal(tr.Report())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"objectives"`, `"select_p99_seconds"`, `"availability"`,
		`"windows"`, `"window":"1m"`, `"window":"5m"`, `"window":"1h"`,
		`"latency_burn_rate"`, `"availability_burn_rate"`, `"slow_fraction"`,
		`"latency"`, `"p99_us"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("report JSON missing %s: %s", key, raw)
		}
	}
}

func TestSlowFractionInterpolation(t *testing.T) {
	bounds := []float64{0.001, 0.01, 0.1}
	// 10 observations in (0.01, 0.1]; threshold midway through the bucket
	// should count roughly half as slow.
	counts := []uint64{0, 0, 10, 0}
	got := slowFraction(bounds, counts, 10, 0.055)
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("straddled slow fraction = %v, want ~0.5", got)
	}
	if got := slowFraction(bounds, counts, 10, 0.2); got != 0 {
		t.Errorf("threshold above all mass: slow = %v, want 0", got)
	}
	if got := slowFraction(bounds, counts, 10, 0.001); got != 1 {
		t.Errorf("threshold below all mass: slow = %v, want 1", got)
	}
	// +Inf bucket mass is always slow.
	if got := slowFraction(bounds, []uint64{0, 0, 0, 5}, 5, 0.5); got != 1 {
		t.Errorf("+Inf mass slow = %v, want 1", got)
	}
}
