package analytics

import (
	"math"
	"sync"
	"testing"
)

func TestRecordAndSnapshotBasics(t *testing.T) {
	a := New(nil)
	a.Record("alltoall", "pairwise", 10e-6, false)
	a.Record("alltoall", "pairwise", 20e-6, true)
	a.Record("alltoall", "linear", 5e-6, false)
	a.Record("allgather", "ring", 1e-6, false)

	rows := a.Snapshot()
	if len(rows) != 3 {
		t.Fatalf("snapshot has %d rows, want 3: %+v", len(rows), rows)
	}
	// Sorted: allgather first, then alltoall by descending count.
	if rows[0].Collective != "allgather" || rows[1].Algorithm != "pairwise" || rows[2].Algorithm != "linear" {
		t.Errorf("row order = %+v", rows)
	}

	pw := rows[1]
	if pw.Count != 2 || pw.CacheHits != 1 {
		t.Errorf("pairwise count/hits = %d/%d, want 2/1", pw.Count, pw.CacheHits)
	}
	if math.Abs(pw.MeanUS-15) > 1e-9 {
		t.Errorf("pairwise mean = %v µs, want 15", pw.MeanUS)
	}
	if math.Abs(pw.MinUS-10) > 1e-9 || math.Abs(pw.MaxUS-20) > 1e-9 {
		t.Errorf("pairwise min/max = %v/%v µs, want 10/20", pw.MinUS, pw.MaxUS)
	}
	if math.Abs(pw.Share-2.0/3.0) > 1e-9 {
		t.Errorf("pairwise share = %v, want 2/3", pw.Share)
	}
	if math.Abs(rows[2].Share-1.0/3.0) > 1e-9 {
		t.Errorf("linear share = %v, want 1/3", rows[2].Share)
	}
	if rows[0].Share != 1 {
		t.Errorf("allgather ring share = %v, want 1", rows[0].Share)
	}
}

func TestQuantileEstimation(t *testing.T) {
	// Custom coarse buckets make interpolation arithmetic predictable.
	a := New([]float64{1, 2, 4, 8})
	c := a.Cell("c", "a")
	// 100 observations uniformly placed in (2,4]: all land in that bucket.
	for i := 0; i < 100; i++ {
		c.Record(2+2*float64(i+1)/100, false)
	}
	rows := a.Snapshot()
	r := rows[0]
	// p50 interpolates to the middle of bucket (2,4] → ~3s = 3e6 µs.
	if math.Abs(r.P50US-3e6) > 0.25e6 {
		t.Errorf("p50 = %v µs, want ≈3e6", r.P50US)
	}
	if r.P99US < r.P50US || r.P99US > r.MaxUS {
		t.Errorf("p99 = %v µs outside [p50=%v, max=%v]", r.P99US, r.P50US, r.MaxUS)
	}
	// Quantiles clamp to observed extremes.
	if r.P50US < r.MinUS {
		t.Errorf("p50 %v below min %v", r.P50US, r.MinUS)
	}
}

func TestQuantileBeyondLastBucketClampsToMax(t *testing.T) {
	a := New([]float64{1e-6})
	c := a.Cell("c", "a")
	c.Record(5, false) // way past the only bound → +Inf bucket
	c.Record(7, false)
	r := a.Snapshot()[0]
	if r.P99US != r.MaxUS || r.MaxUS != 7e6 {
		t.Errorf("p99/max = %v/%v µs, want both 7e6", r.P99US, r.MaxUS)
	}
}

func TestEmptySnapshot(t *testing.T) {
	if rows := New(nil).Snapshot(); len(rows) != 0 {
		t.Errorf("empty aggregator produced rows: %+v", rows)
	}
	// A cell created but never recorded into must not surface.
	a := New(nil)
	a.Cell("c", "a")
	if rows := a.Snapshot(); len(rows) != 0 {
		t.Errorf("unrecorded cell produced rows: %+v", rows)
	}
}

func TestConcurrentRecord(t *testing.T) {
	a := New(nil)
	cell := a.Cell("c", "hot")
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					cell.Record(1e-6*float64(i%100+1), i%2 == 0)
				} else {
					a.Record("c", "hot", 1e-6*float64(i%100+1), false)
				}
			}
		}(g)
	}
	// Concurrent snapshots must not race with recorders.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			a.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	r := a.Snapshot()[0]
	if r.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", r.Count, goroutines*perG)
	}
	if r.CacheHits != goroutines/2*perG/2 {
		t.Errorf("cache hits = %d, want %d", r.CacheHits, goroutines/2*perG/2)
	}
}
