// Package analytics rolls selection outcomes up into per-collective ×
// per-algorithm aggregates: counts, cache-hit share, and latency summary
// statistics with bucket-interpolated quantiles. It answers the operator
// question the raw metrics and the decision ring cannot — "which algorithms
// is the model actually picking, how often, and how fast" — and backs the
// /debug/analytics endpoint. The package is dependency-free; the selector
// feeds it and pkg/admin serves it.
package analytics

import (
	"math"
	"sort"
	"sync"
)

// defaultBuckets are exponential latency bounds in seconds, 1µs..~8.4s
// (factor 2, 24 bounds). Fine enough near the microsecond regime the
// selector lives in for meaningful p50/p90/p99 interpolation.
var defaultBuckets = func() []float64 {
	out := make([]float64, 24)
	ub := 1e-6
	for i := range out {
		out[i] = ub
		ub *= 2
	}
	return out
}()

// Aggregator accumulates selection outcomes. Cells (one per collective ×
// algorithm pair) carry their own locks, so two algorithms never contend;
// hot paths can pre-resolve their Cell once and skip the map lookup.
type Aggregator struct {
	buckets []float64

	mu    sync.RWMutex
	cells map[cellKey]*Cell
}

type cellKey struct{ collective, algorithm string }

// Cell is the aggregate for one collective × algorithm pair. Acquire it via
// Aggregator.Cell and feed it with Record.
type Cell struct {
	buckets []float64 // shared, read-only

	mu        sync.Mutex
	count     uint64
	cacheHits uint64
	sum       float64
	min       float64
	max       float64
	counts    []uint64 // per-bucket observation counts; last slot is +Inf
}

// New builds an aggregator using the given latency bucket bounds (seconds,
// strictly ascending); nil selects the default exponential 1µs..8s layout.
func New(buckets []float64) *Aggregator {
	if buckets == nil {
		buckets = defaultBuckets
	}
	return &Aggregator{
		buckets: buckets,
		cells:   make(map[cellKey]*Cell),
	}
}

// Cell returns (creating if needed) the aggregate cell for one collective ×
// algorithm pair, for callers that record into the same pair repeatedly.
func (a *Aggregator) Cell(collective, algorithm string) *Cell {
	key := cellKey{collective, algorithm}
	a.mu.RLock()
	c, ok := a.cells[key]
	a.mu.RUnlock()
	if ok {
		return c
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if c, ok = a.cells[key]; ok {
		return c
	}
	c = &Cell{
		buckets: a.buckets,
		min:     math.Inf(1),
		counts:  make([]uint64, len(a.buckets)+1),
	}
	a.cells[key] = c
	return c
}

// Record adds one selection outcome with the given end-to-end latency.
func (a *Aggregator) Record(collective, algorithm string, seconds float64, cached bool) {
	a.Cell(collective, algorithm).Record(seconds, cached)
}

// Record adds one selection outcome to the cell.
func (c *Cell) Record(seconds float64, cached bool) {
	idx := sort.SearchFloat64s(c.buckets, seconds)
	c.mu.Lock()
	c.count++
	if cached {
		c.cacheHits++
	}
	c.sum += seconds
	if seconds < c.min {
		c.min = seconds
	}
	if seconds > c.max {
		c.max = seconds
	}
	c.counts[idx]++
	c.mu.Unlock()
}

// Row is one collective × algorithm aggregate, as served on
// /debug/analytics. Latencies are reported in microseconds — the selector's
// natural regime. Quantiles are estimated by linear interpolation within
// the exponential latency buckets, so they carry bucket-resolution error;
// Min/Max/Mean are exact.
type Row struct {
	Collective string  `json:"collective"`
	Algorithm  string  `json:"algorithm"`
	Count      uint64  `json:"count"`
	CacheHits  uint64  `json:"cache_hits"`
	Share      float64 `json:"share"` // fraction of this collective's selections
	MeanUS     float64 `json:"mean_us"`
	MinUS      float64 `json:"min_us"`
	MaxUS      float64 `json:"max_us"`
	P50US      float64 `json:"p50_us"`
	P90US      float64 `json:"p90_us"`
	P99US      float64 `json:"p99_us"`
}

// Snapshot returns every populated cell as a Row, sorted by collective then
// descending count (the dominant algorithm first) then algorithm name.
func (a *Aggregator) Snapshot() []Row {
	a.mu.RLock()
	keys := make([]cellKey, 0, len(a.cells))
	cells := make([]*Cell, 0, len(a.cells))
	for k, c := range a.cells {
		keys = append(keys, k)
		cells = append(cells, c)
	}
	a.mu.RUnlock()

	perCollective := make(map[string]uint64)
	rows := make([]Row, 0, len(cells))
	for i, c := range cells {
		c.mu.Lock()
		if c.count == 0 {
			c.mu.Unlock()
			continue
		}
		row := Row{
			Collective: keys[i].collective,
			Algorithm:  keys[i].algorithm,
			Count:      c.count,
			CacheHits:  c.cacheHits,
			MeanUS:     c.sum / float64(c.count) * 1e6,
			MinUS:      c.min * 1e6,
			MaxUS:      c.max * 1e6,
			P50US:      c.quantileLocked(0.50) * 1e6,
			P90US:      c.quantileLocked(0.90) * 1e6,
			P99US:      c.quantileLocked(0.99) * 1e6,
		}
		c.mu.Unlock()
		perCollective[row.Collective] += row.Count
		rows = append(rows, row)
	}
	for i := range rows {
		rows[i].Share = float64(rows[i].Count) / float64(perCollective[rows[i].Collective])
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Collective != rows[j].Collective {
			return rows[i].Collective < rows[j].Collective
		}
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Algorithm < rows[j].Algorithm
	})
	return rows
}

// quantileLocked estimates the q-quantile (0 < q < 1) from the bucket
// counts, Prometheus histogram_quantile style: find the bucket holding the
// target rank and interpolate linearly between its bounds. Observations in
// the +Inf bucket clamp to the exact max. Callers hold c.mu.
func (c *Cell) quantileLocked(q float64) float64 {
	rank := q * float64(c.count)
	cum := uint64(0)
	for i, n := range c.counts {
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i == len(c.buckets) {
			return c.max // +Inf bucket: best available estimate
		}
		lower := 0.0
		if i > 0 {
			lower = c.buckets[i-1]
		}
		upper := c.buckets[i]
		if n == 0 {
			return upper
		}
		frac := (rank - float64(cum-n)) / float64(n)
		est := lower + (upper-lower)*frac
		// Clamp to the observed range: interpolation cannot know the true
		// extremes within a bucket, but the cell does.
		if est < c.min {
			est = c.min
		}
		if est > c.max {
			est = c.max
		}
		return est
	}
	return c.max
}
