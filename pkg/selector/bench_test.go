package selector

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/cache"
	"github.com/pml-mpi/pmlmpi/pkg/modelhealth"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/slo"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

// benchBundles spans small/medium/large synthetic forests so benchmark
// history shows how the hot path scales with ensemble size.
var benchBundles = []struct {
	name         string
	trees, depth int
}{
	{"trees=16", 16, 5},
	{"trees=64", 64, 8},
	{"trees=256", 256, 10},
}

func benchSelector(b *testing.B, trees, depth int, withCache bool) *Selector {
	b.Helper()
	bd, err := synth.New(synth.Config{Seed: 51, Collectives: []string{"bench"}, Trees: trees, Depth: depth, Features: 6, Classes: 5})
	if err != nil {
		b.Fatal(err)
	}
	// A training reference over the workload axes, so benchmarks that wire
	// the model-health observatory exercise drift sketches too.
	ref := bundle.FeatureDist{Edges: []float64{4, 64, 1024}, Counts: []uint64{10, 10, 10, 10}}
	bd.Stats = &bundle.FeatureStats{
		Source: "bench",
		Features: map[string]bundle.FeatureDist{
			"num_nodes": ref, "ppn": ref, "log2_msg_size": ref,
		},
	}
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError) // mute per-selection logs in the hot loop
	cfg := Config{}
	if withCache {
		cfg.Cache = cache.New(cache.Config{}, o.Registry)
	}
	return New(bd, o, cfg)
}

// BenchmarkSelect is the cold path: every iteration walks the full forest
// (no cache configured).
func BenchmarkSelect(b *testing.B) {
	pt := synth.Points(51, 1)[0]
	for _, size := range benchBundles {
		s := benchSelector(b, size.trees, size.depth, false)
		ctx := context.Background()
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Select(ctx, "bench", pt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCacheHit is the warm path over the same synthetic bundles as
// BenchmarkSelect: the single point is pre-warmed, so every iteration is a
// cache hit. The acceptance bar is ≥5x lower ns/op than BenchmarkSelect on
// the matching bundle.
func BenchmarkCacheHit(b *testing.B) {
	pt := synth.Points(51, 1)[0]
	for _, size := range benchBundles {
		s := benchSelector(b, size.trees, size.depth, true)
		ctx := context.Background()
		if _, err := s.Select(ctx, "bench", pt); err != nil { // warm
			b.Fatal(err)
		}
		b.Run(size.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d, err := s.Select(ctx, "bench", pt)
				if err != nil {
					b.Fatal(err)
				}
				if !d.Cached {
					b.Fatal("benchmark iteration missed the cache")
				}
			}
		})
	}
}

// BenchmarkSelectBatch measures whole-batch throughput (ns/op is per
// batch, not per item) across batch widths on the medium bundle.
func BenchmarkSelectBatch(b *testing.B) {
	pts := synth.Points(51, 64)
	for _, batch := range []int{8, 64} {
		reqs := make([]BatchRequest, batch)
		for i := range reqs {
			reqs[i] = BatchRequest{Collective: "bench", Features: pts[i%len(pts)]}
		}
		for _, cached := range []bool{false, true} {
			s := benchSelector(b, 64, 8, cached)
			ctx := context.Background()
			label := fmt.Sprintf("items=%d/cache=%v", batch, cached)
			if cached {
				s.SelectBatch(ctx, reqs) // warm every key
			}
			b.Run(label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, r := range s.SelectBatch(ctx, reqs) {
						if r.Err != nil {
							b.Fatal(r.Err)
						}
					}
				}
			})
		}
	}
}

// BenchmarkSelectInstrumented is the telemetry overhead guard: it runs the
// warm (cache-hit) and cold paths with the full deep-telemetry stack active
// — including the SLO window bookkeeping every production Select feeds — at
// three trace sampling rates. The acceptance bar is that production
// sampling (rate=0.01) stays within 10% of sampling disabled (rate=0) on
// the matching path — i.e. full instrumentation must not tax the hot path.
// Compare ns/op between the rate=0 and rate=0.01 sub-benchmarks; rate=1
// shows the worst case of tracing every request.
func BenchmarkSelectInstrumented(b *testing.B) {
	pt := synth.Points(51, 1)[0]
	for _, rate := range []float64{0, 0.01, 1} {
		for _, warm := range []bool{true, false} {
			s := benchSelector(b, 64, 8, warm)
			s.slo = slo.New(s.o.Registry, slo.Objectives{
				SelectP99:    time.Millisecond,
				Availability: 0.999,
			})
			s.health = modelhealth.New(s.o.Registry, modelhealth.Config{})
			if bd, gen := s.src.Active(); bd != nil {
				s.health.OnSwap(gen, bd)
			}
			s.o.Traces.SetSampleRate(rate)
			ctx := context.Background()
			path := "cold"
			if warm {
				path = "hit"
				if _, err := s.Select(ctx, "bench", pt); err != nil {
					b.Fatal(err)
				}
			}
			b.Run(fmt.Sprintf("path=%s/sample=%v", path, rate), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := s.Select(ctx, "bench", pt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
