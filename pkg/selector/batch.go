package selector

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// BatchRequest is one item of a SelectBatch call.
type BatchRequest struct {
	Collective string             `json:"collective"`
	Features   map[string]float64 `json:"features"`
}

// BatchResult pairs each batch item with its decision or error. Exactly
// one of Decision and Err is set.
type BatchResult struct {
	Decision *Decision
	Err      error
}

// SelectBatch evaluates every request, fanning the items out across a
// bounded worker pool (Config.BatchWorkers, default GOMAXPROCS). Results
// are positional: results[i] answers reqs[i]. Item failures are reported
// per item, never abort the batch; a cancelled context fails the items not
// yet started.
func (s *Selector) SelectBatch(ctx context.Context, reqs []BatchRequest) []BatchResult {
	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	ctx, span := s.o.Tracer.Start(ctx, "selector.batch")
	span.SetAttr("items", len(reqs))
	defer span.End()
	s.batches.Inc()
	s.batchSize.Observe(float64(len(reqs)))

	workers := s.batchWorkers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i, r := range reqs {
			results[i] = s.selectOne(ctx, r)
		}
		return results
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				results[i] = s.selectOne(ctx, reqs[i])
			}
		}()
	}
	wg.Wait()
	return results
}

func (s *Selector) selectOne(ctx context.Context, r BatchRequest) BatchResult {
	if err := ctx.Err(); err != nil {
		return BatchResult{Err: err}
	}
	// Each item gets its own request ID so decisions in the ring stay
	// individually addressable; the batch span ties them together.
	itemCtx, _ := obs.WithRequestID(ctx, "")
	d, err := s.Select(itemCtx, r.Collective, r.Features)
	return BatchResult{Decision: d, Err: err}
}
