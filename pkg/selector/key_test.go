package selector

import (
	"fmt"
	"testing"
)

// TestPartitionKeyGolden pins the exact key for a fixed request. Fleet
// partitioning depends on every gateway — across processes, restarts,
// and releases — computing the same key for the same request; if this
// value ever changes, a rolling gateway upgrade would re-shard the
// entire fleet's cache key space.
func TestPartitionKeyGolden(t *testing.T) {
	feats := map[string]float64{
		"msg_size_bytes": 4096,
		"comm_size":      48,
		"node_count":     4,
	}
	got := PartitionKey("allreduce", feats, DefaultCacheQuantum)
	const want = uint64(0xa86ec013d12f0e7f)
	if got != want {
		t.Fatalf("PartitionKey = %#x, want %#x (changing this re-shards the fleet)", got, want)
	}
}

func TestPartitionKeyMirrorsCacheQuantization(t *testing.T) {
	a := map[string]float64{"msg_size_bytes": 4096, "comm_size": 48}
	b := map[string]float64{"msg_size_bytes": 4096.0000004, "comm_size": 48.0000004}
	c := map[string]float64{"msg_size_bytes": 8192, "comm_size": 48}
	if PartitionKey("allreduce", a, DefaultCacheQuantum) != PartitionKey("allreduce", b, DefaultCacheQuantum) {
		t.Fatal("near-identical features (within the quantum) produced different keys")
	}
	if PartitionKey("allreduce", a, DefaultCacheQuantum) == PartitionKey("allreduce", c, DefaultCacheQuantum) {
		t.Fatal("distinct features collided")
	}
	if PartitionKey("allreduce", a, DefaultCacheQuantum) == PartitionKey("bcast", a, DefaultCacheQuantum) {
		t.Fatal("collective name does not separate key spaces")
	}
	// A zero quantum falls back to the default rather than dividing by it.
	if PartitionKey("allreduce", a, 0) != PartitionKey("allreduce", a, DefaultCacheQuantum) {
		t.Fatal("quantum 0 did not fall back to DefaultCacheQuantum")
	}
}

// TestPartitionKeyFeatureSetSensitivity: the key folds feature *names*
// too, so the same values under different names (or an extra feature)
// partition separately, and non-finite values key deterministically.
func TestPartitionKeyFeatureSetSensitivity(t *testing.T) {
	a := map[string]float64{"x": 1, "y": 2}
	b := map[string]float64{"x": 1, "z": 2}
	c := map[string]float64{"x": 1, "y": 2, "z": 0}
	if PartitionKey("allreduce", a, 1) == PartitionKey("allreduce", b, 1) {
		t.Fatal("renamed feature did not change the key")
	}
	if PartitionKey("allreduce", a, 1) == PartitionKey("allreduce", c, 1) {
		t.Fatal("extra feature did not change the key")
	}
	nan := map[string]float64{"x": nanValue()}
	if PartitionKey("allreduce", nan, 1) != PartitionKey("allreduce", nan, 1) {
		t.Fatal("NaN feature did not key deterministically")
	}
}

func nanValue() float64 {
	var zero float64
	return zero / zero
}

// TestPartitionKeySpreadsAcrossBuckets is a cheap avalanche check: keys
// from a structured request population (power-of-two sizes, small comm
// counts) must not collapse into a few residues mod a replica count.
func TestPartitionKeySpreadsAcrossBuckets(t *testing.T) {
	const buckets = 8
	counts := make([]int, buckets)
	n := 0
	for p := 0; p < 16; p++ {
		for comm := 2; comm <= 128; comm *= 2 {
			feats := map[string]float64{
				"msg_size_bytes": float64(int64(1) << p),
				"comm_size":      float64(comm),
			}
			counts[PartitionKey("allreduce", feats, DefaultCacheQuantum)%buckets]++
			n++
		}
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("bucket %d of %d empty over %d structured keys: %v", b, buckets, n, counts)
		}
	}
}

func BenchmarkPartitionKey(b *testing.B) {
	feats := map[string]float64{
		"msg_size_bytes": 4096,
		"comm_size":      48,
		"node_count":     4,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PartitionKey("allreduce", feats, DefaultCacheQuantum)
	}
}

func ExamplePartitionKey() {
	feats := map[string]float64{"msg_size_bytes": 4096, "comm_size": 48}
	k1 := PartitionKey("allreduce", feats, DefaultCacheQuantum)
	k2 := PartitionKey("allreduce", feats, DefaultCacheQuantum)
	fmt.Println(k1 == k2)
	// Output: true
}
