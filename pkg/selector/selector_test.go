package selector

import (
	"context"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

const realBundle = "../../.pmlbench/bundle_all_full.json"

var allgatherFeatures = map[string]float64{
	"log2_msg_size": 20,
	"ppn":           32,
	"num_nodes":     64,
	"thread_count":  128,
	"l3_cache_mib":  24,
}

func newTestSelector(t *testing.T) (*Selector, *obs.Obs) {
	t.Helper()
	b, err := bundle.Load(realBundle)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	o := obs.NewForTest()
	return New(b, o, Config{RingSize: 4}), o
}

func TestSelectRecordsDecisionAndMetrics(t *testing.T) {
	s, o := newTestSelector(t)
	d, err := s.Select(context.Background(), "allgather", allgatherFeatures)
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	// Golden case: this vector lands on class 1 with a unanimous vote.
	if d.Class != 1 || d.Algorithm != "bruck" {
		t.Errorf("decision = class %d algorithm %q, want class 1 %q", d.Class, d.Algorithm, "bruck")
	}
	if d.Votes[1] != 60 {
		t.Errorf("votes = %v, want unanimous class 1 of 60 trees", d.Votes)
	}
	if d.RequestID == "" {
		t.Error("decision missing request ID")
	}
	if d.LatencyNS <= 0 {
		t.Error("decision missing latency")
	}

	recent := s.Recent(10)
	if len(recent) != 1 || recent[0].Algorithm != d.Algorithm || recent[0].RequestID != d.RequestID {
		t.Fatalf("ring buffer does not hold the decision: %+v", recent)
	}

	var expo strings.Builder
	o.Registry.WritePrometheus(&expo)
	out := expo.String()
	for _, want := range []string{
		`pmlmpi_selections_total{collective="allgather",algorithm="bruck"} 1`,
		`pmlmpi_select_duration_seconds_count{collective="allgather",path="cold"} 1`,
		`pmlmpi_forest_predict_duration_seconds_count{collective="allgather"} 1`,
		"pmlmpi_bundle_loaded 1",
		`pmlmpi_span_duration_seconds_count{span="selector.decide"} 1`,
		`pmlmpi_span_duration_seconds_count{span="feature.extract"} 1`,
		`pmlmpi_span_duration_seconds_count{span="forest.eval"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestSelectUnknownCollective(t *testing.T) {
	s, _ := newTestSelector(t)
	_, err := s.Select(context.Background(), "broadcast", allgatherFeatures)
	if err == nil || !strings.Contains(err.Error(), `unknown collective "broadcast"`) {
		t.Fatalf("expected unknown-collective error, got %v", err)
	}
	if got := s.selErrors.Value("broadcast", "unknown_collective"); got != 1 {
		t.Errorf("error counter = %v, want 1", got)
	}
}

func TestSelectMissingFeature(t *testing.T) {
	s, _ := newTestSelector(t)
	_, err := s.Select(context.Background(), "allgather", map[string]float64{"ppn": 4})
	if err == nil || !strings.Contains(err.Error(), "missing feature") {
		t.Fatalf("expected missing-feature error, got %v", err)
	}
	if got := s.selErrors.Value("allgather", "missing_feature"); got != 1 {
		t.Errorf("error counter = %v, want 1", got)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	s, _ := newTestSelector(t)
	for i := 0; i < 6; i++ { // ring capacity is 4
		if _, err := s.Select(context.Background(), "allgather", allgatherFeatures); err != nil {
			t.Fatal(err)
		}
	}
	all := s.Recent(0)
	if len(all) != 4 {
		t.Fatalf("ring holds %d decisions, want capacity 4", len(all))
	}
	if got := s.Recent(2); len(got) != 2 {
		t.Fatalf("Recent(2) returned %d", len(got))
	}
	// Newest first: each entry's timestamp must be >= the next one's.
	for i := 0; i+1 < len(all); i++ {
		if all[i].Time.Before(all[i+1].Time) {
			t.Errorf("decisions not newest-first at %d", i)
		}
	}
}

func TestAlgorithmNameFallback(t *testing.T) {
	s, _ := newTestSelector(t)
	if got := s.AlgorithmName("allgather", 2); got != "ring" {
		t.Errorf("AlgorithmName = %q, want ring", got)
	}
	if got := s.AlgorithmName("allgather", 99); got != "class_99" {
		t.Errorf("out-of-table class = %q, want class_99", got)
	}
	if got := s.AlgorithmName("mystery", 0); got != "class_0" {
		t.Errorf("unknown collective = %q, want class_0", got)
	}
}

func TestDecisionFeaturesAreCopied(t *testing.T) {
	s, _ := newTestSelector(t)
	feats := map[string]float64{}
	for k, v := range allgatherFeatures {
		feats[k] = v
	}
	d, err := s.Select(context.Background(), "allgather", feats)
	if err != nil {
		t.Fatal(err)
	}
	feats["ppn"] = -1 // caller mutates its map after the call
	if d.Features["ppn"] != allgatherFeatures["ppn"] {
		t.Error("decision shares the caller's feature map instead of copying it")
	}
}
