package selector

import (
	"encoding/binary"
	"math"
	"sort"
)

// featureKey derives the decision-cache key: the model generation id (so a
// hot-swap can never serve a decision computed by a previous generation —
// promoted and even rolled-back generations each address their own key
// space), the collective name, a NUL separator, then each feature of the
// ordered vector quantized to the given step and encoded as a fixed-width
// integer. Quantization makes near-identical float inputs (e.g. 48.0 vs
// 48.0000004) share a cache line; non-finite values fall back to their raw
// bit pattern so they still key deterministically instead of tripping
// float→int conversion edge cases.
func featureKey(gen uint64, collective string, x []float64, quantum float64) string {
	buf := make([]byte, 0, 8+len(collective)+1+8*len(x))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], gen)
	buf = append(buf, tmp[:]...)
	buf = append(buf, collective...)
	buf = append(buf, 0)
	for _, v := range x {
		var q uint64
		if math.IsNaN(v) || math.IsInf(v, 0) {
			q = math.Float64bits(v)
		} else {
			q = uint64(int64(math.Round(v / quantum)))
		}
		binary.LittleEndian.PutUint64(tmp[:], q)
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

// PartitionKey hashes a selection request to a stable 64-bit partition
// key: the collective name, then each feature (sorted by name) quantized
// with exactly the same rule as the decision-cache key, folded through
// FNV-1a and finalized with splitmix64. Unlike featureKey it excludes
// the model generation — fleet-wide request partitioning must survive
// restarts and hot-swaps — and it is pure arithmetic on the wire values,
// so every gateway instance computes the same key for the same request.
// A quantum <= 0 falls back to DefaultCacheQuantum.
func PartitionKey(collective string, features map[string]float64, quantum float64) uint64 {
	if quantum <= 0 {
		quantum = DefaultCacheQuantum
	}
	names := make([]string, 0, len(features))
	for name := range features {
		names = append(names, name)
	}
	sort.Strings(names)

	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(collective); i++ {
		h = (h ^ uint64(collective[i])) * fnvPrime
	}
	h = (h ^ 0) * fnvPrime // NUL separator, as in featureKey
	var tmp [8]byte
	for _, name := range names {
		for i := 0; i < len(name); i++ {
			h = (h ^ uint64(name[i])) * fnvPrime
		}
		h = (h ^ 0) * fnvPrime
		v := features[name]
		var q uint64
		if math.IsNaN(v) || math.IsInf(v, 0) {
			q = math.Float64bits(v)
		} else {
			q = uint64(int64(math.Round(v / quantum)))
		}
		binary.LittleEndian.PutUint64(tmp[:], q)
		for _, b := range tmp {
			h = (h ^ uint64(b)) * fnvPrime
		}
	}
	return Mix64(h)
}

// Mix64 is the splitmix64 finalizer: a cheap, high-quality 64-bit bit
// mixer. Exported for the gateway's rendezvous hashing, which combines
// partition keys with per-replica seeds.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
