package selector

import (
	"encoding/binary"
	"math"
)

// featureKey derives the decision-cache key: the model generation id (so a
// hot-swap can never serve a decision computed by a previous generation —
// promoted and even rolled-back generations each address their own key
// space), the collective name, a NUL separator, then each feature of the
// ordered vector quantized to the given step and encoded as a fixed-width
// integer. Quantization makes near-identical float inputs (e.g. 48.0 vs
// 48.0000004) share a cache line; non-finite values fall back to their raw
// bit pattern so they still key deterministically instead of tripping
// float→int conversion edge cases.
func featureKey(gen uint64, collective string, x []float64, quantum float64) string {
	buf := make([]byte, 0, 8+len(collective)+1+8*len(x))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], gen)
	buf = append(buf, tmp[:]...)
	buf = append(buf, collective...)
	buf = append(buf, 0)
	for _, v := range x {
		var q uint64
		if math.IsNaN(v) || math.IsInf(v, 0) {
			q = math.Float64bits(v)
		} else {
			q = uint64(int64(math.Round(v / quantum)))
		}
		binary.LittleEndian.PutUint64(tmp[:], q)
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}
