package selector

import (
	"context"
	"strings"
	"testing"

	"github.com/pml-mpi/pmlmpi/pkg/obs"
	"github.com/pml-mpi/pmlmpi/pkg/synth"
)

func newSynthSelector(t testing.TB, cfg Config) *Selector {
	t.Helper()
	b, err := synth.New(synth.Config{Seed: 31, Trees: 16, Depth: 5})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewForTest()
	o.Logger.SetLevel(obs.LevelError)
	return New(b, o, cfg)
}

func TestSelectBatchResultsArePositional(t *testing.T) {
	s := newSynthSelector(t, Config{BatchWorkers: 4})
	pts := synth.Points(31, 6)
	reqs := make([]BatchRequest, 0, 12)
	for _, pt := range pts {
		reqs = append(reqs,
			BatchRequest{Collective: "allgather", Features: pt},
			BatchRequest{Collective: "alltoall", Features: pt})
	}
	results := s.SelectBatch(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(results), len(reqs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Decision.Collective != reqs[i].Collective {
			t.Errorf("item %d answers collective %q, want %q", i, r.Decision.Collective, reqs[i].Collective)
		}
		// Each batch result must match the equivalent single Select.
		single, err := s.Select(context.Background(), reqs[i].Collective, reqs[i].Features)
		if err != nil {
			t.Fatal(err)
		}
		if single.Class != r.Decision.Class || single.Algorithm != r.Decision.Algorithm {
			t.Errorf("item %d: batch picked class %d %q, single picked class %d %q",
				i, r.Decision.Class, r.Decision.Algorithm, single.Class, single.Algorithm)
		}
	}
}

func TestSelectBatchReportsItemErrorsWithoutAborting(t *testing.T) {
	s := newSynthSelector(t, Config{BatchWorkers: 2})
	pt := synth.Points(31, 1)[0]
	reqs := []BatchRequest{
		{Collective: "allgather", Features: pt},
		{Collective: "no-such-collective", Features: pt},
		{Collective: "alltoall", Features: map[string]float64{"ppn": 1}}, // missing features
		{Collective: "alltoall", Features: pt},
	}
	results := s.SelectBatch(context.Background(), reqs)
	if results[0].Err != nil || results[3].Err != nil {
		t.Errorf("good items failed: %v, %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "unknown collective") {
		t.Errorf("item 1 error = %v, want unknown collective", results[1].Err)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "missing feature") {
		t.Errorf("item 2 error = %v, want missing feature", results[2].Err)
	}
}

func TestSelectBatchEmptyAndSequentialFallback(t *testing.T) {
	s := newSynthSelector(t, Config{BatchWorkers: 1}) // forces the sequential path
	if got := s.SelectBatch(context.Background(), nil); len(got) != 0 {
		t.Errorf("nil batch returned %d results", len(got))
	}
	pt := synth.Points(31, 1)[0]
	results := s.SelectBatch(context.Background(), []BatchRequest{{Collective: "allgather", Features: pt}})
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("sequential batch = %+v", results)
	}
}

func TestSelectBatchCancelledContext(t *testing.T) {
	s := newSynthSelector(t, Config{BatchWorkers: 4})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pt := synth.Points(31, 1)[0]
	results := s.SelectBatch(ctx, []BatchRequest{
		{Collective: "allgather", Features: pt},
		{Collective: "alltoall", Features: pt},
	})
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("item %d succeeded under a cancelled context", i)
		}
	}
}

func TestSelectBatchRecordsMetrics(t *testing.T) {
	s := newSynthSelector(t, Config{BatchWorkers: 4})
	pt := synth.Points(31, 1)[0]
	s.SelectBatch(context.Background(), []BatchRequest{
		{Collective: "allgather", Features: pt},
		{Collective: "alltoall", Features: pt},
	})
	if got := s.batches.Value(); got != 1 {
		t.Errorf("batch counter = %v, want 1", got)
	}
	if got := s.batchSize.Count(); got != 1 {
		t.Errorf("batch size histogram count = %v, want 1", got)
	}
}
