// Package selector is the public inference API of PML-MPI: given a
// collective name and a named feature map, it returns the predicted best
// algorithm. Every call is instrumented — tracing spans for feature
// extraction, forest evaluation, and the overall decision; counters and a
// latency histogram in the metrics registry; and a ring buffer of recent
// decisions served on /debug/decisions.
package selector

import (
	"context"
	"fmt"
	"time"

	"github.com/pml-mpi/pmlmpi/pkg/bundle"
	"github.com/pml-mpi/pmlmpi/pkg/forest"
	"github.com/pml-mpi/pmlmpi/pkg/obs"
)

// DefaultAlgorithms maps each collective's class index to a human-readable
// algorithm name (Open MPI tuned-collective algorithm families). Classes
// beyond the table fall back to "class_<n>".
var DefaultAlgorithms = map[string][]string{
	"allgather": {"recursive_doubling", "bruck", "ring", "neighbor_exchange"},
	"alltoall":  {"linear", "pairwise", "modified_bruck", "linear_sync", "two_proc"},
}

// Decision records one completed selection, as surfaced on /debug/decisions.
type Decision struct {
	Time       time.Time          `json:"time"`
	RequestID  string             `json:"request_id,omitempty"`
	Collective string             `json:"collective"`
	Features   map[string]float64 `json:"features"`
	Algorithm  string             `json:"algorithm"`
	Class      int                `json:"class"`
	Probs      []float64          `json:"probs"`
	Votes      []int              `json:"votes"`
	LatencyNS  int64              `json:"latency_ns"`
}

// Config tunes a Selector.
type Config struct {
	// RingSize is the capacity of the recent-decision buffer (default 128).
	RingSize int
	// Algorithms overrides DefaultAlgorithms when non-nil.
	Algorithms map[string][]string
}

// Selector performs instrumented algorithm selection over a loaded bundle.
type Selector struct {
	b          *bundle.Bundle
	o          *obs.Obs
	algorithms map[string][]string
	ring       *decisionRing

	selections *obs.Counter
	selErrors  *obs.Counter
	latency    *obs.Histogram
}

// New builds a Selector over a validated bundle, registering its
// instruments (selection counter, error counter, prediction-latency
// histogram, bundle gauges) in o's registry.
func New(b *bundle.Bundle, o *obs.Obs, cfg Config) *Selector {
	algos := cfg.Algorithms
	if algos == nil {
		algos = DefaultAlgorithms
	}
	reg := o.Registry
	s := &Selector{
		b:          b,
		o:          o,
		algorithms: algos,
		ring:       newDecisionRing(cfg.RingSize),
		selections: reg.Counter("pmlmpi_selections_total",
			"Completed algorithm selections.", "collective", "algorithm"),
		selErrors: reg.Counter("pmlmpi_selection_errors_total",
			"Failed algorithm selections.", "collective", "reason"),
		latency: reg.Histogram("pmlmpi_prediction_latency_seconds",
			"End-to-end Select latency.", obs.LatencyBuckets, "collective"),
	}

	reg.Gauge("pmlmpi_bundle_loaded", "1 when a model bundle is loaded.").Set(1)
	reg.Gauge("pmlmpi_bundle_size_bytes", "Size of the loaded bundle file.").Set(float64(b.SizeBytes))
	reg.Gauge("pmlmpi_bundle_trained_systems", "Systems the bundle was trained on.").Set(float64(len(b.TrainedOn)))
	trees := reg.Gauge("pmlmpi_bundle_forest_trees", "Trees per collective forest.", "collective")
	for name, c := range b.Collectives {
		trees.Set(float64(len(c.Forest.Trees)), name)
	}
	return s
}

// Bundle returns the underlying model bundle.
func (s *Selector) Bundle() *bundle.Bundle { return s.b }

// Recent returns up to n recent decisions, newest first (n <= 0 for all).
func (s *Selector) Recent(n int) []Decision { return s.ring.last(n) }

// AlgorithmName maps a class index of a collective to its algorithm name.
func (s *Selector) AlgorithmName(collective string, class int) string {
	if names, ok := s.algorithms[collective]; ok && class >= 0 && class < len(names) {
		return names[class]
	}
	return fmt.Sprintf("class_%d", class)
}

// Select predicts the best algorithm for the collective given the named
// feature map. It is the hot path: one span per stage, one histogram
// observation, one counter increment, and a ring-buffer append.
func (s *Selector) Select(ctx context.Context, collective string, features map[string]float64) (*Decision, error) {
	ctx, reqID := obs.WithRequestID(ctx, obs.RequestIDFrom(ctx))
	ctx, decide := s.o.Tracer.Start(ctx, "selector.decide")
	decide.SetAttr("collective", collective)
	start := time.Now()

	c, ok := s.b.Collective(collective)
	if !ok {
		decide.End()
		s.selErrors.Inc(collective, "unknown_collective")
		return nil, fmt.Errorf("unknown collective %q (bundle has %v)", collective, s.b.CollectiveNames())
	}

	_, extract := s.o.Tracer.Start(ctx, "feature.extract")
	x, err := c.Vector(features)
	extract.End()
	if err != nil {
		decide.End()
		s.selErrors.Inc(collective, "missing_feature")
		return nil, err
	}

	_, eval := s.o.Tracer.Start(ctx, "forest.eval")
	pred, err := c.Forest.Predict(x)
	eval.End()
	if err != nil {
		decide.End()
		s.selErrors.Inc(collective, "forest_error")
		return nil, fmt.Errorf("collective %q: %w", collective, err)
	}

	elapsed := time.Since(start)
	decide.SetAttr("class", pred.Class)
	decide.End()

	algo := s.AlgorithmName(collective, pred.Class)
	s.selections.Inc(collective, algo)
	s.latency.Observe(elapsed.Seconds(), collective)

	d := Decision{
		Time:       start,
		RequestID:  reqID,
		Collective: collective,
		Features:   copyFeatures(features),
		Algorithm:  algo,
		Class:      pred.Class,
		Probs:      pred.Probs,
		Votes:      pred.Votes,
		LatencyNS:  elapsed.Nanoseconds(),
	}
	s.ring.add(d)

	s.o.Logger.WithCtx(ctx).Info("selection",
		"collective", collective,
		"algorithm", algo,
		"class", pred.Class,
		"latency_us", float64(elapsed.Microseconds()))
	return &d, nil
}

func copyFeatures(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Prediction re-exports the forest prediction type for callers that want
// raw ensemble output without the decision envelope.
type Prediction = forest.Prediction
